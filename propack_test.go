package propack

import "testing"

func TestFacadeEndToEnd(t *testing.T) {
	cfg := AWSLambda()
	app := VideoWorkload()
	const c = 2000
	rec, err := Advise(cfg, app.Demand(), c, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Plan.Degree < 2 {
		t.Fatalf("expected packing at C=%d, got degree %d", c, rec.Plan.Degree)
	}
	packed, err := Run(cfg, app.Demand(), c, rec.Plan.Degree, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(cfg, app.Demand(), c, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if packed.TotalService >= base.TotalService || packed.ExpenseUSD >= base.ExpenseUSD {
		t.Fatalf("recommendation not better:\npacked %+v\nbase %+v", packed, base)
	}
}

func TestFacadeWorkloadsComplete(t *testing.T) {
	if len(Workloads()) != 5 {
		t.Fatalf("expected 5 workloads, got %d", len(Workloads()))
	}
	for _, w := range []Workload{VideoWorkload(), SortWorkload(), StatelessCostWorkload(),
		SmithWatermanWorkload(), XapianWorkload()} {
		if err := w.Demand().Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
	}
}

func TestFacadeRunProPackIncludesOverhead(t *testing.T) {
	cfg := AWSLambda()
	d := XapianWorkload().Demand()
	m, plan, err := RunProPack(cfg, d, 1000, Balanced(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degree < 1 || m.ExpenseUSD <= 0 {
		t.Fatalf("degenerate result: plan %+v metrics %+v", plan, m)
	}
	bare, err := Run(cfg, d, 1000, plan.Degree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExpenseUSD <= bare.ExpenseUSD {
		t.Fatal("RunProPack should include modeling overhead in expense")
	}
}

func TestFacadeQoS(t *testing.T) {
	cfg := AWSLambda()
	d := XapianWorkload().Demand()
	// A generous bound is always satisfiable with expense-leaning weights.
	rec, w, err := AdviseQoS(cfg, d, 1000, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if w.Service != 0 {
		t.Fatalf("generous bound should need no service weight, got %g", w.Service)
	}
	if rec.Plan.Degree < 1 {
		t.Fatal("no plan degree")
	}
}
