// Quickstart: profile an application, get ProPack's optimal packing degree,
// and compare a packed run against the traditional no-packing deployment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	propack "repro"
)

func main() {
	cfg := propack.AWSLambda()
	app := propack.VideoWorkload()
	const concurrency = 5000

	// 1. Ask ProPack for a plan: this probes the platform (interference at
	//    a few packing degrees, scaling at a few burst sizes), fits Eq. 1
	//    and Eq. 2, and solves Eq. 7 with equal weights.
	rec, err := propack.Advise(cfg, app.Demand(), concurrency, propack.Balanced())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ProPack models for %s on %s\n", app.Name(), cfg.Name)
	fmt.Printf("  %v\n  %v\n", rec.Models.ET, rec.Models.Scaling)
	fmt.Printf("  recommended packing degree at C=%d: %d\n\n", concurrency, rec.Plan.Degree)

	// 2. Execute both deployments on the simulated platform.
	base, err := propack.Run(cfg, app.Demand(), concurrency, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	packed, err := propack.Run(cfg, app.Demand(), concurrency, rec.Plan.Degree, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "no packing", "ProPack")
	row := func(name string, a, b float64, unit string) {
		fmt.Printf("%-22s %11.1f%s %11.1f%s   (%.0f%% better)\n",
			name, a, unit, b, unit, 100*(1-b/a))
	}
	row("scaling time", base.ScalingTime, packed.ScalingTime, "s")
	row("total service time", base.TotalService, packed.TotalService, "s")
	row("p95 service time", base.TailService, packed.TailService, "s")
	row("expense", base.ExpenseUSD, packed.ExpenseUSD, "$")
	fmt.Printf("\nmodeling overhead (already amortizable across runs): $%.4f\n",
		rec.Overhead.TotalUSD())
}
