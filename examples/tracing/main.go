// Event-level observability: watch a packed burst move through the
// control plane.
//
// Every instance's lifecycle (queued → sched → build → ship → boot → exec)
// and every fault (start retries, crashes, stragglers, hedge launches) is
// emitted as a typed record through an obs.Recorder. This example fans one
// faulty burst into the whole recorder stack at once:
//
//  1. obs.Memory collects the records in process, then renders a per-stage
//     summary table and a Chrome trace-event JSON you can open in Perfetto
//     (https://ui.perfetto.dev) to see the burst as a flame chart;
//  2. obs.JSONL streams the same records as JSON lines for jq/pandas;
//  3. obs.RegistryRecorder folds them into counters and latency histograms.
//
// The same stack hangs off `propack run -trace -events -stages` on the
// CLI; nil recorders cost the simulator nothing.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/resilience"
	"repro/internal/workload"
)

func main() {
	cfg := platform.AWSLambda()
	cfg.CrashRate = 0.0005
	cfg.StartFailureProb = 0.05
	cfg.StragglerProb = 0.05
	cfg.StragglerFactor = 4
	cfg.Retry = resilience.Backoff{Kind: resilience.Exponential, BaseSec: 2, CapSec: 30}
	cfg.Hedge = resilience.Hedge{Quantile: 90}

	mem := &obs.Memory{}
	reg := obs.NewRegistry()

	events, err := os.Create("events.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Close()
	jsonl := obs.NewJSONL(events)

	app := workload.Video{}
	res, err := platform.Run(cfg, platform.Burst{
		Demand:    app.Demand(),
		Functions: 500,
		Degree:    5,
		Seed:      11,
		Recorder:  obs.Multi(mem, jsonl, &obs.RegistryRecorder{Reg: reg}),
		Label:     app.Name(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := jsonl.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s on %s: %d functions at degree 5, faults injected ===\n\n",
		app.Name(), cfg.Name, 500)
	fmt.Printf("service %.1fs, expense $%.2f, %d retries, %d crashes, %d hedges\n\n",
		res.TotalServiceTime(), res.ExpenseUSD(), res.StartRetries, res.Crashes, res.HedgesLaunched)

	fmt.Println("--- per-stage span summary (obs.Memory) ---")
	if err := obs.FprintStageSummary(os.Stdout, mem.Bursts()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- metrics registry (obs.RegistryRecorder) ---")
	if err := reg.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}

	trace, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer trace.Close()
	if err := obs.WriteChromeTrace(trace, mem.Bursts()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote events.jsonl (one record per line) and trace.json —")
	fmt.Println("open trace.json at https://ui.perfetto.dev to see the burst as a flame chart")
}
