// Heterogeneous packing (the paper's Sec. 5 extension): two applications
// spawn their bursts together, and the planner decides whether functions of
// different applications should share instances.
//
// Two pairings bracket the design space:
//
//   - Video + Smith-Waterman have matched solo durations (~100 s), so
//     cross-application bins give the compute-bound Smith-Waterman members
//     lighter neighbours at no ride-along cost → the planner mixes;
//
//   - Smith-Waterman + Stateless Cost have mismatched durations (102 s vs
//     40 s); short functions inside long instances would be billed for wall
//     time they don't use → the planner segregates.
//
//     go run ./examples/hetero
package main

import (
	"fmt"
	"log"

	propack "repro"
)

func main() {
	cfg := propack.AWSLambda()
	jobs := []struct {
		name string
		apps []propack.MixedApp
	}{
		{"Video + Smith-Waterman (matched durations)", []propack.MixedApp{
			{Workload: propack.VideoWorkload(), Count: 1000},
			{Workload: propack.SmithWatermanWorkload(), Count: 1000},
		}},
		{"Smith-Waterman + Stateless Cost (mismatched durations)", []propack.MixedApp{
			{Workload: propack.SmithWatermanWorkload(), Count: 1000},
			{Workload: propack.StatelessCostWorkload(), Count: 1000},
		}},
	}
	for _, job := range jobs {
		fmt.Printf("%s\n", job.name)
		run, err := propack.RunMixed(cfg, job.apps, propack.Balanced(), 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  planner chose   : %s composition, %d instances\n",
			run.Plan.Strategy, run.Plan.Instances())
		fmt.Printf("  total service   : %.1fs\n", run.Metrics.TotalService)
		fmt.Printf("  expense         : $%.2f (+$%.2f modeling overhead)\n\n",
			run.Metrics.ExpenseUSD, run.Overhead.TotalUSD())
	}
	fmt.Println("The cross-application contention discount is estimated from pair probes")
	fmt.Println("(one small mixed instance per application pair), extending Eq. 1")
	fmt.Println("compositionally — the \"new modeling challenge\" the paper anticipates.")
}
