// Multi-platform: ProPack is portable — the same pipeline plans against
// AWS Lambda, Google Cloud Functions, Azure Functions, and the on-premise
// FuncX fabric (paper Figs. 18 and 21). The scaling model is re-fit per
// platform (its coefficients are platform properties), while the
// application's interference profile carries over.
//
//	go run ./examples/multiplatform
package main

import (
	"fmt"
	"log"

	propack "repro"
)

func main() {
	app := propack.SortWorkload()
	const concurrency = 1000

	platforms := []propack.PlatformConfig{
		propack.AWSLambda(),
		propack.GoogleCloudFunctions(),
		propack.AzureFunctions(),
		propack.FuncX(),
	}

	fmt.Printf("%s at C=%d:\n\n", app.Name(), concurrency)
	fmt.Printf("%-24s %6s %12s %12s %10s %10s\n",
		"platform", "degree", "service", "vs base", "expense", "vs base")
	for _, cfg := range platforms {
		rec, err := propack.Advise(cfg, app.Demand(), concurrency, propack.Balanced())
		if err != nil {
			log.Fatal(err)
		}
		base, err := propack.Run(cfg, app.Demand(), concurrency, 1, 2)
		if err != nil {
			log.Fatal(err)
		}
		packed, err := propack.Run(cfg, app.Demand(), concurrency, rec.Plan.Degree, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %6d %11.1fs %11.1f%% %9s %11.1f%%\n",
			cfg.Name, rec.Plan.Degree,
			packed.TotalService, 100*(1-packed.TotalService/base.TotalService),
			fmt.Sprintf("$%.2f", packed.ExpenseUSD),
			100*(1-packed.ExpenseUSD/base.ExpenseUSD))
	}
	fmt.Println("\nGoogle and Azure see larger expense cuts than AWS on shuffle-heavy apps:")
	fmt.Println("their per-GB networking fee shrinks when packed functions exchange data")
	fmt.Println("locally (paper Fig. 21).")
}
