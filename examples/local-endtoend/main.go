// Fully local end-to-end ProPack, no simulator in the execution path:
//
//  1. profile the real Smith-Waterman kernel packed as goroutines
//     (livemeasure) and fit Eq. 1 to the measured wall times;
//
//  2. adopt a control-plane scaling model (Eq. 2 — here the quadratic
//     delay the local runtime will impose, standing in for a congested
//     cloud control plane);
//
//  3. plan the packing degree with ProPack's Eq. 7;
//
//  4. execute BOTH the unpacked and the planned deployment on the local
//     FaaS runtime, where every function is real computation, and compare
//     real wall-clock makespans.
//
//     go run ./examples/local-endtoend
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/livemeasure"
	"repro/internal/localfaas"
	"repro/internal/workload"
)

func main() {
	w := workload.SmithWaterman{QueryLen: 128, Subjects: 48, SubjectLen: 192}
	const (
		functions = 48
		cores     = 2
		maxDegree = 8
	)

	// 1. Profile real interference and fit Eq. 1.
	etModel, samples, err := livemeasure.Profile(w, livemeasure.Options{
		Cores: cores, MaxDegree: maxDegree, Trials: 2, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d degrees of real packed execution; %v\n", len(samples), etModel)

	// 2. The control-plane model: 60 ms quadratic-ish growth per instance —
	// the congestion a burst of instance starts would see.
	const b2 = 0.060 // seconds per instance index
	scaling := core.ScalingModel{B1: 0.0005, B2: b2}
	delay := localfaas.QuadraticDelay(0.0005, b2, time.Second)

	// 3. Plan with ProPack.
	models := core.Models{
		ET:                 etModel,
		Scaling:            scaling,
		RatePerInstanceSec: 1.6667e-4,
		MaxDegree:          maxDegree,
	}
	plan, err := models.PlanFor(functions, core.Balanced())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ProPack's plan for C=%d: degree %d\n\n", functions, plan.Degree)

	// 4. Execute both deployments for real.
	run := func(degree int) *localfaas.Result {
		res, err := localfaas.Run(localfaas.Job{
			Workload:             w,
			Functions:            functions,
			Degree:               degree,
			CoresPerInstance:     cores,
			MaxParallelInstances: 4,
			Delay:                delay,
			Seed:                 9,
			RatePerInstanceSec:   1.6667e-4,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(1)
	packed := run(plan.Degree)
	fmt.Printf("%-12s %10s %12s %12s\n", "deployment", "instances", "scaling", "makespan")
	fmt.Printf("%-12s %10d %11.2fs %11.2fs\n", "unpacked", base.Metrics.Instances,
		base.Metrics.ScalingTime, base.Metrics.TotalService)
	fmt.Printf("%-12s %10d %11.2fs %11.2fs\n", "ProPack", packed.Metrics.Instances,
		packed.Metrics.ScalingTime, packed.Metrics.TotalService)
	fmt.Printf("\nreal wall-clock improvement: %.0f%% — every function was actual\n",
		100*(1-packed.Metrics.TotalService/base.Metrics.TotalService))
	fmt.Println("Smith-Waterman dynamic programming, not simulation.")
}
