// Xapian under a QoS bound: the paper's latency-critical case study
// (Fig. 20). The search engine serves ranked queries with a strict bound on
// the 95th-percentile service time; ProPack's Sec. 2.6 weight search picks
// the smallest service-time weight that still meets the bound, preserving
// as much cost optimization as possible.
//
//	go run ./examples/xapian-qos
package main

import (
	"fmt"
	"log"

	propack "repro"
	"repro/internal/workload"
)

func main() {
	// The real kernel, once: build an index shard and serve queries.
	task := workload.Xapian{Docs: 1500, Queries: 32}.NewTask(5)
	if _, err := task.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("served 32 ranked tf-idf queries over a 1500-document shard ✓")

	cfg := propack.AWSLambda()
	app := propack.XapianWorkload()
	const concurrency = 5000

	// What do the unconstrained objectives look like?
	for _, row := range []struct {
		name string
		w    propack.Weights
	}{
		{"service-only", propack.ServiceOnly()},
		{"balanced", propack.Balanced()},
		{"expense-only", propack.ExpenseOnly()},
	} {
		rec, err := propack.Advise(cfg, app.Demand(), concurrency, row.w)
		if err != nil {
			log.Fatal(err)
		}
		m, err := propack.Run(cfg, app.Demand(), concurrency, rec.Plan.Degree, 9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s degree %2d  p95 %7.1fs  expense $%.2f\n",
			row.name, rec.Plan.Degree, m.TailService, m.ExpenseUSD)
	}

	// Now impose a p95 bound between the two extremes and let ProPack find
	// the weights (Eqs. 8–9).
	svcRec, err := propack.Advise(cfg, app.Demand(), concurrency, propack.ServiceOnly())
	if err != nil {
		log.Fatal(err)
	}
	expRec, err := propack.Advise(cfg, app.Demand(), concurrency, propack.ExpenseOnly())
	if err != nil {
		log.Fatal(err)
	}
	best := svcRec.Models.ServiceTimeQuantile(concurrency, svcRec.Plan.Degree, 95)
	worst := expRec.Models.ServiceTimeQuantile(concurrency, expRec.Plan.Degree, 95)
	bound := best + 0.3*(worst-best)

	rec, weights, err := propack.AdviseQoS(cfg, app.Demand(), concurrency, bound)
	if err != nil {
		log.Fatal(err)
	}
	m, err := propack.Run(cfg, app.Demand(), concurrency, rec.Plan.Degree, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQoS bound p95 ≤ %.1fs → W_S=%.2f, W_E=%.2f, degree %d\n",
		bound, weights.Service, weights.Expense, rec.Plan.Degree)
	fmt.Printf("observed p95 %.1fs (bound met: %v), expense $%.2f\n",
		m.TailService, m.TailService <= bound*1.05, m.ExpenseUSD)
}
