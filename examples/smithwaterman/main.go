// Smith-Waterman: the paper's parallel bioinformatics case study (Fig. 17).
//
// Part 1 measures *real* packing interference on this machine: the actual
// Smith-Waterman DP kernel runs packed as goroutines at increasing degrees
// on a fixed core budget, showing the compute-bound degradation that makes
// this application pack poorly past the core count.
//
// Part 2 plans and runs the application at 5000-way concurrency on the
// simulated AWS Lambda, where ProPack still recovers most of the scaling
// bottleneck despite the low optimal degree.
//
//	go run ./examples/smithwaterman
package main

import (
	"fmt"
	"log"

	propack "repro"
	"repro/internal/livemeasure"
	"repro/internal/workload"
)

func main() {
	// Part 1: real interference, measured and fitted. The actual
	// Smith-Waterman kernel runs packed as goroutines on a bounded core
	// budget; Eq. 1 is fitted to the measured wall times — the same
	// pipeline ProPack runs against a live platform.
	w := workload.SmithWaterman{QueryLen: 160, Subjects: 64, SubjectLen: 256}
	const cores = 2
	fmt.Printf("real packed execution of Smith-Waterman on %d cores:\n", cores)
	model, samples, err := livemeasure.Profile(w, livemeasure.Options{
		Cores: cores, MaxDegree: 8, Trials: 2, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	solo := samples[0].ETSec
	for _, s := range samples {
		fmt.Printf("  degree %2d: wall %7.3fs  slowdown ×%.2f  (model %7.3fs)\n",
			s.Degree, s.ETSec, s.ETSec/solo, model.At(s.Degree))
	}
	fmt.Printf("  fitted Eq. 1: %v\n", model)

	// Part 2: at datacenter scale on the simulator.
	cfg := propack.AWSLambda()
	app := propack.SmithWatermanWorkload()
	const concurrency = 5000
	rec, err := propack.Advise(cfg, app.Demand(), concurrency, propack.Balanced())
	if err != nil {
		log.Fatal(err)
	}
	base, err := propack.Run(cfg, app.Demand(), concurrency, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	packed, err := propack.Run(cfg, app.Demand(), concurrency, rec.Plan.Degree, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s at C=%d on %s:\n", app.Name(), concurrency, cfg.Name)
	fmt.Printf("  memory-bound max degree : %d\n", cfg.Shape.MaxDegree(app.Demand()))
	fmt.Printf("  ProPack's chosen degree : %d (compute-bound apps pack shallowly)\n", rec.Plan.Degree)
	fmt.Printf("  total service           : %.1fs → %.1fs (%.0f%% better)\n",
		base.TotalService, packed.TotalService, 100*(1-packed.TotalService/base.TotalService))
	fmt.Printf("  expense                 : $%.2f → $%.2f (%.0f%% better)\n",
		base.ExpenseUSD, packed.ExpenseUSD, 100*(1-packed.ExpenseUSD/base.ExpenseUSD))
}
