// Map-reduce sort: the paper's Sort benchmark end to end.
//
// Part 1 actually runs the distributed sort with the real Go kernel: a
// mapper range-partitions synthetic records into an S3-like object store,
// "serverless" reducers (goroutines) sort their partitions, and the merged
// result is verified — the same dataflow the Hadoop-based benchmark uses.
//
// Part 2 scales the same application to 2000-way concurrency on the
// simulated AWS Lambda and shows what ProPack's packing does to turnaround
// time and cost.
//
//	go run ./examples/mapreduce-sort
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"
	"sync"

	propack "repro"
	"repro/internal/storage"
)

const (
	records    = 1 << 17
	reducers   = 8
	recordSize = 8
)

func main() {
	partOne()
	partTwo()
}

// partOne runs the real map-reduce sort through the in-memory object store.
func partOne() {
	store := storage.NewStore()

	// Map: generate records and range-partition them into the store.
	keys := make([]uint64, records)
	state := uint64(42)
	for i := range keys {
		state = state*6364136223846793005 + 1442695040888963407
		keys[i] = state
	}
	parts := make([][]byte, reducers)
	for _, k := range keys {
		p := int(k / (^uint64(0)/reducers + 1))
		var buf [recordSize]byte
		binary.BigEndian.PutUint64(buf[:], k)
		parts[p] = append(parts[p], buf[:]...)
	}
	for p, data := range parts {
		store.Put(fmt.Sprintf("shuffle/part-%03d", p), data)
	}

	// Reduce: one "serverless function" per partition sorts its shard and
	// writes the output object.
	var wg sync.WaitGroup
	for p := 0; p < reducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			data, err := store.Get(fmt.Sprintf("shuffle/part-%03d", p))
			if err != nil {
				log.Fatal(err)
			}
			ks := make([]uint64, len(data)/recordSize)
			for i := range ks {
				ks[i] = binary.BigEndian.Uint64(data[i*recordSize:])
			}
			sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
			out := make([]byte, len(data))
			for i, k := range ks {
				binary.BigEndian.PutUint64(out[i*recordSize:], k)
			}
			store.Put(fmt.Sprintf("output/part-%03d", p), out)
		}(p)
	}
	wg.Wait()

	// Verify global order across the concatenated output objects.
	var prev uint64
	total := 0
	for p := 0; p < reducers; p++ {
		data, err := store.Get(fmt.Sprintf("output/part-%03d", p))
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i+recordSize <= len(data); i += recordSize {
			k := binary.BigEndian.Uint64(data[i:])
			if k < prev {
				log.Fatalf("output out of order at partition %d", p)
			}
			prev = k
			total++
		}
	}
	fmt.Printf("part 1: sorted %d records across %d reducers via the object store ✓\n\n",
		total, reducers)
}

// partTwo runs the Sort application at scale on the simulated platform.
func partTwo() {
	cfg := propack.AWSLambda()
	app := propack.SortWorkload()
	const concurrency = 2000

	metrics, plan, err := propack.RunProPack(cfg, app.Demand(), concurrency, propack.Balanced(), 7)
	if err != nil {
		log.Fatal(err)
	}
	base, err := propack.Run(cfg, app.Demand(), concurrency, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("part 2: %s at C=%d on %s\n", app.Name(), concurrency, cfg.Name)
	fmt.Printf("  packing degree        : %d (max %d)\n", plan.Degree, rec(cfg, app))
	fmt.Printf("  turnaround (total svc): %.1fs → %.1fs\n", base.TotalService, metrics.TotalService)
	fmt.Printf("  expense incl. overhead: $%.2f → $%.2f\n", base.ExpenseUSD, metrics.ExpenseUSD)
}

func rec(cfg propack.PlatformConfig, app propack.Workload) int {
	return cfg.Shape.MaxDegree(app.Demand())
}
