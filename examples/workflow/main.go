// Multi-stage workflow: the paper's introduction motivates packing with
// applications "broken down into multiple steps, where each of the steps is
// processed in parallel by a large number of serverless functions". This
// example runs a two-stage map→reduce workflow (the Sort benchmark's real
// dataflow) with a barrier between stages, letting ProPack pick each
// stage's packing degree — note how the short I/O-heavy mappers pack deeper
// than the heavier reducers.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	propack "repro"
)

func main() {
	cfg := propack.AWSLambda()
	const concurrency = 2000

	mapper := propack.Demand{
		CPUSeconds: 8, IOSeconds: 12, MemoryMB: 256, MemBWMBps: 2000,
		InputMB: 16, OutputMB: 16, ShuffleFraction: 1,
	}
	stages := []propack.Stage{
		{Name: "map", Demand: mapper, Count: concurrency}, // Degree 0: ProPack decides
		{Name: "reduce", Demand: propack.SortWorkload().Demand(), Count: concurrency},
	}

	planned, err := propack.RunPipeline(cfg, stages, propack.Balanced(), 5)
	if err != nil {
		log.Fatal(err)
	}
	baseline := []propack.Stage{
		{Name: "map", Demand: mapper, Count: concurrency, Degree: 1},
		{Name: "reduce", Demand: propack.SortWorkload().Demand(), Count: concurrency, Degree: 1},
	}
	base, err := propack.RunPipeline(cfg, baseline, propack.Balanced(), 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("map→reduce workflow at C=%d per stage on %s\n\n", concurrency, cfg.Name)
	fmt.Printf("%-8s %14s %14s %12s %12s\n", "stage", "degree (plan)", "service", "p95", "expense")
	for i, st := range planned.Stages {
		fmt.Printf("%-8s %14d %13.1fs %11.1fs %11s\n",
			stages[i].Name, planned.Degrees[i], st.TotalService, st.TailService,
			fmt.Sprintf("$%.2f", st.ExpenseUSD))
	}
	fmt.Printf("\nend-to-end makespan : %.1fs (unpacked: %.1fs, %.0f%% better)\n",
		planned.TotalServiceSec, base.TotalServiceSec,
		100*(1-planned.TotalServiceSec/base.TotalServiceSec))
	fmt.Printf("total expense       : $%.2f (unpacked: $%.2f, %.0f%% better)\n",
		planned.ExpenseUSD, base.ExpenseUSD,
		100*(1-planned.ExpenseUSD/base.ExpenseUSD))
}
