// Joint degree × memory planning — ProPack's answer to AWS Lambda power
// tuning. Lambda couples CPU share to configured memory, so the instance
// size is a real knob: smaller instances are cheaper per second but pack
// fewer functions and interfere more. Tuning tools sweep the sizes by brute
// force; ProPack instead fits one model stack per size (the scaling probes
// run once — Eq. 2 is size-independent) and solves Eq. 7 over the whole
// (degree, memory) grid with a pruned 2-D argmin.
//
// This example
//
//  1. profiles Video on a four-point memory grid and prints the per-size
//     surface a power-tuning sweep would have measured;
//  2. asks for the joint optimum at several service/expense weights — the
//     chosen memory size moves with the objective;
//  3. plans under a p95 QoS bound (Eqs. 8–9 over the grid) and executes
//     the chosen (degree, memory) config against the tune-nothing
//     deployment (degree 1, largest size).
//
//	go run ./examples/joint-planning
package main

import (
	"fmt"
	"log"

	propack "repro"
)

func main() {
	cfg := propack.AWSLambda()
	app := propack.VideoWorkload()
	const concurrency = 5000
	sizes := []float64{2560, 5120, 7680, 10240}

	// 1. One modeling pipeline per size, one joint plan over all of them.
	rec, err := propack.AdviseJoint(cfg, app.Demand(), concurrency, propack.Balanced(), sizes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s, C=%d — per-size surface (balanced weights):\n",
		app.Name(), cfg.Name, concurrency)
	for _, s := range rec.Grid.Sizes {
		plan, err := s.Models.PlanFor(concurrency, propack.Balanced())
		if err != nil {
			log.Fatal(err)
		}
		marker := " "
		if s.MemMB == rec.Plan.MemMB {
			marker = "←"
		}
		fmt.Printf("  %6.0f MB: best degree %2d, predicted %6.1fs  $%5.2f  %s\n",
			s.MemMB, plan.Degree, plan.PredictedServiceSec, plan.PredictedExpenseUSD, marker)
	}
	fmt.Printf("joint optimum: degree %d at %.0f MB (modeling bill $%.4f)\n\n",
		rec.Plan.Degree, rec.Plan.MemMB, rec.Overhead.TotalUSD())

	// 2. The winning size follows the objective: pay mostly for expense and
	//    the planner drops to a smaller instance; pay for service time and
	//    the big instance's packing headroom wins.
	fmt.Println("weight sweep (W_S = weight on service time):")
	pl, err := propack.NewJointPlanner(rec.Grid)
	if err != nil {
		log.Fatal(err)
	}
	for _, ws := range []float64{0, 0.25, 0.5, 0.75, 1} {
		plan, err := pl.PlanJointFor(concurrency, propack.Weights{Service: ws, Expense: 1 - ws})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  W_S=%.2f → degree %2d at %6.0f MB  (%6.1fs, $%5.2f)\n",
			ws, plan.Degree, plan.MemMB, plan.PredictedServiceSec, plan.PredictedExpenseUSD)
	}

	// 3. QoS: the tightest plan that still meets a p95 bound, then run it.
	const qosSec = 300
	qosRec, weights, err := propack.AdviseJointQoS(cfg, app.Demand(), concurrency, qosSec, sizes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQoS p95 ≤ %.0fs → W_S=%.2f, degree %d at %.0f MB\n",
		float64(qosSec), weights.Service, qosRec.Plan.Degree, qosRec.Plan.MemMB)

	sized, err := cfg.WithMemory(qosRec.Plan.MemMB)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := propack.Run(sized, app.Demand(), concurrency, qosRec.Plan.Degree, 1)
	if err != nil {
		log.Fatal(err)
	}
	base, err := propack.Run(cfg, app.Demand(), concurrency, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-28s %10s %10s\n", "", "untuned", "joint plan")
	fmt.Printf("%-28s %9.1fs %9.1fs\n", "p95 service time", base.TailService, tuned.TailService)
	fmt.Printf("%-28s %9.1fs %9.1fs\n", "total service time", base.TotalService, tuned.TotalService)
	fmt.Printf("%-28s %9.2f$ %9.2f$\n", "expense", base.ExpenseUSD, tuned.ExpenseUSD)
}
