// Fault-tolerant execution: what ProPack's packing trade looks like on a
// platform that actually fails.
//
// Deep packing concentrates work: a crashed instance at degree P loses (and
// re-bills) P functions' progress, so the failure-blind recommendation
// overshoots once mid-execution crashes are real. This example
//
//  1. plans the Video workload both ways — failure-blind Advise vs
//     reliability-aware AdviseReliable — under a crash rate λ;
//  2. executes both plans on the simulator with the same crash injection,
//     exponential-backoff retries, and p90 straggler hedging, and compares
//     expense, service time, and the fault counters;
//  3. shows the same resilience machinery on the local runtime: kernels that
//     panic are retried per instance, and a context deadline aborts the job
//     promptly with partial results.
//
//	go run ./examples/fault-tolerance
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	propack "repro"
	"repro/internal/localfaas"
	"repro/internal/workload"
)

func main() {
	cfg := propack.AWSLambda()
	app := propack.VideoWorkload()
	const c = 2000
	fm := propack.FailureModel{CrashRate: 0.005, RetryDelaySec: 5}

	fmt.Printf("=== Planning %s at C=%d under crashes (λ=%g per instance-sec) ===\n\n",
		app.Name(), c, fm.CrashRate)
	blind, err := propack.Advise(cfg, app.Demand(), c, propack.ExpenseOnly())
	if err != nil {
		log.Fatal(err)
	}
	reliable, err := propack.AdviseReliable(cfg, app.Demand(), c, propack.ExpenseOnly(), fm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-blind degree   : %d\n", blind.Plan.Degree)
	fmt.Printf("reliability-aware      : %d (crashes at degree P lose P functions' work)\n\n",
		reliable.Plan.Degree)

	// Execute both plans under the same injection: crashes, exponential
	// backoff with a generous budget, and speculative hedging past p90.
	run := cfg
	run.CrashRate = fm.CrashRate
	run.Retry = propack.Backoff{
		Kind: propack.BackoffExponential, BaseSec: 2, CapSec: 60, MaxAttempts: 200,
	}
	run.StragglerProb = 0.05
	run.StragglerFactor = 3
	run.Hedge = propack.Hedge{Quantile: 90}

	fmt.Printf("=== Simulated execution with crash + straggler injection ===\n\n")
	for _, plan := range []struct {
		name   string
		degree int
	}{
		{"failure-blind", blind.Plan.Degree},
		{"reliability-aware", reliable.Plan.Degree},
	} {
		m, err := propack.Run(run, app.Demand(), c, plan.degree, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s degree %2d: $%.2f, service %.0fs\n",
			plan.name, plan.degree, m.ExpenseUSD, m.TotalService)
		fmt.Printf("%18s crashes %d, retries %d, hedges %d launched / %d won, $%.2f wasted\n",
			"", m.Crashes, m.Retries, m.HedgesLaunched, m.HedgesWon, m.WastedUSD)
	}

	// The same policies protect real kernels on the local runtime.
	fmt.Printf("\n=== Local runtime: panicking kernels and deadlines ===\n\n")
	res, err := localfaas.Run(localfaas.Job{
		Workload:         panicky{workload.StatelessCost{Images: 1, SrcSize: 48}},
		Functions:        8,
		Degree:           2,
		CoresPerInstance: 2,
		Seed:             1,
		Retry:            propack.Backoff{Kind: propack.BackoffFixed, BaseSec: 0.01, MaxAttempts: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	retries := 0
	for _, r := range res.Instances {
		retries += r.Retries
	}
	fmt.Printf("survived injected kernel panics: %d instances completed, %d retries\n",
		len(res.Instances), retries)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, err = localfaas.RunContext(ctx, localfaas.Job{
		Workload:         slow{},
		Functions:        4,
		Degree:           1,
		CoresPerInstance: 1,
		Seed:             1,
	})
	fmt.Printf("deadline abort after %v: %v\n", time.Since(begin).Round(time.Millisecond), err)
}

// panicky wraps a real kernel and panics on each function's first attempt.
type panicky struct{ inner workload.Workload }

var (
	attemptsMu sync.Mutex
	attempts   = map[int64]int{}
)

func (p panicky) Name() string          { return p.inner.Name() }
func (p panicky) Demand() propack.Demand { return p.inner.Demand() }
func (p panicky) NewTask(seed int64) workload.Task {
	return panickyTask{p.inner.NewTask(seed), seed}
}

type panickyTask struct {
	inner workload.Task
	seed  int64
}

func (t panickyTask) Run() (uint64, error) {
	attemptsMu.Lock()
	attempts[t.seed]++
	first := attempts[t.seed] == 1
	attemptsMu.Unlock()
	if first {
		panic("injected kernel panic")
	}
	return t.inner.Run()
}

// slow blocks long enough that only a deadline ends it.
type slow struct{}

func (slow) Name() string                { return "Slow" }
func (slow) Demand() (d propack.Demand)  { return }
func (slow) NewTask(int64) workload.Task { return slowTask{} }

type slowTask struct{}

func (slowTask) Run() (uint64, error) { time.Sleep(10 * time.Second); return 1, nil }
