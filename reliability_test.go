package propack

import (
	"testing"
)

// TestAdviseReliableAgreesAtZeroRates: with no failures modeled, the
// reliability-aware advisor is the plain advisor, exactly.
func TestAdviseReliableAgreesAtZeroRates(t *testing.T) {
	cfg := AWSLambda()
	d := VideoWorkload().Demand()
	for _, w := range []Weights{Balanced(), ServiceOnly(), ExpenseOnly()} {
		blind, err := Advise(cfg, d, 2000, w)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := AdviseReliable(cfg, d, 2000, w, FailureModel{})
		if err != nil {
			t.Fatal(err)
		}
		if blind.Plan != rel.Plan {
			t.Fatalf("zero-rate plans diverged:\nblind %+v\nrel   %+v", blind.Plan, rel.Plan)
		}
	}
}

// TestAdviseReliableBeatsBlindUnderCrashes is the end-to-end acceptance
// check: under mid-execution crash injection, the failure-aware advisor
// recommends a strictly lower packing degree than the failure-blind one —
// deep packing makes every crash lose (and re-bill) more work — and that
// lower degree wins in actual simulation.
func TestAdviseReliableBeatsBlindUnderCrashes(t *testing.T) {
	cfg := AWSLambda()
	d := VideoWorkload().Demand()
	const c = 2000
	fm := FailureModel{CrashRate: 0.005, RetryDelaySec: 5} // λ·ET ≈ 0.7–1.5 over the degree range

	// The simulation platform mirrors the modeled failure rate, with a
	// budget generous enough that bursts complete.
	run := cfg
	run.CrashRate = fm.CrashRate
	run.Retry = Backoff{Kind: BackoffExponential, BaseSec: 2, CapSec: 60, MaxAttempts: 200}
	seeds := []int64{1, 2, 3, 4, 5}

	// Expense objective: crashes inflate per-instance compute by e^{λT}, so
	// the blind "pack as deep as possible" answer overshoots.
	blindE, err := Advise(cfg, d, c, ExpenseOnly())
	if err != nil {
		t.Fatal(err)
	}
	relE, err := AdviseReliable(cfg, d, c, ExpenseOnly(), fm)
	if err != nil {
		t.Fatal(err)
	}
	if relE.Plan.Degree >= blindE.Plan.Degree {
		t.Fatalf("reliable advisor must pick a strictly lower degree: blind %d, reliable %d",
			blindE.Plan.Degree, relE.Plan.Degree)
	}
	for _, seed := range seeds {
		mb, err := Run(run, d, c, blindE.Plan.Degree, seed)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := Run(run, d, c, relE.Plan.Degree, seed)
		if err != nil {
			t.Fatal(err)
		}
		if mr.ExpenseUSD >= mb.ExpenseUSD {
			t.Fatalf("seed %d: reliable degree %d should be cheaper than blind %d under crashes: $%.4f vs $%.4f",
				seed, relE.Plan.Degree, blindE.Plan.Degree, mr.ExpenseUSD, mb.ExpenseUSD)
		}
		if mr.Crashes == 0 || mb.Crashes == 0 {
			t.Fatalf("seed %d: injection inactive (crashes %d/%d)", seed, mr.Crashes, mb.Crashes)
		}
	}

	// Balanced objective: the service side of the trade — retried deep
	// instances stretch the makespan, so the lower degree also finishes
	// sooner on average.
	blindB, err := Advise(cfg, d, c, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	relB, err := AdviseReliable(cfg, d, c, Balanced(), fm)
	if err != nil {
		t.Fatal(err)
	}
	if relB.Plan.Degree >= blindB.Plan.Degree {
		t.Fatalf("balanced reliable degree %d not below blind %d", relB.Plan.Degree, blindB.Plan.Degree)
	}
	var svcBlind, svcRel float64
	for _, seed := range seeds {
		mb, err := Run(run, d, c, blindB.Plan.Degree, seed)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := Run(run, d, c, relB.Plan.Degree, seed)
		if err != nil {
			t.Fatal(err)
		}
		svcBlind += mb.TotalService
		svcRel += mr.TotalService
	}
	if svcRel >= svcBlind {
		t.Fatalf("reliable balanced plan should cut mean service under crashes: %.0f vs %.0f s",
			svcRel/float64(len(seeds)), svcBlind/float64(len(seeds)))
	}
}
