package propack

import (
	"fmt"
	"io"
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// --- Figure/table regeneration benches -------------------------------------
//
// One benchmark per paper figure: each iteration regenerates the figure's
// rows end-to-end (bursts, model fits, optimizer). They run on the reduced
// concurrency grid so `go test -bench=.` stays tractable; `cmd/expgen`
// produces the full-grid tables.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Seed: 1, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Fprint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig4(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5a(b *testing.B)      { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)      { benchExperiment(b, "fig5b") }
func BenchmarkFig6(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)      { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)      { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)      { benchExperiment(b, "fig21") }
func BenchmarkValidation(b *testing.B) { benchExperiment(b, "validation") }

// Extension experiments (paper Sec. 5 discussion, implemented here).
func BenchmarkExtHetero(b *testing.B)    { benchExperiment(b, "ext-hetero") }
func BenchmarkExtProvider(b *testing.B)  { benchExperiment(b, "ext-provider") }
func BenchmarkExtThrottle(b *testing.B)  { benchExperiment(b, "ext-throttle") }
func BenchmarkExtDecentral(b *testing.B) { benchExperiment(b, "ext-decentral") }
func BenchmarkExtAmortize(b *testing.B)  { benchExperiment(b, "ext-amortize") }
func BenchmarkExtJoint(b *testing.B)     { benchExperiment(b, "ext-joint") }

// --- Ablation benches (DESIGN.md §5) ---------------------------------------

func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkAblationSampling compares the cost of ProPack's alternate-point
// interference profile against the full sweep it avoids.
func BenchmarkAblationSampling(b *testing.B) {
	for _, full := range []bool{false, true} {
		name := "alternate"
		if full {
			name = "full-sweep"
		}
		b.Run(name, func(b *testing.B) {
			cfg := platform.AWSLambda()
			d := VideoWorkload().Demand()
			for i := 0; i < b.N; i++ {
				meas := &core.SimMeasurer{Config: cfg, Demand: d, Seed: int64(i)}
				opts := core.ProfileOptionsFor(cfg, d)
				opts.FullSweep = full
				if _, _, _, _, err := core.BuildModels(meas, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAlternatives times the strategies the paper rejects next
// to ProPack at one operating point.
func BenchmarkAblationAlternatives(b *testing.B) {
	cfg := platform.AWSLambda()
	d := VideoWorkload().Demand()
	const c = 1000
	strategies := map[string]func(i int) error{
		"serial-batching": func(i int) error {
			_, err := (baseline.SerialBatching{BatchSize: 250}).Execute(cfg, d, c, int64(i))
			return err
		},
		"staggered": func(i int) error {
			_, err := (baseline.Staggered{DelaySec: 0.2}).Execute(cfg, d, c, int64(i))
			return err
		},
		"pywren": func(i int) error {
			_, err := (baseline.Pywren{}).Execute(cfg, d, c, int64(i))
			return err
		},
		"propack": func(i int) error {
			_, err := orchestrator.RunProPack(cfg, d, c, core.Balanced(), int64(i))
			return err
		},
	}
	for name, run := range strategies {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := run(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Component microbenches -------------------------------------------------

// BenchmarkBurst5000 times one full discrete-event simulation of a 5000-
// instance burst — the workhorse behind every experiment.
func BenchmarkBurst5000(b *testing.B) {
	cfg := platform.AWSLambda()
	d := VideoWorkload().Demand()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Run(cfg, platform.Burst{
			Demand: d, Functions: 5000, Degree: 1, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBurst5000Observed is BenchmarkBurst5000 with an in-memory span
// recorder attached. Comparing the two bounds observability's overhead; the
// nil-recorder path in BenchmarkBurst5000 must stay within noise of the
// pre-observability baseline.
func BenchmarkBurst5000Observed(b *testing.B) {
	cfg := platform.AWSLambda()
	d := VideoWorkload().Demand()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Run(cfg, platform.Burst{
			Demand: d, Functions: 5000, Degree: 1, Seed: int64(i),
			Recorder: &obs.Memory{},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalDegree times Eq. 7's search across the full degree range.
func BenchmarkOptimalDegree(b *testing.B) {
	cfg := platform.AWSLambda()
	d := VideoWorkload().Demand()
	meas := &core.SimMeasurer{Config: cfg, Demand: d, Seed: 1}
	models, _, _, _, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, d))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := models.OptimalDegree(5000, core.Balanced()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleSweep times the brute-force search ProPack's model
// replaces — the cost asymmetry the whole paper leans on.
func BenchmarkOracleSweep(b *testing.B) {
	cfg := platform.AWSLambda()
	d := SortWorkload().Demand()
	for i := 0; i < b.N; i++ {
		if _, _, err := (baseline.Oracle{Objective: baseline.MinTotalService}).Search(cfg, d, 1000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Real-kernel benches: the actual Go computations behind each workload.
func BenchmarkKernels(b *testing.B) {
	kernels := []struct {
		name string
		w    Workload
	}{
		{"video", workload.Video{Frames: 4}},
		{"sort", workload.Sort{Records: 1 << 14}},
		{"resize", workload.StatelessCost{Images: 2, SrcSize: 128}},
		{"smith-waterman", workload.SmithWaterman{QueryLen: 128, Subjects: 8, SubjectLen: 128}},
		{"xapian", workload.Xapian{Docs: 500, Queries: 16}},
	}
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := k.w.NewTask(int64(i)).Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalPacking measures real goroutine-level packing interference
// on the host machine: the same total work at increasing packing degrees.
func BenchmarkLocalPacking(b *testing.B) {
	w := workload.StatelessCost{Images: 1, SrcSize: 128}
	for _, degree := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("degree-%d", degree), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := workload.RunPacked(w, degree, 2, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Planner hot-path benches ------------------------------------------------
//
// These four pin the amortized-planner work: BenchmarkAdvise is the full
// modeling-plus-planning pipeline, BenchmarkQoSPlan the Sec. 2.6 weight grid
// on prebuilt models, BenchmarkPlanMixed the heterogeneous composition
// search, and BenchmarkBurst the discrete-event burst behind every sweep
// iteration. REPORT.md and BENCH_PLANNER.json record their trajectory.

// BenchmarkAdvise runs the end-to-end pipeline: interference and scaling
// probes, model fits, and the Eq. 5–7 degree search.
func BenchmarkAdvise(b *testing.B) {
	cfg := platform.AWSLambda()
	d := VideoWorkload().Demand()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Advise(cfg, d, 5000, Balanced()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchModels builds one set of fitted models for planner-only benches.
func benchModels(b *testing.B) core.Models {
	b.Helper()
	cfg := platform.AWSLambda()
	d := VideoWorkload().Demand()
	meas := &core.SimMeasurer{Config: cfg, Demand: d, Seed: 1}
	models, _, _, _, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, d))
	if err != nil {
		b.Fatal(err)
	}
	return models
}

// BenchmarkQoSPlan times the Sec. 2.6 QoS weight search on prebuilt models.
// The bound is set just above the tightest achievable tail, so the search
// must walk deep into the weight grid — the paper's W_S=0.65-style regime.
func BenchmarkQoSPlan(b *testing.B) {
	models := benchModels(b)
	const c = 5000
	tightest, err := models.TailServiceAt(c, core.ServiceOnly(), 95)
	if err != nil {
		b.Fatal(err)
	}
	qos := tightest * 1.02
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := models.QoSPlan(c, qos, core.QoSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanJoint times joint degree × memory planning over a 5-size
// grid on a warm Planner — the acceptance comparison for the pruned 2-D
// argmin is against BenchmarkQoSPlan: K sizes must cost much less than K×
// the 1-D search. The cached-plan sub-benchmark is the steady-state serving
// path and must not allocate.
func BenchmarkPlanJoint(b *testing.B) {
	cfg := platform.AWSLambda()
	d := VideoWorkload().Demand()
	sizes := []float64{2048, 4096, 6144, 8192, 10240}
	rec, err := AdviseJoint(cfg, d, 5000, Balanced(), sizes)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := NewJointPlanner(rec.Grid)
	if err != nil {
		b.Fatal(err)
	}
	const c = 5000
	// The tightest achievable tail across the grid; the bound just above it
	// forces the weight search deep into the grid, as in BenchmarkQoSPlan.
	tight := math.Inf(1)
	for _, s := range rec.Grid.Sizes {
		v, err := s.Models.TailServiceAt(c, core.ServiceOnly(), 95)
		if err != nil {
			b.Fatal(err)
		}
		if v < tight {
			tight = v
		}
	}
	qos := tight * 1.02
	if _, _, err := pl.QoSPlanJoint(c, qos, core.QoSOptions{}); err != nil {
		b.Fatal(err)
	}
	b.Run("qos", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := pl.QoSPlanJoint(c, qos, core.QoSOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-plan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pl.PlanJointFor(c, Balanced()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanMixed times the heterogeneous composition search over three
// applications of contrasting footprints.
func BenchmarkPlanMixed(b *testing.B) {
	apps := []core.App{
		{Name: "video", MemoryMB: 512, Count: 300, ET: core.ETModel{MfuncGB: 0.5, Alpha: 0.35, Intercept: 2.1}},
		{Name: "sort", MemoryMB: 256, Count: 400, ET: core.ETModel{MfuncGB: 0.25, Alpha: 0.55, Intercept: 1.4}},
		{Name: "xapian", MemoryMB: 1024, Count: 150, ET: core.ETModel{MfuncGB: 1.0, Alpha: 0.22, Intercept: 1.9}},
	}
	opts := core.MixedPlanOptions{
		InstanceMemoryMB:   10240,
		MaxExecSec:         900,
		Weights:            core.Balanced(),
		Scaling:            core.ScalingModel{B1: 2e-6, B2: 0.004, B3: 0.1},
		RatePerInstanceSec: 0.0001667,
		CrossDiscount:      0.2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanMixed(apps, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBurst times the burst inner loop at a packed degree (the planner's
// recommendation regime), complementing the degree-1 BenchmarkBurst5000.
func BenchmarkBurst(b *testing.B) {
	cfg := platform.AWSLambda()
	d := VideoWorkload().Demand()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := platform.Run(cfg, platform.Burst{
			Demand: d, Functions: 5000, Degree: 8, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		// Metrics extraction is part of every sweep iteration; include it so
		// the quantile-scratch work is measured too.
		m := trace.FromResult(res)
		if m.TotalService <= 0 {
			b.Fatal("degenerate burst")
		}
	}
}

// BenchmarkPlannerConcurrent serves planner lookups from all procs at once
// through one shared Planner — the concurrent-serving regime the sharded,
// lock-free table cache exists for. Run with -cpu 1,2,4 to see scaling;
// before the sharded cache every goroutine serialized on one mutex.
func BenchmarkPlannerConcurrent(b *testing.B) {
	models := benchModels(b)
	pl := core.NewPlanner(models)
	concurrencies := []int{500, 1000, 2500, 5000, 7500, 10000}
	// Warm every table so the measurement is the steady-state hit path.
	for _, c := range concurrencies {
		if _, err := pl.PlanFor(c, core.Balanced()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c := concurrencies[i%len(concurrencies)]
			if _, err := pl.PlanFor(c, core.Balanced()); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// --- Parallel sweep engine benches ------------------------------------------
//
// BenchmarkSweepSequential vs BenchmarkSweepParallel measure the speedup of
// the deterministic fan-out engine on an identical exhaustive degree sweep
// (the outputs are byte-identical by construction — the determinism tests in
// internal/baseline enforce it). The parallel variant uses GOMAXPROCS
// workers, so the speedup scales with the host's core count; REPORT.md
// records the measured ratio.

func benchSweep(b *testing.B, workers int) {
	b.Helper()
	cfg := platform.AWSLambda()
	d := VideoWorkload().Demand()
	const c = 2000
	maxDeg := cfg.Shape.MaxDegree(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all, err := baseline.SweepWithOptions(cfg, d, c, 1, maxDeg,
			baseline.SweepOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(all) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B)   { benchSweep(b, 0) }
