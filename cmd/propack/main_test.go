package main

import (
	"strings"
	"testing"
)

// TestUsageListsEveryCommand pins the help text to the dispatch table: a
// subcommand added to `commands` shows up in `propack -h` by construction,
// and this test fails if anyone reintroduces a hand-maintained usage string
// that misses one.
func TestUsageListsEveryCommand(t *testing.T) {
	var sb strings.Builder
	usage(&sb)
	help := sb.String()
	if len(commands) < 9 {
		t.Fatalf("command table has %d entries; expected at least 9 (did dispatch move off the table?)", len(commands))
	}
	for _, c := range commands {
		if !strings.Contains(help, "  "+c.name+" ") && !strings.Contains(help, "  "+c.name+"\n") {
			t.Errorf("usage output missing command %q:\n%s", c.name, help)
		}
		if c.summary == "" {
			t.Errorf("command %q has no summary", c.name)
		}
		if !strings.Contains(help, c.summary) {
			t.Errorf("usage output missing summary for %q", c.name)
		}
		if c.run == nil {
			t.Errorf("command %q has no implementation", c.name)
		}
	}
}

func TestCommandByName(t *testing.T) {
	for _, c := range commands {
		got := commandByName(c.name)
		if got == nil || got.name != c.name {
			t.Errorf("commandByName(%q) = %v", c.name, got)
		}
	}
	if got := commandByName("no-such-command"); got != nil {
		t.Errorf("commandByName(no-such-command) = %v, want nil", got)
	}
}

func TestParseMemGrid(t *testing.T) {
	got, err := parseMemGrid(" 2048, 4096 ,10240 ")
	if err != nil {
		t.Fatalf("parseMemGrid: %v", err)
	}
	want := []float64{2048, 4096, 10240}
	if len(got) != len(want) {
		t.Fatalf("parseMemGrid = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseMemGrid = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", ",,", "abc", "2048,NaN", "2048,+Inf"} {
		if _, err := parseMemGrid(bad); err == nil {
			t.Errorf("parseMemGrid(%q) accepted", bad)
		}
	}
}

func TestCommandNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range commands {
		if seen[c.name] {
			t.Errorf("duplicate command %q", c.name)
		}
		seen[c.name] = true
	}
}
