// Command propack is the CLI face of the library: it profiles an
// application on a platform, prints ProPack's fitted models and recommended
// packing degree, executes plans on the simulated platform, and can run the
// real workload kernels packed locally.
//
// Usage:
//
//	propack advise -app Video -platform aws -c 5000 [-ws 0.5 | -qos 120] [-mem.grid 2560,5120,10240]
//	propack run    -app Video -platform aws -c 5000 -degree 10 [-mem.grid ...]
//	propack sweep  -app Sort  -platform aws -c 2000 [-mem.grid ...]
//	propack local  -app "Stateless Cost" -degree 8 -cores 4
//	propack serve  -addr 127.0.0.1:8080
//	propack apps
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/funcx"
	"repro/internal/localfaas"
	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/resilience"
	"repro/internal/trace"
	"repro/internal/workload"
)

// command is one subcommand: its dispatch name, the one-line summary that
// usage() renders, and the implementation.
type command struct {
	name    string
	summary string
	run     func(args []string) error
}

// commands is the dispatch table. Adding an entry here is the single step
// that both routes the subcommand and documents it in `propack -h` — the
// help text is generated from this table, so the two cannot drift.
var commands = []command{
	{"advise", "profile an app on a platform and print the optimal packing plan", cmdAdvise},
	{"run", "execute C functions at a packing degree on the simulated platform", cmdRun},
	{"sweep", "run every feasible packing degree and print the metrics", cmdSweep},
	{"local", "run the real workload kernel packed as goroutines on this machine", cmdLocal},
	{"hetero", "plan and run a heterogeneous two-application job (Sec. 5 extension)", cmdHetero},
	{"pareto", "print the service/expense Pareto frontier of packing degrees", cmdPareto},
	{"validate", "run the Sec. 2.4 Pearson χ² goodness-of-fit for an app/platform", cmdValidate},
	{"serve", "run the planner as a hardened HTTP daemon (admission control, rate limits, drain)", cmdServe},
	{"apps", "list the benchmark applications", cmdApps},
}

func commandByName(name string) *command {
	for i := range commands {
		if commands[i].name == name {
			return &commands[i]
		}
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "-h" || name == "--help" || name == "help" {
		usage(os.Stdout)
		return
	}
	cmd := commandByName(name)
	if cmd == nil {
		fmt.Fprintf(os.Stderr, "propack: unknown command %q\n", name)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err := cmd.run(os.Args[2:]); err != nil {
		fmt.Fprintln(os.Stderr, "propack:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: propack <command> [flags]")
	fmt.Fprintln(w, "\ncommands:")
	width := 0
	for _, c := range commands {
		if len(c.name) > width {
			width = len(c.name)
		}
	}
	for _, c := range commands {
		fmt.Fprintf(w, "  %-*s  %s\n", width, c.name, c.summary)
	}
	fmt.Fprintln(w, "\nrun 'propack <command> -h' for that command's flags")
}

func platformByName(name string) (platform.Config, error) {
	switch strings.ToLower(name) {
	case "aws", "lambda", "aws-lambda":
		return platform.AWSLambda(), nil
	case "google", "gcf":
		return platform.GoogleCloudFunctions(), nil
	case "azure":
		return platform.AzureFunctions(), nil
	case "funcx":
		return funcx.Config(), nil
	default:
		return platform.Config{}, fmt.Errorf("unknown platform %q (aws, google, azure, funcx)", name)
	}
}

// parseMemGrid parses the -mem.grid flag: a comma-separated list of memory
// sizes in MB, strictly increasing (the core layer enforces the ordering so
// a shuffled grid fails loudly rather than silently re-sorting).
func parseMemGrid(s string) ([]float64, error) {
	var sizes []float64
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		mb, err := strconv.ParseFloat(field, 64)
		if err != nil || math.IsNaN(mb) || math.IsInf(mb, 0) {
			return nil, fmt.Errorf("bad -mem.grid entry %q (want comma-separated MB values)", field)
		}
		sizes = append(sizes, mb)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("-mem.grid lists no memory sizes")
	}
	return sizes, nil
}

func cmdApps([]string) error {
	for _, w := range workload.All() {
		d := w.Demand()
		fmt.Printf("%-15s solo %.0fs (cpu %.0fs / io %.0fs), %.0f MB, max degree on 10GB Lambda: %d\n",
			w.Name(), d.SoloSeconds(), d.CPUSeconds, d.IOSeconds, d.MemoryMB,
			platform.AWSLambda().Shape.MaxDegree(d))
	}
	return nil
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	app := fs.String("app", "Video", "application name (see `propack apps`)")
	plat := fs.String("platform", "aws", "platform: aws, google, azure, funcx")
	c := fs.Int("c", 5000, "concurrency level (number of logical functions)")
	ws := fs.Float64("ws", 0.5, "service-time weight W_S (expense weight is 1−W_S)")
	qos := fs.Float64("qos", 0, "p95 service-time bound in seconds (0 = no QoS; overrides -ws)")
	crashRate := fs.Float64("crashrate", 0, "plan for this mid-execution crash rate λ (reliability-aware planning)")
	retryDelay := fs.Float64("retrydelay", 5, "modeled retry delay per crash in seconds (with -crashrate)")
	memGrid := fs.String("mem.grid", "", "comma-separated memory sizes in MB: plan jointly over (degree, memory) instead of degree alone")
	registry := fs.String("registry", "", "model registry directory (cache fitted models across runs)")
	ci := fs.Bool("ci", false, "bootstrap 95% confidence intervals for the fitted parameters")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workload.ByName(*app)
	if err != nil {
		return err
	}
	cfg, err := platformByName(*plat)
	if err != nil {
		return err
	}
	if *qos > 0 && *crashRate > 0 {
		return fmt.Errorf("-qos and -crashrate cannot be combined: QoS planning has no reliability-aware variant")
	}
	if *memGrid != "" {
		if *crashRate > 0 {
			return fmt.Errorf("-mem.grid and -crashrate cannot be combined: joint planning has no reliability-aware variant")
		}
		if *registry != "" || *ci {
			return fmt.Errorf("-mem.grid supports neither -registry nor -ci yet")
		}
		return adviseJoint(cfg, w, *memGrid, *c, *ws, *qos, *seed)
	}
	meas := &core.SimMeasurer{Config: cfg, Demand: w.Demand(), Seed: *seed}
	var models core.Models
	var overhead core.Overhead
	if *registry != "" {
		reg, err := core.NewRegistry(*registry)
		if err != nil {
			return err
		}
		cached := false
		models, cached, err = reg.LoadOrBuild(cfg.Name, w.Name(), meas, core.ProfileOptionsFor(cfg, w.Demand()))
		if err != nil {
			return err
		}
		if cached {
			fmt.Printf("(models loaded from registry %s — no probes run)\n", *registry)
		}
	} else {
		var etS []core.ETSample
		var scS []core.ScalingSample
		models, etS, scS, overhead, err = core.BuildModels(meas, core.ProfileOptionsFor(cfg, w.Demand()))
		if err != nil {
			return err
		}
		fmt.Printf("probe runs    : %d interference, %d scaling (%.0f probe-seconds)\n",
			len(etS), len(scS), overhead.ExecProbeSec)
		if *ci {
			conf, err := core.ConfidenceFor(etS, models.ET.MfuncGB, scS, core.ConfidenceOptions{Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Printf("95%% intervals : α %v, β1 %v, β2 %v\n", conf.Alpha, conf.B1, conf.B2)
		}
	}
	fmt.Printf("application   : %s on %s\n", w.Name(), cfg.Name)
	fmt.Printf("interference  : %s\n", models.ET)
	fmt.Printf("scaling model : %s\n", models.Scaling)
	fmt.Printf("max degree    : %d\n", models.MaxDegree)

	var plan core.Plan
	var weights core.Weights
	switch {
	case *qos > 0:
		plan, weights, err = models.QoSPlan(*c, *qos, core.QoSOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("QoS weights   : W_S=%.2f W_E=%.2f (p95 bound %.1fs)\n",
			weights.Service, weights.Expense, *qos)
	case *crashRate > 0:
		weights = core.Weights{Service: *ws, Expense: 1 - *ws}
		rm := core.ReliableModels{Models: models,
			Failure: core.FailureModel{CrashRate: *crashRate, RetryDelaySec: *retryDelay}}
		plan, err = rm.PlanFor(*c, weights)
		if err != nil {
			return err
		}
		blind, err := models.PlanFor(*c, weights)
		if err != nil {
			return err
		}
		fmt.Printf("failure model : λ=%g crashes/instance-sec, retry delay %.1fs (blind degree would be %d)\n",
			*crashRate, *retryDelay, blind.Degree)
	default:
		weights = core.Weights{Service: *ws, Expense: 1 - *ws}
		plan, err = models.PlanFor(*c, weights)
		if err != nil {
			return err
		}
	}
	if *crashRate > 0 {
		// The 2%-band is defined on the failure-blind objective; under a
		// failure model just report the chosen degree.
		fmt.Printf("\nrecommended packing degree at C=%d: %d (reliability-aware)\n", *c, plan.Degree)
	} else {
		lo, hi, err := models.DegreeRange(*c, weights, 0.02)
		if err != nil {
			return err
		}
		fmt.Printf("\nrecommended packing degree at C=%d: %d (degrees %d–%d stay within 2%% of optimal)\n",
			*c, plan.Degree, lo, hi)
	}
	fmt.Printf("predicted service: %.1fs (baseline %.1fs)\n", plan.PredictedServiceSec, plan.BaselineServiceSec)
	fmt.Printf("predicted expense: $%.2f (baseline $%.2f)\n", plan.PredictedExpenseUSD, plan.BaselineExpenseUSD)
	fmt.Printf("modeling bill    : $%.4f\n", overhead.TotalUSD())
	return nil
}

// adviseJoint is advise's -mem.grid branch: profile the application once
// per memory size, then run the pruned 2-D argmin over (degree, memory).
func adviseJoint(cfg platform.Config, w workload.Workload, gridSpec string, c int, ws, qos float64, seed int64) error {
	sizes, err := parseMemGrid(gridSpec)
	if err != nil {
		return err
	}
	probes, err := core.GridProbesFor(cfg, w.Demand(), sizes, seed)
	if err != nil {
		return err
	}
	grid, overhead, err := core.BuildGridModels(probes)
	if err != nil {
		return err
	}
	fmt.Printf("application   : %s on %s\n", w.Name(), cfg.Name)
	fmt.Printf("memory grid   : %v MB\n", grid.MemSizesMB())
	for _, s := range grid.Sizes {
		fmt.Printf("  %6.0f MB    : %s, max degree %d\n", s.MemMB, s.Models.ET, s.Models.MaxDegree)
	}
	fmt.Printf("scaling model : %s\n", grid.Base().Scaling)

	var plan core.JointPlan
	var weights core.Weights
	if qos > 0 {
		plan, weights, err = grid.QoSPlanJoint(c, qos, core.QoSOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("QoS weights   : W_S=%.2f W_E=%.2f (p95 bound %.1fs)\n",
			weights.Service, weights.Expense, qos)
	} else {
		weights = core.Weights{Service: ws, Expense: 1 - ws}
		plan, err = grid.PlanJointFor(c, weights)
		if err != nil {
			return err
		}
	}
	fmt.Printf("\nrecommended config at C=%d: degree %d at %.0f MB\n", c, plan.Degree, plan.MemMB)
	base := grid.Sizes[len(grid.Sizes)-1].MemMB
	fmt.Printf("predicted service: %.1fs (baseline %.1fs at %.0f MB, degree 1)\n",
		plan.PredictedServiceSec, plan.BaselineServiceSec, base)
	fmt.Printf("predicted expense: $%.2f (baseline $%.2f)\n", plan.PredictedExpenseUSD, plan.BaselineExpenseUSD)
	fmt.Printf("modeling bill    : $%.4f\n", overhead.TotalUSD())
	return nil
}

func printMetrics(m trace.Metrics) {
	fmt.Printf("degree %d → %d instances on %s\n", m.Degree, m.Instances, m.Platform)
	fmt.Printf("  scaling time   : %.1fs\n", m.ScalingTime)
	fmt.Printf("  service total  : %.1fs  (p95 %.1fs, median %.1fs)\n",
		m.TotalService, m.TailService, m.MedianService)
	fmt.Printf("  expense        : $%.2f\n", m.ExpenseUSD)
	fmt.Printf("  function-hours : %.2f\n", m.FunctionHours)
	if m.Retries+m.Crashes+m.Timeouts > 0 {
		fmt.Printf("  faults survived: %d start retries, %d crashes, %d timeouts (%.0f failed sec, $%.4f wasted)\n",
			m.Retries, m.Crashes, m.Timeouts, m.FailedSec, m.WastedUSD)
	}
	if m.HedgesLaunched > 0 {
		fmt.Printf("  hedges         : %d launched, %d won, %d wasted\n",
			m.HedgesLaunched, m.HedgesWon, m.HedgesWasted)
	}
}

// faultFlags registers the fault-injection flag set shared by the execution
// commands and returns a function that applies it to a platform config.
func faultFlags(fs *flag.FlagSet) func(platform.Config) (platform.Config, error) {
	crashRate := fs.Float64("crashrate", 0, "mid-execution crash rate λ (crashes per instance-second)")
	startFail := fs.Float64("startfailprob", 0, "cold-start failure probability")
	stragglerP := fs.Float64("stragglerprob", 0, "per-attempt straggler probability")
	stragglerF := fs.Float64("stragglerfactor", 4, "straggler slowdown multiplier")
	execTimeout := fs.Float64("exectimeout", 0, "execution timeout in seconds (0 = none)")
	retryKind := fs.String("retry", "fixed", "retry backoff: fixed, exponential, decorrelated")
	retryBase := fs.Float64("retrybase", 0, "retry backoff base delay in seconds (0 = platform default)")
	retryCap := fs.Float64("retrycap", 60, "retry backoff delay cap in seconds")
	retryAttempts := fs.Int("retryattempts", 0, "retry budget per instance (0 = platform default)")
	hedgeQ := fs.Float64("hedge", 0, "hedge stragglers past this execution-duration percentile (0 = off)")
	hedgeMin := fs.Float64("hedgemin", 0, "minimum execution seconds before hedging")
	return func(cfg platform.Config) (platform.Config, error) {
		cfg.CrashRate = *crashRate
		cfg.StartFailureProb = *startFail
		cfg.StragglerProb = *stragglerP
		if *stragglerP > 0 {
			cfg.StragglerFactor = *stragglerF
		}
		cfg.ExecTimeoutSec = *execTimeout
		if *retryBase > 0 || *retryAttempts > 0 {
			kind, err := resilience.KindByName(*retryKind)
			if err != nil {
				return cfg, err
			}
			cfg.Retry = resilience.Backoff{
				Kind: kind, BaseSec: *retryBase, CapSec: *retryCap, MaxAttempts: *retryAttempts,
			}
		}
		if *hedgeQ > 0 {
			cfg.Hedge = resilience.Hedge{Quantile: *hedgeQ, MinDelaySec: *hedgeMin}
		}
		return cfg, cfg.Validate()
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	app := fs.String("app", "Video", "application name")
	plat := fs.String("platform", "aws", "platform: aws, google, azure, funcx")
	c := fs.Int("c", 5000, "concurrency level")
	degree := fs.Int("degree", 1, "packing degree (1 = traditional)")
	memGrid := fs.String("mem.grid", "", "comma-separated memory sizes in MB: plan jointly over (degree, memory) and run the chosen config, overriding -degree")
	ws := fs.Float64("ws", 0.5, "service-time weight W_S for -mem.grid joint planning")
	timeline := fs.String("timeline", "", "write per-instance timelines as CSV to this file")
	jsonOut := fs.Bool("json", false, "emit the run metrics as one JSON line on stdout")
	seed := fs.Int64("seed", 1, "simulation seed")
	applyFaults := faultFlags(fs)
	setupObs := obsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workload.ByName(*app)
	if err != nil {
		return err
	}
	cfg, err := platformByName(*plat)
	if err != nil {
		return err
	}
	if *memGrid != "" {
		// Plan on the fault-free platform (the models assume clean probes),
		// then resize the config to the chosen memory before injecting
		// faults. The notice goes to stderr so -json keeps stdout pure.
		sizes, err := parseMemGrid(*memGrid)
		if err != nil {
			return err
		}
		probes, err := core.GridProbesFor(cfg, w.Demand(), sizes, *seed)
		if err != nil {
			return err
		}
		grid, _, err := core.BuildGridModels(probes)
		if err != nil {
			return err
		}
		jp, err := grid.PlanJointFor(*c, core.Weights{Service: *ws, Expense: 1 - *ws})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "joint plan: degree %d at %.0f MB (predicted %.1fs, $%.2f)\n",
			jp.Degree, jp.MemMB, jp.PredictedServiceSec, jp.PredictedExpenseUSD)
		*degree = jp.Degree
		if cfg, err = cfg.WithMemory(jp.MemMB); err != nil {
			return err
		}
	}
	cfg, err = applyFaults(cfg)
	if err != nil {
		return err
	}
	sink, err := setupObs()
	if err != nil {
		return err
	}
	sink.Log.Debug("run starting", "app", w.Name(), "platform", cfg.Name,
		"c", *c, "degree", *degree, "retry", cfg.Retry.String(), "hedge", cfg.Hedge.String())
	res, err := platform.Run(cfg, platform.Burst{
		Demand: w.Demand(), Functions: *c, Degree: *degree, Seed: *seed,
		Recorder: sink.Rec, Label: w.Name(),
	})
	if err != nil {
		sink.Close()
		return err
	}
	if *jsonOut {
		if err := trace.WriteMetricsJSON(os.Stdout, trace.FromResult(res)); err != nil {
			sink.Close()
			return err
		}
	} else {
		printMetrics(trace.FromResult(res))
	}
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			sink.Close()
			return err
		}
		defer f.Close()
		if err := trace.WriteTimelinesCSV(f, res); err != nil {
			sink.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "  timelines      : %s (%d rows)\n", *timeline, len(res.Timelines))
	}
	return sink.Close()
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	app := fs.String("app", "Video", "application name")
	plat := fs.String("platform", "aws", "platform: aws, google, azure, funcx")
	c := fs.Int("c", 2000, "concurrency level")
	memGrid := fs.String("mem.grid", "", "comma-separated memory sizes in MB: sweep degrees at every size and add a mem column")
	jsonOut := fs.Bool("json", false, "emit one JSON line of metrics per degree on stdout")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "parallel workers over packing degrees; the default 0 uses one worker per core (bounded by GOMAXPROCS), and -workers 1 reproduces fully sequential execution for debugging — output is byte-identical for any value")
	setupObs := obsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workload.ByName(*app)
	if err != nil {
		return err
	}
	cfg, err := platformByName(*plat)
	if err != nil {
		return err
	}
	sink, err := setupObs()
	if err != nil {
		return err
	}
	if *memGrid != "" {
		sizes, err := parseMemGrid(*memGrid)
		if err != nil {
			sink.Close()
			return err
		}
		if err := sweepGrid(cfg, w, sizes, *c, *seed, *workers, *jsonOut, sink); err != nil {
			sink.Close()
			return err
		}
		return sink.Close()
	}
	all, err := baseline.SweepWithOptions(cfg, w.Demand(), *c, *seed, cfg.Shape.MaxDegree(w.Demand()),
		baseline.SweepOptions{Workers: *workers, Recorder: sink.Rec})
	if err != nil {
		sink.Close()
		return err
	}
	if *jsonOut {
		for _, m := range all {
			if err := trace.WriteMetricsJSON(os.Stdout, m); err != nil {
				sink.Close()
				return err
			}
		}
		return sink.Close()
	}
	tab := &trace.Table{
		Title:  fmt.Sprintf("%s on %s at C=%d", w.Name(), cfg.Name, *c),
		Header: []string{"degree", "instances", "scaling", "service", "p95", "expense"},
	}
	for _, m := range all {
		tab.AddRow(fmt.Sprint(m.Degree), fmt.Sprint(m.Instances),
			fmt.Sprintf("%.1fs", m.ScalingTime), fmt.Sprintf("%.1fs", m.TotalService),
			fmt.Sprintf("%.1fs", m.TailService), fmt.Sprintf("$%.2f", m.ExpenseUSD))
	}
	if err := tab.Fprint(os.Stdout); err != nil {
		sink.Close()
		return err
	}
	return sink.Close()
}

// sweepGrid is sweep's -mem.grid branch: one degree sweep per memory size,
// sizes in ascending order, rendered as a single table with a mem column
// (or, with -json, one line per (size, degree) carrying a mem_mb field).
func sweepGrid(cfg platform.Config, w workload.Workload, sizes []float64, c int, seed int64, workers int, jsonOut bool, sink *obsSink) error {
	type sized struct {
		memMB float64
		rows  []trace.Metrics
	}
	var swept []sized
	for i, mb := range sizes {
		if i > 0 && mb <= sizes[i-1] {
			return fmt.Errorf("-mem.grid sizes must be strictly increasing, got %g after %g", mb, sizes[i-1])
		}
		scfg, err := cfg.WithMemory(mb)
		if err != nil {
			return err
		}
		rows, err := baseline.SweepWithOptions(scfg, w.Demand(), c, seed, scfg.Shape.MaxDegree(w.Demand()),
			baseline.SweepOptions{Workers: workers, Recorder: sink.Rec})
		if err != nil {
			return err
		}
		swept = append(swept, sized{memMB: mb, rows: rows})
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, s := range swept {
			for _, m := range s.rows {
				row := struct {
					MemMB float64 `json:"mem_mb"`
					trace.Metrics
				}{s.memMB, m}
				if err := enc.Encode(row); err != nil {
					return err
				}
			}
		}
		return nil
	}
	tab := &trace.Table{
		Title:  fmt.Sprintf("%s on %s at C=%d, memory grid %v MB", w.Name(), cfg.Name, c, sizes),
		Header: []string{"mem", "degree", "instances", "scaling", "service", "p95", "expense"},
	}
	for _, s := range swept {
		for _, m := range s.rows {
			tab.AddRow(fmt.Sprintf("%.0fMB", s.memMB), fmt.Sprint(m.Degree), fmt.Sprint(m.Instances),
				fmt.Sprintf("%.1fs", m.ScalingTime), fmt.Sprintf("%.1fs", m.TotalService),
				fmt.Sprintf("%.1fs", m.TailService), fmt.Sprintf("$%.2f", m.ExpenseUSD))
		}
	}
	return tab.Fprint(os.Stdout)
}

func cmdLocal(args []string) error {
	fs := flag.NewFlagSet("local", flag.ExitOnError)
	app := fs.String("app", "Stateless Cost", "application name")
	c := fs.Int("c", 0, "logical function count (0 = one instance of -degree functions)")
	degree := fs.Int("degree", 4, "functions packed as goroutines per instance")
	cores := fs.Int("cores", 2, "cores each packed instance may use")
	seed := fs.Int64("seed", 1, "input seed")
	setupObs := obsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workload.ByName(*app)
	if err != nil {
		return err
	}
	if *c == 0 {
		*c = *degree
	}
	sink, err := setupObs()
	if err != nil {
		return err
	}
	fmt.Printf("running %d × %s packed %d per instance on %d cores…\n", *c, w.Name(), *degree, *cores)
	res, err := localfaas.Run(localfaas.Job{
		Workload: w, Functions: *c, Degree: *degree,
		CoresPerInstance: *cores, Seed: *seed, Recorder: sink.Rec,
	})
	if err != nil {
		sink.Close()
		return err
	}
	fmt.Printf("wall time: %.2fs\n", res.Metrics.TotalService)
	fn := 0
	for _, inst := range res.Instances {
		for _, sum := range inst.Checksums {
			fmt.Printf("  function %2d checksum %016x\n", fn, sum)
			fn++
		}
	}
	return sink.Close()
}

func cmdHetero(args []string) error {
	fs := flag.NewFlagSet("hetero", flag.ExitOnError)
	appA := fs.String("a", "Video", "first application")
	countA := fs.Int("ca", 1000, "first application's concurrency")
	appB := fs.String("b", "Smith-Waterman", "second application")
	countB := fs.Int("cb", 1000, "second application's concurrency")
	plat := fs.String("platform", "aws", "platform: aws, google, azure, funcx")
	ws := fs.Float64("ws", 0.5, "service-time weight W_S")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", 0, "parallel workers over the three deployments; the default 0 uses one worker per core (bounded by GOMAXPROCS), and -workers 1 reproduces fully sequential execution for debugging — output is byte-identical for any value")
	setupObs := obsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wa, err := workload.ByName(*appA)
	if err != nil {
		return err
	}
	wb, err := workload.ByName(*appB)
	if err != nil {
		return err
	}
	cfg, err := platformByName(*plat)
	if err != nil {
		return err
	}
	apps := []orchestrator.MixedApp{
		{Workload: wa, Count: *countA},
		{Workload: wb, Count: *countB},
	}
	weights := core.Weights{Service: *ws, Expense: 1 - *ws}
	sink, err := setupObs()
	if err != nil {
		return err
	}
	defer sink.Close()

	// The three deployments are independent simulations, so they fan out in
	// parallel; each records into its own tape, replayed in deployment order
	// so the observability stream is byte-identical to a sequential run.
	type heteroOut struct {
		m       trace.Metrics
		degrees []int
		run     orchestrator.MixedRun
		tape    *obs.Tape
	}
	outs, err := parallel.Map(context.Background(), 3, func(_ context.Context, i int) (heteroOut, error) {
		var o heteroOut
		var rec obs.Recorder
		if sink.Rec != nil {
			o.tape = &obs.Tape{}
			rec = o.tape
		}
		var err error
		switch i {
		case 0:
			o.m, err = orchestrator.ExecuteJointUnpacked(cfg, apps, *seed, rec)
		case 1:
			o.m, o.degrees, err = orchestrator.ExecutePerAppPacked(cfg, apps, weights, *seed, rec)
		default:
			o.run, err = orchestrator.RunMixedProPack(cfg, apps, weights, *seed, rec)
		}
		return o, err
	}, parallel.Workers(*workers))
	if err != nil {
		return err
	}
	for _, o := range outs {
		o.tape.Replay(sink.Rec)
	}
	base, perApp, degrees, run := outs[0].m, outs[1].m, outs[1].degrees, outs[2].run
	fmt.Printf("job: %d × %s + %d × %s on %s\n\n", *countA, wa.Name(), *countB, wb.Name(), cfg.Name)
	fmt.Printf("%-28s %10s %12s %10s\n", "deployment", "instances", "service", "expense")
	rowOut := func(name string, inst int, m trace.Metrics) {
		fmt.Printf("%-28s %10d %11.1fs %9s\n", name, inst, m.TotalService, fmt.Sprintf("$%.2f", m.ExpenseUSD))
	}
	rowOut("unpacked", base.Instances, base)
	rowOut(fmt.Sprintf("per-app (degrees %v)", degrees), perApp.Instances, perApp)
	rowOut(fmt.Sprintf("hetero planner (%s)", run.Plan.Strategy), run.Plan.Instances(), run.Metrics)
	fmt.Printf("\nmodeling overhead: $%.2f\n", run.Overhead.TotalUSD())
	return nil
}

func cmdPareto(args []string) error {
	fs := flag.NewFlagSet("pareto", flag.ExitOnError)
	app := fs.String("app", "Video", "application name")
	plat := fs.String("platform", "aws", "platform: aws, google, azure, funcx")
	c := fs.Int("c", 5000, "concurrency level")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workload.ByName(*app)
	if err != nil {
		return err
	}
	cfg, err := platformByName(*plat)
	if err != nil {
		return err
	}
	meas := &core.SimMeasurer{Config: cfg, Demand: w.Demand(), Seed: *seed}
	models, _, _, _, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, w.Demand()))
	if err != nil {
		return err
	}
	frontier, err := models.ParetoFrontier(*c)
	if err != nil {
		return err
	}
	tab := &trace.Table{
		Title:  fmt.Sprintf("Pareto frontier: %s on %s at C=%d (predicted)", w.Name(), cfg.Name, *c),
		Header: []string{"degree", "service", "expense"},
	}
	for _, p := range frontier {
		tab.AddRow(fmt.Sprint(p.Degree), fmt.Sprintf("%.1fs", p.ServiceSec),
			fmt.Sprintf("$%.2f", p.ExpenseUSD))
	}
	return tab.Fprint(os.Stdout)
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	app := fs.String("app", "Video", "application name")
	plat := fs.String("platform", "aws", "platform: aws, google, azure, funcx")
	c := fs.Int("c", 2000, "concurrency level of the validation runs")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workload.ByName(*app)
	if err != nil {
		return err
	}
	cfg, err := platformByName(*plat)
	if err != nil {
		return err
	}
	meas := &core.SimMeasurer{Config: cfg, Demand: w.Demand(), Seed: *seed}
	models, _, _, _, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, w.Demand()))
	if err != nil {
		return err
	}
	var observed []core.Observation
	for _, deg := range core.SampleDegrees(models.MaxDegree) {
		res, err := platform.Run(cfg, platform.Burst{
			Demand: w.Demand(), Functions: *c, Degree: deg, Seed: *seed + 101,
		})
		if err != nil {
			break
		}
		observed = append(observed, core.Observation{
			Degree:     deg,
			ServiceSec: res.TotalServiceTime(),
			ExpenseUSD: res.ExpenseUSD(),
		})
	}
	sv, ev, err := models.ValidateModels(*c, observed, core.PaperValidationDF)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s, %d observations at C=%d (df=%d, 99.5%% confidence)\n",
		w.Name(), cfg.Name, len(observed), *c, core.PaperValidationDF)
	fmt.Printf("  %v\n  %v\n", sv, ev)
	if !sv.Accepted || !ev.Accepted {
		return fmt.Errorf("model rejected by the χ² test")
	}
	return nil
}
