package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/obs"
)

// obsSink is the observability stack behind a command run: the recorder to
// hand to the execution layer (nil when no flag asked for one — the
// simulator then pays nothing), the logger, and the teardown that flushes
// the exporters.
type obsSink struct {
	Rec obs.Recorder
	Log *slog.Logger

	mem       *obs.Memory
	reg       *obs.Registry
	events    *os.File
	jsonl     *obs.JSONL
	tracePath string
	stages    bool
	stopDebug func() error
}

// obsFlags registers the observability flag set shared by the execution
// commands and returns a constructor that assembles the recorder stack from
// the parsed flags. Callers must Close the sink when the run is done.
func obsFlags(fs *flag.FlagSet) func() (*obsSink, error) {
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto)")
	eventsOut := fs.String("events", "", "stream span/event records as JSON lines to this file")
	stages := fs.Bool("stages", false, "print a per-stage span summary after the run")
	verbose := fs.Bool("v", false, "debug logging (includes every lifecycle span)")
	logfmt := fs.String("logfmt", "text", "log format: text or json")
	debugAddr := fs.String("debug.addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address during the run")
	return func() (*obsSink, error) {
		logger, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
		if err != nil {
			return nil, err
		}
		s := &obsSink{Log: logger, tracePath: *traceOut, stages: *stages}
		var recs []obs.Recorder
		if *traceOut != "" || *stages {
			s.mem = &obs.Memory{}
			recs = append(recs, s.mem)
		}
		if *eventsOut != "" {
			f, err := os.Create(*eventsOut)
			if err != nil {
				return nil, err
			}
			s.events = f
			s.jsonl = obs.NewJSONL(f)
			recs = append(recs, s.jsonl)
		}
		if *debugAddr != "" {
			s.reg = obs.NewRegistry()
			recs = append(recs, &obs.RegistryRecorder{Reg: s.reg})
			addr, stop, err := obs.StartDebug(*debugAddr, s.reg)
			if err != nil {
				s.Close()
				return nil, err
			}
			s.stopDebug = stop
			logger.Info("debug server up", "addr", addr)
		}
		if *verbose {
			recs = append(recs, &obs.LogRecorder{L: logger})
		}
		s.Rec = obs.Multi(recs...)
		return s, nil
	}
}

// Close flushes the exporters: the Chrome trace and the stage summary are
// rendered from the in-memory record, the events file is synced, and the
// debug server is shut down.
func (s *obsSink) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.tracePath != "" && s.mem != nil {
		f, err := os.Create(s.tracePath)
		if err == nil {
			keep(obs.WriteChromeTrace(f, s.mem.Bursts()))
			keep(f.Close())
			fmt.Fprintf(os.Stderr, "trace written to %s — open at https://ui.perfetto.dev\n", s.tracePath)
		} else {
			keep(err)
		}
	}
	if s.stages && s.mem != nil {
		keep(obs.FprintStageSummary(os.Stdout, s.mem.Bursts()))
	}
	if s.jsonl != nil {
		keep(s.jsonl.Err())
	}
	if s.events != nil {
		keep(s.events.Close())
	}
	if s.stopDebug != nil {
		keep(s.stopDebug())
	}
	return first
}
