package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// -update rewrites the serve golden files from the live responses (the same
// convention as the experiment goldens):
//
//	go test ./cmd/propack/ -run TestServeE2E -update
var update = flag.Bool("update", false, "rewrite testdata golden files")

// buildPropack compiles the real binary into a temp dir. The e2e test runs
// the artifact users run, not an in-process stand-in: flag parsing, signal
// handling, and process exit codes are all part of what it pins down.
func buildPropack(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "propack")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// serveProc is one running `propack serve` child process.
type serveProc struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *strings.Builder
	mu     *sync.Mutex
}

func (p *serveProc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

var listenRE = regexp.MustCompile(`serve: listening.*addr=([0-9A-Za-z\.\[\]:]+:[0-9]+)`)

// Prometheus text-format 0.0.4 line grammar, mirrored from the obs package's
// exposition tests: the e2e re-validates from outside the process so a broken
// encoder cannot pass by agreeing with itself.
var (
	promTypeRE   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	promSampleRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9].*|[+-]Inf|NaN)$`)
)

// startServe launches the binary on an ephemeral port and scrapes the bound
// address from its startup log line.
func startServe(t *testing.T, bin string, extraArgs ...string) *serveProc {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, stderr: &strings.Builder{}, mu: &sync.Mutex{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			fmt.Fprintln(p.stderr, line)
			p.mu.Unlock()
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("serve did not report a listen address; stderr:\n%s", p.stderrText())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return p
}

func httpGet(t *testing.T, url string, hdr map[string]string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServeE2E drives the built binary end to end: golden responses for
// every /v1 endpoint, rate-limit shedding, and a lossless SIGTERM drain
// with a request in flight.
func TestServeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary; skipped in -short")
	}
	bin := buildPropack(t)
	// Low sustained rate with a burst of 10: the handful of golden requests
	// (anonymous tenant) sail through; the hammer tenant below exhausts its
	// own bucket and sees 429s.
	p := startServe(t, bin, "-tenantrps", "1", "-tenantburst", "10", "-testhooks", "-seed", "1", "-accesslog")

	t.Run("golden", func(t *testing.T) {
		cases := []struct {
			name string
			path string
		}{
			{"advise", "/v1/advise?app=Video&platform=aws&c=2000&ws=0.5"},
			{"plan", "/v1/plan?app=Video&platform=aws&c=2000&degree=5"},
			{"qos", "/v1/qos?app=Xapian&platform=aws&c=2000&qos=120"},
			{"joint", "/v1/joint?app=Video&platform=aws&c=2000&sizes=5120,10240&ws=0.5"},
			{"mixed", "/v1/mixed?app=Video:60&app=Smith-Waterman:60&platform=aws&ws=0.5"},
		}
		for _, tc := range cases {
			code, body, _ := httpGet(t, p.base+tc.path, nil)
			if code != http.StatusOK {
				t.Fatalf("GET %s: status %d: %s", tc.path, code, body)
			}
			golden := filepath.Join("testdata", "serve_"+tc.name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if body != string(want) {
				t.Errorf("%s response drifted from %s:\ngot:\n%s\nwant:\n%s", tc.name, golden, body, want)
			}
		}
	})

	t.Run("ratelimit", func(t *testing.T) {
		hammer := map[string]string{"X-API-Key": "hammer"}
		path := p.base + "/v1/plan?app=Video&platform=aws&c=100&degree=2"
		var shed int
		for i := 0; i < 14; i++ {
			code, body, hdr := httpGet(t, fmt.Sprintf("%s&i=%d", path, i), hammer)
			switch code {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				shed++
				if hdr.Get("Retry-After") == "" {
					t.Fatalf("429 without Retry-After: %s", body)
				}
			default:
				t.Fatalf("request %d: status %d: %s", i, code, body)
			}
		}
		if shed == 0 {
			t.Fatal("hammer tenant never rate limited across 14 requests against a burst of 10")
		}
		// The hammer tenant's bucket is private: anonymous requests still pass.
		if code, body, _ := httpGet(t, path+"&i=anon", nil); code != http.StatusOK {
			t.Fatalf("anonymous request caught by hammer's limit: %d %s", code, body)
		}

		// The joint route sheds under the same per-tenant buckets. The sizes
		// match the golden request, so every accepted request is a cached
		// pool hit — the 429s come from the limiter, not from slow builds.
		jointHammer := map[string]string{"X-API-Key": "hammer-joint"}
		jointPath := p.base + "/v1/joint?app=Video&platform=aws&c=100&sizes=5120,10240"
		shed = 0
		for i := 0; i < 14; i++ {
			code, body, hdr := httpGet(t, fmt.Sprintf("%s&i=%d", jointPath, i), jointHammer)
			switch code {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				shed++
				if hdr.Get("Retry-After") == "" {
					t.Fatalf("joint 429 without Retry-After: %s", body)
				}
			default:
				t.Fatalf("joint request %d: status %d: %s", i, code, body)
			}
		}
		if shed == 0 {
			t.Fatal("joint hammer never rate limited across 14 requests against a burst of 10")
		}
	})

	t.Run("metrics", func(t *testing.T) {
		// A request with a caller-chosen ID: the ID must come back on the
		// response and appear in the daemon's access log.
		code, body, hdr := httpGet(t, p.base+"/v1/advise?app=Video&platform=aws&c=2000&ws=0.5",
			map[string]string{"X-Request-ID": "e2e-trace-1"})
		if code != http.StatusOK {
			t.Fatalf("advise: %d %s", code, body)
		}
		if got := hdr.Get("X-Request-ID"); got != "e2e-trace-1" {
			t.Fatalf("X-Request-ID not echoed: %q", got)
		}
		deadline := time.Now().Add(5 * time.Second)
		for !strings.Contains(p.stderrText(), "e2e-trace-1") {
			if time.Now().After(deadline) {
				t.Fatalf("request ID never reached the access log; stderr:\n%s", p.stderrText())
			}
			time.Sleep(20 * time.Millisecond)
		}
		// A request without an ID gets a server-minted one.
		_, _, hdr = httpGet(t, p.base+"/v1/advise?app=Video&platform=aws&c=2000&ws=0.5&i=noid", nil)
		if hdr.Get("X-Request-ID") == "" {
			t.Fatal("no server-minted X-Request-ID")
		}

		// The exposition must parse line by line, and its family set (the
		// sorted `# TYPE` lines) is pinned to a golden: a scrape target whose
		// families drift silently breaks dashboards and alerts.
		code, body, hdr = httpGet(t, p.base+"/metrics", nil)
		if code != http.StatusOK {
			t.Fatalf("/metrics: %d", code)
		}
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("/metrics Content-Type = %q, want Prometheus text format", ct)
		}
		var types []string
		for _, line := range strings.Split(body, "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "# TYPE ") {
				if !promTypeRE.MatchString(line) {
					t.Errorf("bad TYPE line: %q", line)
				}
				types = append(types, line)
				continue
			}
			if strings.HasPrefix(line, "#") || !promSampleRE.MatchString(line) {
				t.Errorf("unparseable exposition line: %q", line)
			}
		}
		for _, want := range []string{
			`http_route_requests_total{route="advise",code="200",tenant_class="anon"}`,
			`http_route_requests_total{route="joint",code="200",tenant_class="anon"}`,
			`http_route_requests_total{route="joint",code="429",tenant_class="keyed"}`,
			"stage_seconds_plan_count",
			`slo_error_rate{window="300s"}`,
			"go_goroutines",
			`breaker_states{state="closed"} 1`,
		} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
		golden := filepath.Join("testdata", "serve_metrics_types.golden.txt")
		gotTypes := strings.Join(types, "\n") + "\n"
		if *update {
			if err := os.WriteFile(golden, []byte(gotTypes), 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if gotTypes != string(want) {
				t.Errorf("metric family set drifted from %s:\ngot:\n%s\nwant:\n%s", golden, gotTypes, want)
			}
		}

		// The legacy dump stays reachable for humans.
		if _, legacy, _ := httpGet(t, p.base+"/metrics?format=legacy", nil); strings.Contains(legacy, "# TYPE") {
			t.Error("?format=legacy still served Prometheus format")
		}

		// /slo answers with the burn-rate report.
		code, body, _ = httpGet(t, p.base+"/slo", nil)
		if code != http.StatusOK || !strings.Contains(body, "availability_burn") {
			t.Fatalf("/slo: %d %s", code, body)
		}
	})

	t.Run("drain", func(t *testing.T) {
		if code, _, _ := httpGet(t, p.base+"/readyz", nil); code != http.StatusOK {
			t.Fatalf("readyz before drain: %d", code)
		}
		// A slow request rides through the drain: SIGTERM lands while it is
		// in flight, and losslessness means it still completes with a 200.
		type result struct {
			code int
			err  error
		}
		slow := make(chan result, 1)
		go func() {
			resp, err := http.Get(p.base + "/v1/advise?app=Video&platform=aws&c=2000&delayms=1000")
			if err != nil {
				slow <- result{0, err}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			slow <- result{resp.StatusCode, nil}
		}()
		time.Sleep(300 * time.Millisecond) // let the slow request reach the handler
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		r := <-slow
		if r.err != nil || r.code != http.StatusOK {
			t.Fatalf("in-flight request dropped by drain: code %d err %v\nstderr:\n%s",
				r.code, r.err, p.stderrText())
		}
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("serve exited non-zero after SIGTERM: %v\nstderr:\n%s", err, p.stderrText())
		}
		if !strings.Contains(p.stderrText(), "drained cleanly") {
			t.Fatalf("no clean-drain log line; stderr:\n%s", p.stderrText())
		}
	})
}

// TestServeE2EHelp pins the binary's top-level help to the command table.
func TestServeE2EHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the real binary; skipped in -short")
	}
	bin := buildPropack(t)
	out, err := exec.Command(bin, "-h").CombinedOutput()
	if err != nil {
		t.Fatalf("propack -h: %v\n%s", err, out)
	}
	for _, c := range commands {
		if !strings.Contains(string(out), c.name) {
			t.Errorf("propack -h missing %q:\n%s", c.name, out)
		}
	}
}
