package main

import (
	"context"
	"flag"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// cmdServe runs the planner as a long-lived HTTP daemon (internal/server):
// one process profiles each (app, platform) pair once and then answers
// planning queries from its caches, behind admission control, per-tenant
// rate limits, a circuit breaker, and graceful drain on SIGTERM/SIGINT.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	maxInFlight := fs.Int("maxinflight", 32, "admission capacity: concurrently executing requests")
	maxQueue := fs.Int("maxqueue", 0, "queued-request watermark before shedding (0 = 2×maxinflight)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	tenantRPS := fs.Float64("tenantrps", 50, "per-tenant sustained requests/sec (negative disables rate limiting)")
	tenantBurst := fs.Float64("tenantburst", 100, "per-tenant burst size in requests")
	drainGrace := fs.Duration("draingrace", 0, "keep serving this long after /readyz flips to 503, so load balancers stop routing first")
	drainTimeout := fs.Duration("draintimeout", 30*time.Second, "bound on draining in-flight requests at shutdown")
	seed := fs.Int64("seed", 1, "simulation seed behind model building")
	debug := fs.Bool("debug", false, "mount /debug/pprof and /debug/vars on the serving listener (/metrics and /slo are always mounted)")
	verbose := fs.Bool("v", false, "debug logging")
	logfmt := fs.String("logfmt", "text", "log format: text or json")
	accessLog := fs.Bool("accesslog", false, "log one structured line per /v1 request (request ID, route, status, duration)")
	events := fs.String("events", "", "append per-request trace spans as JSONL to this file (same schema as the simulator's -events)")
	sloAvail := fs.Float64("slo.availability", 0.999, "SLO: target fraction of requests without server-side failure")
	sloLatTarget := fs.Float64("slo.latencytarget", 0.95, "SLO: target fraction of successful requests within -slo.latencythreshold")
	sloLatThreshold := fs.Duration("slo.latencythreshold", 250*time.Millisecond, "SLO: latency objective threshold")
	testHooks := fs.Bool("testhooks", false, "enable the delayms/panic fault-injection query params (e2e tests only; never in production)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		return err
	}
	cfg := server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *timeout,
		TenantRPS:      *tenantRPS,
		TenantBurst:    *tenantBurst,
		DrainGrace:     *drainGrace,
		DrainTimeout:   *drainTimeout,
		Seed:           *seed,
		Log:            logger,
		EnableDebug:    *debug,
		TestHooks:      *testHooks,
		SLO: obs.SLOConfig{Objectives: obs.SLOObjectives{
			Availability:        *sloAvail,
			LatencyTarget:       *sloLatTarget,
			LatencyThresholdSec: sloLatThreshold.Seconds(),
		}},
	}
	if *accessLog {
		cfg.AccessLog = logger
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		rec := obs.NewJSONL(f)
		defer func() {
			if err := rec.Err(); err != nil {
				logger.Error("serve: event stream write failed", "err", err)
			}
		}()
		cfg.Trace = rec
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// SIGTERM (orchestrators) and SIGINT (^C) both start the graceful drain;
	// Run returns nil once every in-flight request has been answered.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	return s.Run(ctx, ln)
}
