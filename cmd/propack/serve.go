package main

import (
	"context"
	"flag"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// cmdServe runs the planner as a long-lived HTTP daemon (internal/server):
// one process profiles each (app, platform) pair once and then answers
// planning queries from its caches, behind admission control, per-tenant
// rate limits, a circuit breaker, and graceful drain on SIGTERM/SIGINT.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	maxInFlight := fs.Int("maxinflight", 32, "admission capacity: concurrently executing requests")
	maxQueue := fs.Int("maxqueue", 0, "queued-request watermark before shedding (0 = 2×maxinflight)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	tenantRPS := fs.Float64("tenantrps", 50, "per-tenant sustained requests/sec (negative disables rate limiting)")
	tenantBurst := fs.Float64("tenantburst", 100, "per-tenant burst size in requests")
	drainGrace := fs.Duration("draingrace", 0, "keep serving this long after /readyz flips to 503, so load balancers stop routing first")
	drainTimeout := fs.Duration("draintimeout", 30*time.Second, "bound on draining in-flight requests at shutdown")
	seed := fs.Int64("seed", 1, "simulation seed behind model building")
	debug := fs.Bool("debug", false, "mount /debug/pprof, /debug/vars and /metrics on the serving listener")
	verbose := fs.Bool("v", false, "debug logging")
	logfmt := fs.String("logfmt", "text", "log format: text or json")
	testHooks := fs.Bool("testhooks", false, "enable the delayms/panic fault-injection query params (e2e tests only; never in production)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		return err
	}
	s, err := server.New(server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *timeout,
		TenantRPS:      *tenantRPS,
		TenantBurst:    *tenantBurst,
		DrainGrace:     *drainGrace,
		DrainTimeout:   *drainTimeout,
		Seed:           *seed,
		Log:            logger,
		EnableDebug:    *debug,
		TestHooks:      *testHooks,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// SIGTERM (orchestrators) and SIGINT (^C) both start the graceful drain;
	// Run returns nil once every in-flight request has been answered.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	return s.Run(ctx, ln)
}
