package trace

import (
	"fmt"
	"io"

	"repro/internal/platform"
)

// WriteTimelinesCSV dumps a burst's per-instance timelines as CSV — the raw
// material for Gantt-style plots of the scaling behaviour (one row per
// instance: control-plane milestones, start, end, degree, retries).
func WriteTimelinesCSV(w io.Writer, res *platform.Result) error {
	if res == nil {
		return fmt.Errorf("trace: nil result")
	}
	if _, err := fmt.Fprintln(w, "index,degree,warm,retries,sched_done,build_done,ship_done,start,end,crashes,timeouts,failed_sec,hedged,hedge_won"); err != nil {
		return err
	}
	for _, tl := range res.Timelines {
		b2i := func(b bool) int {
			if b {
				return 1
			}
			return 0
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%.6f,%d,%d\n",
			tl.Index, tl.Degree, b2i(tl.Warm), tl.Retries,
			tl.SchedDone, tl.BuildDone, tl.ShipDone, tl.Start, tl.End,
			tl.Crashes, tl.Timeouts, tl.FailedSec, b2i(tl.Hedged), b2i(tl.HedgeWon)); err != nil {
			return err
		}
	}
	return nil
}
