// Package trace converts raw burst results into the paper's figures of
// merit and formats experiment output as aligned tables and CSV.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/platform"
)

// Metrics are the quantities the paper reports per run (Sec. 3): scaling
// time; total, tail (95th percentile), and median service times; expense;
// and function-hours of consumed compute.
type Metrics struct {
	Platform      string  `json:"platform"`
	Degree        int     `json:"degree"`
	Instances     int     `json:"instances"`
	ScalingTime   float64 `json:"scaling_time_sec"`
	TotalService  float64 `json:"total_service_sec"`
	TailService   float64 `json:"tail_service_sec"`   // first 95% of instances done
	MedianService float64 `json:"median_service_sec"` // first 50% of instances done
	ExpenseUSD    float64 `json:"expense_usd"`
	FunctionHours float64 `json:"function_hours"`
	MeanExecSec   float64 `json:"mean_exec_sec"`

	// Fault-tolerance counters (failure injection, retries, hedging).
	// All zero on a clean run.
	Retries        int     `json:"retries"`         // cold-start re-submissions
	Crashes        int     `json:"crashes"`         // mid-execution crashes retried
	Timeouts       int     `json:"timeouts"`        // execution-timeout kills retried
	HedgesLaunched int     `json:"hedges_launched"` // speculative duplicates started
	HedgesWon      int     `json:"hedges_won"`      // duplicates that finished first
	HedgesWasted   int     `json:"hedges_wasted"`   // duplicates the primary beat
	FailedSec      float64 `json:"failed_sec"`      // billed execution seconds of failed attempts
	WastedUSD      float64 `json:"wasted_usd"`      // dollars spent on work that produced no results
}

// FromResult extracts Metrics from a simulated burst.
func FromResult(r *platform.Result) Metrics {
	var failedSec float64
	for _, tl := range r.Timelines {
		failedSec += tl.FailedSec
	}
	// Tail and median come from one gather-and-sort of the end times.
	svc := r.ServiceTimeAtQuantiles(95, 50)
	return Metrics{
		Platform:       r.Config.Name,
		Degree:         r.Burst.Degree, // 0 for heterogeneous (mixed) bursts
		Instances:      r.Instances(),
		ScalingTime:    r.ScalingTime(),
		TotalService:   r.TotalServiceTime(),
		TailService:    svc[0],
		MedianService:  svc[1],
		ExpenseUSD:     r.ExpenseUSD(),
		FunctionHours:  r.FunctionSeconds() / 3600,
		MeanExecSec:    r.MeanExecSeconds(),
		Retries:        r.StartRetries,
		Crashes:        r.Crashes,
		Timeouts:       r.Timeouts,
		HedgesLaunched: r.HedgesLaunched,
		HedgesWon:      r.HedgesWon,
		HedgesWasted:   r.HedgesLaunched - r.HedgesWon,
		FailedSec:      failedSec,
		WastedUSD:      r.WastedUSD,
	}
}

// Improvement returns the percentage improvement of got over base for a
// lower-is-better metric: 100·(1 − got/base). Negative means regression.
// A zero base makes the ratio meaningless, so it yields NaN — render it as
// "n/a", never as a real percentage (it used to read as a misleading 0%).
func Improvement(base, got float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return 100 * (1 - got/base)
}

// WriteMetricsJSON writes the metrics as one JSON object on a single line
// (JSON-lines friendly: `propack run -json | jq .` and appending sweep rows
// both work).
func WriteMetricsJSON(w io.Writer, m Metrics) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Table is a rectangular experiment result ready to print: one row per
// configuration, one column per reported quantity.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of formatted cells. The row must match the header
// width; mismatches panic because they are driver bugs.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("trace: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row from values formatted by the given verbs. Values
// and verbs must align with the header.
func (t *Table) AddRowf(format string, args ...interface{}) {
	parts := strings.Split(fmt.Sprintf(format, args...), "\t")
	t.AddRow(parts...)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len([]rune(c)); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	var rule []string
	for _, width := range widths {
		rule = append(rule, strings.Repeat("-", width))
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// FprintCSV writes the table as CSV (RFC-4180-style quoting for cells
// containing commas or quotes).
func (t *Table) FprintCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
