package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

func TestFromResult(t *testing.T) {
	res, err := platform.Run(platform.AWSLambda(),
		platform.Burst{Demand: workload.Video{}.Demand(), Functions: 100, Degree: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := FromResult(res)
	if m.Platform != "AWS Lambda" || m.Degree != 4 || m.Instances != 25 {
		t.Fatalf("identity fields wrong: %+v", m)
	}
	if !(m.MedianService <= m.TailService && m.TailService <= m.TotalService) {
		t.Fatalf("service quantiles unordered: %+v", m)
	}
	if m.ExpenseUSD <= 0 || m.FunctionHours <= 0 || m.ScalingTime <= 0 {
		t.Fatalf("non-positive metrics: %+v", m)
	}
	if math.Abs(m.FunctionHours*3600-m.MeanExecSec*float64(m.Instances)) > 1e-6*m.FunctionHours*3600 {
		t.Fatal("function-hours inconsistent with mean exec")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 15); math.Abs(got-85) > 1e-12 {
		t.Fatalf("Improvement(100,15) = %g", got)
	}
	if got := Improvement(100, 120); math.Abs(got+20) > 1e-12 {
		t.Fatalf("regression should be negative: %g", got)
	}
	if got := Improvement(0, 5); !math.IsNaN(got) {
		t.Fatalf("zero base should yield NaN, got %g", got)
	}
}

func TestTablePrint(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"app", "value"}}
	tb.AddRow("Video", "85.0")
	tb.AddRowf("%s\t%.1f", "Sort", 52.25)
	var b strings.Builder
	if err := tb.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# demo", "app", "Video  85.0", "Sort   52.2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow(`with,comma`, `with"quote`)
	var b strings.Builder
	if err := tb.FprintCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"with,comma\",\"with\"\"quote\"\n"
	if b.String() != want {
		t.Fatalf("CSV got %q want %q", b.String(), want)
	}
}

func TestTableRowWidthMismatchPanics(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableCSVQuotesNewlines(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("line1\nline2", "plain")
	var b strings.Builder
	if err := tb.FprintCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"line1\nline2\",plain\n"
	if b.String() != want {
		t.Fatalf("CSV got %q want %q", b.String(), want)
	}
}

func TestTableAddRowfMismatchPanics(t *testing.T) {
	tb := Table{Header: []string{"a", "b", "c"}}
	defer func() {
		if recover() == nil {
			t.Fatal("AddRowf with too few tab-separated fields accepted")
		}
	}()
	tb.AddRowf("%s\t%.1f", "x", 1.0) // 2 cells against a 3-column header
}

func TestTableAlignsUnicodeCells(t *testing.T) {
	// Width accounting is per rune, not per byte: a multi-byte cell must
	// not shift the columns after it.
	tb := Table{Header: []string{"app", "val"}}
	tb.AddRow("héllo", "1")
	tb.AddRow("world", "2")
	var b strings.Builder
	if err := tb.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	runeCol := func(s, sub string) int { return len([]rune(s[:strings.Index(s, sub)])) }
	col := runeCol(lines[2], "1")
	if got := runeCol(lines[3], "2"); got != col {
		t.Fatalf("value column drifted: %d vs %d\n%s", got, col, b.String())
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteMetricsJSON(&b, Metrics{Platform: "AWS Lambda", Degree: 3, ExpenseUSD: 1.5}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") || strings.Count(out, "\n") != 1 {
		t.Fatalf("want exactly one JSON line, got %q", out)
	}
	for _, want := range []string{`"platform":"AWS Lambda"`, `"degree":3`, `"expense_usd":1.5`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %s: %s", want, out)
		}
	}
}

func TestWriteTimelinesCSV(t *testing.T) {
	res, err := platform.Run(platform.AWSLambda(),
		platform.Burst{Demand: workload.Video{}.Demand(), Functions: 6, Degree: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTimelinesCSV(&b, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 { // header + 3 instances
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "index,degree,warm") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,2,0,0,") {
		t.Fatalf("bad first row %q", lines[1])
	}
	if err := WriteTimelinesCSV(&b, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}
