package core

import "testing"

func TestParetoFrontierContainsOptima(t *testing.T) {
	m := synthModels()
	const c = 4000
	frontier, err := m.ParetoFrontier(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	has := func(deg int) bool {
		for _, p := range frontier {
			if p.Degree == deg {
				return true
			}
		}
		return false
	}
	if !has(m.OptimalDegreeService(c)) {
		t.Fatal("service optimum missing from frontier")
	}
	if !has(m.OptimalDegreeExpense(c)) {
		t.Fatal("expense optimum missing from frontier")
	}
	// Every Eq. 7 weighting's optimum must be on the frontier.
	for _, ws := range []float64{0, 0.25, 0.5, 0.75, 1} {
		deg, err := m.OptimalDegree(c, Weights{Service: ws, Expense: 1 - ws})
		if err != nil {
			t.Fatal(err)
		}
		if !has(deg) {
			t.Fatalf("W_S=%g optimum (degree %d) not on frontier", ws, deg)
		}
	}
}

func TestParetoFrontierNonDominated(t *testing.T) {
	m := synthModels()
	frontier, err := m.ParetoFrontier(3000)
	if err != nil {
		t.Fatal(err)
	}
	prevDeg := 0
	for i, a := range frontier {
		if a.Degree <= prevDeg {
			t.Fatal("frontier not in increasing degree order")
		}
		prevDeg = a.Degree
		for j, b := range frontier {
			if i == j {
				continue
			}
			if b.ServiceSec <= a.ServiceSec && b.ExpenseUSD <= a.ExpenseUSD &&
				(b.ServiceSec < a.ServiceSec || b.ExpenseUSD < a.ExpenseUSD) {
				t.Fatalf("frontier point %+v dominated by %+v", a, b)
			}
		}
	}
}

func TestParetoFrontierErrors(t *testing.T) {
	m := synthModels()
	if _, err := m.ParetoFrontier(0); err == nil {
		t.Fatal("C=0 accepted")
	}
	bad := m
	bad.MaxDegree = 0
	if _, err := bad.ParetoFrontier(10); err == nil {
		t.Fatal("invalid models accepted")
	}
}
