package core

import (
	"math"
	"testing"
)

// driftScenario builds models fitted to a "stale" platform (ET curve 30%
// steeper than current reality) plus the truth the tracker should converge
// toward.
func driftScenario() (stale Models, staleSamples []ETSample, truth ETModel) {
	truth = ETModel{MfuncGB: 0.25, Alpha: 0.16, Intercept: math.Log(100) - 0.16*0.25}
	staleTruth := ETModel{MfuncGB: 0.25, Alpha: 0.16 * 1.3, Intercept: truth.Intercept}
	for _, d := range SampleDegrees(29) {
		staleSamples = append(staleSamples, ETSample{Degree: d, ETSec: staleTruth.At(d)})
	}
	stale = synthModels()
	stale.ET = staleTruth
	stale.MaxDegree = 29
	return stale, staleSamples, truth
}

func TestTrackerConvergesUnderDrift(t *testing.T) {
	stale, samples, truth := driftScenario()
	tr, err := NewTracker(stale, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	const c = 3000
	before, err := tr.Models().OptimalDegree(c, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	// Feed production observations from the *current* platform: mostly at
	// the recommended degree, with periodic exploration at other degrees
	// (observations clustered at one degree pin the intercept, not the
	// slope — any real adaptive deployment explores occasionally).
	for i := 0; i < 40; i++ {
		deg, err := tr.Models().OptimalDegree(c, Balanced())
		if err != nil {
			t.Fatal(err)
		}
		if i%4 == 3 {
			deg = (7*i)%28 + 1 // exploration
		}
		if err := tr.Observe(deg, truth.At(deg)); err != nil {
			t.Fatal(err)
		}
	}
	after, err := tr.Models().OptimalDegree(c, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	// The true platform interferes less than the stale fit believed, so the
	// refreshed model should pack at least as deep, and its α should have
	// moved toward the truth.
	if after < before {
		t.Fatalf("degree moved the wrong way: %d → %d", before, after)
	}
	staleErr := math.Abs(stale.ET.Alpha - truth.Alpha)
	newErr := math.Abs(tr.Models().ET.Alpha - truth.Alpha)
	if newErr >= staleErr {
		t.Fatalf("α did not move toward truth: |Δ| %g → %g", staleErr, newErr)
	}
	if tr.Observations() != 40 {
		t.Fatalf("retained %d observations, want 40", tr.Observations())
	}
}

func TestTrackerObservationCapEvicts(t *testing.T) {
	stale, samples, truth := driftScenario()
	tr, err := NewTracker(stale, samples, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := tr.Observe(5, truth.At(5)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Observations() != 8 {
		t.Fatalf("cap not enforced: %d", tr.Observations())
	}
}

func TestTrackerReprofileResets(t *testing.T) {
	stale, samples, truth := driftScenario()
	tr, err := NewTracker(stale, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fresh []ETSample
	for _, d := range SampleDegrees(29) {
		fresh = append(fresh, ETSample{Degree: d, ETSec: truth.At(d)})
	}
	if err := tr.Reprofile(fresh); err != nil {
		t.Fatal(err)
	}
	if tr.Observations() != 0 {
		t.Fatal("reprofile should clear observations")
	}
	if math.Abs(tr.Models().ET.Alpha-truth.Alpha) > 1e-9 {
		t.Fatalf("reprofile did not adopt the fresh fit: α %g vs %g",
			tr.Models().ET.Alpha, truth.Alpha)
	}
}

func TestTrackerResidualSignalsDrift(t *testing.T) {
	stale, samples, truth := driftScenario()
	tr, err := NewTracker(stale, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At a deep degree, the stale (steeper) model over-predicts: residual
	// is clearly negative.
	r := tr.Residual(20, truth.At(20))
	if r >= -0.05 {
		t.Fatalf("expected a strong negative residual under drift, got %g", r)
	}
}

func TestTrackerValidation(t *testing.T) {
	stale, samples, _ := driftScenario()
	if _, err := NewTracker(Models{}, samples, 0); err == nil {
		t.Fatal("invalid models accepted")
	}
	if _, err := NewTracker(stale, samples[:1], 0); err == nil {
		t.Fatal("single probe sample accepted")
	}
	if _, err := NewTracker(stale, samples, -1); err == nil {
		t.Fatal("negative cap accepted")
	}
	tr, err := NewTracker(stale, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(0, 10); err == nil {
		t.Fatal("degree 0 accepted")
	}
	if err := tr.Observe(2, -1); err == nil {
		t.Fatal("negative ET accepted")
	}
	if err := tr.Reprofile(nil); err == nil {
		t.Fatal("empty reprofile accepted")
	}
}

func TestDegreeRangeStability(t *testing.T) {
	m := synthModels()
	const c = 5000
	best, err := m.OptimalDegree(c, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := m.DegreeRange(c, Balanced(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if best < lo || best > hi {
		t.Fatalf("optimum %d outside band [%d, %d]", best, lo, hi)
	}
	if lo < 1 || hi > m.MaxDegree {
		t.Fatalf("band [%d, %d] out of bounds", lo, hi)
	}
	// Zero tolerance collapses near the optimum; a huge tolerance spans
	// everything.
	lo0, hi0, err := m.DegreeRange(c, Balanced(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if hi0-lo0 > hi-lo {
		t.Fatal("tighter tolerance produced a wider band")
	}
	loAll, hiAll, err := m.DegreeRange(c, Balanced(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if loAll != 1 || hiAll != m.MaxDegree {
		t.Fatalf("huge tolerance should span [1, %d], got [%d, %d]", m.MaxDegree, loAll, hiAll)
	}
	if _, _, err := m.DegreeRange(c, Balanced(), -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}
