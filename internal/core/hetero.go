package core

import (
	"fmt"
	"math"
)

// Heterogeneous packing — the extension the paper sketches in Sec. 5
// ("technically, it is possible to extend ProPack … packing functions of
// different characteristics present new modeling challenges").
//
// The analytical extension reads Eq. 1 compositionally: fitting
// ln ET = c + α·Mfunc·P says every co-resident function of this application
// adds α·Mfunc to the instance's log execution time. For a mixed instance,
// each resident application j contributes its own fitted α_j·M_j per
// member, so a member of application i is predicted to finish at
//
//	ET_i = exp( c_i + α_i·M_i + Σ_{j resident, j≠i's slot} α_j·M_j )
//
// and the instance's wall time is the slowest member's. Everything needed
// is already measured: the per-application Eq. 1 fits and the shared
// platform scaling model.

// App is one application participating in a heterogeneous job.
type App struct {
	// Name labels the app in plans and tables.
	Name string
	// MemoryMB is the per-function footprint (bounds bin capacity).
	MemoryMB float64
	// Count is the app's requested concurrency C_k.
	Count int
	// ET is the app's fitted Eq. 1 model.
	ET ETModel
}

// Validate reports an error for malformed apps.
func (a App) Validate() error {
	switch {
	case a.MemoryMB <= 0:
		return fmt.Errorf("core: app %q: non-positive memory", a.Name)
	case a.Count < 1:
		return fmt.Errorf("core: app %q: count %d < 1", a.Name, a.Count)
	case a.ET.MfuncGB <= 0:
		return fmt.Errorf("core: app %q: missing ET model", a.Name)
	}
	return nil
}

// logPressure is the fitted per-member log-slowdown contribution of one
// function of the app: α·Mfunc (in GB, matching the fit).
func (a App) logPressure() float64 { return a.ET.Alpha * a.ET.MfuncGB }

// PredictMixedET predicts the wall time of one instance hosting counts[k]
// functions of apps[k]: the slowest member under the compositional Eq. 1
// reading above, with cross-application pressure discounted by
// crossDiscount (diverse threads interleave better; 0 means no benefit —
// the conservative default when no pair probes were run). Instances with
// no members predict 0.
func PredictMixedET(apps []App, counts []int, crossDiscount float64) float64 {
	var et float64
	for k, n := range counts {
		if n == 0 {
			continue
		}
		// ln ET_k = intercept_k + own α_k·M_k + same-app co-residents at
		// full pressure + other apps' residents discounted.
		lnET := apps[k].ET.Intercept + apps[k].logPressure() +
			float64(n-1)*apps[k].logPressure()
		for j, m := range counts {
			if j == k {
				continue
			}
			lnET += float64(m) * apps[j].logPressure() * (1 - crossDiscount)
		}
		if v := math.Exp(lnET); v > et {
			et = v
		}
	}
	return et
}

// EstimateCrossDiscount inverts a mixed pair probe: observedET is the
// measured wall time of one instance hosting k functions of a and k of b.
// Comparing it against the undiscounted compositional prediction isolates
// the cross-application discount. The result is clamped to [0, 1].
func EstimateCrossDiscount(a, b App, k int, observedET float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("core: pair probe needs k ≥ 1, have %d", k)
	}
	if observedET <= 0 {
		return 0, fmt.Errorf("core: non-positive probe observation %g", observedET)
	}
	apps := []App{a, b}
	counts := []int{k, k}
	// The dominant member at zero discount stays dominant for any discount
	// (discounts shrink everyone's cross term by the other app's pressure).
	pred := PredictMixedET(apps, counts, 0)
	if pred <= 0 {
		return 0, fmt.Errorf("core: degenerate pair prediction")
	}
	// Identify the dominant member (it determines the observed wall time)
	// and read the discount off its cross-pressure term.
	other := b
	if b.ET.Intercept+float64(k)*b.logPressure() >
		a.ET.Intercept+float64(k)*a.logPressure() {
		other = a
	}
	cross := float64(k) * other.logPressure()
	if cross <= 0 {
		return 0, fmt.Errorf("core: zero cross pressure, discount unidentifiable")
	}
	disc := (math.Log(pred) - math.Log(observedET)) / cross
	if disc < 0 {
		disc = 0
	}
	if disc > 1 {
		disc = 1
	}
	return disc, nil
}

// MixedPlan is the heterogeneous packing recommendation: BinCounts[b][k] is
// how many functions of apps[k] instance b hosts.
type MixedPlan struct {
	Apps      []App
	BinCounts [][]int
	// Strategy records which composition won: "mixed" (cross-application
	// bins) or "segregated" (per-application bins at per-app degrees).
	Strategy string
	// Model predictions for the plan.
	PredictedServiceSec float64
	PredictedExpenseUSD float64
}

// Instances is the number of function instances the plan spawns.
func (p MixedPlan) Instances() int { return len(p.BinCounts) }

// MixedPlanOptions configures PlanMixed.
type MixedPlanOptions struct {
	// InstanceMemoryMB is the platform's instance memory (bins must fit).
	InstanceMemoryMB float64
	// MaxExecSec is the platform's execution-time limit.
	MaxExecSec float64
	// Weights are the Eq. 7 objective weights.
	Weights Weights
	// Scaling is the platform's fitted Eq. 2 model.
	Scaling ScalingModel
	// RatePerInstanceSec is R (dollars per instance-second).
	RatePerInstanceSec float64
	// CrossDiscount is the estimated cross-application contention discount
	// (from EstimateCrossDiscount pair probes); 0 is the conservative
	// default.
	CrossDiscount float64
}

// heteroCandidate is one packing composition under evaluation. Bins are not
// materialized during the search — only the winner's are, from the stored
// parameters (instance count for "mixed", degree combination for
// "segregated"), so the candidate sweep allocates nothing per composition.
type heteroCandidate struct {
	strategy   string
	bins       int   // "mixed": the instance count B
	comboRank  int   // "segregated": lexicographic rank of the degree combo
	degrees    []int // "segregated" fallback: explicit degrees (rank unused)
	serviceSec float64
	expenseUSD float64
}

// materialize builds the candidate's bins.
func (c heteroCandidate) materialize(apps []App, maxDegs []int) [][]int {
	if c.strategy == "mixed" {
		return dealCounts(apps, c.bins)
	}
	degrees := c.degrees
	if degrees == nil {
		degrees = decodeCombo(c.comboRank, maxDegs)
	}
	return segregatedBins(apps, degrees)
}

// decodeCombo inverts the lexicographic rank of a per-app degree
// combination (degrees are 1-based, app 0 most significant).
func decodeCombo(rank int, maxDegs []int) []int {
	degrees := make([]int, len(maxDegs))
	for k := len(maxDegs) - 1; k >= 0; k-- {
		degrees[k] = rank%maxDegs[k] + 1
		rank /= maxDegs[k]
	}
	return degrees
}

// PlanMixed chooses the packing composition for a heterogeneous job from
// two candidate families and picks the Eq. 7 weighted-regret winner:
//
//   - "mixed": each app's functions dealt round-robin across B bins for
//     every feasible B (balanced cross-application bins — compute-bound
//     members get lighter neighbours, which shrinks the slowest bin);
//   - "segregated": per-application bins at every combination of per-app
//     degrees (the stock-ProPack shape — cheap when the apps' solo
//     durations differ widely, because short functions then never ride
//     inside long instances and pay for their wall time).
//
// Both families share the platform scaling model through the joint
// instance count, which is what couples the applications in the first
// place.
func PlanMixed(apps []App, opts MixedPlanOptions) (MixedPlan, error) {
	if len(apps) == 0 {
		return MixedPlan{}, fmt.Errorf("core: no apps to plan")
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return MixedPlan{}, err
		}
	}
	if err := opts.Weights.Validate(); err != nil {
		return MixedPlan{}, err
	}
	if opts.InstanceMemoryMB <= 0 || opts.MaxExecSec <= 0 || opts.RatePerInstanceSec < 0 ||
		opts.CrossDiscount < 0 || opts.CrossDiscount > 1 {
		return MixedPlan{}, fmt.Errorf("core: invalid mixed-plan options %+v", opts)
	}

	maxDegs := feasibleDegrees(apps, opts)
	cands := mixedCandidates(apps, opts)
	cands = append(cands, segregatedCandidates(apps, maxDegs, opts)...)
	if len(cands) == 0 {
		return MixedPlan{}, fmt.Errorf("core: no feasible heterogeneous packing (memory or latency bound)")
	}

	bestS, bestE := math.Inf(1), math.Inf(1)
	for _, c := range cands {
		bestS = math.Min(bestS, c.serviceSec)
		bestE = math.Min(bestE, c.expenseUSD)
	}
	var best heteroCandidate
	bestVal := math.Inf(1)
	for _, c := range cands {
		v := opts.Weights.Service*(c.serviceSec-bestS)/bestS +
			opts.Weights.Expense*(c.expenseUSD-bestE)/bestE
		if v < bestVal {
			best, bestVal = c, v
		}
	}
	return MixedPlan{
		Apps:                apps,
		BinCounts:           best.materialize(apps, maxDegs),
		Strategy:            best.strategy,
		PredictedServiceSec: best.serviceSec,
		PredictedExpenseUSD: best.expenseUSD,
	}, nil
}

// feasibleDegrees is the per-app feasible packing-degree ceiling under the
// instance memory and execution-time limits, or nil if some app cannot run
// at any degree.
func feasibleDegrees(apps []App, opts MixedPlanOptions) []int {
	maxDegs := make([]int, len(apps))
	for k, a := range apps {
		md := int(opts.InstanceMemoryMB / a.MemoryMB)
		for md > 1 && a.ET.At(md) > opts.MaxExecSec {
			md--
		}
		if md < 1 {
			return nil
		}
		maxDegs[k] = md
	}
	return maxDegs
}

// binEval is a memoized per-profile evaluation inside one instance count:
// the memory footprint and predicted ET of a bin hosting a given count
// vector.
type binEval struct {
	mem float64
	et  float64
}

// mixedCandidates evaluates the proportional cross-application composition
// at every feasible instance count.
//
// Hot-path structure: dealCounts gives every bin of an instance count B the
// per-app count base_k = C_k/B or base_k+1, so a bin's profile is fully
// described by the bitmask of apps granting it the "+1" remainder. Instead
// of materializing the B×K count matrix and recomputing PredictMixedET per
// bin, the sweep derives each bin's mask arithmetically (replicating
// dealCounts' remainder rotation), memoizes the ET and memory of each
// distinct mask (≤ 2^K, typically a handful), and updates the running
// sum/max incrementally. Bin ETs still come from PredictMixedET on the
// reconstructed count vector, and the sum accumulates in bin order, so
// every candidate's service and expense are bit-identical to the naive
// per-bin recomputation. Two bound-based prunes skip infeasible instance
// counts before any ET evaluation: a memory floor (even the no-remainder
// bin is too big) and — when every app's fitted pressure is non-negative,
// so ET is monotone in the counts — an execution-time floor.
func mixedCandidates(apps []App, opts MixedPlanOptions) []heteroCandidate {
	totalFuncs := 0
	var totalMem float64
	monotone := true
	for _, a := range apps {
		totalFuncs += a.Count
		totalMem += float64(a.Count) * a.MemoryMB
		if a.logPressure() < 0 {
			monotone = false
		}
	}
	minBins := int(math.Ceil(totalMem / opts.InstanceMemoryMB))
	if minBins < 1 {
		minBins = 1
	}
	var cands []heteroCandidate
	if len(apps) > 63 {
		// Mask memoization needs one bit per app; beyond that fall back to
		// the naive per-bin evaluation.
		return mixedCandidatesNaive(apps, opts, minBins, totalFuncs)
	}
	counts := make([]int, len(apps))  // scratch count vector for one mask
	base := make([]int, len(apps))    // C_k / B for the current B
	extra := make([]int, len(apps))   // C_k % B
	offsets := make([]int, len(apps)) // dealCounts' rotating remainder start
	memo := make(map[uint64]binEval, 8)
	for b := minBins; b <= totalFuncs; b++ {
		offset := 0
		for k, a := range apps {
			base[k] = a.Count / b
			extra[k] = a.Count % b
			offsets[k] = offset
			offset = (offset + extra[k]) % b
		}
		// Prune before any ET work: every bin holds at least the base
		// counts, so the base profile's memory (and, for monotone pressures,
		// its ET) floors every bin in this composition.
		clear(memo)
		baseEval := evalMask(apps, opts, 0, base, extra, counts)
		memo[0] = baseEval
		if baseEval.mem > opts.InstanceMemoryMB {
			continue
		}
		if monotone && baseEval.et > opts.MaxExecSec {
			continue
		}
		feasible := true
		var maxET, sumET float64
		for i := 0; i < b; i++ {
			var mask uint64
			for k := range apps {
				if (i-offsets[k]+b)%b < extra[k] {
					mask |= 1 << uint(k)
				}
			}
			ev, ok := memo[mask]
			if !ok {
				ev = evalMask(apps, opts, mask, base, extra, counts)
				memo[mask] = ev
			}
			if ev.mem > opts.InstanceMemoryMB || ev.et > opts.MaxExecSec {
				feasible = false
				break
			}
			sumET += ev.et
			if ev.et > maxET {
				maxET = ev.et
			}
		}
		if !feasible {
			continue
		}
		cands = append(cands, heteroCandidate{
			strategy:   "mixed",
			bins:       b,
			serviceSec: maxET + opts.Scaling.At(float64(b)),
			expenseUSD: sumET * opts.RatePerInstanceSec,
		})
	}
	return cands
}

// evalMask reconstructs the count vector of a remainder mask into the
// scratch slice and evaluates the bin's memory (in app order, exactly as
// the naive per-bin loop summed it) and predicted ET.
func evalMask(apps []App, opts MixedPlanOptions, mask uint64, base, extra, counts []int) binEval {
	var mem float64
	for k := range apps {
		n := base[k]
		if extra[k] > 0 && mask&(1<<uint(k)) != 0 {
			n++
		}
		counts[k] = n
		mem += float64(n) * apps[k].MemoryMB
	}
	return binEval{mem: mem, et: PredictMixedET(apps, counts, opts.CrossDiscount)}
}

// mixedCandidatesNaive is the reference-shaped evaluation used when there
// are too many apps for mask memoization (> 63).
func mixedCandidatesNaive(apps []App, opts MixedPlanOptions, minBins, totalFuncs int) []heteroCandidate {
	var cands []heteroCandidate
	for b := minBins; b <= totalFuncs; b++ {
		counts := dealCounts(apps, b)
		feasible := true
		var maxET, sumET float64
		for _, binCounts := range counts {
			var mem float64
			for k, n := range binCounts {
				mem += float64(n) * apps[k].MemoryMB
			}
			if mem > opts.InstanceMemoryMB {
				feasible = false
				break
			}
			et := PredictMixedET(apps, binCounts, opts.CrossDiscount)
			if et > opts.MaxExecSec {
				feasible = false
				break
			}
			sumET += et
			if et > maxET {
				maxET = et
			}
		}
		if !feasible {
			continue
		}
		cands = append(cands, heteroCandidate{
			strategy:   "mixed",
			bins:       b,
			serviceSec: maxET + opts.Scaling.At(float64(b)),
			expenseUSD: sumET * opts.RatePerInstanceSec,
		})
	}
	return cands
}

// segregatedCandidates evaluates per-application bins over every
// combination of per-app packing degrees (bounded by memory and the
// execution limit, precomputed by feasibleDegrees). The joint instance
// count couples the apps through the scaling model.
//
// Hot-path structure: instead of re-deriving every app's ET and bin count
// at each of the Π maxDegs leaves, each app's per-degree values are
// tabulated once and the walk threads running (bins, sumET, maxET) prefix
// accumulators — a leaf only appends a candidate. The accumulators apply
// the same operations in the same app order as a per-leaf loop would, so
// every candidate's service and expense are bit-identical to the naive
// sweep. The winning combination is recovered from its lexicographic rank
// (app 0 most significant), so the walk allocates nothing per leaf.
func segregatedCandidates(apps []App, maxDegs []int, opts MixedPlanOptions) []heteroCandidate {
	if maxDegs == nil {
		return nil // some app cannot run at all
	}
	// Keep the combinatorial walk bounded: with more than 3 apps, fix each
	// app's degree to its own single-app optimum instead of sweeping.
	combos := 1
	for _, md := range maxDegs {
		combos *= md
		if combos > 200000 {
			break
		}
	}
	if combos > 200000 {
		chosen := make([]int, len(apps))
		for k, a := range apps {
			chosen[k] = bestSoloDegree(a, maxDegs[k], opts)
		}
		bins := 0
		var maxET, sumET float64
		for i, a := range apps {
			d := chosen[i]
			n := (a.Count + d - 1) / d
			bins += n
			et := a.ET.At(d)
			sumET += float64(n) * et
			if et > maxET {
				maxET = et
			}
		}
		return []heteroCandidate{{
			strategy:   "segregated",
			degrees:    chosen,
			serviceSec: maxET + opts.Scaling.At(float64(bins)),
			expenseUSD: sumET * opts.RatePerInstanceSec,
		}}
	}

	// Per-app, per-degree tables: ET and instance count at each degree. The
	// last bin of an app may be partial; its ET is approximated with the
	// full-degree value (pessimistic by ≤ one bin), matching Eq. 1's use.
	etTab := make([][]float64, len(apps))
	nTab := make([][]int, len(apps))
	for k, a := range apps {
		etTab[k] = make([]float64, maxDegs[k])
		nTab[k] = make([]int, maxDegs[k])
		for d := 1; d <= maxDegs[k]; d++ {
			etTab[k][d-1] = a.ET.At(d)
			nTab[k][d-1] = (a.Count + d - 1) / d
		}
	}
	cands := make([]heteroCandidate, 0, combos)
	var walk func(k, rank, bins int, sumET, maxET float64)
	walk = func(k, rank, bins int, sumET, maxET float64) {
		if k == len(apps) {
			cands = append(cands, heteroCandidate{
				strategy:   "segregated",
				comboRank:  rank,
				serviceSec: maxET + opts.Scaling.At(float64(bins)),
				expenseUSD: sumET * opts.RatePerInstanceSec,
			})
			return
		}
		for d := 1; d <= maxDegs[k]; d++ {
			et := etTab[k][d-1]
			n := nTab[k][d-1]
			m := maxET
			if et > m {
				m = et
			}
			walk(k+1, rank*maxDegs[k]+(d-1), bins+n, sumET+float64(n)*et, m)
		}
	}
	walk(0, 0, 0, 0, 0)
	return cands
}

// bestSoloDegree picks an app's degree by its own Eq. 7 objective, ignoring
// the other apps (used only to bound the combinatorial walk).
func bestSoloDegree(a App, maxDeg int, opts MixedPlanOptions) int {
	m := Models{ET: a.ET, Scaling: opts.Scaling, RatePerInstanceSec: opts.RatePerInstanceSec, MaxDegree: maxDeg}
	deg, err := m.OptimalDegree(a.Count, opts.Weights)
	if err != nil {
		return 1
	}
	return deg
}

// segregatedBins materializes per-application bins at the given degrees.
func segregatedBins(apps []App, degrees []int) [][]int {
	var bins [][]int
	for k, a := range apps {
		remaining := a.Count
		for remaining > 0 {
			n := degrees[k]
			if remaining < n {
				n = remaining
			}
			counts := make([]int, len(apps))
			counts[k] = n
			bins = append(bins, counts)
			remaining -= n
		}
	}
	return bins
}

// dealCounts distributes each app's Count functions round-robin across b
// bins: bin i gets ceil or floor of Count/b, never differing by more than
// one within an app. Each app's "+1" remainder bins start where the
// previous app's ended, so remainders spread instead of piling onto the
// first bins (which would leave later bins empty).
func dealCounts(apps []App, b int) [][]int {
	counts := make([][]int, b)
	for i := range counts {
		counts[i] = make([]int, len(apps))
	}
	offset := 0
	for k, a := range apps {
		base := a.Count / b
		extra := a.Count % b
		for i := 0; i < b; i++ {
			counts[i][k] = base
			if (i-offset+b)%b < extra {
				counts[i][k]++
			}
		}
		offset = (offset + extra) % b
	}
	return counts
}
