package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

func TestSampleDegreesMatchPaperCounts(t *testing.T) {
	// Sec. 2.1: 20, 8, and 15 sample points for Video (max 40), Sort (15),
	// and Stateless Cost (30).
	cases := []struct{ max, want int }{{40, 20}, {15, 8}, {30, 15}, {1, 1}, {2, 1}, {0, 0}}
	for _, tc := range cases {
		ds := SampleDegrees(tc.max)
		if len(ds) != tc.want {
			t.Fatalf("SampleDegrees(%d) has %d points, want %d", tc.max, len(ds), tc.want)
		}
		for i, d := range ds {
			if d != 2*i+1 {
				t.Fatalf("SampleDegrees(%d) = %v: not alternate points", tc.max, ds)
			}
		}
	}
}

// fakeMeasurer returns values from closed-form curves and counts probes.
type fakeMeasurer struct {
	et         ETModel
	sc         ScalingModel
	execCalls  int
	scaleCalls int
	failAbove  int // degrees above this return ErrDegreeInfeasible (0 = never)
}

func (f *fakeMeasurer) MeasureExec(degree int) (float64, error) {
	f.execCalls++
	if f.failAbove > 0 && degree > f.failAbove {
		return 0, fmt.Errorf("%w: fake limit", ErrDegreeInfeasible)
	}
	return f.et.At(degree), nil
}

func (f *fakeMeasurer) MeasureScaling(instances int) (float64, error) {
	f.scaleCalls++
	return f.sc.At(float64(instances)), nil
}

func TestBuildModelsRecoversFakes(t *testing.T) {
	fm := &fakeMeasurer{
		et: ETModel{MfuncGB: 0.25, Alpha: 0.15, Intercept: 4},
		sc: ScalingModel{B1: 2e-5, B2: 0.01, B3: 0},
	}
	models, etS, scS, ov, err := BuildModels(fm, ProfileOptions{
		MaxDegree: 40, MfuncGB: 0.25, RatePerInstanceSec: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, models.ET.Alpha, 0.15, 1e-9, "recovered α")
	approx(t, models.Scaling.B1, 2e-5, 1e-10, "recovered β1")
	if len(etS) != 20 || fm.execCalls != 20*3 {
		t.Fatalf("interference probes: %d samples, %d calls (want 20 samples × 3 trials)",
			len(etS), fm.execCalls)
	}
	if len(scS) != len(DefaultScalingProbes()) || fm.scaleCalls != len(scS) {
		t.Fatalf("scaling probes: %d", len(scS))
	}
	if ov.ExecProbeSec <= 0 || ov.ExecProbeUSD <= 0 || ov.ScalingProbeSec <= 0 {
		t.Fatalf("overhead not accounted: %+v", ov)
	}
	if models.MaxDegree != 40 {
		t.Fatalf("max degree %d, want 40", models.MaxDegree)
	}
}

func TestBuildModelsFullSweep(t *testing.T) {
	fm := &fakeMeasurer{et: ETModel{MfuncGB: 0.5, Alpha: 0.1, Intercept: 3},
		sc: ScalingModel{B1: 1e-5, B2: 0.01}}
	_, etS, _, _, err := BuildModels(fm, ProfileOptions{
		MaxDegree: 15, MfuncGB: 0.5, RatePerInstanceSec: 1e-4, FullSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(etS) != 15 {
		t.Fatalf("full sweep sampled %d degrees, want 15", len(etS))
	}
}

func TestBuildModelsLowersInfeasibleMaxDegree(t *testing.T) {
	fm := &fakeMeasurer{et: ETModel{MfuncGB: 0.25, Alpha: 0.3, Intercept: 4},
		sc: ScalingModel{B1: 1e-5, B2: 0.01}, failAbove: 20}
	models, _, _, _, err := BuildModels(fm, ProfileOptions{
		MaxDegree: 40, MfuncGB: 0.25, RatePerInstanceSec: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Probing 1,3,…: degree 21 fails, so the cap is 20.
	if models.MaxDegree != 20 {
		t.Fatalf("max degree %d, want 20", models.MaxDegree)
	}
}

func TestBuildModelsInfeasibleAtDegreeOne(t *testing.T) {
	wrap := measurerFunc{
		exec:  func(int) (float64, error) { return 0, ErrDegreeInfeasible },
		scale: func(int) (float64, error) { return 1, nil },
	}
	if _, _, _, _, err := BuildModels(wrap, ProfileOptions{MaxDegree: 10, MfuncGB: 0.5, RatePerInstanceSec: 1e-4}); !errors.Is(err, ErrDegreeInfeasible) {
		t.Fatalf("expected ErrDegreeInfeasible, got %v", err)
	}
}

type measurerFunc struct {
	exec  func(int) (float64, error)
	scale func(int) (float64, error)
}

func (m measurerFunc) MeasureExec(d int) (float64, error)    { return m.exec(d) }
func (m measurerFunc) MeasureScaling(c int) (float64, error) { return m.scale(c) }

func TestBuildModelsValidation(t *testing.T) {
	fm := &fakeMeasurer{et: ETModel{MfuncGB: 1, Alpha: 0.1, Intercept: 1},
		sc: ScalingModel{B1: 1e-5}}
	if _, _, _, _, err := BuildModels(fm, ProfileOptions{MaxDegree: 0, MfuncGB: 1, RatePerInstanceSec: 1}); err == nil {
		t.Fatal("MaxDegree 0 accepted")
	}
	if _, _, _, _, err := BuildModels(fm, ProfileOptions{MaxDegree: 5, MfuncGB: 0, RatePerInstanceSec: 1}); err == nil {
		t.Fatal("MfuncGB 0 accepted")
	}
	if _, _, _, _, err := BuildModels(fm, ProfileOptions{MaxDegree: 5, MfuncGB: 1, RatePerInstanceSec: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// TestSimMeasurerEndToEnd builds real models from the simulator and checks
// they reproduce the paper's qualitative structure.
func TestSimMeasurerEndToEnd(t *testing.T) {
	cfg := platform.AWSLambda()
	w := workload.Video{}
	meas := &SimMeasurer{Config: cfg, Demand: w.Demand(), Seed: 42}
	opts := ProfileOptionsFor(cfg, w.Demand())
	if opts.MaxDegree != 40 {
		t.Fatalf("Video max degree %d, want 40", opts.MaxDegree)
	}
	models, etS, scS, ov, err := BuildModels(meas, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(etS) == 0 || len(scS) == 0 {
		t.Fatal("no samples collected")
	}
	// The fitted ET model must track the measured points reasonably (the
	// fit is in log space; allow 20% pointwise).
	for _, s := range etS {
		pred := models.ET.At(s.Degree)
		if math.Abs(pred-s.ETSec)/s.ETSec > 0.20 {
			t.Fatalf("ET model off at degree %d: predicted %g, measured %g", s.Degree, pred, s.ETSec)
		}
	}
	// Scaling model should track the emergent scaling closely. Small
	// absolute error is tolerated at the low end, where pipeline constants
	// (builder/NIC makespans) bend the curve away from the pure quadratic.
	for _, s := range scS {
		pred := models.Scaling.At(float64(s.Instances))
		if math.Abs(pred-s.ScalingSec) > 0.08*s.ScalingSec+5 {
			t.Fatalf("scaling model off at %d instances: predicted %g, measured %g",
				s.Instances, pred, s.ScalingSec)
		}
	}
	// Overhead must be small relative to one real run at C=5000 (paper: <1%).
	base, err := platform.Run(cfg, platform.Burst{Demand: w.Demand(), Functions: 5000, Degree: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ov.ExecProbeUSD > 0.05*base.ExpenseUSD() {
		t.Fatalf("interference-probe overhead too large: $%g vs run $%g", ov.ExecProbeUSD, base.ExpenseUSD())
	}
	// And the recommendation must beat the baseline when actually executed.
	plan, err := models.PlanFor(5000, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degree < 2 {
		t.Fatalf("expected packing at C=5000, got degree %d", plan.Degree)
	}
	packed, err := platform.Run(cfg, platform.Burst{Demand: w.Demand(), Functions: 5000, Degree: plan.Degree, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if packed.TotalServiceTime() > 0.5*base.TotalServiceTime() {
		t.Fatalf("ProPack plan should at least halve service time at C=5000: %g vs %g",
			packed.TotalServiceTime(), base.TotalServiceTime())
	}
	if packed.ExpenseUSD() > 0.7*base.ExpenseUSD() {
		t.Fatalf("ProPack plan should cut expense substantially: $%g vs $%g",
			packed.ExpenseUSD(), base.ExpenseUSD())
	}
}

// TestChiSquareValidationOnSimulator mirrors Sec. 2.4: the analytical
// models' predictions across packing degrees must pass the paper's χ² test
// against observed service times and expenses.
func TestChiSquareValidationOnSimulator(t *testing.T) {
	cfg := platform.AWSLambda()
	for _, w := range workload.Motivation() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			meas := &SimMeasurer{Config: cfg, Demand: w.Demand(), Seed: 7}
			models, _, _, _, err := BuildModels(meas, ProfileOptionsFor(cfg, w.Demand()))
			if err != nil {
				t.Fatal(err)
			}
			c := 1000
			var obs []Observation
			for _, deg := range SampleDegrees(min(models.MaxDegree, 29)) {
				res, err := platform.Run(cfg, platform.Burst{Demand: w.Demand(), Functions: c, Degree: deg, Seed: 3})
				if err != nil {
					break
				}
				obs = append(obs, Observation{
					Degree:     deg,
					ServiceSec: res.TotalServiceTime(),
					ExpenseUSD: res.ExpenseUSD(),
				})
			}
			sv, ev, err := models.ValidateModels(c, obs, PaperValidationDF)
			if err != nil {
				t.Fatal(err)
			}
			if !sv.Accepted {
				t.Errorf("service-time model rejected: %v", sv)
			}
			if !ev.Accepted {
				t.Errorf("expense model rejected: %v", ev)
			}
		})
	}
}

func TestValidateModelsErrors(t *testing.T) {
	m := synthModels()
	if _, _, err := m.ValidateModels(100, nil, 14); err == nil {
		t.Fatal("empty observations accepted")
	}
	if _, _, err := m.ValidateModels(100, []Observation{{Degree: 0, ServiceSec: 1, ExpenseUSD: 1}}, 14); err == nil {
		t.Fatal("degree-0 observation accepted")
	}
}
