package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Registry persists fitted models so their probing cost amortizes across
// runs, the way the paper argues it should ("this model needs to be
// developed only once and can be used across all applications on a given
// platform … in practice, this overhead will be much lower due to
// amortization over thousands of applications and runs", Sec. 2.2).
//
// Layout: one JSON file per (platform, application) pair under the
// registry directory. The scaling model inside is per-platform; callers
// that only need Eq. 2 can load any entry of that platform.
type Registry struct {
	dir string
	mu  sync.Mutex
}

// ErrNotCached is returned by Load when no models are stored for the key.
var ErrNotCached = errors.New("core: no cached models")

// NewRegistry opens (creating if needed) a model registry rooted at dir.
func NewRegistry(dir string) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: empty registry directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating registry: %w", err)
	}
	return &Registry{dir: dir}, nil
}

// registryEntry is the on-disk schema.
type registryEntry struct {
	Platform string  `json:"platform"`
	App      string  `json:"app"`
	Models   Models  `json:"models"`
	ProbeUSD float64 `json:"probe_usd"` // what building these models cost
}

// slug turns free-form names into a stable filename component.
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

func (r *Registry) path(platformName, app string) string {
	return filepath.Join(r.dir, slug(platformName)+"__"+slug(app)+".json")
}

// Save stores the models for a (platform, application) pair, overwriting
// any previous entry. The write is atomic (temp file + rename).
func (r *Registry) Save(platformName, app string, m Models, probeUSD float64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if platformName == "" || app == "" {
		return fmt.Errorf("core: registry key needs platform and app names")
	}
	data, err := json.MarshalIndent(registryEntry{
		Platform: platformName, App: app, Models: m, ProbeUSD: probeUSD,
	}, "", "  ")
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tmp := r.path(platformName, app) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, r.path(platformName, app))
}

// Load retrieves the cached models for a (platform, application) pair.
func (r *Registry) Load(platformName, app string) (Models, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, err := os.ReadFile(r.path(platformName, app))
	if errors.Is(err, fs.ErrNotExist) {
		return Models{}, fmt.Errorf("%w for %s on %s", ErrNotCached, app, platformName)
	}
	if err != nil {
		return Models{}, err
	}
	var e registryEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return Models{}, fmt.Errorf("core: corrupt registry entry %s: %w", r.path(platformName, app), err)
	}
	if err := e.Models.Validate(); err != nil {
		return Models{}, fmt.Errorf("core: invalid cached models: %w", err)
	}
	return e.Models, nil
}

// List returns the cached (platform, app) keys in sorted order.
func (r *Registry) List() ([][2]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, err
	}
	var keys [][2]string
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(r.dir, ent.Name()))
		if err != nil {
			continue
		}
		var e registryEntry
		if json.Unmarshal(data, &e) == nil && e.Platform != "" {
			keys = append(keys, [2]string{e.Platform, e.App})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys, nil
}

// LoadOrBuild returns cached models if present, otherwise builds them with
// the measurer, saves, and returns them. The boolean reports a cache hit.
func (r *Registry) LoadOrBuild(platformName, app string, meas Measurer, opts ProfileOptions) (Models, bool, error) {
	if m, err := r.Load(platformName, app); err == nil {
		return m, true, nil
	} else if !errors.Is(err, ErrNotCached) {
		return Models{}, false, err
	}
	m, _, _, ov, err := BuildModels(meas, opts)
	if err != nil {
		return Models{}, false, err
	}
	if err := r.Save(platformName, app, m, ov.TotalUSD()); err != nil {
		return Models{}, false, err
	}
	return m, false, nil
}
