package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrQoSInfeasible is returned when no objective weighting keeps the
// modeled tail service time within the QoS bound — the bound is simply too
// tight for this application and concurrency.
var ErrQoSInfeasible = errors.New("core: no weighting satisfies the QoS bound")

// QoSOptions configures the Sec. 2.6 weight search.
type QoSOptions struct {
	// TailQuantile is the service-time percentile the bound applies to.
	// The paper uses the 95th percentile for Xapian. Zero means 95.
	TailQuantile float64
	// Step is the W_S grid resolution of the search. Zero means 0.05.
	Step float64
}

// normalize validates the QoS bound and options and applies the defaults.
func (o QoSOptions) normalize(qosSec float64) (tailQ, step float64, err error) {
	if qosSec <= 0 {
		return 0, 0, fmt.Errorf("core: non-positive QoS bound %g", qosSec)
	}
	tailQ = o.TailQuantile
	if tailQ == 0 {
		tailQ = 95
	}
	if tailQ <= 0 || tailQ > 100 {
		return 0, 0, fmt.Errorf("core: tail quantile %g outside (0,100]", tailQ)
	}
	step = o.Step
	if step == 0 {
		step = 0.05
	}
	if step <= 0 || step > 1 {
		return 0, 0, fmt.Errorf("core: weight step %g outside (0,1]", step)
	}
	return tailQ, step, nil
}

// TailServiceAt is Eq. 8: the modeled tail service time when the packing
// degree is chosen by the joint objective with the given weights.
func (m Models) TailServiceAt(c int, w Weights, tailQuantile float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if c < 1 {
		return 0, fmt.Errorf("core: concurrency %d < 1", c)
	}
	t := newDegreeTable(m, c)
	deg := t.argminRegret(100, 1, w)
	return t.quantile(tailQuantile).vals[deg-1], nil
}

// qosGridSize is the number of W_S grid points for a step: the integer grid
// fix for the old `ws += step` accumulation, which drifted off the exact
// 0.05 multiples and mutated the loop variable at the clamp. When 1/step is
// (numerically) an integer the grid is the round(1/step)+1 evenly spaced
// points from 0 to 1; otherwise the interior multiples of step plus a final
// point pinned to exactly 1, so the pure-service weighting is always tried
// before the bound is declared infeasible.
func qosGridSize(step float64) int {
	inv := 1 / step
	if r := math.Round(inv); math.Abs(inv-r) < 1e-9 {
		return int(r) + 1
	}
	return int(math.Floor(inv)) + 2
}

// qosWeightAt maps a grid index to its weights. The last index is exactly
// W_S = 1.
func qosWeightAt(j, n int, step float64) Weights {
	ws := float64(j) * step
	if j == n-1 || ws > 1 {
		ws = 1
	}
	return Weights{Service: ws, Expense: 1 - ws}
}

// qosSearch is the Sec. 2.6 grid search over one shared DegreeTable: find
// the smallest feasible W_S on the grid. All weight steps reuse the same
// memoized service/expense/tail vectors, and the search exits early via
// monotone pruning:
//
//   - Infeasibility floor: every grid point's tail is the tail at *some*
//     degree, so if no degree at all meets the bound the search is
//     infeasible without scanning the grid. Exact.
//   - Prefix certificate: by the scalarization exchange argument, the total
//     service regret dS at the Eq. 7 argmin is non-increasing in W_S, so
//     every argmin for grid indices ≤ j lies in {degrees with dS ≥
//     dS(argmin_j)}. If no degree in that set meets the bound, the whole
//     prefix is infeasible and a binary-searched boundary is the answer.
//     The certificate threshold carries a small conservative slack because
//     the theorem is exact for real arithmetic while the argmin is computed
//     in floats; whenever certification fails, the search falls back to the
//     plain left-to-right grid scan, which is identical to the naive
//     implementation by construction.
func qosSearch(t *DegreeTable, qosSec, tailQ, step float64) (Weights, error) {
	tail := t.quantile(tailQ).vals
	infeasible := func() (Weights, error) {
		return Weights{}, fmt.Errorf("%w: bound %.3gs at concurrency %d", ErrQoSInfeasible, qosSec, t.c)
	}
	// Infeasibility floor: no degree meets the bound, so no weighting can.
	if minOf(tail) > qosSec {
		return infeasible()
	}

	n := qosGridSize(step)
	degs := make([]int, n) // memoized per-index argmin degrees; 0 = unevaluated
	deg := func(j int) int {
		if degs[j] == 0 {
			degs[j] = t.argminRegret(100, 1, qosWeightAt(j, n, step))
		}
		return degs[j]
	}
	feasible := func(j int) bool { return tail[deg(j)-1] <= qosSec }

	if feasible(0) {
		return qosWeightAt(0, n, step), nil
	}

	// prefixInfeasible certifies that every grid index in [0, j] fails the
	// bound: all their argmins have total-service regret ≥ dS(argmin_j)
	// (monotone pruning), and no such degree's tail meets the bound.
	bestS := minOf(t.service)
	dS := func(i int) float64 { return (t.service[i] - bestS) / bestS }
	prefixInfeasible := func(j int) bool {
		thr := dS(deg(j) - 1)
		thr -= 1e-12 * (1 + math.Abs(thr)) // conservative float slack
		for i := range tail {
			if dS(i) >= thr && tail[i] <= qosSec {
				return false
			}
		}
		return true
	}
	// gridScan is the guaranteed-identical fallback: the naive left-to-right
	// search over the same memoized evaluations.
	gridScan := func() (Weights, error) {
		for j := 0; j < n; j++ {
			if feasible(j) {
				return qosWeightAt(j, n, step), nil
			}
		}
		return infeasible()
	}

	if !feasible(n - 1) {
		// Even W_S=1 misses the bound. Certify the whole grid infeasible, or
		// fall back to the scan (the bound may be met mid-grid only if the
		// tail at the argmin is non-monotone in W_S).
		if prefixInfeasible(n - 1) {
			return infeasible()
		}
		return gridScan()
	}

	// Binary search for the feasibility boundary: lo infeasible, hi feasible.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	if prefixInfeasible(hi - 1) {
		return qosWeightAt(hi, n, step), nil
	}
	return gridScan()
}

// QoSWeights is Eq. 9: find the service-time weight W_S so that the modeled
// tail service time stays within qosSec while retaining as much expense
// optimization as possible — i.e. the *smallest* feasible W_S. (Eq. 9's
// literal argmin over TS would always return W_S = 1; the paper's own use —
// W_S = 0.65 for Xapian rather than 1 — shows the intended reading is the
// minimal weight that meets the bound, which is what we implement.)
func (m Models) QoSWeights(c int, qosSec float64, opts QoSOptions) (Weights, error) {
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return Weights{}, err
	}
	if err := m.Validate(); err != nil {
		return Weights{}, err
	}
	if c < 1 {
		return Weights{}, fmt.Errorf("core: concurrency %d < 1", c)
	}
	return qosSearch(newDegreeTable(m, c), qosSec, tailQ, step)
}

// QoSPlan recommends a packing degree that jointly optimizes service time
// and expense while keeping the modeled tail latency within qosSec. The
// weight search and the final plan share one degree table.
func (m Models) QoSPlan(c int, qosSec float64, opts QoSOptions) (Plan, Weights, error) {
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	if err := m.Validate(); err != nil {
		return Plan{}, Weights{}, err
	}
	if c < 1 {
		return Plan{}, Weights{}, fmt.Errorf("core: concurrency %d < 1", c)
	}
	t := newDegreeTable(m, c)
	w, err := qosSearch(t, qosSec, tailQ, step)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	return t.plan(t.argminRegret(100, 1, w), w), w, nil
}
