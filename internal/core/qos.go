package core

import (
	"errors"
	"fmt"
)

// ErrQoSInfeasible is returned when no objective weighting keeps the
// modeled tail service time within the QoS bound — the bound is simply too
// tight for this application and concurrency.
var ErrQoSInfeasible = errors.New("core: no weighting satisfies the QoS bound")

// QoSOptions configures the Sec. 2.6 weight search.
type QoSOptions struct {
	// TailQuantile is the service-time percentile the bound applies to.
	// The paper uses the 95th percentile for Xapian. Zero means 95.
	TailQuantile float64
	// Step is the W_S grid resolution of the search. Zero means 0.05.
	Step float64
}

// TailServiceAt is Eq. 8: the modeled tail service time when the packing
// degree is chosen by the joint objective with the given weights.
func (m Models) TailServiceAt(c int, w Weights, tailQuantile float64) (float64, error) {
	deg, err := m.OptimalDegree(c, w)
	if err != nil {
		return 0, err
	}
	return m.ServiceTimeQuantile(c, deg, tailQuantile), nil
}

// QoSWeights is Eq. 9: find the service-time weight W_S so that the modeled
// tail service time stays within qosSec while retaining as much expense
// optimization as possible — i.e. the *smallest* feasible W_S. (Eq. 9's
// literal argmin over TS would always return W_S = 1; the paper's own use —
// W_S = 0.65 for Xapian rather than 1 — shows the intended reading is the
// minimal weight that meets the bound, which is what we implement.)
func (m Models) QoSWeights(c int, qosSec float64, opts QoSOptions) (Weights, error) {
	if qosSec <= 0 {
		return Weights{}, fmt.Errorf("core: non-positive QoS bound %g", qosSec)
	}
	q := opts.TailQuantile
	if q == 0 {
		q = 95
	}
	if q <= 0 || q > 100 {
		return Weights{}, fmt.Errorf("core: tail quantile %g outside (0,100]", q)
	}
	step := opts.Step
	if step == 0 {
		step = 0.05
	}
	if step <= 0 || step > 1 {
		return Weights{}, fmt.Errorf("core: weight step %g outside (0,1]", step)
	}
	for ws := 0.0; ws <= 1+1e-9; ws += step {
		if ws > 1 {
			ws = 1
		}
		w := Weights{Service: ws, Expense: 1 - ws}
		ts, err := m.TailServiceAt(c, w, q)
		if err != nil {
			return Weights{}, err
		}
		if ts <= qosSec {
			return w, nil
		}
	}
	return Weights{}, fmt.Errorf("%w: bound %.3gs at concurrency %d", ErrQoSInfeasible, qosSec, c)
}

// QoSPlan recommends a packing degree that jointly optimizes service time
// and expense while keeping the modeled tail latency within qosSec.
func (m Models) QoSPlan(c int, qosSec float64, opts QoSOptions) (Plan, Weights, error) {
	w, err := m.QoSWeights(c, qosSec, opts)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	plan, err := m.PlanFor(c, w)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	return plan, w, nil
}
