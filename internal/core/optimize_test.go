package core

import (
	"math"
	"testing"
)

func TestWeightsValidate(t *testing.T) {
	for _, w := range []Weights{Balanced(), ServiceOnly(), ExpenseOnly(), {0.65, 0.35}} {
		if err := w.Validate(); err != nil {
			t.Fatalf("%+v: %v", w, err)
		}
	}
	bads := []Weights{{0.5, 0.6}, {-0.1, 1.1}, {1.2, -0.2}, {0, 0}}
	for _, w := range bads {
		if w.Validate() == nil {
			t.Fatalf("bad weights accepted: %+v", w)
		}
	}
}

func TestOptimalDegreeBruteForceAgreement(t *testing.T) {
	m := synthModels()
	for _, c := range []int{500, 1000, 2000, 5000} {
		// Brute-force Eq. 3 and Eq. 4 directly.
		bruteS, bruteSVal := 1, math.Inf(1)
		bruteE, bruteEVal := 1, math.Inf(1)
		for p := 1; p <= m.MaxDegree; p++ {
			if s := m.ServiceTime(c, p); s < bruteSVal {
				bruteS, bruteSVal = p, s
			}
			if e := m.Expense(c, p); e < bruteEVal {
				bruteE, bruteEVal = p, e
			}
		}
		if got := m.OptimalDegreeService(c); got != bruteS {
			t.Fatalf("C=%d: service degree %d, brute force %d", c, got, bruteS)
		}
		if got := m.OptimalDegreeExpense(c); got != bruteE {
			t.Fatalf("C=%d: expense degree %d, brute force %d", c, got, bruteE)
		}
	}
}

func TestOptimalDegreeIncreasesWithConcurrency(t *testing.T) {
	// Paper Fig. 8 observation (1): higher concurrency → higher packing
	// degree, because scaling time grows faster than packing cost.
	m := synthModels()
	prev := 0
	for _, c := range []int{500, 1000, 2000, 5000} {
		deg, err := m.OptimalDegree(c, Balanced())
		if err != nil {
			t.Fatal(err)
		}
		if deg < prev {
			t.Fatalf("optimal degree decreased with concurrency: %d at C=%d after %d", deg, c, prev)
		}
		prev = deg
	}
	if prev <= 1 {
		t.Fatal("optimal degree at C=5000 should exceed 1")
	}
}

func TestJointDegreeBetweenSingleObjectiveOptima(t *testing.T) {
	// Paper Fig. 15 observation: the joint optimum falls between the
	// service-only and expense-only optima.
	m := synthModels()
	c := 5000
	ds := m.OptimalDegreeService(c)
	de := m.OptimalDegreeExpense(c)
	dj, err := m.OptimalDegree(c, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ds, de
	if lo > hi {
		lo, hi = hi, lo
	}
	if dj < lo || dj > hi {
		t.Fatalf("joint degree %d outside [%d, %d]", dj, lo, hi)
	}
}

func TestWeightExtremesMatchSingleObjectives(t *testing.T) {
	m := synthModels()
	c := 3000
	dj, err := m.OptimalDegree(c, ServiceOnly())
	if err != nil {
		t.Fatal(err)
	}
	if dj != m.OptimalDegreeService(c) {
		t.Fatalf("W_S=1 gave %d, service-only optimum is %d", dj, m.OptimalDegreeService(c))
	}
	dj, err = m.OptimalDegree(c, ExpenseOnly())
	if err != nil {
		t.Fatal(err)
	}
	if dj != m.OptimalDegreeExpense(c) {
		t.Fatalf("W_E=1 gave %d, expense-only optimum is %d", dj, m.OptimalDegreeExpense(c))
	}
}

func TestOptimalDegreeErrors(t *testing.T) {
	m := synthModels()
	if _, err := m.OptimalDegree(0, Balanced()); err == nil {
		t.Fatal("C=0 accepted")
	}
	if _, err := m.OptimalDegree(100, Weights{0.9, 0.9}); err == nil {
		t.Fatal("bad weights accepted")
	}
	bad := m
	bad.MaxDegree = 0
	if _, err := bad.OptimalDegree(100, Balanced()); err == nil {
		t.Fatal("invalid models accepted")
	}
}

func TestPlanFor(t *testing.T) {
	m := synthModels()
	plan, err := m.PlanFor(5000, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degree < 1 || plan.Degree > m.MaxDegree {
		t.Fatalf("degree %d out of range", plan.Degree)
	}
	if plan.PredictedServiceSec >= plan.BaselineServiceSec {
		t.Fatal("plan should beat the baseline on service time at high concurrency")
	}
	if plan.PredictedExpenseUSD >= plan.BaselineExpenseUSD {
		t.Fatal("plan should beat the baseline on expense at high concurrency")
	}
}

func TestQoSWeightSearch(t *testing.T) {
	m := synthModels()
	c := 5000
	// An achievable bound: slightly above the best possible tail.
	bestTail, err := m.TailServiceAt(c, ServiceOnly(), 95)
	if err != nil {
		t.Fatal(err)
	}
	loosest, err := m.TailServiceAt(c, ExpenseOnly(), 95)
	if err != nil {
		t.Fatal(err)
	}
	if bestTail > loosest {
		t.Fatalf("service-only tail %g should not exceed expense-only tail %g", bestTail, loosest)
	}
	bound := bestTail*0.3 + loosest*0.7
	w, err := m.QoSWeights(c, bound, QoSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := m.TailServiceAt(c, w, 95)
	if err != nil {
		t.Fatal(err)
	}
	if ts > bound {
		t.Fatalf("selected weights violate the bound: %g > %g", ts, bound)
	}
	// Minimality: a step lower on W_S must violate the bound (unless W_S=0).
	if w.Service > 0 {
		lower := Weights{Service: w.Service - 0.05, Expense: 1 - (w.Service - 0.05)}
		if lower.Service >= 0 {
			ts2, err := m.TailServiceAt(c, lower, 95)
			if err != nil {
				t.Fatal(err)
			}
			if ts2 <= bound {
				t.Fatalf("W_S=%g not minimal: %g also satisfies bound %g", w.Service, ts2, bound)
			}
		}
	}
}

func TestQoSInfeasible(t *testing.T) {
	m := synthModels()
	_, err := m.QoSWeights(5000, 1e-6, QoSOptions{})
	if err == nil {
		t.Fatal("impossible bound accepted")
	}
}

func TestQoSValidation(t *testing.T) {
	m := synthModels()
	if _, err := m.QoSWeights(100, 0, QoSOptions{}); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := m.QoSWeights(100, 10, QoSOptions{TailQuantile: 120}); err == nil {
		t.Fatal("quantile >100 accepted")
	}
	if _, err := m.QoSWeights(100, 10, QoSOptions{Step: -1}); err == nil {
		t.Fatal("negative step accepted")
	}
}

func TestQoSPlanMeetsBound(t *testing.T) {
	m := synthModels()
	c := 2000
	loosest, err := m.TailServiceAt(c, ExpenseOnly(), 95)
	if err != nil {
		t.Fatal(err)
	}
	plan, w, err := m.QoSPlan(c, loosest, QoSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Service != 0 {
		t.Fatalf("loosest bound should need no service weight, got %g", w.Service)
	}
	if plan.Degree != m.OptimalDegreeExpense(c) {
		t.Fatalf("plan degree %d, want expense optimum %d", plan.Degree, m.OptimalDegreeExpense(c))
	}
}

func TestOptimalDegreeConstrained(t *testing.T) {
	m := synthModels()
	const c = 5000
	unconstrained, err := m.OptimalDegree(c, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	// No limit (or a generous one) reproduces the unconstrained choice.
	got, err := m.OptimalDegreeConstrained(c, Balanced(), 0)
	if err != nil || got != unconstrained {
		t.Fatalf("unlimited: got %d (%v), want %d", got, err, unconstrained)
	}
	got, err = m.OptimalDegreeConstrained(c, Balanced(), c)
	if err != nil || got != unconstrained {
		t.Fatalf("generous limit: got %d (%v), want %d", got, err, unconstrained)
	}
	// A tight limit forces a deeper degree that respects it.
	const limit = 150
	got, err = m.OptimalDegreeConstrained(c, Balanced(), limit)
	if err != nil {
		t.Fatal(err)
	}
	if instances := (c + got - 1) / got; instances > limit {
		t.Fatalf("degree %d spawns %d instances > limit %d", got, instances, limit)
	}
	if got <= unconstrained {
		t.Fatalf("tight limit should force deeper packing: %d vs %d", got, unconstrained)
	}
	// An impossible limit errors.
	if _, err := m.OptimalDegreeConstrained(c, Balanced(), 10); err == nil {
		t.Fatal("infeasible limit accepted")
	}
	if _, err := m.OptimalDegreeConstrained(c, Weights{2, -1}, limit); err == nil {
		t.Fatal("bad weights accepted")
	}
}
