package core

import (
	"fmt"

	"repro/internal/stats"
)

// ModelConfidence carries bootstrap confidence intervals for every fitted
// parameter — how much the profiling samples actually pin the models down,
// the prior-side counterpart of the Sec. 2.4 χ² validation.
type ModelConfidence struct {
	Alpha     stats.CI
	Intercept stats.CI
	B1        stats.CI
	B2        stats.CI
	B3        stats.CI
}

// ConfidenceOptions tunes the bootstrap.
type ConfidenceOptions struct {
	// Iterations per fit; 0 means 300.
	Iterations int
	// Confidence level; 0 means 0.95.
	Confidence float64
	// Seed for the resampler.
	Seed int64
}

// ConfidenceFor bootstraps both fits from their raw samples. mfuncGB must
// match the value the ET fit used (it scales the abscissa).
func ConfidenceFor(etSamples []ETSample, mfuncGB float64,
	scSamples []ScalingSample, opts ConfidenceOptions) (ModelConfidence, error) {
	if mfuncGB <= 0 {
		return ModelConfidence{}, fmt.Errorf("core: non-positive Mfunc")
	}
	iters := opts.Iterations
	if iters == 0 {
		iters = 300
	}
	conf := opts.Confidence
	if conf == 0 {
		conf = 0.95
	}

	xs := make([]float64, len(etSamples))
	ys := make([]float64, len(etSamples))
	for i, s := range etSamples {
		xs[i] = mfuncGB * float64(s.Degree)
		ys[i] = s.ETSec
	}
	_, alphaCI, icptCI, err := stats.ExpFitBootstrap(xs, ys, iters, conf, opts.Seed)
	if err != nil {
		return ModelConfidence{}, fmt.Errorf("core: ET bootstrap: %w", err)
	}

	cxs := make([]float64, len(scSamples))
	cys := make([]float64, len(scSamples))
	for i, s := range scSamples {
		cxs[i] = float64(s.Instances)
		cys[i] = s.ScalingSec
	}
	_, cis, err := stats.PolyFitBootstrap(cxs, cys, 2, iters, conf, opts.Seed+1)
	if err != nil {
		return ModelConfidence{}, fmt.Errorf("core: scaling bootstrap: %w", err)
	}
	return ModelConfidence{
		Alpha:     alphaCI,
		Intercept: icptCI,
		B1:        cis[2],
		B2:        cis[1],
		B3:        stats.CI{Lo: -cis[0].Hi, Hi: -cis[0].Lo}, // β3 = −c0
	}, nil
}
