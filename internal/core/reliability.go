package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Reliability-aware planning: ProPack's whole pitch is co-locating P
// functions per instance — which also makes each instance crash P times as
// expensive, a trade-off the paper never models. A crash at degree P loses
// all P functions' work and re-runs the whole instance, and the failed
// attempt is still billed. FailureModel captures that cost analytically so
// the Eq. 4–7 optimizer can shift to lower packing degrees as failure rates
// rise.

// FailureModel describes the platform's mid-execution failure behaviour for
// planning purposes: instances crash at CrashRate crashes per
// instance-second (exponentially distributed crash times, matching the
// simulator's injection), and a crashed instance re-enters the control
// plane after RetryDelaySec. The zero value models a failure-free platform
// and reproduces the failure-blind planner exactly.
type FailureModel struct {
	// CrashRate is λ, in crashes per instance-second of execution.
	CrashRate float64
	// RetryDelaySec is the back-off before a crashed instance re-runs;
	// it delays completion but is not billed.
	RetryDelaySec float64
}

// Validate reports an error for malformed failure models.
func (f FailureModel) Validate() error {
	if f.CrashRate < 0 || f.RetryDelaySec < 0 {
		return fmt.Errorf("core: negative failure-model parameter %+v", f)
	}
	return nil
}

// Enabled reports whether the model injects any failures.
func (f FailureModel) Enabled() bool { return f.CrashRate > 0 }

// ExpectedAttempts is the expected number of executions (including the
// successful one) of an instance whose attempt takes T seconds: each
// attempt survives with probability exp(−λT), so the count is geometric
// with mean exp(λT).
func (f FailureModel) ExpectedAttempts(T float64) float64 {
	if !f.Enabled() {
		return 1
	}
	return math.Exp(f.CrashRate * T)
}

// ExpectedBilledSec is the expected billed execution time of an instance
// whose attempt takes T seconds, counting the partial time of every crashed
// attempt: (e^{λT} − 1)/λ. It reduces to T as λ → 0 and grows exponentially
// with T — exactly the degree-P penalty the planner must see, since T=ET(P)
// rises with packing degree.
func (f FailureModel) ExpectedBilledSec(T float64) float64 {
	if !f.Enabled() {
		return T
	}
	return (math.Exp(f.CrashRate*T) - 1) / f.CrashRate
}

// ExpectedLatencySec is the expected wall-clock time until the instance
// completes: the billed execution time plus one retry delay per expected
// failure.
func (f FailureModel) ExpectedLatencySec(T float64) float64 {
	if !f.Enabled() {
		return T
	}
	failures := math.Exp(f.CrashRate*T) - 1
	return f.ExpectedBilledSec(T) + failures*f.RetryDelaySec
}

// ReliableModels folds a FailureModel into ProPack's fitted models: service
// time and expense are replaced by their expectations under crash-and-retry,
// and the Eq. 5–7 optimizer runs on those. With a zero FailureModel every
// method agrees exactly (bit-for-bit) with the embedded failure-blind
// Models.
type ReliableModels struct {
	Models
	Failure FailureModel
}

// ServiceTime is the expected total service time at concurrency c and
// packing degree: expected execution latency under crashes plus the scaling
// time of the instance fleet.
func (m ReliableModels) ServiceTime(c, degree int) float64 {
	return m.Failure.ExpectedLatencySec(m.ET.At(degree)) + m.Scaling.At(instances(c, degree))
}

// Expense is the expected user expense at concurrency c and packing degree:
// every attempt's compute is billed, so the per-instance compute term is
// the expected billed time, and the non-compute term recurs once per
// expected attempt (each re-invocation pays request fees).
func (m ReliableModels) Expense(c, degree int) float64 {
	n := instances(c, degree)
	T := m.ET.At(degree)
	return (m.Failure.ExpectedBilledSec(T)*m.RatePerInstanceSec +
		m.Storage.At(degree)*m.Failure.ExpectedAttempts(T)) * n
}

// OptimalDegree is Eq. 7 over the failure-aware objectives: the packing
// degree minimizing the weighted fractional regrets of expected service
// time and expected expense.
func (m ReliableModels) OptimalDegree(c int, w Weights) (int, error) {
	if err := m.Models.Validate(); err != nil {
		return 0, err
	}
	if err := m.Failure.Validate(); err != nil {
		return 0, err
	}
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if c < 1 {
		return 0, fmt.Errorf("core: concurrency %d < 1", c)
	}
	service := func(p int) float64 { return m.ServiceTime(c, p) }
	expense := func(p int) float64 { return m.Expense(c, p) }
	bestS := service(stats.ArgminInt(1, m.MaxDegree, service))
	bestE := expense(stats.ArgminInt(1, m.MaxDegree, expense))
	return stats.ArgminInt(1, m.MaxDegree, func(p int) float64 {
		dS := (service(p) - bestS) / bestS
		dE := (expense(p) - bestE) / bestE
		return w.Service*dS + w.Expense*dE
	}), nil
}

// PlanFor computes the failure-aware recommendation at concurrency c. The
// predicted fields are expectations under the failure model; the baseline
// fields describe degree 1 under the same failures, so the packing-vs-crash
// trade stays visible.
func (m ReliableModels) PlanFor(c int, w Weights) (Plan, error) {
	deg, err := m.OptimalDegree(c, w)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Concurrency:         c,
		Degree:              deg,
		Weights:             w,
		PredictedServiceSec: m.ServiceTime(c, deg),
		PredictedExpenseUSD: m.Expense(c, deg),
		BaselineServiceSec:  m.ServiceTime(c, 1),
		BaselineExpenseUSD:  m.Expense(c, 1),
	}, nil
}
