package core

import (
	"fmt"
)

// Weights are the objective weights of Eq. 7: W_S on service time, W_E on
// expense. They must be in [0,1] and sum to 1.
type Weights struct {
	Service float64
	Expense float64
}

// Balanced is the paper's default: equal importance to both objectives.
func Balanced() Weights { return Weights{Service: 0.5, Expense: 0.5} }

// ServiceOnly optimizes service time alone ("ProPack (Service Time)").
func ServiceOnly() Weights { return Weights{Service: 1, Expense: 0} }

// ExpenseOnly optimizes expense alone ("ProPack (Expense)").
func ExpenseOnly() Weights { return Weights{Service: 0, Expense: 1} }

// Validate reports an error for malformed weights.
func (w Weights) Validate() error {
	const eps = 1e-9
	if w.Service < -eps || w.Service > 1+eps || w.Expense < -eps || w.Expense > 1+eps {
		return fmt.Errorf("core: weights outside [0,1]: %+v", w)
	}
	if s := w.Service + w.Expense; s < 1-1e-6 || s > 1+1e-6 {
		return fmt.Errorf("core: weights must sum to 1, got %g", s)
	}
	return nil
}

// OptimalDegreeService is Eq. 3: the packing degree minimizing modeled
// total service time at concurrency c.
func (m Models) OptimalDegreeService(c int) int {
	return argminVec(newDegreeTable(m, c).service) + 1
}

// OptimalDegreeExpense is Eq. 4: the packing degree minimizing modeled
// expense at concurrency c.
func (m Models) OptimalDegreeExpense(c int) int {
	return argminVec(newDegreeTable(m, c).expense) + 1
}

// OptimalDegree is Eq. 7: the packing degree minimizing the weighted sum of
// fractional regrets from the two single-objective optima (Eqs. 5–6).
func (m Models) OptimalDegree(c int, w Weights) (int, error) {
	return m.OptimalDegreeForQuantile(c, 100, w)
}

// OptimalDegreeForQuantile is Eq. 7 with the service objective replaced by
// the q-th percentile service time — ProPack "predicts different packing
// degrees that jointly minimize total, tail, and median service times"
// (Sec. 3); q=100 is the total, 95 the tail, 50 the median.
func (m Models) OptimalDegreeForQuantile(c int, q float64, w Weights) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if c < 1 {
		return 0, fmt.Errorf("core: concurrency %d < 1", c)
	}
	if q <= 0 || q > 100 {
		return 0, fmt.Errorf("core: quantile %g outside (0,100]", q)
	}
	return newDegreeTable(m, c).argminRegret(q, 1, w), nil
}

// OptimalDegreeConstrained is Eq. 7 restricted to packing degrees whose
// instance count stays within maxInstances — planning against an
// account-level concurrency limit so the burst never throttles.
// maxInstances ≤ 0 means unconstrained. It returns an error if even the
// maximum degree spawns too many instances.
func (m Models) OptimalDegreeConstrained(c int, w Weights, maxInstances int) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if c < 1 {
		return 0, fmt.Errorf("core: concurrency %d < 1", c)
	}
	return constrainedOn(newDegreeTable(m, c), w, maxInstances)
}

// constrainedOn is the shared constrained Eq. 7 path: an argmin over the
// restricted degree range, with the regret baselines (Eqs. 5–6) taken over
// the same range.
func constrainedOn(t *DegreeTable, w Weights, maxInstances int) (int, error) {
	minDegree := 1
	if maxInstances > 0 {
		minDegree = (t.c + maxInstances - 1) / maxInstances
		if minDegree > t.MaxDegree() {
			return 0, fmt.Errorf("core: concurrency %d cannot fit %d instances even at degree %d",
				t.c, maxInstances, t.MaxDegree())
		}
	}
	return t.argminRegret(100, minDegree, w), nil
}

// Plan is ProPack's recommendation for running an application at a
// concurrency level.
type Plan struct {
	Concurrency int
	Degree      int
	Weights     Weights
	// Model predictions for the recommended degree.
	PredictedServiceSec float64
	PredictedExpenseUSD float64
	// Model predictions for the no-packing baseline, for reference.
	BaselineServiceSec float64
	BaselineExpenseUSD float64
}

// PlanFor computes the full recommendation at concurrency c.
func (m Models) PlanFor(c int, w Weights) (Plan, error) {
	if err := m.Validate(); err != nil {
		return Plan{}, err
	}
	if err := w.Validate(); err != nil {
		return Plan{}, err
	}
	if c < 1 {
		return Plan{}, fmt.Errorf("core: concurrency %d < 1", c)
	}
	t := newDegreeTable(m, c)
	return t.plan(t.argminRegret(100, 1, w), w), nil
}
