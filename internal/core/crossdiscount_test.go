package core

import (
	"math"
	"testing"
)

func TestEstimateCrossDiscountRecovers(t *testing.T) {
	apps := demoApps()
	a, b := apps[0], apps[1]
	const k = 4
	for _, truth := range []float64{0, 0.1, 0.25, 0.5} {
		// Synthesize the observation the ground truth would produce.
		obs := PredictMixedET([]App{a, b}, []int{k, k}, truth)
		got, err := EstimateCrossDiscount(a, b, k, obs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 1e-9 {
			t.Fatalf("truth %g: estimated %g", truth, got)
		}
	}
}

func TestEstimateCrossDiscountClamps(t *testing.T) {
	apps := demoApps()
	a, b := apps[0], apps[1]
	// An observation slower than the undiscounted prediction clamps to 0.
	slow := PredictMixedET([]App{a, b}, []int{4, 4}, 0) * 1.5
	got, err := EstimateCrossDiscount(a, b, 4, slow)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("slower-than-predicted should clamp to 0, got %g", got)
	}
	// An absurdly fast observation clamps to 1.
	fast := 1e-6
	got, err = EstimateCrossDiscount(a, b, 4, fast)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("implausibly fast observation should clamp to 1, got %g", got)
	}
}

func TestEstimateCrossDiscountErrors(t *testing.T) {
	apps := demoApps()
	if _, err := EstimateCrossDiscount(apps[0], apps[1], 0, 100); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := EstimateCrossDiscount(apps[0], apps[1], 4, -1); err == nil {
		t.Fatal("negative observation accepted")
	}
}

// TestDiscountTiltsPlannerTowardMixing: with a large cross discount the
// planner should prefer cross-application bins for duration-matched apps;
// with zero discount the compositions tie and segregation's finer
// granularity wins.
func TestDiscountTiltsPlannerTowardMixing(t *testing.T) {
	// Two apps with identical solo times and memory but different pressure.
	apps := []App{
		{Name: "heavy", MemoryMB: 300, Count: 900,
			ET: ETModel{MfuncGB: 300.0 / 1024, Alpha: 0.26, Intercept: math.Log(100) - 0.26*300.0/1024}},
		{Name: "light", MemoryMB: 300, Count: 900,
			ET: ETModel{MfuncGB: 300.0 / 1024, Alpha: 0.10, Intercept: math.Log(100) - 0.10*300.0/1024}},
	}
	opts := demoMixedOpts()
	opts.Weights = ServiceOnly()

	opts.CrossDiscount = 0.3
	withDisc, err := PlanMixed(apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if withDisc.Strategy != "mixed" {
		t.Fatalf("large discount should favour mixing, got %q", withDisc.Strategy)
	}

	opts.CrossDiscount = 0
	noDisc, err := PlanMixed(apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if withDisc.PredictedServiceSec > noDisc.PredictedServiceSec {
		t.Fatalf("discounted plan should predict no worse service: %g vs %g",
			withDisc.PredictedServiceSec, noDisc.PredictedServiceSec)
	}
}
