package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// The amortized planner hot path. Every Eq. 5–7 entry point needs the same
// per-degree vectors — ET(P), the instance count, service time (total and
// at quantiles), and expense — and the naive formulation recomputed them
// from scratch on every scan: OptimalDegreeForQuantile walked the degree
// range three times per call, QoSWeights repeated that for every weight
// step, and sweeps repeated *that* per concurrency and repetition. A
// DegreeTable computes the vectors once per (Models, concurrency) pair; the
// planner entry points are argmin scans over precomputed floats, and a
// TableCache (LRU keyed by concurrency) amortizes tables across calls via
// the Planner wrapper.
//
// Equivalence contract: every table entry is computed with the exact
// expression the corresponding Models method uses (same operations, same
// order), so table-backed recommendations are bit-identical to the naive
// formulation. The property tests in table_equiv_test.go hold the planner
// to that contract against a retained naive reference.

// DegreeTable holds the per-degree model vectors for one (Models,
// concurrency) pair. Build it with NewDegreeTable, or let a Planner manage
// a cache of them. A DegreeTable is safe for concurrent use.
type DegreeTable struct {
	m Models
	c int

	// Per-degree vectors, index p-1 for packing degree p.
	et      []float64 // Eq. 1: ET(P)
	inst    []float64 // ceil(c/P), as float (the paper's C/P)
	service []float64 // Eq. 3 argument: total (q=100) service time
	expense []float64 // Eq. 4 argument: user expense

	svcCol quantileColumn // the q=100 column, aliased to service

	mu        sync.Mutex
	quantiles map[float64]*quantileColumn // lazily built per requested q
}

// quantileColumn is one service-time quantile's per-degree vector.
type quantileColumn struct {
	vals []float64
}

// NewDegreeTable validates the models and concurrency and builds the table
// in one pass over the degree range.
func NewDegreeTable(m Models, c int) (*DegreeTable, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("core: concurrency %d < 1", c)
	}
	return newDegreeTable(m, c), nil
}

// newDegreeTable builds the table without validation (internal callers
// validate first, matching each entry point's historical error order). It
// panics if the degree range is empty, as the naive argmin scan did.
func newDegreeTable(m Models, c int) *DegreeTable {
	d := m.MaxDegree
	if d < 1 {
		panic("core: degree table over empty degree range")
	}
	buf := make([]float64, 4*d)
	t := &DegreeTable{
		m:       m,
		c:       c,
		et:      buf[:d:d],
		inst:    buf[d : 2*d : 2*d],
		service: buf[2*d : 3*d : 3*d],
		expense: buf[3*d : 4*d : 4*d],
	}
	for i := 0; i < d; i++ {
		p := i + 1
		et := m.ET.At(p)
		n := instances(c, p)
		t.et[i] = et
		t.inst[i] = n
		// Same expressions as Models.ServiceTime and Models.Expense — the
		// bit-identity contract depends on it.
		t.service[i] = et + m.Scaling.At(n)
		t.expense[i] = (et*m.RatePerInstanceSec + m.Storage.At(p)) * n
	}
	t.svcCol = quantileColumn{vals: t.service}
	return t
}

// Concurrency returns the concurrency level the table was built for.
func (t *DegreeTable) Concurrency() int { return t.c }

// MaxDegree returns the table's degree range (degrees 1..MaxDegree).
func (t *DegreeTable) MaxDegree() int { return len(t.service) }

// ServiceTime returns the memoized Models.ServiceTime(c, degree).
func (t *DegreeTable) ServiceTime(degree int) float64 { return t.service[degree-1] }

// Expense returns the memoized Models.Expense(c, degree).
func (t *DegreeTable) Expense(degree int) float64 { return t.expense[degree-1] }

// ServiceTimeQuantile returns the memoized Models.ServiceTimeQuantile.
func (t *DegreeTable) ServiceTimeQuantile(degree int, q float64) float64 {
	return t.quantile(q).vals[degree-1]
}

// quantile returns the per-degree service-time vector at quantile q,
// building and caching it on first use. q=100 aliases the service vector
// (ServiceTimeQuantile reduces to ServiceTime there, including in floats:
// q/100 is exactly 1).
func (t *DegreeTable) quantile(q float64) *quantileColumn {
	if q == 100 {
		return &t.svcCol
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if col, ok := t.quantiles[q]; ok {
		return col
	}
	vals := make([]float64, len(t.et))
	qq := q / 100
	for i := range vals {
		// Same expression as Models.ServiceTimeQuantile.
		vals[i] = t.et[i] + t.m.Scaling.At(qq*t.inst[i])
	}
	col := &quantileColumn{vals: vals}
	if t.quantiles == nil {
		t.quantiles = make(map[float64]*quantileColumn, 2)
	}
	t.quantiles[q] = col
	return col
}

// minOf returns the minimum of a non-empty vector (ties keep the first,
// like the naive argmin scan; the value is what matters here).
func minOf(vals []float64) float64 {
	best := vals[0]
	for _, v := range vals[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// argminRegret is the Eq. 7 scan over the table: the packing degree in
// [minDeg, MaxDegree] minimizing the weighted sum of fractional regrets
// from the range's single-objective optima (Eqs. 5–6), with the service
// objective at quantile q. Ties resolve to the smallest degree, exactly as
// stats.ArgminInt does.
func (t *DegreeTable) argminRegret(q float64, minDeg int, w Weights) int {
	col := t.quantile(q)
	svc := col.vals[minDeg-1:]
	exp := t.expense[minDeg-1:]
	bestS := minOf(svc) // S(P_opt_s) over the range
	bestE := minOf(exp) // E(P_opt_e) over the range
	best, bestVal := 0, math.Inf(1)
	for i, s := range svc {
		dS := (s - bestS) / bestS      // Eq. 5
		dE := (exp[i] - bestE) / bestE // Eq. 6
		if v := w.Service*dS + w.Expense*dE; v < bestVal {
			best, bestVal = i, v
		}
	}
	return best + minDeg
}

// plan materializes the Plan for a chosen degree from memoized predictions.
func (t *DegreeTable) plan(deg int, w Weights) Plan {
	return Plan{
		Concurrency:         t.c,
		Degree:              deg,
		Weights:             w,
		PredictedServiceSec: t.service[deg-1],
		PredictedExpenseUSD: t.expense[deg-1],
		BaselineServiceSec:  t.service[0],
		BaselineExpenseUSD:  t.expense[0],
	}
}

// --- Table cache -------------------------------------------------------------

// defaultTableCap bounds a Planner's table cache: sweeps revisit a modest
// set of concurrency levels, and one table is O(MaxDegree) floats.
const defaultTableCap = 64

// tableShards is the shard count for caches large enough to split. Sixteen
// shards keep write contention negligible for any realistic core count
// while staying small enough that the default capacity still gives each
// shard a useful LRU window.
const tableShards = 16

// TableCache memoizes DegreeTables for one fixed Models value across
// concurrency levels, evicting least-recently-used entries beyond its
// capacity. Safe for concurrent use; the concurrent-serving path is lock
// free. A hit loads an immutable map snapshot published with an atomic
// pointer and bumps the entry's recency stamp with an atomic store — no
// mutex, so concurrent Advise/QoSPlan callers on distinct cores never
// serialize. Misses take a per-shard mutex only to install a placeholder;
// the table itself is built outside every lock, and concurrent requests for
// the same concurrency coalesce on the placeholder (singleflight) so a
// stampede builds each table exactly once.
//
// Capacity is apportioned across shards, so with more than one shard
// eviction is least-recently-used per shard rather than globally — a cache
// at least as large (shards round the per-shard capacity up) with the same
// hit behaviour on sweep-style reuse. Small capacities (< 2·tableShards)
// keep a single shard and therefore exact global LRU order.
type TableCache struct {
	m      Models
	shards []tableShard
	tick   atomic.Uint64 // global recency clock, shared by all shards
	builds atomic.Uint64 // tables actually constructed (singleflight audit)
}

type tableShard struct {
	read atomic.Pointer[map[int]*cacheEntry] // immutable snapshot; copy-on-write
	mu   sync.Mutex                          // guards snapshot replacement
	cap  int
}

// cacheEntry is one cached (or in-flight) table. ready is closed once t is
// set; hitters on an in-flight entry wait on it instead of rebuilding.
type cacheEntry struct {
	used  atomic.Uint64
	ready chan struct{}
	t     atomic.Pointer[DegreeTable]
}

// NewTableCache builds a cache for the models. capacity ≤ 0 means the
// default (64 concurrency levels).
func NewTableCache(m Models, capacity int) *TableCache {
	if capacity <= 0 {
		capacity = defaultTableCap
	}
	n := tableShards
	if capacity < 2*tableShards {
		n = 1 // too small to split: keep exact global LRU
	}
	tc := &TableCache{m: m, shards: make([]tableShard, n)}
	perShard := (capacity + n - 1) / n
	for i := range tc.shards {
		tc.shards[i].cap = perShard
		empty := make(map[int]*cacheEntry)
		tc.shards[i].read.Store(&empty)
	}
	return tc
}

// shardOf maps a concurrency level to its shard via SplitMix64-style
// mixing, so arithmetic sweeps (100, 200, 300, …) spread instead of
// clustering.
func (tc *TableCache) shardOf(c int) *tableShard {
	if len(tc.shards) == 1 {
		return &tc.shards[0]
	}
	z := uint64(c) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &tc.shards[z%uint64(len(tc.shards))]
}

// Table returns the (possibly cached) table for concurrency c, validating
// inputs exactly as NewDegreeTable does.
func (tc *TableCache) Table(c int) (*DegreeTable, error) {
	if err := tc.m.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("core: concurrency %d < 1", c)
	}
	sh := tc.shardOf(c)
	if e, ok := (*sh.read.Load())[c]; ok {
		return tc.hit(e), nil
	}
	sh.mu.Lock()
	snap := *sh.read.Load()
	if e, ok := snap[c]; ok {
		sh.mu.Unlock()
		return tc.hit(e), nil
	}
	// Install an in-flight placeholder in a fresh snapshot, then build the
	// table outside the lock so other shard keys proceed undisturbed and
	// same-key callers coalesce on the placeholder.
	e := &cacheEntry{ready: make(chan struct{})}
	e.used.Store(tc.tick.Add(1))
	next := make(map[int]*cacheEntry, len(snap)+1)
	for k, v := range snap {
		next[k] = v
	}
	if len(next) >= sh.cap {
		evict, oldest := 0, uint64(math.MaxUint64)
		for k, v := range next {
			if u := v.used.Load(); u < oldest {
				evict, oldest = k, u
			}
		}
		delete(next, evict)
	}
	next[c] = e
	sh.read.Store(&next)
	sh.mu.Unlock()

	t := newDegreeTable(tc.m, c)
	tc.builds.Add(1)
	e.t.Store(t)
	close(e.ready)
	return t, nil
}

// hit bumps an entry's recency and returns its table, waiting out an
// in-flight build if necessary.
func (tc *TableCache) hit(e *cacheEntry) *DegreeTable {
	e.used.Store(tc.tick.Add(1))
	if t := e.t.Load(); t != nil {
		return t
	}
	<-e.ready
	return e.t.Load()
}

// Len reports the number of cached tables (for tests and diagnostics).
func (tc *TableCache) Len() int {
	n := 0
	for i := range tc.shards {
		n += len(*tc.shards[i].read.Load())
	}
	return n
}

// Builds reports how many tables the cache has constructed since creation.
// With singleflight coalescing it equals the number of distinct concurrency
// levels requested (absent evictions) no matter how many goroutines raced —
// the concurrency stress tests assert exactly that.
func (tc *TableCache) Builds() uint64 { return tc.builds.Load() }

// --- Planner -----------------------------------------------------------------

// Planner wraps Models with a table cache so repeated planning calls at the
// same concurrency — sweeps over weights, quantiles, or repetitions — reuse
// one DegreeTable instead of rebuilding the model vectors. Every method
// returns bit-identical results to the corresponding Models method; the
// only difference is amortization. Safe for concurrent use.
type Planner struct {
	m     Models
	cache *TableCache
}

// NewPlanner builds a planner with the default cache capacity.
func NewPlanner(m Models) *Planner {
	return &Planner{m: m, cache: NewTableCache(m, 0)}
}

// Models returns the wrapped models.
func (pl *Planner) Models() Models { return pl.m }

// OptimalDegree is the cached Models.OptimalDegree.
func (pl *Planner) OptimalDegree(c int, w Weights) (int, error) {
	return pl.OptimalDegreeForQuantile(c, 100, w)
}

// OptimalDegreeForQuantile is the cached Models.OptimalDegreeForQuantile.
func (pl *Planner) OptimalDegreeForQuantile(c int, q float64, w Weights) (int, error) {
	t, err := pl.table(c, w)
	if err != nil {
		return 0, err
	}
	if q <= 0 || q > 100 {
		return 0, fmt.Errorf("core: quantile %g outside (0,100]", q)
	}
	return t.argminRegret(q, 1, w), nil
}

// OptimalDegreeService is the cached Models.OptimalDegreeService.
func (pl *Planner) OptimalDegreeService(c int) int {
	t, err := pl.cache.Table(c)
	if err != nil {
		panic(err) // mirrors the naive ArgminInt panic contract
	}
	return argminVec(t.service) + 1
}

// OptimalDegreeExpense is the cached Models.OptimalDegreeExpense.
func (pl *Planner) OptimalDegreeExpense(c int) int {
	t, err := pl.cache.Table(c)
	if err != nil {
		panic(err)
	}
	return argminVec(t.expense) + 1
}

// PlanFor is the cached Models.PlanFor.
func (pl *Planner) PlanFor(c int, w Weights) (Plan, error) {
	t, err := pl.table(c, w)
	if err != nil {
		return Plan{}, err
	}
	return t.plan(t.argminRegret(100, 1, w), w), nil
}

// OptimalDegreeConstrained is the cached Models.OptimalDegreeConstrained.
func (pl *Planner) OptimalDegreeConstrained(c int, w Weights, maxInstances int) (int, error) {
	t, err := pl.table(c, w)
	if err != nil {
		return 0, err
	}
	return constrainedOn(t, w, maxInstances)
}

// TailServiceAt is the cached Models.TailServiceAt.
func (pl *Planner) TailServiceAt(c int, w Weights, tailQuantile float64) (float64, error) {
	t, err := pl.table(c, w)
	if err != nil {
		return 0, err
	}
	deg := t.argminRegret(100, 1, w)
	return t.quantile(tailQuantile).vals[deg-1], nil
}

// QoSWeights is the cached Models.QoSWeights.
func (pl *Planner) QoSWeights(c int, qosSec float64, opts QoSOptions) (Weights, error) {
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return Weights{}, err
	}
	t, err := pl.cache.Table(c)
	if err != nil {
		return Weights{}, err
	}
	return qosSearch(t, qosSec, tailQ, step)
}

// QoSPlan is the cached Models.QoSPlan.
func (pl *Planner) QoSPlan(c int, qosSec float64, opts QoSOptions) (Plan, Weights, error) {
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	t, err := pl.cache.Table(c)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	w, err := qosSearch(t, qosSec, tailQ, step)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	return t.plan(t.argminRegret(100, 1, w), w), w, nil
}

// Table exposes the cached DegreeTable for concurrency c, for callers that
// scan degrees themselves (the serve daemon's fixed-degree /v1/plan
// endpoint reads service/expense straight off it). It validates exactly as
// NewDegreeTable does and shares the planner's cache and singleflight.
func (pl *Planner) Table(c int) (*DegreeTable, error) {
	return pl.cache.Table(c)
}

// table validates weights alongside the cached table lookup, preserving the
// naive methods' validation order (models, then weights, then concurrency
// errors come out of the same checks).
func (pl *Planner) table(c int, w Weights) (*DegreeTable, error) {
	if err := pl.m.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return pl.cache.Table(c)
}

// argminVec is the first-wins argmin over a non-empty vector, matching
// stats.ArgminInt's tie-breaking.
func argminVec(vals []float64) int {
	best, bestVal := 0, vals[0]
	for i, v := range vals[1:] {
		if v < bestVal {
			best, bestVal = i+1, v
		}
	}
	return best
}
