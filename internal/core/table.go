package core

import (
	"fmt"
	"math"
	"sync"
)

// The amortized planner hot path. Every Eq. 5–7 entry point needs the same
// per-degree vectors — ET(P), the instance count, service time (total and
// at quantiles), and expense — and the naive formulation recomputed them
// from scratch on every scan: OptimalDegreeForQuantile walked the degree
// range three times per call, QoSWeights repeated that for every weight
// step, and sweeps repeated *that* per concurrency and repetition. A
// DegreeTable computes the vectors once per (Models, concurrency) pair; the
// planner entry points are argmin scans over precomputed floats, and a
// TableCache (LRU keyed by concurrency) amortizes tables across calls via
// the Planner wrapper.
//
// Equivalence contract: every table entry is computed with the exact
// expression the corresponding Models method uses (same operations, same
// order), so table-backed recommendations are bit-identical to the naive
// formulation. The property tests in table_equiv_test.go hold the planner
// to that contract against a retained naive reference.

// DegreeTable holds the per-degree model vectors for one (Models,
// concurrency) pair. Build it with NewDegreeTable, or let a Planner manage
// a cache of them. A DegreeTable is safe for concurrent use.
type DegreeTable struct {
	m Models
	c int

	// Per-degree vectors, index p-1 for packing degree p.
	et      []float64 // Eq. 1: ET(P)
	inst    []float64 // ceil(c/P), as float (the paper's C/P)
	service []float64 // Eq. 3 argument: total (q=100) service time
	expense []float64 // Eq. 4 argument: user expense

	svcCol quantileColumn // the q=100 column, aliased to service

	mu        sync.Mutex
	quantiles map[float64]*quantileColumn // lazily built per requested q
}

// quantileColumn is one service-time quantile's per-degree vector.
type quantileColumn struct {
	vals []float64
}

// NewDegreeTable validates the models and concurrency and builds the table
// in one pass over the degree range.
func NewDegreeTable(m Models, c int) (*DegreeTable, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("core: concurrency %d < 1", c)
	}
	return newDegreeTable(m, c), nil
}

// newDegreeTable builds the table without validation (internal callers
// validate first, matching each entry point's historical error order). It
// panics if the degree range is empty, as the naive argmin scan did.
func newDegreeTable(m Models, c int) *DegreeTable {
	d := m.MaxDegree
	if d < 1 {
		panic("core: degree table over empty degree range")
	}
	buf := make([]float64, 4*d)
	t := &DegreeTable{
		m:       m,
		c:       c,
		et:      buf[:d:d],
		inst:    buf[d : 2*d : 2*d],
		service: buf[2*d : 3*d : 3*d],
		expense: buf[3*d : 4*d : 4*d],
	}
	for i := 0; i < d; i++ {
		p := i + 1
		et := m.ET.At(p)
		n := instances(c, p)
		t.et[i] = et
		t.inst[i] = n
		// Same expressions as Models.ServiceTime and Models.Expense — the
		// bit-identity contract depends on it.
		t.service[i] = et + m.Scaling.At(n)
		t.expense[i] = (et*m.RatePerInstanceSec + m.Storage.At(p)) * n
	}
	t.svcCol = quantileColumn{vals: t.service}
	return t
}

// Concurrency returns the concurrency level the table was built for.
func (t *DegreeTable) Concurrency() int { return t.c }

// MaxDegree returns the table's degree range (degrees 1..MaxDegree).
func (t *DegreeTable) MaxDegree() int { return len(t.service) }

// ServiceTime returns the memoized Models.ServiceTime(c, degree).
func (t *DegreeTable) ServiceTime(degree int) float64 { return t.service[degree-1] }

// Expense returns the memoized Models.Expense(c, degree).
func (t *DegreeTable) Expense(degree int) float64 { return t.expense[degree-1] }

// ServiceTimeQuantile returns the memoized Models.ServiceTimeQuantile.
func (t *DegreeTable) ServiceTimeQuantile(degree int, q float64) float64 {
	return t.quantile(q).vals[degree-1]
}

// quantile returns the per-degree service-time vector at quantile q,
// building and caching it on first use. q=100 aliases the service vector
// (ServiceTimeQuantile reduces to ServiceTime there, including in floats:
// q/100 is exactly 1).
func (t *DegreeTable) quantile(q float64) *quantileColumn {
	if q == 100 {
		return &t.svcCol
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if col, ok := t.quantiles[q]; ok {
		return col
	}
	vals := make([]float64, len(t.et))
	qq := q / 100
	for i := range vals {
		// Same expression as Models.ServiceTimeQuantile.
		vals[i] = t.et[i] + t.m.Scaling.At(qq*t.inst[i])
	}
	col := &quantileColumn{vals: vals}
	if t.quantiles == nil {
		t.quantiles = make(map[float64]*quantileColumn, 2)
	}
	t.quantiles[q] = col
	return col
}

// minOf returns the minimum of a non-empty vector (ties keep the first,
// like the naive argmin scan; the value is what matters here).
func minOf(vals []float64) float64 {
	best := vals[0]
	for _, v := range vals[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// argminRegret is the Eq. 7 scan over the table: the packing degree in
// [minDeg, MaxDegree] minimizing the weighted sum of fractional regrets
// from the range's single-objective optima (Eqs. 5–6), with the service
// objective at quantile q. Ties resolve to the smallest degree, exactly as
// stats.ArgminInt does.
func (t *DegreeTable) argminRegret(q float64, minDeg int, w Weights) int {
	col := t.quantile(q)
	svc := col.vals[minDeg-1:]
	exp := t.expense[minDeg-1:]
	bestS := minOf(svc) // S(P_opt_s) over the range
	bestE := minOf(exp) // E(P_opt_e) over the range
	best, bestVal := 0, math.Inf(1)
	for i, s := range svc {
		dS := (s - bestS) / bestS      // Eq. 5
		dE := (exp[i] - bestE) / bestE // Eq. 6
		if v := w.Service*dS + w.Expense*dE; v < bestVal {
			best, bestVal = i, v
		}
	}
	return best + minDeg
}

// plan materializes the Plan for a chosen degree from memoized predictions.
func (t *DegreeTable) plan(deg int, w Weights) Plan {
	return Plan{
		Concurrency:         t.c,
		Degree:              deg,
		Weights:             w,
		PredictedServiceSec: t.service[deg-1],
		PredictedExpenseUSD: t.expense[deg-1],
		BaselineServiceSec:  t.service[0],
		BaselineExpenseUSD:  t.expense[0],
	}
}

// --- Table cache -------------------------------------------------------------

// defaultTableCap bounds a Planner's table cache: sweeps revisit a modest
// set of concurrency levels, and one table is O(MaxDegree) floats.
const defaultTableCap = 64

// TableCache memoizes DegreeTables for one fixed Models value across
// concurrency levels, evicting least-recently-used entries beyond its
// capacity. Safe for concurrent use; the concurrent-serving path is lock
// free (see shardedCache in cache.go, which holds the machinery shared with
// the joint planner's GridCache): a hit loads an immutable map snapshot
// through an atomic pointer — no mutex, so concurrent Advise/QoSPlan
// callers on distinct cores never serialize — misses build outside every
// lock with singleflight coalescing, and eviction is LRU per shard (exact
// global LRU below 2·16 capacity, where a single shard is kept).
type TableCache struct {
	m  Models
	sc *shardedCache[DegreeTable]
}

// NewTableCache builds a cache for the models. capacity ≤ 0 means the
// default (64 concurrency levels).
func NewTableCache(m Models, capacity int) *TableCache {
	if capacity <= 0 {
		capacity = defaultTableCap
	}
	tc := &TableCache{m: m}
	tc.sc = newShardedCache(capacity, func(c int) *DegreeTable { return newDegreeTable(m, c) })
	return tc
}

// Table returns the (possibly cached) table for concurrency c, validating
// inputs exactly as NewDegreeTable does.
func (tc *TableCache) Table(c int) (*DegreeTable, error) {
	if err := tc.m.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("core: concurrency %d < 1", c)
	}
	return tc.sc.get(c), nil
}

// Len reports the number of cached tables (for tests and diagnostics).
func (tc *TableCache) Len() int { return tc.sc.len() }

// Builds reports how many tables the cache has constructed since creation.
// With singleflight coalescing it equals the number of distinct concurrency
// levels requested (absent evictions) no matter how many goroutines raced —
// the concurrency stress tests assert exactly that.
func (tc *TableCache) Builds() uint64 { return tc.sc.builds.Load() }

// --- Planner -----------------------------------------------------------------

// Planner wraps Models with a table cache so repeated planning calls at the
// same concurrency — sweeps over weights, quantiles, or repetitions — reuse
// one DegreeTable instead of rebuilding the model vectors. Every method
// returns bit-identical results to the corresponding Models method; the
// only difference is amortization. Safe for concurrent use.
//
// A planner built with NewJointPlanner additionally carries a memory-size
// grid and answers the joint (degree × memory) entry points — OptimalConfig,
// PlanJointFor, QoSPlanJoint — from a GridCache with the same lock-free
// 0-alloc cached-hit path; its 1-D methods keep working against the grid's
// largest (base) size.
type Planner struct {
	m     Models
	cache *TableCache
	grid  *GridCache // nil unless built with NewJointPlanner
}

// NewPlanner builds a planner with the default cache capacity.
func NewPlanner(m Models) *Planner {
	return &Planner{m: m, cache: NewTableCache(m, 0)}
}

// Models returns the wrapped models.
func (pl *Planner) Models() Models { return pl.m }

// OptimalDegree is the cached Models.OptimalDegree.
func (pl *Planner) OptimalDegree(c int, w Weights) (int, error) {
	return pl.OptimalDegreeForQuantile(c, 100, w)
}

// OptimalDegreeForQuantile is the cached Models.OptimalDegreeForQuantile.
func (pl *Planner) OptimalDegreeForQuantile(c int, q float64, w Weights) (int, error) {
	t, err := pl.table(c, w)
	if err != nil {
		return 0, err
	}
	if q <= 0 || q > 100 {
		return 0, fmt.Errorf("core: quantile %g outside (0,100]", q)
	}
	return t.argminRegret(q, 1, w), nil
}

// OptimalDegreeService is the cached Models.OptimalDegreeService.
func (pl *Planner) OptimalDegreeService(c int) int {
	t, err := pl.cache.Table(c)
	if err != nil {
		panic(err) // mirrors the naive ArgminInt panic contract
	}
	return argminVec(t.service) + 1
}

// OptimalDegreeExpense is the cached Models.OptimalDegreeExpense.
func (pl *Planner) OptimalDegreeExpense(c int) int {
	t, err := pl.cache.Table(c)
	if err != nil {
		panic(err)
	}
	return argminVec(t.expense) + 1
}

// PlanFor is the cached Models.PlanFor.
func (pl *Planner) PlanFor(c int, w Weights) (Plan, error) {
	t, err := pl.table(c, w)
	if err != nil {
		return Plan{}, err
	}
	return t.plan(t.argminRegret(100, 1, w), w), nil
}

// OptimalDegreeConstrained is the cached Models.OptimalDegreeConstrained.
func (pl *Planner) OptimalDegreeConstrained(c int, w Weights, maxInstances int) (int, error) {
	t, err := pl.table(c, w)
	if err != nil {
		return 0, err
	}
	return constrainedOn(t, w, maxInstances)
}

// TailServiceAt is the cached Models.TailServiceAt.
func (pl *Planner) TailServiceAt(c int, w Weights, tailQuantile float64) (float64, error) {
	t, err := pl.table(c, w)
	if err != nil {
		return 0, err
	}
	deg := t.argminRegret(100, 1, w)
	return t.quantile(tailQuantile).vals[deg-1], nil
}

// QoSWeights is the cached Models.QoSWeights.
func (pl *Planner) QoSWeights(c int, qosSec float64, opts QoSOptions) (Weights, error) {
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return Weights{}, err
	}
	t, err := pl.cache.Table(c)
	if err != nil {
		return Weights{}, err
	}
	return qosSearch(t, qosSec, tailQ, step)
}

// QoSPlan is the cached Models.QoSPlan.
func (pl *Planner) QoSPlan(c int, qosSec float64, opts QoSOptions) (Plan, Weights, error) {
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	t, err := pl.cache.Table(c)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	w, err := qosSearch(t, qosSec, tailQ, step)
	if err != nil {
		return Plan{}, Weights{}, err
	}
	return t.plan(t.argminRegret(100, 1, w), w), w, nil
}

// Table exposes the cached DegreeTable for concurrency c, for callers that
// scan degrees themselves (the serve daemon's fixed-degree /v1/plan
// endpoint reads service/expense straight off it). It validates exactly as
// NewDegreeTable does and shares the planner's cache and singleflight.
func (pl *Planner) Table(c int) (*DegreeTable, error) {
	return pl.cache.Table(c)
}

// table validates weights alongside the cached table lookup, preserving the
// naive methods' validation order (models, then weights, then concurrency
// errors come out of the same checks).
func (pl *Planner) table(c int, w Weights) (*DegreeTable, error) {
	if err := pl.m.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return pl.cache.Table(c)
}

// argminVec is the first-wins argmin over a non-empty vector, matching
// stats.ArgminInt's tie-breaking.
func argminVec(vals []float64) int {
	best, bestVal := 0, vals[0]
	for i, v := range vals[1:] {
		if v < bestVal {
			best, bestVal = i+1, v
		}
	}
	return best
}
