package core

import "fmt"

// ParetoPoint is one packing degree's predicted position in the
// (service time, expense) plane.
type ParetoPoint struct {
	Degree     int
	ServiceSec float64
	ExpenseUSD float64
}

// ParetoFrontier returns the non-dominated packing degrees at concurrency
// c, in increasing degree order: every returned point is strictly better
// than every other candidate on at least one objective. The two
// single-objective optima always appear, and every Eq. 7 weighting's
// optimum lies on the frontier — it is the whole menu of defensible
// choices, useful for surfacing the trade-off to users instead of a single
// number.
func (m Models) ParetoFrontier(c int) ([]ParetoPoint, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("core: concurrency %d < 1", c)
	}
	points := make([]ParetoPoint, 0, m.MaxDegree)
	for p := 1; p <= m.MaxDegree; p++ {
		points = append(points, ParetoPoint{
			Degree:     p,
			ServiceSec: m.ServiceTime(c, p),
			ExpenseUSD: m.Expense(c, p),
		})
	}
	var frontier []ParetoPoint
	for i, cand := range points {
		dominated := false
		for j, other := range points {
			if i == j {
				continue
			}
			if other.ServiceSec <= cand.ServiceSec && other.ExpenseUSD <= cand.ExpenseUSD &&
				(other.ServiceSec < cand.ServiceSec || other.ExpenseUSD < cand.ExpenseUSD) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, cand)
		}
	}
	return frontier, nil
}
