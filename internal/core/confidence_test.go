package core

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

func TestConfidenceForRealSamples(t *testing.T) {
	cfg := platform.AWSLambda()
	w := workload.Video{}
	meas := &SimMeasurer{Config: cfg, Demand: w.Demand(), Seed: 13}
	models, etS, scS, _, err := BuildModels(meas, ProfileOptionsFor(cfg, w.Demand()))
	if err != nil {
		t.Fatal(err)
	}
	conf, err := ConfidenceFor(etS, models.ET.MfuncGB, scS, ConfidenceOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every interval must contain its own point estimate.
	if !conf.Alpha.Contains(models.ET.Alpha) {
		t.Fatalf("α %g outside its CI %v", models.ET.Alpha, conf.Alpha)
	}
	if !conf.Intercept.Contains(models.ET.Intercept) {
		t.Fatalf("intercept %g outside %v", models.ET.Intercept, conf.Intercept)
	}
	if !conf.B1.Contains(models.Scaling.B1) {
		t.Fatalf("β1 %g outside %v", models.Scaling.B1, conf.B1)
	}
	if !conf.B2.Contains(models.Scaling.B2) {
		t.Fatalf("β2 %g outside %v", models.Scaling.B2, conf.B2)
	}
	if !conf.B3.Contains(models.Scaling.B3) {
		t.Fatalf("β3 %g outside %v", models.Scaling.B3, conf.B3)
	}
	// α is well pinned by 20 samples × 3 trials of 1.5% jitter: the
	// interval should be a small fraction of the estimate.
	if width := conf.Alpha.Hi - conf.Alpha.Lo; width > 0.2*models.ET.Alpha {
		t.Fatalf("α interval suspiciously wide: %v vs %g", conf.Alpha, models.ET.Alpha)
	}
}

func TestConfidenceForValidation(t *testing.T) {
	good := []ETSample{{1, 10}, {3, 12}, {5, 15}}
	sc := []ScalingSample{{100, 5}, {500, 30}, {1000, 80}, {2000, 220}}
	if _, err := ConfidenceFor(good, 0, sc, ConfidenceOptions{}); err == nil {
		t.Fatal("zero Mfunc accepted")
	}
	if _, err := ConfidenceFor(good[:1], 0.5, sc, ConfidenceOptions{}); err == nil {
		t.Fatal("single ET sample accepted")
	}
	if _, err := ConfidenceFor(good, 0.5, sc[:2], ConfidenceOptions{}); err == nil {
		t.Fatal("underdetermined scaling samples accepted")
	}
}
