package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// The joint planner carries two equivalence contracts, both property-tested
// here with exact comparisons (floats with ==, errors by string):
//
//  1. A grid with a single memory size reproduces the 1-D planner's
//     answers byte-for-byte on every entry point — recommendations, plans,
//     weights, and error text.
//  2. The pruned 2-D argmin and QoS search match the exhaustive oracle
//     (argminJointExact, a plain left-to-right grid scan) on every input,
//     including degenerate model stacks where the pruning bounds are void.

// randSizeModels is randModels with occasional adversarial extremes: a zero
// expense rate with an overflowing ET curve makes expense vectors NaN
// (Inf·0), exercising the pruned argmin's degenerate-input fallback and the
// NaN row-minimum handling in bestExpense.
func randSizeModels(r *rand.Rand) Models {
	m := randModels(r)
	switch r.Intn(10) {
	case 0: // zero rate, zero storage: all-zero expense row
		m.RatePerInstanceSec = 0
		m.Storage = StorageModel{}
	case 1: // overflowing ET with a zero rate: NaN expense cells
		m.RatePerInstanceSec = 0
		m.Storage = StorageModel{}
		m.ET.Alpha = 400
		if r.Intn(2) == 0 {
			m.ET.Alpha = -400 // overflow at degree 1: NaN row minimum
			m.ET.Intercept = 2000
		}
	}
	return m
}

func randGrid(r *rand.Rand) GridModels {
	k := 1 + r.Intn(4)
	g := GridModels{Sizes: make([]SizeModels, k)}
	mem := 512 + 512*float64(r.Intn(4))
	for i := 0; i < k; i++ {
		g.Sizes[i] = SizeModels{MemMB: mem, Models: randSizeModels(r)}
		mem += 512 + 512*float64(r.Intn(4))
	}
	return g
}

func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// Bit-pattern float equality: the identity contract is byte-for-byte, and
// degenerate model stacks legitimately produce NaN plan fields, where ==
// would report a spurious mismatch.
func f64eq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func planEq(a, b Plan) bool {
	return a.Concurrency == b.Concurrency && a.Degree == b.Degree && a.Weights == b.Weights &&
		f64eq(a.PredictedServiceSec, b.PredictedServiceSec) &&
		f64eq(a.PredictedExpenseUSD, b.PredictedExpenseUSD) &&
		f64eq(a.BaselineServiceSec, b.BaselineServiceSec) &&
		f64eq(a.BaselineExpenseUSD, b.BaselineExpenseUSD)
}

func jointPlanEq(a, b JointPlan) bool { return planEq(a.Plan, b.Plan) && f64eq(a.MemMB, b.MemMB) }

// TestGridSingleSizeBitIdentity holds contract 1: every joint entry point
// on a one-size grid must agree with the corresponding 1-D entry point —
// same degrees, same plan floats, same weights, same error text — on both
// the GridModels path and the cached Planner path.
func TestGridSingleSizeBitIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	quantiles := []float64{100, 95, 50, 99.5, 10}
	for trial := 0; trial < 300; trial++ {
		m := randSizeModels(r)
		memMB := 1024 + 512*float64(r.Intn(16))
		g := GridModels{Sizes: []SizeModels{{MemMB: memMB, Models: m}}}
		c := 1 + r.Intn(20000)
		w := randWeights(r)
		q := quantiles[trial%len(quantiles)]
		jpl, err := NewJointPlanner(g)
		if err != nil {
			t.Fatalf("trial %d: NewJointPlanner: %v", trial, err)
		}

		// Single-objective optima.
		if got, want := g.OptimalConfigService(c), m.OptimalDegreeService(c); got.Degree != want || got.MemMB != memMB {
			t.Fatalf("trial %d: OptimalConfigService=%+v, 1-D degree=%d", trial, got, want)
		}
		if got, want := g.OptimalConfigExpense(c), m.OptimalDegreeExpense(c); got.Degree != want || got.MemMB != memMB {
			t.Fatalf("trial %d: OptimalConfigExpense=%+v, 1-D degree=%d", trial, got, want)
		}

		// The weighted argmin at a quantile.
		gotCfg, gotErr := g.OptimalConfig(c, q, w)
		wantDeg, wantErr := m.OptimalDegreeForQuantile(c, q, w)
		if errStr(gotErr) != errStr(wantErr) || gotCfg.Degree != wantDeg {
			t.Fatalf("trial %d: OptimalConfig=(%+v,%v), 1-D=(%d,%v)", trial, gotCfg, gotErr, wantDeg, wantErr)
		}

		// The full plan.
		jointPlan, planErr := g.PlanJointFor(c, w)
		wantPlan, wantErr := m.PlanFor(c, w)
		if errStr(planErr) != errStr(wantErr) || !planEq(jointPlan.Plan, wantPlan) || (planErr == nil && jointPlan.MemMB != memMB) {
			t.Fatalf("trial %d: PlanJointFor=(%+v,%v), 1-D=(%+v,%v)", trial, jointPlan, planErr, wantPlan, wantErr)
		}

		// Constrained, across feasible and infeasible instance caps.
		maxInst := r.Intn(2*c) - c/2
		gotCfg, gotErr = g.OptimalConfigConstrained(c, w, maxInst)
		wantDeg, wantErr = m.OptimalDegreeConstrained(c, w, maxInst)
		if errStr(gotErr) != errStr(wantErr) || (gotErr == nil && gotCfg.Degree != wantDeg) {
			t.Fatalf("trial %d: Constrained=(%+v,%v), 1-D=(%d,%v) (maxInst=%d)",
				trial, gotCfg, gotErr, wantDeg, wantErr, maxInst)
		}

		// QoS: aim bounds across the feasibility spectrum, as the 1-D
		// equivalence suite does.
		opts := QoSOptions{Step: []float64{0, 0.05, 0.25, 0.7, 1}[trial%5]}
		tailQ := 95.0
		lo := m.ServiceTimeQuantile(c, m.OptimalDegreeService(c), tailQ)
		hi := m.ServiceTimeQuantile(c, m.OptimalDegreeExpense(c), tailQ)
		qos := lo*0.5 + r.Float64()*(hi*1.5-lo*0.5)
		if !(qos > 0) {
			qos = lo + 1
		}
		if !(qos > 0) {
			qos = 1
		}
		qosJP, qosW, qosErr := g.QoSPlanJoint(c, qos, opts)
		wantP, wantW, wantErr := m.QoSPlan(c, qos, opts)
		if errStr(qosErr) != errStr(wantErr) || qosW != wantW || !planEq(qosJP.Plan, wantP) {
			t.Fatalf("trial %d: QoSPlanJoint=(%+v,%+v,%v), 1-D=(%+v,%+v,%v) (qos=%g)",
				trial, qosJP, qosW, qosErr, wantP, wantW, wantErr, qos)
		}

		// The cached Planner path must agree verbatim, first call and hit.
		for pass := 0; pass < 2; pass++ {
			pPlan, pErr := jpl.PlanJointFor(c, w)
			if errStr(pErr) != errStr(planErr) || !jointPlanEq(pPlan, jointPlan) {
				t.Fatalf("trial %d pass %d: Planner.PlanJointFor=(%+v,%v), GridModels=(%+v,%v)",
					trial, pass, pPlan, pErr, jointPlan, planErr)
			}
			pJP, pW, pqErr := jpl.QoSPlanJoint(c, qos, opts)
			if errStr(pqErr) != errStr(qosErr) || pW != qosW || !jointPlanEq(pJP, qosJP) {
				t.Fatalf("trial %d pass %d: Planner.QoSPlanJoint=(%+v,%+v,%v), GridModels=(%+v,%+v,%v)",
					trial, pass, pJP, pW, pqErr, qosJP, qosW, qosErr)
			}
		}
	}
}

// TestGridArgminPrunedMatchesExact holds contract 2 for the argmin: the
// pruned scan must return the exhaustive oracle's cell on randomized
// multi-size grids, across quantiles, restricted degree ranges, and weights
// — including the adversarial stacks whose bounds are NaN or zero.
func TestGridArgminPrunedMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	quantiles := []float64{100, 95, 50, 99.5, 10}
	for trial := 0; trial < 500; trial++ {
		g := randGrid(r)
		c := 1 + r.Intn(20000)
		gt := newGridTable(g, c)
		q := quantiles[trial%len(quantiles)]
		w := randWeights(r)
		minDeg := 1
		if r.Intn(3) == 0 {
			minDeg = 1 + r.Intn(gt.maxDegreeAny())
		}
		gsi, gdeg := gt.argminJoint(q, minDeg, w)
		wsi, wdeg := gt.argminJointExact(q, minDeg, w)
		if gsi != wsi || gdeg != wdeg {
			t.Fatalf("trial %d: pruned=(%d,%d), exact=(%d,%d) (q=%g minDeg=%d w=%+v grid=%+v c=%d)",
				trial, gsi, gdeg, wsi, wdeg, q, minDeg, w, g, c)
		}
	}
}

// naiveQoSJoint is the plain left-to-right weight-grid scan over exhaustive
// joint argmins: the reference QoSPlanJoint's pruned/binary-searched path
// must agree with on every input.
func naiveQoSJoint(gt *GridTable, qosSec, tailQ, step float64) (Weights, error) {
	n := qosGridSize(step)
	for j := 0; j < n; j++ {
		w := qosWeightAt(j, n, step)
		si, deg := gt.argminJointExact(100, 1, w)
		if gt.sizes[si].t.quantile(tailQ).vals[deg-1] <= qosSec {
			return w, nil
		}
	}
	return Weights{}, fmt.Errorf("%w: bound %.3gs at concurrency %d", ErrQoSInfeasible, qosSec, gt.c)
}

func TestGridQoSMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	steps := []float64{0, 0.05, 0.1, 0.25, 0.3, 0.7, 1}
	feasible := 0
	for trial := 0; trial < 300; trial++ {
		g := randGrid(r)
		c := 1 + r.Intn(20000)
		opts := QoSOptions{Step: steps[trial%len(steps)]}
		if r.Float64() < 0.3 {
			opts.TailQuantile = 50 + 50*r.Float64()
		}
		tailQ := opts.TailQuantile
		if tailQ == 0 {
			tailQ = 95
		}
		gt := newGridTable(g, c)
		bsi, bdeg := gt.argminJointExact(100, 1, ServiceOnly())
		esi, edeg := gt.argminJointExact(100, 1, ExpenseOnly())
		lo := gt.sizes[bsi].t.quantile(tailQ).vals[bdeg-1]
		hi := gt.sizes[esi].t.quantile(tailQ).vals[edeg-1]
		qos := lo*0.5 + r.Float64()*(hi*1.5-lo*0.5)
		if !(qos > 0) {
			qos = lo + 1
		}
		if !(qos > 0) {
			qos = 1
		}

		step := opts.Step
		if step == 0 {
			step = 0.05
		}
		want, wantErr := naiveQoSJoint(gt, qos, tailQ, step)
		got, gotErr := g.QoSWeightsJoint(c, qos, opts)
		if errStr(gotErr) != errStr(wantErr) {
			t.Fatalf("trial %d: error mismatch: got %v, naive %v (qos=%g c=%d step=%g grid=%+v)",
				trial, gotErr, wantErr, qos, c, opts.Step, g)
		}
		if gotErr != nil {
			if !errors.Is(gotErr, ErrQoSInfeasible) {
				t.Fatalf("trial %d: wrong error kind: %v", trial, gotErr)
			}
			continue
		}
		feasible++
		if got != want {
			t.Fatalf("trial %d: QoSWeightsJoint=%+v, naive=%+v (qos=%g c=%d step=%g)",
				trial, got, want, qos, c, opts.Step)
		}

		// The plan must be the joint plan at exactly those weights.
		plan, pw, err := g.QoSPlanJoint(c, qos, opts)
		if err != nil || pw != want {
			t.Fatalf("trial %d: QoSPlanJoint weights=%+v (%v), want %+v", trial, pw, err, want)
		}
		si, deg := gt.argminJointExact(100, 1, want)
		if wantPlan := gt.plan(si, deg, want); !jointPlanEq(plan, wantPlan) {
			t.Fatalf("trial %d: QoSPlanJoint plan=%+v, oracle=%+v", trial, plan, wantPlan)
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible trials — generator too tight to test anything")
	}
}

// TestGridValidateTypedErrors pins the typed validation contract:
// non-monotone size grids surface ErrNonMonotoneSizes from every entrance
// (GridModels.Validate, BuildGridModels, GridProbesFor), and a per-size fit
// failure names the offending memory size while staying unwrappable to
// stats.ErrNonFinite (tested in grid_profile_test.go alongside the probe
// pipeline).
func TestGridValidateTypedErrors(t *testing.T) {
	m := Models{
		ET:                 ETModel{MfuncGB: 0.5, Alpha: 0.3},
		Scaling:            ScalingModel{B2: 0.004},
		RatePerInstanceSec: 1e-4,
		MaxDegree:          8,
	}
	bad := GridModels{Sizes: []SizeModels{
		{MemMB: 4096, Models: m},
		{MemMB: 2048, Models: m},
	}}
	if err := bad.Validate(); !errors.Is(err, ErrNonMonotoneSizes) {
		t.Fatalf("shuffled grid: got %v, want ErrNonMonotoneSizes", err)
	}
	dup := GridModels{Sizes: []SizeModels{
		{MemMB: 2048, Models: m},
		{MemMB: 2048, Models: m},
	}}
	if err := dup.Validate(); !errors.Is(err, ErrNonMonotoneSizes) {
		t.Fatalf("duplicate grid: got %v, want ErrNonMonotoneSizes", err)
	}
	if err := (GridModels{}).Validate(); err == nil {
		t.Fatal("empty grid: want error")
	}
	badModels := GridModels{Sizes: []SizeModels{{MemMB: 2048, Models: Models{}}}}
	err := badModels.Validate()
	if err == nil || !contains(err.Error(), "2048") {
		t.Fatalf("invalid size models: error %q must name the size", errStr(err))
	}
	ok := GridModels{Sizes: []SizeModels{{MemMB: 2048, Models: m}, {MemMB: 4096, Models: m}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	// The planner surfaces ErrNoGrid on joint calls without a grid.
	if _, err := NewPlanner(m).PlanJointFor(100, Balanced()); !errors.Is(err, ErrNoGrid) {
		t.Fatalf("grid-less planner: got %v, want ErrNoGrid", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// --- allocation and concurrency gates ----------------------------------------

func stressGrid() GridModels {
	scaling := ScalingModel{B1: 2e-6, B2: 0.004, B3: 0.1}
	mk := func(mem float64, alpha float64, maxDeg int) SizeModels {
		return SizeModels{MemMB: mem, Models: Models{
			ET:                 ETModel{MfuncGB: 0.5, Alpha: alpha, Intercept: 0.2},
			Scaling:            scaling,
			RatePerInstanceSec: mem / 1024 * 0.0000166667,
			MaxDegree:          maxDeg,
		}}
	}
	return GridModels{Sizes: []SizeModels{
		mk(2048, 0.61, 4),
		mk(4096, 0.48, 8),
		mk(6144, 0.39, 12),
		mk(8192, 0.34, 16),
		mk(10240, 0.30, 20),
	}}
}

// TestPlanJointAllocs is the 0-alloc gate on the cached joint hit path: once
// the grid table is resident, a joint plan is pure argmin scans over cached
// vectors — no closures, no slices, no boxing.
func TestPlanJointAllocs(t *testing.T) {
	g := stressGrid()
	pl, err := NewJointPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	w := Balanced()
	if _, err := pl.PlanJointFor(5000, w); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := pl.PlanJointFor(5000, w); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("Planner.PlanJointFor allocates %.0f objects per call in steady state, want 0", got)
	}
	if _, err := pl.OptimalConfig(5000, 100, w); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := pl.OptimalConfig(5000, 100, w); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("Planner.OptimalConfig allocates %.0f objects per call in steady state, want 0", got)
	}
}

// TestJointPlannerConcurrent hammers the joint cached path from many
// goroutines (the race-stress CI job runs every *Concurrent* test under
// -race): results must be identical across goroutines and each grid table
// must build exactly once despite the stampede.
func TestJointPlannerConcurrent(t *testing.T) {
	g := stressGrid()
	pl, err := NewJointPlanner(g)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const levels = 24
	w := Balanced()
	baseline := make([]JointPlan, levels)
	for i := range baseline {
		p, err := pl.PlanJointFor(100*(i+1), w)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = p
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				i := (gi + rep) % levels
				p, err := pl.PlanJointFor(100*(i+1), w)
				if err != nil {
					errs <- err
					return
				}
				if p != baseline[i] {
					errs <- fmt.Errorf("goroutine %d: plan %+v != baseline %+v", gi, p, baseline[i])
					return
				}
				jp, _, err := pl.QoSPlanJoint(100*(i+1), p.PredictedServiceSec*1.5, QoSOptions{})
				if err != nil && !errors.Is(err, ErrQoSInfeasible) {
					errs <- err
					return
				}
				_ = jp
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if builds := pl.grid.Builds(); builds != levels {
		t.Fatalf("grid cache built %d tables for %d distinct levels", builds, levels)
	}
}
