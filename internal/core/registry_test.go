package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tempRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistryRoundTrip(t *testing.T) {
	r := tempRegistry(t)
	m := synthModels()
	if err := r.Save("AWS Lambda", "Video", m, 1.23); err != nil {
		t.Fatal(err)
	}
	got, err := r.Load("AWS Lambda", "Video")
	if err != nil {
		t.Fatal(err)
	}
	if got.ET != m.ET || got.Scaling != m.Scaling ||
		got.RatePerInstanceSec != m.RatePerInstanceSec || got.MaxDegree != m.MaxDegree {
		t.Fatalf("round trip mismatch:\nsaved  %+v\nloaded %+v", m, got)
	}
}

func TestRegistryMiss(t *testing.T) {
	r := tempRegistry(t)
	_, err := r.Load("AWS Lambda", "Video")
	if !errors.Is(err, ErrNotCached) {
		t.Fatalf("expected ErrNotCached, got %v", err)
	}
}

func TestRegistryList(t *testing.T) {
	r := tempRegistry(t)
	m := synthModels()
	for _, key := range [][2]string{{"Azure", "Sort"}, {"AWS Lambda", "Video"}, {"AWS Lambda", "Sort"}} {
		if err := r.Save(key[0], key[1], m, 0); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"AWS Lambda", "Sort"}, {"AWS Lambda", "Video"}, {"Azure", "Sort"}}
	if len(keys) != len(want) {
		t.Fatalf("got %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("order: got %v, want %v", keys, want)
		}
	}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	r := tempRegistry(t)
	if err := r.Save("", "Video", synthModels(), 0); err == nil {
		t.Fatal("empty platform accepted")
	}
	if err := r.Save("AWS", "Video", Models{}, 0); err == nil {
		t.Fatal("invalid models accepted")
	}
}

func TestRegistryCorruptEntry(t *testing.T) {
	r := tempRegistry(t)
	if err := r.Save("AWS", "Video", synthModels(), 0); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(r.path("AWS", "Video"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("AWS", "Video"); err == nil {
		t.Fatal("corrupt entry accepted")
	}
}

func TestRegistrySlugCollisionSafety(t *testing.T) {
	r := tempRegistry(t)
	// Distinct names that slug to distinct files.
	if err := r.Save("AWS Lambda", "Stateless Cost", synthModels(), 0); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(t.TempDir(), "*"))
	if err != nil {
		t.Fatal(err)
	}
	_ = entries
	if _, err := r.Load("AWS Lambda", "Stateless Cost"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOrBuild(t *testing.T) {
	r := tempRegistry(t)
	fm := &fakeMeasurer{
		et: ETModel{MfuncGB: 0.25, Alpha: 0.15, Intercept: 4},
		sc: ScalingModel{B1: 2e-5, B2: 0.01},
	}
	opts := ProfileOptions{MaxDegree: 15, MfuncGB: 0.25, RatePerInstanceSec: 1e-4}
	m1, hit, err := r.LoadOrBuild("AWS", "Video", fm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first call should be a miss")
	}
	callsAfterBuild := fm.execCalls
	m2, hit, err := r.LoadOrBuild("AWS", "Video", fm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second call should be a hit")
	}
	if fm.execCalls != callsAfterBuild {
		t.Fatal("cache hit should not probe")
	}
	if m1.ET != m2.ET {
		t.Fatal("cached models differ")
	}
}
