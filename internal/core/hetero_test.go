package core

import (
	"math"
	"testing"
	"testing/quick"
)

func demoApps() []App {
	return []App{
		{Name: "cpu-bound", MemoryMB: 292, Count: 600,
			ET: ETModel{MfuncGB: 292.0 / 1024, Alpha: 0.25, Intercept: math.Log(100) - 0.25*292.0/1024}},
		{Name: "io-bound", MemoryMB: 341, Count: 600,
			ET: ETModel{MfuncGB: 341.0 / 1024, Alpha: 0.12, Intercept: math.Log(40) - 0.12*341.0/1024}},
	}
}

func demoMixedOpts() MixedPlanOptions {
	return MixedPlanOptions{
		InstanceMemoryMB:   10240,
		MaxExecSec:         900,
		Weights:            Balanced(),
		Scaling:            ScalingModel{B1: 2.4e-5, B2: 0.1, B3: -2},
		RatePerInstanceSec: 1.6667e-4,
	}
}

func TestPredictMixedETReducesToHomogeneous(t *testing.T) {
	a := demoApps()[0]
	for _, n := range []int{1, 4, 10} {
		mixed := PredictMixedET([]App{a}, []int{n}, 0)
		homog := a.ET.At(n)
		if math.Abs(mixed-homog) > 1e-9*homog {
			t.Fatalf("n=%d: mixed prediction %g ≠ Eq. 1 %g", n, mixed, homog)
		}
	}
}

func TestPredictMixedETLightNeighboursCheaper(t *testing.T) {
	apps := demoApps()
	// 4 CPU-bound functions alone vs 2 CPU-bound + 2 IO-bound.
	pure := PredictMixedET(apps, []int{4, 0}, 0)
	mixed := PredictMixedET(apps, []int{2, 2}, 0)
	if mixed >= pure {
		t.Fatalf("replacing heavy neighbours with light ones should shrink ET: %g vs %g", mixed, pure)
	}
	if PredictMixedET(apps, []int{0, 0}, 0) != 0 {
		t.Fatal("empty bin should predict 0")
	}
}

func TestDealCountsBalanced(t *testing.T) {
	apps := demoApps()
	for _, b := range []int{1, 7, 600, 1200} {
		counts := dealCounts(apps, b)
		if len(counts) != b {
			t.Fatalf("b=%d: got %d bins", b, len(counts))
		}
		totals := make([]int, len(apps))
		minLoad, maxLoad := math.MaxInt32, 0
		for _, bin := range counts {
			load := 0
			for k, n := range bin {
				if n < 0 {
					t.Fatalf("negative count")
				}
				totals[k] += n
				load += n
			}
			if load < minLoad {
				minLoad = load
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		for k, a := range apps {
			if totals[k] != a.Count {
				t.Fatalf("b=%d: app %d total %d, want %d", b, k, totals[k], a.Count)
			}
		}
		// Balance: loads within 2 of each other (one remainder per app).
		if maxLoad-minLoad > len(apps) {
			t.Fatalf("b=%d: unbalanced bins: min %d max %d", b, minLoad, maxLoad)
		}
		if b <= 1200 && minLoad == 0 {
			t.Fatalf("b=%d: empty bin despite enough functions", b)
		}
	}
}

func TestPlanMixedFeasibleAndConserving(t *testing.T) {
	apps := demoApps()
	plan, err := PlanMixed(apps, demoMixedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Instances() < 1 {
		t.Fatal("no instances planned")
	}
	totals := make([]int, len(apps))
	for _, bin := range plan.BinCounts {
		var mem float64
		for k, n := range bin {
			totals[k] += n
			mem += float64(n) * apps[k].MemoryMB
		}
		if mem > demoMixedOpts().InstanceMemoryMB {
			t.Fatalf("bin exceeds instance memory: %g MB", mem)
		}
		if et := PredictMixedET(apps, bin, 0); et > demoMixedOpts().MaxExecSec {
			t.Fatalf("bin exceeds execution limit: %g s", et)
		}
	}
	for k, a := range apps {
		if totals[k] != a.Count {
			t.Fatalf("app %d: planned %d functions, want %d", k, totals[k], a.Count)
		}
	}
	// Packing must actually happen at this scale.
	if plan.Instances() >= apps[0].Count+apps[1].Count {
		t.Fatal("plan did not pack at all")
	}
	if plan.PredictedServiceSec <= 0 || plan.PredictedExpenseUSD <= 0 {
		t.Fatalf("degenerate predictions: %+v", plan)
	}
}

func TestPlanMixedWeightsShiftInstanceCount(t *testing.T) {
	apps := demoApps()
	opts := demoMixedOpts()
	opts.Weights = ServiceOnly()
	svc, err := PlanMixed(apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Weights = ExpenseOnly()
	exp, err := PlanMixed(apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Expense optimization packs more (fewer instances), as in Fig. 15.
	if exp.Instances() > svc.Instances() {
		t.Fatalf("expense-only should use ≤ instances than service-only: %d vs %d",
			exp.Instances(), svc.Instances())
	}
}

func TestPlanMixedErrors(t *testing.T) {
	if _, err := PlanMixed(nil, demoMixedOpts()); err == nil {
		t.Fatal("empty app set accepted")
	}
	bad := demoApps()
	bad[0].Count = 0
	if _, err := PlanMixed(bad, demoMixedOpts()); err == nil {
		t.Fatal("zero-count app accepted")
	}
	opts := demoMixedOpts()
	opts.InstanceMemoryMB = 0
	if _, err := PlanMixed(demoApps(), opts); err == nil {
		t.Fatal("zero instance memory accepted")
	}
	opts = demoMixedOpts()
	opts.Weights = Weights{2, -1}
	if _, err := PlanMixed(demoApps(), opts); err == nil {
		t.Fatal("bad weights accepted")
	}
	// A function bigger than the instance is infeasible at any B.
	huge := demoApps()
	huge[0].MemoryMB = 20000
	if _, err := PlanMixed(huge, demoMixedOpts()); err == nil {
		t.Fatal("oversized function accepted")
	}
}

// Property: dealCounts conserves every app's function count for arbitrary
// app counts and bin counts.
func TestDealCountsConservationProperty(t *testing.T) {
	f := func(c1, c2 uint8, bRaw uint8) bool {
		apps := []App{
			{Name: "a", MemoryMB: 1, Count: int(c1) + 1, ET: ETModel{MfuncGB: 1, Alpha: 0.1}},
			{Name: "b", MemoryMB: 1, Count: int(c2) + 1, ET: ETModel{MfuncGB: 1, Alpha: 0.1}},
		}
		total := apps[0].Count + apps[1].Count
		b := int(bRaw)%total + 1
		counts := dealCounts(apps, b)
		sums := [2]int{}
		for _, bin := range counts {
			sums[0] += bin[0]
			sums[1] += bin[1]
		}
		return sums[0] == apps[0].Count && sums[1] == apps[1].Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
