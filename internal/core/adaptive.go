package core

import (
	"fmt"
	"sort"
)

// Adaptive refinement: ProPack's profiling phase samples a handful of
// packing degrees once; every production run afterwards is itself a free
// measurement of ET at the chosen degree. A Tracker folds those
// observations back into the Eq. 1 fit, so the model tracks platform drift
// (new hardware generations, runtime updates) without re-profiling — the
// operational counterpart of the paper's overhead-amortization argument.
type Tracker struct {
	mfuncGB      float64
	fitOpts      FitETOptions
	probeSamples []ETSample // the original profile, kept verbatim
	observations []ETSample // production observations, most recent last
	maxObs       int
	models       Models
}

// NewTracker wraps freshly built models and their probe samples.
// maxObservations bounds the retained production observations (oldest
// evicted first); 0 means the default (64).
func NewTracker(models Models, probeSamples []ETSample, maxObservations int) (*Tracker, error) {
	if err := models.Validate(); err != nil {
		return nil, err
	}
	if len(probeSamples) < 2 {
		return nil, fmt.Errorf("core: tracker needs ≥2 probe samples, have %d", len(probeSamples))
	}
	if maxObservations == 0 {
		maxObservations = 64
	}
	if maxObservations < 1 {
		return nil, fmt.Errorf("core: non-positive observation cap %d", maxObservations)
	}
	return &Tracker{
		mfuncGB:      models.ET.MfuncGB,
		probeSamples: append([]ETSample(nil), probeSamples...),
		maxObs:       maxObservations,
		models:       models,
	}, nil
}

// Models returns the current (possibly refitted) models.
func (t *Tracker) Models() Models { return t.models }

// Observations reports how many production observations are retained.
func (t *Tracker) Observations() int { return len(t.observations) }

// Observe folds one production measurement — the mean instance execution
// time of a run at the given packing degree — into the fit. Recent
// observations weigh like probe samples; the Eq. 1 refit uses both.
func (t *Tracker) Observe(degree int, etSec float64) error {
	if degree < 1 {
		return fmt.Errorf("core: observation at degree %d", degree)
	}
	if etSec <= 0 {
		return fmt.Errorf("core: non-positive observed ET %g", etSec)
	}
	t.observations = append(t.observations, ETSample{Degree: degree, ETSec: etSec})
	if len(t.observations) > t.maxObs {
		t.observations = t.observations[len(t.observations)-t.maxObs:]
	}
	// Refit on the union. When drift is real, the probe samples are stale;
	// weight observations by recency through duplication is overkill — the
	// simple union already pulls α toward current behaviour, and the stale
	// probes keep the fit anchored across the degree range.
	all := make([]ETSample, 0, len(t.probeSamples)+len(t.observations))
	all = append(all, t.probeSamples...)
	all = append(all, t.observations...)
	et, err := FitET(all, t.mfuncGB, t.fitOpts)
	if err != nil {
		return err
	}
	t.models.ET = et
	return nil
}

// Reprofile replaces the probe baseline outright (e.g. after the tracker's
// residuals show the platform has drifted too far for incremental fixes).
func (t *Tracker) Reprofile(probeSamples []ETSample) error {
	if len(probeSamples) < 2 {
		return fmt.Errorf("core: reprofile needs ≥2 samples")
	}
	et, err := FitET(probeSamples, t.mfuncGB, t.fitOpts)
	if err != nil {
		return err
	}
	t.probeSamples = append(t.probeSamples[:0], probeSamples...)
	t.observations = t.observations[:0]
	t.models.ET = et
	return nil
}

// Residual reports the relative error of the current model at a fresh
// observation: (observed − predicted)/predicted. Large persistent residuals
// signal that Reprofile is due.
func (t *Tracker) Residual(degree int, etSec float64) float64 {
	pred := t.models.ET.At(degree)
	return (etSec - pred) / pred
}

// DegreeRange reports the contiguous range of packing degrees around the
// optimum whose Eq. 7 weighted regret stays within tol (e.g. 0.02 = 2%) of
// the best — the "plan stability" band. A wide band means the choice is
// forgiving; a narrow one means the degree matters. The optimum is always
// inside the returned range.
func (m Models) DegreeRange(c int, w Weights, tol float64) (lo, hi int, err error) {
	if tol < 0 {
		return 0, 0, fmt.Errorf("core: negative tolerance %g", tol)
	}
	best, err := m.OptimalDegree(c, w)
	if err != nil {
		return 0, 0, err
	}
	bestS := m.ServiceTime(c, m.OptimalDegreeService(c))
	bestE := m.Expense(c, m.OptimalDegreeExpense(c))
	regret := func(p int) float64 {
		return w.Service*(m.ServiceTime(c, p)-bestS)/bestS +
			w.Expense*(m.Expense(c, p)-bestE)/bestE
	}
	bound := regret(best) + tol
	lo, hi = best, best
	for lo > 1 && regret(lo-1) <= bound {
		lo--
	}
	for hi < m.MaxDegree && regret(hi+1) <= bound {
		hi++
	}
	return lo, hi, nil
}

// SortedResidualMagnitudes is a test/diagnostic helper: the absolute
// relative errors of the model against a sample set, ascending.
func (m Models) SortedResidualMagnitudes(samples []ETSample) []float64 {
	out := make([]float64, 0, len(samples))
	for _, s := range samples {
		pred := m.ET.At(s.Degree)
		d := (s.ETSec - pred) / pred
		if d < 0 {
			d = -d
		}
		out = append(out, d)
	}
	sort.Float64s(out)
	return out
}
