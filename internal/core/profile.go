package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/parallel"
)

// ErrDegreeInfeasible is returned by a Measurer when a probe at some
// packing degree cannot run at all (e.g. it would exceed the platform's
// execution-time limit). BuildModels treats it as a discovered latency cap:
// P_max^deg is lowered to the last feasible degree (Sec. 2.1's "configured
// to be constrained at a degree lower than M_platform/M_func").
var ErrDegreeInfeasible = errors.New("core: packing degree infeasible on platform")

// Measurer is the only window ProPack has onto a platform: it can run one
// packed instance and time it, and it can spawn an application-independent
// burst of empty instances and time the scaling. Adapters exist for the
// datacenter simulator (SimMeasurer) and for live local execution
// (workload.RunPacked in the examples).
type Measurer interface {
	// MeasureExec runs a single function instance packed at the given
	// degree (at trivial concurrency) and returns its execution time in
	// seconds.
	MeasureExec(degree int) (float64, error)
	// MeasureScaling spawns `instances` concurrent no-op instances and
	// returns the scaling time in seconds. No application code runs.
	MeasureScaling(instances int) (float64, error)
}

// CostMeasurer is implemented by measurers that can also report the
// non-compute bill (request + networking fees) of the last MeasureExec
// probe. BuildModels uses it to fit the StorageModel; measurers without it
// get a zero storage term.
type CostMeasurer interface {
	// LastProbeStorageUSD is the non-compute cost of the most recent
	// MeasureExec run.
	LastProbeStorageUSD() float64
}

// ConcurrentMeasurer is the optional Measurer extension that unlocks the
// parallel probe fan-out. A measurer may implement it when its probes are
// pure functions of their arguments — true for simulator-backed measurers,
// whose "platform" is a deterministic model, and false for live measurers,
// whose concurrent probes would contend for the very resources being timed
// (livemeasure stays sequential by default for exactly that reason).
//
// The contract BuildModels relies on:
//
//   - MeasureExecCall(degree, call) must return the same values the
//     sequential MeasureExec train would have produced on its call-th
//     invocation, for any execution order and from any goroutine. In
//     particular a degree's feasibility must not depend on the call index.
//   - MeasureScaling must be safe to call concurrently and be a pure
//     function of the instance count.
//   - AdvanceCalls(n) is invoked once per BuildModels run, after the
//     interference train, with the number of probe calls the sequential
//     train performed — so a measurer keeping a call counter for
//     interleaved direct MeasureExec use (the ablation drivers do this)
//     stays bit-compatible with the historical sequential pipeline.
type ConcurrentMeasurer interface {
	Measurer
	// MeasureExecCall runs the call-th interference probe (1-based across
	// the whole probe train) at the given packing degree and returns the
	// execution time plus the probe's non-compute bill.
	MeasureExecCall(degree, call int) (etSec, storageUSD float64, err error)
	// AdvanceCalls advances any internal probe-call counter by n, as if n
	// sequential MeasureExec calls had run.
	AdvanceCalls(n int)
}

// Overhead accounts for the resources ProPack itself consumed while
// building its models. The paper includes this overhead in all reported
// results (Sec. 2.1, Sec. 4); experiment drivers here do the same.
type Overhead struct {
	// ExecProbeSec is the summed execution time of interference probes.
	ExecProbeSec float64
	// ExecProbeUSD is the bill for those probes.
	ExecProbeUSD float64
	// ScalingProbeSec is the summed scaling time of the platform probes —
	// paid once per platform and amortized over every application run on it.
	ScalingProbeSec float64
	// ScalingProbeUSD is the bill for the scaling probes (no-op functions:
	// the per-request fees plus a minimal execution sliver).
	ScalingProbeUSD float64
}

// Add accumulates o2 into o.
func (o *Overhead) Add(o2 Overhead) {
	o.ExecProbeSec += o2.ExecProbeSec
	o.ExecProbeUSD += o2.ExecProbeUSD
	o.ScalingProbeSec += o2.ScalingProbeSec
	o.ScalingProbeUSD += o2.ScalingProbeUSD
}

// TotalUSD is the full modeling bill.
func (o Overhead) TotalUSD() float64 { return o.ExecProbeUSD + o.ScalingProbeUSD }

// SampleDegrees returns the packing degrees the interference profiler
// evaluates: every other degree starting at 1 (the curve is monotone, so
// alternate points suffice — Sec. 2.1). For the paper's maximum degrees of
// 40, 15, and 30 this yields exactly the 20, 8, and 15 sample points the
// paper reports for Video, Sort, and Stateless Cost.
func SampleDegrees(maxDegree int) []int {
	if maxDegree < 1 {
		return nil
	}
	var ds []int
	for d := 1; d <= maxDegree; d += 2 {
		ds = append(ds, d)
	}
	return ds
}

// ProfileOptions configures model building.
type ProfileOptions struct {
	// MaxDegree is P_max^deg; required, ≥ 1.
	MaxDegree int
	// MfuncGB is the single-function memory footprint in GB; required.
	MfuncGB float64
	// RatePerInstanceSec is R (dollars per instance-second); required for
	// expense modeling.
	RatePerInstanceSec float64
	// ScalingProbes are the concurrency levels of the platform probe. The
	// paper needs "ten or fewer samples"; nil means DefaultScalingProbes.
	ScalingProbes []int
	// FitET selects the Eq. 1 variant.
	FitET FitETOptions
	// FullSweep disables alternate-point skipping and profiles every
	// degree (used by the sampling ablation).
	FullSweep bool
	// Trials is how many times each packing degree is measured and
	// averaged (the paper pre-runs a function "a few times"). Zero means 3.
	Trials int
	// Workers bounds the probe fan-out when the measurer implements
	// ConcurrentMeasurer: interference probes (one task per sampled degree)
	// and scaling probes (one task per concurrency level) run on a bounded
	// parallel.Map pool. 0 means GOMAXPROCS; 1 reproduces fully sequential
	// execution. The fitted models, samples, and overhead are byte-identical
	// for every worker count — and to the historical sequential pipeline —
	// because probe seeds derive from the call index, results fold in degree
	// order, and overhead accumulates in the exact sequential expression
	// order. Measurers without ConcurrentMeasurer always run sequentially.
	Workers int
}

// DefaultScalingProbes are the concurrency levels used to fit Eq. 2: nine
// points spanning the operating range.
func DefaultScalingProbes() []int {
	return []int{100, 250, 500, 1000, 1500, 2000, 3000, 4000, 5000}
}

// BuildModels runs ProPack's full modeling pipeline against a platform:
// interference probes at alternate packing degrees, scaling probes at the
// configured concurrency levels, then the Eq. 1 and Eq. 2 fits. It returns
// the models, the raw samples (for validation and plots), and the overhead
// incurred.
func BuildModels(meas Measurer, opts ProfileOptions) (Models, []ETSample, []ScalingSample, Overhead, error) {
	var ov Overhead
	if opts.MaxDegree < 1 {
		return Models{}, nil, nil, ov, fmt.Errorf("core: profile needs MaxDegree ≥ 1, have %d", opts.MaxDegree)
	}
	if opts.MfuncGB <= 0 {
		return Models{}, nil, nil, ov, fmt.Errorf("core: profile needs MfuncGB > 0, have %g", opts.MfuncGB)
	}
	if opts.RatePerInstanceSec < 0 {
		return Models{}, nil, nil, ov, fmt.Errorf("core: negative expense rate")
	}

	degrees := SampleDegrees(opts.MaxDegree)
	if opts.FullSweep {
		degrees = degrees[:0]
		for d := 1; d <= opts.MaxDegree; d++ {
			degrees = append(degrees, d)
		}
	}
	trials := opts.Trials
	if trials == 0 {
		trials = 3
	}
	if trials < 1 {
		return Models{}, nil, nil, ov, fmt.Errorf("core: probe trials must be ≥1, have %d", trials)
	}
	_, hasCost := meas.(CostMeasurer)
	var etSamples []ETSample
	var costSamples []CostSample
	var maxFeasible int
	var err error
	cm, concurrent := meas.(ConcurrentMeasurer)
	if concurrent {
		etSamples, costSamples, maxFeasible, err = probeExecConcurrent(cm, hasCost, degrees, trials, opts, &ov)
	} else {
		etSamples, costSamples, maxFeasible, err = probeExecSequential(meas, hasCost, degrees, trials, opts, &ov)
	}
	if err != nil {
		return Models{}, nil, nil, ov, err
	}
	if maxFeasible < 1 {
		return Models{}, nil, nil, ov, fmt.Errorf("core: application infeasible even unpacked: %w", ErrDegreeInfeasible)
	}
	etModel, err := FitET(etSamples, opts.MfuncGB, opts.FitET)
	if err != nil {
		return Models{}, nil, nil, ov, err
	}

	probes := opts.ScalingProbes
	if probes == nil {
		probes = DefaultScalingProbes()
	}
	scSamples, err := probeScaling(meas, concurrent, probes, opts, &ov)
	if err != nil {
		return Models{}, nil, nil, ov, err
	}
	scModel, err := FitScaling(scSamples)
	if err != nil {
		return Models{}, nil, nil, ov, err
	}

	storageModel, err := FitStorage(costSamples)
	if err != nil {
		return Models{}, nil, nil, ov, err
	}
	return Models{
		ET:                 etModel,
		Scaling:            scModel,
		Storage:            storageModel,
		RatePerInstanceSec: opts.RatePerInstanceSec,
		MaxDegree:          maxFeasible,
	}, etSamples, scSamples, ov, nil
}

// probeExecSequential is the interference probe train for plain Measurers:
// alternate degrees in order, trials per degree, stopping at the first
// infeasible degree (probing is monotone). This is the historical pipeline
// and the oracle probeExecConcurrent must reproduce bit-for-bit.
func probeExecSequential(meas Measurer, hasCost bool, degrees []int, trials int, opts ProfileOptions, ov *Overhead) ([]ETSample, []CostSample, int, error) {
	costMeas, _ := meas.(CostMeasurer)
	etSamples := make([]ETSample, 0, len(degrees))
	costSamples := make([]CostSample, 0, len(degrees))
	maxFeasible := opts.MaxDegree
probing:
	for _, d := range degrees {
		var sum, costSum float64
		for t := 0; t < trials; t++ {
			et, err := meas.MeasureExec(d)
			if errors.Is(err, ErrDegreeInfeasible) {
				// The platform's execution limit caps the packing degree
				// below the memory bound; probing is monotone, so stop.
				maxFeasible = d - 1
				break probing
			}
			if err != nil {
				return nil, nil, 0, fmt.Errorf("core: interference probe at degree %d: %w", d, err)
			}
			sum += et
			ov.ExecProbeSec += et
			ov.ExecProbeUSD += et * opts.RatePerInstanceSec
			if hasCost {
				storage := costMeas.LastProbeStorageUSD()
				costSum += storage
				ov.ExecProbeUSD += storage
			}
		}
		etSamples = append(etSamples, ETSample{Degree: d, ETSec: sum / float64(trials)})
		if hasCost {
			costSamples = append(costSamples, CostSample{Degree: d, StorageUSD: costSum / float64(trials)})
		}
	}
	return etSamples, costSamples, maxFeasible, nil
}

// probeExecConcurrent fans the interference probe train out over a bounded
// worker pool, one task per sampled degree, trials sequential within a task.
// Probe seeds derive from the 1-based call index the sequential train would
// have used (call = degreeIndex·trials + trial + 1), results fold in degree
// order, and the overhead accumulates with the exact statement order of
// probeExecSequential — so samples, overhead, and the discovered feasibility
// cap are bit-identical for every worker count, including 1, and to the
// sequential train itself. Degrees past the first infeasible one may probe
// speculatively (the sequential train would have stopped); their results are
// discarded by the fold and their cost never reaches the Overhead.
func probeExecConcurrent(cm ConcurrentMeasurer, hasCost bool, degrees []int, trials int, opts ProfileOptions, ov *Overhead) ([]ETSample, []CostSample, int, error) {
	type trialResult struct {
		et, storage float64
		err         error
	}
	results, err := parallel.Map(context.Background(), len(degrees),
		func(_ context.Context, i int) ([]trialResult, error) {
			out := make([]trialResult, 0, trials)
			for t := 0; t < trials; t++ {
				et, storage, err := cm.MeasureExecCall(degrees[i], i*trials+t+1)
				out = append(out, trialResult{et: et, storage: storage, err: err})
				if err != nil {
					break // the sequential train stops at this call
				}
			}
			return out, nil
		}, parallel.Workers(opts.Workers))
	if err != nil {
		return nil, nil, 0, err // unreachable: tasks never fail, ctx never cancels
	}

	etSamples := make([]ETSample, 0, len(degrees))
	costSamples := make([]CostSample, 0, len(degrees))
	maxFeasible := opts.MaxDegree
	calls := 0
fold:
	for i, d := range degrees {
		var sum, costSum float64
		for _, r := range results[i] {
			calls++ // the sequential train made this call too
			if errors.Is(r.err, ErrDegreeInfeasible) {
				maxFeasible = d - 1
				break fold
			}
			if r.err != nil {
				cm.AdvanceCalls(calls)
				return nil, nil, 0, fmt.Errorf("core: interference probe at degree %d: %w", d, r.err)
			}
			sum += r.et
			ov.ExecProbeSec += r.et
			ov.ExecProbeUSD += r.et * opts.RatePerInstanceSec
			if hasCost {
				costSum += r.storage
				ov.ExecProbeUSD += r.storage
			}
		}
		etSamples = append(etSamples, ETSample{Degree: d, ETSec: sum / float64(trials)})
		if hasCost {
			costSamples = append(costSamples, CostSample{Degree: d, StorageUSD: costSum / float64(trials)})
		}
	}
	cm.AdvanceCalls(calls)
	return etSamples, costSamples, maxFeasible, nil
}

// probeScaling runs the platform scaling probes: sequentially for plain
// Measurers, fanned out over the worker pool for ConcurrentMeasurers (whose
// MeasureScaling is a pure function of the instance count). The in-order
// fold keeps samples and overhead bit-identical across worker counts, and a
// probe error surfaces only after the accumulation of every earlier probe —
// exactly as the sequential loop leaves the Overhead.
func probeScaling(meas Measurer, concurrent bool, probes []int, opts ProfileOptions, ov *Overhead) ([]ScalingSample, error) {
	type scalingResult struct {
		st  float64
		err error
	}
	var results []scalingResult
	if concurrent {
		var err error
		results, err = parallel.Map(context.Background(), len(probes),
			func(_ context.Context, i int) (scalingResult, error) {
				st, err := meas.MeasureScaling(probes[i])
				return scalingResult{st: st, err: err}, nil
			}, parallel.Workers(opts.Workers))
		if err != nil {
			return nil, err // unreachable: tasks never fail, ctx never cancels
		}
	} else {
		results = make([]scalingResult, len(probes))
		for i, c := range probes {
			results[i].st, results[i].err = meas.MeasureScaling(c)
			if results[i].err != nil {
				results = results[:i+1]
				break
			}
		}
	}
	scSamples := make([]ScalingSample, 0, len(probes))
	for i, c := range probes {
		if i >= len(results) {
			break
		}
		if err := results[i].err; err != nil {
			return nil, fmt.Errorf("core: scaling probe at %d instances: %w", c, err)
		}
		st := results[i].st
		scSamples = append(scSamples, ScalingSample{Instances: c, ScalingSec: st})
		ov.ScalingProbeSec += st
		// No-op probe functions still pay per-request and a 100 ms sliver.
		ov.ScalingProbeUSD += float64(c) * (0.1*opts.RatePerInstanceSec + 2e-7)
	}
	return scSamples, nil
}
