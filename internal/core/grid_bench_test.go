package core

import (
	"testing"
)

// benchGrid is a 5-size Lambda-like grid with per-size interference (more
// CPU share → weaker α) and per-size expense rates, MaxDegree 40 at every
// size — 200 (P, mem) cells, the regime the pruned argmin exists for.
func benchGrid() GridModels {
	scaling := ScalingModel{B1: 2e-6, B2: 0.004, B3: 0.1}
	alphas := []float64{0.61, 0.48, 0.39, 0.34, 0.30}
	g := GridModels{}
	for i, alpha := range alphas {
		mem := float64(2048 * (i + 1))
		g.Sizes = append(g.Sizes, SizeModels{MemMB: mem, Models: Models{
			ET:                 ETModel{MfuncGB: 0.5, Alpha: alpha, Intercept: 2},
			Scaling:            scaling,
			RatePerInstanceSec: mem / 1024 * 0.0000166667,
			MaxDegree:          40,
		}})
	}
	return g
}

// BenchmarkGridTableBuild times the one-off cost a cache miss pays: K
// DegreeTables plus the per-size row minima the pruning uses.
func BenchmarkGridTableBuild(b *testing.B) {
	g := benchGrid()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := newGridTable(g, 5000)
		if t.NumSizes() != len(g.Sizes) {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkGridArgmin compares the pruned 2-D argmin against the exhaustive
// oracle on a warm table: the pruned scan skips whole memory sizes via the
// cached row lower bounds, so it should cost close to the 1-D argmin rather
// than K times it.
func BenchmarkGridArgmin(b *testing.B) {
	t := newGridTable(benchGrid(), 5000)
	w := Balanced()
	t.Size(0).quantile(95) // warm the lazy quantile columns once per size
	for i := 1; i < t.NumSizes(); i++ {
		t.Size(i).quantile(95)
	}
	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			si, deg := t.argminJoint(95, 1, w)
			if deg < 1 || si < 0 {
				b.Fatal("bad argmin")
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			si, deg := t.argminJointExact(95, 1, w)
			if deg < 1 || si < 0 {
				b.Fatal("bad argmin")
			}
		}
	})
}

// BenchmarkGridQoSSearch compares the full Eq. 9 weight search over the
// grid: the production path (memoized argmins, prefix certificates, binary
// search, pruned argmin) against the naive left-to-right scan over
// exhaustive argmins. The bound sits just above the tightest achievable
// tail so the search walks deep into the weight grid.
func BenchmarkGridQoSSearch(b *testing.B) {
	t := newGridTable(benchGrid(), 5000)
	qos := t.bestServiceAt(95, 1) * 1.02
	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := qosSearchJoint(t, qos, 95, 0.05); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := naiveQoSJoint(t, qos, 95, 0.05); err != nil {
				b.Fatal(err)
			}
		}
	})
}
