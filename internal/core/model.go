// Package core implements ProPack itself: the analytical models of Sec. 2
// of the paper and the optimal-packing-degree machinery built on them.
//
// ProPack never sees the simulator's internals. It builds its models from
// the same observations it could make against a real cloud:
//
//  1. Interference estimation (Sec. 2.1): sample a single instance's
//     execution time at a few packing degrees (skipping alternate points —
//     the curve is monotone) and fit Eq. 1, ET(P) = exp(Mfunc·α·P).
//  2. Service-time modeling (Sec. 2.2): probe the platform's scaling time
//     at a handful of concurrency levels — application-independent, no
//     function code runs — and fit Eq. 2, β1·C² + β2·C − β3.
//  3. Cost modeling (Sec. 2.3): Eq. 4 from the two models above; no
//     additional experiments.
//
// The joint optimizer (Sec. 2.5, Eqs. 5–7) and the QoS-aware weight search
// (Sec. 2.6, Eqs. 8–9) sit on top, and Sec. 2.4's Pearson χ² test validates
// the fits.
package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ETModel is Eq. 1: the execution time of one function instance at packing
// degree P, ET(P) = exp(Mfunc·α·P + c). The paper's exact form has c = 0;
// the fitted-intercept variant frees ET(1) from the exp(Mfunc·α) pin and is
// the default because it fits real curves better (see the ablation bench).
type ETModel struct {
	// MfuncGB is the memory consumed by a single function, in GB (the
	// paper's Mfunc). It is part of Eq. 1's exponent.
	MfuncGB float64
	// Alpha is the fitted constant of proportionality α.
	Alpha float64
	// Intercept is c above; zero for the paper-exact model.
	Intercept float64
}

// At evaluates Eq. 1 at the given packing degree.
func (m ETModel) At(degree int) float64 {
	return math.Exp(m.MfuncGB*m.Alpha*float64(degree) + m.Intercept)
}

func (m ETModel) String() string {
	return fmt.Sprintf("ET(P) = exp(%.4g·%.4g·P %+.4g)", m.MfuncGB, m.Alpha, m.Intercept)
}

// ETSample is one interference-profiling observation: the measured
// execution time of a single instance at a packing degree.
type ETSample struct {
	Degree int
	ETSec  float64
}

// FitETOptions selects the Eq. 1 variant.
type FitETOptions struct {
	// PaperExact pins the intercept to zero, matching Eq. 1 literally.
	PaperExact bool
}

// FitET fits Eq. 1 to interference samples. mfuncGB must be positive and at
// least two samples are required (one for the paper-exact single-parameter
// form).
func FitET(samples []ETSample, mfuncGB float64, opts FitETOptions) (ETModel, error) {
	if mfuncGB <= 0 {
		return ETModel{}, fmt.Errorf("core: non-positive Mfunc %g GB", mfuncGB)
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		if s.Degree < 1 {
			return ETModel{}, fmt.Errorf("core: sample with degree %d", s.Degree)
		}
		xs[i] = mfuncGB * float64(s.Degree)
		ys[i] = s.ETSec
	}
	var (
		em  stats.ExpModel
		err error
	)
	if opts.PaperExact {
		em, err = stats.ExpFitThroughOrigin(xs, ys)
	} else {
		em, err = stats.ExpFit(xs, ys)
	}
	if err != nil {
		return ETModel{}, fmt.Errorf("core: fitting Eq. 1: %w", err)
	}
	return ETModel{MfuncGB: mfuncGB, Alpha: em.Slope, Intercept: em.Intercept}, nil
}

// ScalingModel is Eq. 2: Scaling(C_eff) = β1·C_eff² + β2·C_eff − β3. The
// coefficients are platform properties, independent of the application.
type ScalingModel struct {
	B1, B2, B3 float64
}

// At evaluates Eq. 2 at an effective concurrency, clamped at zero (the
// fitted −β3 can push tiny concurrencies negative, which is non-physical).
func (m ScalingModel) At(ceff float64) float64 {
	v := m.B1*ceff*ceff + m.B2*ceff - m.B3
	if v < 0 {
		return 0
	}
	return v
}

func (m ScalingModel) String() string {
	return fmt.Sprintf("Scaling(C) = %.4g·C² %+.4g·C %+.4g", m.B1, m.B2, -m.B3)
}

// ScalingSample is one scaling-time observation: spawning Instances
// concurrent instances took ScalingSec until the last one started.
type ScalingSample struct {
	Instances  int
	ScalingSec float64
}

// FitScaling fits Eq. 2 by second-order polynomial regression, as the paper
// does after rejecting linear, cubic, exponential, logarithmic, logistic,
// normal, and sinusoidal alternatives.
func FitScaling(samples []ScalingSample) (ScalingModel, error) {
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		if s.Instances < 1 {
			return ScalingModel{}, fmt.Errorf("core: scaling sample with %d instances", s.Instances)
		}
		xs[i] = float64(s.Instances)
		ys[i] = s.ScalingSec
	}
	p, err := stats.PolyFit(xs, ys, 2)
	if err != nil {
		return ScalingModel{}, fmt.Errorf("core: fitting Eq. 2: %w", err)
	}
	return ScalingModel{B1: p[2], B2: p[1], B3: -p[0]}, nil
}

// StorageModel captures the non-compute part of an instance's bill —
// request fees plus the per-GB networking fee Google and Azure charge
// (paper Fig. 21) — as an affine function of the packing degree:
// PerInstanceUSD + PerFunctionUSD·degree. It is fitted from the expense of
// the same probe runs that fit Eq. 1; the zero value charges nothing
// (adequate on AWS, where compute dominates the bill).
type StorageModel struct {
	PerInstanceUSD float64
	PerFunctionUSD float64
}

// At is the modeled non-compute cost of one instance at the given degree,
// clamped at zero.
func (m StorageModel) At(degree int) float64 {
	v := m.PerInstanceUSD + m.PerFunctionUSD*float64(degree)
	if v < 0 {
		return 0
	}
	return v
}

// CostSample is one probe's non-compute bill at a packing degree.
type CostSample struct {
	Degree     int
	StorageUSD float64
}

// FitStorage fits the affine storage model by least squares. Fewer than
// two samples yield the zero model (no storage term).
func FitStorage(samples []CostSample) (StorageModel, error) {
	if len(samples) < 2 {
		return StorageModel{}, nil
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		if s.Degree < 1 {
			return StorageModel{}, fmt.Errorf("core: cost sample with degree %d", s.Degree)
		}
		xs[i] = float64(s.Degree)
		ys[i] = s.StorageUSD
	}
	line, err := stats.PolyFit(xs, ys, 1)
	if err != nil {
		return StorageModel{}, fmt.Errorf("core: fitting storage model: %w", err)
	}
	return StorageModel{PerInstanceUSD: line[0], PerFunctionUSD: line[1]}, nil
}

// Models bundles everything ProPack needs to predict service time and
// expense for an application on a platform.
type Models struct {
	ET      ETModel
	Scaling ScalingModel
	// Storage is the fitted non-compute cost term (zero on platforms where
	// compute dominates).
	Storage StorageModel
	// RatePerInstanceSec is R in Eq. 4: dollars per instance-second
	// (instance memory in GB × the platform's GB·second price).
	RatePerInstanceSec float64
	// MaxDegree is P_max^deg = floor(M_platform / M_func), possibly lowered
	// further by a latency cap (Sec. 2.1).
	MaxDegree int
}

// Validate reports an error if the models cannot be optimized over.
func (m Models) Validate() error {
	switch {
	case m.MaxDegree < 1:
		return fmt.Errorf("core: max packing degree %d < 1", m.MaxDegree)
	case m.RatePerInstanceSec < 0:
		return fmt.Errorf("core: negative expense rate")
	case m.ET.MfuncGB <= 0:
		return fmt.Errorf("core: ET model missing Mfunc")
	}
	return nil
}

// instances is the number of function instances at concurrency C and
// degree P (the system spawns ceil(C/P); the paper's algebra uses C/P).
func instances(c, degree int) float64 {
	return float64((c + degree - 1) / degree)
}

// ServiceTime is the argument of Eq. 3: modeled total service time at
// concurrency c and packing degree.
func (m Models) ServiceTime(c, degree int) float64 {
	return m.ET.At(degree) + m.Scaling.At(instances(c, degree))
}

// ServiceTimeQuantile models the service time of the first q% of instances:
// the last of the first q% starts after Scaling(q·C_eff), then executes.
// q=100 reduces to ServiceTime; q=95 is the paper's tail, q=50 its median.
func (m Models) ServiceTimeQuantile(c, degree int, q float64) float64 {
	return m.ET.At(degree) + m.Scaling.At(q/100*instances(c, degree))
}

// Expense is the argument of Eq. 4 — modeled user expense in dollars at
// concurrency c and packing degree — extended with the fitted non-compute
// term (request and networking fees) per instance.
func (m Models) Expense(c, degree int) float64 {
	n := instances(c, degree)
	return (m.ET.At(degree)*m.RatePerInstanceSec + m.Storage.At(degree)) * n
}
