package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// The joint degree × memory planner. ProPack as published picks only a
// packing degree P at a fixed instance size, but real platforms couple CPU
// share to the memory size purchased (Lambda allocates ~1 vCPU per 1769 MB),
// which makes memory a second planning axis: a smaller size is cheaper per
// instance-second but slows every function packed into it, so the Eq. 5–7
// regret trade-off has a second dimension. A GridTable generalizes
// DegreeTable to a (P × mem) grid — one DegreeTable per memory size, each
// built from that size's independently fitted model stack — and the Eq. 4–9
// entry points become 2-D argmins over the grid.
//
// Two disciplines carry over from the 1-D planner:
//
//   - Bit-identity: a grid with a single memory size must reproduce the 1-D
//     planner's answers byte-for-byte. Every per-cell expression below is
//     the DegreeTable expression (the per-size tables *are* DegreeTables),
//     candidate enumeration is size-major with the same first-wins strict-<
//     tie-breaking, and the minima folds use the same comparison chains.
//     grid_equiv_test.go holds every entry point to this.
//
//   - Pruned search stays exact: the 2-D argmin skips whole memory rows via
//     per-size lower bounds, but only when skipping provably cannot change
//     the answer *in float arithmetic* (see argminJoint); anything
//     degenerate falls back to the exhaustive scan, which is retained as
//     the test oracle (argminJointExact).

// SizeModels is one memory size's fitted model stack. Alpha, the storage
// term, the expense rate, and the feasible degree range are all per-size
// (CPU share scales with memory, so interference differs per size); the
// scaling model is a platform property shared across sizes.
type SizeModels struct {
	// MemMB is the purchased instance memory in MB.
	MemMB float64
	// Models predicts service time and expense at this size.
	Models Models
}

// GridModels is the joint planner's input: per-size model stacks over a
// strictly increasing memory-size grid. The zero value is invalid; build
// one with BuildGridModels or assemble it from per-size fits.
type GridModels struct {
	Sizes []SizeModels
}

// Base returns the largest size's models — the conventional full-size
// deployment every joint plan is baselined against.
func (g GridModels) Base() Models { return g.Sizes[len(g.Sizes)-1].Models }

// MemSizesMB lists the grid's memory sizes in ascending order.
func (g GridModels) MemSizesMB() []float64 {
	out := make([]float64, len(g.Sizes))
	for i, s := range g.Sizes {
		out[i] = s.MemMB
	}
	return out
}

// JointConfig is a chosen (packing degree, memory size) cell.
type JointConfig struct {
	Degree int
	MemMB  float64
}

// JointPlan is a Plan extended with the chosen memory size. The embedded
// Plan's baseline is degree 1 at the grid's largest memory size — the
// deployment a user who tunes nothing would run.
type JointPlan struct {
	Plan
	MemMB float64
}

// --- GridTable ---------------------------------------------------------------

// GridTable holds the memoized per-size DegreeTables for one (GridModels,
// concurrency) pair, plus the per-size minima that power the pruned 2-D
// argmin. Quantile columns stay lazy per size (a size whose row is pruned
// never materializes them). Safe for concurrent use.
type GridTable struct {
	g GridModels
	c int

	sizes []gridSize

	// expenseNaN records whether any row's expense minimum is NaN (an
	// overflowed ET times a zero rate). A NaN row minimum means the row's
	// first element is NaN — minOf never leaves NaN once seeded with it —
	// and folding such row minima is NOT equivalent to the flat fold the
	// exact scan implies, so bestExpense must take the flat fold then.
	expenseNaN bool
}

// gridSize is one memory row: its DegreeTable and the row minima used as
// pruning lower bounds.
type gridSize struct {
	memMB float64
	t     *DegreeTable

	// Row minima over the full degree range (hence lower bounds for any
	// restricted range too):
	minET      float64 // min ET(P): lower bound on every quantile-service value
	minService float64 // min total service (the q=100 column)
	minExpense float64 // min expense
}

// NewGridTable validates the grid and concurrency and builds the per-size
// tables in one pass.
func NewGridTable(g GridModels, c int) (*GridTable, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("core: concurrency %d < 1", c)
	}
	return newGridTable(g, c), nil
}

// newGridTable builds without validation (internal callers validate first,
// preserving each entry point's error order).
func newGridTable(g GridModels, c int) *GridTable {
	t := &GridTable{g: g, c: c, sizes: make([]gridSize, len(g.Sizes))}
	for i, s := range g.Sizes {
		dt := newDegreeTable(s.Models, c)
		t.sizes[i] = gridSize{
			memMB:      s.MemMB,
			t:          dt,
			minET:      minOf(dt.et),
			minService: minOf(dt.service),
			minExpense: minOf(dt.expense),
		}
		if math.IsNaN(t.sizes[i].minExpense) {
			t.expenseNaN = true
		}
	}
	return t
}

// Concurrency returns the concurrency level the grid was built for.
func (t *GridTable) Concurrency() int { return t.c }

// NumSizes returns the number of memory sizes in the grid.
func (t *GridTable) NumSizes() int { return len(t.sizes) }

// MemMB returns the i-th memory size (ascending).
func (t *GridTable) MemMB(i int) float64 { return t.sizes[i].memMB }

// Size returns the i-th memory size's DegreeTable, for callers that scan
// cells themselves (sweeps, the serve daemon's per-size reporting).
func (t *GridTable) Size(i int) *DegreeTable { return t.sizes[i].t }

// maxDegreeAny is the widest degree range across sizes (sizes are ragged:
// each has its own feasibility cap).
func (t *GridTable) maxDegreeAny() int {
	md := 0
	for i := range t.sizes {
		if d := t.sizes[i].t.MaxDegree(); d > md {
			md = d
		}
	}
	return md
}

// firstEligible is the default cell when no candidate wins the argmin (all
// regrets NaN, mirroring argminRegret's best=0 fallback): the first size
// admitting minDeg, at minDeg.
func (t *GridTable) firstEligible(minDeg int) (si, deg int) {
	for i := range t.sizes {
		if minDeg <= t.sizes[i].t.MaxDegree() {
			return i, minDeg
		}
	}
	return 0, minDeg // unreachable: callers check minDeg ≤ maxDegreeAny
}

// argminJointExact is the exhaustive Eq. 7 scan over every (size, degree)
// cell — the oracle the pruned argminJoint must match on every input, and
// the fallback it takes on degenerate inputs. Candidates are enumerated
// size-major (sizes ascending, degrees minDeg..MaxDegree) with first-wins
// strict-< tie-breaking, so a single-size grid reproduces
// DegreeTable.argminRegret exactly.
func (t *GridTable) argminJointExact(q float64, minDeg int, w Weights) (si, deg int) {
	bestS, bestE := t.jointBaselines(q, minDeg)
	bestSi, bestDeg, bestVal := -1, 0, math.Inf(1)
	for i := range t.sizes {
		dt := t.sizes[i].t
		if minDeg > dt.MaxDegree() {
			continue
		}
		svc := dt.quantile(q).vals[minDeg-1:]
		exp := dt.expense[minDeg-1:]
		for j, s := range svc {
			dS := (s - bestS) / bestS      // Eq. 5, over the whole grid
			dE := (exp[j] - bestE) / bestE // Eq. 6, over the whole grid
			if v := w.Service*dS + w.Expense*dE; v < bestVal {
				bestSi, bestDeg, bestVal = i, j+minDeg, v
			}
		}
	}
	if bestSi < 0 {
		return t.firstEligible(minDeg)
	}
	return bestSi, bestDeg
}

// jointBaselines computes the Eqs. 5–6 baselines over every cell with the
// exact fold the exhaustive scan implies: initialized from the first
// candidate, then strict-< comparisons in enumeration order — identical to
// minOf over the virtual concatenation of rows (including its NaN
// semantics), and therefore to the 1-D minOf on a single-size grid.
func (t *GridTable) jointBaselines(q float64, minDeg int) (bestS, bestE float64) {
	started := false
	for i := range t.sizes {
		dt := t.sizes[i].t
		if minDeg > dt.MaxDegree() {
			continue
		}
		svc := dt.quantile(q).vals[minDeg-1:]
		exp := dt.expense[minDeg-1:]
		j := 0
		if !started {
			bestS, bestE = svc[0], exp[0]
			started = true
			j = 1
		}
		for ; j < len(svc); j++ {
			if svc[j] < bestS {
				bestS = svc[j]
			}
			if exp[j] < bestE {
				bestE = exp[j]
			}
		}
	}
	return bestS, bestE
}

// bestExpense is the exact Eq. 6 baseline over the restricted grid. With
// the full range and no NaN row minima it folds the cached row minima
// (grouping a strict-< fold by rows changes nothing when no group's minimum
// is NaN); a restricted range or a NaN row minimum folds the vectors
// directly, reproducing the exact scan's comparison chain verbatim.
func (t *GridTable) bestExpense(minDeg int) float64 {
	if minDeg == 1 && !t.expenseNaN {
		best := t.sizes[0].minExpense
		for i := 1; i < len(t.sizes); i++ {
			if m := t.sizes[i].minExpense; m < best {
				best = m
			}
		}
		return best
	}
	best, started := math.NaN(), false
	for i := range t.sizes {
		dt := t.sizes[i].t
		if minDeg > dt.MaxDegree() {
			continue
		}
		exp := dt.expense[minDeg-1:]
		j := 0
		if !started {
			best, started = exp[0], true
			j = 1
		}
		for ; j < len(exp); j++ {
			if exp[j] < best {
				best = exp[j]
			}
		}
	}
	return best
}

// bestServiceAt is the exact Eq. 5 baseline at quantile q over the
// restricted grid. For q < 100 a size's quantile column is materialized only
// when its ET row minimum admits an improvement: every quantile value is
// et + Scaling.At(·) with Scaling clamped ≥ 0, and correctly-rounded
// addition of a non-negative term never rounds below et, so a row with
// minET > best cannot contain a smaller value. Service vectors are NaN-free
// (sums of non-negatives), so the fold's minimum is order-independent and
// skipping preserves the exact value.
func (t *GridTable) bestServiceAt(q float64, minDeg int) float64 {
	if q == 100 && minDeg == 1 {
		best := t.sizes[0].minService
		for i := 1; i < len(t.sizes); i++ {
			if m := t.sizes[i].minService; m < best {
				best = m
			}
		}
		return best
	}
	best, started := math.NaN(), false
	for i := range t.sizes {
		gs := &t.sizes[i]
		if minDeg > gs.t.MaxDegree() {
			continue
		}
		if started && q != 100 && gs.minET > best {
			continue // every value in this row is ≥ minET > best
		}
		svc := gs.t.quantile(q).vals[minDeg-1:]
		j := 0
		if !started {
			best, started = svc[0], true
			j = 1
		}
		for ; j < len(svc); j++ {
			if svc[j] < best {
				best = svc[j]
			}
		}
	}
	return best
}

// argminJoint is the pruned 2-D Eq. 7 argmin. It returns exactly what
// argminJointExact returns — pruning only skips work, never changes the
// answer — at a cost that approaches the 1-D scan when one size dominates:
//
//   - The baselines bestS/bestE are exact minima (bestServiceAt
//     materializes quantile columns only for rows whose minET admits an
//     improvement).
//   - A whole memory row is skipped when its cheapest possible regret —
//     computed from the cached row minima — already exceeds the incumbent:
//     lb = W_S·(lbS−bestS)/bestS + W_E·(minExpense−bestE)/bestE with
//     lbS ≤ every service value and minExpense ≤ every expense value in the
//     row. With bestS, bestE positive finite and W_S, W_E ≥ 0, every
//     operation in a candidate's regret (subtraction of a constant,
//     division by a positive constant, multiplication by a non-negative
//     weight, addition) is monotone under correct rounding, so every
//     candidate in the row has v ≥ lb > bestVal and would lose the strict-<
//     comparison anyway. Skipping such a row is therefore exact in float
//     arithmetic, not just in real arithmetic. Ties are unaffected: a
//     skipped candidate could at best *equal* the incumbent's value, and
//     equal-valued later candidates lose under first-wins.
//   - Degenerate inputs — a non-positive or non-finite baseline (regrets
//     divide by it) or a negative weight (Weights.Validate admits −1e-9) —
//     void the monotonicity argument, so the search falls back to the
//     exhaustive oracle.
//
// The first eligible row can never be skipped (lb > +Inf is false), so the
// incumbent always exists before any skip test can pass.
func (t *GridTable) argminJoint(q float64, minDeg int, w Weights) (si, deg int) {
	if w.Service < 0 || w.Expense < 0 {
		return t.argminJointExact(q, minDeg, w)
	}
	bestE := t.bestExpense(minDeg)
	bestS := t.bestServiceAt(q, minDeg)
	if !(bestS > 0) || !(bestE > 0) || math.IsInf(bestS, 1) || math.IsInf(bestE, 1) {
		return t.argminJointExact(q, minDeg, w)
	}
	bestSi, bestDeg, bestVal := -1, 0, math.Inf(1)
	for i := range t.sizes {
		gs := &t.sizes[i]
		dt := gs.t
		if minDeg > dt.MaxDegree() {
			continue
		}
		lbS := gs.minService
		if q != 100 {
			lbS = gs.minET
		}
		lb := w.Service*((lbS-bestS)/bestS) + w.Expense*((gs.minExpense-bestE)/bestE)
		if lb > bestVal {
			continue // no cell in this row can beat the incumbent
		}
		svc := dt.quantile(q).vals[minDeg-1:]
		exp := dt.expense[minDeg-1:]
		for j, s := range svc {
			dS := (s - bestS) / bestS
			dE := (exp[j] - bestE) / bestE
			if v := w.Service*dS + w.Expense*dE; v < bestVal {
				bestSi, bestDeg, bestVal = i, j+minDeg, v
			}
		}
	}
	if bestSi < 0 {
		return t.firstEligible(minDeg)
	}
	return bestSi, bestDeg
}

// argminService is the joint Eq. 3 argmin (first-wins across the size-major
// enumeration; a single-size grid matches argminVec exactly).
func (t *GridTable) argminService() (si, deg int) {
	return t.argminColumnJoint(func(gs *gridSize) []float64 { return gs.t.service })
}

// argminExpense is the joint Eq. 4 argmin.
func (t *GridTable) argminExpense() (si, deg int) {
	return t.argminColumnJoint(func(gs *gridSize) []float64 { return gs.t.expense })
}

func (t *GridTable) argminColumnJoint(col func(*gridSize) []float64) (si, deg int) {
	bestSi, bestDeg, bestVal := 0, 1, col(&t.sizes[0])[0]
	for i := range t.sizes {
		vals := col(&t.sizes[i])
		for j, v := range vals {
			if i == 0 && j == 0 {
				continue
			}
			if v < bestVal {
				bestSi, bestDeg, bestVal = i, j+1, v
			}
		}
	}
	return bestSi, bestDeg
}

// constrainedJoint is the joint Eq. 7 argmin restricted to cells whose
// instance count stays within maxInstances, mirroring constrainedOn (the
// infeasibility error quotes the widest degree range across sizes, which on
// a single-size grid is the 1-D error verbatim).
func (t *GridTable) constrainedJoint(w Weights, maxInstances int) (si, deg int, err error) {
	minDegree := 1
	if maxInstances > 0 {
		minDegree = (t.c + maxInstances - 1) / maxInstances
		if minDegree > t.maxDegreeAny() {
			return 0, 0, fmt.Errorf("core: concurrency %d cannot fit %d instances even at degree %d",
				t.c, maxInstances, t.maxDegreeAny())
		}
	}
	si, deg = t.argminJoint(100, minDegree, w)
	return si, deg, nil
}

// plan materializes the JointPlan for a chosen cell. The baseline is
// degree 1 at the grid's largest size — the conventional untuned deployment
// — which on a single-size grid collapses to DegreeTable.plan's baseline.
func (t *GridTable) plan(si, deg int, w Weights) JointPlan {
	base := t.sizes[len(t.sizes)-1].t
	cell := t.sizes[si].t
	return JointPlan{
		Plan: Plan{
			Concurrency:         t.c,
			Degree:              deg,
			Weights:             w,
			PredictedServiceSec: cell.service[deg-1],
			PredictedExpenseUSD: cell.expense[deg-1],
			BaselineServiceSec:  base.service[0],
			BaselineExpenseUSD:  base.expense[0],
		},
		MemMB: t.sizes[si].memMB,
	}
}

// --- qosSearchJoint ----------------------------------------------------------

// qosSearchJoint is qosSearch generalized to the grid: the same Sec. 2.6
// smallest-feasible-W_S search, with each weight step's argmin taken over
// (size, degree) cells. It is a deliberate structural mirror of the 1-D
// qosSearch rather than a refactor of it — the 1-D path stays untouched —
// and on a single-size grid every step evaluates identically, errors
// included. The same pruning applies:
//
//   - Infeasibility floor: every grid point's tail is the tail at *some*
//     cell, so if no cell at all meets the bound the search is infeasible.
//   - Prefix certificate: the scalarization exchange argument holds for any
//     finite candidate set, so the total-service regret dS at the joint
//     argmin is non-increasing in W_S, and a prefix whose certified
//     candidate set contains no feasible cell is infeasible wholesale. The
//     threshold carries the same conservative float slack; certification
//     failure falls back to the plain left-to-right grid scan.
func qosSearchJoint(t *GridTable, qosSec, tailQ, step float64) (Weights, error) {
	infeasible := func() (Weights, error) {
		return Weights{}, fmt.Errorf("%w: bound %.3gs at concurrency %d", ErrQoSInfeasible, qosSec, t.c)
	}
	// Infeasibility floor: no cell meets the bound, so no weighting can.
	if t.bestServiceAt(tailQ, 1) > qosSec {
		return infeasible()
	}

	n := qosGridSize(step)
	sis := make([]int, n)
	degs := make([]int, n) // 0 = unevaluated (degrees are ≥ 1)
	pick := func(j int) (int, int) {
		if degs[j] == 0 {
			sis[j], degs[j] = t.argminJoint(100, 1, qosWeightAt(j, n, step))
		}
		return sis[j], degs[j]
	}
	feasible := func(j int) bool {
		si, deg := pick(j)
		return t.sizes[si].t.quantile(tailQ).vals[deg-1] <= qosSec
	}

	if feasible(0) {
		return qosWeightAt(0, n, step), nil
	}

	// prefixInfeasible certifies that every grid index in [0, j] fails the
	// bound: all their argmins have total-service regret ≥ dS(argmin_j), and
	// no such cell's tail meets the bound.
	bestS := t.bestServiceAt(100, 1)
	dS := func(si, i int) float64 { return (t.sizes[si].t.service[i] - bestS) / bestS }
	prefixInfeasible := func(j int) bool {
		sj, dj := pick(j)
		thr := dS(sj, dj-1)
		thr -= 1e-12 * (1 + math.Abs(thr)) // conservative float slack
		for si := range t.sizes {
			tail := t.sizes[si].t.quantile(tailQ).vals
			for i := range tail {
				if dS(si, i) >= thr && tail[i] <= qosSec {
					return false
				}
			}
		}
		return true
	}
	// gridScan is the guaranteed-identical fallback: the naive left-to-right
	// search over the same memoized evaluations.
	gridScan := func() (Weights, error) {
		for j := 0; j < n; j++ {
			if feasible(j) {
				return qosWeightAt(j, n, step), nil
			}
		}
		return infeasible()
	}

	if !feasible(n - 1) {
		if prefixInfeasible(n - 1) {
			return infeasible()
		}
		return gridScan()
	}

	// Binary search for the feasibility boundary: lo infeasible, hi feasible.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	if prefixInfeasible(hi - 1) {
		return qosWeightAt(hi, n, step), nil
	}
	return gridScan()
}

// --- GridModels entry points -------------------------------------------------

// OptimalConfig is the joint Eq. 7 argmin at service quantile q: the
// (degree, memory size) cell minimizing the weighted regret sum, with the
// Eqs. 5–6 baselines taken over the whole grid.
func (g GridModels) OptimalConfig(c int, q float64, w Weights) (JointConfig, error) {
	if err := g.Validate(); err != nil {
		return JointConfig{}, err
	}
	if err := w.Validate(); err != nil {
		return JointConfig{}, err
	}
	if c < 1 {
		return JointConfig{}, fmt.Errorf("core: concurrency %d < 1", c)
	}
	if q <= 0 || q > 100 {
		return JointConfig{}, fmt.Errorf("core: quantile %g outside (0,100]", q)
	}
	t := newGridTable(g, c)
	si, deg := t.argminJoint(q, 1, w)
	return JointConfig{Degree: deg, MemMB: t.sizes[si].memMB}, nil
}

// OptimalConfigService is the joint Eq. 3 argmin: the cell minimizing
// modeled total service time.
func (g GridModels) OptimalConfigService(c int) JointConfig {
	t := newGridTable(g, c)
	si, deg := t.argminService()
	return JointConfig{Degree: deg, MemMB: t.sizes[si].memMB}
}

// OptimalConfigExpense is the joint Eq. 4 argmin: the cell minimizing
// modeled expense.
func (g GridModels) OptimalConfigExpense(c int) JointConfig {
	t := newGridTable(g, c)
	si, deg := t.argminExpense()
	return JointConfig{Degree: deg, MemMB: t.sizes[si].memMB}
}

// OptimalConfigConstrained is OptimalConfig restricted to cells whose
// instance count stays within maxInstances. maxInstances ≤ 0 means
// unconstrained.
func (g GridModels) OptimalConfigConstrained(c int, w Weights, maxInstances int) (JointConfig, error) {
	if err := g.Validate(); err != nil {
		return JointConfig{}, err
	}
	if err := w.Validate(); err != nil {
		return JointConfig{}, err
	}
	if c < 1 {
		return JointConfig{}, fmt.Errorf("core: concurrency %d < 1", c)
	}
	t := newGridTable(g, c)
	si, deg, err := t.constrainedJoint(w, maxInstances)
	if err != nil {
		return JointConfig{}, err
	}
	return JointConfig{Degree: deg, MemMB: t.sizes[si].memMB}, nil
}

// PlanJointFor computes the full joint recommendation at concurrency c.
func (g GridModels) PlanJointFor(c int, w Weights) (JointPlan, error) {
	if err := g.Validate(); err != nil {
		return JointPlan{}, err
	}
	if err := w.Validate(); err != nil {
		return JointPlan{}, err
	}
	if c < 1 {
		return JointPlan{}, fmt.Errorf("core: concurrency %d < 1", c)
	}
	t := newGridTable(g, c)
	si, deg := t.argminJoint(100, 1, w)
	return t.plan(si, deg, w), nil
}

// QoSWeightsJoint is Eq. 9 over the grid: the smallest W_S whose joint
// recommendation keeps the modeled tail service time within qosSec.
func (g GridModels) QoSWeightsJoint(c int, qosSec float64, opts QoSOptions) (Weights, error) {
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return Weights{}, err
	}
	if err := g.Validate(); err != nil {
		return Weights{}, err
	}
	if c < 1 {
		return Weights{}, fmt.Errorf("core: concurrency %d < 1", c)
	}
	return qosSearchJoint(newGridTable(g, c), qosSec, tailQ, step)
}

// QoSPlanJoint recommends a (degree, memory size) cell that jointly
// optimizes service time and expense while keeping the modeled tail latency
// within qosSec. The weight search and the final plan share one grid table.
func (g GridModels) QoSPlanJoint(c int, qosSec float64, opts QoSOptions) (JointPlan, Weights, error) {
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return JointPlan{}, Weights{}, err
	}
	if err := g.Validate(); err != nil {
		return JointPlan{}, Weights{}, err
	}
	if c < 1 {
		return JointPlan{}, Weights{}, fmt.Errorf("core: concurrency %d < 1", c)
	}
	t := newGridTable(g, c)
	w, err := qosSearchJoint(t, qosSec, tailQ, step)
	if err != nil {
		return JointPlan{}, Weights{}, err
	}
	si, deg := t.argminJoint(100, 1, w)
	return t.plan(si, deg, w), w, nil
}

// --- GridCache and the joint Planner -----------------------------------------

// ErrNoGrid is returned by a Planner's joint entry points when the planner
// was built without a memory grid (NewPlanner instead of NewJointPlanner).
var ErrNoGrid = errors.New("core: planner has no memory grid")

// GridCache memoizes GridTables for one fixed GridModels value across
// concurrency levels — the joint planner's analogue of TableCache, sharing
// its sharded lock-free machinery (cache.go): hits are allocation-free and
// never serialize, misses coalesce so each table builds exactly once, and
// eviction is LRU. Keyed by (Models set, C): the grid is fixed per cache,
// concurrency is the key.
type GridCache struct {
	g  GridModels
	sc *shardedCache[GridTable]
}

// NewGridCache builds a cache for the grid. capacity ≤ 0 means the default
// (64 concurrency levels).
func NewGridCache(g GridModels, capacity int) *GridCache {
	if capacity <= 0 {
		capacity = defaultTableCap
	}
	gc := &GridCache{g: g}
	gc.sc = newShardedCache(capacity, func(c int) *GridTable { return newGridTable(g, c) })
	return gc
}

// Table returns the (possibly cached) grid table for concurrency c,
// validating inputs exactly as NewGridTable does.
func (gc *GridCache) Table(c int) (*GridTable, error) {
	if err := gc.g.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("core: concurrency %d < 1", c)
	}
	return gc.sc.get(c), nil
}

// Len reports the number of cached grid tables.
func (gc *GridCache) Len() int { return gc.sc.len() }

// Builds reports how many grid tables the cache has constructed since
// creation (singleflight audit, like TableCache.Builds).
func (gc *GridCache) Builds() uint64 { return gc.sc.builds.Load() }

// NewJointPlanner builds a planner over a memory-size grid: the joint entry
// points plan over every (degree, size) cell, and the 1-D entry points keep
// working against the grid's largest (base) size — the conventional
// deployment the joint plans are baselined against.
func NewJointPlanner(g GridModels) (*Planner, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	base := g.Base()
	return &Planner{m: base, cache: NewTableCache(base, 0), grid: NewGridCache(g, 0)}, nil
}

// Grid returns the planner's memory grid, if it has one.
func (pl *Planner) Grid() (GridModels, bool) {
	if pl.grid == nil {
		return GridModels{}, false
	}
	return pl.grid.g, true
}

// GridTable exposes the cached grid table for concurrency c, for callers
// that scan cells themselves (per-size sweeps, the serve daemon's joint
// endpoint). It shares the planner's cache and singleflight.
func (pl *Planner) GridTable(c int) (*GridTable, error) {
	if pl.grid == nil {
		return nil, ErrNoGrid
	}
	return pl.grid.Table(c)
}

// gridTable validates weights alongside the cached grid lookup, mirroring
// the GridModels entry points' validation order (grid, weights, then
// concurrency out of the cache's checks).
func (pl *Planner) gridTable(c int, w Weights) (*GridTable, error) {
	if pl.grid == nil {
		return nil, ErrNoGrid
	}
	if err := pl.grid.g.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return pl.grid.Table(c)
}

// OptimalConfig is the cached GridModels.OptimalConfig.
func (pl *Planner) OptimalConfig(c int, q float64, w Weights) (JointConfig, error) {
	t, err := pl.gridTable(c, w)
	if err != nil {
		return JointConfig{}, err
	}
	if q <= 0 || q > 100 {
		return JointConfig{}, fmt.Errorf("core: quantile %g outside (0,100]", q)
	}
	si, deg := t.argminJoint(q, 1, w)
	return JointConfig{Degree: deg, MemMB: t.sizes[si].memMB}, nil
}

// OptimalConfigConstrained is the cached GridModels.OptimalConfigConstrained.
func (pl *Planner) OptimalConfigConstrained(c int, w Weights, maxInstances int) (JointConfig, error) {
	t, err := pl.gridTable(c, w)
	if err != nil {
		return JointConfig{}, err
	}
	si, deg, err := t.constrainedJoint(w, maxInstances)
	if err != nil {
		return JointConfig{}, err
	}
	return JointConfig{Degree: deg, MemMB: t.sizes[si].memMB}, nil
}

// PlanJointFor is the cached GridModels.PlanJointFor.
func (pl *Planner) PlanJointFor(c int, w Weights) (JointPlan, error) {
	t, err := pl.gridTable(c, w)
	if err != nil {
		return JointPlan{}, err
	}
	si, deg := t.argminJoint(100, 1, w)
	return t.plan(si, deg, w), nil
}

// QoSPlanJoint is the cached GridModels.QoSPlanJoint.
func (pl *Planner) QoSPlanJoint(c int, qosSec float64, opts QoSOptions) (JointPlan, Weights, error) {
	if pl.grid == nil {
		return JointPlan{}, Weights{}, ErrNoGrid
	}
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return JointPlan{}, Weights{}, err
	}
	t, err := pl.grid.Table(c)
	if err != nil {
		return JointPlan{}, Weights{}, err
	}
	w, err := qosSearchJoint(t, qosSec, tailQ, step)
	if err != nil {
		return JointPlan{}, Weights{}, err
	}
	si, deg := t.argminJoint(100, 1, w)
	return t.plan(si, deg, w), w, nil
}

// --- Grid profiling ----------------------------------------------------------

// SizeProbe is one memory size's probing setup: a measurer against the
// platform resized to that memory (CPU share scales with it) and the
// profile options derived at that size (per-size MaxDegree and expense
// rate). Build them with GridProbesFor for the simulator, or assemble them
// around live measurers.
type SizeProbe struct {
	MemMB float64
	Meas  Measurer
	Opts  ProfileOptions
}

// BuildGridModels runs the modeling pipeline once per memory size and
// assembles the grid: each size gets its own interference train (per-size α
// — CPU share differs per size, so interference does too) and storage fit
// via the existing FitET/FitStorage machinery, while all sizes share one
// scaling probe schedule — scaling time is a platform property, probed once
// at the largest (base) size and fitted once (Sec. 2.2: the probe runs no
// application code, so it cannot depend on the function's size either).
// Probes must be in strictly increasing memory order; fit failures name the
// offending memory size (unwrap to stats.ErrNonFinite and friends).
func BuildGridModels(probes []SizeProbe) (GridModels, Overhead, error) {
	var ov Overhead
	if len(probes) == 0 {
		return GridModels{}, ov, fmt.Errorf("core: empty memory size grid")
	}
	for i, sp := range probes {
		if sp.MemMB <= 0 {
			return GridModels{}, ov, fmt.Errorf("core: non-positive memory size %g MB", sp.MemMB)
		}
		if i > 0 && sp.MemMB <= probes[i-1].MemMB {
			return GridModels{}, ov, fmt.Errorf("%w: %g MB after %g MB", ErrNonMonotoneSizes, sp.MemMB, probes[i-1].MemMB)
		}
	}
	g := GridModels{Sizes: make([]SizeModels, 0, len(probes))}
	for _, sp := range probes {
		m, err := buildSizeModels(sp, &ov)
		if err != nil {
			return GridModels{}, ov, fmt.Errorf("core: memory size %g MB: %w", sp.MemMB, err)
		}
		g.Sizes = append(g.Sizes, SizeModels{MemMB: sp.MemMB, Models: m})
	}

	// One scaling schedule for the whole grid, probed at the base size.
	base := probes[len(probes)-1]
	scProbes := base.Opts.ScalingProbes
	if scProbes == nil {
		scProbes = DefaultScalingProbes()
	}
	_, concurrent := base.Meas.(ConcurrentMeasurer)
	scSamples, err := probeScaling(base.Meas, concurrent, scProbes, base.Opts, &ov)
	if err != nil {
		return GridModels{}, ov, fmt.Errorf("core: memory size %g MB: %w", base.MemMB, err)
	}
	scModel, err := FitScaling(scSamples)
	if err != nil {
		return GridModels{}, ov, fmt.Errorf("core: memory size %g MB: %w", base.MemMB, err)
	}
	for i := range g.Sizes {
		g.Sizes[i].Models.Scaling = scModel
	}
	if err := g.Validate(); err != nil {
		return GridModels{}, ov, err
	}
	return g, ov, nil
}

// buildSizeModels is the per-size half of BuildModels: the interference
// train plus the Eq. 1 and storage fits, leaving Scaling to the shared fit.
func buildSizeModels(sp SizeProbe, ov *Overhead) (Models, error) {
	opts := sp.Opts
	if opts.MaxDegree < 1 {
		return Models{}, fmt.Errorf("core: profile needs MaxDegree ≥ 1, have %d", opts.MaxDegree)
	}
	if opts.MfuncGB <= 0 {
		return Models{}, fmt.Errorf("core: profile needs MfuncGB > 0, have %g", opts.MfuncGB)
	}
	if opts.RatePerInstanceSec < 0 {
		return Models{}, fmt.Errorf("core: negative expense rate")
	}
	degrees := SampleDegrees(opts.MaxDegree)
	if opts.FullSweep {
		degrees = degrees[:0]
		for d := 1; d <= opts.MaxDegree; d++ {
			degrees = append(degrees, d)
		}
	}
	trials := opts.Trials
	if trials == 0 {
		trials = 3
	}
	if trials < 1 {
		return Models{}, fmt.Errorf("core: probe trials must be ≥1, have %d", trials)
	}
	_, hasCost := sp.Meas.(CostMeasurer)
	var (
		etSamples   []ETSample
		costSamples []CostSample
		maxFeasible int
		err         error
	)
	if cm, ok := sp.Meas.(ConcurrentMeasurer); ok {
		etSamples, costSamples, maxFeasible, err = probeExecConcurrent(cm, hasCost, degrees, trials, opts, ov)
	} else {
		etSamples, costSamples, maxFeasible, err = probeExecSequential(sp.Meas, hasCost, degrees, trials, opts, ov)
	}
	if err != nil {
		return Models{}, err
	}
	if maxFeasible < 1 {
		return Models{}, fmt.Errorf("core: application infeasible even unpacked: %w", ErrDegreeInfeasible)
	}
	etModel, err := FitET(etSamples, opts.MfuncGB, opts.FitET)
	if err != nil {
		if errors.Is(err, stats.ErrNonFinite) {
			return Models{}, fmt.Errorf("core: fitting Eq. 1 from %d probes: %w", len(etSamples), err)
		}
		return Models{}, err
	}
	storageModel, err := FitStorage(costSamples)
	if err != nil {
		return Models{}, err
	}
	return Models{
		ET:                 etModel,
		Storage:            storageModel,
		RatePerInstanceSec: opts.RatePerInstanceSec,
		MaxDegree:          maxFeasible,
	}, nil
}
