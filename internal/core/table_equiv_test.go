package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// The table-backed planner promises bit-identical results to the naive
// formulation that recomputed the model vectors on every scan. These
// property tests hold it to that promise: every naive reference below
// evaluates the Models predictors degree by degree — the pre-table code
// path — and the randomized trials compare recommendations, plans, and
// errors for exact equality (floats compared with ==, never a tolerance).

// naiveArgminRegret is the Eq. 7 scan evaluated straight off the Models
// predictors, one call per degree, exactly like the pre-table optimizer.
func naiveArgminRegret(m Models, c int, q float64, minDeg int, w Weights) int {
	bestS, bestE := math.Inf(1), math.Inf(1)
	for d := minDeg; d <= m.MaxDegree; d++ {
		if s := m.ServiceTimeQuantile(c, d, q); s < bestS {
			bestS = s
		}
		if e := m.Expense(c, d); e < bestE {
			bestE = e
		}
	}
	best, bestVal := 0, math.Inf(1)
	for d := minDeg; d <= m.MaxDegree; d++ {
		dS := (m.ServiceTimeQuantile(c, d, q) - bestS) / bestS
		dE := (m.Expense(c, d) - bestE) / bestE
		if v := w.Service*dS + w.Expense*dE; v < bestVal {
			best, bestVal = d, v
		}
	}
	return best
}

// naivePlanFor assembles the Plan from direct Models predictions.
func naivePlanFor(m Models, c int, w Weights) Plan {
	deg := naiveArgminRegret(m, c, 100, 1, w)
	return Plan{
		Concurrency:         c,
		Degree:              deg,
		Weights:             w,
		PredictedServiceSec: m.ServiceTime(c, deg),
		PredictedExpenseUSD: m.Expense(c, deg),
		BaselineServiceSec:  m.ServiceTime(c, 1),
		BaselineExpenseUSD:  m.Expense(c, 1),
	}
}

// naiveQoSWeights is the plain left-to-right weight-grid scan over direct
// Models evaluations: the reference the pruned/binary-searched qosSearch
// must agree with on every input.
func naiveQoSWeights(m Models, c int, qosSec float64, opts QoSOptions) (Weights, error) {
	tailQ, step, err := opts.normalize(qosSec)
	if err != nil {
		return Weights{}, err
	}
	n := qosGridSize(step)
	for j := 0; j < n; j++ {
		w := qosWeightAt(j, n, step)
		deg := naiveArgminRegret(m, c, 100, 1, w)
		if m.ServiceTimeQuantile(c, deg, tailQ) <= qosSec {
			return w, nil
		}
	}
	return Weights{}, fmt.Errorf("%w: bound %.3gs at concurrency %d", ErrQoSInfeasible, qosSec, c)
}

func randModels(r *rand.Rand) Models {
	alpha := 0.02 + 0.4*r.Float64()
	if r.Float64() < 0.15 {
		alpha = -alpha // non-monotone ET curves must work too
	}
	return Models{
		ET: ETModel{
			MfuncGB:   0.1 + 2*r.Float64(),
			Alpha:     alpha,
			Intercept: 2*r.Float64() - 0.5,
		},
		Scaling: ScalingModel{
			B1: r.Float64() * 1e-5,
			B2: r.Float64() * 0.01,
			B3: r.Float64() * 0.5,
		},
		Storage: StorageModel{
			PerInstanceUSD: r.Float64() * 1e-4,
			PerFunctionUSD: r.Float64() * 1e-5,
		},
		RatePerInstanceSec: r.Float64() * 1e-3,
		MaxDegree:          1 + r.Intn(64),
	}
}

func randWeights(r *rand.Rand) Weights {
	ws := float64(r.Intn(11)) / 10
	return Weights{Service: ws, Expense: 1 - ws}
}

func TestTablePlannerMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	quantiles := []float64{100, 95, 50, 99.5, 10}
	for trial := 0; trial < 300; trial++ {
		m := randModels(r)
		c := 1 + r.Intn(20000)
		w := randWeights(r)
		pl := NewPlanner(m)

		if got, want := m.OptimalDegreeService(c), naiveArgminRegret(m, c, 100, 1, ServiceOnly()); got != want {
			t.Fatalf("trial %d: OptimalDegreeService=%d, naive=%d (m=%+v c=%d)", trial, got, want, m, c)
		}
		if got, want := m.OptimalDegreeExpense(c), naiveArgminRegret(m, c, 100, 1, ExpenseOnly()); got != want {
			t.Fatalf("trial %d: OptimalDegreeExpense=%d, naive=%d", trial, got, want)
		}
		q := quantiles[trial%len(quantiles)]
		got, err := m.OptimalDegreeForQuantile(c, q, w)
		if err != nil {
			t.Fatalf("trial %d: ForQuantile: %v", trial, err)
		}
		if want := naiveArgminRegret(m, c, q, 1, w); got != want {
			t.Fatalf("trial %d: ForQuantile(q=%g)=%d, naive=%d (m=%+v c=%d w=%+v)",
				trial, q, got, want, m, c, w)
		}
		plan, err := m.PlanFor(c, w)
		if err != nil {
			t.Fatalf("trial %d: PlanFor: %v", trial, err)
		}
		if want := naivePlanFor(m, c, w); plan != want {
			t.Fatalf("trial %d: PlanFor=%+v, naive=%+v", trial, plan, want)
		}

		// The Planner's cached path must agree with the Models path, on the
		// first call and on cache hits.
		for pass := 0; pass < 2; pass++ {
			pplan, err := pl.PlanFor(c, w)
			if err != nil || pplan != plan {
				t.Fatalf("trial %d pass %d: Planner.PlanFor=%+v (%v), Models=%+v", trial, pass, pplan, err, plan)
			}
			pdeg, err := pl.OptimalDegreeForQuantile(c, q, w)
			if err != nil || pdeg != got {
				t.Fatalf("trial %d pass %d: Planner.ForQuantile=%d (%v), Models=%d", trial, pass, pdeg, err, got)
			}
		}
	}
}

func TestConstrainedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		m := randModels(r)
		c := 1 + r.Intn(20000)
		w := randWeights(r)
		maxInst := r.Intn(2*c) - c/2 // includes ≤0 (unconstrained) and infeasibly tight
		got, gotErr := m.OptimalDegreeConstrained(c, w, maxInst)

		minDeg := 1
		wantErr := false
		if maxInst > 0 {
			minDeg = (c + maxInst - 1) / maxInst
			wantErr = minDeg > m.MaxDegree
		}
		if wantErr {
			if gotErr == nil {
				t.Fatalf("trial %d: want infeasibility error, got degree %d", trial, got)
			}
			continue
		}
		if gotErr != nil {
			t.Fatalf("trial %d: unexpected error %v", trial, gotErr)
		}
		if want := naiveArgminRegret(m, c, 100, minDeg, w); got != want {
			t.Fatalf("trial %d: Constrained=%d, naive=%d (c=%d maxInst=%d minDeg=%d)",
				trial, got, want, c, maxInst, minDeg)
		}
		pgot, err := NewPlanner(m).OptimalDegreeConstrained(c, w, maxInst)
		if err != nil || pgot != got {
			t.Fatalf("trial %d: Planner.Constrained=%d (%v), Models=%d", trial, pgot, err, got)
		}
	}
}

func TestQoSSearchMatchesNaiveGrid(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	steps := []float64{0, 0.05, 0.1, 0.25, 0.3, 0.7, 1}
	for trial := 0; trial < 400; trial++ {
		m := randModels(r)
		c := 1 + r.Intn(20000)
		opts := QoSOptions{Step: steps[trial%len(steps)]}
		if r.Float64() < 0.3 {
			opts.TailQuantile = 50 + 50*r.Float64()
		}

		// Aim bounds across the whole feasibility spectrum: below the best
		// achievable tail (infeasible), between best and worst, and above.
		tailQ := opts.TailQuantile
		if tailQ == 0 {
			tailQ = 95
		}
		bestDeg := naiveArgminRegret(m, c, 100, 1, ServiceOnly())
		worstDeg := naiveArgminRegret(m, c, 100, 1, ExpenseOnly())
		lo := m.ServiceTimeQuantile(c, bestDeg, tailQ)
		hi := m.ServiceTimeQuantile(c, worstDeg, tailQ)
		qos := lo*0.5 + r.Float64()*(hi*1.5-lo*0.5)
		if qos <= 0 {
			qos = lo + 1
		}

		want, wantErr := naiveQoSWeights(m, c, qos, opts)
		got, gotErr := m.QoSWeights(c, qos, opts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: error mismatch: got %v, naive %v (qos=%g c=%d step=%g)",
				trial, gotErr, wantErr, qos, c, opts.Step)
		}
		if gotErr != nil {
			if !errors.Is(gotErr, ErrQoSInfeasible) || !errors.Is(wantErr, ErrQoSInfeasible) {
				t.Fatalf("trial %d: wrong error kind: got %v, naive %v", trial, gotErr, wantErr)
			}
			continue
		}
		if got != want {
			t.Fatalf("trial %d: QoSWeights=%+v, naive=%+v (qos=%g c=%d step=%g)",
				trial, got, want, qos, c, opts.Step)
		}

		// QoSPlan must pick the plan at exactly those weights, and the
		// Planner path must agree verbatim.
		plan, pw, err := m.QoSPlan(c, qos, opts)
		if err != nil || pw != want {
			t.Fatalf("trial %d: QoSPlan weights=%+v (%v), want %+v", trial, pw, err, want)
		}
		if wantPlan := naivePlanFor(m, c, want); plan != wantPlan {
			t.Fatalf("trial %d: QoSPlan plan=%+v, naive=%+v", trial, plan, wantPlan)
		}
		pl := NewPlanner(m)
		plPlan, plW, err := pl.QoSPlan(c, qos, opts)
		if err != nil || plW != want || plPlan != plan {
			t.Fatalf("trial %d: Planner.QoSPlan=(%+v,%+v,%v), want (%+v,%+v)",
				trial, plPlan, plW, err, plan, want)
		}
	}
}

func TestTailServiceAtMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		m := randModels(r)
		c := 1 + r.Intn(20000)
		w := randWeights(r)
		tailQ := 50 + 50*r.Float64()
		got, err := m.TailServiceAt(c, w, tailQ)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		deg := naiveArgminRegret(m, c, 100, 1, w)
		if want := m.ServiceTimeQuantile(c, deg, tailQ); got != want {
			t.Fatalf("trial %d: TailServiceAt=%g, naive=%g", trial, got, want)
		}
		pgot, err := NewPlanner(m).TailServiceAt(c, w, tailQ)
		if err != nil || pgot != got {
			t.Fatalf("trial %d: Planner.TailServiceAt=%g (%v), Models=%g", trial, pgot, err, got)
		}
	}
}

func TestDegreeTableAccessorsMatchModels(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		m := randModels(r)
		c := 1 + r.Intn(20000)
		tbl, err := NewDegreeTable(m, c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		q := 50 + 50*r.Float64()
		for d := 1; d <= m.MaxDegree; d++ {
			if got, want := tbl.ServiceTime(d), m.ServiceTime(c, d); got != want {
				t.Fatalf("trial %d d=%d: ServiceTime %g != %g", trial, d, got, want)
			}
			if got, want := tbl.Expense(d), m.Expense(c, d); got != want {
				t.Fatalf("trial %d d=%d: Expense %g != %g", trial, d, got, want)
			}
			if got, want := tbl.ServiceTimeQuantile(d, q), m.ServiceTimeQuantile(c, d, q); got != want {
				t.Fatalf("trial %d d=%d: Quantile(%g) %g != %g", trial, d, q, got, want)
			}
			if got, want := tbl.ServiceTimeQuantile(d, 100), m.ServiceTime(c, d); got != want {
				t.Fatalf("trial %d d=%d: Quantile(100) %g != ServiceTime %g", trial, d, got, want)
			}
		}
	}
}

func TestTableCacheLRU(t *testing.T) {
	m := Models{
		ET:                 ETModel{MfuncGB: 0.5, Alpha: 0.3},
		Scaling:            ScalingModel{B1: 1e-6, B2: 0.004, B3: 0.1},
		RatePerInstanceSec: 1e-4,
		MaxDegree:          8,
	}
	tc := NewTableCache(m, 2)
	t1, _ := tc.Table(100)
	t2, _ := tc.Table(200)
	if tc.Len() != 2 {
		t.Fatalf("len=%d, want 2", tc.Len())
	}
	// Touch 100 so 200 becomes the LRU victim.
	if again, _ := tc.Table(100); again != t1 {
		t.Fatal("cache hit should return the same table")
	}
	t3, _ := tc.Table(300)
	if tc.Len() != 2 {
		t.Fatalf("len=%d after eviction, want 2", tc.Len())
	}
	if again, _ := tc.Table(100); again != t1 {
		t.Fatal("100 should have survived the eviction")
	}
	if again, _ := tc.Table(300); again != t3 {
		t.Fatal("300 should be cached")
	}
	if again, _ := tc.Table(200); again == t2 {
		t.Fatal("200 should have been evicted and rebuilt")
	}
	if _, err := tc.Table(0); err == nil {
		t.Fatal("want error for concurrency 0")
	}
}

// --- PlanMixed equivalence ---------------------------------------------------

// naiveMixedCand is a fully materialized candidate, as the pre-table
// heterogeneous sweep built them.
type naiveMixedCand struct {
	strategy   string
	bins       [][]int
	serviceSec float64
	expenseUSD float64
}

// naivePlanMixed is a verbatim re-expression of the pre-optimization
// PlanMixed: every instance count materializes its full count matrix and
// re-runs PredictMixedET per bin; every degree combination recomputes each
// app's values at the leaf.
func naivePlanMixed(apps []App, opts MixedPlanOptions) (MixedPlan, error) {
	if len(apps) == 0 {
		return MixedPlan{}, fmt.Errorf("core: no apps to plan")
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return MixedPlan{}, err
		}
	}
	if err := opts.Weights.Validate(); err != nil {
		return MixedPlan{}, err
	}
	if opts.InstanceMemoryMB <= 0 || opts.MaxExecSec <= 0 || opts.RatePerInstanceSec < 0 ||
		opts.CrossDiscount < 0 || opts.CrossDiscount > 1 {
		return MixedPlan{}, fmt.Errorf("core: invalid mixed-plan options %+v", opts)
	}
	var cands []naiveMixedCand

	totalFuncs := 0
	var totalMem float64
	for _, a := range apps {
		totalFuncs += a.Count
		totalMem += float64(a.Count) * a.MemoryMB
	}
	minBins := int(math.Ceil(totalMem / opts.InstanceMemoryMB))
	if minBins < 1 {
		minBins = 1
	}
	for b := minBins; b <= totalFuncs; b++ {
		counts := dealCounts(apps, b)
		feasible := true
		var maxET, sumET float64
		for _, binCounts := range counts {
			var mem float64
			for k, n := range binCounts {
				mem += float64(n) * apps[k].MemoryMB
			}
			if mem > opts.InstanceMemoryMB {
				feasible = false
				break
			}
			et := PredictMixedET(apps, binCounts, opts.CrossDiscount)
			if et > opts.MaxExecSec {
				feasible = false
				break
			}
			sumET += et
			if et > maxET {
				maxET = et
			}
		}
		if !feasible {
			continue
		}
		cands = append(cands, naiveMixedCand{
			strategy:   "mixed",
			bins:       counts,
			serviceSec: maxET + opts.Scaling.At(float64(b)),
			expenseUSD: sumET * opts.RatePerInstanceSec,
		})
	}

	maxDegs := make([]int, len(apps))
	segFeasible := true
	for k, a := range apps {
		md := int(opts.InstanceMemoryMB / a.MemoryMB)
		for md > 1 && a.ET.At(md) > opts.MaxExecSec {
			md--
		}
		if md < 1 {
			segFeasible = false
			break
		}
		maxDegs[k] = md
	}
	if segFeasible {
		degrees := make([]int, len(apps))
		var walk func(k int)
		walk = func(k int) {
			if k == len(apps) {
				bins := 0
				var maxET, sumET float64
				for i, a := range apps {
					d := degrees[i]
					n := (a.Count + d - 1) / d
					bins += n
					et := a.ET.At(d)
					sumET += float64(n) * et
					if et > maxET {
						maxET = et
					}
				}
				chosen := append([]int(nil), degrees...)
				cands = append(cands, naiveMixedCand{
					strategy:   "segregated",
					bins:       segregatedBins(apps, chosen),
					serviceSec: maxET + opts.Scaling.At(float64(bins)),
					expenseUSD: sumET * opts.RatePerInstanceSec,
				})
				return
			}
			for d := 1; d <= maxDegs[k]; d++ {
				degrees[k] = d
				walk(k + 1)
			}
		}
		walk(0)
	}
	if len(cands) == 0 {
		return MixedPlan{}, fmt.Errorf("core: no feasible heterogeneous packing (memory or latency bound)")
	}
	bestS, bestE := math.Inf(1), math.Inf(1)
	for _, c := range cands {
		bestS = math.Min(bestS, c.serviceSec)
		bestE = math.Min(bestE, c.expenseUSD)
	}
	var best naiveMixedCand
	bestVal := math.Inf(1)
	for _, c := range cands {
		v := opts.Weights.Service*(c.serviceSec-bestS)/bestS +
			opts.Weights.Expense*(c.expenseUSD-bestE)/bestE
		if v < bestVal {
			best, bestVal = c, v
		}
	}
	return MixedPlan{
		Apps:                apps,
		BinCounts:           best.bins,
		Strategy:            best.strategy,
		PredictedServiceSec: best.serviceSec,
		PredictedExpenseUSD: best.expenseUSD,
	}, nil
}

func randMixedCase(r *rand.Rand) ([]App, MixedPlanOptions) {
	k := 1 + r.Intn(3)
	apps := make([]App, k)
	for i := range apps {
		mem := 128 + float64(r.Intn(8))*128
		alpha := 0.05 + 0.4*r.Float64()
		if r.Float64() < 0.15 {
			alpha = -alpha
		}
		apps[i] = App{
			Name:     fmt.Sprintf("app%d", i),
			MemoryMB: mem,
			Count:    1 + r.Intn(50),
			ET:       ETModel{MfuncGB: mem / 1024, Alpha: alpha, Intercept: r.Float64()},
		}
	}
	opts := MixedPlanOptions{
		InstanceMemoryMB:   2048 + float64(r.Intn(8))*1024,
		MaxExecSec:         20 + 900*r.Float64(),
		Weights:            randWeights(r),
		Scaling:            ScalingModel{B1: r.Float64() * 1e-5, B2: r.Float64() * 0.01, B3: r.Float64() * 0.3},
		RatePerInstanceSec: r.Float64() * 1e-3,
		CrossDiscount:      r.Float64() * 0.6,
	}
	return apps, opts
}

func TestPlanMixedMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	feasible, infeasible := 0, 0
	for trial := 0; trial < 150; trial++ {
		apps, opts := randMixedCase(r)
		got, gotErr := PlanMixed(apps, opts)
		want, wantErr := naivePlanMixed(apps, opts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d: error mismatch: got %v, naive %v (apps=%+v opts=%+v)",
				trial, gotErr, wantErr, apps, opts)
		}
		if gotErr != nil {
			infeasible++
			continue
		}
		feasible++
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: PlanMixed=%+v, naive=%+v (apps=%+v opts=%+v)",
				trial, got, want, apps, opts)
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible trials — generator too tight to test anything")
	}
	t.Logf("feasible=%d infeasible=%d", feasible, infeasible)
}

// --- allocation regressions --------------------------------------------------

func TestPlanForAllocs(t *testing.T) {
	m := Models{
		ET:                 ETModel{MfuncGB: 0.5, Alpha: 0.3, Intercept: 0.2},
		Scaling:            ScalingModel{B1: 2e-6, B2: 0.004, B3: 0.1},
		RatePerInstanceSec: 0.0001667,
		MaxDegree:          20,
	}
	w := Balanced()
	pl := NewPlanner(m)
	if _, err := pl.PlanFor(5000, w); err != nil {
		t.Fatal(err)
	}
	// Steady state: the table is cached, the scan is allocation-free.
	if got := testing.AllocsPerRun(200, func() {
		if _, err := pl.PlanFor(5000, w); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("Planner.PlanFor allocates %.0f objects per call in steady state, want 0", got)
	}
	// Uncached: one table build — a handful of allocations, not O(MaxDegree).
	if got := testing.AllocsPerRun(200, func() {
		if _, err := m.PlanFor(5000, w); err != nil {
			t.Error(err)
		}
	}); got > 4 {
		t.Errorf("Models.PlanFor allocates %.0f objects per call, want ≤ 4", got)
	}
}
