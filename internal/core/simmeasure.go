package core

import (
	"errors"
	"fmt"

	"repro/internal/interfere"
	"repro/internal/platform"
)

// SimMeasurer adapts the datacenter simulator to the Measurer interface:
// interference probes run one real instance of the application; scaling
// probes spawn bursts of no-op functions (scaling time is independent of
// the application, so no workload code is needed — Sec. 2.2).
type SimMeasurer struct {
	Config platform.Config
	Demand interfere.Demand
	Seed   int64

	calls int64 // distinct jitter per repeated probe of the same degree

	lastStorageUSD float64
}

var (
	_ Measurer           = (*SimMeasurer)(nil)
	_ ConcurrentMeasurer = (*SimMeasurer)(nil)
)

// MeasureExec implements Measurer by running a single instance packed at
// the given degree. A degree whose execution would exceed the platform's
// limit is reported as ErrDegreeInfeasible so BuildModels can lower
// P_max^deg.
func (s *SimMeasurer) MeasureExec(degree int) (float64, error) {
	s.calls++
	et, storage, err := s.execProbe(degree, s.calls)
	if err != nil {
		return 0, err
	}
	s.lastStorageUSD = storage
	return et, nil
}

// MeasureExecCall implements ConcurrentMeasurer: the call-th probe of a
// probe train, as a pure function of (degree, call) — safe to run from any
// goroutine in any order. The probe seed is exactly the one the call-th
// sequential MeasureExec would have drawn, so the concurrent fan-out is
// bit-identical to the sequential train.
func (s *SimMeasurer) MeasureExecCall(degree, call int) (float64, float64, error) {
	return s.execProbe(degree, s.calls+int64(call))
}

// AdvanceCalls implements ConcurrentMeasurer: after a fanned-out probe
// train, the call counter catches up to where the sequential train would
// have left it, keeping later direct MeasureExec calls (the ablation
// drivers' truth probes) on the historical seed schedule.
func (s *SimMeasurer) AdvanceCalls(n int) { s.calls += int64(n) }

// execProbe runs one interference probe with the seed schedule shared by
// the sequential and concurrent probe paths.
func (s *SimMeasurer) execProbe(degree int, call int64) (float64, float64, error) {
	res, err := platform.Run(s.Config, platform.Burst{
		Demand:    s.Demand,
		Functions: degree,
		Degree:    degree,
		Seed:      s.Seed + int64(degree) + 7907*call,
	})
	if errors.Is(err, platform.ErrExecLimit) {
		return 0, 0, fmt.Errorf("%w: %v", ErrDegreeInfeasible, err)
	}
	if err != nil {
		return 0, 0, err
	}
	return res.MeanExecSeconds(), res.StorageUSD + res.RequestUSD, nil
}

// LastProbeStorageUSD implements CostMeasurer: the non-compute bill of the
// most recent interference probe.
func (s *SimMeasurer) LastProbeStorageUSD() float64 { return s.lastStorageUSD }

// nopDemand is the trivial function used for scaling probes: near-zero
// work, minimal memory.
func nopDemand() interfere.Demand {
	return interfere.Demand{CPUSeconds: 0.1, MemoryMB: 128}
}

// MeasureScaling implements Measurer by spawning a burst of no-op
// instances and timing until the last one starts.
func (s *SimMeasurer) MeasureScaling(instances int) (float64, error) {
	res, err := platform.Run(s.Config, platform.Burst{
		Demand:    nopDemand(),
		Functions: instances,
		Degree:    1,
		Seed:      s.Seed + int64(instances)*7919,
	})
	if err != nil {
		return 0, err
	}
	return res.ScalingTime(), nil
}

// ProfileOptionsFor derives the standard ProfileOptions for an application
// demand on a platform: MaxDegree from the memory constraint, R from the
// billed memory and GB·second price.
func ProfileOptionsFor(cfg platform.Config, d interfere.Demand) ProfileOptions {
	return ProfileOptions{
		MaxDegree:          cfg.Shape.MaxDegree(d),
		MfuncGB:            d.MemoryMB / 1024,
		RatePerInstanceSec: cfg.MemoryGB() * cfg.GBSecondUSD,
	}
}

// GridProbesFor derives the per-size probing setups BuildGridModels needs
// for an application demand across platform memory sizes: each size resizes
// the platform with WithMemory (CPU share and memory bandwidth scale with
// purchased memory, exactly Lambda's coupling) and derives its own
// ProfileOptions there — per-size MaxDegree (fewer functions fit a smaller
// instance) and per-size expense rate (smaller instances bill less per
// second). Sizes must be strictly increasing and small enough that the
// demand still fits (MaxDegree ≥ 1).
func GridProbesFor(cfg platform.Config, d interfere.Demand, sizesMB []float64, seed int64) ([]SizeProbe, error) {
	if len(sizesMB) == 0 {
		return nil, fmt.Errorf("core: empty memory size grid")
	}
	probes := make([]SizeProbe, 0, len(sizesMB))
	for i, mb := range sizesMB {
		if i > 0 && mb <= sizesMB[i-1] {
			return nil, fmt.Errorf("%w: %g MB after %g MB", ErrNonMonotoneSizes, mb, sizesMB[i-1])
		}
		scfg, err := cfg.WithMemory(mb)
		if err != nil {
			return nil, fmt.Errorf("core: memory size %g MB: %w", mb, err)
		}
		opts := ProfileOptionsFor(scfg, d)
		if opts.MaxDegree < 1 {
			return nil, fmt.Errorf("core: memory size %g MB cannot fit the %g MB demand", mb, d.MemoryMB)
		}
		probes = append(probes, SizeProbe{
			MemMB: mb,
			Meas:  &SimMeasurer{Config: scfg, Demand: d, Seed: seed},
			Opts:  opts,
		})
	}
	return probes, nil
}
