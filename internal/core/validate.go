package core

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// ErrNonMonotoneSizes is returned when a memory-size grid is not strictly
// increasing. The joint planner's row bounds, the baseline convention
// (largest size last), and the probe schedule all assume an ordered grid,
// so a shuffled or duplicated grid is rejected up front rather than
// silently producing a misbaselined plan.
var ErrNonMonotoneSizes = errors.New("core: memory size grid not strictly increasing")

// Validate reports an error if the grid cannot be planned over: it must be
// non-empty, strictly increasing in memory size, and every size's models
// must validate (errors name the offending size).
func (g GridModels) Validate() error {
	if len(g.Sizes) == 0 {
		return fmt.Errorf("core: empty memory size grid")
	}
	for i, s := range g.Sizes {
		if s.MemMB <= 0 {
			return fmt.Errorf("core: non-positive memory size %g MB", s.MemMB)
		}
		if i > 0 && s.MemMB <= g.Sizes[i-1].MemMB {
			return fmt.Errorf("%w: %g MB after %g MB", ErrNonMonotoneSizes, s.MemMB, g.Sizes[i-1].MemMB)
		}
		if err := s.Models.Validate(); err != nil {
			return fmt.Errorf("core: memory size %g MB: %w", s.MemMB, err)
		}
	}
	return nil
}

// The paper's validation setup (Sec. 2.4): 14 degrees of freedom (15 − 1,
// from the Sort application's 15 packing degrees — the smallest maximum in
// the suite) at 99.5% confidence, giving a critical value of ≈4.075.
const (
	PaperValidationDF       = 14
	PaperValidationLeftTail = 0.005
)

// Validation is the outcome of the Pearson χ² goodness-of-fit test of one
// modeled quantity against observations across packing degrees.
type Validation struct {
	Quantity string
	stats.GoodnessOfFit
}

func (v Validation) String() string {
	verdict := "ACCEPT"
	if !v.Accepted {
		verdict = "REJECT"
	}
	return fmt.Sprintf("%s: χ²=%.4g ≤ crit=%.4g (df=%d) → %s",
		v.Quantity, v.Stat, v.Critical, v.DF, verdict)
}

// Observation is a measured (service time, expense) pair at one packing
// degree and concurrency, produced by actually running the application.
type Observation struct {
	Degree     int
	ServiceSec float64
	ExpenseUSD float64
}

// ValidateModels runs the paper's χ² test: for each observation, the
// expected value comes from the analytical models at the same concurrency
// and degree; the statistic is compared against the χ² critical value at
// 99.5% confidence with df degrees of freedom (pass PaperValidationDF to
// match the paper exactly).
func (m Models) ValidateModels(c int, obs []Observation, df int) (service, expense Validation, err error) {
	if len(obs) == 0 {
		return Validation{}, Validation{}, fmt.Errorf("core: no observations to validate against")
	}
	obsS := make([]float64, len(obs))
	expS := make([]float64, len(obs))
	obsE := make([]float64, len(obs))
	expE := make([]float64, len(obs))
	for i, o := range obs {
		if o.Degree < 1 {
			return Validation{}, Validation{}, fmt.Errorf("core: observation with degree %d", o.Degree)
		}
		obsS[i] = o.ServiceSec
		expS[i] = m.ServiceTime(c, o.Degree)
		obsE[i] = o.ExpenseUSD
		expE[i] = m.Expense(c, o.Degree)
	}
	gofS, err := stats.ChiSquareTest(obsS, expS, df, PaperValidationLeftTail)
	if err != nil {
		return Validation{}, Validation{}, fmt.Errorf("core: service-time χ²: %w", err)
	}
	gofE, err := stats.ChiSquareTest(obsE, expE, df, PaperValidationLeftTail)
	if err != nil {
		return Validation{}, Validation{}, fmt.Errorf("core: expense χ²: %w", err)
	}
	return Validation{Quantity: "service time", GoodnessOfFit: gofS},
		Validation{Quantity: "expense", GoodnessOfFit: gofE}, nil
}
