package core

import (
	"math"
	"sync"
	"sync/atomic"
)

// The sharded lock-free cache behind TableCache, made generic so the joint
// planner's GridCache shares the exact machinery (and its concurrency
// proofs) instead of a copy. Semantics are unchanged from the original
// TableCache implementation:
//
//   - The serving path is lock free: a hit loads an immutable map snapshot
//     through an atomic pointer and bumps the entry's recency stamp with an
//     atomic store.
//   - Misses take a per-shard mutex only to install a placeholder in a
//     fresh snapshot; the value is built outside every lock, and concurrent
//     requests for the same key coalesce on the placeholder (singleflight),
//     so a stampede builds each value exactly once.
//   - Capacity is apportioned across shards (LRU per shard); capacities too
//     small to split (< 2·cacheShards) keep a single shard and therefore
//     exact global LRU order.
//
// The build function is fixed at construction — not passed per call — so
// the hit path allocates nothing, not even a closure.

// cacheShards is the shard count for caches large enough to split.
const cacheShards = 16

// shardedCache is an integer-keyed sharded LRU with a lock-free read path
// and singleflight builds. T is the cached value type.
type shardedCache[T any] struct {
	shards []cacheShard[T]
	tick   atomic.Uint64 // global recency clock, shared by all shards
	builds atomic.Uint64 // values actually constructed (singleflight audit)
	build  func(key int) *T
}

type cacheShard[T any] struct {
	read atomic.Pointer[map[int]*cacheEntry[T]] // immutable snapshot; copy-on-write
	mu   sync.Mutex                             // guards snapshot replacement
	cap  int
}

// cacheEntry is one cached (or in-flight) value. ready is closed once v is
// set; hitters on an in-flight entry wait on it instead of rebuilding.
type cacheEntry[T any] struct {
	used  atomic.Uint64
	ready chan struct{}
	v     atomic.Pointer[T]
}

// newShardedCache builds a cache of the given capacity (must be ≥ 1) whose
// misses are filled by build.
func newShardedCache[T any](capacity int, build func(key int) *T) *shardedCache[T] {
	n := cacheShards
	if capacity < 2*cacheShards {
		n = 1 // too small to split: keep exact global LRU
	}
	sc := &shardedCache[T]{shards: make([]cacheShard[T], n), build: build}
	perShard := (capacity + n - 1) / n
	for i := range sc.shards {
		sc.shards[i].cap = perShard
		empty := make(map[int]*cacheEntry[T])
		sc.shards[i].read.Store(&empty)
	}
	return sc
}

// shardOf maps a key to its shard via SplitMix64-style mixing, so
// arithmetic sweeps (100, 200, 300, …) spread instead of clustering.
func (sc *shardedCache[T]) shardOf(key int) *cacheShard[T] {
	if len(sc.shards) == 1 {
		return &sc.shards[0]
	}
	z := uint64(key) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &sc.shards[z%uint64(len(sc.shards))]
}

// get returns the (possibly cached) value for key, building it at most once
// per residency no matter how many goroutines race.
func (sc *shardedCache[T]) get(key int) *T {
	sh := sc.shardOf(key)
	if e, ok := (*sh.read.Load())[key]; ok {
		return sc.hit(e)
	}
	sh.mu.Lock()
	snap := *sh.read.Load()
	if e, ok := snap[key]; ok {
		sh.mu.Unlock()
		return sc.hit(e)
	}
	// Install an in-flight placeholder in a fresh snapshot, then build the
	// value outside the lock so other shard keys proceed undisturbed and
	// same-key callers coalesce on the placeholder.
	e := &cacheEntry[T]{ready: make(chan struct{})}
	e.used.Store(sc.tick.Add(1))
	next := make(map[int]*cacheEntry[T], len(snap)+1)
	for k, v := range snap {
		next[k] = v
	}
	if len(next) >= sh.cap {
		evict, oldest := 0, uint64(math.MaxUint64)
		for k, v := range next {
			if u := v.used.Load(); u < oldest {
				evict, oldest = k, u
			}
		}
		delete(next, evict)
	}
	next[key] = e
	sh.read.Store(&next)
	sh.mu.Unlock()

	v := sc.build(key)
	sc.builds.Add(1)
	e.v.Store(v)
	close(e.ready)
	return v
}

// hit bumps an entry's recency and returns its value, waiting out an
// in-flight build if necessary.
func (sc *shardedCache[T]) hit(e *cacheEntry[T]) *T {
	e.used.Store(sc.tick.Add(1))
	if v := e.v.Load(); v != nil {
		return v
	}
	<-e.ready
	return e.v.Load()
}

// len reports the number of cached values (for tests and diagnostics).
func (sc *shardedCache[T]) len() int {
	n := 0
	for i := range sc.shards {
		n += len(*sc.shards[i].read.Load())
	}
	return n
}
