package core

import (
	"reflect"
	"testing"

	"repro/internal/interfere"
	"repro/internal/platform"
)

// seqOnly hides SimMeasurer's ConcurrentMeasurer methods so BuildModels
// takes the historical sequential probe path — the oracle the parallel
// fan-out must reproduce bit-for-bit. CostMeasurer is forwarded so the
// storage fit stays part of the comparison.
type seqOnly struct {
	sm *SimMeasurer
}

func (s seqOnly) MeasureExec(degree int) (float64, error)  { return s.sm.MeasureExec(degree) }
func (s seqOnly) MeasureScaling(inst int) (float64, error) { return s.sm.MeasureScaling(inst) }
func (s seqOnly) LastProbeStorageUSD() float64             { return s.sm.LastProbeStorageUSD() }

var (
	_ Measurer     = seqOnly{}
	_ CostMeasurer = seqOnly{}
)

func probeTestConfig() (platform.Config, interfere.Demand) {
	cfg := platform.AWSLambda()
	d := interfere.Demand{
		CPUSeconds: 20, MemoryMB: 256, InputMB: 40, OutputMB: 10,
		ShuffleFraction: 0.3,
	}
	return cfg, d
}

// buildAll runs BuildModels and returns everything it produced, failing the
// test on error.
func buildAll(t *testing.T, meas Measurer, opts ProfileOptions) (Models, []ETSample, []ScalingSample, Overhead) {
	t.Helper()
	m, et, sc, ov, err := BuildModels(meas, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, et, sc, ov
}

// TestConcurrentProbeEquivalence locks in the tentpole determinism
// contract: the concurrent probe fan-out produces byte-identical models,
// samples, and overhead for every worker count — and to the sequential
// train a plain Measurer gets.
func TestConcurrentProbeEquivalence(t *testing.T) {
	cfg, d := probeTestConfig()
	opts := ProfileOptionsFor(cfg, d)

	seqOpts := opts
	seqOpts.Workers = 1
	wantM, wantET, wantSC, wantOV := buildAll(t,
		seqOnly{&SimMeasurer{Config: cfg, Demand: d, Seed: 1}}, seqOpts)

	for _, workers := range []int{0, 1, 2, 4, 8, 17} {
		o := opts
		o.Workers = workers
		gotM, gotET, gotSC, gotOV := buildAll(t,
			&SimMeasurer{Config: cfg, Demand: d, Seed: 1}, o)
		if gotM != wantM {
			t.Fatalf("workers=%d: models differ:\n got %+v\nwant %+v", workers, gotM, wantM)
		}
		if !reflect.DeepEqual(gotET, wantET) {
			t.Fatalf("workers=%d: ET samples differ", workers)
		}
		if !reflect.DeepEqual(gotSC, wantSC) {
			t.Fatalf("workers=%d: scaling samples differ", workers)
		}
		if gotOV != wantOV {
			t.Fatalf("workers=%d: overhead differs:\n got %+v\nwant %+v", workers, gotOV, wantOV)
		}
	}
}

// TestConcurrentProbeInfeasibleTruncation covers the early-stop path: when
// the platform's execution limit caps the feasible degree, the concurrent
// fold must discover the same cap and discard speculative probes past it —
// including their overhead.
func TestConcurrentProbeInfeasibleTruncation(t *testing.T) {
	cfg, d := probeTestConfig()
	cfg.MaxExecSec = 60 // high packing degrees blow the limit
	opts := ProfileOptionsFor(cfg, d)

	seqOpts := opts
	seqOpts.Workers = 1
	wantM, wantET, wantSC, wantOV := buildAll(t,
		seqOnly{&SimMeasurer{Config: cfg, Demand: d, Seed: 1}}, seqOpts)
	if wantM.MaxDegree >= opts.MaxDegree {
		t.Fatalf("test config not truncating: MaxDegree %d of %d", wantM.MaxDegree, opts.MaxDegree)
	}

	for _, workers := range []int{0, 2, 8} {
		o := opts
		o.Workers = workers
		gotM, gotET, gotSC, gotOV := buildAll(t,
			&SimMeasurer{Config: cfg, Demand: d, Seed: 1}, o)
		if gotM != wantM || gotOV != wantOV ||
			!reflect.DeepEqual(gotET, wantET) || !reflect.DeepEqual(gotSC, wantSC) {
			t.Fatalf("workers=%d: truncated build differs from sequential", workers)
		}
	}
}

// TestConcurrentProbeCallCounterContinuity checks AdvanceCalls: a direct
// MeasureExec after a fanned-out BuildModels must draw the same probe seed
// as it would after the sequential train (the ablation drivers interleave
// exactly this way).
func TestConcurrentProbeCallCounterContinuity(t *testing.T) {
	cfg, d := probeTestConfig()
	opts := ProfileOptionsFor(cfg, d)

	seqMeas := &SimMeasurer{Config: cfg, Demand: d, Seed: 1}
	seqOpts := opts
	seqOpts.Workers = 1
	buildAll(t, seqOnly{seqMeas}, seqOpts)

	parMeas := &SimMeasurer{Config: cfg, Demand: d, Seed: 1}
	parOpts := opts
	parOpts.Workers = 4
	buildAll(t, parMeas, parOpts)

	if seqMeas.calls != parMeas.calls {
		t.Fatalf("call counter diverged: sequential %d, concurrent %d", seqMeas.calls, parMeas.calls)
	}
	for _, deg := range []int{1, 3, 5} {
		want, errW := seqMeas.MeasureExec(deg)
		got, errG := parMeas.MeasureExec(deg)
		if errW != nil || errG != nil {
			t.Fatalf("truth probe errors: %v, %v", errW, errG)
		}
		if got != want {
			t.Fatalf("degree %d truth probe diverged: %g != %g", deg, got, want)
		}
	}
}
