package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestBuildGridModelsRecoversFakes drives the grid pipeline with closed-form
// measurers at three sizes and checks the assembly contract: per-size α and
// rate, one shared scaling model fitted from the base (largest) size only,
// and a grid that validates.
func TestBuildGridModelsRecoversFakes(t *testing.T) {
	mkFake := func(alpha float64) *fakeMeasurer {
		return &fakeMeasurer{
			et: ETModel{MfuncGB: 0.25, Alpha: alpha, Intercept: 4},
			sc: ScalingModel{B1: 2e-5, B2: 0.01, B3: 0},
		}
	}
	fakes := []*fakeMeasurer{mkFake(0.45), mkFake(0.25), mkFake(0.15)}
	probes := []SizeProbe{
		{MemMB: 2048, Meas: fakes[0], Opts: ProfileOptions{MaxDegree: 10, MfuncGB: 0.25, RatePerInstanceSec: 2e-5}},
		{MemMB: 4096, Meas: fakes[1], Opts: ProfileOptions{MaxDegree: 20, MfuncGB: 0.25, RatePerInstanceSec: 4e-5}},
		{MemMB: 8192, Meas: fakes[2], Opts: ProfileOptions{MaxDegree: 40, MfuncGB: 0.25, RatePerInstanceSec: 8e-5}},
	}
	g, ov, err := BuildGridModels(probes)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("built grid does not validate: %v", err)
	}
	if len(g.Sizes) != 3 {
		t.Fatalf("grid has %d sizes, want 3", len(g.Sizes))
	}
	wantAlpha := []float64{0.45, 0.25, 0.15}
	for i, s := range g.Sizes {
		approx(t, s.Models.ET.Alpha, wantAlpha[i], 1e-9, "per-size α")
		if s.Models.RatePerInstanceSec != probes[i].Opts.RatePerInstanceSec {
			t.Fatalf("size %g MB rate %g, want %g", s.MemMB, s.Models.RatePerInstanceSec, probes[i].Opts.RatePerInstanceSec)
		}
		// The scaling model is shared: one fit, stamped into every size.
		if s.Models.Scaling != g.Sizes[0].Models.Scaling {
			t.Fatalf("size %g MB has its own scaling model", s.MemMB)
		}
		approx(t, s.Models.Scaling.B1, 2e-5, 1e-10, "shared β1")
	}
	// Scaling was probed once, at the base size only.
	if fakes[0].scaleCalls != 0 || fakes[1].scaleCalls != 0 {
		t.Fatalf("scaling probed at non-base sizes: %d, %d", fakes[0].scaleCalls, fakes[1].scaleCalls)
	}
	if fakes[2].scaleCalls != len(DefaultScalingProbes()) {
		t.Fatalf("base size ran %d scaling probes, want %d", fakes[2].scaleCalls, len(DefaultScalingProbes()))
	}
	if ov.ScalingProbeSec <= 0 || ov.ExecProbeSec <= 0 {
		t.Fatalf("overhead not accounted: %+v", ov)
	}
	if b := g.Base(); b.ET.Alpha != g.Sizes[2].Models.ET.Alpha {
		t.Fatalf("Base() is not the largest size: %+v", b)
	}
}

// TestBuildGridModelsNamesFailingSize pins the satellite contract: a
// per-size fit failure surfaces stats.ErrNonFinite through errors.Is AND
// names the offending memory size in the message, so a multi-size probe run
// is debuggable without re-running every size.
func TestBuildGridModelsNamesFailingSize(t *testing.T) {
	good := &fakeMeasurer{
		et: ETModel{MfuncGB: 0.5, Alpha: 0.2, Intercept: 3},
		sc: ScalingModel{B1: 1e-5, B2: 0.01},
	}
	nan := measurerFunc{
		exec:  func(int) (float64, error) { return math.NaN(), nil },
		scale: func(int) (float64, error) { return 1, nil },
	}
	probes := []SizeProbe{
		{MemMB: 2048, Meas: good, Opts: ProfileOptions{MaxDegree: 10, MfuncGB: 0.5, RatePerInstanceSec: 1e-4}},
		{MemMB: 4096, Meas: nan, Opts: ProfileOptions{MaxDegree: 10, MfuncGB: 0.5, RatePerInstanceSec: 1e-4}},
	}
	_, _, err := BuildGridModels(probes)
	if !errors.Is(err, stats.ErrNonFinite) {
		t.Fatalf("got %v, want stats.ErrNonFinite", err)
	}
	if !strings.Contains(err.Error(), "4096 MB") {
		t.Fatalf("error %q does not name the failing memory size", err)
	}
	if strings.Contains(err.Error(), "2048") {
		t.Fatalf("error %q blames the healthy size", err)
	}
}

func TestBuildGridModelsRejectsBadSizeOrder(t *testing.T) {
	fm := &fakeMeasurer{et: ETModel{MfuncGB: 0.5, Alpha: 0.2, Intercept: 3},
		sc: ScalingModel{B1: 1e-5, B2: 0.01}}
	opts := ProfileOptions{MaxDegree: 10, MfuncGB: 0.5, RatePerInstanceSec: 1e-4}
	if _, _, err := BuildGridModels(nil); err == nil {
		t.Fatal("empty probe set accepted")
	}
	shuffled := []SizeProbe{{MemMB: 4096, Meas: fm, Opts: opts}, {MemMB: 2048, Meas: fm, Opts: opts}}
	if _, _, err := BuildGridModels(shuffled); !errors.Is(err, ErrNonMonotoneSizes) {
		t.Fatalf("shuffled sizes: got %v, want ErrNonMonotoneSizes", err)
	}
	dup := []SizeProbe{{MemMB: 2048, Meas: fm, Opts: opts}, {MemMB: 2048, Meas: fm, Opts: opts}}
	if _, _, err := BuildGridModels(dup); !errors.Is(err, ErrNonMonotoneSizes) {
		t.Fatalf("duplicate sizes: got %v, want ErrNonMonotoneSizes", err)
	}
}

// TestGridProbesForSimulator checks the simulator-side probe derivation:
// per-size platform resize, per-size degree caps and rates, and the typed
// rejections for bad size lists.
func TestGridProbesForSimulator(t *testing.T) {
	cfg := platform.AWSLambda()
	d := workload.Video{}.Demand()
	sizes := []float64{4096, 7168, 10240}
	probes, err := GridProbesFor(cfg, d, sizes, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != len(sizes) {
		t.Fatalf("got %d probes for %d sizes", len(probes), len(sizes))
	}
	for i, sp := range probes {
		if sp.MemMB != sizes[i] {
			t.Fatalf("probe %d at %g MB, want %g", i, sp.MemMB, sizes[i])
		}
		if sp.Opts.MaxDegree < 1 {
			t.Fatalf("probe %d has MaxDegree %d", i, sp.Opts.MaxDegree)
		}
		if i > 0 {
			if probes[i].Opts.MaxDegree < probes[i-1].Opts.MaxDegree {
				t.Fatalf("degree cap shrank with memory: %d then %d",
					probes[i-1].Opts.MaxDegree, probes[i].Opts.MaxDegree)
			}
			if probes[i].Opts.RatePerInstanceSec <= probes[i-1].Opts.RatePerInstanceSec {
				t.Fatalf("expense rate must grow with memory: %g then %g",
					probes[i-1].Opts.RatePerInstanceSec, probes[i].Opts.RatePerInstanceSec)
			}
		}
	}

	if _, err := GridProbesFor(cfg, d, nil, 1); err == nil {
		t.Fatal("empty size list accepted")
	}
	if _, err := GridProbesFor(cfg, d, []float64{4096, 2048}, 1); !errors.Is(err, ErrNonMonotoneSizes) {
		t.Fatalf("descending sizes: got %v, want ErrNonMonotoneSizes", err)
	}
	if _, err := GridProbesFor(cfg, d, []float64{4096, 1 << 20}, 1); err == nil {
		t.Fatal("size above the platform cap accepted")
	}
}

// TestBuildGridModelsSimEndToEnd profiles a small real grid on the
// simulator and checks the structure the joint planner relies on: more
// memory (more CPU share) means weaker interference (smaller α) and a
// higher per-second rate, and the joint plan picks a configuration from the
// grid.
func TestBuildGridModelsSimEndToEnd(t *testing.T) {
	cfg := platform.AWSLambda()
	d := workload.Video{}.Demand()
	probes, err := GridProbesFor(cfg, d, []float64{5120, 10240}, 42)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := BuildGridModels(probes)
	if err != nil {
		t.Fatal(err)
	}
	small, large := g.Sizes[0].Models, g.Sizes[1].Models
	if !(small.ET.Alpha > large.ET.Alpha) {
		t.Fatalf("interference should weaken with memory: α(5120)=%g, α(10240)=%g",
			small.ET.Alpha, large.ET.Alpha)
	}
	if !(small.RatePerInstanceSec < large.RatePerInstanceSec) {
		t.Fatalf("rate should grow with memory: %g vs %g",
			small.RatePerInstanceSec, large.RatePerInstanceSec)
	}
	if small.MaxDegree > large.MaxDegree {
		t.Fatalf("degree cap shrank with memory: %d vs %d", small.MaxDegree, large.MaxDegree)
	}
	plan, err := g.PlanJointFor(5000, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	if plan.MemMB != 5120 && plan.MemMB != 10240 {
		t.Fatalf("joint plan picked off-grid memory %g", plan.MemMB)
	}
	if plan.Degree < 1 || plan.Degree > g.Sizes[1].Models.MaxDegree {
		t.Fatalf("joint plan degree %d out of range", plan.Degree)
	}
}
