package core

import (
	"sync"
	"testing"
)

// stressModels is a fixed, valid model set for the concurrency stress
// tests.
func stressModels() Models {
	return Models{
		ET:                 ETModel{MfuncGB: 0.5, Alpha: 0.3, Intercept: 2},
		Scaling:            ScalingModel{B1: 1e-6, B2: 0.004, B3: 0.1},
		RatePerInstanceSec: 1e-4,
		MaxDegree:          24,
	}
}

// TestConcurrentPlannerStress hammers one shared Planner from many
// goroutines mixing every cached entry point over an overlapping set of
// concurrency levels, then checks (under -race) that every answer equals a
// fresh single-threaded planner's and that singleflight built each table
// exactly once despite the stampede.
func TestConcurrentPlannerStress(t *testing.T) {
	m := stressModels()
	concurrencies := []int{100, 500, 1000, 2500, 5000, 7500, 10000, 20000}
	weights := []Weights{ServiceOnly(), ExpenseOnly(), {Service: 0.5, Expense: 0.5}}

	// The single-threaded oracle: one fresh planner per lookup kind.
	oracle := NewPlanner(m)
	type expected struct {
		plans   map[int]Plan
		qosDeg  map[int]int
		optServ map[int]int
		optExp  map[int]int
	}
	want := expected{
		plans:   map[int]Plan{},
		qosDeg:  map[int]int{},
		optServ: map[int]int{},
		optExp:  map[int]int{},
	}
	qosSec := func(c int) float64 {
		// A comfortably feasible bound: the service-only optimum's tail.
		deg := oracle.OptimalDegreeService(c)
		return m.ServiceTimeQuantile(c, deg, 95) * 1.5
	}
	for _, c := range concurrencies {
		p, err := oracle.PlanFor(c, weights[0])
		if err != nil {
			t.Fatal(err)
		}
		want.plans[c] = p
		qp, _, err := oracle.QoSPlan(c, qosSec(c), QoSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want.qosDeg[c] = qp.Degree
		want.optServ[c] = oracle.OptimalDegreeService(c)
		want.optExp[c] = oracle.OptimalDegreeExpense(c)
	}

	shared := NewPlanner(m)
	const goroutines = 32
	const iters = 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := concurrencies[(g+i)%len(concurrencies)]
				switch (g + i) % 4 {
				case 0:
					p, err := shared.PlanFor(c, weights[0])
					if err != nil || p != want.plans[c] {
						t.Errorf("PlanFor(%d) = %+v (%v), want %+v", c, p, err, want.plans[c])
						return
					}
				case 1:
					qp, _, err := shared.QoSPlan(c, qosSec(c), QoSOptions{})
					if err != nil || qp.Degree != want.qosDeg[c] {
						t.Errorf("QoSPlan(%d) degree %d (%v), want %d", c, qp.Degree, err, want.qosDeg[c])
						return
					}
				case 2:
					if deg := shared.OptimalDegreeService(c); deg != want.optServ[c] {
						t.Errorf("OptimalDegreeService(%d) = %d, want %d", c, deg, want.optServ[c])
						return
					}
				case 3:
					if deg, err := shared.OptimalDegreeForQuantile(c, 95, weights[(g+i)%len(weights)]); err != nil || deg < 1 {
						t.Errorf("OptimalDegreeForQuantile(%d) = %d (%v)", c, deg, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if got, wantN := shared.cache.Builds(), uint64(len(concurrencies)); got != wantN {
		t.Fatalf("singleflight built %d tables for %d distinct concurrencies", got, wantN)
	}
	if got := shared.cache.Len(); got != len(concurrencies) {
		t.Fatalf("cache holds %d tables, want %d", got, len(concurrencies))
	}
}

// TestConcurrentTableCacheSingleflight aims every goroutine at the same
// never-seen concurrency level at once: exactly one build may happen, and
// everyone must get the same table pointer.
func TestConcurrentTableCacheSingleflight(t *testing.T) {
	tc := NewTableCache(stressModels(), 0)
	const goroutines = 64
	var wg sync.WaitGroup
	tables := make([]*DegreeTable, goroutines)
	var start sync.WaitGroup
	start.Add(1)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			start.Wait()
			tbl, err := tc.Table(4242)
			if err != nil {
				t.Error(err)
				return
			}
			tables[g] = tbl
		}()
	}
	start.Done()
	wg.Wait()
	if n := tc.Builds(); n != 1 {
		t.Fatalf("stampede built %d tables, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if tables[g] != tables[0] {
			t.Fatalf("goroutine %d got a different table pointer", g)
		}
	}
}

// TestTableCacheShardedEviction checks the sharded configuration still
// bounds the cache: after touching far more concurrency levels than the
// capacity, Len stays within it (per-shard rounding allows at most one
// extra entry per shard).
func TestTableCacheShardedEviction(t *testing.T) {
	capacity := 2 * cacheShards // smallest capacity that shards
	tc := NewTableCache(stressModels(), capacity)
	for c := 1; c <= 10*capacity; c++ {
		if _, err := tc.Table(c); err != nil {
			t.Fatal(err)
		}
	}
	if got := tc.Len(); got > capacity {
		t.Fatalf("cache grew to %d entries, capacity %d", got, capacity)
	}
	if builds := tc.Builds(); builds != uint64(10*capacity) {
		t.Fatalf("builds = %d, want %d (every level distinct)", builds, 10*capacity)
	}
}
