package core

import (
	"math"
	"testing"
)

func reliabilityFixtureModels() Models {
	return Models{
		ET:                 ETModel{MfuncGB: 0.25, Alpha: 0.35, Intercept: 4.0},
		Scaling:            ScalingModel{B1: 2e-5, B2: 0.01, B3: 0},
		RatePerInstanceSec: 1.6667e-4,
		MaxDegree:          30,
	}
}

func TestFailureModelZeroIsIdentity(t *testing.T) {
	var f FailureModel
	for _, T := range []float64{0.5, 10, 300} {
		if f.ExpectedAttempts(T) != 1 {
			t.Fatal("zero model should expect exactly 1 attempt")
		}
		if f.ExpectedBilledSec(T) != T || f.ExpectedLatencySec(T) != T {
			t.Fatal("zero model must return T exactly")
		}
	}
}

func TestFailureModelExpectations(t *testing.T) {
	f := FailureModel{CrashRate: 0.01, RetryDelaySec: 5}
	T := 100.0 // λT = 1
	if got, want := f.ExpectedAttempts(T), math.E; math.Abs(got-want) > 1e-12 {
		t.Fatalf("attempts = %g, want e", got)
	}
	if got, want := f.ExpectedBilledSec(T), (math.E-1)/0.01; math.Abs(got-want) > 1e-9 {
		t.Fatalf("billed = %g, want %g", got, want)
	}
	// Latency = billed + failures·delay.
	wantLat := (math.E-1)/0.01 + (math.E-1)*5
	if got := f.ExpectedLatencySec(T); math.Abs(got-wantLat) > 1e-9 {
		t.Fatalf("latency = %g, want %g", got, wantLat)
	}
	// Billed time is continuous at λ→0.
	tiny := FailureModel{CrashRate: 1e-12}
	if got := tiny.ExpectedBilledSec(50); math.Abs(got-50) > 1e-3 {
		t.Fatalf("billed not continuous at λ→0: %g", got)
	}
}

func TestFailureModelMonotoneInRateAndDuration(t *testing.T) {
	base := FailureModel{CrashRate: 0.005, RetryDelaySec: 2}
	if !(base.ExpectedBilledSec(200) > base.ExpectedBilledSec(100)) {
		t.Fatal("billed time must grow with duration")
	}
	hot := FailureModel{CrashRate: 0.02, RetryDelaySec: 2}
	if !(hot.ExpectedBilledSec(100) > base.ExpectedBilledSec(100)) {
		t.Fatal("billed time must grow with crash rate")
	}
	// Superlinearity: the degree-P penalty — doubling T more than doubles
	// the billed time, which is what pushes the optimizer to lower degrees.
	if !(base.ExpectedBilledSec(200) > 2*base.ExpectedBilledSec(100)) {
		t.Fatal("billed time must be superlinear in duration")
	}
}

func TestReliableModelsZeroFailureAgreesExactly(t *testing.T) {
	m := reliabilityFixtureModels()
	rm := ReliableModels{Models: m}
	const c = 2000
	for _, w := range []Weights{Balanced(), ServiceOnly(), ExpenseOnly()} {
		blind, err := m.PlanFor(c, w)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := rm.PlanFor(c, w)
		if err != nil {
			t.Fatal(err)
		}
		if blind != rel {
			t.Fatalf("zero-failure reliable plan diverged:\nblind %+v\nrel   %+v", blind, rel)
		}
		for p := 1; p <= m.MaxDegree; p++ {
			if m.ServiceTime(c, p) != rm.ServiceTime(c, p) || m.Expense(c, p) != rm.Expense(c, p) {
				t.Fatalf("zero-failure predictions diverged at degree %d", p)
			}
		}
	}
}

func TestReliablePlanningShiftsToLowerDegrees(t *testing.T) {
	m := reliabilityFixtureModels()
	const c = 2000
	blind, err := m.OptimalDegree(c, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	prev := blind
	for _, rate := range []float64{0.002, 0.01, 0.05} {
		rm := ReliableModels{Models: m, Failure: FailureModel{CrashRate: rate, RetryDelaySec: 5}}
		deg, err := rm.OptimalDegree(c, Balanced())
		if err != nil {
			t.Fatal(err)
		}
		if deg > prev {
			t.Fatalf("degree rose with crash rate: %d → %d at λ=%g", prev, deg, rate)
		}
		prev = deg
	}
	rm := ReliableModels{Models: m, Failure: FailureModel{CrashRate: 0.05, RetryDelaySec: 5}}
	deg, err := rm.OptimalDegree(c, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	if deg >= blind {
		t.Fatalf("high crash rate should force a strictly lower degree: blind %d, reliable %d", blind, deg)
	}
}

func TestFailureModelValidate(t *testing.T) {
	if (FailureModel{CrashRate: -1}).Validate() == nil {
		t.Fatal("negative crash rate accepted")
	}
	if (FailureModel{RetryDelaySec: -1}).Validate() == nil {
		t.Fatal("negative retry delay accepted")
	}
	if (FailureModel{CrashRate: 0.1, RetryDelaySec: 3}).Validate() != nil {
		t.Fatal("good model rejected")
	}
}
