package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestDebugShutdownWithScrapeInFlight is a regression test for clean
// shutdown while a /metrics scrape is mid-flight: stop() must let the
// in-flight response finish (graceful Shutdown) instead of cutting the
// connection, and must return without error.
func TestDebugShutdownWithScrapeInFlight(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bursts_total").Add(3)

	// A collector that parks the scrape until released gives a
	// deterministic "scrape in flight" state with no sleeps.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	reg.RegisterCollector(func(*Registry) {
		once.Do(func() {
			close(started)
			<-release
		})
	})

	addr, stop, err := StartDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		err  error
	}
	scrapeDone := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			scrapeDone <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		scrapeDone <- scrape{body: string(b), err: err}
	}()

	<-started // the scrape is now inside the handler
	stopDone := make(chan error, 1)
	go func() { stopDone <- stop() }()
	close(release) // let the scrape complete

	got := <-scrapeDone
	if got.err != nil {
		t.Fatalf("in-flight scrape failed during shutdown: %v", got.err)
	}
	if !strings.Contains(got.body, "bursts_total 3") {
		t.Errorf("scrape body truncated: %q", got.body)
	}
	if err := <-stopDone; err != nil {
		t.Errorf("stop() = %v, want nil", err)
	}

	// The listener is actually closed afterwards.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still accepting after stop()")
	}
}
