package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Chrome trace-event export: the recorded bursts rendered in the format
// chrome://tracing and https://ui.perfetto.dev load natively. Each burst
// becomes one "process" (pid = burst index + 1, named after its platform,
// label, and shape) and each instance one "thread" (tid = instance index),
// so a 5000-function burst's scaling wave is visible as a staircase of
// sched/build/ship/boot/exec slices, with fault events as instants.
//
// Timestamps are microseconds (the format's unit), rounded to integers so
// the output is byte-stable for golden tests.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(sec float64) int64 { return int64(math.Round(sec * 1e6)) }

// WriteChromeTrace writes the bursts as a Chrome trace-event JSON object.
// Output is deterministic for a deterministic recording: events appear in
// burst order, metadata first, then spans, then instants, each on its own
// line inside the traceEvents array.
func WriteChromeTrace(w io.Writer, bursts []BurstRecord) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(line)
		return err
	}
	for bi, b := range bursts {
		pid := bi + 1
		name := b.Info.Platform
		if b.Info.Label != "" {
			name += " " + b.Info.Label
		}
		if b.Info.Degree > 0 {
			name += fmt.Sprintf(" C=%d P=%d", b.Info.Functions, b.Info.Degree)
		} else if b.Info.Functions > 0 {
			name += fmt.Sprintf(" C=%d mixed", b.Info.Functions)
		}
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		}); err != nil {
			return err
		}
		for _, s := range b.Spans {
			dur := usec(s.EndSec) - usec(s.StartSec)
			if err := emit(chromeEvent{
				Name: s.Stage.String(), Ph: "X", Pid: pid, Tid: s.Instance,
				Ts: usec(s.StartSec), Dur: &dur, Cat: "stage",
			}); err != nil {
				return err
			}
		}
		for _, e := range b.Events {
			ev := chromeEvent{
				Name: e.Kind.String(), Ph: "i", Pid: pid, Tid: e.Instance,
				Ts: usec(e.AtSec), Cat: "fault", S: "t",
			}
			if e.DurSec != 0 {
				ev.Args = map[string]any{"dur_us": usec(e.DurSec)}
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
