package obs

import (
	"sync"
	"time"
)

// Windowed SLO tracking for a request-serving path. An SLO holds two
// objectives over a rolling horizon:
//
//   - availability: at least Availability of requests succeed (no 5xx);
//   - latency: at least LatencyTarget of successful requests finish within
//     LatencyThresholdSec.
//
// For each configured window it reports the observed error rate, the
// latency attainment, and the burn rate — how fast the error budget is
// being spent, where burn 1.0 means "exactly consuming the budget the
// objective allows" and burn N means the budget is gone in 1/N of the SLO
// period. The multi-window shape follows the SRE-workbook alerting recipe:
// a short and a long window must both burn hot before anyone is paged, so
// a single slow request cannot fire an alert and a slow leak still does.
//
// The tracker is a fixed ring of coarse time buckets: Record is O(1) under
// one short mutex hold, Status is O(buckets), and memory is independent of
// request rate.

// SLOObjectives states the service-level targets.
type SLOObjectives struct {
	// Availability is the target fraction of requests that must not fail
	// server-side, e.g. 0.999.
	Availability float64 `json:"availability"`
	// LatencyTarget is the target fraction of successful requests that must
	// finish within LatencyThresholdSec, e.g. 0.95.
	LatencyTarget float64 `json:"latency_target"`
	// LatencyThresholdSec is the latency objective's threshold in seconds.
	LatencyThresholdSec float64 `json:"latency_threshold_sec"`
}

// DefaultSLOObjectives is three nines availability with 95% of requests
// under 250 ms — a sane starting point for a planner that answers from
// caches in microseconds but occasionally pays a model build.
func DefaultSLOObjectives() SLOObjectives {
	return SLOObjectives{Availability: 0.999, LatencyTarget: 0.95, LatencyThresholdSec: 0.25}
}

// DefaultSLOWindows are the burn-rate windows: 5m and 1h form the page
// pair, 30m and 6h the ticket pair.
func DefaultSLOWindows() []time.Duration {
	return []time.Duration{5 * time.Minute, 30 * time.Minute, time.Hour, 6 * time.Hour}
}

// SLOConfig configures a tracker.
type SLOConfig struct {
	// Objectives defaults to DefaultSLOObjectives() when zero.
	Objectives SLOObjectives
	// Windows defaults to DefaultSLOWindows(); they are sorted ascending.
	// The longest window bounds the ring's horizon.
	Windows []time.Duration
	// Clock overrides time.Now, so tests drive the ring without sleeping.
	Clock func() time.Time
}

// sloBucket is one ring slot's tally.
type sloBucket struct {
	start int64 // unix seconds of the bucket's aligned start; 0 = empty
	total uint64
	good  uint64 // availability successes
	fast  uint64 // latency successes (subset of good)
}

// SLO is the windowed tracker. Build with NewSLO; a nil *SLO is a no-op on
// Record so callers need no guard.
type SLO struct {
	obj       SLOObjectives
	windows   []time.Duration
	clock     func() time.Time
	bucketSec int64

	mu      sync.Mutex
	buckets []sloBucket
}

// NewSLO builds a tracker; zero config fields take defaults.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Objectives == (SLOObjectives{}) {
		cfg.Objectives = DefaultSLOObjectives()
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = DefaultSLOWindows()
	}
	windows := append([]time.Duration(nil), cfg.Windows...)
	for i := 1; i < len(windows); i++ {
		for j := i; j > 0 && windows[j] < windows[j-1]; j-- {
			windows[j], windows[j-1] = windows[j-1], windows[j]
		}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	// Bucket width: a tenth of the shortest window (≥1 s), so short-window
	// burn rates have usable resolution and the 6 h horizon stays a few
	// hundred slots.
	bucketSec := int64(windows[0].Seconds() / 10)
	if bucketSec < 1 {
		bucketSec = 1
	}
	n := int(windows[len(windows)-1].Seconds())/int(bucketSec) + 2
	return &SLO{
		obj: cfg.Objectives, windows: windows, clock: clock,
		bucketSec: bucketSec, buckets: make([]sloBucket, n),
	}
}

// Objectives returns the tracker's targets.
func (s *SLO) Objectives() SLOObjectives { return s.obj }

// Record tallies one request outcome: ok is the availability verdict (false
// for server-side failure), durSec the request latency. Latency attainment
// only judges successful requests — a fast 500 is not "good".
func (s *SLO) Record(ok bool, durSec float64) {
	if s == nil {
		return
	}
	s.RecordAt(s.clock(), ok, durSec)
}

// RecordAt is Record with a caller-supplied observation time, for callers on
// a hot path that already hold a reading of the same clock.
func (s *SLO) RecordAt(at time.Time, ok bool, durSec float64) {
	if s == nil {
		return
	}
	now := at.Unix()
	start := now - now%s.bucketSec
	i := int(start/s.bucketSec) % len(s.buckets)
	s.mu.Lock()
	b := &s.buckets[i]
	if b.start != start {
		*b = sloBucket{start: start}
	}
	b.total++
	if ok {
		b.good++
		if durSec <= s.obj.LatencyThresholdSec {
			b.fast++
		}
	}
	s.mu.Unlock()
}

// SLOWindowStatus is one window's burn accounting.
type SLOWindowStatus struct {
	WindowSec float64 `json:"window_sec"`
	Total     uint64  `json:"total"`
	// ErrorRate is 1 − availability over the window (0 with no traffic).
	ErrorRate float64 `json:"error_rate"`
	// AvailabilityBurn is ErrorRate divided by the availability error
	// budget (1 − objective).
	AvailabilityBurn float64 `json:"availability_burn"`
	// LatencyAttainment is the fraction of successes within threshold
	// (1 with no traffic).
	LatencyAttainment float64 `json:"latency_attainment"`
	// LatencyBurn is (1 − attainment) divided by the latency budget.
	LatencyBurn float64 `json:"latency_burn"`
}

// SLOStatus is the tracker's full report, the /slo response body.
type SLOStatus struct {
	Objectives SLOObjectives     `json:"objectives"`
	Windows    []SLOWindowStatus `json:"windows"`
	// PageBurn/TicketBurn follow the SRE-workbook dual-window rule: page
	// when the shortest and the second-longest windows both burn ≥ 14.4
	// (budget gone in under 2 days at a 30-day period); ticket when the
	// second-shortest and longest both burn ≥ 6.
	PageBurn   bool `json:"page_burn"`
	TicketBurn bool `json:"ticket_burn"`
}

// Status computes every window's burn rates at the tracker's current time.
func (s *SLO) Status() SLOStatus {
	now := s.clock().Unix()
	s.mu.Lock()
	buckets := append([]sloBucket(nil), s.buckets...)
	s.mu.Unlock()

	st := SLOStatus{Objectives: s.obj}
	availBudget := 1 - s.obj.Availability
	latBudget := 1 - s.obj.LatencyTarget
	worst := func(burn float64, budget float64) float64 {
		if budget <= 0 {
			// A 100% objective has no budget: any error is infinite burn,
			// reported as a large sentinel rather than +Inf (JSON-safe).
			if burn > 0 {
				return 1e9
			}
			return 0
		}
		return burn / budget
	}
	for _, w := range s.windows {
		cutoff := now - int64(w.Seconds())
		var total, good, fast uint64
		for _, b := range buckets {
			if b.start != 0 && b.start > cutoff && b.start <= now {
				total += b.total
				good += b.good
				fast += b.fast
			}
		}
		// With no traffic (or no successes) both objectives are vacuously
		// met: error rate 0, attainment 1 — a quiet service never burns.
		ws := SLOWindowStatus{WindowSec: w.Seconds(), Total: total, LatencyAttainment: 1}
		if total > 0 {
			ws.ErrorRate = 1 - float64(good)/float64(total)
		}
		if good > 0 {
			ws.LatencyAttainment = float64(fast) / float64(good)
		}
		ws.AvailabilityBurn = worst(ws.ErrorRate, availBudget)
		ws.LatencyBurn = worst(1-ws.LatencyAttainment, latBudget)
		st.Windows = append(st.Windows, ws)
	}

	burnAt := func(i int) float64 {
		w := st.Windows[i]
		if w.AvailabilityBurn > w.LatencyBurn {
			return w.AvailabilityBurn
		}
		return w.LatencyBurn
	}
	n := len(st.Windows)
	if n >= 2 {
		shortIdx, longIdx := 0, n-2
		if n < 3 {
			longIdx = n - 1
		}
		st.PageBurn = burnAt(shortIdx) >= 14.4 && burnAt(longIdx) >= 14.4
		tShort, tLong := 1, n-1
		if n < 3 {
			tShort = 0
		}
		st.TicketBurn = burnAt(tShort) >= 6 && burnAt(tLong) >= 6
	}
	return st
}

// SLOCollector mirrors the tracker's burn rates into registry gauges, so
// the Prometheus exposition carries the same signal as /slo:
//
//	slo_error_rate{window="300s"}    slo_availability_burn{window="300s"}
//	slo_latency_attainment{...}      slo_latency_burn{...}
//	slo_page_burn / slo_ticket_burn  (0 or 1)
func SLOCollector(s *SLO) Collector {
	return func(r *Registry) {
		st := s.Status()
		errRate := r.GaugeVec("slo_error_rate", "window")
		aBurn := r.GaugeVec("slo_availability_burn", "window")
		lAtt := r.GaugeVec("slo_latency_attainment", "window")
		lBurn := r.GaugeVec("slo_latency_burn", "window")
		for _, w := range st.Windows {
			label := formatValue(w.WindowSec) + "s"
			errRate.With(label).Set(w.ErrorRate)
			aBurn.With(label).Set(w.AvailabilityBurn)
			lAtt.With(label).Set(w.LatencyAttainment)
			lBurn.With(label).Set(w.LatencyBurn)
		}
		b2f := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		r.Gauge("slo_page_burn").Set(b2f(st.PageBurn))
		r.Gauge("slo_ticket_burn").Set(b2f(st.TicketBurn))
	}
}
