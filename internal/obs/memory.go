package obs

import "sync"

// BurstRecord is one burst's complete recording: its identity plus every
// span and event emitted between its BeginBurst and the next.
type BurstRecord struct {
	Info   BurstInfo
	Spans  []Span
	Events []Event
}

// Memory is a Recorder that retains everything in memory, grouped by burst.
// It is the input to the offline exporters (WriteChromeTrace,
// FprintStageSummary). The zero value is ready to use.
type Memory struct {
	mu     sync.Mutex
	bursts []BurstRecord
}

// BeginBurst implements Recorder.
func (m *Memory) BeginBurst(b BurstInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bursts = append(m.bursts, BurstRecord{Info: b})
}

// current returns the open burst, creating an anonymous one for records
// emitted before any BeginBurst (defensive; emitters always begin first).
func (m *Memory) current() *BurstRecord {
	if len(m.bursts) == 0 {
		m.bursts = append(m.bursts, BurstRecord{})
	}
	return &m.bursts[len(m.bursts)-1]
}

// Span implements Recorder.
func (m *Memory) Span(s Span) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.current()
	cur.Spans = append(cur.Spans, s)
}

// Event implements Recorder.
func (m *Memory) Event(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.current()
	cur.Events = append(cur.Events, e)
}

// Bursts returns a snapshot of the recorded bursts. The slice headers are
// copied; the underlying span/event slices are shared and must not be
// mutated by the caller.
func (m *Memory) Bursts() []BurstRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]BurstRecord, len(m.bursts))
	copy(out, m.bursts)
	return out
}
