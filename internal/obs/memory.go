package obs

import "sync"

// BurstRecord is one burst's complete recording: its identity plus every
// span and event emitted between its BeginBurst and the next.
type BurstRecord struct {
	Info   BurstInfo
	Spans  []Span
	Events []Event
}

// Memory is a Recorder that retains everything in memory, grouped by burst.
// It is the input to the offline exporters (WriteChromeTrace,
// FprintStageSummary). The zero value is ready to use.
type Memory struct {
	mu     sync.Mutex
	bursts []BurstRecord
}

// BeginBurst implements Recorder. The span and event buffers are pre-sized
// from the burst's instance count — the control plane emits up to six
// lifecycle spans per instance (queued, sched, build, ship, boot, exec) and
// fault/hedge events on the order of one per instance — so recording a
// burst appends without the doubling-regrowth copies that dominated
// large-burst recording cost.
func (m *Memory) BeginBurst(b BurstInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := BurstRecord{Info: b}
	if n := b.Instances; n > 0 {
		rec.Spans = make([]Span, 0, 6*n)
		rec.Events = make([]Event, 0, n)
	}
	m.bursts = append(m.bursts, rec)
}

// current returns the open burst, creating an anonymous one for records
// emitted before any BeginBurst (defensive; emitters always begin first).
func (m *Memory) current() *BurstRecord {
	if len(m.bursts) == 0 {
		m.bursts = append(m.bursts, BurstRecord{})
	}
	return &m.bursts[len(m.bursts)-1]
}

// Span implements Recorder.
func (m *Memory) Span(s Span) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.current()
	cur.Spans = append(cur.Spans, s)
}

// Event implements Recorder.
func (m *Memory) Event(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.current()
	cur.Events = append(cur.Events, e)
}

// Bursts returns a snapshot of the recorded bursts. The slice headers are
// copied; the underlying span/event slices are shared and must not be
// mutated by the caller.
func (m *Memory) Bursts() []BurstRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]BurstRecord, len(m.bursts))
	copy(out, m.bursts)
	return out
}
