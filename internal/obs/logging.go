package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the CLI's structured logger. format is "text" (logfmt
// style, the default) or "json"; verbose lowers the level to Debug so span
// records are logged too.
func NewLogger(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
	}
}

// LogRecorder is a Recorder that narrates the run through a slog.Logger:
// burst boundaries and fault events at Info, stage spans at Debug (enable
// with a verbose logger — a 5000-instance burst emits five spans per
// instance).
type LogRecorder struct {
	L *slog.Logger
}

// BeginBurst implements Recorder.
func (lr LogRecorder) BeginBurst(b BurstInfo) {
	lr.L.Info("burst begin",
		"platform", b.Platform, "label", b.Label,
		"functions", b.Functions, "degree", b.Degree, "instances", b.Instances)
}

// Span implements Recorder.
func (lr LogRecorder) Span(s Span) {
	lr.L.Debug("stage span",
		"instance", s.Instance, "stage", s.Stage.String(),
		"start_sec", s.StartSec, "end_sec", s.EndSec, "dur_sec", s.DurSec())
}

// Event implements Recorder.
func (lr LogRecorder) Event(e Event) {
	lr.L.Info("fault event",
		"instance", e.Instance, "kind", e.Kind.String(),
		"at_sec", e.AtSec, "dur_sec", e.DurSec)
}
