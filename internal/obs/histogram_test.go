package obs

import (
	"math"
	"testing"
)

// Regression tests for the histogram zero-value contract: a Histogram built
// without bounds (directly, or via a RegistryRecorder's nil-bounds path) must
// adopt the default latency buckets and never leak NaN from Quantile.

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	h.Observe(0.02)
	h.Observe(3)
	bounds, _ := h.Buckets()
	if len(bounds) != len(DefaultLatencyBuckets) {
		t.Fatalf("zero-value bounds len = %d, want default %d", len(bounds), len(DefaultLatencyBuckets))
	}
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Quantile(50); got != 0.025 {
		t.Errorf("p50 = %v, want 0.025", got)
	}
}

func TestNewHistogramNilBounds(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(0.5)
	if got := h.Quantile(100); got != 0.5 {
		t.Errorf("p100 = %v, want observed max 0.5", got)
	}
	// The registry path with nil bounds behaves identically.
	reg := NewRegistry()
	rh := reg.Histogram("stage_seconds_custom", nil)
	rh.Observe(0.5)
	if got := rh.Quantile(95); math.IsNaN(got) {
		t.Error("registry nil-bounds histogram Quantile returned NaN")
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 50, 95, 100, -5, 250, math.NaN()} {
		if got := h.Quantile(q); got != 0 || math.IsNaN(got) {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("empty mean/max = %v/%v", h.Mean(), h.Max())
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(100) // overflow bucket
	h.Observe(200) // overflow bucket
	// p100 lands in the overflow bucket: report the observed max, not a
	// bound and never NaN/Inf.
	if got := h.Quantile(100); got != 200 {
		t.Errorf("overflow p100 = %v, want observed max 200", got)
	}
	if got := h.Quantile(50); got != 200 {
		// 2 of 3 observations are past the last bound, so the median already
		// sits in overflow.
		t.Errorf("overflow p50 = %v, want 200", got)
	}
	// Out-of-range q clamps instead of walking off the table.
	if got := h.Quantile(1000); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("Quantile(1000) = %v", got)
	}
	if got := h.Quantile(math.NaN()); math.IsNaN(got) {
		t.Error("Quantile(NaN) returned NaN")
	}
}

func TestHistogramSnapshotNoNaN(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("empty_hist", nil) // registered, never observed
	snap := reg.Snapshot()
	hs := snap.Hists["empty_hist"]
	for name, v := range map[string]float64{
		"mean": hs.Mean, "p50": hs.P50, "p95": hs.P95, "max": hs.Max, "sum": hs.Sum,
	} {
		if math.IsNaN(v) {
			t.Errorf("empty histogram snapshot leaks NaN in %s", name)
		}
	}
}
