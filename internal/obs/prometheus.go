package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the whole registry:
// scalar counters/gauges, labeled vectors, and histograms with cumulative
// _bucket/_sum/_count series. The encoder is deterministic — families sort
// by name, series sort by label values — so golden tests and diff-based
// alerting both work against it.

// PrometheusContentType is the Content-Type of WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every metric in Prometheus text format, running
// registered collectors first so derived metrics are scrape-fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()
	bw := bufio.NewWriter(w)

	type family struct {
		name string // sanitized
		typ  string
		emit func(*bufio.Writer, string)
	}
	var fams []family
	add := func(name, typ string, emit func(*bufio.Writer, string)) {
		fams = append(fams, family{name: sanitizeMetricName(name), typ: typ, emit: emit})
	}

	r.counters.Range(func(k, v any) bool {
		c := v.(*Counter)
		add(k.(string), "counter", func(bw *bufio.Writer, name string) {
			writeSample(bw, name, "", float64(c.Value()))
		})
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		g := v.(*Gauge)
		add(k.(string), "gauge", func(bw *bufio.Writer, name string) {
			writeSample(bw, name, "", g.Value())
		})
		return true
	})
	r.hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		add(k.(string), "histogram", func(bw *bufio.Writer, name string) {
			writeHistogram(bw, name, "", h)
		})
		return true
	})
	r.counterVecs.Range(func(k, v any) bool {
		vec := v.(*CounterVec)
		add(k.(string), "counter", func(bw *bufio.Writer, name string) {
			vec.Range(func(values []string, c *Counter) {
				writeSample(bw, name, formatLabels(vec.core.labels, values), float64(c.Value()))
			})
		})
		return true
	})
	r.gaugeVecs.Range(func(k, v any) bool {
		vec := v.(*GaugeVec)
		add(k.(string), "gauge", func(bw *bufio.Writer, name string) {
			vec.Range(func(values []string, g *Gauge) {
				writeSample(bw, name, formatLabels(vec.core.labels, values), g.Value())
			})
		})
		return true
	})
	r.histVecs.Range(func(k, v any) bool {
		vec := v.(*HistogramVec)
		add(k.(string), "histogram", func(bw *bufio.Writer, name string) {
			vec.Range(func(values []string, h *Histogram) {
				writeHistogram(bw, name, formatLabels(vec.core.labels, values), h)
			})
		})
		return true
	})

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		f.emit(bw, f.name)
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line; labels may be "".
func writeSample(bw *bufio.Writer, name, labels string, v float64) {
	bw.WriteString(name)
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket series (including +Inf), then
// _sum and _count. labels carries the series' own labels ("" for a scalar
// histogram); the le label is appended to it.
func writeHistogram(bw *bufio.Writer, name, labels string, h *Histogram) {
	bounds, counts, sum, n := h.export()
	prefix := labels
	if prefix != "" {
		prefix += ","
	}
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		writeSample(bw, name+"_bucket", prefix+`le="`+formatValue(b)+`"`, float64(cum))
	}
	writeSample(bw, name+"_bucket", prefix+`le="+Inf"`, float64(n))
	writeSample(bw, name+"_sum", labels, sum)
	writeSample(bw, name+"_count", labels, float64(n))
}

// formatValue renders a float the way Prometheus expects: integral values
// without an exponent, everything else in shortest round-trip form, with
// infinities spelled +Inf/-Inf and NaN as NaN.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	if v == math.Trunc(v) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLabels renders `k1="v1",k2="v2"` with label names sanitized and
// values escaped per the exposition format (backslash, quote, newline).
func formatLabels(labels, values []string) string {
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(sanitizeLabelName(l))
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// formatSeries is the flattened `name{labels}` key used by Snapshot.
func formatSeries(name string, labels, values []string) string {
	return sanitizeMetricName(name) + "{" + formatLabels(labels, values) + "}"
}

// sanitizeMetricName maps a registry name onto the exposition grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*; invalid runes become '_' (the registry's event
// names contain hyphens, e.g. events_start-retry).
func sanitizeMetricName(name string) string {
	return sanitizeName(name, true)
}

// sanitizeLabelName maps a label name onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	return sanitizeName(name, false)
}

func sanitizeName(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(allowColon && r == ':') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// legacyFormatParam and legacyAccept are the two ways a client asks
// /metrics for the pre-Prometheus human dump.
const (
	legacyFormatParam = "legacy"
	legacyAccept      = "text/x-propack-dump"
)

// MetricsHandler serves the registry over HTTP with content negotiation:
// Prometheus text format (version 0.0.4) by default — what scrapers and
// `curl` get — and the legacy aligned human dump when the client asks for
// it with ?format=legacy or `Accept: text/x-propack-dump`.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == legacyFormatParam ||
			strings.Contains(r.Header.Get("Accept"), legacyAccept) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = reg.Fprint(w)
			return
		}
		w.Header().Set("Content-Type", PrometheusContentType)
		_ = reg.WritePrometheus(w)
	})
}
