package obs

import (
	"bufio"
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expositionLineRE accepts the two line shapes of text format 0.0.4 we emit:
// `# TYPE name type` comments and `name{labels} value` samples.
var (
	typeLineRE   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleLineRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})? \S+$`)
)

// validateExposition parses every line against the exposition grammar and
// returns the sample lines keyed by series id. Shared with the e2e test's
// expectations in spirit: any line that is neither a TYPE comment nor a
// well-formed sample fails the test.
func validateExposition(t *testing.T, body string) map[string]string {
	t.Helper()
	samples := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !typeLineRE.MatchString(line) {
				t.Errorf("bad comment line: %q", line)
			}
			continue
		}
		if !sampleLineRE.MatchString(line) {
			t.Errorf("bad sample line: %q", line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		id, val := line[:sp], line[sp+1:]
		if _, ok := samples[id]; ok {
			t.Errorf("duplicate series %q", id)
		}
		samples[id] = val
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Errorf("unparseable value %q in line %q", val, line)
			}
		}
	}
	return samples
}

func TestWritePrometheusScalars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bursts_total").Add(7)
	reg.Gauge("inflight").Set(2.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := validateExposition(t, sb.String())
	if samples["bursts_total"] != "7" {
		t.Errorf("bursts_total = %q, want 7", samples["bursts_total"])
	}
	if samples["inflight"] != "2.5" {
		t.Errorf("inflight = %q, want 2.5", samples["inflight"])
	}
	if !strings.Contains(sb.String(), "# TYPE bursts_total counter") {
		t.Error("missing TYPE line for bursts_total")
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := validateExposition(t, sb.String())

	// Buckets must be cumulative and the +Inf bucket must equal _count.
	want := map[string]string{
		`lat_seconds_bucket{le="0.1"}`:  "1",
		`lat_seconds_bucket{le="1"}`:    "3",
		`lat_seconds_bucket{le="10"}`:   "4",
		`lat_seconds_bucket{le="+Inf"}`: "5",
		`lat_seconds_count`:             "5",
		`lat_seconds_sum`:               "56.05",
	}
	for k, v := range want {
		if samples[k] != v {
			t.Errorf("%s = %q, want %q", k, samples[k], v)
		}
	}
	if !strings.Contains(sb.String(), "# TYPE lat_seconds histogram") {
		t.Error("missing histogram TYPE line")
	}
}

func TestWritePrometheusVectors(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("req_total", "route", "code").With("advise", "200").Add(4)
	reg.CounterVec("req_total", "route", "code").With("plan", "500").Inc()
	reg.HistogramVec("req_seconds", []string{"route"}, []float64{1}).With("advise").Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := validateExposition(t, sb.String())
	if samples[`req_total{route="advise",code="200"}`] != "4" {
		t.Errorf("labeled counter missing/wrong: %v", samples)
	}
	if samples[`req_seconds_bucket{route="advise",le="1"}`] != "1" {
		t.Error("vec histogram bucket missing series labels before le")
	}
	if samples[`req_seconds_count{route="advise"}`] != "1" {
		t.Error("vec histogram _count missing")
	}
}

func TestWritePrometheusSanitization(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("events_start-retry").Inc() // hyphen → underscore
	reg.CounterVec("weird", "label-name").With("quote\" slash\\ nl\n").Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	samples := validateExposition(t, out)
	if _, ok := samples["events_start_retry"]; !ok {
		t.Errorf("hyphenated metric not sanitized: %v", samples)
	}
	if _, ok := samples[`weird{label_name="quote\" slash\\ nl\n"}`]; !ok {
		t.Errorf("label escaping wrong: %q", out)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total").Inc()
	reg.Counter("a_total").Inc()
	reg.GaugeVec("g", "k").With("b").Set(1)
	reg.GaugeVec("g", "k").With("a").Set(2)

	var a, b strings.Builder
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two encodes of the same registry differ")
	}
	if strings.Index(a.String(), "a_total") > strings.Index(a.String(), "z_total") {
		t.Error("families not sorted by name")
	}
	if strings.Index(a.String(), `g{k="a"}`) > strings.Index(a.String(), `g{k="b"}`) {
		t.Error("series not sorted within family")
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		42:          "42",
		-3:          "-3",
		2.5:         "2.5",
		0.001:       "0.001",
		math.Inf(1): "+Inf",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.Inf(-1)); got != "-Inf" {
		t.Errorf("-Inf = %q", got)
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("NaN = %q", got)
	}
}

func TestMetricsHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bursts_total").Inc()
	h := MetricsHandler(reg)

	// Default: Prometheus text format.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("default Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE bursts_total counter") {
		t.Errorf("default body not Prometheus: %q", rec.Body.String())
	}

	// ?format=legacy: the aligned human dump.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=legacy", nil))
	if !strings.Contains(rec.Body.String(), "counter") || strings.Contains(rec.Body.String(), "# TYPE") {
		t.Errorf("legacy body wrong: %q", rec.Body.String())
	}

	// Accept header route to legacy.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", legacyAccept)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), "# TYPE") {
		t.Error("Accept negotiation did not select legacy dump")
	}
}

func TestCollectorRunsAtScrape(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	reg.RegisterCollector(func(r *Registry) {
		calls++
		r.Gauge("derived").Set(float64(calls))
	})
	var sb strings.Builder
	_ = reg.WritePrometheus(&sb)
	if calls != 1 || !strings.Contains(sb.String(), "derived 1") {
		t.Errorf("collector not run at encode: calls=%d body=%q", calls, sb.String())
	}
	snap := reg.Snapshot()
	if calls != 2 || snap.Gauges["derived"] != 2 {
		t.Errorf("collector not run at snapshot: calls=%d", calls)
	}
}

func TestGoRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterCollector(GoRuntimeCollector())
	snap := reg.Snapshot()
	if snap.Gauges["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v", snap.Gauges["go_goroutines"])
	}
	if snap.Gauges["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v", snap.Gauges["go_heap_alloc_bytes"])
	}
	if snap.Gauges["go_gomaxprocs"] < 1 {
		t.Errorf("go_gomaxprocs = %v", snap.Gauges["go_gomaxprocs"])
	}
}

// TestWritePrometheusConcurrent encodes while writers mutate every metric
// kind, for the -race stress job.
func TestWritePrometheusConcurrent(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterCollector(GoRuntimeCollector())
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Counter("c").Inc()
			reg.Gauge("g").Set(float64(i))
			reg.Histogram("h", nil).Observe(0.01)
			reg.CounterVec("cv", "k").With(fmt.Sprintf("k%d", i%8)).Inc()
		}
	}()
	for i := 0; i < 100; i++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		validateExposition(t, sb.String())
	}
	close(stop)
	<-done
}
