package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("http_requests", "route", "code")
	vec.With("advise", "200").Add(3)
	vec.With("advise", "200").Inc()
	vec.With("plan", "500").Inc()

	if got := vec.With("advise", "200").Value(); got != 4 {
		t.Errorf("advise/200 = %d, want 4", got)
	}
	if got := vec.With("plan", "500").Value(); got != 1 {
		t.Errorf("plan/500 = %d, want 1", got)
	}
	if got := vec.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	if got := vec.Labels(); len(got) != 2 || got[0] != "route" || got[1] != "code" {
		t.Errorf("Labels = %v", got)
	}

	// Same name returns the same vector; the label argument is ignored after
	// creation.
	if reg.CounterVec("http_requests", "other") != vec {
		t.Error("second CounterVec call returned a different vector")
	}
}

func TestVecWrongLabelCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("With with wrong label count did not panic")
		}
	}()
	NewRegistry().CounterVec("c", "a", "b").With("only-one")
}

func TestVecRangeDeterministic(t *testing.T) {
	reg := NewRegistry()
	vec := reg.GaugeVec("g", "k")
	for _, v := range []string{"zebra", "alpha", "mid"} {
		vec.With(v).Set(1)
	}
	var order []string
	vec.Range(func(values []string, _ *Gauge) { order = append(order, values[0]) })
	want := []string{"alpha", "mid", "zebra"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Range order = %v, want %v", order, want)
		}
	}
}

// TestVecCardinalityBound drives a vector past its cap with adversarial
// label values (a fresh tenant key per request) and checks that growth stops
// at the cap plus one shared overflow series, with no samples lost.
func TestVecCardinalityBound(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("by_tenant", "tenant")
	const attack = DefaultMaxSeries * 4
	for i := 0; i < attack; i++ {
		vec.With(fmt.Sprintf("tenant-%d", i)).Inc()
	}
	if got, want := vec.Len(), DefaultMaxSeries+1; got != want {
		t.Errorf("series count after attack = %d, want %d (cap + overflow)", got, want)
	}
	if got := vec.With(VecOverflowValue).Value(); got != attack-DefaultMaxSeries {
		t.Errorf("overflow series = %d, want %d", got, attack-DefaultMaxSeries)
	}
	// Established series keep working at the cap.
	vec.With("tenant-0").Inc()
	if got := vec.With("tenant-0").Value(); got != 2 {
		t.Errorf("tenant-0 = %d, want 2", got)
	}
	// Total samples conserved.
	var total int64
	vec.Range(func(_ []string, c *Counter) { total += c.Value() })
	if total != attack+1 {
		t.Errorf("total samples = %d, want %d", total, attack+1)
	}
}

func TestHistogramVecSharedBounds(t *testing.T) {
	reg := NewRegistry()
	vec := reg.HistogramVec("lat", []string{"route"}, []float64{0.1, 1})
	vec.With("a").Observe(0.05)
	vec.With("b").Observe(5)
	ba, _ := vec.With("a").Buckets()
	bb, _ := vec.With("b").Buckets()
	if len(ba) != 2 || len(bb) != 2 || ba[0] != 0.1 || bb[1] != 1 {
		t.Errorf("bounds a=%v b=%v, want [0.1 1] for both", ba, bb)
	}
	// nil bounds adopt the default latency buckets.
	dv := reg.HistogramVec("lat_default", []string{"route"}, nil)
	db, _ := dv.With("x").Buckets()
	if len(db) != len(DefaultLatencyBuckets) {
		t.Errorf("default bounds len = %d, want %d", len(db), len(DefaultLatencyBuckets))
	}
}

// TestVecConcurrentAccess hammers one vector from many goroutines — mixed
// established and fresh (past-cap) label values — under the race detector.
func TestVecConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("c", "k")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				vec.With(fmt.Sprintf("k-%d", i%512)).Inc() // some past the 256 cap
				if i%100 == 0 {
					vec.Range(func([]string, *Counter) {})
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	vec.Range(func(_ []string, c *Counter) { total += c.Value() })
	if total != workers*perWorker {
		t.Errorf("total = %d, want %d", total, workers*perWorker)
	}
	if got := vec.Len(); got > DefaultMaxSeries+1 {
		t.Errorf("series count = %d, exceeds cap+overflow", got)
	}
}

// TestVecSnapshotConcurrent interleaves vector writes with full registry
// snapshots and Prometheus encodes, the shapes a live scrape sees.
func TestVecSnapshotConcurrent(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("cv", "k").With("k0").Inc() // series exist before the first snapshot
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.CounterVec("cv", "k").With(fmt.Sprintf("k%d", i%64)).Inc()
			reg.GaugeVec("gv", "k").With("x").Set(float64(i))
			reg.HistogramVec("hv", []string{"k"}, nil).With("x").Observe(0.01)
		}
	}()
	for i := 0; i < 50; i++ {
		snap := reg.Snapshot()
		if snap.Series == nil {
			t.Error("snapshot missing series")
		}
		if err := reg.WritePrometheus(discard{}); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
