package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// FprintStageSummary writes an aligned per-stage breakdown of the recorded
// bursts: span counts, total/mean/max durations per lifecycle stage, and a
// count of every fault/policy event kind. Stages and kinds with no records
// are omitted, so a clean run prints only the lifecycle rows.
func FprintStageSummary(w io.Writer, bursts []BurstRecord) error {
	var (
		count [numStages]int
		total [numStages]float64
		max   [numStages]float64
	)
	events := map[EventKind]int{}
	for _, b := range bursts {
		for _, s := range b.Spans {
			d := s.DurSec()
			i := int(s.Stage)
			if i >= numStages {
				continue
			}
			count[i]++
			total[i] += d
			if d > max[i] {
				max[i] = d
			}
		}
		for _, e := range b.Events {
			events[e.Kind]++
		}
	}

	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tspans\ttotal\tmean\tmax")
	for _, st := range Stages() {
		i := int(st)
		if count[i] == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1fs\t%.3fs\t%.3fs\n",
			st, count[i], total[i], total[i]/float64(count[i]), max[i])
	}
	if len(events) > 0 {
		fmt.Fprintln(tw, "\t\t\t\t")
		fmt.Fprintln(tw, "event\tcount\t\t\t")
		for k := EventKind(0); int(k) < numEventKinds; k++ {
			if n := events[k]; n > 0 {
				fmt.Fprintf(tw, "%s\t%d\t\t\t\n", k, n)
			}
		}
	}
	return tw.Flush()
}
