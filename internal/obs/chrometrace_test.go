package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func demoBursts() []BurstRecord {
	return []BurstRecord{
		{
			Info: BurstInfo{Platform: "AWS Lambda", Label: "demo", Functions: 8, Degree: 4, Instances: 2},
			Spans: []Span{
				{Instance: 0, Stage: StageSched, StartSec: 0, EndSec: 0.1},
				{Instance: 0, Stage: StageExec, StartSec: 0.1, EndSec: 2.1},
				{Instance: 1, Stage: StageSched, StartSec: 0, EndSec: 0.2},
			},
			Events: []Event{
				{Instance: 1, Kind: EventCrash, AtSec: 1.5, DurSec: 1.3},
				{Instance: 1, Kind: EventBackoff, AtSec: 1.5, DurSec: 0.25},
			},
		},
		{
			Info:  BurstInfo{Platform: "localfaas", Functions: 3, Degree: 0, Instances: 3},
			Spans: []Span{{Instance: 2, Stage: StageQueued, StartSec: 0, EndSec: 0.05}},
		},
	}
}

func TestWriteChromeTraceValidAndStable(t *testing.T) {
	var a, b strings.Builder
	if err := WriteChromeTrace(&a, demoBursts()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, demoBursts()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Chrome trace output not deterministic")
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   int64          `json:"ts"`
			Dur  *int64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(a.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, a.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 process_name metadata + 4 spans + 2 instants.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d trace events, want 8", len(doc.TraceEvents))
	}
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
	}
	if byPh["M"] != 2 || byPh["X"] != 4 || byPh["i"] != 2 {
		t.Fatalf("event phases wrong: %v", byPh)
	}

	meta := doc.TraceEvents[0]
	if meta.Name != "process_name" || meta.Args["name"] != "AWS Lambda demo C=8 P=4" {
		t.Fatalf("process metadata wrong: %+v", meta)
	}
	exec := doc.TraceEvents[2]
	if exec.Name != "exec" || exec.Ts != 100000 || exec.Dur == nil || *exec.Dur != 2000000 {
		t.Fatalf("exec span wrong: %+v", exec)
	}
	// Second burst gets its own pid and a mixed-burst process name.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Pid != 2 {
		t.Fatalf("second burst pid = %d, want 2", last.Pid)
	}
	if !strings.Contains(a.String(), "localfaas C=3 mixed") {
		t.Fatalf("mixed process name missing:\n%s", a.String())
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v\n%s", err, sb.String())
	}
}
