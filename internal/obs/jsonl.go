package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONL is a streaming Recorder that writes one JSON object per line:
//
//	{"type":"burst","platform":"AWS Lambda","functions":100,"degree":4,"instances":25}
//	{"type":"span","burst":0,"instance":0,"stage":"sched","start_sec":0,"end_sec":0.1}
//	{"type":"event","burst":0,"instance":3,"kind":"crash","at_sec":12.5,"dur_sec":3.2}
//
// Lines appear in emission order; the "burst" index ties spans and events to
// the most recent burst line. Writes after the first error are dropped and
// the error is reported by Err (and by Flush), so emitters never see I/O
// failures mid-burst.
type JSONL struct {
	mu    sync.Mutex
	w     io.Writer
	burst int // index of the current burst, -1 before the first
	err   error
}

// NewJSONL returns a JSONL recorder writing to w. The caller owns w (and
// any buffering/closing); call Err or Flush at the end to surface write
// errors.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, burst: -1}
}

type jsonlBurst struct {
	Type      string `json:"type"`
	Platform  string `json:"platform"`
	Label     string `json:"label,omitempty"`
	Functions int    `json:"functions"`
	Degree    int    `json:"degree"`
	Instances int    `json:"instances"`
}

type jsonlSpan struct {
	Type     string  `json:"type"`
	Burst    int     `json:"burst"`
	Instance int     `json:"instance"`
	Stage    string  `json:"stage"`
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
}

type jsonlEvent struct {
	Type     string  `json:"type"`
	Burst    int     `json:"burst"`
	Instance int     `json:"instance"`
	Kind     string  `json:"kind"`
	AtSec    float64 `json:"at_sec"`
	DurSec   float64 `json:"dur_sec,omitempty"`
}

func (j *JSONL) write(v any) {
	if j.err != nil {
		return
	}
	line, err := json.Marshal(v)
	if err != nil {
		j.err = err
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil {
		j.err = err
	}
}

// BeginBurst implements Recorder.
func (j *JSONL) BeginBurst(b BurstInfo) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.burst++
	j.write(jsonlBurst{
		Type: "burst", Platform: b.Platform, Label: b.Label,
		Functions: b.Functions, Degree: b.Degree, Instances: b.Instances,
	})
}

// Span implements Recorder.
func (j *JSONL) Span(s Span) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.write(jsonlSpan{
		Type: "span", Burst: j.burst, Instance: s.Instance,
		Stage: s.Stage.String(), StartSec: s.StartSec, EndSec: s.EndSec,
	})
}

// Event implements Recorder.
func (j *JSONL) Event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.write(jsonlEvent{
		Type: "event", Burst: j.burst, Instance: e.Instance,
		Kind: e.Kind.String(), AtSec: e.AtSec, DurSec: e.DurSec,
	})
}

// Err returns the first write or marshal error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
