package obs

import "sync"

// tapeOp is one recorded Recorder call.
type tapeOp struct {
	kind  uint8 // 0 BeginBurst, 1 Span, 2 Event
	burst BurstInfo
	span  Span
	event Event
}

// Tape is a Recorder that captures the exact call sequence — BeginBurst,
// Span, and Event interleavings included — for later replay into another
// Recorder. It is the fan-in buffer of the parallel sweep engine: each
// parallel task records into its own Tape, and the coordinator replays the
// tapes in task order once the fan-out completes. Downstream recorders
// therefore see byte-for-byte the call sequence a sequential run would
// have produced, which keeps even streaming exporters (JSONL) and
// burst-scoped ones (Memory) deterministic under any worker count.
//
// The zero value is ready to use. Like every Recorder, a Tape is safe for
// concurrent use, though in the parallel engine each task owns its tape
// exclusively.
type Tape struct {
	mu  sync.Mutex
	ops []tapeOp
}

// BeginBurst implements Recorder.
func (t *Tape) BeginBurst(b BurstInfo) {
	t.mu.Lock()
	t.ops = append(t.ops, tapeOp{kind: 0, burst: b})
	t.mu.Unlock()
}

// Span implements Recorder.
func (t *Tape) Span(s Span) {
	t.mu.Lock()
	t.ops = append(t.ops, tapeOp{kind: 1, span: s})
	t.mu.Unlock()
}

// Event implements Recorder.
func (t *Tape) Event(e Event) {
	t.mu.Lock()
	t.ops = append(t.ops, tapeOp{kind: 2, event: e})
	t.mu.Unlock()
}

// Len reports the number of recorded calls.
func (t *Tape) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ops)
}

// Replay forwards every recorded call to rec in capture order. A nil
// receiver or a nil rec is a no-op, so callers can replay unconditionally.
func (t *Tape) Replay(rec Recorder) {
	if t == nil || rec == nil {
		return
	}
	t.mu.Lock()
	ops := t.ops
	t.mu.Unlock()
	for _, op := range ops {
		switch op.kind {
		case 0:
			rec.BeginBurst(op.burst)
		case 1:
			rec.Span(op.span)
		case 2:
			rec.Event(op.event)
		}
	}
}
