package obs

import "runtime"

// GoRuntimeCollector reports the Go runtime's health into the registry at
// scrape time: heap and stack sizes, GC pause behavior, goroutine count,
// and scheduler width. Register it once:
//
//	reg.RegisterCollector(obs.GoRuntimeCollector())
//
// runtime.ReadMemStats stops the world for microseconds; running it per
// scrape (typically every 15–60 s) is negligible, and scrape-time
// collection means the values are current without a polling goroutine.
func GoRuntimeCollector() Collector {
	return func(r *Registry) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		r.Gauge("go_goroutines").Set(float64(runtime.NumGoroutine()))
		r.Gauge("go_gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))
		r.Gauge("go_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
		r.Gauge("go_heap_sys_bytes").Set(float64(ms.HeapSys))
		r.Gauge("go_heap_objects").Set(float64(ms.HeapObjects))
		r.Gauge("go_stack_inuse_bytes").Set(float64(ms.StackInuse))
		r.Gauge("go_next_gc_bytes").Set(float64(ms.NextGC))
		r.Gauge("go_gc_cycles_total").Set(float64(ms.NumGC))
		r.Gauge("go_gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
		if ms.NumGC > 0 {
			last := ms.PauseNs[(ms.NumGC+255)%256]
			r.Gauge("go_gc_pause_last_seconds").Set(float64(last) / 1e9)
		} else {
			r.Gauge("go_gc_pause_last_seconds").Set(0)
		}
	}
}
