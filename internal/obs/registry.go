package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d must be ≥ 0; negative deltas are
// ignored so a counter never runs backwards).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that may move in both directions.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets are the fixed histogram bounds (in seconds) used for
// stage latencies: roughly exponential from 5 ms to 500 s, wide enough for
// both real kernels and simulated 5000-way scaling waves.
var DefaultLatencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
}

// Histogram is a fixed-bucket latency histogram: counts[i] observations fell
// in (bounds[i−1], bounds[i]], with one overflow bucket past the last bound.
// The zero value is usable and adopts DefaultLatencyBuckets on first
// Observe — constructing a Histogram directly (or asking the registry for
// one with nil bounds) must never yield a handle that panics or divides by
// zero.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
	max    float64
}

// NewHistogram builds a histogram with the given bucket bounds; nil bounds
// mean DefaultLatencyBuckets. The bounds slice is not copied — callers that
// reuse one may share it across histograms (HistogramVec does).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// ensureInit backs the zero-value contract (callers hold h.mu).
func (h *Histogram) ensureInit() {
	if h.counts == nil {
		if h.bounds == nil {
			h.bounds = DefaultLatencyBuckets
		}
		h.counts = make([]uint64, len(h.bounds)+1)
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ensureInit()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { h.mu.Lock(); defer h.mu.Unlock(); return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.sum }

// Max returns the largest observation (0 with no observations).
func (h *Histogram) Max() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.max }

// Mean returns the mean observation (0 with no observations).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an upper bound for the q-th percentile (q in [0,100]):
// the bucket bound below which at least q% of observations fall. The last
// bucket reports the observed maximum. An empty histogram reports 0 and a
// non-finite or out-of-range q is clamped — Quantile never returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 100 {
		q = 100
	}
	target := uint64(math.Ceil(q / 100 * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Buckets returns the histogram's (bound, cumulative-count) pairs plus the
// overflow count, for exporters.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// export copies the full histogram state under one lock, so exposition
// emits a self-consistent (buckets, sum, count) triple even under
// concurrent Observes.
func (h *Histogram) export() (bounds []float64, counts []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...), h.sum, h.n
}

// Registry is an in-process metrics registry: named counters, gauges, and
// fixed-bucket histograms. All methods are safe for concurrent use; metric
// handles are created on first touch and stable thereafter. Lookups on the
// hot increment path (every burst event under a RegistryRecorder) ride
// sync.Map's lock-free read fast path: after a metric's first touch, no
// Registry method takes a lock to reach it, so recorders on different
// goroutines never contend.
type Registry struct {
	counters sync.Map // string → *Counter
	gauges   sync.Map // string → *Gauge
	hists    sync.Map // string → *Histogram

	counterVecs sync.Map // string → *CounterVec
	gaugeVecs   sync.Map // string → *GaugeVec
	histVecs    sync.Map // string → *HistogramVec

	collectorMu sync.Mutex
	collectors  []Collector
}

// Collector refreshes derived metrics (runtime stats, breaker state, SLO
// burn rates) at observation time. Registered collectors run before every
// Snapshot, Fprint, and WritePrometheus, so scrape-time values are current
// without a background goroutine polling between scrapes.
type Collector func(*Registry)

// RegisterCollector adds a collector. Collectors run in registration order
// and must be safe to invoke concurrently with metric updates.
func (r *Registry) RegisterCollector(c Collector) {
	r.collectorMu.Lock()
	defer r.collectorMu.Unlock()
	r.collectors = append(r.collectors, c)
}

// collect runs the registered collectors.
func (r *Registry) collect() {
	r.collectorMu.Lock()
	cs := append([]Collector(nil), r.collectors...)
	r.collectorMu.Unlock()
	for _, c := range cs {
		c(r)
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges.Load(name); ok {
		return g.(*Gauge)
	}
	g, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return g.(*Gauge)
}

// Histogram returns the named histogram, creating it with the given bounds
// if needed (nil bounds mean DefaultLatencyBuckets). Bounds are fixed at
// creation; later calls ignore the argument. (A racing first touch may
// build a histogram that loses the LoadOrStore and is dropped — the winner
// is the stable handle.)
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	fresh := NewHistogram(append([]float64(nil), bounds...))
	h, _ := r.hists.LoadOrStore(name, fresh)
	return h.(*Histogram)
}

// Snapshot is a point-in-time, sorted view of every metric, for printing and
// expvar export.
type Snapshot struct {
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]float64      `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"histograms"`
	// Series flattens labeled counter and gauge series under
	// `name{label="value",…}` keys; HistSeries does the same for labeled
	// histograms. Both are omitted when no vectors exist.
	Series     map[string]float64      `json:"series,omitempty"`
	HistSeries map[string]HistSnapshot `json:"hist_series,omitempty"`
}

// HistSnapshot summarizes one histogram.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	Max   float64 `json:"max"`
}

// Snapshot captures the current metric values (running collectors first).
func (r *Registry) Snapshot() Snapshot {
	r.collect()
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistSnapshot{},
	}
	r.counters.Range(func(k, v any) bool {
		snap.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		snap.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		snap.Hists[k.(string)] = histSnapshotOf(h)
		return true
	})
	r.counterVecs.Range(func(k, v any) bool {
		vec := v.(*CounterVec)
		vec.Range(func(values []string, c *Counter) {
			if snap.Series == nil {
				snap.Series = map[string]float64{}
			}
			snap.Series[formatSeries(k.(string), vec.core.labels, values)] = float64(c.Value())
		})
		return true
	})
	r.gaugeVecs.Range(func(k, v any) bool {
		vec := v.(*GaugeVec)
		vec.Range(func(values []string, g *Gauge) {
			if snap.Series == nil {
				snap.Series = map[string]float64{}
			}
			snap.Series[formatSeries(k.(string), vec.core.labels, values)] = g.Value()
		})
		return true
	})
	r.histVecs.Range(func(k, v any) bool {
		vec := v.(*HistogramVec)
		vec.Range(func(values []string, h *Histogram) {
			if snap.HistSeries == nil {
				snap.HistSeries = map[string]HistSnapshot{}
			}
			snap.HistSeries[formatSeries(k.(string), vec.core.labels, values)] = histSnapshotOf(h)
		})
		return true
	})
	return snap
}

func histSnapshotOf(h *Histogram) HistSnapshot {
	return HistSnapshot{
		Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
		P50: h.Quantile(50), P95: h.Quantile(95), Max: h.Max(),
	}
}

// Fprint writes a human-readable, alphabetically sorted dump of the
// registry's current values.
func (r *Registry) Fprint(w io.Writer) error {
	snap := r.Snapshot()
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	for _, name := range sortedKeys(snap.Counters) {
		fmt.Fprintf(tw, "counter\t%s\t%d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(tw, "gauge\t%s\t%g\n", name, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Hists) {
		h := snap.Hists[name]
		fmt.Fprintf(tw, "histogram\t%s\tn=%d mean=%.3fs p50≤%.3gs p95≤%.3gs max=%.3fs\n",
			name, h.Count, h.Mean, h.P50, h.P95, h.Max)
	}
	for _, name := range sortedKeys(snap.Series) {
		fmt.Fprintf(tw, "series\t%s\t%g\n", name, snap.Series[name])
	}
	for _, name := range sortedKeys(snap.HistSeries) {
		h := snap.HistSeries[name]
		fmt.Fprintf(tw, "histogram\t%s\tn=%d mean=%.3fs p50≤%.3gs p95≤%.3gs max=%.3fs\n",
			name, h.Count, h.Mean, h.P50, h.P95, h.Max)
	}
	return tw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExpvarFunc adapts the registry to expvar: publish it once under a name
// (e.g. expvar.Publish("propack", reg.ExpvarFunc())) and /debug/vars shows
// a live snapshot.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any { return r.Snapshot() }
}

// RegistryRecorder is a Recorder feeding a Registry: per-stage latency
// histograms ("stage_seconds_<stage>"), per-kind event counters
// ("events_<kind>"), burst counters, and instance gauges. This is what the
// CLI's -debug.addr endpoint exposes while a long run is in flight.
type RegistryRecorder struct {
	Reg *Registry
}

// BeginBurst implements Recorder.
func (rr RegistryRecorder) BeginBurst(b BurstInfo) {
	rr.Reg.Counter("bursts_total").Inc()
	rr.Reg.Counter("functions_total").Add(int64(b.Functions))
	rr.Reg.Counter("instances_total").Add(int64(b.Instances))
	rr.Reg.Gauge("last_burst_instances").Set(float64(b.Instances))
}

// stageMetricNames and eventMetricNames precompute the per-stage and
// per-kind metric names so the recorder's hot path does no string
// concatenation (one allocation per span/event otherwise).
var (
	stageMetricNames = func() [numStages]string {
		var names [numStages]string
		for i := range names {
			names[i] = "stage_seconds_" + Stage(i).String()
		}
		return names
	}()
	eventMetricNames = func() [numEventKinds]string {
		var names [numEventKinds]string
		for i := range names {
			names[i] = "events_" + EventKind(i).String()
		}
		return names
	}()
)

// stageMetricName returns "stage_seconds_<stage>" without allocating for
// known stages.
func stageMetricName(s Stage) string {
	if int(s) < len(stageMetricNames) {
		return stageMetricNames[s]
	}
	return "stage_seconds_" + s.String()
}

// eventMetricName returns "events_<kind>" without allocating for known
// kinds.
func eventMetricName(k EventKind) string {
	if int(k) < len(eventMetricNames) {
		return eventMetricNames[k]
	}
	return "events_" + k.String()
}

// Span implements Recorder.
func (rr RegistryRecorder) Span(s Span) {
	rr.Reg.Histogram(stageMetricName(s.Stage), nil).Observe(s.DurSec())
}

// Event implements Recorder.
func (rr RegistryRecorder) Event(e Event) {
	rr.Reg.Counter(eventMetricName(e.Kind)).Inc()
	if e.DurSec > 0 {
		switch e.Kind {
		case EventCrash, EventTimeout, EventHedgeWaste:
			rr.Reg.Histogram("wasted_seconds", nil).Observe(e.DurSec)
		case EventBackoff:
			rr.Reg.Histogram("backoff_seconds", nil).Observe(e.DurSec)
		}
	}
}
