package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled metric vectors: a family of Counter/Gauge/Histogram children keyed
// by an ordered tuple of label values. Two production constraints shape the
// implementation:
//
//  1. The hot path must stay lock-free after first touch, consistent with
//     the registry's sharded/sync.Map design (PR 5): With() on an existing
//     series is one sync.Map read — no locks, no allocation beyond the key.
//  2. Cardinality must be bounded. Labels derived from request attributes
//     can be driven adversarially (a client minting a fresh tenant key per
//     request would otherwise grow the series map without limit), so every
//     vector caps its distinct series; past the cap, new label tuples
//     collapse into one shared overflow series whose every label value is
//     VecOverflowValue. The cap is a safety net, not a feature — emitters
//     should still map unbounded attributes to small classes before
//     labeling.

// DefaultMaxSeries bounds the distinct label-value combinations per vector.
const DefaultMaxSeries = 256

// VecOverflowValue is the label value of the shared overflow series that
// absorbs new label tuples once a vector reaches its series cap.
const VecOverflowValue = "_overflow"

// labelSep joins label values into the series key. 0x1f (ASCII unit
// separator) cannot appear in sane label values; values containing it would
// only alias with each other.
const labelSep = "\x1f"

// series pairs a child metric with its label values, so exporters recover
// the labels without re-splitting keys.
type series[M any] struct {
	values []string
	metric M
}

// vecCore is the shared label-keying and cardinality-bounding machinery.
type vecCore[M any] struct {
	name   string
	labels []string
	max    int64
	mk     func() M
	m      sync.Map // joined label values → *series[M]
	n      atomic.Int64
}

func newVecCore[M any](name string, labels []string, mk func() M) *vecCore[M] {
	return &vecCore[M]{name: name, labels: append([]string(nil), labels...), max: DefaultMaxSeries, mk: mk}
}

func joinLabels(values []string) string { return strings.Join(values, labelSep) }

// with returns the child for the label tuple, creating it if the vector has
// room and routing to the overflow series otherwise. len(values) must equal
// len(labels) — a mismatch is a programming error at a fixed call site.
func (v *vecCore[M]) with(values []string) M {
	if len(values) != len(v.labels) {
		panic("obs: vector " + v.name + " got wrong label count")
	}
	key := joinLabels(values)
	if s, ok := v.m.Load(key); ok {
		return s.(*series[M]).metric
	}
	if v.n.Load() >= v.max {
		return v.overflow()
	}
	fresh := &series[M]{values: append([]string(nil), values...), metric: v.mk()}
	actual, loaded := v.m.LoadOrStore(key, fresh)
	if !loaded {
		v.n.Add(1)
	}
	return actual.(*series[M]).metric
}

// overflow returns the shared past-cap series, creating it on first need.
// It does not count against the cap (it is the cap's escape hatch).
func (v *vecCore[M]) overflow() M {
	values := make([]string, len(v.labels))
	for i := range values {
		values[i] = VecOverflowValue
	}
	key := joinLabels(values)
	if s, ok := v.m.Load(key); ok {
		return s.(*series[M]).metric
	}
	actual, _ := v.m.LoadOrStore(key, &series[M]{values: values, metric: v.mk()})
	return actual.(*series[M]).metric
}

// len reports the live series count (overflow included once created).
func (v *vecCore[M]) len() int {
	n := 0
	v.m.Range(func(any, any) bool { n++; return true })
	return n
}

// rangeSorted visits every series in deterministic (key-sorted) order.
func (v *vecCore[M]) rangeSorted(f func(values []string, m M)) {
	keys := make([]string, 0, 16)
	v.m.Range(func(k, _ any) bool { keys = append(keys, k.(string)); return true })
	sort.Strings(keys)
	for _, k := range keys {
		if s, ok := v.m.Load(k); ok {
			sv := s.(*series[M])
			f(sv.values, sv.metric)
		}
	}
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ core *vecCore[*Counter] }

// With returns the counter for the label tuple.
func (v *CounterVec) With(values ...string) *Counter { return v.core.with(values) }

// Labels returns the vector's label names.
func (v *CounterVec) Labels() []string { return append([]string(nil), v.core.labels...) }

// Len reports the live series count.
func (v *CounterVec) Len() int { return v.core.len() }

// Range visits every series in deterministic order.
func (v *CounterVec) Range(f func(values []string, c *Counter)) { v.core.rangeSorted(f) }

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ core *vecCore[*Gauge] }

// With returns the gauge for the label tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return v.core.with(values) }

// Labels returns the vector's label names.
func (v *GaugeVec) Labels() []string { return append([]string(nil), v.core.labels...) }

// Len reports the live series count.
func (v *GaugeVec) Len() int { return v.core.len() }

// Range visits every series in deterministic order.
func (v *GaugeVec) Range(f func(values []string, g *Gauge)) { v.core.rangeSorted(f) }

// HistogramVec is a family of histograms keyed by label values; every child
// shares the bounds fixed at the vector's creation.
type HistogramVec struct{ core *vecCore[*Histogram] }

// With returns the histogram for the label tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.core.with(values) }

// Labels returns the vector's label names.
func (v *HistogramVec) Labels() []string { return append([]string(nil), v.core.labels...) }

// Len reports the live series count.
func (v *HistogramVec) Len() int { return v.core.len() }

// Range visits every series in deterministic order.
func (v *HistogramVec) Range(f func(values []string, h *Histogram)) { v.core.rangeSorted(f) }

// CounterVec returns the named counter vector, creating it with the given
// label names if needed. Label names are fixed at creation; later calls
// ignore the argument (same contract as Histogram bounds).
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	if v, ok := r.counterVecs.Load(name); ok {
		return v.(*CounterVec)
	}
	fresh := &CounterVec{core: newVecCore(name, labels, func() *Counter { return &Counter{} })}
	v, _ := r.counterVecs.LoadOrStore(name, fresh)
	return v.(*CounterVec)
}

// GaugeVec returns the named gauge vector, creating it with the given label
// names if needed.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	if v, ok := r.gaugeVecs.Load(name); ok {
		return v.(*GaugeVec)
	}
	fresh := &GaugeVec{core: newVecCore(name, labels, func() *Gauge { return &Gauge{} })}
	v, _ := r.gaugeVecs.LoadOrStore(name, fresh)
	return v.(*GaugeVec)
}

// HistogramVec returns the named histogram vector, creating it with the
// given label names and bucket bounds (nil bounds mean
// DefaultLatencyBuckets) if needed.
func (r *Registry) HistogramVec(name string, labels []string, bounds []float64) *HistogramVec {
	if v, ok := r.histVecs.Load(name); ok {
		return v.(*HistogramVec)
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	shared := append([]float64(nil), bounds...)
	fresh := &HistogramVec{core: newVecCore(name, labels, func() *Histogram { return NewHistogram(shared) })}
	v, _ := r.histVecs.LoadOrStore(name, fresh)
	return v.(*HistogramVec)
}
