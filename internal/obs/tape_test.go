package obs

import (
	"bytes"
	"testing"
)

func TestTapeReplayPreservesInterleaving(t *testing.T) {
	// Drive the same interleaved call sequence through a Tape→JSONL replay
	// and a direct JSONL recorder; the bytes must match exactly. Memory
	// could not serve as the buffer here — it splits spans and events into
	// separate slices and would lose this interleaving.
	drive := func(rec Recorder) {
		rec.BeginBurst(BurstInfo{Platform: "test", Label: "a", Functions: 10, Degree: 2, Instances: 5})
		rec.Span(Span{Instance: 0, Stage: StageSched, StartSec: 0, EndSec: 0.5})
		rec.Event(Event{Instance: 0, Kind: EventStartRetry, AtSec: 0.25})
		rec.Span(Span{Instance: 1, Stage: StageExec, StartSec: 0.5, EndSec: 2})
		rec.BeginBurst(BurstInfo{Platform: "test", Label: "b", Functions: 4, Degree: 1, Instances: 4})
		rec.Event(Event{Instance: 2, Kind: EventCrash, AtSec: 1.5, DurSec: 1.5})
		rec.Span(Span{Instance: 2, Stage: StageExec, StartSec: 2, EndSec: 3})
	}

	var direct bytes.Buffer
	drive(NewJSONL(&direct))

	var replayed bytes.Buffer
	tape := &Tape{}
	drive(tape)
	if tape.Len() != 7 {
		t.Fatalf("tape recorded %d ops, want 7", tape.Len())
	}
	tape.Replay(NewJSONL(&replayed))

	if !bytes.Equal(direct.Bytes(), replayed.Bytes()) {
		t.Fatalf("replay bytes differ:\n direct:\n%s\n replayed:\n%s", direct.String(), replayed.String())
	}
}

func TestTapeNilSafety(t *testing.T) {
	var nilTape *Tape
	nilTape.Replay(NewJSONL(&bytes.Buffer{})) // must not panic
	tape := &Tape{}
	tape.BeginBurst(BurstInfo{})
	tape.Replay(nil) // nil recorder: no-op, must not panic
}

func TestTapeReplayIsRepeatable(t *testing.T) {
	tape := &Tape{}
	tape.BeginBurst(BurstInfo{Platform: "p", Functions: 1, Degree: 1, Instances: 1})
	tape.Span(Span{Stage: StageExec, EndSec: 1})
	var a, b bytes.Buffer
	tape.Replay(NewJSONL(&a))
	tape.Replay(NewJSONL(&b))
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("second replay differs from first")
	}
}
