package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the process-global expvar namespace: expvar.Publish
// panics on duplicate names, and tests may start several debug servers.
var publishOnce sync.Once

// DebugMux builds the Go diagnostic mux shared by the CLI's -debug.addr
// server and the serve daemon (which mounts it on its main listener instead
// of running a second server):
//
//	/debug/pprof/...  CPU, heap, goroutine, block profiles
//	/debug/vars       expvar (incl. a live snapshot of reg, if non-nil)
//	/metrics          Prometheus text exposition of reg, with the legacy
//	                  human dump behind ?format=legacy (absent when reg is
//	                  nil) — see MetricsHandler
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		publishOnce.Do(func() { expvar.Publish("propack", reg.ExpvarFunc()) })
		mux.Handle("/metrics", MetricsHandler(reg))
	}
	return mux
}

// debugShutdownTimeout bounds how long StartDebug's stop function waits for
// in-flight scrapes (a pprof profile capture can be seconds long) before
// hard-closing.
const debugShutdownTimeout = 5 * time.Second

// StartDebug serves DebugMux(reg) on addr for profiling long simulations
// and local runs. It returns the bound address (useful with ":0"), a stop
// function, and any listen error. The stop function shuts the server down
// gracefully — it stops accepting, waits up to debugShutdownTimeout for
// in-flight requests (a profile mid-capture finishes instead of being cut),
// then closes whatever remains — so callers no longer leak the server on
// exit.
func StartDebug(addr string, reg *Registry) (string, func() error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux(reg)}
	go func() { _ = srv.Serve(l) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), debugShutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
		return nil
	}
	return l.Addr().String(), stop, nil
}
