package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-global expvar namespace: expvar.Publish
// panics on duplicate names, and tests may start several debug servers.
var publishOnce sync.Once

// StartDebug serves the Go diagnostic endpoints on addr for profiling long
// simulations and local runs:
//
//	/debug/pprof/...  CPU, heap, goroutine, block profiles
//	/debug/vars       expvar (incl. a live snapshot of reg, if non-nil)
//	/metrics          human-readable dump of reg (404 when reg is nil)
//
// It returns the bound address (useful with ":0"), a stop function, and any
// listen error. The server runs until stop is called or the process exits.
func StartDebug(addr string, reg *Registry) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		publishOnce.Do(func() { expvar.Publish("propack", reg.ExpvarFunc()) })
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = reg.Fprint(w)
		})
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(l) }()
	return l.Addr().String(), srv.Close, nil
}
