package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentRegistryCounts hammers one registry from many goroutines —
// first-touch races on the same names, increments, gauge stores, histogram
// observes, and snapshots taken mid-flight — then checks the final totals.
// Run under -race this also proves the lock-free read path is sound.
func TestConcurrentRegistryCounts(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const iters = 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("shared_total").Inc()
				reg.Counter(fmt.Sprintf("per_goroutine_%d", g%4)).Inc()
				reg.Gauge("last_value").Set(float64(i))
				reg.Histogram("latency", nil).Observe(0.01 * float64(i%10))
				if i%100 == 0 {
					_ = reg.Snapshot() // concurrent snapshots must not wedge or race
				}
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["shared_total"]; got != goroutines*iters {
		t.Fatalf("shared_total = %d, want %d", got, goroutines*iters)
	}
	var perG int64
	for g := 0; g < 4; g++ {
		perG += snap.Counters[fmt.Sprintf("per_goroutine_%d", g)]
	}
	if perG != goroutines*iters {
		t.Fatalf("per-goroutine counters sum to %d, want %d", perG, goroutines*iters)
	}
	if got := snap.Hists["latency"].Count; got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
}

// TestConcurrentRegistryRecorder drives the RegistryRecorder hot path from
// multiple goroutines and checks the event counters, exercising the
// precomputed metric-name tables.
func TestConcurrentRegistryRecorder(t *testing.T) {
	reg := NewRegistry()
	rr := RegistryRecorder{Reg: reg}
	const goroutines = 8
	const events = 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				rr.Event(Event{Kind: EventCrash, DurSec: 0.5})
				rr.Span(Span{Stage: StageSched, StartSec: 0, EndSec: 0.1})
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Counters[eventMetricName(EventCrash)]; got != goroutines*events {
		t.Fatalf("crash events = %d, want %d", got, goroutines*events)
	}
	if got := snap.Hists[stageMetricName(StageSched)].Count; got != goroutines*events {
		t.Fatalf("sched spans = %d, want %d", got, goroutines*events)
	}
	if got := snap.Hists["wasted_seconds"].Count; got != goroutines*events {
		t.Fatalf("wasted observations = %d, want %d", got, goroutines*events)
	}
}

// BenchmarkRegistryRecorderEvent measures the recorder's per-event cost —
// the path converted from a mutex-guarded map lookup plus string concat to
// sync.Map reads over precomputed names.
func BenchmarkRegistryRecorderEvent(b *testing.B) {
	reg := NewRegistry()
	rr := RegistryRecorder{Reg: reg}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rr.Event(Event{Kind: EventStartRetry})
		}
	})
}

// BenchmarkRegistryCounterInc measures a bare named-counter increment.
func BenchmarkRegistryCounterInc(b *testing.B) {
	reg := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			reg.Counter("bursts_total").Inc()
		}
	})
}

// mutexRegistry replicates the pre-sync.Map registry lookup (a mutex
// around a plain map) so the conversion's effect is measurable in one run.
type mutexRegistry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

func (r *mutexRegistry) counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// BenchmarkRegistryCounterIncMutex is the historical baseline for
// BenchmarkRegistryCounterInc: the same increment through a mutex-guarded
// map.
func BenchmarkRegistryCounterIncMutex(b *testing.B) {
	reg := &mutexRegistry{counters: map[string]*Counter{}}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			reg.counter("bursts_total").Inc()
		}
	})
}
