package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDebugMuxStandalone mounts the diagnostic mux without a server — the
// way the serve daemon embeds it on its own listener — and checks the
// routes respond.
func TestDebugMuxStandalone(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bursts_total").Add(3)
	mux := DebugMux(reg)
	for path, want := range map[string]string{
		"/metrics":                       "bursts_total",
		"/debug/vars":                    "cmdline",
		"/debug/pprof/cmdline":           "",
		"/debug/pprof/goroutine?debug=1": "goroutine",
	} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, rr.Code)
		}
		if want != "" && !strings.Contains(rr.Body.String(), want) {
			t.Fatalf("GET %s missing %q", path, want)
		}
	}
	// Without a registry there is no /metrics route.
	rr := httptest.NewRecorder()
	DebugMux(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("nil-registry /metrics: status %d, want 404", rr.Code)
	}
}

// TestDebugServerStopIsClean verifies the stop function actually tears the
// listener down (the pre-refactor server leaked until process exit) and is
// safe to call with no requests in flight.
func TestDebugServerStopIsClean(t *testing.T) {
	addr, stop, err := StartDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("debug server still accepting after stop")
	}
}
