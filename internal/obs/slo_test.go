package obs

import (
	"sync"
	"testing"
	"time"
)

// sloClock is a settable test clock.
type sloClock struct {
	mu sync.Mutex
	t  time.Time
}

func newSLOClock() *sloClock {
	return &sloClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *sloClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *sloClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testSLO(clock *sloClock) *SLO {
	return NewSLO(SLOConfig{Clock: clock.now})
}

func TestSLONilReceiver(t *testing.T) {
	var s *SLO
	s.Record(true, 0.1) // must not panic
}

func TestSLODefaults(t *testing.T) {
	s := NewSLO(SLOConfig{})
	if s.Objectives() != DefaultSLOObjectives() {
		t.Errorf("objectives = %+v", s.Objectives())
	}
	st := s.Status()
	if len(st.Windows) != len(DefaultSLOWindows()) {
		t.Fatalf("windows = %d", len(st.Windows))
	}
	// Quiet service: vacuously healthy.
	for _, w := range st.Windows {
		if w.ErrorRate != 0 || w.LatencyAttainment != 1 || w.AvailabilityBurn != 0 || w.LatencyBurn != 0 {
			t.Errorf("idle window not vacuously healthy: %+v", w)
		}
	}
	if st.PageBurn || st.TicketBurn {
		t.Error("idle tracker alerting")
	}
}

func TestSLOBurnMath(t *testing.T) {
	clock := newSLOClock()
	s := testSLO(clock)
	// 1000 requests, 10 failures → error rate 1%. Availability objective
	// 99.9% → budget 0.1% → burn 10.
	for i := 0; i < 990; i++ {
		s.Record(true, 0.01)
	}
	for i := 0; i < 10; i++ {
		s.Record(false, 0.01)
	}
	st := s.Status()
	w := st.Windows[0] // 5m
	if w.Total != 1000 {
		t.Fatalf("total = %d", w.Total)
	}
	if diff := w.ErrorRate - 0.01; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("error rate = %v, want 0.01", w.ErrorRate)
	}
	if diff := w.AvailabilityBurn - 10; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("availability burn = %v, want 10", w.AvailabilityBurn)
	}
	// All successes were fast → latency attainment 1, burn 0.
	if w.LatencyAttainment != 1 || w.LatencyBurn != 0 {
		t.Errorf("latency: attainment=%v burn=%v", w.LatencyAttainment, w.LatencyBurn)
	}
}

func TestSLOLatencyBurn(t *testing.T) {
	clock := newSLOClock()
	s := testSLO(clock)
	// 100 successes, 10 slow (past the 250 ms threshold) → attainment 0.9.
	// Latency objective 95% → budget 5% → burn (1−0.9)/0.05 = 2.
	for i := 0; i < 90; i++ {
		s.Record(true, 0.01)
	}
	for i := 0; i < 10; i++ {
		s.Record(true, 1.5)
	}
	w := s.Status().Windows[0]
	if diff := w.LatencyAttainment - 0.9; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("attainment = %v, want 0.9", w.LatencyAttainment)
	}
	if diff := w.LatencyBurn - 2; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("latency burn = %v, want 2", w.LatencyBurn)
	}
	// A slow failure is not counted against the latency objective (it
	// already burned availability budget).
	s.Record(false, 9.9)
	w = s.Status().Windows[0]
	if diff := w.LatencyAttainment - 0.9; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("attainment after slow failure = %v, want 0.9", w.LatencyAttainment)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clock := newSLOClock()
	s := testSLO(clock)
	for i := 0; i < 100; i++ {
		s.Record(false, 0.01)
	}
	st := s.Status()
	if st.Windows[0].Total != 100 {
		t.Fatalf("5m window total = %d", st.Windows[0].Total)
	}
	// Step past the 5m window: the failures leave the short window but stay
	// in the 6h one.
	clock.advance(6 * time.Minute)
	st = s.Status()
	if st.Windows[0].Total != 0 {
		t.Errorf("5m window total after expiry = %d, want 0", st.Windows[0].Total)
	}
	last := st.Windows[len(st.Windows)-1]
	if last.Total != 100 {
		t.Errorf("6h window total = %d, want 100", last.Total)
	}
	// Step past the longest horizon: the ring reuses slots and the tallies
	// vanish everywhere.
	clock.advance(7 * time.Hour)
	s.Record(true, 0.01) // touch a slot so stale buckets are judged by time, not slot reuse
	st = s.Status()
	if last := st.Windows[len(st.Windows)-1]; last.Total != 1 {
		t.Errorf("6h window total after horizon = %d, want 1", last.Total)
	}
}

func TestSLOPageAndTicketRules(t *testing.T) {
	clock := newSLOClock()
	s := testSLO(clock)
	// 100% failures: error rate 1, burn 1/0.001 = 1000 across all windows →
	// both alert pairs fire.
	for i := 0; i < 50; i++ {
		s.Record(false, 0.01)
	}
	st := s.Status()
	if !st.PageBurn || !st.TicketBurn {
		t.Errorf("full outage did not alert: page=%v ticket=%v", st.PageBurn, st.TicketBurn)
	}

	// Error rate just above budget (burn ≈ 2): no page, no ticket.
	clock2 := newSLOClock()
	s2 := testSLO(clock2)
	for i := 0; i < 998; i++ {
		s2.Record(true, 0.01)
	}
	s2.Record(false, 0.01)
	s2.Record(false, 0.01)
	st2 := s2.Status()
	if st2.PageBurn || st2.TicketBurn {
		t.Errorf("burn ~2 alerted: page=%v ticket=%v", st2.PageBurn, st2.TicketBurn)
	}

	// A spike that has left the short window no longer pages even though the
	// long window still burns (the dual-window rule's point).
	clock3 := newSLOClock()
	s3 := testSLO(clock3)
	for i := 0; i < 100; i++ {
		s3.Record(false, 0.01)
	}
	clock3.advance(10 * time.Minute)
	for i := 0; i < 1000; i++ {
		s3.Record(true, 0.01)
	}
	st3 := s3.Status()
	if st3.PageBurn {
		t.Error("stale spike still paging after short window recovered")
	}
}

func TestSLOZeroBudgetSentinel(t *testing.T) {
	clock := newSLOClock()
	s := NewSLO(SLOConfig{
		Objectives: SLOObjectives{Availability: 1, LatencyTarget: 1, LatencyThresholdSec: 0.1},
		Clock:      clock.now,
	})
	s.Record(false, 0.01)
	w := s.Status().Windows[0]
	if w.AvailabilityBurn != 1e9 {
		t.Errorf("zero-budget burn = %v, want 1e9 sentinel", w.AvailabilityBurn)
	}
}

func TestSLOCollectorExports(t *testing.T) {
	clock := newSLOClock()
	s := testSLO(clock)
	s.Record(true, 0.01)
	s.Record(false, 0.01)
	reg := NewRegistry()
	reg.RegisterCollector(SLOCollector(s))
	snap := reg.Snapshot()
	if _, ok := snap.Series[`slo_error_rate{window="300s"}`]; !ok {
		t.Errorf("slo_error_rate series missing: %v", snap.Series)
	}
	if _, ok := snap.Gauges["slo_page_burn"]; !ok {
		t.Error("slo_page_burn gauge missing")
	}
}

// TestSLOConcurrentRecord hammers Record and Status together for the -race
// stress job.
func TestSLOConcurrentRecord(t *testing.T) {
	clock := newSLOClock()
	s := testSLO(clock)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				s.Record(i%10 != 0, 0.01)
				if i%500 == 0 {
					clock.advance(time.Second)
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		_ = s.Status()
	}
	wg.Wait()
	st := s.Status()
	if st.Windows[0].Total == 0 {
		t.Error("no traffic recorded")
	}
}
