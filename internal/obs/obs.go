// Package obs is the event-level observability layer shared by the burst
// simulator (internal/platform) and the local FaaS runtime
// (internal/localfaas). Both emit the same typed records — lifecycle stage
// spans and fault/policy point events — into a pluggable Recorder, so one
// set of exporters (JSONL, Chrome trace-event, stage summaries, a metrics
// registry) serves simulated and real executions alike.
//
// Design constraints, in order:
//
//  1. A nil Recorder must cost nothing: emitters guard every call with a
//     nil check and allocate no tracking state, so the simulator's hot path
//     is unchanged when observability is off.
//  2. Recorder implementations must be safe for concurrent use — the local
//     runtime emits from one goroutine per instance.
//  3. Records are plain values with no pointers into emitter state, so a
//     recorder may retain them indefinitely.
//
// Times are float64 seconds relative to the enclosing burst's invocation
// (virtual seconds in the simulator, wall-clock seconds in localfaas).
package obs

// Stage identifies one step of an instance's lifecycle:
// queued → scheduled → build → ship → boot → exec (→ hedge duplicate).
type Stage uint8

const (
	// StageQueued is time spent waiting for admission: account-level
	// throttling or a staggered arrival, before the scheduler is entered.
	StageQueued Stage = iota
	// StageSched covers scheduler entry through placement (queue wait plus
	// the placement search).
	StageSched
	// StageBuild is the container/microVM image build.
	StageBuild
	// StageShip moves the built image to its host.
	StageShip
	// StageBoot covers host-side boot: ship-done through execution start
	// (for retried instances this includes backoff and re-boot loops; for
	// warm instances it is the warm-start latency).
	StageBoot
	// StageExec is the winning attempt's execution.
	StageExec
	// StageHedge is the speculative duplicate's execution (win or lose).
	StageHedge

	// The remaining stages belong to the serve daemon's request path rather
	// than the instance lifecycle: each guard of the robustness chain emits
	// one span per request, so a request trace reads
	// limit → admit → (plan | coalesce).

	// StageLimit is the per-tenant rate-limit check.
	StageLimit
	// StageAdmit is time spent waiting for an admission slot.
	StageAdmit
	// StageCoalesce is a follower request waiting on a coalesced leader's
	// computation (singleflight).
	StageCoalesce
	// StagePlan is the planner computation itself (the coalesced leader).
	StagePlan

	numStages = int(StagePlan) + 1
)

var stageNames = [numStages]string{
	"queued", "sched", "build", "ship", "boot", "exec", "hedge",
	"limit", "admit", "coalesce", "plan",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in lifecycle order, for exporters that want a
// fixed row ordering.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// EventKind identifies a fault or policy point event.
type EventKind uint8

const (
	// EventStartRetry marks a failed cold start about to be re-submitted.
	EventStartRetry EventKind = iota
	// EventCrash marks a mid-execution crash of an attempt; DurSec is the
	// billed partial execution time lost.
	EventCrash
	// EventTimeout marks an execution-timeout kill; DurSec is the billed
	// partial execution time lost.
	EventTimeout
	// EventStraggle marks an attempt hit by straggler slowdown; DurSec is
	// the slowed execution duration.
	EventStraggle
	// EventHedgeLaunch marks the speculative duplicate's launch.
	EventHedgeLaunch
	// EventHedgeWin marks a duplicate that finished before its primary.
	EventHedgeWin
	// EventHedgeWaste marks a duplicate the primary beat; DurSec is the
	// duplicate's billed (wasted) execution time.
	EventHedgeWaste
	// EventBackoff marks a retry backoff wait chosen by the resilience
	// policy; DurSec is the delay.
	EventBackoff

	numEventKinds = int(EventBackoff) + 1
)

var eventKindNames = [numEventKinds]string{
	"start-retry", "crash", "timeout", "straggle",
	"hedge-launch", "hedge-win", "hedge-waste", "backoff",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Span is one completed lifecycle stage of one instance.
type Span struct {
	Instance int
	Stage    Stage
	StartSec float64
	EndSec   float64
}

// DurSec is the span's duration in seconds.
func (s Span) DurSec() float64 { return s.EndSec - s.StartSec }

// Event is a point-in-time fault or policy event of one instance.
type Event struct {
	Instance int
	Kind     EventKind
	AtSec    float64
	// DurSec carries the event's associated duration where meaningful
	// (billed partial work, backoff delay, wasted hedge time); 0 otherwise.
	DurSec float64
}

// BurstInfo identifies one burst within a recording session. A Recorder may
// receive several bursts (a degree sweep, a heterogeneous job's deployments,
// ProPack's probe runs) and keeps them apart by BeginBurst boundaries.
type BurstInfo struct {
	// Platform is the executing platform's name ("AWS Lambda", "localfaas").
	Platform string
	// Label distinguishes bursts of the same shape ("unpacked", "degree-8");
	// may be empty.
	Label string
	// Functions is C, the logical function count.
	Functions int
	// Degree is the packing degree; 0 for heterogeneous (mixed) bursts.
	Degree int
	// Instances is the number of function instances spawned.
	Instances int
}

// Recorder receives the typed observability records of one or more bursts.
// Implementations must be safe for concurrent use by multiple goroutines.
// Emitters treat a nil Recorder as "observability off" and never call it.
type Recorder interface {
	// BeginBurst marks the start of a new burst; subsequent Span and Event
	// calls belong to it until the next BeginBurst.
	BeginBurst(BurstInfo)
	// Span records one completed lifecycle stage.
	Span(Span)
	// Event records a fault or policy point event.
	Event(Event)
}

// multi fans records out to several recorders in order.
type multi []Recorder

func (m multi) BeginBurst(b BurstInfo) {
	for _, r := range m {
		r.BeginBurst(b)
	}
}

func (m multi) Span(s Span) {
	for _, r := range m {
		r.Span(s)
	}
}

func (m multi) Event(e Event) {
	for _, r := range m {
		r.Event(e)
	}
}

// Multi combines recorders into one that forwards every record to each, in
// order. Nil entries are dropped; with no non-nil entries Multi returns nil,
// so emitters' nil checks keep their zero-cost fast path.
func Multi(recs ...Recorder) Recorder {
	var out multi
	for _, r := range recs {
		if r != nil {
			out = append(out, r)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}
