package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestStageAndKindNames(t *testing.T) {
	if got := StageSched.String(); got != "sched" {
		t.Fatalf("StageSched = %q", got)
	}
	if got := StageHedge.String(); got != "hedge" {
		t.Fatalf("StageHedge = %q", got)
	}
	if got := Stage(200).String(); got != "unknown" {
		t.Fatalf("out-of-range stage = %q", got)
	}
	if got := EventHedgeWaste.String(); got != "hedge-waste" {
		t.Fatalf("EventHedgeWaste = %q", got)
	}
	if got := EventKind(200).String(); got != "unknown" {
		t.Fatalf("out-of-range kind = %q", got)
	}
	if n := len(Stages()); n != numStages {
		t.Fatalf("Stages() has %d entries, want %d", n, numStages)
	}
}

func TestMemoryRecorderGroupsByBurst(t *testing.T) {
	var m Memory
	m.BeginBurst(BurstInfo{Platform: "a", Instances: 2})
	m.Span(Span{Instance: 0, Stage: StageExec, StartSec: 1, EndSec: 3})
	m.Event(Event{Instance: 1, Kind: EventCrash, AtSec: 2, DurSec: 1})
	m.BeginBurst(BurstInfo{Platform: "b", Instances: 1})
	m.Span(Span{Instance: 0, Stage: StageSched, StartSec: 0, EndSec: 0.5})

	bursts := m.Bursts()
	if len(bursts) != 2 {
		t.Fatalf("got %d bursts, want 2", len(bursts))
	}
	if bursts[0].Info.Platform != "a" || len(bursts[0].Spans) != 1 || len(bursts[0].Events) != 1 {
		t.Fatalf("burst 0 wrong: %+v", bursts[0])
	}
	if bursts[1].Info.Platform != "b" || len(bursts[1].Spans) != 1 || len(bursts[1].Events) != 0 {
		t.Fatalf("burst 1 wrong: %+v", bursts[1])
	}
	if got := bursts[0].Spans[0].DurSec(); got != 2 {
		t.Fatalf("span duration %g, want 2", got)
	}
}

func TestMemoryRecorderConcurrent(t *testing.T) {
	var m Memory
	m.BeginBurst(BurstInfo{Platform: "x", Instances: 100})
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Span(Span{Instance: i, Stage: StageExec, StartSec: 0, EndSec: 1})
			m.Event(Event{Instance: i, Kind: EventStartRetry, AtSec: 0.5})
		}(i)
	}
	wg.Wait()
	b := m.Bursts()
	if len(b[0].Spans) != 100 || len(b[0].Events) != 100 {
		t.Fatalf("lost records: %d spans, %d events", len(b[0].Spans), len(b[0].Events))
	}
}

func TestMultiFansOutAndDropsNils(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi should be nil")
	}
	var a, b Memory
	if got := Multi(nil, &a); got != &a {
		t.Fatal("single recorder should be returned unwrapped")
	}
	rec := Multi(&a, nil, &b)
	rec.BeginBurst(BurstInfo{Platform: "p"})
	rec.Span(Span{Stage: StageBoot, EndSec: 1})
	rec.Event(Event{Kind: EventTimeout, AtSec: 1})
	for name, m := range map[string]*Memory{"a": &a, "b": &b} {
		bs := m.Bursts()
		if len(bs) != 1 || len(bs[0].Spans) != 1 || len(bs[0].Events) != 1 {
			t.Fatalf("recorder %s missed records: %+v", name, bs)
		}
	}
}

func TestJSONLOutput(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.BeginBurst(BurstInfo{Platform: "AWS Lambda", Label: "demo", Functions: 10, Degree: 2, Instances: 5})
	j.Span(Span{Instance: 0, Stage: StageSched, StartSec: 0, EndSec: 0.25})
	j.Event(Event{Instance: 3, Kind: EventCrash, AtSec: 1.5, DurSec: 0.5})
	j.BeginBurst(BurstInfo{Platform: "AWS Lambda", Functions: 10, Degree: 5, Instances: 2})
	j.Span(Span{Instance: 1, Stage: StageExec, StartSec: 1, EndSec: 2})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	var types []string
	var bursts []float64
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		types = append(types, rec["type"].(string))
		if b, ok := rec["burst"]; ok {
			bursts = append(bursts, b.(float64))
		}
	}
	if want := []string{"burst", "span", "event", "burst", "span"}; fmt.Sprint(types) != fmt.Sprint(want) {
		t.Fatalf("line types %v, want %v", types, want)
	}
	if want := []float64{0, 0, 1}; fmt.Sprint(bursts) != fmt.Sprint(want) {
		t.Fatalf("burst indices %v, want %v", bursts, want)
	}
	if !strings.Contains(sb.String(), `"stage":"sched"`) || !strings.Contains(sb.String(), `"kind":"crash"`) {
		t.Fatalf("missing stage/kind names:\n%s", sb.String())
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("events_crash")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if reg.Counter("events_crash") != c {
		t.Fatal("counter handle not stable")
	}

	g := reg.Gauge("last_burst_instances")
	g.Set(42.5)
	if got := g.Value(); got != 42.5 {
		t.Fatalf("gauge = %g", got)
	}

	h := reg.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 2, 3, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 555.5 || h.Max() != 500 {
		t.Fatalf("histogram stats wrong: n=%d sum=%g max=%g", h.Count(), h.Sum(), h.Max())
	}
	if got := h.Quantile(50); got != 10 { // 3rd of 5 obs falls in (1,10]
		t.Fatalf("p50 = %g, want 10", got)
	}
	if got := h.Quantile(100); got != 500 { // overflow bucket reports max
		t.Fatalf("p100 = %g, want 500", got)
	}

	snap := reg.Snapshot()
	if snap.Counters["events_crash"] != 3 || snap.Gauges["last_burst_instances"] != 42.5 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	if hs := snap.Hists["lat"]; hs.Count != 5 || hs.Mean != 111.1 {
		t.Fatalf("hist snapshot wrong: %+v", hs)
	}

	var sb strings.Builder
	if err := reg.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"events_crash", "last_burst_instances", "lat", "n=5"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Fprint missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRegistryRecorder(t *testing.T) {
	reg := NewRegistry()
	rec := RegistryRecorder{Reg: reg}
	rec.BeginBurst(BurstInfo{Platform: "p", Functions: 20, Degree: 4, Instances: 5})
	rec.Span(Span{Stage: StageExec, StartSec: 0, EndSec: 2})
	rec.Span(Span{Stage: StageExec, StartSec: 0, EndSec: 4})
	rec.Event(Event{Kind: EventCrash, DurSec: 1.5})
	rec.Event(Event{Kind: EventBackoff, DurSec: 0.5})

	if got := reg.Counter("bursts_total").Value(); got != 1 {
		t.Fatalf("bursts_total = %d", got)
	}
	if got := reg.Counter("instances_total").Value(); got != 5 {
		t.Fatalf("instances_total = %d", got)
	}
	if got := reg.Histogram("stage_seconds_exec", nil).Count(); got != 2 {
		t.Fatalf("exec histogram count = %d", got)
	}
	if got := reg.Counter("events_crash").Value(); got != 1 {
		t.Fatalf("events_crash = %d", got)
	}
	if got := reg.Histogram("wasted_seconds", nil).Sum(); got != 1.5 {
		t.Fatalf("wasted_seconds sum = %g", got)
	}
	if got := reg.Histogram("backoff_seconds", nil).Sum(); got != 0.5 {
		t.Fatalf("backoff_seconds sum = %g", got)
	}
}

func TestStageSummary(t *testing.T) {
	var m Memory
	m.BeginBurst(BurstInfo{Platform: "p", Instances: 2})
	m.Span(Span{Instance: 0, Stage: StageSched, StartSec: 0, EndSec: 1})
	m.Span(Span{Instance: 1, Stage: StageSched, StartSec: 0, EndSec: 3})
	m.Span(Span{Instance: 0, Stage: StageExec, StartSec: 1, EndSec: 2})
	m.Event(Event{Instance: 1, Kind: EventTimeout, AtSec: 3})

	var sb strings.Builder
	if err := FprintStageSummary(&sb, m.Bursts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"stage", "sched", "exec", "timeout"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "build") {
		t.Fatalf("summary should omit empty stages:\n%s", out)
	}
	if !strings.Contains(out, "4.0s") { // sched total = 1 + 3
		t.Fatalf("summary missing sched total:\n%s", out)
	}
}

func TestLoggerAndLogRecorder(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "bogus", false); err == nil {
		t.Fatal("bogus format accepted")
	}
	var sb strings.Builder
	lg, err := NewLogger(&sb, "json", true)
	if err != nil {
		t.Fatal(err)
	}
	rec := LogRecorder{L: lg}
	rec.BeginBurst(BurstInfo{Platform: "p", Functions: 4, Degree: 2, Instances: 2})
	rec.Span(Span{Instance: 0, Stage: StageBoot, StartSec: 0, EndSec: 0.1})
	rec.Event(Event{Instance: 1, Kind: EventStraggle, AtSec: 0.2, DurSec: 4})
	out := sb.String()
	for _, want := range []string{"burst begin", "stage span", "fault event", `"kind":"straggle"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
	// Every line must be valid JSON with the json handler.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSON log line %q: %v", sc.Text(), err)
		}
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bursts_total").Inc()
	addr, stop, err := StartDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	for path, want := range map[string]string{
		"/metrics":    "bursts_total",
		"/debug/vars": "cmdline",
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var body strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			body.WriteString(sc.Text())
			body.WriteByte('\n')
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(body.String(), want) {
			t.Fatalf("GET %s missing %q:\n%s", path, want, body.String())
		}
	}
}
