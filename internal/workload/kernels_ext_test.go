package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

// --- Video codec round trip ---

func TestIDCTInvertsDCT(t *testing.T) {
	var block, coef, back [64]float64
	state := uint64(3)
	for i := range block {
		state = splitmix64(state)
		block[i] = float64(state%512) - 256
	}
	dct8x8(&block, &coef)
	idct8x8(&coef, &back)
	for i := range block {
		if math.Abs(back[i]-block[i]) > 1e-9 {
			t.Fatalf("IDCT∘DCT not identity at %d: %g vs %g", i, back[i], block[i])
		}
	}
}

func TestEncodeDecodePSNR(t *testing.T) {
	task := &videoTask{seed: 9, frames: 1}
	frame := make([]float64, videoFrameW*videoFrameH)
	task.synthesizeFrame(frame, 0)

	// Finer quantization must reconstruct better.
	_, psnrFine, err := EncodeDecodeFrame(frame, 2)
	if err != nil {
		t.Fatal(err)
	}
	recon, psnrCoarse, err := EncodeDecodeFrame(frame, 40)
	if err != nil {
		t.Fatal(err)
	}
	if psnrFine <= psnrCoarse {
		t.Fatalf("finer quantization should score higher PSNR: %g vs %g", psnrFine, psnrCoarse)
	}
	if psnrFine < 35 {
		t.Fatalf("step-2 reconstruction unexpectedly poor: %g dB", psnrFine)
	}
	// Quantization error per coefficient ≤ step/2, so per-pixel error is
	// bounded (orthonormal transform): |err| ≤ step/2 · 8.
	for i := range frame {
		if math.Abs(recon[i]-frame[i]) > 40*4 {
			t.Fatalf("pixel %d error too large: %g", i, recon[i]-frame[i])
		}
	}
}

func TestEncodeDecodeValidation(t *testing.T) {
	if _, _, err := EncodeDecodeFrame(make([]float64, 10), 4); err == nil {
		t.Fatal("wrong frame size accepted")
	}
	if _, _, err := EncodeDecodeFrame(make([]float64, videoFrameW*videoFrameH), 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestPSNR(t *testing.T) {
	a := []float64{1, 2, 3}
	if !math.IsInf(PSNR(a, a, 255), 1) {
		t.Fatal("identical signals should give +Inf PSNR")
	}
	if !math.IsNaN(PSNR(a, a[:2], 255)) {
		t.Fatal("length mismatch should give NaN")
	}
	// MSE of 1 at peak 255 → 10·log10(255²) ≈ 48.13 dB.
	b := []float64{2, 3, 4}
	if got := PSNR(a, b, 255); math.Abs(got-48.13) > 0.01 {
		t.Fatalf("PSNR %g, want ≈48.13", got)
	}
}

// --- External sort ---

func TestExternalSortMatchesInMemory(t *testing.T) {
	store := storage.NewStore()
	state := uint64(17)
	rs := make([]record, 5000)
	for i := range rs {
		state = splitmix64(state)
		rs[i] = record{key: state % 997, payload: uint32(i)}
	}
	want := make([]record, len(rs))
	copy(want, rs)
	mergeSortRecords(want)

	got, err := ExternalSort(store, "spill", rs, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %+v want %+v (external sort must be stable)", i, got[i], want[i])
		}
	}
	if store.List() != 0 {
		t.Fatalf("spill runs not cleaned up: %d objects remain", store.List())
	}
}

func TestExternalSortEdges(t *testing.T) {
	store := storage.NewStore()
	if _, err := ExternalSort(nil, "x", nil, 4); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := ExternalSort(store, "x", nil, 0); err == nil {
		t.Fatal("zero run size accepted")
	}
	out, err := ExternalSort(store, "x", nil, 4)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %v", out, err)
	}
	// Single run (input smaller than runSize).
	rs := []record{{key: 3}, {key: 1}, {key: 2}}
	out, err = ExternalSort(store, "y", rs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].key != 1 || out[2].key != 3 {
		t.Fatalf("single-run sort wrong: %+v", out)
	}
	// Input must not be mutated.
	if rs[0].key != 3 {
		t.Fatal("ExternalSort mutated its input")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	rs := []record{{key: 0, payload: 0}, {key: ^uint64(0), payload: ^uint32(0)}, {key: 42, payload: 7}}
	back, err := decodeRecords(encodeRecords(rs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if back[i] != rs[i] {
			t.Fatalf("round trip lost record %d: %+v vs %+v", i, back[i], rs[i])
		}
	}
	if _, err := decodeRecords(make([]byte, 13)); err == nil {
		t.Fatal("ragged data accepted")
	}
}

// Property: external sort equals stdlib sort for arbitrary inputs and run
// sizes.
func TestExternalSortProperty(t *testing.T) {
	f := func(keys []uint16, runRaw uint8) bool {
		store := storage.NewStore()
		rs := make([]record, len(keys))
		for i, k := range keys {
			rs[i] = record{key: uint64(k), payload: uint32(i)}
		}
		runSize := int(runRaw)%64 + 1
		got, err := ExternalSort(store, "p", rs, runSize)
		if err != nil {
			return false
		}
		want := make([]record, len(rs))
		copy(want, rs)
		sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].key != want[i].key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Smith-Waterman traceback ---

func TestTracebackScoreMatchesLinearSpace(t *testing.T) {
	subst := substitutionMatrix(5)
	for trial := 0; trial < 20; trial++ {
		q := randomSequence(uint64(trial*2+1), 30+trial)
		s := randomSequence(uint64(trial*2+2), 40+trial)
		a, err := AlignLocalTraceback(q, s, subst)
		if err != nil {
			t.Fatal(err)
		}
		if want := alignLocal(q, s, subst); a.Score != want {
			t.Fatalf("trial %d: traceback score %d ≠ linear-space %d", trial, a.Score, want)
		}
	}
}

// rescoreAlignment recomputes an alignment's score from its columns.
func rescoreAlignment(a Alignment, subst *[alphabet][alphabet]int32) int32 {
	var score int32
	inGap := false
	for i := range a.AlignedQuery {
		qc, sc := a.AlignedQuery[i], a.AlignedSubject[i]
		switch {
		case qc == GapByte || sc == GapByte:
			if inGap {
				score -= swGapExtend
			} else {
				score -= swGapOpen
				inGap = true
			}
		default:
			score += subst[qc][sc]
			inGap = false
		}
	}
	return score
}

func TestTracebackAlignmentRescores(t *testing.T) {
	subst := substitutionMatrix(8)
	q := randomSequence(100, 50)
	s := append(append(randomSequence(101, 15), q[10:35]...), randomSequence(102, 15)...)
	a, err := AlignLocalTraceback(q, s, subst)
	if err != nil {
		t.Fatal(err)
	}
	if got := rescoreAlignment(a, subst); got != a.Score {
		t.Fatalf("alignment rescan %d ≠ reported score %d", got, a.Score)
	}
	if a.Identity() <= 0.5 {
		t.Fatalf("embedded-motif alignment should be identity-rich: %g", a.Identity())
	}
}

func TestTracebackSelfAlignment(t *testing.T) {
	subst := substitutionMatrix(2)
	seq := randomSequence(9, 25)
	a, err := AlignLocalTraceback(seq, seq, subst)
	if err != nil {
		t.Fatal(err)
	}
	if a.Identity() != 1 {
		t.Fatalf("self alignment identity %g, want 1", a.Identity())
	}
	if len(a.AlignedQuery) != len(seq) || a.QueryStart != 0 || a.SubjectStart != 0 {
		t.Fatalf("self alignment should span the sequence: %+v", a)
	}
	if _, err := AlignLocalTraceback(nil, seq, subst); err == nil {
		t.Fatal("empty query accepted")
	}
}

// Property: for random sequences the traceback score always equals the
// linear-space score and the recovered alignment rescans to it.
func TestTracebackConsistencyProperty(t *testing.T) {
	subst := substitutionMatrix(77)
	f := func(seedQ, seedS uint16, lq, ls uint8) bool {
		q := randomSequence(uint64(seedQ)+1, int(lq)%40+2)
		s := randomSequence(uint64(seedS)+7, int(ls)%40+2)
		a, err := AlignLocalTraceback(q, s, subst)
		if err != nil {
			return false
		}
		return a.Score == alignLocal(q, s, subst) && rescoreAlignment(a, subst) == a.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- Xapian BM25 ---

func TestBM25PrefersHeavierTermUse(t *testing.T) {
	task := &xapianTask{seed: 3, docs: 4, topK: 4}
	// Hand-built index: term 0 appears 8× in doc 0, 1× in doc 1; all docs
	// same length.
	index := make([][]posting, xapianVocab)
	index[0] = []posting{{doc: 0, tf: 8}, {doc: 1, tf: 1}}
	index[1] = []posting{{doc: 2, tf: 3}}
	docLens := []int32{100, 100, 100, 100}
	top, err := task.SearchBM25(index, docLens, []int32{0}, DefaultBM25())
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0] != 0 || top[1] != 1 {
		t.Fatalf("BM25 ranking wrong: %v", top)
	}
}

func TestBM25LengthNormalization(t *testing.T) {
	task := &xapianTask{seed: 3, docs: 2, topK: 2}
	index := make([][]posting, xapianVocab)
	// Same tf, wildly different document lengths: the short document must
	// rank first when b > 0.
	index[5] = []posting{{doc: 0, tf: 3}, {doc: 1, tf: 3}}
	docLens := []int32{50, 500}
	top, err := task.SearchBM25(index, docLens, []int32{5}, DefaultBM25())
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 0 {
		t.Fatalf("short document should rank first under length normalization: %v", top)
	}
	// With b = 0 the two tie; both must still be returned.
	top, err = task.SearchBM25(index, docLens, []int32{5}, BM25Params{K1: 1.2, B: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("expected both docs, got %v", top)
	}
}

func TestBM25Validation(t *testing.T) {
	task := &xapianTask{seed: 3, docs: 2, topK: 2}
	index := make([][]posting, xapianVocab)
	docLens := []int32{10, 10}
	if _, err := task.SearchBM25(index, docLens, []int32{1}, BM25Params{K1: -1, B: 0.5}); err == nil {
		t.Fatal("negative k1 accepted")
	}
	if _, err := task.SearchBM25(index, docLens, []int32{1}, BM25Params{K1: 1, B: 2}); err == nil {
		t.Fatal("b>1 accepted")
	}
	if _, err := task.SearchBM25(index, docLens, []int32{-1}, DefaultBM25()); err == nil {
		t.Fatal("out-of-vocabulary term accepted")
	}
}

func TestBM25OnRealIndex(t *testing.T) {
	task := Xapian{Docs: 400, Queries: 1, TopK: 10}.NewTask(55).(*xapianTask)
	index, docLens := task.buildIndex()
	top, err := task.SearchBM25(index, docLens, []int32{2, 30, 400}, DefaultBM25())
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || len(top) > 10 {
		t.Fatalf("top-k size %d", len(top))
	}
	seen := map[int32]bool{}
	for _, d := range top {
		if d < 0 || int(d) >= task.docs || seen[d] {
			t.Fatalf("bad result set %v", top)
		}
		seen[d] = true
	}
}

// TestSortTaskExternalMatchesInMemory: the external-sort reducer path must
// produce the same checksum as the in-memory path.
func TestSortTaskExternalMatchesInMemory(t *testing.T) {
	inMem, err := Sort{Records: 4096, Partitions: 4}.NewTask(77).Run()
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Sort{Records: 4096, Partitions: 4, ExternalRunSize: 100}.NewTask(77).Run()
	if err != nil {
		t.Fatal(err)
	}
	if inMem != ext {
		t.Fatalf("external path diverged: %x vs %x", ext, inMem)
	}
}
