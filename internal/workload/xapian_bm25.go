package workload

import (
	"container/heap"
	"fmt"
	"math"
)

// BM25 ranking for the Xapian workload: the scoring function real Xapian
// defaults to (its BM25Weight scheme), alongside the simpler tf-idf scorer
// in xapian.go. Both operate on the same inverted index.

// BM25Params are the standard free parameters.
type BM25Params struct {
	K1 float64 // term-frequency saturation; Xapian's default is 1.0–2.0
	B  float64 // length normalization in [0,1]
}

// DefaultBM25 returns the conventional parameterization.
func DefaultBM25() BM25Params { return BM25Params{K1: 1.2, B: 0.75} }

// Validate reports an error for malformed parameters.
func (p BM25Params) Validate() error {
	if p.K1 < 0 {
		return fmt.Errorf("workload: BM25 k1 %g < 0", p.K1)
	}
	if p.B < 0 || p.B > 1 {
		return fmt.Errorf("workload: BM25 b %g outside [0,1]", p.B)
	}
	return nil
}

// SearchBM25 runs a top-k BM25 query over an index built by buildIndex.
// docLens holds per-document lengths; terms may repeat (repeats weigh the
// term higher, as in a real query parser).
func (t *xapianTask) SearchBM25(index [][]posting, docLens []int32,
	terms []int32, params BM25Params) ([]int32, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := float64(t.docs)
	var avgLen float64
	for _, l := range docLens {
		avgLen += float64(l)
	}
	avgLen /= float64(len(docLens))

	// Query-term weights: repeated query terms accumulate.
	qtf := make(map[int32]float64, len(terms))
	for _, term := range terms {
		if term < 0 || int(term) >= len(index) {
			return nil, fmt.Errorf("workload: query term %d out of vocabulary", term)
		}
		qtf[term]++
	}

	scores := make(map[int32]float64)
	for term, qw := range qtf {
		df := float64(len(index[term]))
		if df == 0 {
			continue
		}
		// The BM25 idf with the +0.5 smoothing; clamped at a small positive
		// floor so ubiquitous terms cannot flip the ranking.
		idf := math.Log((n - df + 0.5) / (df + 0.5))
		if idf < 1e-6 {
			idf = 1e-6
		}
		for _, p := range index[term] {
			tf := float64(p.tf)
			dl := float64(docLens[p.doc])
			denom := tf + params.K1*(1-params.B+params.B*dl/avgLen)
			scores[p.doc] += qw * idf * tf * (params.K1 + 1) / denom
		}
	}

	h := make(scoreHeap, 0, t.topK)
	heap.Init(&h)
	for doc, s := range scores {
		switch {
		case len(h) < t.topK:
			heap.Push(&h, scoredDoc{doc: doc, score: s})
		case s > h[0].score || (s == h[0].score && doc < h[0].doc):
			h[0] = scoredDoc{doc: doc, score: s}
			heap.Fix(&h, 0)
		}
	}
	out := make([]int32, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(scoredDoc).doc
	}
	return out, nil
}
