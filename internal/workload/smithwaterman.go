package workload

import (
	"fmt"

	"repro/internal/interfere"
)

// SmithWaterman is the parallel bioinformatics benchmark: local alignment of
// a query protein against a database of subject sequences with affine gap
// penalties. Each serverless function aligns the query against one shard of
// the database — a large number of independent, compute-intensive dynamic
// programs, which is why this application packs poorly past the core count
// (paper Fig. 17: maximum degree 35, Oracle degree far lower).
type SmithWaterman struct {
	// QueryLen is the query length; zero means the default (200).
	QueryLen int
	// Subjects is the number of database sequences per shard; zero means
	// the default.
	Subjects int
	// SubjectLen is each subject's length; zero means the default (256).
	SubjectLen int
}

// Name implements Workload.
func (SmithWaterman) Name() string { return "Smith-Waterman" }

// Demand implements Workload. 292 MB per function gives the paper's maximum
// packing degree of 35 on a 10 GB instance; the demand is overwhelmingly
// CPU, with cache-resident DP rows (low bandwidth need).
func (SmithWaterman) Demand() interfere.Demand {
	return interfere.Demand{
		CPUSeconds:      92,
		IOSeconds:       10,
		MemoryMB:        292,
		MemBWMBps:       3600,
		InputMB:         12,
		OutputMB:        0.2,
		ShuffleFraction: 0,
	}
}

const (
	swDefaultQueryLen   = 200
	swDefaultSubjects   = 48
	swDefaultSubjectLen = 256

	swGapOpen   = 11
	swGapExtend = 1
	alphabet    = 20 // amino acids
)

// NewTask implements Workload.
func (s SmithWaterman) NewTask(seed int64) Task {
	t := &swTask{
		seed:       uint64(seed),
		queryLen:   s.QueryLen,
		subjects:   s.Subjects,
		subjectLen: s.SubjectLen,
	}
	if t.queryLen <= 0 {
		t.queryLen = swDefaultQueryLen
	}
	if t.subjects <= 0 {
		t.subjects = swDefaultSubjects
	}
	if t.subjectLen <= 0 {
		t.subjectLen = swDefaultSubjectLen
	}
	return t
}

type swTask struct {
	seed       uint64
	queryLen   int
	subjects   int
	subjectLen int
}

// Run aligns the query against every subject in the shard and folds each
// best local score into the checksum. The DP uses the standard Gotoh
// affine-gap recurrence in linear space (two rows).
func (t *swTask) Run() (uint64, error) {
	if t.queryLen < 1 || t.subjects < 1 || t.subjectLen < 1 {
		return 0, fmt.Errorf("smithwaterman: invalid shape %+v", *t)
	}
	subst := substitutionMatrix(t.seed)
	query := randomSequence(t.seed^0x9e770, t.queryLen)
	sum := t.seed
	for s := 0; s < t.subjects; s++ {
		subject := randomSequence(splitmix64(t.seed^uint64(s+1)), t.subjectLen)
		score := alignLocal(query, subject, subst)
		if score < 0 {
			return 0, fmt.Errorf("smithwaterman: negative local score %d", score)
		}
		sum = mix(sum, uint64(score))
	}
	return sum, nil
}

func randomSequence(seed uint64, n int) []byte {
	s := make([]byte, n)
	state := seed
	for i := range s {
		state = splitmix64(state)
		s[i] = byte(state % alphabet)
	}
	return s
}

// substitutionMatrix builds a deterministic BLOSUM-like matrix: strong
// positive diagonal, mildly negative off-diagonal with symmetric noise.
func substitutionMatrix(seed uint64) *[alphabet][alphabet]int32 {
	var m [alphabet][alphabet]int32
	state := splitmix64(seed ^ 0xb105)
	for i := 0; i < alphabet; i++ {
		for j := i; j < alphabet; j++ {
			state = splitmix64(state)
			var v int32
			if i == j {
				v = 4 + int32(state%6) // 4..9
			} else {
				v = -4 + int32(state%5) // -4..0
			}
			m[i][j], m[j][i] = v, v
		}
	}
	return &m
}

// alignLocal computes the best Smith-Waterman local alignment score of q vs
// s under affine gaps, in O(len(q)) space.
func alignLocal(q, s []byte, subst *[alphabet][alphabet]int32) int32 {
	n := len(q)
	const negInf = int32(-1 << 30)
	h := make([]int32, n+1) // best score ending at (i, j)
	e := make([]int32, n+1) // best score ending in a gap in s
	var best int32
	for i := range e {
		e[i] = negInf
	}
	for j := 1; j <= len(s); j++ {
		var diag int32  // h[j-1 row above][i-1]
		f := negInf     // gap in q for this row
		var prevH int32 // h[current row][i-1]
		for i := 1; i <= n; i++ {
			up := h[i]
			e[i] = max32(e[i]-swGapExtend, up-swGapOpen)
			f = max32(f-swGapExtend, prevH-swGapOpen)
			score := diag + subst[q[i-1]][s[j-1]]
			score = max32(score, e[i])
			score = max32(score, f)
			if score < 0 {
				score = 0
			}
			diag = up
			h[i] = score
			prevH = score
			if score > best {
				best = score
			}
		}
	}
	return best
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
