package workload

import (
	"testing"
)

// --- Motion estimation ---

func TestEstimateMotionRecoversShift(t *testing.T) {
	task := &videoTask{seed: 21, frames: 1}
	prev := make([]float64, videoFrameW*videoFrameH)
	task.synthesizeFrame(prev, 0)
	for _, shift := range [][2]int{{2, 1}, {-3, 2}, {0, 0}, {4, -4}} {
		cur := shiftFrame(prev, shift[0], shift[1])
		field, err := EstimateMotion(prev, cur, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Interior blocks (away from the clamped borders) must recover the
		// exact shift with zero residual.
		matched := 0
		for by := 1; by < field.BlocksY-1; by++ {
			for bx := 1; bx < field.BlocksX-1; bx++ {
				v := field.At(bx, by)
				if v.DX == -shift[0] && v.DY == -shift[1] && v.SAD == 0 {
					matched++
				}
			}
		}
		interior := (field.BlocksX - 2) * (field.BlocksY - 2)
		if matched < interior*9/10 {
			t.Fatalf("shift %v: only %d/%d interior blocks recovered the motion",
				shift, matched, interior)
		}
	}
}

func TestEstimateMotionIdentityIsZero(t *testing.T) {
	task := &videoTask{seed: 22, frames: 1}
	frame := make([]float64, videoFrameW*videoFrameH)
	task.synthesizeFrame(frame, 0)
	field, err := EstimateMotion(frame, frame, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Identical frames: some candidate must reach SAD 0 for every block,
	// so the residual energy is exactly zero.
	if field.TotalSAD() != 0 {
		t.Fatalf("identity motion should have zero residual, got %g", field.TotalSAD())
	}
	if len(field.Vectors) != (videoFrameW/8)*(videoFrameH/8) {
		t.Fatalf("field size %d", len(field.Vectors))
	}
}

func TestEstimateMotionValidation(t *testing.T) {
	frame := make([]float64, videoFrameW*videoFrameH)
	if _, err := EstimateMotion(frame[:10], frame, 4); err == nil {
		t.Fatal("short prev accepted")
	}
	if _, err := EstimateMotion(frame, frame, -1); err == nil {
		t.Fatal("negative range accepted")
	}
}

// --- Phrase search ---

func TestPhraseSearchFindsKnownPhrase(t *testing.T) {
	task := Xapian{Docs: 300, Queries: 1}.NewTask(31).(*xapianTask)
	pi := task.BuildPositionalIndex()
	// Take an actual 3-term run from a known document; phrase search must
	// return that document.
	doc := int32(17)
	phrase := pi.docs[doc][40:43]
	hits, err := pi.PhraseSearch(phrase)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h == doc {
			found = true
		}
		if !hasConsecutive(pi.docs[h], phrase) {
			t.Fatalf("doc %d returned but does not contain the phrase", h)
		}
	}
	if !found {
		t.Fatalf("doc %d contains the phrase but was not returned (hits %v)", doc, hits)
	}
	// Results sorted ascending and unique.
	for i := 1; i < len(hits); i++ {
		if hits[i] <= hits[i-1] {
			t.Fatalf("hits unsorted or duplicated: %v", hits)
		}
	}
}

func TestPhraseSearchExhaustive(t *testing.T) {
	// Cross-check against brute force over the whole corpus.
	task := Xapian{Docs: 120, Queries: 1}.NewTask(32).(*xapianTask)
	pi := task.BuildPositionalIndex()
	phrase := pi.docs[5][10:12]
	hits, err := pi.PhraseSearch(phrase)
	if err != nil {
		t.Fatal(err)
	}
	var want []int32
	for d := 0; d < task.docs; d++ {
		if hasConsecutive(pi.docs[d], phrase) {
			want = append(want, int32(d))
		}
	}
	if len(hits) != len(want) {
		t.Fatalf("got %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("got %v, want %v", hits, want)
		}
	}
}

func TestPhraseSearchSingleTermMatchesIndex(t *testing.T) {
	task := Xapian{Docs: 150, Queries: 1}.NewTask(33).(*xapianTask)
	pi := task.BuildPositionalIndex()
	term := int32(3) // a frequent Zipf head term
	hits, err := pi.PhraseSearch([]int32{term})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(pi.index[term]) {
		t.Fatalf("single-term phrase hits %d ≠ posting list %d", len(hits), len(pi.index[term]))
	}
}

func TestPhraseSearchValidation(t *testing.T) {
	task := Xapian{Docs: 50, Queries: 1}.NewTask(34).(*xapianTask)
	pi := task.BuildPositionalIndex()
	if _, err := pi.PhraseSearch(nil); err == nil {
		t.Fatal("empty phrase accepted")
	}
	if _, err := pi.PhraseSearch([]int32{-1}); err == nil {
		t.Fatal("out-of-vocabulary term accepted")
	}
	// An impossible phrase returns no hits without error.
	hits, err := pi.PhraseSearch([]int32{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if !hasConsecutive(pi.docs[h], []int32{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}) {
			t.Fatal("false positive")
		}
	}
}

// TestPositionalIndexConsistentWithTFIndex: term frequencies derived from
// the positional sequences must match the inverted index the scorer uses.
func TestPositionalIndexConsistentWithTFIndex(t *testing.T) {
	task := Xapian{Docs: 100, Queries: 1}.NewTask(35).(*xapianTask)
	pi := task.BuildPositionalIndex()
	plainIndex, _ := task.buildIndex()
	for term := int32(0); term < 50; term++ {
		if len(pi.index[term]) != len(plainIndex[term]) {
			t.Fatalf("term %d: positional df %d ≠ plain df %d",
				term, len(pi.index[term]), len(plainIndex[term]))
		}
	}
}
