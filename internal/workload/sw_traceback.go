package workload

import "fmt"

// Smith-Waterman with traceback: the full-matrix variant that recovers the
// actual local alignment, not just its score. The linear-space scorer in
// smithwaterman.go is what the serverless functions run at scale; this one
// serves result inspection and gives the tests a strong cross-check — both
// variants must agree on the score for every input.

// Alignment is one recovered local alignment.
type Alignment struct {
	Score int32
	// QueryStart/SubjectStart are 0-based offsets of the aligned region.
	QueryStart, SubjectStart int
	// AlignedQuery/AlignedSubject are the aligned residues with 255 as the
	// gap marker, equal lengths.
	AlignedQuery, AlignedSubject []byte
}

// GapByte marks a gap position in an Alignment.
const GapByte = 255

// Identity reports the fraction of alignment columns with equal residues.
func (a Alignment) Identity() float64 {
	if len(a.AlignedQuery) == 0 {
		return 0
	}
	match := 0
	for i := range a.AlignedQuery {
		if a.AlignedQuery[i] == a.AlignedSubject[i] && a.AlignedQuery[i] != GapByte {
			match++
		}
	}
	return float64(match) / float64(len(a.AlignedQuery))
}

const (
	tbStop = iota
	tbDiag
	tbUp   // gap in subject (consume query)
	tbLeft // gap in query (consume subject)
)

// AlignLocalTraceback computes the best Smith-Waterman local alignment of q
// vs s under the same affine-gap parameters as the scorer and returns the
// alignment. It uses O(len(q)·len(s)) memory; intended for result
// inspection on modest inputs, not the hot path.
func AlignLocalTraceback(q, s []byte, subst *[alphabet][alphabet]int32) (Alignment, error) {
	n, m := len(q), len(s)
	if n == 0 || m == 0 {
		return Alignment{}, fmt.Errorf("workload: empty sequence")
	}
	const negInf = int32(-1 << 30)
	idx := func(i, j int) int { return i*(m+1) + j }
	h := make([]int32, (n+1)*(m+1))
	e := make([]int32, (n+1)*(m+1)) // gap in s, extends vertically
	f := make([]int32, (n+1)*(m+1)) // gap in q, extends horizontally
	dir := make([]uint8, (n+1)*(m+1))
	for j := 0; j <= m; j++ {
		e[idx(0, j)] = negInf
		f[idx(0, j)] = negInf
	}
	for i := 0; i <= n; i++ {
		e[idx(i, 0)] = negInf
		f[idx(i, 0)] = negInf
	}
	var best int32
	bi, bj := 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			e[idx(i, j)] = max32(e[idx(i-1, j)]-swGapExtend, h[idx(i-1, j)]-swGapOpen)
			f[idx(i, j)] = max32(f[idx(i, j-1)]-swGapExtend, h[idx(i, j-1)]-swGapOpen)
			diag := h[idx(i-1, j-1)] + subst[q[i-1]][s[j-1]]
			score := diag
			d := uint8(tbDiag)
			if e[idx(i, j)] > score {
				score, d = e[idx(i, j)], tbUp
			}
			if f[idx(i, j)] > score {
				score, d = f[idx(i, j)], tbLeft
			}
			if score <= 0 {
				score, d = 0, tbStop
			}
			h[idx(i, j)] = score
			dir[idx(i, j)] = d
			if score > best {
				best, bi, bj = score, i, j
			}
		}
	}
	// Trace back from the best cell with a three-state walk (H/E/F): affine
	// gaps extend inside E or F until the chain's opening transition back
	// to H, so the state must be tracked explicitly.
	const (
		inH = iota
		inE
		inF
	)
	var aq, as []byte
	i, j := bi, bj
	state := inH
	for i > 0 && j > 0 {
		switch state {
		case inH:
			if h[idx(i, j)] <= 0 {
				goto done // local alignment starts here
			}
			switch dir[idx(i, j)] {
			case tbDiag:
				aq = append(aq, q[i-1])
				as = append(as, s[j-1])
				i--
				j--
			case tbUp:
				state = inE
			case tbLeft:
				state = inF
			default:
				goto done // tbStop
			}
		case inE:
			// A gap in the subject: consume one query residue, then decide
			// whether the chain opened here or extends.
			aq = append(aq, q[i-1])
			as = append(as, GapByte)
			opened := e[idx(i, j)] == h[idx(i-1, j)]-swGapOpen
			i--
			if opened {
				state = inH
			}
		case inF:
			aq = append(aq, GapByte)
			as = append(as, s[j-1])
			opened := f[idx(i, j)] == h[idx(i, j-1)]-swGapOpen
			j--
			if opened {
				state = inH
			}
		}
	}
done:
	reverseBytes(aq)
	reverseBytes(as)
	return Alignment{
		Score:          best,
		QueryStart:     i,
		SubjectStart:   j,
		AlignedQuery:   aq,
		AlignedSubject: as,
	}, nil
}

func reverseBytes(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}
