package workload

import "fmt"

// Phrase search for the Xapian workload: exact consecutive-term matching,
// the positional-index feature real Xapian exposes as PHRASE queries. The
// positional index stores each document's full term sequence (the corpus is
// small); candidates come from intersecting the inverted lists, and
// positions verify adjacency.

// PositionalIndex pairs the inverted index with per-document term
// sequences.
type PositionalIndex struct {
	index [][]posting
	docs  [][]int32 // term sequence per document
}

// BuildPositionalIndex materializes the task's corpus with positions.
// It is deterministic for the task's seed.
func (t *xapianTask) BuildPositionalIndex() *PositionalIndex {
	index := make([][]posting, xapianVocab)
	docs := make([][]int32, t.docs)
	state := splitmix64(t.seed)
	tf := make(map[int32]int32, xapianDocLen)
	for d := 0; d < t.docs; d++ {
		seq := make([]int32, xapianDocLen)
		for k := range tf {
			delete(tf, k)
		}
		for w := 0; w < xapianDocLen; w++ {
			state = splitmix64(state)
			term := zipfTerm(state)
			seq[w] = term
			tf[term]++
		}
		docs[d] = seq
		for term, f := range tf {
			index[term] = append(index[term], posting{doc: int32(d), tf: f})
		}
	}
	return &PositionalIndex{index: index, docs: docs}
}

// PhraseSearch returns the documents containing the terms consecutively in
// order, ascending by document ID. Single-term phrases degenerate to plain
// containment.
func (p *PositionalIndex) PhraseSearch(phrase []int32) ([]int32, error) {
	if len(phrase) == 0 {
		return nil, fmt.Errorf("workload: empty phrase")
	}
	for _, term := range phrase {
		if term < 0 || int(term) >= len(p.index) {
			return nil, fmt.Errorf("workload: phrase term %d out of vocabulary", term)
		}
	}
	// Intersect posting lists, driving from the rarest term.
	rarest := phrase[0]
	for _, term := range phrase[1:] {
		if len(p.index[term]) < len(p.index[rarest]) {
			rarest = term
		}
	}
	var out []int32
candidates:
	for _, post := range p.index[rarest] {
		doc := post.doc
		// Cheap containment pre-check against every other term.
		for _, term := range phrase {
			if term == rarest {
				continue
			}
			if !containsDoc(p.index[term], doc) {
				continue candidates
			}
		}
		if hasConsecutive(p.docs[doc], phrase) {
			out = append(out, doc)
		}
	}
	insertionSortInt32(out)
	return out, nil
}

// containsDoc binary-searches a posting list (ascending by doc) for doc.
func containsDoc(plist []posting, doc int32) bool {
	lo, hi := 0, len(plist)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case plist[mid].doc < doc:
			lo = mid + 1
		case plist[mid].doc > doc:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// hasConsecutive reports whether seq contains phrase as a contiguous run.
func hasConsecutive(seq, phrase []int32) bool {
outer:
	for i := 0; i+len(phrase) <= len(seq); i++ {
		for j, term := range phrase {
			if seq[i+j] != term {
				continue outer
			}
		}
		return true
	}
	return false
}

func insertionSortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
