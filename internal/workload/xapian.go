package workload

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/interfere"
)

// Xapian is the latency-critical search benchmark from TailBench: a search
// engine serving ranked queries over Wikipedia-like pages with a strict QoS
// bound on the 95th-percentile latency. Each serverless function builds (or
// receives) an index shard and serves a batch of queries against it with
// tf-idf ranking.
type Xapian struct {
	// Docs in the shard; zero means the calibrated default.
	Docs int
	// Queries served per task; zero means the default.
	Queries int
	// TopK results per query; zero means the default (10).
	TopK int
}

// Name implements Workload.
func (Xapian) Name() string { return "Xapian" }

// Demand implements Workload. 512 MB per function bounds the packing degree
// at 20; the app is the shortest-running of the suite, matching its
// latency-critical role.
func (Xapian) Demand() interfere.Demand {
	return interfere.Demand{
		CPUSeconds:      14,
		IOSeconds:       8,
		MemoryMB:        512,
		MemBWMBps:       2600,
		InputMB:         20,
		OutputMB:        0.5,
		ShuffleFraction: 0,
	}
}

const (
	xapianDefaultDocs    = 2000
	xapianDefaultQueries = 64
	xapianDefaultTopK    = 10
	xapianVocab          = 5000
	xapianDocLen         = 120
	xapianQueryTerms     = 4
)

// NewTask implements Workload.
func (x Xapian) NewTask(seed int64) Task {
	t := &xapianTask{seed: uint64(seed), docs: x.Docs, queries: x.Queries, topK: x.TopK}
	if t.docs <= 0 {
		t.docs = xapianDefaultDocs
	}
	if t.queries <= 0 {
		t.queries = xapianDefaultQueries
	}
	if t.topK <= 0 {
		t.topK = xapianDefaultTopK
	}
	return t
}

type xapianTask struct {
	seed    uint64
	docs    int
	queries int
	topK    int
}

type posting struct {
	doc int32
	tf  int32
}

// Run builds an inverted index over a synthetic Zipf-distributed corpus,
// then serves ranked tf-idf queries, folding the top document IDs of every
// query into the checksum.
func (t *xapianTask) Run() (uint64, error) {
	if t.docs < 1 || t.queries < 0 || t.topK < 1 {
		return 0, fmt.Errorf("xapian: invalid shape %+v", *t)
	}
	index, docLens := t.buildIndex()
	idf := make([]float64, xapianVocab)
	for term, plist := range index {
		if len(plist) > 0 {
			idf[term] = math.Log(float64(t.docs) / float64(len(plist)))
		}
	}
	sum := t.seed
	state := splitmix64(t.seed ^ 0x9e41e5)
	scores := make([]float64, t.docs)
	touched := make([]int32, 0, 4096)
	for q := 0; q < t.queries; q++ {
		// Compose a query of distinct Zipf-sampled terms.
		var terms [xapianQueryTerms]int32
		for i := range terms {
			state = splitmix64(state)
			terms[i] = zipfTerm(state)
		}
		top := t.search(index, docLens, idf, terms[:], scores, &touched)
		for _, d := range top {
			sum = mix(sum, uint64(d))
		}
	}
	return sum, nil
}

func (t *xapianTask) buildIndex() (index [][]posting, docLens []int32) {
	index = make([][]posting, xapianVocab)
	docLens = make([]int32, t.docs)
	state := splitmix64(t.seed)
	tf := make(map[int32]int32, xapianDocLen)
	for d := 0; d < t.docs; d++ {
		for k := range tf {
			delete(tf, k)
		}
		for w := 0; w < xapianDocLen; w++ {
			state = splitmix64(state)
			tf[zipfTerm(state)]++
		}
		docLens[d] = xapianDocLen
		for term, f := range tf {
			index[term] = append(index[term], posting{doc: int32(d), tf: f})
		}
	}
	return index, docLens
}

// zipfTerm maps a hash to a term ID with an approximately Zipfian(s≈1)
// distribution via inverse-CDF on the harmonic series approximation.
func zipfTerm(h uint64) int32 {
	u := float64(h%1e9)/1e9 + 1e-12
	// CDF(k) ≈ ln(k+1)/ln(V+1) for s=1.
	k := math.Exp(u*math.Log(xapianVocab+1)) - 1
	if k >= xapianVocab {
		k = xapianVocab - 1
	}
	return int32(k)
}

type scoredDoc struct {
	doc   int32
	score float64
}

// scoreHeap is a min-heap on score so the root is the weakest of the
// current top-k.
type scoreHeap []scoredDoc

func (h scoreHeap) Len() int            { return len(h) }
func (h scoreHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h scoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoreHeap) Push(x interface{}) { *h = append(*h, x.(scoredDoc)) }
func (h *scoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

func (t *xapianTask) search(index [][]posting, docLens []int32, idf []float64,
	terms []int32, scores []float64, touched *[]int32) []int32 {
	*touched = (*touched)[:0]
	for _, term := range terms {
		w := idf[term]
		if w == 0 {
			continue // term in every doc (or none): no discriminative power
		}
		for _, p := range index[term] {
			if scores[p.doc] == 0 {
				*touched = append(*touched, p.doc)
			}
			scores[p.doc] += w * (1 + math.Log(float64(p.tf))) / float64(docLens[p.doc])
		}
	}
	h := make(scoreHeap, 0, t.topK)
	heap.Init(&h)
	for _, d := range *touched {
		s := scores[d]
		scores[d] = 0
		switch {
		case len(h) < t.topK:
			heap.Push(&h, scoredDoc{doc: d, score: s})
		case s > h[0].score:
			h[0] = scoredDoc{doc: d, score: s}
			heap.Fix(&h, 0)
		}
	}
	// Extract in descending score order for a deterministic result.
	out := make([]int32, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(scoredDoc).doc
	}
	return out
}
