package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// --- Sort kernel ---

func TestMergeSortRecordsMatchesStdlib(t *testing.T) {
	state := uint64(99)
	for _, n := range []int{0, 1, 2, 3, 17, 1000, 4097} {
		rs := make([]record, n)
		for i := range rs {
			state = splitmix64(state)
			rs[i] = record{key: state % 50, payload: uint32(i)}
		}
		want := make([]record, n)
		copy(want, rs)
		sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
		mergeSortRecords(rs)
		for i := range rs {
			if rs[i] != want[i] {
				t.Fatalf("n=%d: index %d: got %+v want %+v (merge sort must be stable)", n, i, rs[i], want[i])
			}
		}
	}
}

func TestMergeSortRecordsProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		rs := make([]record, len(keys))
		for i, k := range keys {
			rs[i] = record{key: uint64(k), payload: uint32(i)}
		}
		mergeSortRecords(rs)
		for i := 1; i < len(rs); i++ {
			if rs[i].key < rs[i-1].key {
				return false
			}
			// Stability: equal keys keep original payload order.
			if rs[i].key == rs[i-1].key && rs[i].payload < rs[i-1].payload {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortTaskDetectsCorruptOrder(t *testing.T) {
	// The task verifies global order; a correct run must not error.
	task := Sort{Records: 2048, Partitions: 3}.NewTask(5)
	if _, err := task.Run(); err != nil {
		t.Fatal(err)
	}
}

// --- Video kernel ---

func TestDCTParseval(t *testing.T) {
	// An orthonormal DCT preserves energy (Parseval). Our scaling is
	// orthonormal, so ‖x‖² == ‖X‖².
	var block, coef [64]float64
	state := uint64(7)
	var inEnergy float64
	for i := range block {
		state = splitmix64(state)
		block[i] = float64(state%512) - 256
		inEnergy += block[i] * block[i]
	}
	dct8x8(&block, &coef)
	var outEnergy float64
	for _, c := range coef {
		outEnergy += c * c
	}
	if math.Abs(inEnergy-outEnergy) > 1e-6*inEnergy {
		t.Fatalf("DCT not orthonormal: in %g out %g", inEnergy, outEnergy)
	}
}

func TestDCTConstantBlock(t *testing.T) {
	var block, coef [64]float64
	for i := range block {
		block[i] = 100
	}
	dct8x8(&block, &coef)
	// All energy in DC: coef[0] = 100*8 = 800, rest ~0.
	if math.Abs(coef[0]-800) > 1e-9 {
		t.Fatalf("DC coefficient %g, want 800", coef[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(coef[i]) > 1e-9 {
			t.Fatalf("AC coefficient %d = %g, want 0", i, coef[i])
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, -1: 1, 2: 2, 3: 2, 4: 3, -8: 4, 255: 8}
	for q, want := range cases {
		if got := bitsFor(q); got != want {
			t.Fatalf("bitsFor(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestVideoNetDeterministic(t *testing.T) {
	a := newVideoNet(9)
	b := newVideoNet(9)
	feat := [videoClassCount]float64{1, 2, 3, 4, 5, 6, 7, 8}
	if a.classify(feat) != b.classify(feat) {
		t.Fatal("same-seed networks disagree")
	}
}

// --- StatelessCost kernel ---

func TestBilinearHalveConstant(t *testing.T) {
	const w = 16
	src := make([]byte, w*w*4)
	for i := range src {
		src[i] = 200
	}
	dst := make([]byte, (w/2)*(w/2)*4)
	bilinearHalve(src, w, dst, w/2)
	for i, v := range dst {
		if v != 200 {
			t.Fatalf("constant image changed at %d: %d", i, v)
		}
	}
}

func TestBilinearHalveAverages(t *testing.T) {
	// A 2×2 source with channel values 0,100,100,200 averages to 100.
	src := make([]byte, 2*2*4)
	vals := []byte{0, 100, 100, 200}
	for p := 0; p < 4; p++ {
		for c := 0; c < 4; c++ {
			src[p*4+c] = vals[p]
		}
	}
	dst := make([]byte, 4)
	bilinearHalve(src, 2, dst, 1)
	for c := 0; c < 4; c++ {
		if dst[c] != 100 {
			t.Fatalf("channel %d = %d, want 100", c, dst[c])
		}
	}
}

// --- Smith-Waterman kernel ---

func TestAlignLocalIdentity(t *testing.T) {
	subst := substitutionMatrix(1)
	seq := randomSequence(3, 50)
	self := alignLocal(seq, seq, subst)
	// Self-alignment should score the full diagonal: Σ subst[c][c].
	var want int32
	for _, c := range seq {
		want += subst[c][c]
	}
	if self != want {
		t.Fatalf("self alignment %d, want %d", self, want)
	}
}

func TestAlignLocalNeverNegative(t *testing.T) {
	subst := substitutionMatrix(2)
	a := randomSequence(10, 30)
	b := randomSequence(11, 30)
	if s := alignLocal(a, b, subst); s < 0 {
		t.Fatalf("local alignment score %d < 0", s)
	}
}

func TestAlignLocalSymmetric(t *testing.T) {
	subst := substitutionMatrix(4)
	a := randomSequence(20, 40)
	b := randomSequence(21, 55)
	if alignLocal(a, b, subst) != alignLocal(b, a, subst) {
		t.Fatal("SW score not symmetric under sequence swap")
	}
}

func TestAlignLocalFindsEmbeddedMatch(t *testing.T) {
	subst := substitutionMatrix(5)
	motif := randomSequence(6, 12)
	// Embed the motif inside an unrelated subject.
	subject := append(append(randomSequence(7, 20), motif...), randomSequence(8, 20)...)
	withMotif := alignLocal(motif, subject, subst)
	withoutMotif := alignLocal(motif, randomSequence(9, 52), subst)
	if withMotif <= withoutMotif {
		t.Fatalf("embedded motif (%d) should outscore a random subject (%d)", withMotif, withoutMotif)
	}
	var perfect int32
	for _, c := range motif {
		perfect += subst[c][c]
	}
	if withMotif != perfect {
		t.Fatalf("embedded exact motif should score perfectly: %d vs %d", withMotif, perfect)
	}
}

// --- Xapian kernel ---

func TestZipfTermSkewAndBounds(t *testing.T) {
	counts := make([]int, xapianVocab)
	state := uint64(123)
	const n = 200000
	for i := 0; i < n; i++ {
		state = splitmix64(state)
		term := zipfTerm(state)
		if term < 0 || term >= xapianVocab {
			t.Fatalf("term %d out of vocabulary", term)
		}
		counts[term]++
	}
	// Zipf: head terms vastly more frequent than tail.
	head := counts[0] + counts[1] + counts[2]
	tail := counts[xapianVocab-1] + counts[xapianVocab-2] + counts[xapianVocab-3]
	if head < 10*tail {
		t.Fatalf("distribution not skewed: head=%d tail=%d", head, tail)
	}
}

func TestXapianSearchTopKProperties(t *testing.T) {
	task := Xapian{Docs: 300, Queries: 1, TopK: 5}.NewTask(77).(*xapianTask)
	index, docLens := task.buildIndex()
	idf := make([]float64, xapianVocab)
	for term, plist := range index {
		if len(plist) > 0 {
			idf[term] = math.Log(float64(task.docs) / float64(len(plist)))
		}
	}
	scores := make([]float64, task.docs)
	touched := make([]int32, 0, 1024)
	top := task.search(index, docLens, idf, []int32{1, 5, 40, 900}, scores, &touched)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("top-k size %d", len(top))
	}
	seen := map[int32]bool{}
	for _, d := range top {
		if d < 0 || int(d) >= task.docs {
			t.Fatalf("result doc %d out of range", d)
		}
		if seen[d] {
			t.Fatalf("duplicate doc %d in results", d)
		}
		seen[d] = true
	}
	// Scratch scores must be fully reset for the next query.
	for d, s := range scores {
		if s != 0 {
			t.Fatalf("score scratch not reset at doc %d: %g", d, s)
		}
	}
}

// --- Local packed executor ---

func TestRunPackedProducesDistinctChecksums(t *testing.T) {
	res, err := RunPacked(StatelessCost{Images: 1, SrcSize: 32}, 4, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checksums) != 4 {
		t.Fatalf("got %d checksums, want 4", len(res.Checksums))
	}
	seen := map[uint64]bool{}
	for _, c := range res.Checksums {
		if seen[c] {
			t.Fatal("two packed functions with different seeds produced identical checksums")
		}
		seen[c] = true
	}
	if res.Wall <= 0 {
		t.Fatal("non-positive wall time")
	}
}

func TestRunPackedValidation(t *testing.T) {
	if _, err := RunPacked(Video{}, 0, 1, 1); err == nil {
		t.Fatal("degree 0 accepted")
	}
	if _, err := RunPacked(Video{}, 1, 0, 1); err == nil {
		t.Fatal("cores 0 accepted")
	}
}
