// Package workload implements the five serverless benchmarks the paper
// evaluates: Thousand Island Scanner video processing (Video), Map Reduce
// Sort (Sort), Stateless Cost image resizing (StatelessCost), the
// Smith-Waterman protein aligner (SmithWaterman), and the Xapian search
// engine (Xapian).
//
// Each workload carries two faces:
//
//   - a real Go kernel (NewTask) that actually computes — used by the
//     examples, the local packed executor, and the unit tests; and
//   - a resource Demand used by the datacenter simulator to execute the same
//     application at 5000-way concurrency in milliseconds of wall time.
//
// Demands are calibrated so the maximum packing degrees on a 10 GB instance
// match the paper: Video 40, Sort 15, StatelessCost 30, Smith-Waterman 35.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/interfere"
)

// Task is one logical serverless function invocation: a self-contained unit
// of real computation. Run returns a checksum so the compiler cannot elide
// the work and tests can assert determinism.
type Task interface {
	Run() (checksum uint64, err error)
}

// Workload is a benchmark application.
type Workload interface {
	// Name is the short identifier used in experiment tables ("Video").
	Name() string
	// Demand is the per-function resource profile fed to the simulator.
	Demand() interfere.Demand
	// NewTask builds one invocation's worth of real work, deterministically
	// derived from seed.
	NewTask(seed int64) Task
}

// All returns the paper's benchmark suite in its canonical order: the three
// motivation benchmarks first (Figs. 1–16), then Smith-Waterman (Fig. 17)
// and Xapian (Fig. 20).
func All() []Workload {
	return []Workload{Video{}, Sort{}, StatelessCost{}, SmithWaterman{}, Xapian{}}
}

// Motivation returns the three benchmarks used throughout the motivation and
// main evaluation figures: Video, Sort, StatelessCost.
func Motivation() []Workload {
	return []Workload{Video{}, Sort{}, StatelessCost{}}
}

// ByName looks a workload up by its Name; the match is exact.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	names := make([]string, 0, len(All()))
	for _, w := range All() {
		names = append(names, w.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, names)
}

// splitmix64 advances and hashes a seed; all workload input generators use
// it so inputs are deterministic and cheap to produce.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds v into a running checksum.
func mix(sum, v uint64) uint64 {
	return splitmix64(sum ^ v)
}
