package workload

import (
	"testing"

	"repro/internal/interfere"
)

// lambdaShape mirrors the 10 GB / 6-core Lambda instance the paper packs
// into.
func lambdaShape() interfere.Shape {
	return interfere.Shape{Cores: 6, MemoryMB: 10240, MemBWMBps: 25600,
		ContentionRate: 0.38, BWWeight: 0.3, IsolationFactor: 1}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("suite has %d workloads, want 5", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name()] {
			t.Fatalf("duplicate workload name %q", w.Name())
		}
		seen[w.Name()] = true
		got, err := ByName(w.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != w.Name() {
			t.Fatalf("ByName(%q) returned %q", w.Name(), got.Name())
		}
	}
	if _, err := ByName("NotAWorkload"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Motivation()) != 3 {
		t.Fatal("motivation suite should have 3 workloads")
	}
}

func TestDemandsValidAndCalibrated(t *testing.T) {
	shape := lambdaShape()
	wantMax := map[string]int{
		"Video":          40, // paper Fig. 8
		"Sort":           15, // paper Fig. 8
		"Stateless Cost": 30, // paper Fig. 8
		"Smith-Waterman": 35, // paper Sec. 4
		"Xapian":         20,
	}
	for _, w := range All() {
		d := w.Demand()
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if got := shape.MaxDegree(d); got != wantMax[w.Name()] {
			t.Fatalf("%s: max packing degree %d, want %d", w.Name(), got, wantMax[w.Name()])
		}
	}
}

func TestTasksDeterministic(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			a, err := smallTask(w, 42).Run()
			if err != nil {
				t.Fatal(err)
			}
			b, err := smallTask(w, 42).Run()
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("same seed produced different checksums: %x vs %x", a, b)
			}
			c, err := smallTask(w, 43).Run()
			if err != nil {
				t.Fatal(err)
			}
			if a == c {
				t.Fatalf("different seeds produced identical checksum %x", a)
			}
		})
	}
}

// smallTask shrinks each workload so the suite stays fast.
func smallTask(w Workload, seed int64) Task {
	switch w.(type) {
	case Video:
		return Video{Frames: 3}.NewTask(seed)
	case Sort:
		return Sort{Records: 4096, Partitions: 4}.NewTask(seed)
	case StatelessCost:
		return StatelessCost{Images: 2, SrcSize: 64}.NewTask(seed)
	case SmithWaterman:
		return SmithWaterman{QueryLen: 64, Subjects: 4, SubjectLen: 64}.NewTask(seed)
	case Xapian:
		return Xapian{Docs: 200, Queries: 8}.NewTask(seed)
	default:
		return w.NewTask(seed)
	}
}

func TestTaskValidation(t *testing.T) {
	bads := []Task{
		&videoTask{frames: 0},
		&sortTask{records: 0, partitions: 2},
		&sortTask{records: 10, partitions: 0},
		&resizeTask{images: 0, src: 64},
		&resizeTask{images: 1, src: 1},
		&swTask{queryLen: 0, subjects: 1, subjectLen: 1},
		&xapianTask{docs: 0, queries: 1, topK: 1},
		&xapianTask{docs: 1, queries: 1, topK: 0},
	}
	for i, task := range bads {
		if _, err := task.Run(); err == nil {
			t.Fatalf("bad task %d accepted", i)
		}
	}
}
