package workload

import (
	"fmt"

	"repro/internal/interfere"
	"repro/internal/storage"
)

// Sort is the Map Reduce Sort benchmark: a Hadoop-style terasort where a
// mapper range-partitions the input and each serverless function sorts one
// partition, with results merged to shared storage. One ProPack "function"
// here is a single reducer: it receives a partition, sorts it, and verifies
// order before emitting.
type Sort struct {
	// Records per task; zero means the calibrated default.
	Records int
	// Partitions for the in-task map phase; zero means the default.
	Partitions int
	// ExternalRunSize, when positive, makes each reducer sort its partition
	// externally: sorted runs of at most this many records spill to an
	// object store and merge back in a k-way pass — the real terasort
	// reducer dataflow for partitions that exceed memory.
	ExternalRunSize int
}

// Name implements Workload.
func (Sort) Name() string { return "Sort" }

// Demand implements Workload. 680 MB per function gives the paper's maximum
// packing degree of 15 on a 10 GB instance. Sort moves the most data of the
// suite, almost all of it shuffle traffic between reducers (the input fetch
// is just the task descriptor; partitions arrive through the shuffle), so
// co-location makes most of its network traffic local.
func (Sort) Demand() interfere.Demand {
	return interfere.Demand{
		CPUSeconds:      50,
		IOSeconds:       50,
		MemoryMB:        680,
		MemBWMBps:       5000,
		InputMB:         2,
		OutputMB:        64,
		ShuffleFraction: 0.9,
	}
}

const (
	sortDefaultRecords    = 1 << 16
	sortDefaultPartitions = 8
)

// NewTask implements Workload.
func (s Sort) NewTask(seed int64) Task {
	rec := s.Records
	if rec <= 0 {
		rec = sortDefaultRecords
	}
	parts := s.Partitions
	if parts <= 0 {
		parts = sortDefaultPartitions
	}
	return &sortTask{seed: uint64(seed), records: rec, partitions: parts, externalRun: s.ExternalRunSize}
}

type sortTask struct {
	seed        uint64
	records     int
	partitions  int
	externalRun int
}

type record struct {
	key     uint64
	payload uint32
}

// Run generates records, range-partitions them (the "map"), merge sorts each
// partition (the parallel "reduce" work), concatenates, and verifies global
// order. The checksum folds every key in final order, so any sorting bug
// changes the result.
func (t *sortTask) Run() (uint64, error) {
	if t.records <= 0 || t.partitions <= 0 {
		return 0, fmt.Errorf("sort: invalid task shape records=%d partitions=%d", t.records, t.partitions)
	}
	// Generate.
	recs := make([]record, t.records)
	state := t.seed
	for i := range recs {
		state = splitmix64(state)
		recs[i] = record{key: state, payload: uint32(i)}
	}
	// Map: range partition on the key's top bits.
	buckets := make([][]record, t.partitions)
	per := t.records/t.partitions + 1
	for i := range buckets {
		buckets[i] = make([]record, 0, per)
	}
	for _, r := range recs {
		b := int(r.key / (^uint64(0)/uint64(t.partitions) + 1))
		buckets[b] = append(buckets[b], r)
	}
	// Reduce: sort each bucket — in memory, or externally through spilled
	// runs when the task is configured with a memory budget.
	if t.externalRun > 0 {
		store := storage.NewStore()
		for i, b := range buckets {
			sorted, err := ExternalSort(store, fmt.Sprintf("spill/%d", i), b, t.externalRun)
			if err != nil {
				return 0, err
			}
			buckets[i] = sorted
		}
	} else {
		for _, b := range buckets {
			mergeSortRecords(b)
		}
	}
	// Concatenate and verify global order.
	sum := t.seed
	var prev uint64
	first := true
	for _, b := range buckets {
		for _, r := range b {
			if !first && r.key < prev {
				return 0, fmt.Errorf("sort: output out of order: %d after %d", r.key, prev)
			}
			prev, first = r.key, false
			sum = mix(sum, r.key^uint64(r.payload))
		}
	}
	return sum, nil
}

// mergeSortRecords sorts rs by key with a bottom-up merge sort — stable and
// allocation-predictable, the same algorithmic core as Hadoop's sorter.
func mergeSortRecords(rs []record) {
	n := len(rs)
	if n < 2 {
		return
	}
	buf := make([]record, n)
	src, dst := rs, buf
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			mergeRuns(src[lo:mid], src[mid:hi], dst[lo:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &rs[0] {
		copy(rs, src)
	}
}

func mergeRuns(a, b, out []record) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].key <= b[j].key {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}
