package workload

import (
	"container/heap"
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// External sort: the Hadoop-realistic path of the Sort benchmark. When a
// reducer's partition exceeds its memory budget, it sorts bounded runs,
// spills them to the object store, and k-way merges the runs back with a
// min-heap — exactly the terasort reducer dataflow.

const extRecordSize = 12 // 8-byte key + 4-byte payload

func encodeRecords(rs []record) []byte {
	out := make([]byte, len(rs)*extRecordSize)
	for i, r := range rs {
		binary.BigEndian.PutUint64(out[i*extRecordSize:], r.key)
		binary.BigEndian.PutUint32(out[i*extRecordSize+8:], r.payload)
	}
	return out
}

func decodeRecords(data []byte) ([]record, error) {
	if len(data)%extRecordSize != 0 {
		return nil, fmt.Errorf("workload: run data length %d not a record multiple", len(data))
	}
	rs := make([]record, len(data)/extRecordSize)
	for i := range rs {
		rs[i] = record{
			key:     binary.BigEndian.Uint64(data[i*extRecordSize:]),
			payload: binary.BigEndian.Uint32(data[i*extRecordSize+8:]),
		}
	}
	return rs, nil
}

// ExternalSort sorts rs with at most runSize records in memory at a time:
// sorted runs spill to the store under prefix, then merge back in one
// k-way pass. The input slice is not modified; the sorted result is
// returned. The spilled run objects are deleted on success.
func ExternalSort(store *storage.Store, prefix string, rs []record, runSize int) ([]record, error) {
	if store == nil {
		return nil, fmt.Errorf("workload: nil store")
	}
	if runSize < 1 {
		return nil, fmt.Errorf("workload: run size %d < 1", runSize)
	}
	// Phase 1: spill sorted runs.
	var runKeys []string
	for lo := 0; lo < len(rs); lo += runSize {
		hi := lo + runSize
		if hi > len(rs) {
			hi = len(rs)
		}
		run := make([]record, hi-lo)
		copy(run, rs[lo:hi])
		mergeSortRecords(run)
		key := fmt.Sprintf("%s/run-%06d", prefix, len(runKeys))
		store.Put(key, encodeRecords(run))
		runKeys = append(runKeys, key)
	}
	if len(runKeys) == 0 {
		return []record{}, nil
	}
	// Phase 2: k-way merge with a min-heap of run cursors.
	runs := make([][]record, len(runKeys))
	for i, key := range runKeys {
		data, err := store.Get(key)
		if err != nil {
			return nil, err
		}
		decoded, err := decodeRecords(data)
		if err != nil {
			return nil, err
		}
		runs[i] = decoded
	}
	h := make(runHeap, 0, len(runs))
	for i, run := range runs {
		if len(run) > 0 {
			h = append(h, runCursor{run: i, rec: run[0], next: 1})
		}
	}
	heap.Init(&h)
	out := make([]record, 0, len(rs))
	for h.Len() > 0 {
		cur := h[0]
		out = append(out, cur.rec)
		if cur.next < len(runs[cur.run]) {
			h[0] = runCursor{run: cur.run, rec: runs[cur.run][cur.next], next: cur.next + 1}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	for _, key := range runKeys {
		store.Delete(key)
	}
	return out, nil
}

// runCursor is one run's read position inside the merge heap.
type runCursor struct {
	run  int
	rec  record
	next int
}

// runHeap orders cursors by current key; ties break on run index so the
// merge is stable across runs in spill order.
type runHeap []runCursor

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	if h[i].rec.key != h[j].rec.key {
		return h[i].rec.key < h[j].rec.key
	}
	return h[i].run < h[j].run
}
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(runCursor)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
