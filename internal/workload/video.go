package workload

import (
	"fmt"
	"math"

	"repro/internal/interfere"
)

// Video is the Thousand Island Scanner distributed video-processing
// benchmark: each function receives a chunk of video, encodes it (DCT +
// quantization, the core of any block codec), and classifies the frames with
// a small neural network (the paper uses an MXNet DNN).
//
// All functions of one job read the same 5.2 MB input clip, so a packed
// instance fetches it once (SharedInput).
type Video struct {
	// Frames per task; zero means the calibrated default.
	Frames int
}

// Name implements Workload.
func (Video) Name() string { return "Video" }

// Demand implements Workload. 256 MB per function gives the paper's maximum
// packing degree of 40 on a 10 GB instance.
func (Video) Demand() interfere.Demand {
	return interfere.Demand{
		CPUSeconds:      55,
		IOSeconds:       45,
		MemoryMB:        256,
		MemBWMBps:       2200,
		InputMB:         5.2,
		OutputMB:        1.5,
		ShuffleFraction: 0.1,
		SharedInput:     true,
	}
}

const (
	videoFrameW       = 64
	videoFrameH       = 64
	videoDefaultNum   = 24
	videoHiddenUnits  = 16
	videoClassCount   = 8
	videoQuantization = 12
)

// NewTask implements Workload.
func (v Video) NewTask(seed int64) Task {
	frames := v.Frames
	if frames <= 0 {
		frames = videoDefaultNum
	}
	return &videoTask{seed: uint64(seed), frames: frames}
}

type videoTask struct {
	seed   uint64
	frames int
}

// Run synthesizes frames, encodes each 8×8 block with a DCT + quantization
// pass, then classifies the frame from its block-energy histogram with a
// fixed two-layer perceptron. The returned checksum folds in both the
// encoded-size stream and the predicted classes.
func (t *videoTask) Run() (uint64, error) {
	if t.frames <= 0 {
		return 0, fmt.Errorf("video: non-positive frame count %d", t.frames)
	}
	net := newVideoNet(t.seed)
	sum := t.seed
	frame := make([]float64, videoFrameW*videoFrameH)
	for f := 0; f < t.frames; f++ {
		t.synthesizeFrame(frame, uint64(f))
		encodedBits, features := encodeFrame(frame)
		class := net.classify(features)
		sum = mix(sum, uint64(encodedBits))
		sum = mix(sum, uint64(class))
		// Rate-control style quality check: every eighth frame takes the
		// full decode path and must reconstruct acceptably.
		if f%8 == 0 {
			_, psnr, err := EncodeDecodeFrame(frame, videoQuantization)
			if err != nil {
				return 0, err
			}
			if psnr < 20 {
				return 0, fmt.Errorf("video: frame %d reconstruction too poor: %.1f dB", f, psnr)
			}
			sum = mix(sum, uint64(psnr*100))
		}
	}
	return sum, nil
}

// synthesizeFrame fills buf with a deterministic moving pattern plus noise —
// enough spatial correlation that the DCT has realistic energy compaction.
func (t *videoTask) synthesizeFrame(buf []float64, f uint64) {
	phase := float64(f) * 0.37
	state := splitmix64(t.seed ^ f)
	for y := 0; y < videoFrameH; y++ {
		for x := 0; x < videoFrameW; x++ {
			s := 128 +
				64*math.Sin(float64(x)/9+phase) +
				48*math.Cos(float64(y)/7-phase)
			state = splitmix64(state)
			noise := float64(state%17) - 8
			buf[y*videoFrameW+x] = s + noise
		}
	}
}

// encodeFrame runs an 8×8 DCT-II over every block, quantizes the
// coefficients, counts the bits a run-length coder would emit, and returns
// that bit count plus a block-energy feature vector for the classifier.
func encodeFrame(frame []float64) (encodedBits int, features [videoClassCount]float64) {
	var block [64]float64
	var coef [64]float64
	for by := 0; by < videoFrameH; by += 8 {
		for bx := 0; bx < videoFrameW; bx += 8 {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					block[y*8+x] = frame[(by+y)*videoFrameW+bx+x]
				}
			}
			dct8x8(&block, &coef)
			energy := 0.0
			for i, c := range coef {
				q := int(c / videoQuantization)
				if q != 0 {
					// A nonzero quantized coefficient costs ~log2(|q|)+2 bits
					// in a typical entropy coder.
					encodedBits += 2 + bitsFor(q)
					energy += math.Abs(c)
				}
				_ = i
			}
			bucket := int(energy/1500) % videoClassCount
			if bucket < 0 {
				bucket += videoClassCount
			}
			features[bucket]++
		}
	}
	return encodedBits, features
}

func bitsFor(q int) int {
	if q < 0 {
		q = -q
	}
	n := 0
	for q > 0 {
		n++
		q >>= 1
	}
	return n
}

// dct8x8 computes a separable 8×8 DCT-II of src into dst.
func dct8x8(src, dst *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += src[y*8+x] * dctCos[x][u]
			}
			tmp[y*8+u] = s * dctScale(u)
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * dctCos[y][v]
			}
			dst[v*8+u] = s * dctScale(v)
		}
	}
}

func dctScale(u int) float64 {
	if u == 0 {
		return math.Sqrt(1.0 / 8)
	}
	return math.Sqrt(2.0 / 8)
}

var dctCos = func() (c [8][8]float64) {
	for x := 0; x < 8; x++ {
		for u := 0; u < 8; u++ {
			c[x][u] = math.Cos((2*float64(x) + 1) * float64(u) * math.Pi / 16)
		}
	}
	return c
}()

// videoNet is a fixed two-layer perceptron standing in for the paper's
// MXNet classifier. Weights derive deterministically from the task seed.
type videoNet struct {
	w1 [videoClassCount][videoHiddenUnits]float64
	w2 [videoHiddenUnits][videoClassCount]float64
}

func newVideoNet(seed uint64) *videoNet {
	n := &videoNet{}
	state := splitmix64(seed ^ 0x51dec0de00001ee5) // distinct stream from inputs
	for i := range n.w1 {
		for j := range n.w1[i] {
			state = splitmix64(state)
			n.w1[i][j] = float64(int64(state%2001)-1000) / 1000
		}
	}
	for i := range n.w2 {
		for j := range n.w2[i] {
			state = splitmix64(state)
			n.w2[i][j] = float64(int64(state%2001)-1000) / 1000
		}
	}
	return n
}

func (n *videoNet) classify(features [videoClassCount]float64) int {
	var hidden [videoHiddenUnits]float64
	for j := 0; j < videoHiddenUnits; j++ {
		var s float64
		for i := 0; i < videoClassCount; i++ {
			s += features[i] * n.w1[i][j]
		}
		if s > 0 { // ReLU
			hidden[j] = s
		}
	}
	best, bestV := 0, math.Inf(-1)
	for k := 0; k < videoClassCount; k++ {
		var s float64
		for j := 0; j < videoHiddenUnits; j++ {
			s += hidden[j] * n.w2[j][k]
		}
		if s > bestV {
			best, bestV = k, s
		}
	}
	return best
}
