package workload

import (
	"fmt"
	"math"
)

// Codec round-trip support for the Video workload: the inverse DCT and a
// PSNR meter. The encode path (dct8x8 + quantization) lives in video.go;
// decoding back and measuring reconstruction quality makes the kernel a
// genuine (if tiny) block codec rather than a one-way hash, and gives the
// tests a strong invariant: IDCT∘DCT is the identity, and quantization
// error is bounded by the quantization step.

// idct8x8 computes the inverse of dct8x8: a separable 8×8 DCT-III with the
// matching orthonormal scaling.
func idct8x8(src, dst *[64]float64) {
	var tmp [64]float64
	// Columns (inverse of the second pass of dct8x8).
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += src[v*8+u] * dctScale(v) * dctCos[y][v]
			}
			tmp[y*8+u] = s
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += tmp[y*8+u] * dctScale(u) * dctCos[x][u]
			}
			dst[y*8+x] = s
		}
	}
}

// quantizeBlock rounds coefficients to multiples of step.
func quantizeBlock(coef *[64]float64, step float64, out *[64]float64) {
	for i, c := range coef {
		out[i] = math.Round(c/step) * step
	}
}

// EncodeDecodeFrame runs the full codec loop over one frame: per-block DCT,
// quantization at the given step, inverse DCT, and reassembly. It returns
// the reconstructed frame and the PSNR (dB) against the original, assuming
// 8-bit dynamic range. Frames must be videoFrameW×videoFrameH.
func EncodeDecodeFrame(frame []float64, step float64) ([]float64, float64, error) {
	if len(frame) != videoFrameW*videoFrameH {
		return nil, 0, fmt.Errorf("video: frame size %d, want %d", len(frame), videoFrameW*videoFrameH)
	}
	if step <= 0 {
		return nil, 0, fmt.Errorf("video: non-positive quantization step %g", step)
	}
	recon := make([]float64, len(frame))
	var block, coef, quant, back [64]float64
	for by := 0; by < videoFrameH; by += 8 {
		for bx := 0; bx < videoFrameW; bx += 8 {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					block[y*8+x] = frame[(by+y)*videoFrameW+bx+x]
				}
			}
			dct8x8(&block, &coef)
			quantizeBlock(&coef, step, &quant)
			idct8x8(&quant, &back)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					recon[(by+y)*videoFrameW+bx+x] = back[y*8+x]
				}
			}
		}
	}
	return recon, PSNR(frame, recon, 255), nil
}

// PSNR computes the peak signal-to-noise ratio in decibels between two
// equal-length signals with the given peak value. Identical signals yield
// +Inf.
func PSNR(a, b []float64, peak float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var mse float64
	for i := range a {
		d := a[i] - b[i]
		mse += d * d
	}
	mse /= float64(len(a))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(peak*peak/mse)
}
