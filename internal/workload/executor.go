package workload

import (
	"fmt"
	"sync"
	"time"
)

// PackedResult is the outcome of executing a packed instance locally.
type PackedResult struct {
	// Wall is the wall-clock duration of the whole instance (all packed
	// functions), i.e. the quantity ProPack's Eq. 1 models.
	Wall time.Duration
	// Checksums holds each packed function's result in submission order.
	Checksums []uint64
}

// RunPacked executes `degree` tasks of the workload concurrently, at most
// `cores` at a time — the local analogue of packing functions as threads
// inside one multi-core function instance. It is what the examples and the
// live profiler use to measure real interference on the host machine.
//
// Each task gets a distinct deterministic seed derived from baseSeed.
func RunPacked(w Workload, degree, cores int, baseSeed int64) (PackedResult, error) {
	if degree < 1 {
		return PackedResult{}, fmt.Errorf("workload: non-positive packing degree %d", degree)
	}
	if cores < 1 {
		return PackedResult{}, fmt.Errorf("workload: non-positive core count %d", cores)
	}
	checksums := make([]uint64, degree)
	errs := make([]error, degree)
	sem := make(chan struct{}, cores)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < degree; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A panicking kernel fails its own function, not the process:
			// the local runtime's fault-tolerance layer needs instance
			// failures to be errors it can retry or report.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("workload: packed function %d panicked: %v", i, r)
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			task := w.NewTask(baseSeed + int64(i))
			checksums[i], errs[i] = task.Run()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return PackedResult{}, fmt.Errorf("workload: packed function %d failed: %w", i, err)
		}
	}
	return PackedResult{Wall: wall, Checksums: checksums}, nil
}
