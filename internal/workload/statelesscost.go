package workload

import (
	"fmt"

	"repro/internal/interfere"
)

// StatelessCost is the image-resizing benchmark from ServerlessBench: many
// small stateless requests, each resizing one image — the archetype of a
// short-running, massively parallel serverless application (AWS's serverless
// image handler does the same job).
type StatelessCost struct {
	// Images per task; zero means the calibrated default.
	Images int
	// SrcSize is the square source dimension; zero means the default (256).
	SrcSize int
}

// Name implements Workload.
func (StatelessCost) Name() string { return "Stateless Cost" }

// Demand implements Workload. 341 MB per function gives the paper's maximum
// packing degree of 30 on a 10 GB instance. The app is the shortest-running
// of the suite.
func (StatelessCost) Demand() interfere.Demand {
	return interfere.Demand{
		CPUSeconds:      22,
		IOSeconds:       18,
		MemoryMB:        341,
		MemBWMBps:       1600,
		InputMB:         4,
		OutputMB:        1,
		ShuffleFraction: 0,
	}
}

const (
	scDefaultImages = 16
	scDefaultSrc    = 256
)

// NewTask implements Workload.
func (s StatelessCost) NewTask(seed int64) Task {
	n := s.Images
	if n <= 0 {
		n = scDefaultImages
	}
	src := s.SrcSize
	if src <= 0 {
		src = scDefaultSrc
	}
	return &resizeTask{seed: uint64(seed), images: n, src: src}
}

type resizeTask struct {
	seed   uint64
	images int
	src    int
}

// Run synthesizes RGBA images and downscales each to half size with
// bilinear interpolation, folding the resized pixels into the checksum.
func (t *resizeTask) Run() (uint64, error) {
	if t.images <= 0 || t.src < 2 {
		return 0, fmt.Errorf("statelesscost: invalid task shape images=%d src=%d", t.images, t.src)
	}
	srcW := t.src
	dstW := srcW / 2
	src := make([]byte, srcW*srcW*4)
	dst := make([]byte, dstW*dstW*4)
	sum := t.seed
	for img := 0; img < t.images; img++ {
		t.synthesizeImage(src, srcW, uint64(img))
		bilinearHalve(src, srcW, dst, dstW)
		for i := 0; i < len(dst); i += 8 {
			var v uint64
			for b := 0; b < 8 && i+b < len(dst); b++ {
				v = v<<8 | uint64(dst[i+b])
			}
			sum = mix(sum, v)
		}
	}
	return sum, nil
}

func (t *resizeTask) synthesizeImage(buf []byte, w int, img uint64) {
	state := splitmix64(t.seed ^ (img << 17))
	for y := 0; y < w; y++ {
		for x := 0; x < w; x++ {
			state = splitmix64(state)
			i := (y*w + x) * 4
			// Smooth gradient plus hash noise: realistic interpolation input.
			buf[i+0] = byte((x*255/w + int(state%31)) & 0xff)
			buf[i+1] = byte((y*255/w + int((state>>8)%31)) & 0xff)
			buf[i+2] = byte(((x + y) * 127 / w) & 0xff)
			buf[i+3] = 0xff
		}
	}
}

// bilinearHalve downscales a square RGBA image to half its side using exact
// 2×2 box filtering (the bilinear kernel at scale 0.5).
func bilinearHalve(src []byte, srcW int, dst []byte, dstW int) {
	for y := 0; y < dstW; y++ {
		for x := 0; x < dstW; x++ {
			sx, sy := x*2, y*2
			di := (y*dstW + x) * 4
			for c := 0; c < 4; c++ {
				s := int(src[(sy*srcW+sx)*4+c]) +
					int(src[(sy*srcW+sx+1)*4+c]) +
					int(src[((sy+1)*srcW+sx)*4+c]) +
					int(src[((sy+1)*srcW+sx+1)*4+c])
				dst[di+c] = byte(s / 4)
			}
		}
	}
}
