package workload

import (
	"fmt"
	"math"
)

// Motion estimation: the inter-frame half of a real video codec. Each 8×8
// block of the current frame searches a ±searchRange window in the previous
// frame for the position minimizing the sum of absolute differences (SAD) —
// full-search block matching, the reference algorithm hardware encoders
// approximate.

// MotionVector is one block's displacement into the previous frame.
type MotionVector struct {
	DX, DY int
	SAD    float64
}

// MotionField holds one vector per 8×8 block in raster order.
type MotionField struct {
	BlocksX, BlocksY int
	Vectors          []MotionVector
}

// At returns the vector of block (bx, by).
func (f MotionField) At(bx, by int) MotionVector {
	return f.Vectors[by*f.BlocksX+bx]
}

// TotalSAD sums the residual energy across blocks — the quantity a rate
// controller watches.
func (f MotionField) TotalSAD() float64 {
	var s float64
	for _, v := range f.Vectors {
		s += v.SAD
	}
	return s
}

// EstimateMotion computes the full-search motion field of cur against prev.
// Both frames must be videoFrameW×videoFrameH. Blocks at the frame edge
// only consider displacements that stay inside the frame.
func EstimateMotion(prev, cur []float64, searchRange int) (MotionField, error) {
	if len(prev) != videoFrameW*videoFrameH || len(cur) != videoFrameW*videoFrameH {
		return MotionField{}, fmt.Errorf("video: frame size %d/%d, want %d",
			len(prev), len(cur), videoFrameW*videoFrameH)
	}
	if searchRange < 0 {
		return MotionField{}, fmt.Errorf("video: negative search range %d", searchRange)
	}
	field := MotionField{BlocksX: videoFrameW / 8, BlocksY: videoFrameH / 8}
	for by := 0; by < videoFrameH; by += 8 {
		for bx := 0; bx < videoFrameW; bx += 8 {
			best := MotionVector{SAD: math.Inf(1)}
			for dy := -searchRange; dy <= searchRange; dy++ {
				for dx := -searchRange; dx <= searchRange; dx++ {
					sy, sx := by+dy, bx+dx
					if sy < 0 || sx < 0 || sy+8 > videoFrameH || sx+8 > videoFrameW {
						continue
					}
					var sad float64
					for y := 0; y < 8 && sad < best.SAD; y++ {
						rowCur := (by+y)*videoFrameW + bx
						rowPrev := (sy+y)*videoFrameW + sx
						for x := 0; x < 8; x++ {
							sad += math.Abs(cur[rowCur+x] - prev[rowPrev+x])
						}
					}
					// Strict improvement keeps the zero vector on ties, the
					// convention codecs use to favour cheap skip blocks.
					if sad < best.SAD {
						best = MotionVector{DX: dx, DY: dy, SAD: sad}
					}
				}
			}
			field.Vectors = append(field.Vectors, best)
		}
	}
	return field, nil
}

// shiftFrame translates a frame by (dx, dy), clamping at the border — a
// test helper exercised by the motion-estimation invariants, exported to
// the package's tests only through use in videoTask below.
func shiftFrame(frame []float64, dx, dy int) []float64 {
	out := make([]float64, len(frame))
	for y := 0; y < videoFrameH; y++ {
		for x := 0; x < videoFrameW; x++ {
			sx, sy := x-dx, y-dy
			if sx < 0 {
				sx = 0
			}
			if sx >= videoFrameW {
				sx = videoFrameW - 1
			}
			if sy < 0 {
				sy = 0
			}
			if sy >= videoFrameH {
				sy = videoFrameH - 1
			}
			out[y*videoFrameW+x] = frame[sy*videoFrameW+sx]
		}
	}
	return out
}
