package resilience

import (
	"fmt"
	"sync"
	"time"
)

// Circuit breaker for a shared dependency (the serve daemon wraps the
// planner path in one). Unlike the rest of this package the breaker is
// stateful — it is a server-side guard, not a simulation policy — but it
// stays deterministic the same way: every method takes the current time
// explicitly, so tests drive transitions with a fake clock and never sleep.
//
// States follow the classic three-state machine:
//
//	Closed    → requests flow; outcomes feed a rolling bucketed window.
//	            Trip to Open when the window has at least MinSamples and
//	            the error rate ≥ TripErrorRate or the slow-call rate
//	            (latency > SlowCallSec) ≥ TripSlowRate.
//	Open      → requests are rejected until CoolDown elapses, then the
//	            next Allow moves to HalfOpen.
//	HalfOpen  → at most HalfOpenMax probe requests may be in flight; one
//	            failed or slow probe re-opens, CloseAfter consecutive good
//	            probes close the breaker and reset the window.

// BreakerState is the circuit breaker's current mode.
type BreakerState int32

const (
	// BreakerClosed lets requests through and watches outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// BreakerConfig tunes the trip and recovery thresholds. The zero value is
// not usable; call Normalize (or use DefaultBreakerConfig) to fill gaps.
type BreakerConfig struct {
	// Window is the rolling observation span; outcomes older than it no
	// longer count toward trip decisions. Zero means 10 s.
	Window time.Duration
	// Buckets subdivides the window for cheap expiry. Zero means 10.
	Buckets int
	// MinSamples is the fewest windowed outcomes before the breaker may
	// trip — one early error must not open an idle breaker. Zero means 20.
	MinSamples int
	// TripErrorRate opens the breaker when windowed failures reach this
	// fraction (0 disables the error-rate trip).
	TripErrorRate float64
	// SlowCallSec classifies calls slower than this as slow (0 disables
	// the latency trip).
	SlowCallSec float64
	// TripSlowRate opens the breaker when windowed slow calls reach this
	// fraction (0 with SlowCallSec set means 1.0 — only all-slow trips).
	TripSlowRate float64
	// CoolDown is how long an open breaker rejects before probing. Zero
	// means 5 s.
	CoolDown time.Duration
	// HalfOpenMax bounds concurrent half-open probes. Zero means 1.
	HalfOpenMax int
	// CloseAfter is how many consecutive good probes close the breaker.
	// Zero means 3.
	CloseAfter int
}

// DefaultBreakerConfig is the serve daemon's default guard: trip on a
// half-failing or half-slow window, probe again after five seconds.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:        10 * time.Second,
		Buckets:       10,
		MinSamples:    20,
		TripErrorRate: 0.5,
		SlowCallSec:   0, // latency trip off unless the caller sets a budget
		TripSlowRate:  0.5,
		CoolDown:      5 * time.Second,
		HalfOpenMax:   1,
		CloseAfter:    3,
	}
}

// Normalize fills zero fields with their documented defaults and validates
// the rest.
func (c BreakerConfig) Normalize() (BreakerConfig, error) {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.TripSlowRate == 0 && c.SlowCallSec > 0 {
		c.TripSlowRate = 1.0
	}
	if c.CoolDown <= 0 {
		c.CoolDown = 5 * time.Second
	}
	if c.HalfOpenMax <= 0 {
		c.HalfOpenMax = 1
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 3
	}
	switch {
	case c.TripErrorRate < 0 || c.TripErrorRate > 1:
		return c, fmt.Errorf("resilience: breaker error-rate threshold %g outside [0,1]", c.TripErrorRate)
	case c.TripSlowRate < 0 || c.TripSlowRate > 1:
		return c, fmt.Errorf("resilience: breaker slow-rate threshold %g outside [0,1]", c.TripSlowRate)
	case c.SlowCallSec < 0:
		return c, fmt.Errorf("resilience: negative breaker latency budget %g", c.SlowCallSec)
	}
	return c, nil
}

// breakerBucket is one window slice's outcome counts.
type breakerBucket struct {
	start time.Time
	total int
	errs  int
	slow  int
}

// Breaker is the three-state circuit breaker. All methods are safe for
// concurrent use. The caller flow is:
//
//	if !b.Allow(now) { reject with b.RetryAfter(now) }
//	... do the guarded call ...
//	b.Record(now, durSec, failed)
//
// Allow in half-open reserves a probe slot that Record releases, so a
// rejected Allow must NOT be paired with a Record.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state    BreakerState
	buckets  []breakerBucket // ring, rotated by time
	openedAt time.Time

	halfOpenInFlight int
	halfOpenGood     int

	opens int64 // cumulative closed/half-open → open transitions
}

// NewBreaker builds a breaker; see BreakerConfig.Normalize for defaults.
func NewBreaker(cfg BreakerConfig) (*Breaker, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	return &Breaker{cfg: cfg, buckets: make([]breakerBucket, cfg.Buckets)}, nil
}

// bucketFor returns the ring bucket covering now, clearing slices that have
// rotated out of the window.
func (b *Breaker) bucketFor(now time.Time) *breakerBucket {
	span := b.cfg.Window / time.Duration(len(b.buckets))
	start := now.Truncate(span)
	i := int((start.UnixNano() / int64(span)) % int64(len(b.buckets)))
	if i < 0 {
		i += len(b.buckets)
	}
	bk := &b.buckets[i]
	if !bk.start.Equal(start) {
		*bk = breakerBucket{start: start}
	}
	return bk
}

// windowCounts sums buckets still inside the window ending at now.
func (b *Breaker) windowCounts(now time.Time) (total, errs, slow int) {
	for i := range b.buckets {
		bk := &b.buckets[i]
		if bk.total == 0 || now.Sub(bk.start) >= b.cfg.Window {
			continue
		}
		total += bk.total
		errs += bk.errs
		slow += bk.slow
	}
	return total, errs, slow
}

// Allow reports whether a request may proceed at time now. In half-open it
// reserves one of the probe slots; the matching Record releases it.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.CoolDown {
			return false
		}
		b.state = BreakerHalfOpen
		b.halfOpenInFlight = 0
		b.halfOpenGood = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.halfOpenInFlight >= b.cfg.HalfOpenMax {
			return false
		}
		b.halfOpenInFlight++
		return true
	}
}

// Record feeds one guarded call's outcome back. failed marks hard errors;
// calls slower than SlowCallSec count as slow even when they succeeded.
func (b *Breaker) Record(now time.Time, durSec float64, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	slow := b.cfg.SlowCallSec > 0 && durSec > b.cfg.SlowCallSec
	switch b.state {
	case BreakerHalfOpen:
		if b.halfOpenInFlight > 0 {
			b.halfOpenInFlight--
		}
		if failed || slow {
			b.trip(now)
			return
		}
		b.halfOpenGood++
		if b.halfOpenGood >= b.cfg.CloseAfter {
			b.state = BreakerClosed
			for i := range b.buckets {
				b.buckets[i] = breakerBucket{}
			}
		}
	case BreakerClosed:
		bk := b.bucketFor(now)
		bk.total++
		if failed {
			bk.errs++
		}
		if slow {
			bk.slow++
		}
		total, errs, slowN := b.windowCounts(now)
		if total < b.cfg.MinSamples {
			return
		}
		if b.cfg.TripErrorRate > 0 && float64(errs)/float64(total) >= b.cfg.TripErrorRate {
			b.trip(now)
			return
		}
		if b.cfg.SlowCallSec > 0 && float64(slowN)/float64(total) >= b.cfg.TripSlowRate {
			b.trip(now)
		}
	case BreakerOpen:
		// A straggler finishing after the trip: its outcome is stale.
	}
}

// trip moves to Open (callers hold b.mu).
func (b *Breaker) trip(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.halfOpenInFlight = 0
	b.halfOpenGood = 0
	b.opens++
}

// State reports the breaker's mode at time now (an expired Open reads as
// HalfOpen-eligible but stays Open until an Allow probes it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStates lists every state in declaration order, for exporters that
// render the state as a one-hot labeled vector (the numeric State gauge is
// opaque on a dashboard; breaker_states{state="open"} 1 is not).
func BreakerStates() []BreakerState {
	return []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen}
}

// Opens reports the cumulative number of trips, for metrics.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// RetryAfter suggests how long a rejected caller should wait at time now:
// the remaining cool-down when open, one cool-down otherwise.
func (b *Breaker) RetryAfter(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if left := b.cfg.CoolDown - now.Sub(b.openedAt); left > 0 {
			return left
		}
	}
	return b.cfg.CoolDown
}
