// Package resilience holds the pure, deterministic fault-tolerance policies
// shared by the datacenter simulator and the local FaaS runtime: retry
// backoff schedules (fixed, exponential, decorrelated jitter) with attempt
// and wall-clock budgets, and a quantile-based hedging policy (speculative
// duplicate launch for stragglers, first-finisher-wins).
//
// Nothing here keeps state or consumes randomness on its own: callers pass
// the retry number, the previous delay, and a uniform sampler, so the same
// inputs always produce the same schedule. This is what lets the simulator
// stay bit-for-bit reproducible and the policies be unit-tested in
// isolation.
package resilience

import (
	"fmt"

	"repro/internal/stats"
)

// Kind selects a backoff schedule.
type Kind int

const (
	// Fixed waits BaseSec before every retry — the behaviour of the
	// original cold-start failure injection.
	Fixed Kind = iota
	// Exponential waits BaseSec·Factor^(retry−1), capped at CapSec.
	Exponential
	// Decorrelated is the AWS Architecture Blog "decorrelated jitter"
	// schedule: each delay is uniform in [BaseSec, 3·previous], capped at
	// CapSec. It needs the caller's uniform sampler.
	Decorrelated
)

func (k Kind) String() string {
	switch k {
	case Fixed:
		return "fixed"
	case Exponential:
		return "exponential"
	case Decorrelated:
		return "decorrelated"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindByName parses a schedule name ("fixed", "exponential", "decorrelated").
func KindByName(name string) (Kind, error) {
	switch name {
	case "fixed":
		return Fixed, nil
	case "exponential", "exp":
		return Exponential, nil
	case "decorrelated", "jitter":
		return Decorrelated, nil
	default:
		return 0, fmt.Errorf("resilience: unknown backoff kind %q", name)
	}
}

// Backoff is a retry policy: how long to wait before each retry and when to
// give up. The zero value is a usable "fixed, zero delay" policy whose
// budgets fall back to the caller's defaults (see Allow).
type Backoff struct {
	// Kind selects the schedule.
	Kind Kind
	// BaseSec is the first delay (and every delay, for Fixed).
	BaseSec float64
	// CapSec bounds every delay; 0 means uncapped.
	CapSec float64
	// Factor is the exponential growth rate; 0 means 2.
	Factor float64
	// MaxAttempts is the retry budget (retries beyond the first attempt);
	// 0 means the caller's default.
	MaxAttempts int
	// MaxElapsedSec stops retrying once the total elapsed time since the
	// first attempt exceeds it; 0 means unlimited.
	MaxElapsedSec float64
}

// Validate reports an error for malformed policies.
func (b Backoff) Validate() error {
	switch {
	case b.Kind < Fixed || b.Kind > Decorrelated:
		return fmt.Errorf("resilience: unknown backoff kind %d", int(b.Kind))
	case b.BaseSec < 0 || b.CapSec < 0 || b.Factor < 0:
		return fmt.Errorf("resilience: negative backoff parameter %+v", b)
	case b.MaxAttempts < 0 || b.MaxElapsedSec < 0:
		return fmt.Errorf("resilience: negative backoff budget %+v", b)
	}
	return nil
}

// IsZero reports whether the policy is entirely unset, letting callers
// substitute their legacy defaults.
func (b Backoff) IsZero() bool { return b == Backoff{} }

// String renders the policy compactly for logs: kind, base/cap, growth
// factor, and budgets. The zero policy reads "none".
func (b Backoff) String() string {
	if b.IsZero() {
		return "none"
	}
	s := fmt.Sprintf("%s base=%gs", b.Kind, b.BaseSec)
	if b.CapSec > 0 {
		s += fmt.Sprintf(" cap=%gs", b.CapSec)
	}
	if b.Kind == Exponential && b.Factor != 0 {
		s += fmt.Sprintf(" factor=%g", b.Factor)
	}
	if b.MaxAttempts > 0 {
		s += fmt.Sprintf(" attempts=%d", b.MaxAttempts)
	}
	if b.MaxElapsedSec > 0 {
		s += fmt.Sprintf(" elapsed=%gs", b.MaxElapsedSec)
	}
	return s
}

// Delay returns the wait before retry number `retry` (1-based). prevSec is
// the previous delay (used by Decorrelated; pass 0 on the first retry) and
// uniform samples [0,1) — it is only consulted by Decorrelated, so Fixed and
// Exponential schedules consume no randomness.
func (b Backoff) Delay(retry int, prevSec float64, uniform func() float64) float64 {
	if retry < 1 {
		retry = 1
	}
	var d float64
	switch b.Kind {
	case Exponential:
		factor := b.Factor
		if factor == 0 {
			factor = 2
		}
		d = b.BaseSec
		for i := 1; i < retry; i++ {
			d *= factor
			if b.CapSec > 0 && d >= b.CapSec {
				d = b.CapSec
				break
			}
		}
	case Decorrelated:
		if prevSec < b.BaseSec {
			prevSec = b.BaseSec
		}
		d = b.BaseSec + uniform()*(3*prevSec-b.BaseSec)
	default: // Fixed
		d = b.BaseSec
	}
	if b.CapSec > 0 && d > b.CapSec {
		d = b.CapSec
	}
	return d
}

// Allow reports whether retry number `retry` (1-based) may proceed given the
// time elapsed since the first attempt. defaultMaxAttempts substitutes for
// an unset MaxAttempts budget; if neither supplies a positive budget, no
// retries are allowed — budgets are always explicit and bounded.
func (b Backoff) Allow(retry int, elapsedSec float64, defaultMaxAttempts int) bool {
	max := b.MaxAttempts
	if max == 0 {
		max = defaultMaxAttempts
	}
	if retry > max {
		return false
	}
	if b.MaxElapsedSec > 0 && elapsedSec > b.MaxElapsedSec {
		return false
	}
	return true
}

// Hedge is a straggler-mitigation policy: once a request has been running
// longer than the Quantile-th percentile of its fleet's execution durations
// (but at least MinDelaySec), launch one speculative duplicate and let the
// first finisher win. The zero value disables hedging.
type Hedge struct {
	// Quantile in (0, 100) sets the launch threshold; 0 disables hedging.
	Quantile float64
	// MinDelaySec floors the threshold so cheap requests are never hedged.
	MinDelaySec float64
}

// Enabled reports whether the policy hedges at all.
func (h Hedge) Enabled() bool { return h.Quantile > 0 }

// String renders the policy compactly for logs; a disabled policy reads
// "off".
func (h Hedge) String() string {
	if !h.Enabled() {
		return "off"
	}
	s := fmt.Sprintf("p%g", h.Quantile)
	if h.MinDelaySec > 0 {
		s += fmt.Sprintf(" min=%gs", h.MinDelaySec)
	}
	return s
}

// Validate reports an error for malformed policies.
func (h Hedge) Validate() error {
	switch {
	case h.Quantile < 0 || h.Quantile >= 100:
		return fmt.Errorf("resilience: hedge quantile %g outside [0, 100)", h.Quantile)
	case h.MinDelaySec < 0:
		return fmt.Errorf("resilience: negative hedge delay %g", h.MinDelaySec)
	}
	return nil
}

// Threshold returns the hedge launch delay for a fleet whose (expected or
// observed) execution durations are given: the Quantile-th percentile,
// floored at MinDelaySec. A disabled or empty-fleet policy returns +Inf-like
// behaviour via MinDelaySec only when durations exist; with no data it
// returns MinDelaySec so callers can still bound the wait.
func (h Hedge) Threshold(durations []float64) float64 {
	if !h.Enabled() || len(durations) == 0 {
		return h.MinDelaySec
	}
	t := stats.Quantile(durations, h.Quantile)
	if t < h.MinDelaySec {
		t = h.MinDelaySec
	}
	return t
}
