package resilience

import (
	"sync"
	"testing"
	"time"
)

// tick is the fake clock origin; breaker tests never sleep.
var t0 = time.Unix(1_700_000_000, 0)

func mustBreaker(t *testing.T, cfg BreakerConfig) *Breaker {
	t.Helper()
	b, err := NewBreaker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// breakerStep is one scripted operation against the breaker.
type breakerStep struct {
	at        time.Duration // offset from t0
	op        string        // "allow", "record", "state"
	durSec    float64       // for record
	failed    bool          // for record
	wantAllow bool          // for allow
	wantState BreakerState  // for state
}

// TestBreakerTransitions drives the full closed→open→half-open→closed and
// half-open→open machine through scripted timelines.
func TestBreakerTransitions(t *testing.T) {
	cfg := BreakerConfig{
		Window:        10 * time.Second,
		Buckets:       10,
		MinSamples:    4,
		TripErrorRate: 0.5,
		SlowCallSec:   1.0,
		TripSlowRate:  0.75,
		CoolDown:      5 * time.Second,
		HalfOpenMax:   1,
		CloseAfter:    2,
	}
	rec := func(at time.Duration, dur float64, failed bool) breakerStep {
		return breakerStep{at: at, op: "record", durSec: dur, failed: failed}
	}
	allow := func(at time.Duration, want bool) breakerStep {
		return breakerStep{at: at, op: "allow", wantAllow: want}
	}
	state := func(at time.Duration, want BreakerState) breakerStep {
		return breakerStep{at: at, op: "state", wantState: want}
	}
	cases := []struct {
		name  string
		steps []breakerStep
	}{
		{"stays closed under healthy traffic", []breakerStep{
			rec(0, 0.1, false), rec(1, 0.1, false), rec(2, 0.1, false),
			rec(3, 0.1, false), rec(4, 0.1, false),
			state(4, BreakerClosed), allow(4, true),
		}},
		{"needs MinSamples before tripping", []breakerStep{
			rec(0, 0.1, true), rec(1, 0.1, true), rec(2, 0.1, true),
			state(2, BreakerClosed), // 3 failures < MinSamples=4
			rec(3, 0.1, true),
			state(3, BreakerOpen), allow(3, false),
		}},
		{"error rate below threshold stays closed", []breakerStep{
			rec(0, 0.1, true), rec(0, 0.1, false), rec(1, 0.1, false),
			rec(1, 0.1, false), rec(2, 0.1, false), rec(2, 0.1, true),
			state(2, BreakerClosed), // 2/6 = 0.33 < 0.5
		}},
		{"slow calls trip the latency threshold", []breakerStep{
			rec(0, 2.0, false), rec(1, 2.0, false), rec(2, 2.0, false),
			state(2, BreakerClosed),
			rec(3, 2.0, false), // 4/4 slow ≥ 0.75
			state(3, BreakerOpen),
		}},
		{"open rejects until cool-down, then half-opens one probe", []breakerStep{
			rec(0, 0.1, true), rec(0, 0.1, true), rec(0, 0.1, true), rec(0, 0.1, true),
			state(0, BreakerOpen),
			allow(2*time.Second, false), // cool-down not elapsed
			allow(5*time.Second, true),  // → half-open probe slot
			state(5*time.Second, BreakerHalfOpen),
			allow(5*time.Second, false), // HalfOpenMax=1: second probe refused
		}},
		{"half-open probe failure re-opens", []breakerStep{
			rec(0, 0.1, true), rec(0, 0.1, true), rec(0, 0.1, true), rec(0, 0.1, true),
			allow(5*time.Second, true),
			rec(5*time.Second, 0.1, true),
			state(5*time.Second, BreakerOpen),
			allow(6*time.Second, false), // a fresh cool-down started at 5 s
		}},
		{"half-open slow probe re-opens", []breakerStep{
			rec(0, 0.1, true), rec(0, 0.1, true), rec(0, 0.1, true), rec(0, 0.1, true),
			allow(5*time.Second, true),
			rec(5*time.Second, 3.0, false), // succeeded but slow
			state(5*time.Second, BreakerOpen),
		}},
		{"CloseAfter good probes close and reset the window", []breakerStep{
			rec(0, 0.1, true), rec(0, 0.1, true), rec(0, 0.1, true), rec(0, 0.1, true),
			allow(5*time.Second, true),
			rec(5*time.Second, 0.1, false),
			state(5*time.Second, BreakerHalfOpen), // 1 good < CloseAfter=2
			allow(6*time.Second, true),
			rec(6*time.Second, 0.1, false),
			state(6*time.Second, BreakerClosed),
			// The old window's failures must not linger: three fresh
			// failures (< MinSamples) keep it closed.
			rec(7*time.Second, 0.1, true), rec(7*time.Second, 0.1, true),
			rec(7*time.Second, 0.1, true),
			state(7*time.Second, BreakerClosed),
		}},
		{"failures outside the window expire", []breakerStep{
			rec(0, 0.1, true), rec(0, 0.1, true), rec(0, 0.1, true),
			// 11 s later the window has rotated past them.
			rec(11*time.Second, 0.1, true),
			state(11*time.Second, BreakerClosed), // only 1 sample in window
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := mustBreaker(t, cfg)
			for i, s := range tc.steps {
				now := t0.Add(s.at)
				switch s.op {
				case "record":
					b.Record(now, s.durSec, s.failed)
				case "allow":
					if got := b.Allow(now); got != s.wantAllow {
						t.Fatalf("step %d: Allow(+%v) = %v, want %v (state %v)",
							i, s.at, got, s.wantAllow, b.State())
					}
				case "state":
					if got := b.State(); got != s.wantState {
						t.Fatalf("step %d: state at +%v = %v, want %v", i, s.at, got, s.wantState)
					}
				}
			}
		})
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	b := mustBreaker(t, BreakerConfig{MinSamples: 1, TripErrorRate: 0.5, CoolDown: 5 * time.Second})
	if got := b.RetryAfter(t0); got != 5*time.Second {
		t.Fatalf("closed RetryAfter = %v, want the cool-down", got)
	}
	b.Record(t0, 0.1, true)
	if b.State() != BreakerOpen {
		t.Fatal("breaker should have tripped")
	}
	if got := b.RetryAfter(t0.Add(2 * time.Second)); got != 3*time.Second {
		t.Fatalf("open RetryAfter = %v, want 3s", got)
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens = %d, want 1", got)
	}
}

func TestBreakerConfigValidation(t *testing.T) {
	bad := []BreakerConfig{
		{TripErrorRate: 1.5},
		{TripErrorRate: -0.1},
		{SlowCallSec: -1},
		{SlowCallSec: 1, TripSlowRate: 2},
	}
	for _, cfg := range bad {
		if _, err := NewBreaker(cfg); err == nil {
			t.Errorf("NewBreaker(%+v) accepted an invalid config", cfg)
		}
	}
	b := mustBreaker(t, BreakerConfig{})
	if b.cfg.MinSamples != 20 || b.cfg.CloseAfter != 3 || b.cfg.HalfOpenMax != 1 {
		t.Fatalf("defaults not applied: %+v", b.cfg)
	}
}

// TestBreakerConcurrentHalfOpen hammers Allow/Record from many goroutines
// while the breaker cycles, for the -race job: the probe-slot accounting
// must never go negative or exceed HalfOpenMax.
func TestBreakerConcurrentHalfOpen(t *testing.T) {
	b := mustBreaker(t, BreakerConfig{
		MinSamples: 2, TripErrorRate: 0.5, CoolDown: time.Millisecond, HalfOpenMax: 2, CloseAfter: 2,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := t0
			for i := 0; i < 500; i++ {
				now = now.Add(time.Duration(g+1) * time.Millisecond)
				if b.Allow(now) {
					b.Record(now, 0.001, i%3 == 0)
				}
			}
		}(g)
	}
	wg.Wait()
	b.mu.Lock()
	inFlight := b.halfOpenInFlight
	b.mu.Unlock()
	if inFlight < 0 || inFlight > 2 {
		t.Fatalf("half-open in-flight accounting broken: %d", inFlight)
	}
}

func TestRetryBudget(t *testing.T) {
	if _, err := NewRetryBudget(-1, 10); err == nil {
		t.Fatal("negative ratio accepted")
	}
	rb, err := NewRetryBudget(0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Starts full: cap=2 retries available.
	if !rb.Spend() || !rb.Spend() {
		t.Fatal("budget should start full")
	}
	if rb.Spend() {
		t.Fatal("empty budget allowed a retry")
	}
	// 10 successes bank one retry at ratio 0.1.
	for i := 0; i < 10; i++ {
		rb.Success()
	}
	if !rb.Spend() {
		t.Fatal("banked tokens not spendable")
	}
	// Cap bounds banking.
	for i := 0; i < 100; i++ {
		rb.Success()
	}
	if got := rb.Tokens(); got != 2 {
		t.Fatalf("tokens = %g, want capped at 2", got)
	}
}
