package resilience

import (
	"math/rand"
	"testing"
)

func noRand() float64 { panic("policy consumed randomness it should not need") }

func TestFixedBackoff(t *testing.T) {
	b := Backoff{Kind: Fixed, BaseSec: 5}
	for retry := 1; retry <= 4; retry++ {
		if d := b.Delay(retry, 0, noRand); d != 5 {
			t.Fatalf("fixed delay(%d) = %g, want 5", retry, d)
		}
	}
}

func TestExponentialBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Kind: Exponential, BaseSec: 1, CapSec: 10}
	want := []float64{1, 2, 4, 8, 10, 10}
	for i, w := range want {
		if d := b.Delay(i+1, 0, noRand); d != w {
			t.Fatalf("exp delay(%d) = %g, want %g", i+1, d, w)
		}
	}
	// Custom growth factor.
	b3 := Backoff{Kind: Exponential, BaseSec: 2, Factor: 3}
	if d := b3.Delay(3, 0, noRand); d != 18 {
		t.Fatalf("factor-3 delay(3) = %g, want 18", d)
	}
}

func TestDecorrelatedJitterBounds(t *testing.T) {
	b := Backoff{Kind: Decorrelated, BaseSec: 1, CapSec: 30}
	rng := rand.New(rand.NewSource(7))
	prev := 0.0
	for i := 1; i <= 200; i++ {
		d := b.Delay(i, prev, rng.Float64)
		lo, hi := b.BaseSec, 3*prev
		if prev < b.BaseSec {
			hi = 3 * b.BaseSec
		}
		if hi > b.CapSec {
			hi = b.CapSec
		}
		if d < lo || d > hi {
			t.Fatalf("decorrelated delay %g outside [%g, %g] at retry %d (prev %g)", d, lo, hi, i, prev)
		}
		prev = d
	}
}

func TestDecorrelatedIsDeterministicGivenSampler(t *testing.T) {
	b := Backoff{Kind: Decorrelated, BaseSec: 2, CapSec: 60}
	seq := func() []float64 {
		rng := rand.New(rand.NewSource(42))
		var out []float64
		prev := 0.0
		for i := 1; i <= 20; i++ {
			prev = b.Delay(i, prev, rng.Float64)
			out = append(out, prev)
		}
		return out
	}
	a, c := seq(), seq()
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("decorrelated schedule not reproducible from the same sampler")
		}
	}
}

func TestBackoffBudgets(t *testing.T) {
	b := Backoff{MaxAttempts: 2}
	if !b.Allow(1, 0, 5) || !b.Allow(2, 0, 5) {
		t.Fatal("retries within budget rejected")
	}
	if b.Allow(3, 0, 5) {
		t.Fatal("retry beyond MaxAttempts allowed")
	}
	// Unset budget falls back to the caller default.
	z := Backoff{}
	if !z.Allow(3, 0, 3) || z.Allow(4, 0, 3) {
		t.Fatal("default attempt budget not applied")
	}
	// Elapsed-time budget.
	e := Backoff{MaxAttempts: 100, MaxElapsedSec: 60}
	if !e.Allow(5, 59, 3) || e.Allow(5, 61, 3) {
		t.Fatal("elapsed budget not applied")
	}
	// No budget anywhere means no retries at all.
	if (Backoff{}).Allow(1, 0, 0) {
		t.Fatal("retry allowed without any attempt budget")
	}
}

func TestBackoffValidate(t *testing.T) {
	good := []Backoff{{}, {Kind: Exponential, BaseSec: 1, CapSec: 10, MaxAttempts: 5}}
	for _, b := range good {
		if err := b.Validate(); err != nil {
			t.Fatalf("good policy rejected: %v", err)
		}
	}
	bad := []Backoff{
		{Kind: Kind(9)},
		{BaseSec: -1},
		{CapSec: -1},
		{Factor: -2},
		{MaxAttempts: -1},
		{MaxElapsedSec: -1},
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Fatalf("bad policy %d accepted: %+v", i, b)
		}
	}
}

func TestBackoffIsZero(t *testing.T) {
	if !(Backoff{}).IsZero() {
		t.Fatal("zero value not recognized")
	}
	if (Backoff{BaseSec: 1}).IsZero() {
		t.Fatal("non-zero value treated as unset")
	}
}

func TestKindParsing(t *testing.T) {
	for _, name := range []string{"fixed", "exponential", "decorrelated"} {
		k, err := KindByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.String() != name {
			t.Fatalf("round trip %q → %q", name, k.String())
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestHedgeThreshold(t *testing.T) {
	durations := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := Hedge{Quantile: 90}
	if got := h.Threshold(durations); got != 90 {
		t.Fatalf("p90 threshold = %g, want 90", got)
	}
	// MinDelaySec floors the threshold.
	h = Hedge{Quantile: 10, MinDelaySec: 25}
	if got := h.Threshold(durations); got != 25 {
		t.Fatalf("floored threshold = %g, want 25", got)
	}
	// Disabled or empty data falls back to the floor.
	if (Hedge{}).Enabled() {
		t.Fatal("zero hedge should be disabled")
	}
	if got := (Hedge{MinDelaySec: 3}).Threshold(durations); got != 3 {
		t.Fatalf("disabled hedge threshold = %g, want 3", got)
	}
	if got := (Hedge{Quantile: 95, MinDelaySec: 7}).Threshold(nil); got != 7 {
		t.Fatalf("empty-fleet threshold = %g, want 7", got)
	}
}

func TestHedgeValidate(t *testing.T) {
	if (Hedge{Quantile: 95, MinDelaySec: 1}).Validate() != nil {
		t.Fatal("good hedge rejected")
	}
	for i, h := range []Hedge{{Quantile: -1}, {Quantile: 100}, {Quantile: 50, MinDelaySec: -1}} {
		if h.Validate() == nil {
			t.Fatalf("bad hedge %d accepted: %+v", i, h)
		}
	}
}
