package resilience

import (
	"fmt"
	"sync"
)

// RetryBudget is a global retry throttle (the "retry budget" from the SRE
// playbook): retries are only allowed while the budget holds tokens, and
// tokens accrue as a fraction of successful first attempts. When a backend
// is broadly down, first attempts stop succeeding, the budget drains, and
// the retry storm self-extinguishes instead of tripling the load.
//
// Like the Breaker it is server-side state, kept deterministic by feeding
// outcomes explicitly rather than reading clocks: one token per Success
// times Ratio, one token spent per allowed retry, capped at Cap.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	cap    float64
}

// NewRetryBudget builds a budget allowing roughly ratio retries per
// success, holding at most cap banked tokens. The budget starts full so a
// cold server can still retry.
func NewRetryBudget(ratio, cap float64) (*RetryBudget, error) {
	if ratio < 0 || cap <= 0 {
		return nil, fmt.Errorf("resilience: retry budget ratio %g / cap %g invalid", ratio, cap)
	}
	return &RetryBudget{tokens: cap, ratio: ratio, cap: cap}, nil
}

// Success banks Ratio tokens for one successful first attempt.
func (rb *RetryBudget) Success() {
	rb.mu.Lock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.cap {
		rb.tokens = rb.cap
	}
	rb.mu.Unlock()
}

// Spend reports whether one retry may proceed, consuming a token if so.
// A tiny tolerance absorbs float accrual error (ten 0.1-deposits must buy
// one retry).
func (rb *RetryBudget) Spend() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1-1e-9 {
		return false
	}
	rb.tokens--
	if rb.tokens < 0 {
		rb.tokens = 0
	}
	return true
}

// Tokens reports the banked token count, for metrics and tests.
func (rb *RetryBudget) Tokens() float64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.tokens
}
