package platform

import (
	"errors"
	"math"
	"testing"

	"repro/internal/workload"
)

func failingConfig(p float64) Config {
	cfg := AWSLambda()
	cfg.StartFailureProb = p
	cfg.RetryDelaySec = 5
	return cfg
}

func TestFailureInjectionRetriesLengthenTail(t *testing.T) {
	d := workload.Video{}.Demand()
	b := Burst{Demand: d, Functions: 500, Degree: 1, Seed: 21}
	clean, err := Run(AWSLambda(), b)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(failingConfig(0.05), b)
	if err != nil {
		t.Fatal(err)
	}
	var retries int
	for _, tl := range faulty.Timelines {
		retries += tl.Retries
	}
	// With p=0.05 over 500 instances, ~25 retries expected.
	if retries < 5 || retries > 80 {
		t.Fatalf("implausible retry count %d for p=0.05, n=500", retries)
	}
	if faulty.ScalingTime() <= clean.ScalingTime() {
		t.Fatalf("failures should lengthen the scaling tail: %g vs %g",
			faulty.ScalingTime(), clean.ScalingTime())
	}
	// Every instance must still eventually run.
	for _, tl := range faulty.Timelines {
		if tl.End <= tl.Start || tl.Start == 0 {
			t.Fatalf("instance %d never ran: %+v", tl.Index, tl)
		}
	}
}

func TestFailureInjectionExhaustedRetriesFailBurst(t *testing.T) {
	cfg := failingConfig(0.97)
	cfg.MaxStartRetries = 1
	d := workload.Video{}.Demand()
	_, err := Run(cfg, Burst{Demand: d, Functions: 50, Degree: 1, Seed: 22})
	if !errors.Is(err, ErrStartFailed) {
		t.Fatalf("expected ErrStartFailed, got %v", err)
	}
}

func TestFailureInjectionZeroProbIsClean(t *testing.T) {
	d := workload.Video{}.Demand()
	b := Burst{Demand: d, Functions: 200, Degree: 2, Seed: 23}
	a, err := Run(AWSLambda(), b)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AWSLambda()
	cfg.RetryDelaySec = 5 // irrelevant without failures
	c, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TotalServiceTime()-c.TotalServiceTime()) > 1e-12 {
		t.Fatal("zero failure probability must not perturb the run")
	}
	for _, tl := range c.Timelines {
		if tl.Retries != 0 {
			t.Fatal("retries recorded without failure injection")
		}
	}
}

func TestFailureConfigValidation(t *testing.T) {
	cfg := AWSLambda()
	cfg.StartFailureProb = 1.0
	if cfg.Validate() == nil {
		t.Fatal("p=1 accepted (would loop forever)")
	}
	cfg = AWSLambda()
	cfg.StartFailureProb = -0.1
	if cfg.Validate() == nil {
		t.Fatal("negative probability accepted")
	}
	cfg = AWSLambda()
	cfg.RetryDelaySec = -1
	if cfg.Validate() == nil {
		t.Fatal("negative retry delay accepted")
	}
	cfg = AWSLambda()
	cfg.MaxStartRetries = -1
	if cfg.Validate() == nil {
		t.Fatal("negative retry cap accepted")
	}
}

// TestFailureWithPodsAndWarm exercises the retry path's interaction with
// pods (retried members find their pod shipped) and warm instances.
func TestFailureWithPodsAndWarm(t *testing.T) {
	cfg := failingConfig(0.1)
	cfg.PodSize = 8
	d := workload.Video{}.Demand()
	res, err := Run(cfg, Burst{Demand: d, Functions: 128, Degree: 1, Warm: 16, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, tl := range res.Timelines {
		if tl.End <= tl.Start {
			t.Fatalf("instance %d never completed: %+v", tl.Index, tl)
		}
	}
}
