package platform

import (
	"testing"
	"testing/quick"

	"repro/internal/interfere"
)

// TestBurstInvariantsProperty fuzzes burst shapes against the platform's
// structural invariants: causality of every timeline, function-count
// conservation, non-negative billing, and scaling ≤ total service.
func TestBurstInvariantsProperty(t *testing.T) {
	cfg := AWSLambda()
	f := func(cRaw uint16, degRaw, warmRaw uint8, seed int16) bool {
		c := int(cRaw)%800 + 1
		deg := int(degRaw)%12 + 1
		warm := int(warmRaw) % (c/deg + 1)
		d := interfere.Demand{
			CPUSeconds: 20 + float64(degRaw%50),
			IOSeconds:  5 + float64(warmRaw%40),
			MemoryMB:   256,
			MemBWMBps:  1500,
			InputMB:    2,
			OutputMB:   1,
		}
		res, err := Run(cfg, Burst{Demand: d, Functions: c, Degree: deg, Warm: warm, Seed: int64(seed)})
		if err != nil {
			return false
		}
		total := 0
		for _, tl := range res.Timelines {
			total += tl.Degree
			if !(tl.SchedDone > 0 && tl.SchedDone <= tl.BuildDone &&
				tl.BuildDone <= tl.ShipDone && tl.ShipDone < tl.Start && tl.Start < tl.End) {
				return false
			}
		}
		if total != c {
			return false
		}
		if res.ExpenseUSD() <= 0 || res.ComputeUSD <= 0 {
			return false
		}
		if res.ScalingTime() > res.TotalServiceTime()+res.firstStart() {
			return false
		}
		med, tail, tot := res.ServiceTimeAtQuantile(50), res.ServiceTimeAtQuantile(95), res.TotalServiceTime()
		return med <= tail && tail <= tot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMixedEqualsHomogeneousProperty fuzzes the equivalence of the two
// execution paths for homogeneous bins.
func TestMixedEqualsHomogeneousProperty(t *testing.T) {
	cfg := AWSLambda()
	cfg.JitterRel = 0
	f := func(cRaw, degRaw uint8, seed int16) bool {
		deg := int(degRaw)%6 + 1
		bins := int(cRaw)%40 + 1
		c := bins * deg
		d := interfere.Demand{CPUSeconds: 30, IOSeconds: 20, MemoryMB: 300, MemBWMBps: 2000}
		homog, err := Run(cfg, Burst{Demand: d, Functions: c, Degree: deg, Seed: int64(seed)})
		if err != nil {
			return false
		}
		mb := make([]Bin, bins)
		for i := range mb {
			for j := 0; j < deg; j++ {
				mb[i].Demands = append(mb[i].Demands, d)
			}
		}
		mixed, err := RunMixed(cfg, MixedBurst{Bins: mb, Seed: int64(seed)})
		if err != nil {
			return false
		}
		// The two paths compute the same quantities in different float
		// orders (pressure sums vs multiplications, billing grouping), so
		// equality holds only up to ulps.
		relClose := func(a, b float64) bool {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d < 1e-12*a
		}
		return relClose(homog.TotalServiceTime(), mixed.TotalServiceTime()) &&
			relClose(homog.ExpenseUSD(), mixed.ExpenseUSD())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBillingAdditiveProperty: splitting one burst's functions across two
// bursts at the same degree bills the same total (no cross-instance
// coupling in the meter).
func TestBillingAdditiveProperty(t *testing.T) {
	cfg := AWSLambda()
	cfg.JitterRel = 0
	d := interfere.Demand{CPUSeconds: 25, IOSeconds: 15, MemoryMB: 256,
		MemBWMBps: 1000, InputMB: 3, OutputMB: 2, ShuffleFraction: 0.5}
	f := func(aRaw, bRaw uint8) bool {
		const deg = 4
		a := (int(aRaw)%20 + 1) * deg
		b := (int(bRaw)%20 + 1) * deg
		whole, err := Run(cfg, Burst{Demand: d, Functions: a + b, Degree: deg, Seed: 1})
		if err != nil {
			return false
		}
		pa, err := Run(cfg, Burst{Demand: d, Functions: a, Degree: deg, Seed: 1})
		if err != nil {
			return false
		}
		pb, err := Run(cfg, Burst{Demand: d, Functions: b, Degree: deg, Seed: 1})
		if err != nil {
			return false
		}
		diff := whole.ExpenseUSD() - (pa.ExpenseUSD() + pb.ExpenseUSD())
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9*whole.ExpenseUSD()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
