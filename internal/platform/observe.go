package platform

import "repro/internal/obs"

// emitLifecycleSpans converts the finished timelines into per-instance
// lifecycle stage spans, in instance order (deterministic for golden tests).
// arrive and admitted are the recorder-only tracking arrays filled by
// runControlPlane: arrival at the platform (t=0, or the staggered arrival)
// and first scheduler entry (later than arrival only under account-level
// throttling).
//
// The spans tile each instance's critical path exactly as
// Result.StageBreakdown slices it: queued (arrival → scheduler),
// sched (scheduler → placement), build, ship, and boot (ship-done →
// execution start), then exec (start → end). Zero-length spans (warm
// instances skip build and ship; unthrottled instances skip queued) are
// omitted. For instances that survived start retries the sched milestone is
// the *last* pass's placement, so the boot span absorbs the retry loops —
// the per-attempt story is in the live fault events, not the spans.
func emitLifecycleSpans(rec obs.Recorder, timelines []Timeline, arrive, admitted []float64) {
	emit := func(i int, st obs.Stage, start, end float64) {
		if end > start {
			rec.Span(obs.Span{Instance: i, Stage: st, StartSec: start, EndSec: end})
		}
	}
	for i, t := range timelines {
		emit(i, obs.StageQueued, arrive[i], admitted[i])
		emit(i, obs.StageSched, admitted[i], t.SchedDone)
		emit(i, obs.StageBuild, t.SchedDone, t.BuildDone)
		emit(i, obs.StageShip, t.BuildDone, t.ShipDone)
		// A retried instance's last placement can postdate its pod's
		// (unchanged) ship milestone; clamp so the boot span never starts
		// before the work it follows.
		bootStart := t.ShipDone
		if t.SchedDone > bootStart {
			bootStart = t.SchedDone
		}
		emit(i, obs.StageBoot, bootStart, t.Start)
		emit(i, obs.StageExec, t.Start, t.End)
	}
}
