package platform

import (
	"math"
	"testing"

	"repro/internal/interfere"
	"repro/internal/workload"
)

func singletonBins(d interfere.Demand, n int) []Bin {
	bins := make([]Bin, n)
	for i := range bins {
		bins[i] = Bin{Demands: []interfere.Demand{d}}
	}
	return bins
}

func TestRunMixedMatchesHomogeneousRun(t *testing.T) {
	cfg := AWSLambda()
	cfg.JitterRel = 0 // jitter streams differ between the two paths
	d := workload.Video{}.Demand()
	const c, deg = 120, 4

	homog, err := Run(cfg, Burst{Demand: d, Functions: c, Degree: deg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bins := make([]Bin, 0, c/deg)
	for i := 0; i < c/deg; i++ {
		var b Bin
		for j := 0; j < deg; j++ {
			b.Demands = append(b.Demands, d)
		}
		bins = append(bins, b)
	}
	mixed, err := RunMixed(cfg, MixedBurst{Bins: bins, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(homog.TotalServiceTime()-mixed.TotalServiceTime()) > 1e-9 {
		t.Fatalf("service mismatch: %g vs %g", homog.TotalServiceTime(), mixed.TotalServiceTime())
	}
	if math.Abs(homog.ExpenseUSD()-mixed.ExpenseUSD()) > 1e-9 {
		t.Fatalf("expense mismatch: $%g vs $%g", homog.ExpenseUSD(), mixed.ExpenseUSD())
	}
	if mixed.Burst.Degree != 0 || len(mixed.Bins) != c/deg || mixed.Instances() != c/deg {
		t.Fatalf("mixed result identity wrong: %+v", mixed.Burst)
	}
}

func TestRunMixedHeterogeneousBins(t *testing.T) {
	cfg := AWSLambda()
	sw := workload.SmithWaterman{}.Demand()
	sc := workload.StatelessCost{}.Demand()
	bins := []Bin{
		{Demands: []interfere.Demand{sw, sw, sc, sc, sc}},
		{Demands: []interfere.Demand{sw, sc}},
		{Demands: []interfere.Demand{sc}},
	}
	res, err := RunMixed(cfg, MixedBurst{Bins: bins, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timelines) != 3 {
		t.Fatalf("instances %d, want 3", len(res.Timelines))
	}
	if res.Timelines[0].Degree != 5 || res.Timelines[2].Degree != 1 {
		t.Fatalf("bin degrees wrong: %+v", res.Timelines)
	}
	// The heavier bin must run longer than the singleton.
	if res.Timelines[0].ExecSeconds() <= res.Timelines[2].ExecSeconds() {
		t.Fatal("5-way mixed bin should execute longer than a singleton")
	}
	if res.ExpenseUSD() <= 0 {
		t.Fatal("no bill")
	}
}

func TestRunMixedValidation(t *testing.T) {
	cfg := AWSLambda()
	d := workload.Video{}.Demand()
	if _, err := RunMixed(cfg, MixedBurst{}); err == nil {
		t.Fatal("empty burst accepted")
	}
	if _, err := RunMixed(cfg, MixedBurst{Bins: []Bin{{}}}); err == nil {
		t.Fatal("empty bin accepted")
	}
	big := d
	big.MemoryMB = 11000
	if _, err := RunMixed(cfg, MixedBurst{Bins: []Bin{{Demands: []interfere.Demand{big}}}}); err == nil {
		t.Fatal("oversized bin accepted")
	}
	if _, err := RunMixed(cfg, MixedBurst{Bins: singletonBins(d, 2), Warm: -1}); err == nil {
		t.Fatal("negative warm accepted")
	}
	cfg.MaxExecSec = 10
	if _, err := RunMixed(cfg, MixedBurst{Bins: singletonBins(d, 1)}); err == nil {
		t.Fatal("execution over the limit accepted")
	}
}

func TestGroupDemands(t *testing.T) {
	a := workload.Video{}.Demand()
	b := workload.Sort{}.Demand()
	groups := groupDemands([]interfere.Demand{a, b, a, a, b})
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if groups[0].n != 3 || groups[1].n != 2 {
		t.Fatalf("group sizes %d/%d, want 3/2", groups[0].n, groups[1].n)
	}
}
