package platform

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/sim"
)

// runControlPlaneClosure is the closure-based control plane the typed
// dispatcher (dispatch.go) replaced, retained VERBATIM as a frozen oracle —
// the same pattern as the retained heap event queue in internal/sim and the
// retained quadratic planner in core/table_equiv_test.go. The typed path
// must reproduce its Results and recorder traces byte for byte; the
// differential tests in typed_equiv_test.go swap it in through the runCP
// hook. Only two mechanical edits were made: the function was renamed, and
// engine construction goes through sc.engine() (the pooled engine; closure
// events never consult the sink, so no SetSink is needed).
//
// Do not "improve" this function; it is a specification, not product code.
func runControlPlaneClosure(cfg Config, b Burst, sc *runScratch, rng *sim.RNG) (*Result, error) {
	ib := &sc.batch
	n := ib.n
	execs := ib.execs
	eng := sc.engine()
	sched := sim.NewStation(eng, cfg.SchedServers)
	buildSt := sim.NewStation(eng, cfg.BuildServers)
	shipSt := sim.NewStation(eng, cfg.ShipServers)

	// Observability: a nil recorder costs only the guard checks below; with
	// one attached we additionally track arrival and scheduler-entry times
	// (they are not part of Timeline) to emit queued/sched spans.
	rec := b.Recorder
	var arrive, admitted []float64
	if rec != nil {
		rec.BeginBurst(obs.BurstInfo{
			Platform: cfg.Name, Label: b.Label,
			Functions: b.Functions, Degree: b.Degree, Instances: n,
		})
		arrive = make([]float64, n)
		admitted = make([]float64, n)
		for i := range admitted {
			admitted[i] = -1
		}
	}

	podSize := cfg.PodSize
	if podSize < 1 {
		podSize = 1
	}
	pods := sc.podStates((n + podSize - 1) / podSize)

	maxRetries := cfg.MaxStartRetries
	if maxRetries == 0 {
		maxRetries = 3
	}
	retryPol := cfg.retryPolicy()
	// prevDelay feeds the decorrelated-jitter schedule; per instance so
	// parallel retry chains stay independent.
	prevDelay := ib.prevDelay
	// The hedge launch threshold is the configured quantile of the fleet's
	// planned execution durations — known up front in the simulator, so the
	// policy is deterministic.
	hedgeThr := math.Inf(1)
	if cfg.Hedge.Enabled() && n > 0 {
		hedgeThr = cfg.Hedge.Threshold(execs)
	}
	var burstErr error
	var submitSched func(i int)

	// Account-level throttling: at most ConcurrencyLimit instances may be
	// admitted (scheduled or running) at once; the rest wait FIFO for a
	// running instance to finish.
	var running int
	var throttleQ []int
	release := func() {
		running--
		if len(throttleQ) > 0 {
			next := throttleQ[0]
			throttleQ = throttleQ[1:]
			running++
			submitSched(next)
		}
	}
	admit := func(i int) {
		if rec != nil {
			arrive[i] = eng.Now()
		}
		if cfg.ConcurrencyLimit > 0 && running >= cfg.ConcurrencyLimit {
			throttleQ = append(throttleQ, i)
			return
		}
		running++
		submitSched(i)
	}

	// backoffThenResubmit re-enters the scheduler after the retry policy's
	// delay for the given retry number (the admission slot stays held).
	backoffThenResubmit := func(i, retry int) {
		d := retryPol.Delay(retry, prevDelay[i], rng.Float64)
		prevDelay[i] = d
		if rec != nil {
			rec.Event(obs.Event{Instance: i, Kind: obs.EventBackoff, AtSec: eng.Now(), DurSec: d})
		}
		eng.After(d, func() { submitSched(i) })
	}
	// failExec handles a crashed or timed-out attempt: retry within the
	// policy's budget or fail the burst.
	failExec := func(i int) {
		retry := int(ib.crashes[i] + ib.timeouts[i])
		if !retryPol.Allow(retry, eng.Now(), maxRetries) {
			if burstErr == nil {
				burstErr = fmt.Errorf("%w: instance %d after %d failed attempts",
					ErrExecFailed, i, retry)
			}
			release()
			return
		}
		backoffThenResubmit(i, retry)
	}
	finish := func(i int) {
		ib.start[i] = eng.Now()
		dur := execs[i]
		if cfg.StragglerProb > 0 && rng.Float64() < cfg.StragglerProb {
			dur *= cfg.StragglerFactor
			ib.straggled[i]++
			if rec != nil {
				rec.Event(obs.Event{Instance: i, Kind: obs.EventStraggle, AtSec: eng.Now(), DurSec: dur})
			}
		}
		// Sample this attempt's crash time; the attempt fails at whichever
		// of crash and timeout strikes first, billing the partial work.
		crashAt := math.Inf(1)
		if cfg.CrashRate > 0 {
			crashAt = rng.ExpFloat64() / cfg.CrashRate
		}
		timeoutAt := math.Inf(1)
		if cfg.ExecTimeoutSec > 0 {
			timeoutAt = cfg.ExecTimeoutSec
		}
		if crashAt < dur && crashAt <= timeoutAt {
			eng.After(crashAt, func() {
				ib.crashes[i]++
				ib.failedSec[i] += crashAt
				if rec != nil {
					rec.Event(obs.Event{Instance: i, Kind: obs.EventCrash, AtSec: eng.Now(), DurSec: crashAt})
				}
				failExec(i)
			})
			return
		}
		if timeoutAt < dur {
			eng.After(timeoutAt, func() {
				ib.timeouts[i]++
				ib.failedSec[i] += timeoutAt
				if rec != nil {
					rec.Event(obs.Event{Instance: i, Kind: obs.EventTimeout, AtSec: eng.Now(), DurSec: timeoutAt})
				}
				failExec(i)
			})
			return
		}
		// The attempt will complete. If it is a straggler (past the fleet's
		// hedge threshold), launch one speculative duplicate with a fresh
		// execution draw; the first finisher wins and the loser is killed
		// (and billed) at that moment. Duplicates model a relaunch on a
		// healthy host: no straggler or crash injection applies to them.
		end := dur
		if dur > hedgeThr {
			hedgeDur := execs[i] * rng.Jitter(cfg.JitterRel)
			ib.flags[i] |= flagHedged
			if hedgeThr+hedgeDur < dur {
				ib.flags[i] |= flagHedgeWon
				ib.hedgeExtraSec[i] = hedgeDur
				end = hedgeThr + hedgeDur
			} else {
				ib.hedgeExtraSec[i] = dur - hedgeThr
			}
			if rec != nil {
				rec.Event(obs.Event{Instance: i, Kind: obs.EventHedgeLaunch, AtSec: eng.Now() + hedgeThr})
			}
		}
		eng.After(end, func() {
			ib.end[i] = eng.Now()
			if rec != nil && ib.flags[i]&flagHedged != 0 {
				kind := obs.EventHedgeWaste
				if ib.flags[i]&flagHedgeWon != 0 {
					kind = obs.EventHedgeWin
				}
				rec.Event(obs.Event{Instance: i, Kind: kind, AtSec: eng.Now(), DurSec: ib.hedgeExtraSec[i]})
				rec.Span(obs.Span{
					Instance: i, Stage: obs.StageHedge,
					StartSec: ib.start[i] + hedgeThr, EndSec: eng.Now(),
				})
			}
			release()
		})
	}
	boot := func(i int) {
		eng.After(cfg.BootSec, func() {
			if cfg.StartFailureProb > 0 && rng.Float64() < cfg.StartFailureProb {
				// Cold start failed: back off and re-enter the scheduler
				// (the admission slot stays held through retries).
				ib.retries[i]++
				if rec != nil {
					rec.Event(obs.Event{Instance: i, Kind: obs.EventStartRetry, AtSec: eng.Now()})
				}
				if !retryPol.Allow(int(ib.retries[i]), eng.Now(), maxRetries) {
					if burstErr == nil {
						burstErr = fmt.Errorf("%w: instance %d after %d attempts",
							ErrStartFailed, i, ib.retries[i])
					}
					release()
					return
				}
				backoffThenResubmit(i, int(ib.retries[i]))
				return
			}
			finish(i)
		})
	}
	warmStart := func(i int) {
		eng.After(cfg.WarmStartSec, func() { finish(i) })
	}
	podShipped := func(p int) {
		pods[p].shipped = true
		pods[p].shippedAt = eng.Now()
		for _, w := range pods[p].waiting {
			ib.buildDone[w] = pods[p].shippedAt
			ib.shipDone[w] = pods[p].shippedAt
			boot(w)
		}
		pods[p].waiting = pods[p].waiting[:0]
	}

	submitSched = func(i int) {
		if rec != nil && admitted[i] < 0 {
			admitted[i] = eng.Now()
		}
		sched.Submit(
			func() float64 {
				return cfg.SchedBaseSec + cfg.SchedPerBusySec*float64(sched.Served)
			},
			func(_, end float64) {
				ib.schedDone[i] = end
				if ib.warm(i) {
					ib.buildDone[i] = end
					ib.shipDone[i] = end
					warmStart(i)
					return
				}
				p := i / podSize
				leader := p*podSize == i || ib.allWarmBefore(p*podSize, i)
				if pods[p].shipped {
					ib.buildDone[i] = pods[p].shippedAt
					ib.shipDone[i] = pods[p].shippedAt
					boot(i)
					return
				}
				if !leader {
					pods[p].waiting = append(pods[p].waiting, i)
					return
				}
				buildSt.Submit(
					func() float64 {
						return cfg.BuildSec + cfg.BuildGrowthSec*float64(buildSt.Served)
					},
					func(_, buildEnd float64) {
						ib.buildDone[i] = buildEnd
						shipSt.Submit(
							func() float64 {
								return cfg.ShipSec + cfg.ShipGrowthSec*float64(shipSt.Served)
							},
							func(_, shipEnd float64) {
								ib.shipDone[i] = shipEnd
								boot(i)
								podShipped(p)
							})
					})
			})
	}

	// Every instance requests placement at t=0 (or at its staggered arrival
	// time), subject to account-level throttling. The scheduler's search
	// cost grows with the number of placements already made — the paper's
	// "scheduling algorithm needs to search and find more places" effect.
	for i := 0; i < n; i++ {
		i := i
		if b.StaggerSec > 0 || b.arrivalOffsetSec > 0 {
			eng.At(b.arrivalOffsetSec+float64(i)*b.StaggerSec, func() { admit(i) })
		} else {
			admit(i)
		}
	}
	eng.Run()
	if burstErr != nil {
		return nil, burstErr
	}

	timelines := ib.materialize()
	res := &Result{
		Config:       cfg,
		Burst:        b,
		Timelines:    timelines,
		SchedBusySec: sched.BusySeconds / float64(cfg.SchedServers),
		BuildBusySec: buildSt.BusySeconds / float64(cfg.BuildServers),
		ShipBusySec:  shipSt.BusySeconds / float64(cfg.ShipServers),
	}
	for _, t := range timelines {
		res.StartRetries += t.Retries
		res.Crashes += t.Crashes
		res.Timeouts += t.Timeouts
		if t.Hedged {
			res.HedgesLaunched++
		}
		if t.HedgeWon {
			res.HedgesWon++
		}
	}
	if rec != nil {
		emitLifecycleSpans(rec, timelines, arrive, admitted)
	}
	return res, nil
}
