package platform

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/interfere"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
)

// ErrExecLimit is returned when an instance's execution time would exceed
// the platform's limit (e.g. 15 minutes on Lambda) — the failure mode the
// paper notes for long functions at high packing degrees.
var ErrExecLimit = errors.New("platform: execution exceeds platform limit")

// ErrStartFailed is returned when an instance exhausts its start retries
// under failure injection.
var ErrStartFailed = errors.New("platform: instance failed to start after retries")

// ErrExecFailed is returned when an instance exhausts its execution retries
// (mid-execution crashes or timeouts) under failure injection.
var ErrExecFailed = errors.New("platform: instance failed to execute after retries")

// Burst describes one concurrent invocation wave: C logical functions
// packed at degree P, yielding ceil(C/P) function instances spawned
// simultaneously (the Step Functions map-state pattern).
type Burst struct {
	// Demand is the per-function resource profile.
	Demand interfere.Demand
	// Functions is C, the application's requested concurrency.
	Functions int
	// Degree is P, the packing degree; 1 is the traditional baseline.
	Degree int
	// Warm is the number of instances served from a warm pool (reused
	// instances skip build, ship, and boot — the Pywren optimization).
	Warm int
	// StaggerSec spaces out invocations: instance k is invoked at
	// k·StaggerSec instead of all at t=0. 0 is the usual simultaneous
	// burst. (Staggering is the latency-hiding alternative the paper
	// rejects in Sec. 4: it empties the control-plane queues but delays the
	// last start by C·StaggerSec.)
	StaggerSec float64
	// Seed drives execution-time jitter.
	Seed int64

	// arrivalOffsetSec shifts every instance's arrival by a constant, in
	// virtual seconds. Sharded runs use it so shard s's staggered arrivals
	// begin at lo·StaggerSec — global arrival times are preserved even
	// though the shard numbers its instances from zero. Always zero outside
	// sharded runs.
	arrivalOffsetSec float64

	// Recorder receives event-level observability records (lifecycle stage
	// spans, fault and hedge events). Nil disables observability at zero
	// cost; see internal/obs.
	Recorder obs.Recorder
	// Label names the burst in exported traces ("degree-8", "unpacked");
	// may be empty.
	Label string
}

// Instances is the number of function instances the burst spawns:
// ceil(Functions / Degree).
func (b Burst) Instances() int {
	return (b.Functions + b.Degree - 1) / b.Degree
}

// Validate reports an error for malformed bursts.
func (b Burst) Validate() error {
	if err := b.Demand.Validate(); err != nil {
		return err
	}
	switch {
	case b.Functions < 1:
		return fmt.Errorf("platform: burst needs ≥1 function, have %d", b.Functions)
	case b.Degree < 1:
		return fmt.Errorf("platform: packing degree must be ≥1, have %d", b.Degree)
	case b.Warm < 0:
		return fmt.Errorf("platform: negative warm count %d", b.Warm)
	case b.StaggerSec < 0:
		return fmt.Errorf("platform: negative stagger %g", b.StaggerSec)
	}
	return nil
}

// Timeline records one instance's trip through the control plane. All times
// are seconds since the burst's invocation.
type Timeline struct {
	Index     int
	Degree    int  // functions packed in this instance
	Warm      bool // served from the warm pool
	Retries   int  // start attempts beyond the first (failure injection)
	SchedDone float64
	BuildDone float64 // == SchedDone for warm instances
	ShipDone  float64 // == SchedDone for warm instances
	Start     float64 // execution begins (of the final, successful attempt)
	End       float64 // execution ends

	// Fault-injection outcomes. Failed attempts are billed — FailedSec is
	// the execution time they consumed before crashing or timing out.
	Crashes   int     // mid-execution crashes survived via retry
	Timeouts  int     // execution-timeout kills survived via retry
	Straggled int     // attempts hit by straggler slowdown
	FailedSec float64 // billed execution seconds of failed attempts

	// Hedging outcomes. HedgeExtraSec is the billed execution time of the
	// speculative duplicate (the loser is killed when the winner finishes).
	Hedged        bool
	HedgeWon      bool // the duplicate finished first
	HedgeExtraSec float64
}

// ExecSeconds is the billed execution duration of the instance's winning
// copy (failed attempts and hedge duplicates are accounted separately in
// FailedSec and HedgeExtraSec).
func (t Timeline) ExecSeconds() float64 { return t.End - t.Start }

// wastedSec is the billed time that produced no results: failed attempts
// plus the losing copy of a hedged execution.
func (t Timeline) wastedSec() float64 {
	w := t.FailedSec
	if t.Hedged {
		if t.HedgeWon {
			w += t.ExecSeconds() // the primary ran until the duplicate won
		} else {
			w += t.HedgeExtraSec // the duplicate ran until the primary won
		}
	}
	return w
}

// Result is the outcome of simulating one burst.
type Result struct {
	Config    Config
	Burst     Burst
	Timelines []Timeline
	// Bins is non-nil for heterogeneous (RunMixed) bursts and records each
	// instance's resident function set; Burst.Degree is 0 in that case.
	Bins []Bin

	// Expense breakdown in USD.
	ComputeUSD float64
	RequestUSD float64
	StorageUSD float64
	// WastedUSD is the share of ComputeUSD spent on failed attempts and
	// losing hedge copies — already included in ComputeUSD, broken out so
	// failure injection's cost is auditable.
	WastedUSD float64

	// Fault-tolerance aggregates across all instances.
	StartRetries   int // cold-start re-submissions
	Crashes        int // mid-execution crashes retried
	Timeouts       int // execution-timeout kills retried
	HedgesLaunched int // speculative duplicates started
	HedgesWon      int // duplicates that finished first

	// Per-stage aggregate busy time, normalized per server: how long each
	// control-plane resource actually worked for this burst. The stages
	// pipeline, so these overlap and need not sum to the scaling time.
	SchedBusySec float64
	BuildBusySec float64
	ShipBusySec  float64
}

// ExpenseUSD is the total bill for the burst.
func (r *Result) ExpenseUSD() float64 { return r.ComputeUSD + r.RequestUSD + r.StorageUSD }

// Instances is the number of function instances the burst actually spawned
// (valid for both homogeneous and mixed bursts).
func (r *Result) Instances() int { return len(r.Timelines) }

// Run simulates one invocation burst on the platform and returns the
// per-instance timelines plus the bill.
func Run(cfg Config, b Burst) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := b.Instances()
	// Execution durations are determined before the control-plane race so
	// any platform-limit violation fails fast and deterministically. All but
	// the last instance hold exactly Degree functions, so the per-instance
	// degree is derived arithmetically instead of via a materialized slice —
	// and the interference model is evaluated once per distinct degree (two
	// at most) instead of once per instance. The jitter draws stay on the
	// burst's single sequential stream, so results are bit-identical to the
	// historical per-instance loop.
	rng := sim.Stream(b.Seed, hashName(cfg.Name))
	sc := newRunScratch(n)
	defer sc.release()
	ib := &sc.batch
	fullDeg := b.Degree
	lastDeg := b.Functions - (n-1)*b.Degree
	var fullBase float64
	if n > 1 {
		fullBase = interfere.ExecSeconds(b.Demand, cfg.Shape, fullDeg)
		if fullBase > cfg.MaxExecSec {
			return nil, fmt.Errorf("%w: degree %d needs %.1fs > %.0fs on %s",
				ErrExecLimit, fullDeg, fullBase, cfg.MaxExecSec, cfg.Name)
		}
	}
	lastBase := fullBase
	if lastDeg != fullDeg || n == 1 {
		lastBase = interfere.ExecSeconds(b.Demand, cfg.Shape, lastDeg)
		if lastBase > cfg.MaxExecSec {
			return nil, fmt.Errorf("%w: degree %d needs %.1fs > %.0fs on %s",
				ErrExecLimit, lastDeg, lastBase, cfg.MaxExecSec, cfg.Name)
		}
	}
	for i := 0; i < n; i++ {
		base, d := fullBase, fullDeg
		if i == n-1 {
			base, d = lastBase, lastDeg
		}
		ib.execs[i] = base * rng.Jitter(cfg.JitterRel)
		ib.degree[i] = int32(d)
		if i < b.Warm {
			ib.flags[i] |= flagWarm
		}
	}

	res, err := runCP(cfg, b, sc, rng)
	if err != nil {
		return nil, err
	}
	// All instances share one demand, so billing reuses a single group
	// descriptor instead of allocating one per instance.
	group := []demandGroup{{d: b.Demand}}
	res.bill(func(i int) []demandGroup {
		group[0].n = res.Timelines[i].Degree
		return group
	})
	return res, nil
}

// demandGroup is a set of identical functions co-resident in one instance;
// billing treats same-demand functions jointly so shared-input and shuffle
// locality apply within the group.
type demandGroup struct {
	d interfere.Demand
	n int
}

// podState tracks one image pod's shipping status during the control-plane
// race.
type podState struct {
	shipped   bool
	shippedAt float64
	waiting   []int
}

// runScratch pools the per-burst working state that never escapes into the
// Result — the struct-of-arrays instance batch, pod bookkeeping, the event
// engine, and the typed-event dispatcher — so burst-heavy paths (probe
// fan-outs, sweeps) stop paying an allocation per array per burst.
// Everything handed out is fully reinitialized here; nothing downstream may
// retain a reference past release.
type runScratch struct {
	batch instanceBatch
	pods  []podState
	eng   *sim.Engine
	cp    controlPlane
}

var runScratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// newRunScratch returns a scratch whose batch is sized and zeroed for n
// instances.
func newRunScratch(n int) *runScratch {
	sc := runScratchPool.Get().(*runScratch)
	sc.batch.reset(n)
	return sc
}

// podStates returns the scratch's pod array sized and reset for n pods.
func (sc *runScratch) podStates(n int) []podState {
	if cap(sc.pods) < n {
		sc.pods = make([]podState, n)
	}
	sc.pods = sc.pods[:n]
	for i := range sc.pods {
		sc.pods[i].shipped = false
		sc.pods[i].shippedAt = 0
		sc.pods[i].waiting = sc.pods[i].waiting[:0]
	}
	return sc.pods
}

func (sc *runScratch) release() { runScratchPool.Put(sc) }

// useReferenceEngine routes every burst simulation through the retained
// container/heap event-queue oracle instead of the production calendar
// wheel. It exists for the platform-level differential tests and
// benchmarks, which must run identical bursts on both engines; production
// never flips it.
var useReferenceEngine = false

// engine returns the scratch's pooled event engine, reset to time zero. The
// engine is rebuilt only when the requested implementation changed since
// the scratch's last run; dispatch order depends solely on (time, seq), so
// a reused engine is observationally identical to a fresh one.
func (sc *runScratch) engine() *sim.Engine {
	if sc.eng == nil || sc.eng.IsReference() != useReferenceEngine {
		if useReferenceEngine {
			sc.eng = sim.NewReferenceEngine()
		} else {
			sc.eng = sim.NewEngine()
		}
		return sc.eng
	}
	sc.eng.Reset()
	return sc.eng
}

// runCP is the control-plane entry point behind Run and RunMixed. It is a
// variable so the typed-vs-closure differential tests can swap in the
// frozen closure oracle (burst_closure_test.go) and require byte-identical
// Results and traces; production always runs the typed dispatcher.
var runCP = runControlPlane

// bill computes the burst's expense: compute GB·seconds, per-request fees,
// and storage traffic (with the packing-locality savings on shuffle and
// shared input described in interfere.Demand). groupsOf describes instance
// i's resident functions as same-demand groups.
func (r *Result) bill(groupsOf func(i int) []demandGroup) {
	cfg := r.Config
	meter, err := storage.NewMeter(cfg.Storage, cfg.StorageGBps)
	if err != nil {
		panic(err) // Config.Validate guarantees positive bandwidth
	}
	memGB := cfg.MemoryGB()
	for _, t := range r.Timelines {
		// Failed attempts and hedge duplicates bill their partial GB·seconds
		// — failure visibly raises expense — and every re-invocation or
		// speculative launch pays the per-request fee. Storage traffic is
		// metered once per instance (only the winning attempt's results
		// land in the store).
		r.ComputeUSD += (t.ExecSeconds() + t.FailedSec + t.HedgeExtraSec) * memGB * cfg.GBSecondUSD
		r.WastedUSD += t.wastedSec() * memGB * cfg.GBSecondUSD
		launches := 1 + t.Retries + t.Crashes + t.Timeouts
		if t.Hedged {
			launches++
		}
		r.RequestUSD += cfg.PerRequestUSD * float64(launches)
		for _, g := range groupsOf(t.Index) {
			billGroup(meter, g.d, g.n)
		}
	}
	r.StorageUSD = meter.CostUSD()
}

// billGroup meters the storage traffic of n same-demand functions resident
// in one instance.
func billGroup(meter *storage.Meter, d interfere.Demand, n int) {
	// Input fetches: one per function, or one per instance group when all
	// functions of the application read the same object.
	if d.SharedInput {
		meter.RecordGet(d.InputMB)
	} else {
		for k := 0; k < n; k++ {
			meter.RecordGet(d.InputMB)
		}
	}
	// Shuffle: with neighbor partners, (n−1)/n of the group's n·OutputMB·SF
	// shuffle traffic is local, leaving OutputMB·SF remote per group — so
	// total remote shuffle shrinks by 1/n relative to no packing.
	if d.ShuffleFraction > 0 {
		remote := d.OutputMB * d.ShuffleFraction
		meter.RecordPut(remote)
		meter.RecordGet(remote)
	}
	// Final (non-shuffle) output always lands in the store.
	for k := 0; k < n; k++ {
		meter.RecordPut(d.OutputMB * (1 - d.ShuffleFraction))
	}
}

// hashName gives each platform its own jitter stream so cross-platform
// comparisons are not artificially correlated.
func hashName(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// --- Result metrics (the paper's figures of merit, Sec. 3) ---

// ScalingTime is the time between invocation and the start of the last
// instance (equivalently: first-to-last start spread plus the first
// instance's provisioning delay).
func (r *Result) ScalingTime() float64 {
	var maxStart float64
	for _, t := range r.Timelines {
		if t.Start > maxStart {
			maxStart = t.Start
		}
	}
	return maxStart
}

// firstStart is the provisioning delay of the first instance to start.
func (r *Result) firstStart() float64 {
	first := math.Inf(1)
	for _, t := range r.Timelines {
		if t.Start < first {
			first = t.Start
		}
	}
	return first
}

// TotalServiceTime is the time between the start of the first instance and
// the end of the last one ("total service time" in the paper).
func (r *Result) TotalServiceTime() float64 {
	var maxEnd float64
	for _, t := range r.Timelines {
		if t.End > maxEnd {
			maxEnd = t.End
		}
	}
	return maxEnd - r.firstStart()
}

// ServiceTimeAtQuantile is the time until the first q% of instances have
// finished, measured from the first start (q=95 is the paper's "tail",
// q=50 its "median" service time).
func (r *Result) ServiceTimeAtQuantile(q float64) float64 {
	return r.ServiceTimeAtQuantiles(q)[0]
}

// ServiceTimeAtQuantiles answers several service-time quantiles from one
// gather-and-sort of the instance end times — callers reporting tail and
// median together pay a single sort instead of one per quantile.
func (r *Result) ServiceTimeAtQuantiles(qs ...float64) []float64 {
	ends := make([]float64, len(r.Timelines))
	for i, t := range r.Timelines {
		ends[i] = t.End
	}
	sort.Float64s(ends)
	first := r.firstStart()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = stats.QuantileSorted(ends, q) - first
	}
	return out
}

// FunctionSeconds is the summed execution time across all instances — the
// "function hours" resource-accounting metric of paper Fig. 12 (×3600).
func (r *Result) FunctionSeconds() float64 {
	var s float64
	for _, t := range r.Timelines {
		s += t.ExecSeconds()
	}
	return s
}

// MeanExecSeconds is the average per-instance execution time.
func (r *Result) MeanExecSeconds() float64 {
	if len(r.Timelines) == 0 {
		return 0
	}
	return r.FunctionSeconds() / float64(len(r.Timelines))
}

// StageSpans reports, for each control-plane stage, the largest span any
// instance of the burst experienced in it (queue wait plus service):
// scheduling (invocation → placement), image build, and shipping. Unlike
// StageBreakdown these are per-stage maxima, so they expose each stage's
// contention growth with concurrency even when a single stage dominates
// the last instance's critical path (paper Fig. 2).
func (r *Result) StageSpans() (sched, build, ship float64) {
	for _, t := range r.Timelines {
		if t.SchedDone > sched {
			sched = t.SchedDone
		}
		if b := t.BuildDone - t.SchedDone; b > build {
			build = b
		}
		if s := t.ShipDone - t.BuildDone; s > ship {
			ship = s
		}
	}
	return sched, build, ship
}

// StageBreakdown decomposes the scaling time along the critical path of the
// last instance to start: time in scheduling, image build, shipping, and
// boot. The four components sum to ScalingTime (paper Fig. 2).
func (r *Result) StageBreakdown() (sched, build, ship, boot float64) {
	var last Timeline
	for _, t := range r.Timelines {
		if t.Start >= last.Start {
			last = t
		}
	}
	return last.SchedDone,
		last.BuildDone - last.SchedDone,
		last.ShipDone - last.BuildDone,
		last.Start - last.ShipDone
}
