// Package platform simulates commercial serverless control planes (AWS
// Lambda, Google Cloud Functions, Microsoft Azure Functions) at the level
// the paper's measurements resolve them.
//
// A function invocation burst flows through three queued resources, matching
// the paper's root-cause analysis of scaling time (Sec. 1, Fig. 2):
//
//  1. the *scheduler*, whose placement search slows down as the datacenter
//     fills (per-placement cost grows with instances already placed — this
//     is what makes scaling time quadratic in concurrency);
//  2. the *image server*, which builds containers/microVMs by downloading
//     and installing the runtime and dependencies with finite parallelism;
//  3. the *shipping* path, which moves built images to their hosts over a
//     shared NIC.
//
// Scaling behaviour therefore *emerges* from contention; ProPack (which
// never sees these constants) has to rediscover it by polynomial
// regression, exactly as it does against the real platforms.
package platform

import (
	"fmt"

	"repro/internal/interfere"
	"repro/internal/resilience"
	"repro/internal/storage"
)

// Config holds every constant of one simulated platform. Use a preset
// (AWSLambda, GoogleCloudFunctions, AzureFunctions) and override fields as
// needed.
type Config struct {
	Name string

	// Shape describes one function instance's execution resources.
	Shape interfere.Shape

	// Scheduler: placement of instance k costs
	// SchedBaseSec + SchedPerBusySec·(instances already placed).
	SchedBaseSec    float64
	SchedPerBusySec float64
	SchedServers    int

	// Image server: each cold instance needs one build on one of
	// BuildServers parallel builders; the k-th build costs
	// BuildSec + BuildGrowthSec·k (image registries and dependency caches
	// slow down as the burst floods them).
	BuildSec       float64
	BuildGrowthSec float64
	BuildServers   int

	// Shipping: each built image occupies the NIC for
	// ShipSec + ShipGrowthSec·(images already shipped) on one of
	// ShipServers channels.
	ShipSec       float64
	ShipGrowthSec float64
	ShipServers   int

	// BootSec is the microVM/container boot time at the host.
	BootSec float64

	// WarmStartSec replaces build+ship+boot for a reused (warm) instance.
	WarmStartSec float64

	// PodSize groups instances into pods that share one build+ship (FuncX
	// runs workers inside Kubernetes pods). 0 or 1 means no pods.
	PodSize int

	// Billing.
	GBSecondUSD   float64 // compute price per GB·second
	PerRequestUSD float64 // per-invocation fee
	Storage       storage.Pricing
	StorageGBps   float64 // per-instance transfer bandwidth to the store

	// JitterRel is the relative std-dev of execution-time noise.
	JitterRel float64

	// MaxExecSec is the platform's execution-time limit (900 s on Lambda);
	// an instance whose execution would exceed it fails the burst.
	MaxExecSec float64

	// ConcurrencyLimit is the account-level cap on simultaneously running
	// instances (AWS accounts default to 1000 concurrent executions;
	// the paper's 5000-way experiments require a raised limit). Invocations
	// beyond the limit are throttled: they wait for a running instance to
	// finish before entering the scheduler. 0 means unlimited. Packing
	// sidesteps throttling by shrinking the instance count — an additional
	// benefit beyond the paper's scaling-time argument.
	ConcurrencyLimit int

	// StartFailureProb is the probability that a cold instance fails to
	// come up (image pull error, placement race) and must be re-submitted
	// to the scheduler after RetryDelaySec. Retried instances lengthen the
	// scaling tail — a real-cloud effect the failure-injection tests
	// exercise. 0 disables failures.
	StartFailureProb float64
	// RetryDelaySec is the back-off before a failed start re-enters the
	// scheduler queue.
	RetryDelaySec float64
	// MaxStartRetries bounds re-submissions per instance; an instance that
	// exhausts them fails the whole burst. 0 means the default (3).
	MaxStartRetries int

	// CrashRate injects mid-execution instance crashes, in crashes per
	// instance-second: an attempt that runs for t seconds survives with
	// probability exp(−CrashRate·t). A crash loses the work of every
	// function packed in the instance; the partial attempt is billed
	// (compute + request fee) and the instance re-enters the scheduler via
	// Retry. 0 disables crashes.
	CrashRate float64
	// StragglerProb is the per-attempt probability that execution runs
	// StragglerFactor× slower (degraded host, noisy neighbour).
	StragglerProb float64
	// StragglerFactor is the slowdown multiplier of straggling attempts;
	// must be ≥ 1 when StragglerProb > 0.
	StragglerFactor float64
	// ExecTimeoutSec kills attempts that execute longer than this; the
	// timed-out attempt is billed and retried like a crash. 0 disables the
	// timeout (MaxExecSec still rejects over-long bursts up front).
	ExecTimeoutSec float64
	// Retry is the backoff policy for crashed and timed-out attempts and,
	// when set, for failed cold starts too. The zero value preserves the
	// legacy behaviour: fixed RetryDelaySec with the MaxStartRetries
	// budget.
	Retry resilience.Backoff
	// Hedge launches one speculative duplicate for attempts still running
	// past the fleet's Hedge.Quantile-th percentile execution duration;
	// the first finisher wins and the loser's compute is billed as waste.
	// The zero value disables hedging.
	Hedge resilience.Hedge
}

// Validate reports an error for configurations the simulator cannot run.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("platform: empty name")
	}
	if err := c.Shape.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", c.Name, err)
	}
	switch {
	case c.SchedBaseSec < 0 || c.SchedPerBusySec < 0 || c.BuildSec < 0 ||
		c.BuildGrowthSec < 0 || c.ShipSec < 0 || c.ShipGrowthSec < 0 ||
		c.BootSec < 0 || c.WarmStartSec < 0:
		return fmt.Errorf("platform %s: negative stage time", c.Name)
	case c.SchedServers < 1 || c.BuildServers < 1 || c.ShipServers < 1:
		return fmt.Errorf("platform %s: stage parallelism must be ≥1", c.Name)
	case c.PodSize < 0:
		return fmt.Errorf("platform %s: negative pod size", c.Name)
	case c.GBSecondUSD < 0 || c.PerRequestUSD < 0:
		return fmt.Errorf("platform %s: negative price", c.Name)
	case c.StorageGBps <= 0:
		return fmt.Errorf("platform %s: non-positive storage bandwidth", c.Name)
	case c.JitterRel < 0 || c.JitterRel > 0.2:
		return fmt.Errorf("platform %s: jitter %g outside [0, 0.2]", c.Name, c.JitterRel)
	case c.MaxExecSec <= 0:
		return fmt.Errorf("platform %s: non-positive execution limit", c.Name)
	case c.ConcurrencyLimit < 0:
		return fmt.Errorf("platform %s: negative concurrency limit", c.Name)
	case c.StartFailureProb < 0 || c.StartFailureProb >= 1:
		return fmt.Errorf("platform %s: start-failure probability %g outside [0,1)", c.Name, c.StartFailureProb)
	case c.RetryDelaySec < 0 || c.MaxStartRetries < 0:
		return fmt.Errorf("platform %s: negative retry parameters", c.Name)
	case c.CrashRate < 0:
		return fmt.Errorf("platform %s: negative crash rate %g", c.Name, c.CrashRate)
	case c.StragglerProb < 0 || c.StragglerProb >= 1:
		return fmt.Errorf("platform %s: straggler probability %g outside [0,1)", c.Name, c.StragglerProb)
	case c.StragglerProb > 0 && c.StragglerFactor < 1:
		return fmt.Errorf("platform %s: straggler factor %g < 1", c.Name, c.StragglerFactor)
	case c.ExecTimeoutSec < 0:
		return fmt.Errorf("platform %s: negative execution timeout %g", c.Name, c.ExecTimeoutSec)
	}
	if err := c.Retry.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", c.Name, err)
	}
	if err := c.Hedge.Validate(); err != nil {
		return fmt.Errorf("platform %s: %w", c.Name, err)
	}
	return nil
}

// retryPolicy is the effective backoff policy for retried attempts: the
// configured one, or the legacy fixed-delay policy when unset.
func (c Config) retryPolicy() resilience.Backoff {
	if c.Retry.IsZero() {
		return resilience.Backoff{Kind: resilience.Fixed, BaseSec: c.RetryDelaySec}
	}
	return c.Retry
}

// MemoryGB is the billed memory size of one instance.
func (c Config) MemoryGB() float64 { return c.Shape.MemoryMB / 1024 }

// lambdaMBPerVCPU is Lambda's memory-to-compute coupling: roughly one vCPU
// per 1769 MB of configured memory.
const lambdaMBPerVCPU = 1769

// WithMemory returns the configuration resized to a smaller instance
// memory, with compute resources scaled the way Lambda scales them: vCPUs
// (and with them memory bandwidth) grow proportionally with configured
// memory. The paper fixes the maximum size (10 GB → 6 vCPUs) "to achieve a
// considerable maximum packing degree"; this knob lets the sizing ablation
// test that choice. mb must be positive and at most the preset's size.
func (c Config) WithMemory(mb float64) (Config, error) {
	if mb <= 0 {
		return Config{}, fmt.Errorf("platform %s: non-positive memory %g", c.Name, mb)
	}
	if mb > c.Shape.MemoryMB {
		return Config{}, fmt.Errorf("platform %s: %g MB exceeds the platform maximum %g",
			c.Name, mb, c.Shape.MemoryMB)
	}
	cores := int(mb/lambdaMBPerVCPU + 0.5)
	if cores < 1 {
		cores = 1
	}
	out := c
	out.Shape.MemBWMBps = c.Shape.MemBWMBps * float64(cores) / float64(c.Shape.Cores)
	out.Shape.Cores = cores
	out.Shape.MemoryMB = mb
	return out, nil
}

// lambdaShape is the 10 GB / 6-core Firecracker microVM the paper packs
// into. Firecracker's isolation is the best of the evaluated platforms
// (paper Fig. 18), hence IsolationFactor 1.
func lambdaShape() interfere.Shape {
	return interfere.Shape{
		Cores:           6,
		MemoryMB:        10240,
		MemBWMBps:       25600,
		ContentionRate:  0.38,
		BWWeight:        0.3,
		CrossDiscount:   0.25,
		IsolationFactor: 1.0,
	}
}

// AWSLambda returns the simulated AWS Lambda configuration, calibrated so
// that at concurrency 5000 the scaling time is ≳80% of total service time
// for a ~100 s function (paper Fig. 1) and the 10 GB GB·second price matches
// Lambda's published $1.6667e-5.
func AWSLambda() Config {
	return Config{
		Name:            "AWS Lambda",
		Shape:           lambdaShape(),
		SchedBaseSec:    0.1,
		SchedPerBusySec: 48e-6,
		SchedServers:    1,
		BuildSec:        2.0,
		BuildGrowthSec:  2.5e-3,
		BuildServers:    64,
		ShipSec:         0.06,
		ShipGrowthSec:   40e-6,
		ShipServers:     1,
		BootSec:         0.125,
		WarmStartSec:    0.050,
		GBSecondUSD:     1.6667e-5,
		PerRequestUSD:   2.0e-7,
		Storage: storage.Pricing{
			PutRequestUSD: 5e-6,
			GetRequestUSD: 4e-7,
			// AWS does not charge an S3→Lambda networking fee (paper Fig. 21).
			EgressPerGBUSD: 0,
		},
		StorageGBps: 0.080,
		JitterRel:   0.015,
		MaxExecSec:  900,
	}
}

// GoogleCloudFunctions returns the simulated Google configuration: a slower
// placement search and image pipeline than Lambda, plus a per-GB networking
// fee on function↔storage traffic.
func GoogleCloudFunctions() Config {
	c := AWSLambda()
	c.Name = "Google Cloud Functions"
	c.Shape.IsolationFactor = 1.03 // gVisor-class isolation, slightly softer
	c.SchedBaseSec = 0.12
	c.SchedPerBusySec = 55e-6
	c.BuildSec = 2.6
	c.BuildServers = 48
	c.ShipSec = 0.07
	c.BootSec = 0.4
	c.GBSecondUSD = 1.65e-5
	c.PerRequestUSD = 4.0e-7
	c.Storage.EgressPerGBUSD = 0.12
	c.MaxExecSec = 540
	return c
}

// AzureFunctions returns the simulated Microsoft Azure configuration,
// between AWS and Google on scaling behaviour, also with a networking fee.
func AzureFunctions() Config {
	c := AWSLambda()
	c.Name = "Azure Functions"
	c.Shape.IsolationFactor = 1.05
	c.SchedBaseSec = 0.11
	c.SchedPerBusySec = 50e-6
	c.BuildSec = 2.4
	c.BuildServers = 48
	c.ShipSec = 0.065
	c.BootSec = 0.5
	c.GBSecondUSD = 1.6e-5
	c.PerRequestUSD = 2.0e-7
	c.Storage.EgressPerGBUSD = 0.087
	c.MaxExecSec = 600
	return c
}

// Providers returns the three commercial platforms in the paper's order.
func Providers() []Config {
	return []Config{AWSLambda(), GoogleCloudFunctions(), AzureFunctions()}
}
