package platform

import (
	"errors"
	"math"
	"testing"

	"repro/internal/interfere"
	"repro/internal/workload"
)

func testDemand() interfere.Demand {
	return workload.Video{}.Demand()
}

func TestConfigPresetsValid(t *testing.T) {
	for _, cfg := range Providers() {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	if len(Providers()) != 3 {
		t.Fatal("expected three commercial providers")
	}
	if math.Abs(AWSLambda().MemoryGB()-10) > 1e-9 {
		t.Fatal("Lambda instance should bill 10 GB")
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.Shape.Cores = 0 },
		func(c *Config) { c.SchedBaseSec = -1 },
		func(c *Config) { c.SchedServers = 0 },
		func(c *Config) { c.BuildServers = 0 },
		func(c *Config) { c.ShipServers = 0 },
		func(c *Config) { c.PodSize = -1 },
		func(c *Config) { c.GBSecondUSD = -1 },
		func(c *Config) { c.StorageGBps = 0 },
		func(c *Config) { c.JitterRel = 0.5 },
		func(c *Config) { c.MaxExecSec = 0 },
	}
	for i, mut := range mutations {
		cfg := AWSLambda()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestBurstValidation(t *testing.T) {
	good := Burst{Demand: testDemand(), Functions: 10, Degree: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Burst{
		{Demand: testDemand(), Functions: 0, Degree: 1},
		{Demand: testDemand(), Functions: 1, Degree: 0},
		{Demand: testDemand(), Functions: 1, Degree: 1, Warm: -1},
		{Demand: interfere.Demand{}, Functions: 1, Degree: 1},
	}
	for i, b := range bads {
		if b.Validate() == nil {
			t.Fatalf("bad burst %d accepted", i)
		}
	}
}

func TestBurstInstances(t *testing.T) {
	cases := []struct{ c, p, want int }{
		{5000, 1, 5000}, {5000, 8, 625}, {100, 7, 15}, {1, 40, 1},
	}
	for _, tc := range cases {
		b := Burst{Functions: tc.c, Degree: tc.p}
		if got := b.Instances(); got != tc.want {
			t.Fatalf("Instances(C=%d, P=%d) = %d, want %d", tc.c, tc.p, got, tc.want)
		}
	}
}

func TestRunPartialLastInstance(t *testing.T) {
	// C=10, P=4 → instances of degree 4, 4, 2.
	res, err := Run(AWSLambda(), Burst{Demand: testDemand(), Functions: 10, Degree: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timelines) != 3 {
		t.Fatalf("instances %d, want 3", len(res.Timelines))
	}
	total := 0
	for _, tl := range res.Timelines {
		total += tl.Degree
	}
	if total != 10 {
		t.Fatalf("functions covered %d, want 10", total)
	}
	if res.Timelines[2].Degree != 2 {
		t.Fatalf("last instance degree %d, want 2", res.Timelines[2].Degree)
	}
}

func TestTimelineCausality(t *testing.T) {
	res, err := Run(AWSLambda(), Burst{Demand: testDemand(), Functions: 200, Degree: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tl := range res.Timelines {
		if !(tl.SchedDone > 0 && tl.SchedDone <= tl.BuildDone &&
			tl.BuildDone <= tl.ShipDone && tl.ShipDone < tl.Start && tl.Start < tl.End) {
			t.Fatalf("causality violated: %+v", tl)
		}
	}
}

func TestScalingTimeGrowsSuperlinearly(t *testing.T) {
	cfg := AWSLambda()
	scale := func(c int) float64 {
		res, err := Run(cfg, Burst{Demand: testDemand(), Functions: c, Degree: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.ScalingTime()
	}
	s1000, s2000, s4000 := scale(1000), scale(2000), scale(4000)
	if !(s1000 < s2000 && s2000 < s4000) {
		t.Fatalf("scaling not increasing: %g %g %g", s1000, s2000, s4000)
	}
	// Superlinear: doubling C should more than double scaling time at the
	// quadratic-dominated end.
	if s4000 < 2.5*s2000 {
		t.Fatalf("scaling not superlinear: 2000→%g, 4000→%g", s2000, s4000)
	}
}

// TestScalingTimeAppIndependent verifies the paper's key enabling insight
// (Fig. 5b): the scaling time depends only on the number of concurrent
// instances, not on which application they run.
func TestScalingTimeAppIndependent(t *testing.T) {
	cfg := AWSLambda()
	var ref float64
	for i, w := range workload.All() {
		res, err := Run(cfg, Burst{Demand: w.Demand(), Functions: 800, Degree: 1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		s := res.ScalingTime()
		if i == 0 {
			ref = s
			continue
		}
		if math.Abs(s-ref) > 1e-9 {
			t.Fatalf("%s scaling %g differs from reference %g", w.Name(), s, ref)
		}
	}
}

// TestExecTimeFlatInConcurrency mirrors paper Fig. 5a: per-instance
// execution time must not drift with the concurrency level (<5%).
func TestExecTimeFlatInConcurrency(t *testing.T) {
	cfg := AWSLambda()
	exec := func(c int) float64 {
		res, err := Run(cfg, Burst{Demand: testDemand(), Functions: c, Degree: 1, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanExecSeconds()
	}
	e500, e5000 := exec(500), exec(5000)
	if math.Abs(e500-e5000)/e500 > 0.05 {
		t.Fatalf("execution time drifted with concurrency: %g vs %g", e500, e5000)
	}
}

func TestPackingReducesScalingTime(t *testing.T) {
	cfg := AWSLambda()
	run := func(p int) *Result {
		res, err := Run(cfg, Burst{Demand: testDemand(), Functions: 2000, Degree: p, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, packed := run(1), run(8)
	if packed.ScalingTime() >= base.ScalingTime() {
		t.Fatalf("packing did not reduce scaling: %g vs %g", packed.ScalingTime(), base.ScalingTime())
	}
	if packed.MeanExecSeconds() <= base.MeanExecSeconds() {
		t.Fatalf("packing should increase per-instance execution: %g vs %g",
			packed.MeanExecSeconds(), base.MeanExecSeconds())
	}
	if packed.ExpenseUSD() >= base.ExpenseUSD() {
		t.Fatalf("packing at moderate degree should cost less: $%g vs $%g",
			packed.ExpenseUSD(), base.ExpenseUSD())
	}
}

func TestWarmInstancesSkipColdPath(t *testing.T) {
	cfg := AWSLambda()
	res, err := Run(cfg, Burst{Demand: testDemand(), Functions: 50, Degree: 1, Warm: 50, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(cfg, Burst{Demand: testDemand(), Functions: 50, Degree: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScalingTime() >= cold.ScalingTime() {
		t.Fatalf("warm burst not faster: %g vs %g", res.ScalingTime(), cold.ScalingTime())
	}
	for _, tl := range res.Timelines {
		if !tl.Warm {
			t.Fatal("instance not marked warm")
		}
		if tl.BuildDone != tl.SchedDone || tl.ShipDone != tl.SchedDone {
			t.Fatalf("warm instance went through build/ship: %+v", tl)
		}
	}
}

func TestPodsShareBuilds(t *testing.T) {
	cfg := AWSLambda()
	cfg.PodSize = 8
	res, err := Run(cfg, Burst{Demand: testDemand(), Functions: 64, Degree: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	noPods := AWSLambda()
	ref, err := Run(noPods, Burst{Demand: testDemand(), Functions: 64, Degree: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScalingTime() >= ref.ScalingTime() {
		t.Fatalf("pods should start faster: %g vs %g", res.ScalingTime(), ref.ScalingTime())
	}
	// Pod members share the leader's ship completion.
	for p := 0; p < 8; p++ {
		ship := res.Timelines[p*8].ShipDone
		for i := p * 8; i < p*8+8; i++ {
			if res.Timelines[i].ShipDone != ship {
				t.Fatalf("pod %d member %d has ShipDone %g, leader %g",
					p, i, res.Timelines[i].ShipDone, ship)
			}
		}
	}
}

func TestExecLimitEnforced(t *testing.T) {
	cfg := AWSLambda()
	cfg.MaxExecSec = 50
	_, err := Run(cfg, Burst{Demand: testDemand(), Functions: 10, Degree: 1, Seed: 1})
	if !errors.Is(err, ErrExecLimit) {
		t.Fatalf("expected ErrExecLimit, got %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := AWSLambda()
	b := Burst{Demand: testDemand(), Functions: 300, Degree: 4, Seed: 11}
	a, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalServiceTime() != c.TotalServiceTime() || a.ExpenseUSD() != c.ExpenseUSD() {
		t.Fatal("identical bursts produced different results")
	}
}

func TestServiceQuantiles(t *testing.T) {
	res, err := Run(AWSLambda(), Burst{Demand: testDemand(), Functions: 1000, Degree: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	med := res.ServiceTimeAtQuantile(50)
	tail := res.ServiceTimeAtQuantile(95)
	total := res.TotalServiceTime()
	if !(med <= tail && tail <= total) {
		t.Fatalf("quantiles not ordered: med=%g tail=%g total=%g", med, tail, total)
	}
	if med <= 0 {
		t.Fatal("non-positive median service time")
	}
}

func TestStageBreakdownSumsToScaling(t *testing.T) {
	res, err := Run(AWSLambda(), Burst{Demand: testDemand(), Functions: 500, Degree: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	sched, build, ship, boot := res.StageBreakdown()
	sum := sched + build + ship + boot
	if math.Abs(sum-res.ScalingTime()) > 1e-6 {
		t.Fatalf("breakdown %g+%g+%g+%g = %g ≠ scaling %g",
			sched, build, ship, boot, sum, res.ScalingTime())
	}
	for i, v := range []float64{sched, build, ship, boot} {
		if v < 0 {
			t.Fatalf("negative component %d: %g", i, v)
		}
	}
}

func TestSharedInputBilledOncePerInstance(t *testing.T) {
	shared := testDemand() // Video has SharedInput
	unshared := shared
	unshared.SharedInput = false
	cfg := AWSLambda()
	cfg.Storage.GetRequestUSD = 1 // make gets dominate the bill
	b := Burst{Demand: shared, Functions: 100, Degree: 10, Seed: 1}
	rs, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	b.Demand = unshared
	ru, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if rs.StorageUSD >= ru.StorageUSD {
		t.Fatalf("shared input should cut get fees: $%g vs $%g", rs.StorageUSD, ru.StorageUSD)
	}
}

func TestEgressFeeShrinksWithPacking(t *testing.T) {
	cfg := GoogleCloudFunctions() // has a per-GB networking fee
	d := workload.Sort{}.Demand() // shuffle-heavy
	base, err := Run(cfg, Burst{Demand: d, Functions: 300, Degree: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Run(cfg, Burst{Demand: d, Functions: 300, Degree: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if packed.StorageUSD >= base.StorageUSD {
		t.Fatalf("packing should shrink storage+egress cost: $%g vs $%g",
			packed.StorageUSD, base.StorageUSD)
	}
}

func TestWithMemoryScalesResources(t *testing.T) {
	base := AWSLambda()
	small, err := base.WithMemory(3584)
	if err != nil {
		t.Fatal(err)
	}
	if small.Shape.Cores != 2 {
		t.Fatalf("3584 MB should get 2 vCPUs, got %d", small.Shape.Cores)
	}
	if small.Shape.MemoryMB != 3584 {
		t.Fatalf("memory %g", small.Shape.MemoryMB)
	}
	wantBW := base.Shape.MemBWMBps * 2 / 6
	if math.Abs(small.Shape.MemBWMBps-wantBW) > 1e-9 {
		t.Fatalf("bandwidth %g, want %g", small.Shape.MemBWMBps, wantBW)
	}
	// Billing follows the configured memory.
	if math.Abs(small.MemoryGB()-3.5) > 1e-9 {
		t.Fatalf("billed memory %g GB", small.MemoryGB())
	}
	// Tiny sizes floor at one vCPU.
	tiny, err := base.WithMemory(512)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Shape.Cores != 1 {
		t.Fatalf("512 MB should floor at 1 vCPU, got %d", tiny.Shape.Cores)
	}
	if _, err := base.WithMemory(0); err == nil {
		t.Fatal("zero memory accepted")
	}
	if _, err := base.WithMemory(20480); err == nil {
		t.Fatal("above-maximum memory accepted")
	}
}

// TestMaxMemoryWinsAtHighConcurrency confirms the paper's Sec. 3 choice:
// at high concurrency the 10 GB instance (deepest packing, fewest
// instances) beats smaller sizes on service time.
func TestMaxMemoryWinsAtHighConcurrency(t *testing.T) {
	d := workload.Video{}.Demand()
	const c = 3000
	service := map[float64]float64{}
	for _, mb := range []float64{3584, 10240} {
		cfg, err := AWSLambda().WithMemory(mb)
		if err != nil {
			t.Fatal(err)
		}
		// Run at each size's own memory-bound max degree.
		deg := cfg.Shape.MaxDegree(d)
		if deg < 1 {
			t.Fatalf("%g MB cannot host the function", mb)
		}
		res, err := Run(cfg, Burst{Demand: d, Functions: c, Degree: deg, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		service[mb] = res.TotalServiceTime()
	}
	if service[10240] >= service[3584] {
		t.Fatalf("10 GB should win at C=%d: %g vs %g", c, service[10240], service[3584])
	}
}
