package platform

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/workload"
)

// BenchmarkSim is the event-engine scaling curve recorded in BENCH_SIM.json:
// one unpacked burst of C functions (C instances, the event-heaviest shape
// per function) at C = 10³ … 10⁶, on the production wheel (typed dispatch),
// the reference heap, the retained closure control plane, and the 8-cell
// sharded path. Besides ns/op and the standard alloc columns, each
// sub-benchmark reports allocs/instance and bytes/instance — the steady-state
// per-instance footprint the typed dispatcher is sized by. CI runs it at
// -benchtime=1x as a smoke so the million-instance point cannot rot; the
// recorded curve comes from dedicated -count runs.
func BenchmarkSim(b *testing.B) {
	cs := []int{1_000, 10_000, 100_000, 1_000_000}
	burstAt := func(c int) Burst {
		return Burst{Demand: workload.Video{}.Demand(), Functions: c, Degree: 1, Seed: 42}
	}
	cfg := AWSLambda()

	// loop runs the burst b.N times and reports per-instance allocation
	// metrics from the runtime's malloc counters (the testing package only
	// exposes per-op figures).
	loop := func(b *testing.B, instances int, run func() error) {
		b.ReportAllocs()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				b.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		den := float64(b.N) * float64(instances)
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/den, "allocs/instance")
		b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/den, "bytes/instance")
	}

	for _, c := range cs {
		b.Run(fmt.Sprintf("wheel/C=%d", c), func(b *testing.B) {
			bb := burstAt(c)
			loop(b, c, func() error { _, err := Run(cfg, bb); return err })
		})
	}
	for _, c := range cs {
		b.Run(fmt.Sprintf("heap/C=%d", c), func(b *testing.B) {
			bb := burstAt(c)
			useReferenceEngine = true
			defer func() { useReferenceEngine = false }()
			loop(b, c, func() error { _, err := Run(cfg, bb); return err })
		})
	}
	for _, c := range cs {
		b.Run(fmt.Sprintf("closure/C=%d", c), func(b *testing.B) {
			bb := burstAt(c)
			runCP = runControlPlaneClosure
			defer func() { runCP = runControlPlane }()
			loop(b, c, func() error { _, err := Run(cfg, bb); return err })
		})
	}
	b.Run("sharded/C=1000000/shards=8", func(b *testing.B) {
		bb := burstAt(1_000_000)
		loop(b, 1_000_000, func() error {
			_, err := RunSharded(cfg, bb, Sharding{Shards: 8})
			return err
		})
	})
}
