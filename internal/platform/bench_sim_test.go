package platform

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkSim is the event-engine scaling curve recorded in BENCH_SIM.json:
// one unpacked burst of C functions (C instances, the event-heaviest shape
// per function) at C = 10³ … 10⁶, on the production wheel, the reference
// heap, and the 8-cell sharded path. CI runs it at -benchtime=1x as a smoke
// so the million-instance point cannot rot; the recorded curve comes from
// dedicated -count runs.
func BenchmarkSim(b *testing.B) {
	cs := []int{1_000, 10_000, 100_000, 1_000_000}
	burstAt := func(c int) Burst {
		return Burst{Demand: workload.Video{}.Demand(), Functions: c, Degree: 1, Seed: 42}
	}
	cfg := AWSLambda()

	for _, c := range cs {
		b.Run(fmt.Sprintf("wheel/C=%d", c), func(b *testing.B) {
			bb := burstAt(c)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, c := range cs {
		b.Run(fmt.Sprintf("heap/C=%d", c), func(b *testing.B) {
			bb := burstAt(c)
			b.ReportAllocs()
			newEngine = sim.NewReferenceEngine
			defer func() { newEngine = sim.NewEngine }()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sharded/C=1000000/shards=8", func(b *testing.B) {
		bb := burstAt(1_000_000)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunSharded(cfg, bb, Sharding{Shards: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
