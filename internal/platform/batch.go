package platform

// instanceBatch holds a control-plane run's per-instance hot state in
// struct-of-arrays layout: every lifecycle milestone, fault counter, and
// flag lives in its own densely packed array rather than as a field of a
// ~160-byte Timeline struct. The control-plane closures touch one or two
// fields per event, so the batch keeps each cache line full of the field
// being worked on instead of its neighbours' padding; at million-instance
// bursts the difference is the working set fitting in cache at all. The
// public Timeline view is materialized once, after the run, with values
// identical to what the old array-of-structs code produced — the engine
// differential suite holds both layouts to the same bytes.
//
// The batch lives inside the pooled runScratch, so burst-heavy paths (probe
// fan-outs, planner sweeps) reuse the arrays instead of reallocating
// per burst.
type instanceBatch struct {
	n int

	// Fixed per-instance inputs, set before the run.
	execs  []float64 // planned execution duration (jitter applied)
	degree []int32   // functions resident in the instance
	flags  []uint8   // warm / hedged / hedge-won bits

	// Lifecycle milestones, written as the control plane progresses.
	schedDone []float64
	buildDone []float64
	shipDone  []float64
	start     []float64
	end       []float64

	// Fault-injection and hedging state.
	retries       []int32
	crashes       []int32
	timeouts      []int32
	straggled     []int32
	failedSec     []float64
	hedgeExtraSec []float64
	prevDelay     []float64 // decorrelated-jitter backoff memory
	// pendDur is the crash/timeout offset scheduled against the in-flight
	// attempt: the typed dispatch handler reads it back instead of a closure
	// capturing the sampled value (recomputing it from the event timestamp
	// would round differently).
	pendDur []float64
}

const (
	flagWarm = uint8(1) << iota
	flagHedged
	flagHedgeWon
)

// reset sizes every array for n instances and zeroes them.
func (ib *instanceBatch) reset(n int) {
	ib.n = n
	ib.execs = grownZeroed(ib.execs, n)
	ib.degree = grownZeroed(ib.degree, n)
	ib.flags = grownZeroed(ib.flags, n)
	ib.schedDone = grownZeroed(ib.schedDone, n)
	ib.buildDone = grownZeroed(ib.buildDone, n)
	ib.shipDone = grownZeroed(ib.shipDone, n)
	ib.start = grownZeroed(ib.start, n)
	ib.end = grownZeroed(ib.end, n)
	ib.retries = grownZeroed(ib.retries, n)
	ib.crashes = grownZeroed(ib.crashes, n)
	ib.timeouts = grownZeroed(ib.timeouts, n)
	ib.straggled = grownZeroed(ib.straggled, n)
	ib.failedSec = grownZeroed(ib.failedSec, n)
	ib.hedgeExtraSec = grownZeroed(ib.hedgeExtraSec, n)
	ib.prevDelay = grownZeroed(ib.prevDelay, n)
	ib.pendDur = grownZeroed(ib.pendDur, n)
}

func (ib *instanceBatch) warm(i int) bool { return ib.flags[i]&flagWarm != 0 }

// allWarmBefore reports whether every instance in [lo, i) is warm, which
// promotes i to pod leader (warm instances never build).
func (ib *instanceBatch) allWarmBefore(lo, i int) bool {
	for j := lo; j < i; j++ {
		if ib.flags[j]&flagWarm == 0 {
			return false
		}
	}
	return true
}

// materialize converts the batch into the public per-instance Timeline view.
// The slice is freshly allocated: it escapes into the Result while the batch
// returns to the pool.
func (ib *instanceBatch) materialize() []Timeline {
	ts := make([]Timeline, ib.n)
	for i := range ts {
		ts[i] = Timeline{
			Index:         i,
			Degree:        int(ib.degree[i]),
			Warm:          ib.flags[i]&flagWarm != 0,
			Retries:       int(ib.retries[i]),
			SchedDone:     ib.schedDone[i],
			BuildDone:     ib.buildDone[i],
			ShipDone:      ib.shipDone[i],
			Start:         ib.start[i],
			End:           ib.end[i],
			Crashes:       int(ib.crashes[i]),
			Timeouts:      int(ib.timeouts[i]),
			Straggled:     int(ib.straggled[i]),
			FailedSec:     ib.failedSec[i],
			Hedged:        ib.flags[i]&flagHedged != 0,
			HedgeWon:      ib.flags[i]&flagHedgeWon != 0,
			HedgeExtraSec: ib.hedgeExtraSec[i],
		}
	}
	return ts
}

// grownZeroed resizes s to length n, zeroing every element.
func grownZeroed[T int32 | uint8 | float64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}
