package platform

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/interfere"
	"repro/internal/obs"
	"repro/internal/workload"
)

// withReferenceEngine runs fn with every burst simulated on the retained
// heap engine (the differential oracle) instead of the production wheel.
func withReferenceEngine(fn func()) {
	useReferenceEngine = true
	defer func() { useReferenceEngine = false }()
	fn()
}

// runBoth simulates the same burst on the wheel and the heap engine and
// returns both results plus their JSONL trace bytes.
func runBoth(t *testing.T, cfg Config, b Burst) (wheel, heap *Result, wheelTrace, heapTrace []byte) {
	t.Helper()
	var wbuf, hbuf bytes.Buffer
	wb := b
	wb.Recorder = obs.NewJSONL(&wbuf)
	wheel, err := Run(cfg, wb)
	if err != nil {
		t.Fatalf("wheel run: %v", err)
	}
	hb := b
	hb.Recorder = obs.NewJSONL(&hbuf)
	withReferenceEngine(func() {
		heap, err = Run(cfg, hb)
	})
	if err != nil {
		t.Fatalf("heap run: %v", err)
	}
	return wheel, heap, wbuf.Bytes(), hbuf.Bytes()
}

// TestBurstHeapVsWheelDifferential is the platform half of the engine
// determinism proof: at randomized (C, degree, fault-rate, seed) points the
// wheel-backed simulation must reproduce the heap-backed one bit-for-bit —
// timelines, billing, fault counters, and the JSONL event trace.
func TestBurstHeapVsWheelDifferential(t *testing.T) {
	d := workload.Video{}.Demand()
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 40; trial++ {
		cfg := AWSLambda()
		c := 1 + rng.Intn(800)
		deg := 1 + rng.Intn(16)
		if rng.Intn(2) == 0 {
			cfg.CrashRate = rng.Float64() * 0.002
			cfg.StartFailureProb = rng.Float64() * 0.1
			cfg.RetryDelaySec = 0.5
			cfg.StragglerProb = rng.Float64() * 0.1
			cfg.StragglerFactor = 2
		}
		if rng.Intn(3) == 0 {
			cfg.Hedge.Quantile = 90
		}
		if rng.Intn(4) == 0 {
			cfg.ConcurrencyLimit = 1 + rng.Intn(100)
		}
		b := Burst{
			Demand:    d,
			Functions: c,
			Degree:    deg,
			Warm:      rng.Intn(5),
			Seed:      rng.Int63(),
		}
		if rng.Intn(4) == 0 {
			b.StaggerSec = rng.Float64() * 0.01
		}
		wheel, heap, wheelTrace, heapTrace := runBoth(t, cfg, b)
		normalize(wheel)
		normalize(heap)
		if !reflect.DeepEqual(wheel, heap) {
			t.Fatalf("trial %d (C=%d P=%d crash=%g seed=%d): wheel result differs from heap oracle",
				trial, c, deg, cfg.CrashRate, b.Seed)
		}
		if !bytes.Equal(wheelTrace, heapTrace) {
			t.Fatalf("trial %d (C=%d P=%d): JSONL traces differ between engines", trial, c, deg)
		}
	}
}

// TestMixedBurstHeapVsWheelDifferential extends the proof to heterogeneous
// bursts, whose bin structure exercises pods, warm prefixes, and per-bin
// interference together.
func TestMixedBurstHeapVsWheelDifferential(t *testing.T) {
	cfg := AWSLambda()
	cfg.CrashRate = 0.0004
	cfg.StragglerProb = 0.04
	cfg.StragglerFactor = 2.5
	cfg.Hedge.Quantile = 95
	light := interfere.Demand{CPUSeconds: 5, MemoryMB: 128, InputMB: 5, OutputMB: 1}
	heavy := workload.Video{}.Demand()
	var bins []Bin
	for i := 0; i < 80; i++ {
		var bn Bin
		bn.Demands = append(bn.Demands, light)
		if i%2 == 0 {
			bn.Demands = append(bn.Demands, heavy)
		}
		if i%5 == 0 {
			bn.Demands = append(bn.Demands, light, light, light)
		}
		bins = append(bins, bn)
	}
	m := MixedBurst{Bins: bins, Warm: 6, Seed: 314}

	var wbuf, hbuf bytes.Buffer
	wm := m
	wm.Recorder = obs.NewJSONL(&wbuf)
	wheel, err := RunMixed(cfg, wm)
	if err != nil {
		t.Fatal(err)
	}
	hm := m
	hm.Recorder = obs.NewJSONL(&hbuf)
	var heap *Result
	withReferenceEngine(func() {
		heap, err = RunMixed(cfg, hm)
	})
	if err != nil {
		t.Fatal(err)
	}
	normalize(wheel)
	normalize(heap)
	if !reflect.DeepEqual(wheel, heap) {
		t.Fatal("mixed burst: wheel result differs from heap oracle")
	}
	if !bytes.Equal(wbuf.Bytes(), hbuf.Bytes()) {
		t.Fatal("mixed burst: JSONL traces differ between engines")
	}
}
