package platform

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// Typed-event control plane: the closure-free rewrite of the burst
// simulation. Every lifecycle transition the closure implementation
// scheduled as a heap-allocated func() is a plain (kind, subject) word
// here, dispatched through controlPlane.Dispatch — one switch registered
// with the engine per run. Per-instance mutable state that the closures
// captured (retry counts, the sampled crash offset, hedge bookkeeping)
// lives in the pooled struct-of-arrays instanceBatch instead, so a burst
// of N instances schedules O(N) events with zero per-event allocations.
//
// Correctness is not renegotiated: the retained closure implementation
// (burst_closure_test.go) is the frozen specification, and the typed path
// is held to its exact bytes — Results and JSONL traces — by the
// differential suite, on both the wheel and the heap oracle.

// Event kinds of the burst control plane. Values are engine-local and
// meaningless outside this dispatcher; 0 is left unused so a zeroed event
// word can never masquerade as a real transition.
const (
	evAdmit       uint8 = iota + 1 // arrival at the platform (staggered bursts)
	evSchedDone                    // scheduler placement completed
	evBuildDone                    // image build completed
	evShipDone                     // image ship completed
	evBootDone                     // host boot timer fired
	evWarmDone                     // warm-start timer fired
	evBackoffDone                  // retry backoff expired: re-enter the scheduler
	evCrash                        // mid-execution crash strikes the attempt
	evTimeout                      // execution timeout kills the attempt
	evEnd                          // execution completes
)

// controlPlane is the per-run dispatcher: the engine's EventSink plus every
// piece of state the closure implementation captured in its environment. It
// lives inside the pooled runScratch, so its queues and recorder-tracking
// arrays are reused across bursts.
type controlPlane struct {
	eng *sim.Engine
	cfg Config
	ib  *instanceBatch
	rng *sim.RNG
	rec obs.Recorder

	// arrive and admitted are recorder-only tracking (they are not part of
	// Timeline): arrival at the platform and first scheduler entry, for the
	// queued/sched lifecycle spans. Untouched when rec is nil.
	arrive, admitted []float64

	sched, build, ship             sim.TypedStation
	schedSvc, buildSvc, shipSvc    func(int32) float64
	pods                           []podState
	podSize                        int
	maxRetries                     int
	retryPol                       resilience.Backoff
	hedgeThr                       float64
	limit                          int

	// Account-level throttling: at most limit instances admitted at once;
	// the rest wait FIFO (cursor-consumed, pooled) for a release.
	running     int
	throttleQ   []int32
	throttlePos int

	burstErr error
}

// Dispatch is the control plane's kind table. Station completions follow
// the three-step protocol the closure Station performed implicitly:
// Complete (counters), the lifecycle logic, then Next (start the next
// queued job) — downstream events are sequence-numbered by that order.
func (cp *controlPlane) Dispatch(kind uint8, sub int32) {
	switch kind {
	case evAdmit:
		cp.admit(sub)
	case evSchedDone:
		cp.sched.Complete(sub)
		cp.onSchedDone(sub)
		cp.sched.Next()
	case evBuildDone:
		cp.build.Complete(sub)
		cp.onBuildDone(sub)
		cp.build.Next()
	case evShipDone:
		cp.ship.Complete(sub)
		cp.onShipDone(sub)
		cp.ship.Next()
	case evBootDone:
		cp.onBootDone(sub)
	case evWarmDone:
		cp.finish(sub)
	case evBackoffDone:
		cp.submitSched(sub)
	case evCrash:
		cp.onCrash(sub)
	case evTimeout:
		cp.onTimeout(sub)
	case evEnd:
		cp.onEnd(sub)
	default:
		panic(fmt.Sprintf("platform: unknown control-plane event kind %d", kind))
	}
}

// admit requests placement for instance i, subject to account-level
// throttling: beyond ConcurrencyLimit, instances wait FIFO for a running
// one to finish.
func (cp *controlPlane) admit(i int32) {
	if cp.rec != nil {
		cp.arrive[i] = cp.eng.Now()
	}
	if cp.limit > 0 && cp.running >= cp.limit {
		cp.throttleQ = append(cp.throttleQ, i)
		return
	}
	cp.running++
	cp.submitSched(i)
}

// release frees an admission slot and admits the next throttled instance.
func (cp *controlPlane) release() {
	cp.running--
	if cp.throttlePos < len(cp.throttleQ) {
		next := cp.throttleQ[cp.throttlePos]
		cp.throttlePos++
		if cp.throttlePos == len(cp.throttleQ) {
			cp.throttleQ = cp.throttleQ[:0]
			cp.throttlePos = 0
		}
		cp.running++
		cp.submitSched(next)
	}
}

func (cp *controlPlane) submitSched(i int32) {
	if cp.rec != nil && cp.admitted[i] < 0 {
		cp.admitted[i] = cp.eng.Now()
	}
	cp.sched.Submit(i)
}

// onSchedDone places instance i: warm instances warm-start, pod followers
// wait for their leader's image, leaders enter the build queue.
func (cp *controlPlane) onSchedDone(i int32) {
	ib := cp.ib
	end := cp.eng.Now()
	ib.schedDone[i] = end
	if ib.warm(int(i)) {
		ib.buildDone[i] = end
		ib.shipDone[i] = end
		cp.eng.EmitAfter(cp.cfg.WarmStartSec, evWarmDone, i)
		return
	}
	p := int(i) / cp.podSize
	leader := p*cp.podSize == int(i) || ib.allWarmBefore(p*cp.podSize, int(i))
	if cp.pods[p].shipped {
		ib.buildDone[i] = cp.pods[p].shippedAt
		ib.shipDone[i] = cp.pods[p].shippedAt
		cp.boot(i)
		return
	}
	if !leader {
		cp.pods[p].waiting = append(cp.pods[p].waiting, int(i))
		return
	}
	cp.build.Submit(i)
}

func (cp *controlPlane) onBuildDone(i int32) {
	cp.ib.buildDone[i] = cp.eng.Now()
	cp.ship.Submit(i)
}

func (cp *controlPlane) onShipDone(i int32) {
	cp.ib.shipDone[i] = cp.eng.Now()
	cp.boot(i)
	cp.podShipped(int(i) / cp.podSize)
}

func (cp *controlPlane) boot(i int32) {
	cp.eng.EmitAfter(cp.cfg.BootSec, evBootDone, i)
}

// podShipped marks pod p's image available and boots every waiting
// follower.
func (cp *controlPlane) podShipped(p int) {
	pod := &cp.pods[p]
	pod.shipped = true
	pod.shippedAt = cp.eng.Now()
	for _, w := range pod.waiting {
		cp.ib.buildDone[w] = pod.shippedAt
		cp.ib.shipDone[w] = pod.shippedAt
		cp.boot(int32(w))
	}
	pod.waiting = pod.waiting[:0]
}

// onBootDone fires when instance i's host boot timer expires: the cold
// start either fails (back off and re-enter the scheduler, admission slot
// held) or execution begins.
func (cp *controlPlane) onBootDone(i int32) {
	if cp.cfg.StartFailureProb > 0 && cp.rng.Float64() < cp.cfg.StartFailureProb {
		ib := cp.ib
		ib.retries[i]++
		if cp.rec != nil {
			cp.rec.Event(obs.Event{Instance: int(i), Kind: obs.EventStartRetry, AtSec: cp.eng.Now()})
		}
		if !cp.retryPol.Allow(int(ib.retries[i]), cp.eng.Now(), cp.maxRetries) {
			if cp.burstErr == nil {
				cp.burstErr = fmt.Errorf("%w: instance %d after %d attempts",
					ErrStartFailed, i, ib.retries[i])
			}
			cp.release()
			return
		}
		cp.backoffThenResubmit(i, int(ib.retries[i]))
		return
	}
	cp.finish(i)
}

// backoffThenResubmit re-enters the scheduler after the retry policy's
// delay for the given retry number (the admission slot stays held).
func (cp *controlPlane) backoffThenResubmit(i int32, retry int) {
	d := cp.retryPol.Delay(retry, cp.ib.prevDelay[i], cp.rng.Float64)
	cp.ib.prevDelay[i] = d
	if cp.rec != nil {
		cp.rec.Event(obs.Event{Instance: int(i), Kind: obs.EventBackoff, AtSec: cp.eng.Now(), DurSec: d})
	}
	cp.eng.EmitAfter(d, evBackoffDone, i)
}

// failExec handles a crashed or timed-out attempt: retry within the
// policy's budget or fail the burst.
func (cp *controlPlane) failExec(i int32) {
	retry := int(cp.ib.crashes[i] + cp.ib.timeouts[i])
	if !cp.retryPol.Allow(retry, cp.eng.Now(), cp.maxRetries) {
		if cp.burstErr == nil {
			cp.burstErr = fmt.Errorf("%w: instance %d after %d failed attempts",
				ErrExecFailed, i, retry)
		}
		cp.release()
		return
	}
	cp.backoffThenResubmit(i, retry)
}

// finish begins instance i's execution attempt: sample straggling, crash,
// and timeout fates, then schedule whichever event strikes first. A
// completing attempt past the fleet's hedge threshold launches one
// speculative duplicate, resolved at schedule time (the simulator knows
// both durations) with only the winner's end event entering the queue.
func (cp *controlPlane) finish(i int32) {
	ib := cp.ib
	eng := cp.eng
	ib.start[i] = eng.Now()
	dur := ib.execs[i]
	if cp.cfg.StragglerProb > 0 && cp.rng.Float64() < cp.cfg.StragglerProb {
		dur *= cp.cfg.StragglerFactor
		ib.straggled[i]++
		if cp.rec != nil {
			cp.rec.Event(obs.Event{Instance: int(i), Kind: obs.EventStraggle, AtSec: eng.Now(), DurSec: dur})
		}
	}
	// Sample this attempt's crash time; the attempt fails at whichever of
	// crash and timeout strikes first, billing the partial work. The sampled
	// offset is parked in the pendDur column for the fault handler — the
	// closure path captured it; recomputing it from the event timestamp
	// would round differently.
	crashAt := math.Inf(1)
	if cp.cfg.CrashRate > 0 {
		crashAt = cp.rng.ExpFloat64() / cp.cfg.CrashRate
	}
	timeoutAt := math.Inf(1)
	if cp.cfg.ExecTimeoutSec > 0 {
		timeoutAt = cp.cfg.ExecTimeoutSec
	}
	if crashAt < dur && crashAt <= timeoutAt {
		ib.pendDur[i] = crashAt
		eng.EmitAfter(crashAt, evCrash, i)
		return
	}
	if timeoutAt < dur {
		ib.pendDur[i] = timeoutAt
		eng.EmitAfter(timeoutAt, evTimeout, i)
		return
	}
	// The attempt will complete. If it is a straggler (past the fleet's
	// hedge threshold), launch one speculative duplicate with a fresh
	// execution draw; the first finisher wins and the loser is killed
	// (and billed) at that moment. Duplicates model a relaunch on a
	// healthy host: no straggler or crash injection applies to them.
	end := dur
	if dur > cp.hedgeThr {
		hedgeDur := ib.execs[i] * cp.rng.Jitter(cp.cfg.JitterRel)
		ib.flags[i] |= flagHedged
		if cp.hedgeThr+hedgeDur < dur {
			ib.flags[i] |= flagHedgeWon
			ib.hedgeExtraSec[i] = hedgeDur
			end = cp.hedgeThr + hedgeDur
		} else {
			ib.hedgeExtraSec[i] = dur - cp.hedgeThr
		}
		if cp.rec != nil {
			cp.rec.Event(obs.Event{Instance: int(i), Kind: obs.EventHedgeLaunch, AtSec: eng.Now() + cp.hedgeThr})
		}
	}
	eng.EmitAfter(end, evEnd, i)
}

func (cp *controlPlane) onCrash(i int32) {
	ib := cp.ib
	ib.crashes[i]++
	ib.failedSec[i] += ib.pendDur[i]
	if cp.rec != nil {
		cp.rec.Event(obs.Event{Instance: int(i), Kind: obs.EventCrash, AtSec: cp.eng.Now(), DurSec: ib.pendDur[i]})
	}
	cp.failExec(i)
}

func (cp *controlPlane) onTimeout(i int32) {
	ib := cp.ib
	ib.timeouts[i]++
	ib.failedSec[i] += ib.pendDur[i]
	if cp.rec != nil {
		cp.rec.Event(obs.Event{Instance: int(i), Kind: obs.EventTimeout, AtSec: cp.eng.Now(), DurSec: ib.pendDur[i]})
	}
	cp.failExec(i)
}

func (cp *controlPlane) onEnd(i int32) {
	ib := cp.ib
	ib.end[i] = cp.eng.Now()
	if cp.rec != nil && ib.flags[i]&flagHedged != 0 {
		kind := obs.EventHedgeWaste
		if ib.flags[i]&flagHedgeWon != 0 {
			kind = obs.EventHedgeWin
		}
		cp.rec.Event(obs.Event{Instance: int(i), Kind: kind, AtSec: cp.eng.Now(), DurSec: ib.hedgeExtraSec[i]})
		cp.rec.Span(obs.Span{
			Instance: int(i), Stage: obs.StageHedge,
			StartSec: ib.start[i] + cp.hedgeThr, EndSec: cp.eng.Now(),
		})
	}
	cp.release()
}

// Station service-time models: the paper's contention growth — each
// placement, build, and ship slows down with the work already done. Cached
// as method values on the pooled controlPlane so steady-state runs create
// no closures at all.
func (cp *controlPlane) schedService(int32) float64 {
	return cp.cfg.SchedBaseSec + cp.cfg.SchedPerBusySec*float64(cp.sched.Served)
}

func (cp *controlPlane) buildService(int32) float64 {
	return cp.cfg.BuildSec + cp.cfg.BuildGrowthSec*float64(cp.build.Served)
}

func (cp *controlPlane) shipService(int32) float64 {
	return cp.cfg.ShipSec + cp.cfg.ShipGrowthSec*float64(cp.ship.Served)
}

// runControlPlane simulates scheduling, image build, shipping, boot, and
// execution for a set of instances whose degree/warm state and execution
// durations are already fixed in the scratch's instance batch, on the typed
// event path. It fills in the batch's lifecycle arrays, materializes them
// as timelines, and returns the Result skeleton (no billing).
func runControlPlane(cfg Config, b Burst, sc *runScratch, rng *sim.RNG) (*Result, error) {
	ib := &sc.batch
	n := ib.n
	eng := sc.engine()
	cp := &sc.cp
	cp.eng = eng
	cp.cfg = cfg
	cp.ib = ib
	cp.rng = rng
	cp.rec = b.Recorder
	cp.limit = cfg.ConcurrencyLimit
	cp.running = 0
	cp.throttleQ = cp.throttleQ[:0]
	cp.throttlePos = 0
	cp.burstErr = nil

	podSize := cfg.PodSize
	if podSize < 1 {
		podSize = 1
	}
	cp.podSize = podSize
	cp.pods = sc.podStates((n + podSize - 1) / podSize)

	cp.maxRetries = cfg.MaxStartRetries
	if cp.maxRetries == 0 {
		cp.maxRetries = 3
	}
	cp.retryPol = cfg.retryPolicy()
	// The hedge launch threshold is the configured quantile of the fleet's
	// planned execution durations — known up front in the simulator, so the
	// policy is deterministic.
	cp.hedgeThr = math.Inf(1)
	if cfg.Hedge.Enabled() && n > 0 {
		cp.hedgeThr = cfg.Hedge.Threshold(ib.execs)
	}

	// Observability: a nil recorder costs only the guard checks in the
	// handlers; with one attached we additionally track arrival and
	// scheduler-entry times to emit queued/sched spans.
	if cp.rec != nil {
		cp.rec.BeginBurst(obs.BurstInfo{
			Platform: cfg.Name, Label: b.Label,
			Functions: b.Functions, Degree: b.Degree, Instances: n,
		})
		cp.arrive = grownZeroed(cp.arrive, n)
		cp.admitted = grownZeroed(cp.admitted, n)
		for i := range cp.admitted {
			cp.admitted[i] = -1
		}
	}

	eng.SetSink(cp)
	if cp.schedSvc == nil {
		cp.schedSvc = cp.schedService
		cp.buildSvc = cp.buildService
		cp.shipSvc = cp.shipService
	}
	cp.sched.Init(eng, cfg.SchedServers, evSchedDone, n, cp.schedSvc)
	cp.build.Init(eng, cfg.BuildServers, evBuildDone, n, cp.buildSvc)
	cp.ship.Init(eng, cfg.ShipServers, evShipDone, n, cp.shipSvc)

	// Every instance requests placement at t=0 (or at its staggered arrival
	// time), subject to account-level throttling. The scheduler's search
	// cost grows with the number of placements already made — the paper's
	// "scheduling algorithm needs to search and find more places" effect.
	if b.StaggerSec > 0 || b.arrivalOffsetSec > 0 {
		for i := 0; i < n; i++ {
			eng.Emit(b.arrivalOffsetSec+float64(i)*b.StaggerSec, evAdmit, int32(i))
		}
	} else {
		for i := 0; i < n; i++ {
			cp.admit(int32(i))
		}
	}
	eng.Run()
	if cp.burstErr != nil {
		return nil, cp.burstErr
	}

	timelines := ib.materialize()
	res := &Result{
		Config:       cfg,
		Burst:        b,
		Timelines:    timelines,
		SchedBusySec: cp.sched.BusySeconds / float64(cfg.SchedServers),
		BuildBusySec: cp.build.BusySeconds / float64(cfg.BuildServers),
		ShipBusySec:  cp.ship.BusySeconds / float64(cfg.ShipServers),
	}
	for _, t := range timelines {
		res.StartRetries += t.Retries
		res.Crashes += t.Crashes
		res.Timeouts += t.Timeouts
		if t.Hedged {
			res.HedgesLaunched++
		}
		if t.HedgeWon {
			res.HedgesWon++
		}
	}
	if cp.rec != nil {
		emitLifecycleSpans(cp.rec, timelines, cp.arrive, cp.admitted)
	}
	return res, nil
}
