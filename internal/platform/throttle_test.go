package platform

import (
	"testing"

	"repro/internal/workload"
)

func TestThrottlingCapsConcurrency(t *testing.T) {
	cfg := AWSLambda()
	cfg.ConcurrencyLimit = 100
	d := workload.StatelessCost{}.Demand()
	res, err := Run(cfg, Burst{Demand: d, Functions: 300, Degree: 1, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	// At no virtual instant may more than 100 instances be running. Check
	// by sweeping the start/end intervals.
	type event struct {
		at    float64
		delta int
	}
	var evs []event
	for _, tl := range res.Timelines {
		evs = append(evs, event{tl.Start, 1}, event{tl.End, -1})
	}
	// Sort by time, ends before starts at ties.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && (evs[j].at < evs[j-1].at ||
			(evs[j].at == evs[j-1].at && evs[j].delta < evs[j-1].delta)); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	if peak > 100 {
		t.Fatalf("throttle violated: %d instances ran concurrently", peak)
	}
	// Throttled waves must stretch total service well beyond the unlimited
	// case.
	unlimited, err := Run(AWSLambda(), Burst{Demand: d, Functions: 300, Degree: 1, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalServiceTime() <= unlimited.TotalServiceTime() {
		t.Fatalf("throttling should stretch service: %g vs %g",
			res.TotalServiceTime(), unlimited.TotalServiceTime())
	}
	// Every instance must still complete.
	for _, tl := range res.Timelines {
		if tl.End <= tl.Start {
			t.Fatalf("instance %d never ran", tl.Index)
		}
	}
}

// TestPackingAvoidsThrottling demonstrates the extra benefit: packing keeps
// the instance count under the account limit, so the packed burst never
// throttles while the unpacked one serializes into waves.
func TestPackingAvoidsThrottling(t *testing.T) {
	cfg := AWSLambda()
	cfg.ConcurrencyLimit = 200
	d := workload.Video{}.Demand()
	const c = 1000
	unpacked, err := Run(cfg, Burst{Demand: d, Functions: c, Degree: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Run(cfg, Burst{Demand: d, Functions: c, Degree: 8, Seed: 42}) // 125 ≤ 200 instances
	if err != nil {
		t.Fatal(err)
	}
	// Unpacked: 1000 functions through a 200-slot account = ≥5 waves of
	// ~100 s — service must exceed 400 s. Packed: one wave.
	if unpacked.TotalServiceTime() < 400 {
		t.Fatalf("unpacked burst should serialize into waves: %g", unpacked.TotalServiceTime())
	}
	if packed.TotalServiceTime() >= unpacked.TotalServiceTime()/2 {
		t.Fatalf("packing should dodge throttling: %g vs %g",
			packed.TotalServiceTime(), unpacked.TotalServiceTime())
	}
}

func TestThrottleValidation(t *testing.T) {
	cfg := AWSLambda()
	cfg.ConcurrencyLimit = -1
	if cfg.Validate() == nil {
		t.Fatal("negative limit accepted")
	}
}

// TestStaggerInteractsWithThrottle: staggered admission must still respect
// the account concurrency limit, and the two mechanisms compose — the last
// start is bounded below by the stagger schedule and stretched further by
// throttle waves.
func TestStaggerInteractsWithThrottle(t *testing.T) {
	d := workload.StatelessCost{}.Demand()
	const n, stagger = 300, 0.2
	b := Burst{Demand: d, Functions: n, Degree: 1, StaggerSec: stagger, Seed: 43}

	// Unthrottled staggered burst: instance k cannot start before its
	// arrival at k·stagger.
	free, err := Run(AWSLambda(), b)
	if err != nil {
		t.Fatal(err)
	}
	for _, tl := range free.Timelines {
		if tl.Start < float64(tl.Index)*stagger {
			t.Fatalf("instance %d started %.2fs before its staggered arrival", tl.Index, float64(tl.Index)*stagger-tl.Start)
		}
	}
	if free.ScalingTime() < float64(n-1)*stagger {
		t.Fatalf("stagger floor violated: scaling %g < %g", free.ScalingTime(), float64(n-1)*stagger)
	}

	// Throttled + staggered: concurrency stays under the cap and service
	// stretches beyond the unthrottled staggered run.
	cfg := AWSLambda()
	cfg.ConcurrencyLimit = 50
	caped, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	type event struct {
		at    float64
		delta int
	}
	var evs []event
	for _, tl := range caped.Timelines {
		evs = append(evs, event{tl.Start, 1}, event{tl.End, -1})
	}
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && (evs[j].at < evs[j-1].at ||
			(evs[j].at == evs[j-1].at && evs[j].delta < evs[j-1].delta)); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	if peak > 50 {
		t.Fatalf("throttle violated under stagger: peak %d", peak)
	}
	for _, tl := range caped.Timelines {
		if tl.End <= tl.Start {
			t.Fatalf("instance %d never ran", tl.Index)
		}
	}
	if caped.TotalServiceTime() <= free.TotalServiceTime() {
		t.Fatalf("throttle should stretch the staggered burst: %g vs %g",
			caped.TotalServiceTime(), free.TotalServiceTime())
	}
}
