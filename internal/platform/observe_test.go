package platform

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Golden files are regenerated with `go test ./internal/platform -update`
// (the repo convention: every golden test watches this flag).
var update = flag.Bool("update", false, "rewrite golden files")

// TestLifecycleSpansReconcileWithStageBreakdown checks the exporter's core
// invariant: the recorded spans tile each instance's critical path exactly
// as Result.StageBreakdown slices it, so per-stage sums reconcile with the
// paper's Fig. 2 decomposition.
func TestLifecycleSpansReconcileWithStageBreakdown(t *testing.T) {
	mem := &obs.Memory{}
	res, err := Run(AWSLambda(), Burst{
		Demand: testDemand(), Functions: 200, Degree: 4, Seed: 7,
		Recorder: mem, Label: "reconcile",
	})
	if err != nil {
		t.Fatal(err)
	}
	bursts := mem.Bursts()
	if len(bursts) != 1 {
		t.Fatalf("got %d bursts, want 1", len(bursts))
	}

	// Locate the critical-path instance: the last to start execution.
	last := 0
	for i, tl := range res.Timelines {
		if tl.Start >= res.Timelines[last].Start {
			last = i
		}
	}
	durs := map[obs.Stage]float64{}
	for _, s := range bursts[0].Spans {
		if s.Instance == last {
			durs[s.Stage] += s.DurSec()
		}
	}
	sched, build, ship, boot := res.StageBreakdown()
	for _, c := range []struct {
		stage obs.Stage
		want  float64
	}{
		{obs.StageSched, sched},
		{obs.StageBuild, build},
		{obs.StageShip, ship},
		{obs.StageBoot, boot},
	} {
		if math.Abs(durs[c.stage]-c.want) > 1e-9 {
			t.Errorf("stage %s: spans sum to %g, StageBreakdown says %g",
				c.stage, durs[c.stage], c.want)
		}
	}
	// Spans must also cover every instance's full critical path with no
	// gaps on a clean (throttle-free, unstaggered) run: each span starts
	// where the previous one ended, the first at t=0.
	ends := map[int]float64{}
	for _, s := range bursts[0].Spans {
		if s.DurSec() <= 0 {
			t.Errorf("instance %d: non-positive span %v", s.Instance, s)
		}
		if math.Abs(ends[s.Instance]-s.StartSec) > 1e-9 {
			t.Errorf("instance %d: gap before %s span at %g (prev end %g)",
				s.Instance, s.Stage, s.StartSec, ends[s.Instance])
		}
		ends[s.Instance] = s.EndSec
	}
	for i, tl := range res.Timelines {
		if math.Abs(ends[i]-tl.End) > 1e-9 {
			t.Errorf("instance %d: spans end at %g, timeline at %g", i, ends[i], tl.End)
		}
	}
}

// TestChromeTraceGolden locks the exported Chrome trace of a deterministic
// faulty burst byte-for-byte. The simulator is seeded and single-threaded
// and the exporter emits integer microseconds in a fixed order, so any diff
// is a real behaviour change. Regenerate with -update.
func TestChromeTraceGolden(t *testing.T) {
	cfg := AWSLambda()
	cfg.CrashRate = 0.0004
	cfg.StartFailureProb = 0.05
	cfg.StragglerProb = 0.05
	cfg.StragglerFactor = 4
	cfg.Retry = resilience.Backoff{Kind: resilience.Exponential, BaseSec: 2, CapSec: 30}
	cfg.Hedge = resilience.Hedge{Quantile: 90}
	mem := &obs.Memory{}
	if _, err := Run(cfg, Burst{
		Demand: testDemand(), Functions: 40, Degree: 4, Seed: 11,
		Recorder: mem, Label: "golden",
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, mem.Bursts()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/platform -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace differs from %s (rerun with -update if the change is intended)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestRecorderSeesFaultEvents checks that injected faults surface as typed
// events with the expected kinds.
func TestRecorderSeesFaultEvents(t *testing.T) {
	cfg := AWSLambda()
	cfg.CrashRate = 0.001
	cfg.StartFailureProb = 0.2
	mem := &obs.Memory{}
	res, err := Run(cfg, Burst{
		Demand: testDemand(), Functions: 100, Degree: 2, Seed: 3,
		Recorder: mem, Label: "faults",
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[obs.EventKind]int{}
	for _, e := range mem.Bursts()[0].Events {
		counts[e.Kind]++
	}
	if counts[obs.EventStartRetry] != res.StartRetries {
		t.Errorf("start-retry events %d ≠ result retries %d",
			counts[obs.EventStartRetry], res.StartRetries)
	}
	if counts[obs.EventCrash] != res.Crashes {
		t.Errorf("crash events %d ≠ result crashes %d", counts[obs.EventCrash], res.Crashes)
	}
	if res.StartRetries == 0 && res.Crashes == 0 {
		t.Skip("seed produced no faults; pick another seed")
	}
}

// TestNilRecorderSameResult guards the zero-cost claim's twin requirement:
// recording must not perturb the simulation itself. It also pins the cost
// side of the claim by measuring allocations with and without a recorder:
// before obs.Memory pre-sized its buffers from the burst's instance count,
// an observed 300-instance run paid ≈7 allocs/instance in span/event
// regrowth copies; with pre-sizing it pays a handful of fixed buffers per
// burst, so the observed-minus-nil delta per instance stays near zero.
func TestNilRecorderSameResult(t *testing.T) {
	b := Burst{Demand: testDemand(), Functions: 300, Degree: 3, Seed: 5}
	plain, err := Run(AWSLambda(), b)
	if err != nil {
		t.Fatal(err)
	}
	b.Recorder = &obs.Memory{}
	observed, err := Run(AWSLambda(), b)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalServiceTime() != observed.TotalServiceTime() ||
		plain.ExpenseUSD() != observed.ExpenseUSD() {
		t.Fatalf("recorder changed the run: service %g vs %g, expense %g vs %g",
			plain.TotalServiceTime(), observed.TotalServiceTime(),
			plain.ExpenseUSD(), observed.ExpenseUSD())
	}

	n := float64(b.Instances())
	bare := b
	bare.Recorder = nil
	nilAllocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(AWSLambda(), bare); err != nil {
			t.Error(err)
		}
	}) / n
	recAllocs := testing.AllocsPerRun(5, func() {
		ob := b
		ob.Recorder = &obs.Memory{} // fresh recorder: Memory accumulates bursts
		if _, err := Run(AWSLambda(), ob); err != nil {
			t.Error(err)
		}
	}) / n
	t.Logf("allocs/instance: nil recorder %.3f, Memory recorder %.3f", nilAllocs, recAllocs)
	if delta := recAllocs - nilAllocs; delta > 1 {
		t.Errorf("Memory recorder adds %.2f allocs/instance — pre-sized buffers should make the delta ≈0", delta)
	}
}
