package platform

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/interfere"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// crashyConfig injects mid-execution crashes with a budget generous enough
// that bursts still complete.
func crashyConfig(rate float64) Config {
	cfg := AWSLambda()
	cfg.CrashRate = rate
	cfg.Retry = resilience.Backoff{Kind: resilience.Exponential, BaseSec: 1, CapSec: 30, MaxAttempts: 50}
	return cfg
}

func TestCrashInjectionRetriesAndBills(t *testing.T) {
	d := workload.Video{}.Demand() // ~100 s at degree 1
	b := Burst{Demand: d, Functions: 300, Degree: 2, Seed: 31}
	clean, err := Run(AWSLambda(), b)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(crashyConfig(0.002), b) // λT ≈ 0.21 per attempt
	if err != nil {
		t.Fatal(err)
	}
	// λT ≈ 0.21 over 150 instances ⇒ ~30 crashes expected.
	if faulty.Crashes < 5 || faulty.Crashes > 150 {
		t.Fatalf("implausible crash count %d", faulty.Crashes)
	}
	// Aggregates must match the timelines.
	var crashes int
	var failedSec float64
	for _, tl := range faulty.Timelines {
		crashes += tl.Crashes
		failedSec += tl.FailedSec
		if tl.End <= tl.Start {
			t.Fatalf("instance %d never completed: %+v", tl.Index, tl)
		}
		if tl.Crashes > 0 && tl.FailedSec <= 0 {
			t.Fatalf("instance %d crashed without billed failed time", tl.Index)
		}
	}
	if crashes != faulty.Crashes {
		t.Fatalf("aggregate crashes %d != timeline sum %d", faulty.Crashes, crashes)
	}
	if failedSec <= 0 {
		t.Fatal("crashes recorded but no failed seconds billed")
	}
	// Failed attempts are billed: crashes must raise compute and waste.
	if faulty.ComputeUSD <= clean.ComputeUSD {
		t.Fatalf("crashes should raise compute spend: %g vs %g", faulty.ComputeUSD, clean.ComputeUSD)
	}
	if faulty.WastedUSD <= 0 {
		t.Fatal("crashes should produce wasted spend")
	}
	if faulty.WastedUSD >= faulty.ComputeUSD {
		t.Fatalf("waste %g cannot exceed compute %g", faulty.WastedUSD, faulty.ComputeUSD)
	}
	// Re-runs delay completion.
	if faulty.TotalServiceTime() <= clean.TotalServiceTime() {
		t.Fatalf("crashes should lengthen service time: %g vs %g",
			faulty.TotalServiceTime(), clean.TotalServiceTime())
	}
	// Each crash re-invokes: the per-request bill grows with it.
	if faulty.RequestUSD <= clean.RequestUSD {
		t.Fatal("crash relaunches should pay per-request fees")
	}
}

func TestCrashInjectionExhaustedBudgetFailsBurst(t *testing.T) {
	cfg := AWSLambda()
	cfg.CrashRate = 0.5 // λT ≈ 50: attempts essentially never survive
	cfg.Retry = resilience.Backoff{Kind: resilience.Fixed, BaseSec: 1, MaxAttempts: 2}
	d := workload.Video{}.Demand()
	_, err := Run(cfg, Burst{Demand: d, Functions: 20, Degree: 1, Seed: 32})
	if !errors.Is(err, ErrExecFailed) {
		t.Fatalf("expected ErrExecFailed, got %v", err)
	}
}

func TestExecTimeoutKillsAndRetries(t *testing.T) {
	// Base execution fits the timeout; straggled attempts (3×) do not, so
	// timeouts are survived by retrying until a healthy attempt lands.
	cfg := AWSLambda()
	cfg.ExecTimeoutSec = 150
	cfg.StragglerProb = 0.3
	cfg.StragglerFactor = 3
	cfg.Retry = resilience.Backoff{Kind: resilience.Fixed, BaseSec: 2, MaxAttempts: 50}
	d := workload.Video{}.Demand()
	res, err := Run(cfg, Burst{Demand: d, Functions: 200, Degree: 1, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeouts == 0 {
		t.Fatal("expected straggled attempts to hit the timeout")
	}
	for _, tl := range res.Timelines {
		if tl.End <= tl.Start {
			t.Fatalf("instance %d never completed: %+v", tl.Index, tl)
		}
		// A timed-out attempt bills exactly the timeout.
		if tl.Timeouts > 0 && tl.FailedSec < float64(tl.Timeouts)*cfg.ExecTimeoutSec-1e-9 {
			t.Fatalf("instance %d: %d timeouts billed only %g s", tl.Index, tl.Timeouts, tl.FailedSec)
		}
	}

	// A timeout below the base execution time can never be satisfied: the
	// burst fails once the budget is spent.
	cfg.StragglerProb = 0
	cfg.StragglerFactor = 0
	cfg.ExecTimeoutSec = 50
	cfg.Retry.MaxAttempts = 3
	_, err = Run(cfg, Burst{Demand: d, Functions: 10, Degree: 1, Seed: 34})
	if !errors.Is(err, ErrExecFailed) {
		t.Fatalf("expected ErrExecFailed for unsatisfiable timeout, got %v", err)
	}
}

func TestStragglerInjectionLengthensTail(t *testing.T) {
	d := workload.Video{}.Demand()
	b := Burst{Demand: d, Functions: 400, Degree: 2, Seed: 35}
	clean, err := Run(AWSLambda(), b)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AWSLambda()
	cfg.StragglerProb = 0.1
	cfg.StragglerFactor = 4
	slow, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	var straggled int
	for _, tl := range slow.Timelines {
		straggled += tl.Straggled
	}
	// p=0.1 over 200 instances ⇒ ~20 stragglers expected.
	if straggled < 5 || straggled > 60 {
		t.Fatalf("implausible straggler count %d", straggled)
	}
	if slow.TotalServiceTime() <= clean.TotalServiceTime() {
		t.Fatal("stragglers should lengthen total service time")
	}
	// Stragglers hurt the tail far more than the median.
	tailGrowth := slow.ServiceTimeAtQuantile(95) - clean.ServiceTimeAtQuantile(95)
	medGrowth := slow.ServiceTimeAtQuantile(50) - clean.ServiceTimeAtQuantile(50)
	if tailGrowth <= medGrowth {
		t.Fatalf("straggler damage should concentrate in the tail: tail +%g, median +%g",
			tailGrowth, medGrowth)
	}
}

func TestHedgingCutsStragglerTail(t *testing.T) {
	d := workload.Video{}.Demand()
	b := Burst{Demand: d, Functions: 400, Degree: 2, Seed: 36}
	cfg := AWSLambda()
	cfg.StragglerProb = 0.15
	cfg.StragglerFactor = 3
	unhedged, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hedge = resilience.Hedge{Quantile: 90}
	hedged, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if hedged.HedgesLaunched == 0 {
		t.Fatal("no hedges launched despite stragglers past p90")
	}
	if hedged.HedgesWon == 0 {
		t.Fatal("3× stragglers should lose to their duplicates")
	}
	if hedged.HedgesWon > hedged.HedgesLaunched {
		t.Fatalf("hedge wins %d exceed launches %d", hedged.HedgesWon, hedged.HedgesLaunched)
	}
	// First-finisher-wins: hedging strictly improves the straggler tail...
	if hedged.TotalServiceTime() >= unhedged.TotalServiceTime() {
		t.Fatalf("hedging should cut the tail: %g vs %g",
			hedged.TotalServiceTime(), unhedged.TotalServiceTime())
	}
	// ...and pays for it: the losing copies are billed as waste (note the
	// total compute can still drop — a winning duplicate truncates its
	// straggling primary) and every duplicate pays the per-request fee.
	if hedged.WastedUSD <= unhedged.WastedUSD {
		t.Fatal("hedge losers should be billed as waste")
	}
	if hedged.RequestUSD <= unhedged.RequestUSD {
		t.Fatal("hedge launches should pay per-request fees")
	}
	for _, tl := range hedged.Timelines {
		if tl.HedgeWon && !tl.Hedged {
			t.Fatal("hedge won without being launched")
		}
		if tl.Hedged && tl.HedgeExtraSec <= 0 {
			t.Fatalf("instance %d hedged with no duplicate time billed", tl.Index)
		}
	}
}

// TestZeroRateFaultMachineryIsBitForBit is the determinism acceptance
// property: a config with the whole fault-tolerance machinery configured but
// every injection rate at zero must reproduce today's results bit-for-bit,
// for any seed and burst shape.
func TestZeroRateFaultMachineryIsBitForBit(t *testing.T) {
	d := workload.Video{}.Demand()
	f := func(cRaw uint16, degRaw uint8, seed int64) bool {
		c := int(cRaw)%600 + 1
		deg := int(degRaw)%10 + 1
		b := Burst{Demand: d, Functions: c, Degree: deg, Seed: seed}
		plain, err := Run(AWSLambda(), b)
		if err != nil {
			return false
		}
		cfg := AWSLambda()
		cfg.CrashRate = 0
		cfg.StartFailureProb = 0
		cfg.StragglerProb = 0
		cfg.ExecTimeoutSec = 890 // present but never binding (MaxExecSec gates first)
		cfg.Retry = resilience.Backoff{Kind: resilience.Decorrelated, BaseSec: 1, CapSec: 60, MaxAttempts: 8}
		wired, err := Run(cfg, b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(plain.Timelines, wired.Timelines) &&
			plain.ComputeUSD == wired.ComputeUSD &&
			plain.RequestUSD == wired.RequestUSD &&
			plain.StorageUSD == wired.StorageUSD &&
			wired.WastedUSD == 0 &&
			wired.Crashes == 0 && wired.Timeouts == 0 &&
			wired.HedgesLaunched == 0 && wired.StartRetries == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMixedBurstInheritsFaultInjection: the heterogeneous path shares
// runControlPlane, so injection must work there too.
func TestMixedBurstInheritsFaultInjection(t *testing.T) {
	cfg := crashyConfig(0.002)
	d := workload.Video{}.Demand()
	bins := make([]Bin, 100)
	for i := range bins {
		bins[i].Demands = []interfere.Demand{d, d}
	}
	res, err := RunMixed(cfg, MixedBurst{Bins: bins, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("mixed burst saw no crashes under injection")
	}
	if res.WastedUSD <= 0 {
		t.Fatal("mixed burst crashes should bill waste")
	}
	if math.IsNaN(res.ExpenseUSD()) || res.ExpenseUSD() <= 0 {
		t.Fatal("bad expense")
	}
}
