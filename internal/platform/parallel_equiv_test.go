package platform

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/interfere"
	"repro/internal/obs"
	"repro/internal/workload"
)

// mixedEquivBins builds a heterogeneous bin set mixing two demands at
// varying degrees, enough instances that the fan-out actually interleaves.
func mixedEquivBins() []Bin {
	light := interfere.Demand{CPUSeconds: 5, MemoryMB: 128, InputMB: 5, OutputMB: 1}
	heavy := workload.Video{}.Demand()
	var bins []Bin
	for i := 0; i < 60; i++ {
		var b Bin
		b.Demands = append(b.Demands, light)
		if i%2 == 0 {
			b.Demands = append(b.Demands, heavy)
		}
		if i%3 == 0 {
			b.Demands = append(b.Demands, light, light)
		}
		bins = append(bins, b)
	}
	return bins
}

// normalize strips the recorder pointer (it necessarily differs between
// runs) so Results can be compared wholesale.
func normalize(r *Result) *Result {
	r.Burst.Recorder = nil
	return r
}

// TestConcurrentMixedBurstEquivalence is the platform-layer half of the
// determinism contract: RunMixed must produce byte-identical results —
// timelines, billing, fault counters, and recorded spans/events — for any
// Workers value, under fault injection and hedging.
func TestConcurrentMixedBurstEquivalence(t *testing.T) {
	cfg := crashyConfig(0.0005)
	cfg.StragglerProb = 0.05
	cfg.StragglerFactor = 3
	cfg.Hedge.Quantile = 95
	bins := mixedEquivBins()

	var wantRec obs.Memory
	want, err := RunMixed(cfg, MixedBurst{Bins: bins, Seed: 77, Warm: 7,
		Recorder: &wantRec, Label: "equiv", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	normalize(want)

	for _, workers := range []int{0, 2, 8, 31} {
		var rec obs.Memory
		got, err := RunMixed(cfg, MixedBurst{Bins: bins, Seed: 77, Warm: 7,
			Recorder: &rec, Label: "equiv", Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		normalize(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Result differs from sequential", workers)
		}
		if !reflect.DeepEqual(rec.Bursts(), wantRec.Bursts()) {
			t.Fatalf("workers=%d: recorded spans/events differ from sequential", workers)
		}
	}
}

// TestConcurrentMixedBurstLimitError checks the error path is order-stable:
// the reported infeasible bin is the first one in bin order, for any worker
// count.
func TestConcurrentMixedBurstLimitError(t *testing.T) {
	cfg := AWSLambda()
	heavy := workload.Video{}.Demand()
	// A limit between the singleton and the packed execution time makes
	// exactly the overloaded bins infeasible.
	single := interfere.ExecSecondsMixed([]interfere.Demand{heavy}, cfg.Shape)
	cfg.MaxExecSec = single * 1.05
	bins := singletonBins(heavy, 6)
	// Bins 2 and 4 are overloaded past the execution limit.
	for _, i := range []int{2, 4} {
		bins[i].Demands = append(bins[i].Demands, heavy, heavy)
	}
	var wantErr string
	for w, workers := range []int{1, 0, 8} {
		_, err := RunMixed(cfg, MixedBurst{Bins: bins, Seed: 5, Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected execution-limit error", workers)
		}
		if w == 0 {
			wantErr = err.Error()
			continue
		}
		if err.Error() != wantErr {
			t.Fatalf("workers=%d: error %q, want %q", workers, err.Error(), wantErr)
		}
	}
}

// TestShardedBurstWorkerEquivalence locks in the sharded determinism
// contract on homogeneous bursts: for each shard count in {1, 2, 4, 8}, the
// merged Result — timelines, billing, fault counters — and the replayed
// JSONL trace must be byte-identical for every worker count, with Workers=1
// as the sequential oracle. At Shards=1 the run must additionally be
// byte-identical to the plain single-cell Run.
func TestShardedBurstWorkerEquivalence(t *testing.T) {
	cfg := crashyConfig(0.0008)
	cfg.StartFailureProb = 0.04
	cfg.StragglerProb = 0.05
	cfg.StragglerFactor = 2.5
	cfg.Hedge.Quantile = 95
	base := Burst{
		Demand:     workload.Video{}.Demand(),
		Functions:  600,
		Degree:     7,
		Warm:       5,
		StaggerSec: 0.002,
		Seed:       90210,
		Label:      "shard-equiv",
	}

	runAt := func(shards, workers int) (*Result, []byte) {
		var buf bytes.Buffer
		b := base
		b.Recorder = obs.NewJSONL(&buf)
		res, err := RunSharded(cfg, b, Sharding{Shards: shards, Workers: workers})
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
		}
		return normalize(res), buf.Bytes()
	}

	for _, shards := range []int{1, 2, 4, 8} {
		want, wantTrace := runAt(shards, 1)
		for _, workers := range []int{0, 2, 8} {
			got, trace := runAt(shards, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d workers=%d: Result differs from sequential shard run", shards, workers)
			}
			if !bytes.Equal(trace, wantTrace) {
				t.Fatalf("shards=%d workers=%d: JSONL trace differs from sequential shard run", shards, workers)
			}
		}
		if want.Crashes+want.Timeouts+want.StartRetries == 0 {
			t.Fatalf("shards=%d: fault injection produced no faults — the sweep is not exercising fault counters", shards)
		}
	}

	// Shards=1 is the single-cell simulation, bit for bit.
	var buf bytes.Buffer
	b := base
	b.Recorder = obs.NewJSONL(&buf)
	plain, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	oneShard, oneTrace := runAt(1, 4)
	if !reflect.DeepEqual(oneShard, normalize(plain)) {
		t.Fatal("Shards=1 result differs from plain Run")
	}
	if !bytes.Equal(oneTrace, buf.Bytes()) {
		t.Fatal("Shards=1 JSONL trace differs from plain Run")
	}
}

// TestShardedMixedWorkerEquivalence is the heterogeneous twin: RunMixedSharded
// must be byte-identical across worker counts at each shard count, and equal
// to RunMixed at Shards=1.
func TestShardedMixedWorkerEquivalence(t *testing.T) {
	cfg := crashyConfig(0.0005)
	cfg.StragglerProb = 0.04
	cfg.StragglerFactor = 3
	cfg.Hedge.Quantile = 90
	bins := mixedEquivBins()
	base := MixedBurst{Bins: bins, Warm: 4, Seed: 4711, Label: "shard-mixed"}

	runAt := func(shards, workers int) (*Result, []byte) {
		var buf bytes.Buffer
		m := base
		m.Recorder = obs.NewJSONL(&buf)
		res, err := RunMixedSharded(cfg, m, Sharding{Shards: shards, Workers: workers})
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
		}
		return normalize(res), buf.Bytes()
	}

	for _, shards := range []int{1, 2, 4, 8} {
		want, wantTrace := runAt(shards, 1)
		for _, workers := range []int{0, 3, 16} {
			got, trace := runAt(shards, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d workers=%d: Result differs from sequential shard run", shards, workers)
			}
			if !bytes.Equal(trace, wantTrace) {
				t.Fatalf("shards=%d workers=%d: JSONL trace differs from sequential shard run", shards, workers)
			}
		}
	}

	var buf bytes.Buffer
	m := base
	m.Recorder = obs.NewJSONL(&buf)
	plain, err := RunMixed(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	oneShard, oneTrace := runAt(1, 2)
	if !reflect.DeepEqual(oneShard, normalize(plain)) {
		t.Fatal("Shards=1 result differs from plain RunMixed")
	}
	if !bytes.Equal(oneTrace, buf.Bytes()) {
		t.Fatal("Shards=1 JSONL trace differs from plain RunMixed")
	}
}

// TestRunScratchReuseStable guards the sync.Pool scratch: repeated and
// interleaved bursts of different shapes must be bit-identical to their own
// first run — stale pod state, retry backoff, or execution durations from a
// pooled array would show up here.
func TestRunScratchReuseStable(t *testing.T) {
	cfg := crashyConfig(0.001)
	cfg.StartFailureProb = 0.05
	d := workload.Video{}.Demand()
	bursts := []Burst{
		{Demand: d, Functions: 500, Degree: 8, Seed: 11},
		{Demand: d, Functions: 37, Degree: 5, Seed: 12, Warm: 3},
		{Demand: d, Functions: 120, Degree: 1, Seed: 13},
	}
	firsts := make([]*Result, len(bursts))
	for i, b := range bursts {
		res, err := Run(cfg, b)
		if err != nil {
			t.Fatal(err)
		}
		firsts[i] = res
	}
	for round := 0; round < 3; round++ {
		for i, b := range bursts {
			res, err := Run(cfg, b)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, firsts[i]) {
				t.Fatalf("round %d burst %d: pooled-scratch run differs from first run", round, i)
			}
		}
	}
}
