package platform

import (
	"testing"

	"repro/internal/interfere"
)

// The burst hot path is allocation-lean: no per-instance degree slice, a
// single reused billing group descriptor, and one gather-and-sort for
// multi-quantile metrics. These regression bounds hold the line — the
// simulator's event closures dominate what remains (≈19 objects per
// instance when the bound was set), so a return of per-instance scratch
// allocations shows up immediately.

func TestRunAllocationLean(t *testing.T) {
	cfg := AWSLambda()
	d := interfere.Demand{CPUSeconds: 30, IOSeconds: 20, MemoryMB: 300, MemBWMBps: 2000}
	b := Burst{Demand: d, Functions: 2000, Degree: 8, Seed: 1}
	if _, err := Run(cfg, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg, b); err != nil {
			t.Error(err)
		}
	})
	per := allocs / float64(b.Instances())
	if per > 24 {
		t.Errorf("Run allocates %.1f objects per instance (%.0f total), want ≤ 24", per, allocs)
	}
}

func TestServiceTimeQuantilesAllocationLean(t *testing.T) {
	cfg := AWSLambda()
	d := interfere.Demand{CPUSeconds: 30, IOSeconds: 20, MemoryMB: 300, MemBWMBps: 2000}
	res, err := Run(cfg, Burst{Demand: d, Functions: 2000, Degree: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One gather + one sort + one result slice, regardless of how many
	// quantiles are requested.
	allocs := testing.AllocsPerRun(20, func() {
		res.ServiceTimeAtQuantiles(95, 50)
	})
	if allocs > 4 {
		t.Errorf("ServiceTimeAtQuantiles allocates %.0f objects per call, want ≤ 4", allocs)
	}
	// And both answers must agree with the single-quantile path.
	sv := res.ServiceTimeAtQuantiles(95, 50)
	if sv[0] != res.ServiceTimeAtQuantile(95) || sv[1] != res.ServiceTimeAtQuantile(50) {
		t.Errorf("multi-quantile answers %v disagree with single-quantile path", sv)
	}
}
