package platform

import (
	"testing"

	"repro/internal/interfere"
)

// The burst hot path is allocation-lean: no per-instance degree slice, a
// single reused billing group descriptor, one gather-and-sort for
// multi-quantile metrics, and — since the typed-dispatch rewrite — no event
// or control-plane closures at all. Steady state, the only O(n) allocation
// left in Run is the materialized []Timeline handed to the caller; the
// regression bounds below hold that line.

func TestRunAllocationLean(t *testing.T) {
	cfg := AWSLambda()
	d := interfere.Demand{CPUSeconds: 30, IOSeconds: 20, MemoryMB: 300, MemBWMBps: 2000}
	b := Burst{Demand: d, Functions: 2000, Degree: 8, Seed: 1}
	if _, err := Run(cfg, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg, b); err != nil {
			t.Error(err)
		}
	})
	// The closure control plane sat at ≈19 objects per instance when this
	// bound was first set; the typed dispatcher's steady state is ≈0.01
	// (the Timeline slice amortized). The bound keeps headroom for pool
	// evictions under GC pressure while still catching any per-instance
	// closure sneaking back in.
	per := allocs / float64(b.Instances())
	if per > 2 {
		t.Errorf("Run allocates %.1f objects per instance (%.0f total), want ≤ 2", per, allocs)
	}
}

// TestAllocsPerRunTypedVsClosure pins the steady-state allocation story the
// typed dispatcher exists for, at C=10⁴: the typed path's per-instance
// allocations must stay near zero (Timeline materialization amortized),
// and the retained closure control plane must still exhibit the
// per-instance closure costs it was rewritten to shed — if the oracle ever
// measures lean too, the comparison has stopped guarding anything.
func TestAllocsPerRunTypedVsClosure(t *testing.T) {
	cfg := AWSLambda()
	d := interfere.Demand{CPUSeconds: 30, IOSeconds: 20, MemoryMB: 300, MemBWMBps: 2000}
	b := Burst{Demand: d, Functions: 10_000, Degree: 1, Seed: 7}
	n := float64(b.Instances())

	measure := func() float64 {
		if _, err := Run(cfg, b); err != nil { // warm the scratch/engine pool
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(cfg, b); err != nil {
				t.Error(err)
			}
		}) / n
	}

	typed := measure()
	var closure float64
	withClosureControlPlane(func() { closure = measure() })

	// Steady state the typed path performs ~1 allocation per 100 instances;
	// ≤2 leaves room for a GC-evicted pool entry being rebuilt mid-measure.
	if typed > 2 {
		t.Errorf("typed dispatch: %.2f allocs/instance at C=10⁴, want ≤ 2", typed)
	}
	if closure < 5 {
		t.Errorf("closure oracle: %.2f allocs/instance — suspiciously lean; the typed-vs-closure alloc comparison no longer measures anything", closure)
	}
	t.Logf("allocs/instance at C=10⁴: typed=%.3f closure=%.1f", typed, closure)
}

func TestServiceTimeQuantilesAllocationLean(t *testing.T) {
	cfg := AWSLambda()
	d := interfere.Demand{CPUSeconds: 30, IOSeconds: 20, MemoryMB: 300, MemBWMBps: 2000}
	res, err := Run(cfg, Burst{Demand: d, Functions: 2000, Degree: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One gather + one sort + one result slice, regardless of how many
	// quantiles are requested.
	allocs := testing.AllocsPerRun(20, func() {
		res.ServiceTimeAtQuantiles(95, 50)
	})
	if allocs > 4 {
		t.Errorf("ServiceTimeAtQuantiles allocates %.0f objects per call, want ≤ 4", allocs)
	}
	// And both answers must agree with the single-quantile path.
	sv := res.ServiceTimeAtQuantiles(95, 50)
	if sv[0] != res.ServiceTimeAtQuantile(95) || sv[1] != res.ServiceTimeAtQuantile(50) {
		t.Errorf("multi-quantile answers %v disagree with single-quantile path", sv)
	}
}
