package platform

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/interfere"
	"repro/internal/obs"
	"repro/internal/workload"
)

// withClosureControlPlane runs fn with every burst simulated by the frozen
// closure-based control plane (burst_closure_test.go) instead of the typed
// dispatcher — the specification side of the typed-equivalence proof.
func withClosureControlPlane(fn func()) {
	runCP = runControlPlaneClosure
	defer func() { runCP = runControlPlane }()
	fn()
}

// runTypedAndClosure simulates the same burst through the typed dispatcher
// and the closure oracle (both on the production wheel unless the caller
// wrapped us in withReferenceEngine) and returns both results plus their
// JSONL trace bytes.
func runTypedAndClosure(t *testing.T, cfg Config, b Burst) (typed, closure *Result, typedTrace, closureTrace []byte) {
	t.Helper()
	var tbuf, cbuf bytes.Buffer
	tb := b
	tb.Recorder = obs.NewJSONL(&tbuf)
	typed, typedErr := Run(cfg, tb)
	cb := b
	cb.Recorder = obs.NewJSONL(&cbuf)
	var closureErr error
	withClosureControlPlane(func() {
		closure, closureErr = Run(cfg, cb)
	})
	// Retry exhaustion under fault injection is a legitimate outcome; both
	// control planes must reach the identical verdict (same instance, same
	// attempt count) or the equivalence is broken.
	if (typedErr == nil) != (closureErr == nil) {
		t.Fatalf("typed err = %v, closure err = %v", typedErr, closureErr)
	}
	if typedErr != nil {
		if typedErr.Error() != closureErr.Error() {
			t.Fatalf("typed err %q differs from closure err %q", typedErr, closureErr)
		}
		return nil, nil, tbuf.Bytes(), cbuf.Bytes()
	}
	return typed, closure, tbuf.Bytes(), cbuf.Bytes()
}

// TestBurstTypedVsClosureDifferential is the control-plane half of the
// closure-free rewrite's proof: at randomized (C, degree, fault-rate, seed)
// points the typed dispatcher must reproduce the frozen closure
// implementation bit-for-bit — timelines, billing, fault counters, and the
// JSONL event trace — on the production wheel AND on the heap oracle. With
// the existing wheel-vs-heap suite this closes the square: typed-wheel ≡
// closure-wheel ≡ closure-heap ≡ typed-heap.
func TestBurstTypedVsClosureDifferential(t *testing.T) {
	d := workload.Video{}.Demand()
	rng := rand.New(rand.NewSource(271828))
	for trial := 0; trial < 40; trial++ {
		cfg := AWSLambda()
		c := 1 + rng.Intn(800)
		deg := 1 + rng.Intn(16)
		if rng.Intn(2) == 0 {
			cfg.CrashRate = rng.Float64() * 0.002
			cfg.StartFailureProb = rng.Float64() * 0.1
			cfg.RetryDelaySec = 0.5
			cfg.StragglerProb = rng.Float64() * 0.1
			cfg.StragglerFactor = 2
		}
		if rng.Intn(3) == 0 {
			cfg.Hedge.Quantile = 90
		}
		if rng.Intn(4) == 0 {
			cfg.ConcurrencyLimit = 1 + rng.Intn(100)
		}
		if rng.Intn(3) == 0 {
			cfg.ExecTimeoutSec = 30 + rng.Float64()*60
		}
		b := Burst{
			Demand:    d,
			Functions: c,
			Degree:    deg,
			Warm:      rng.Intn(5),
			Seed:      rng.Int63(),
		}
		if rng.Intn(4) == 0 {
			b.StaggerSec = rng.Float64() * 0.01
		}
		check := func(engine string) {
			typed, closure, typedTrace, closureTrace := runTypedAndClosure(t, cfg, b)
			if typed != nil {
				normalize(typed)
				normalize(closure)
			}
			if !reflect.DeepEqual(typed, closure) {
				t.Fatalf("trial %d on %s (C=%d P=%d crash=%g seed=%d): typed result differs from closure oracle",
					trial, engine, c, deg, cfg.CrashRate, b.Seed)
			}
			if !bytes.Equal(typedTrace, closureTrace) {
				t.Fatalf("trial %d on %s (C=%d P=%d): JSONL traces differ between typed and closure control planes",
					trial, engine, c, deg)
			}
		}
		check("wheel")
		if trial%4 == 0 {
			withReferenceEngine(func() { check("heap") })
		}
	}
}

// TestMixedBurstTypedVsClosureDifferential extends the typed-equivalence
// proof to heterogeneous bursts, whose bin structure exercises pods, warm
// prefixes, and per-bin interference together.
func TestMixedBurstTypedVsClosureDifferential(t *testing.T) {
	cfg := AWSLambda()
	cfg.CrashRate = 0.0004
	cfg.StragglerProb = 0.04
	cfg.StragglerFactor = 2.5
	cfg.Hedge.Quantile = 95
	light := interfere.Demand{CPUSeconds: 5, MemoryMB: 128, InputMB: 5, OutputMB: 1}
	heavy := workload.Video{}.Demand()
	var bins []Bin
	for i := 0; i < 80; i++ {
		var bn Bin
		bn.Demands = append(bn.Demands, light)
		if i%2 == 0 {
			bn.Demands = append(bn.Demands, heavy)
		}
		if i%5 == 0 {
			bn.Demands = append(bn.Demands, light, light, light)
		}
		bins = append(bins, bn)
	}
	m := MixedBurst{Bins: bins, Warm: 6, Seed: 314}

	var tbuf, cbuf bytes.Buffer
	tm := m
	tm.Recorder = obs.NewJSONL(&tbuf)
	typed, err := RunMixed(cfg, tm)
	if err != nil {
		t.Fatal(err)
	}
	cm := m
	cm.Recorder = obs.NewJSONL(&cbuf)
	var closure *Result
	withClosureControlPlane(func() {
		closure, err = RunMixed(cfg, cm)
	})
	if err != nil {
		t.Fatal(err)
	}
	normalize(typed)
	normalize(closure)
	if !reflect.DeepEqual(typed, closure) {
		t.Fatal("mixed burst: typed result differs from closure oracle")
	}
	if !bytes.Equal(tbuf.Bytes(), cbuf.Bytes()) {
		t.Fatal("mixed burst: JSONL traces differ between typed and closure control planes")
	}
}

// TestConcurrentTypedDispatchSharded puts the typed dispatcher under the
// race detector's eye: concurrent sharded runs (each worker goroutine owns
// a pooled engine + dispatcher from runScratchPool) must stay
// byte-identical to the sequential single-shard result. The Concurrent name
// opts it into CI's -race -count=2 stress matrix.
func TestConcurrentTypedDispatchSharded(t *testing.T) {
	cfg := AWSLambda()
	cfg.CrashRate = 0.0005
	cfg.StragglerProb = 0.05
	cfg.StragglerFactor = 2
	cfg.Hedge.Quantile = 95
	b := Burst{
		Demand:    workload.Video{}.Demand(),
		Functions: 4000,
		Degree:    4,
		Warm:      16,
		Seed:      99,
	}
	base, err := Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	normalize(base)
	for _, workers := range []int{2, 4, 8} {
		got, err := RunSharded(cfg, b, Sharding{Shards: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		normalize(got)
		// Sharded runs split the burst into independent cells, so only the
		// invariant aggregates are comparable to the unsharded run; the
		// load-bearing check is that every worker count agrees with the
		// workers=1 sharded result bit-for-bit.
		ref, err := RunSharded(cfg, b, Sharding{Shards: 8, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		normalize(ref)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: sharded typed-dispatch result differs from workers=1", workers)
		}
	}
	if len(base.Timelines) != b.Instances() {
		t.Fatalf("unsharded run lost instances: %d != %d", len(base.Timelines), b.Instances())
	}
}
