package platform

import (
	"context"
	"fmt"

	"repro/internal/interfere"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Heterogeneous packing: the extension sketched in the paper's Sec. 5
// discussion ("packing functions of different characteristics"). A
// MixedBurst spawns instances whose resident functions may come from
// different applications; everything else — control plane, billing rules,
// metrics — is shared with the homogeneous path.

// Bin is one instance's resident function set.
type Bin struct {
	Demands []interfere.Demand
}

// Degree is the number of functions packed in the bin.
func (b Bin) Degree() int { return len(b.Demands) }

// MixedBurst is a concurrent invocation wave of pre-binned instances.
type MixedBurst struct {
	Bins []Bin
	// Warm instances (a prefix of Bins) skip build, ship, and boot.
	Warm int
	// StaggerSec spaces out invocations as in Burst.
	StaggerSec float64
	// Seed drives execution-time jitter.
	Seed int64

	// arrivalOffsetSec shifts every instance's arrival by a constant; see
	// Burst.arrivalOffsetSec. Set only by sharded runs.
	arrivalOffsetSec float64

	// Recorder receives event-level observability records; nil disables
	// observability at zero cost (see internal/obs).
	Recorder obs.Recorder
	// Label names the burst in exported traces; may be empty.
	Label string

	// Workers bounds the fan-out that evaluates the per-bin interference
	// model and billing groups before the (inherently sequential) control-
	// plane simulation. 0 uses GOMAXPROCS; 1 reproduces fully sequential
	// execution. The result is byte-identical for every worker count: the
	// model evaluation is a pure function of the bin, and jitter draws stay
	// on the burst's single ordered stream.
	Workers int
}

// Functions is the total logical function count across bins.
func (m MixedBurst) Functions() int {
	n := 0
	for _, b := range m.Bins {
		n += b.Degree()
	}
	return n
}

// Validate reports an error for malformed mixed bursts.
func (m MixedBurst) Validate(shape interfere.Shape) error {
	if len(m.Bins) == 0 {
		return fmt.Errorf("platform: mixed burst with no bins")
	}
	if m.Warm < 0 {
		return fmt.Errorf("platform: negative warm count %d", m.Warm)
	}
	if m.StaggerSec < 0 {
		return fmt.Errorf("platform: negative stagger %g", m.StaggerSec)
	}
	for i, b := range m.Bins {
		if err := shape.ValidateMixed(b.Demands); err != nil {
			return fmt.Errorf("platform: bin %d: %w", i, err)
		}
	}
	return nil
}

// RunMixed simulates a heterogeneous burst. The returned Result's Burst
// field carries only the total function count (Degree is 0: there is no
// single packing degree); Result.Bins holds the composition.
func RunMixed(cfg Config, m MixedBurst) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(cfg.Shape); err != nil {
		return nil, err
	}
	n := len(m.Bins)
	rng := sim.Stream(m.Seed, hashName(cfg.Name)^0x6d69786564) // "mixed"
	sc := newRunScratch(n)
	defer sc.release()
	ib := &sc.batch

	// Per-bin preparation — the interference model over the bin's demand mix
	// and the same-demand billing groups — is a pure function of the bin, so
	// it fans out across workers. Everything order-sensitive (the platform-
	// limit check with its bin index, the jitter draws on the burst's single
	// sequential stream) happens in the ordered fold below, keeping the
	// result byte-identical for every worker count.
	type binPrep struct {
		base   float64
		groups []demandGroup
	}
	prep := func(i int) binPrep {
		return binPrep{
			base:   interfere.ExecSecondsMixed(m.Bins[i].Demands, cfg.Shape),
			groups: groupDemands(m.Bins[i].Demands),
		}
	}
	var preps []binPrep
	if parallel.WorkerCount(m.Workers) == 1 || n == 1 {
		preps = make([]binPrep, n)
		for i := range preps {
			preps[i] = prep(i)
		}
	} else {
		var err error
		preps, err = parallel.Map(context.Background(), n,
			func(_ context.Context, i int) (binPrep, error) { return prep(i), nil },
			parallel.Workers(m.Workers))
		if err != nil {
			return nil, err
		}
	}
	for i, bin := range m.Bins {
		if preps[i].base > cfg.MaxExecSec {
			return nil, fmt.Errorf("%w: bin %d needs %.1fs > %.0fs on %s",
				ErrExecLimit, i, preps[i].base, cfg.MaxExecSec, cfg.Name)
		}
		ib.execs[i] = preps[i].base * rng.Jitter(cfg.JitterRel)
		ib.degree[i] = int32(bin.Degree())
		if i < m.Warm {
			ib.flags[i] |= flagWarm
		}
	}

	pseudo := Burst{
		Functions: m.Functions(), Degree: 0, Warm: m.Warm,
		StaggerSec: m.StaggerSec, Seed: m.Seed,
		arrivalOffsetSec: m.arrivalOffsetSec,
		Recorder:         m.Recorder, Label: m.Label,
	}
	res, err := runCP(cfg, pseudo, sc, rng)
	if err != nil {
		return nil, err
	}
	res.Bins = m.Bins
	res.bill(func(i int) []demandGroup { return preps[i].groups })
	return res, nil
}

// groupDemands collapses a bin's members into same-demand groups so billing
// can apply shared-input and shuffle-locality rules per application.
func groupDemands(ds []interfere.Demand) []demandGroup {
	var groups []demandGroup
outer:
	for _, d := range ds {
		for i := range groups {
			if groups[i].d == d {
				groups[i].n++
				continue outer
			}
		}
		groups = append(groups, demandGroup{d: d, n: 1})
	}
	return groups
}
