package platform

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Sharded simulation: a burst partitioned across independent control planes.
//
// A single control plane is globally coupled — every instance contends for
// the same scheduler, builder, and shipper — so its discrete-event
// simulation is inherently sequential. Sharding models the partitioned
// (cellular) control plane real providers run at scale: shard s owns a
// contiguous range of instances and its own station set, and shards do not
// contend with each other. That makes the shard count part of the scenario,
// like Degree — RunSharded(cfg, b, Sharding{Shards: 4}) simulates a
// different (4-cell) platform than Run(cfg, b) does, not a reordering of
// the same one.
//
// The worker count, by contrast, is pure execution mechanics. The
// determinism contract is:
//
//   - For a fixed shard count, results and recorded traces are
//     byte-identical for every Workers value (each shard derives its seed
//     via parallel.TaskSeed and simulates in isolation; the merge below is
//     a deterministic fold in shard order).
//   - Shards == 1 is exactly Run/RunMixed — the sequential oracle the
//     parallel-equivalence suite compares against.
//
// Both properties are enforced by parallel_equiv_test.go's shard sweeps.

// Sharding configures a partitioned control-plane run.
type Sharding struct {
	// Shards is the number of independent control-plane cells. Values ≤ 1
	// (or above the instance count, after clamping) degenerate to the
	// single-cell Run/RunMixed path.
	Shards int
	// Workers bounds the goroutines simulating shards concurrently. 0 uses
	// GOMAXPROCS; 1 is the sequential oracle. Never affects results.
	Workers int
}

// shardBounds returns the contiguous instance range [lo, hi) of shard s
// when n instances are split across shards cells.
func shardBounds(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// RunSharded simulates a homogeneous burst on a partitioned control plane
// and returns the merged result: timelines renumbered to global instance
// indices, expenses and fault counters summed, per-stage busy time averaged
// over the cells. If b carries a Recorder, each shard records into private
// memory and the shards' records are replayed into it afterwards as one
// burst — events merged globally by time, spans in instance order.
func RunSharded(cfg Config, b Burst, sh Sharding) (*Result, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := b.Instances()
	shards := sh.Shards
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		return Run(cfg, b)
	}

	recording := b.Recorder != nil
	recs := make([]*obs.Memory, shards)
	results, err := parallel.Map(context.Background(), shards,
		func(_ context.Context, s int) (*Result, error) {
			lo, hi := shardBounds(n, shards, s)
			sb := Burst{
				Demand:           b.Demand,
				Functions:        minInt(hi*b.Degree, b.Functions) - lo*b.Degree,
				Degree:           b.Degree,
				Warm:             clampInt(b.Warm-lo, 0, hi-lo),
				StaggerSec:       b.StaggerSec,
				arrivalOffsetSec: float64(lo) * b.StaggerSec,
				Seed:             parallel.TaskSeed(b.Seed, s),
				Label:            b.Label,
			}
			if recording {
				recs[s] = &obs.Memory{}
				sb.Recorder = recs[s]
			}
			return Run(cfg, sb)
		},
		parallel.Workers(sh.Workers))
	if err != nil {
		return nil, err
	}
	res := mergeShardResults(cfg, results, func(s int) int { lo, _ := shardBounds(n, shards, s); return lo })
	res.Burst = b
	if recording {
		replayShardRecords(b.Recorder, recs, func(s int) int { lo, _ := shardBounds(n, shards, s); return lo }, obs.BurstInfo{
			Platform: cfg.Name, Label: b.Label,
			Functions: b.Functions, Degree: b.Degree, Instances: n,
		})
	}
	return res, nil
}

// RunMixedSharded is RunSharded for heterogeneous bursts: bins are split
// into contiguous shard ranges, everything else follows the same contract.
func RunMixedSharded(cfg Config, m MixedBurst, sh Sharding) (*Result, error) {
	if err := m.Validate(cfg.Shape); err != nil {
		return nil, err
	}
	n := len(m.Bins)
	shards := sh.Shards
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		return RunMixed(cfg, m)
	}

	recording := m.Recorder != nil
	recs := make([]*obs.Memory, shards)
	results, err := parallel.Map(context.Background(), shards,
		func(_ context.Context, s int) (*Result, error) {
			lo, hi := shardBounds(n, shards, s)
			sm := MixedBurst{
				Bins:             m.Bins[lo:hi],
				Warm:             clampInt(m.Warm-lo, 0, hi-lo),
				StaggerSec:       m.StaggerSec,
				arrivalOffsetSec: float64(lo) * m.StaggerSec,
				Seed:             parallel.TaskSeed(m.Seed, s),
				Label:            m.Label,
				// The shard goroutines are the fan-out; nested per-bin
				// worker pools would only oversubscribe.
				Workers: 1,
			}
			if recording {
				recs[s] = &obs.Memory{}
				sm.Recorder = recs[s]
			}
			return RunMixed(cfg, sm)
		},
		parallel.Workers(sh.Workers))
	if err != nil {
		return nil, err
	}
	res := mergeShardResults(cfg, results, func(s int) int { lo, _ := shardBounds(n, shards, s); return lo })
	res.Burst = Burst{
		Functions: m.Functions(), Degree: 0, Warm: m.Warm,
		StaggerSec: m.StaggerSec, Seed: m.Seed,
		Recorder: m.Recorder, Label: m.Label,
	}
	res.Bins = m.Bins
	if recording {
		replayShardRecords(m.Recorder, recs, func(s int) int { lo, _ := shardBounds(n, shards, s); return lo }, obs.BurstInfo{
			Platform: cfg.Name, Label: m.Label,
			Functions: m.Functions(), Instances: n,
		})
	}
	return res, nil
}

// mergeShardResults folds per-shard results into one, in shard order:
// timelines renumbered by each shard's base index, money and fault counters
// summed, busy time averaged across the cells (each cell's stations worked
// in parallel, so the mean is the per-cell load, comparable to a
// single-cell run's figure).
func mergeShardResults(cfg Config, results []*Result, baseOf func(s int) int) *Result {
	merged := &Result{Config: cfg}
	for s, r := range results {
		lo := baseOf(s)
		for _, t := range r.Timelines {
			t.Index += lo
			merged.Timelines = append(merged.Timelines, t)
		}
		merged.ComputeUSD += r.ComputeUSD
		merged.RequestUSD += r.RequestUSD
		merged.StorageUSD += r.StorageUSD
		merged.WastedUSD += r.WastedUSD
		merged.StartRetries += r.StartRetries
		merged.Crashes += r.Crashes
		merged.Timeouts += r.Timeouts
		merged.HedgesLaunched += r.HedgesLaunched
		merged.HedgesWon += r.HedgesWon
		merged.SchedBusySec += r.SchedBusySec
		merged.BuildBusySec += r.BuildBusySec
		merged.ShipBusySec += r.ShipBusySec
	}
	inv := 1 / float64(len(results))
	merged.SchedBusySec *= inv
	merged.BuildBusySec *= inv
	merged.ShipBusySec *= inv
	return merged
}

// replayShardRecords replays the shards' private recordings into the
// caller's recorder as one burst: a single BeginBurst, then every event
// across shards in global time order (ties broken by shard, then emission
// order — a deterministic merge independent of worker scheduling), then
// every span in shard order, which is global instance order. Instance
// indices are rebased from shard-local to global.
func replayShardRecords(rec obs.Recorder, recs []*obs.Memory, baseOf func(s int) int, info obs.BurstInfo) {
	rec.BeginBurst(info)
	type tagged struct {
		ev    obs.Event
		shard int
		ord   int
	}
	var events []tagged
	for s, m := range recs {
		lo := baseOf(s)
		for _, br := range m.Bursts() {
			for i, ev := range br.Events {
				ev.Instance += lo
				events = append(events, tagged{ev: ev, shard: s, ord: i})
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.ev.AtSec != b.ev.AtSec {
			return a.ev.AtSec < b.ev.AtSec
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.ord < b.ord
	})
	for _, t := range events {
		rec.Event(t.ev)
	}
	for s, m := range recs {
		lo := baseOf(s)
		for _, br := range m.Bursts() {
			for _, sp := range br.Spans {
				sp.Instance += lo
				rec.Span(sp)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String implements fmt.Stringer for error and log contexts.
func (s Sharding) String() string {
	return fmt.Sprintf("Sharding{Shards: %d, Workers: %d}", s.Shards, s.Workers)
}
