package stats

import (
	"fmt"
	"math"
)

// ChiSquareStat computes the Pearson χ² statistic
//
//	Σ (observedᵢ − expectedᵢ)² / expectedᵢ
//
// used by ProPack (Sec. 2.4) to validate its analytical models against
// measured service times and expenses. Expected values must be positive.
func ChiSquareStat(observed, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(observed), len(expected))
	}
	if len(observed) == 0 {
		return 0, fmt.Errorf("stats: empty χ² input")
	}
	var stat float64
	for i, e := range expected {
		// `!(e > 0)` also rejects NaN, which the natural `e <= 0` guard
		// silently admits (NaN comparisons are false) — a NaN expected value
		// used to flow through and return a NaN statistic with a nil error.
		if !(e > 0) || math.IsInf(e, 1) {
			return 0, fmt.Errorf("stats: expected value must be positive and finite, got %g at index %d", e, i)
		}
		if o := observed[i]; !finite(o) {
			return 0, fmt.Errorf("%w: observed[%d] = %g", ErrNonFinite, i, o)
		}
		d := observed[i] - e
		stat += d * d / e
	}
	if !finite(stat) {
		return 0, fmt.Errorf("%w: χ² statistic %g (overflow)", ErrNonFinite, stat)
	}
	return stat, nil
}

// ChiSquareCDF is the cumulative distribution function of the χ²
// distribution with k degrees of freedom, evaluated at x. It is the
// regularized lower incomplete gamma function P(k/2, x/2).
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 || k <= 0 {
		return 0
	}
	return regIncGammaLower(float64(k)/2, x/2)
}

// ChiSquareCritical returns the critical value x such that
// ChiSquareCDF(x, k) = p, found by bisection. With the paper's setup —
// k = 14 and a left-tail mass of 0.005 (99.5% confidence that the model and
// observation distributions agree) — it returns ≈ 4.075.
func ChiSquareCritical(p float64, k int) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, 1.0
	for ChiSquareCDF(hi, k) < p {
		hi *= 2
		if hi > 1e9 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ChiSquareCDF(mid, k) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// GoodnessOfFit bundles the outcome of a χ² test.
type GoodnessOfFit struct {
	Stat     float64 // Pearson χ² statistic
	DF       int     // degrees of freedom
	Critical float64 // critical value at the requested confidence
	Accepted bool    // Stat ≤ Critical: models and observations agree
}

// ChiSquareTest runs the paper's goodness-of-fit procedure: compute the χ²
// statistic for observed vs model-expected values and compare it against the
// critical value at the given left-tail probability (the paper uses
// p = 0.005, i.e. 99.5% confidence) with df degrees of freedom.
func ChiSquareTest(observed, expected []float64, df int, leftTail float64) (GoodnessOfFit, error) {
	if df < 1 {
		return GoodnessOfFit{}, fmt.Errorf("stats: degrees of freedom %d < 1", df)
	}
	// NaN left-tail masses would silently bisect to a critical value of ~0;
	// `!(leftTail > 0)` rejects NaN along with non-positive masses.
	if !(leftTail > 0) || leftTail >= 1 {
		return GoodnessOfFit{}, fmt.Errorf("stats: left-tail mass %g outside (0, 1)", leftTail)
	}
	stat, err := ChiSquareStat(observed, expected)
	if err != nil {
		return GoodnessOfFit{}, err
	}
	crit := ChiSquareCritical(leftTail, df)
	return GoodnessOfFit{Stat: stat, DF: df, Critical: crit, Accepted: stat <= crit}, nil
}

// regIncGammaLower computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) using the series expansion for x < a+1 and the
// continued fraction for the upper function otherwise (Numerical Recipes
// style, with Lentz's algorithm).
func regIncGammaLower(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
