package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator) of xs.
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the q-th percentile (q in [0,100]) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
// The input is not modified.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

func percentileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary holds the order statistics ProPack reports for a set of
// per-instance measurements.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P95    float64
	StdDev float64
}

// Summarize computes a Summary over xs. It returns the zero Summary for an
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(xs),
		Median: percentileSorted(sorted, 50),
		P95:    percentileSorted(sorted, 95),
		StdDev: StdDev(xs),
	}
}

// ArgminInt returns the integer x in [lo, hi] minimizing f, scanning
// exhaustively (the packing-degree search space is tiny). Ties resolve to
// the smallest x. It panics if lo > hi.
func ArgminInt(lo, hi int, f func(int) float64) int {
	if lo > hi {
		panic("stats: ArgminInt with empty range")
	}
	best, bestVal := lo, f(lo)
	for x := lo + 1; x <= hi; x++ {
		if v := f(x); v < bestVal {
			best, bestVal = x, v
		}
	}
	return best
}
