package stats

import (
	"math"
	"testing"
)

func TestChiSquareStat(t *testing.T) {
	obs := []float64{10, 20, 30}
	exp := []float64{10, 20, 30}
	s, err := ChiSquareStat(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s, 0, 1e-12, "identical distributions")

	obs2 := []float64{12, 18, 30}
	s2, err := ChiSquareStat(obs2, exp)
	if err != nil {
		t.Fatal(err)
	}
	// (2²/10) + (2²/20) + 0 = 0.4 + 0.2 = 0.6
	approx(t, s2, 0.6, 1e-12, "hand-computed statistic")
}

func TestChiSquareStatErrors(t *testing.T) {
	if _, err := ChiSquareStat([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := ChiSquareStat(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ChiSquareStat([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero expected value accepted")
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Reference values from standard χ² tables.
	approx(t, ChiSquareCDF(3.841, 1), 0.95, 2e-4, "χ²(1) 95th")
	approx(t, ChiSquareCDF(5.991, 2), 0.95, 2e-4, "χ²(2) 95th")
	approx(t, ChiSquareCDF(23.685, 14), 0.95, 2e-4, "χ²(14) 95th")
	// k=2 has closed form CDF 1−exp(−x/2).
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		approx(t, ChiSquareCDF(x, 2), 1-math.Exp(-x/2), 1e-10, "closed form k=2")
	}
	if ChiSquareCDF(-1, 3) != 0 || ChiSquareCDF(0, 3) != 0 {
		t.Fatal("CDF should be 0 for x ≤ 0")
	}
}

// TestChiSquarePaperCriticalValue checks the exact constant the paper uses:
// with 14 degrees of freedom and 99.5% confidence, the critical value is
// 4.075 (Sec. 2.4).
func TestChiSquarePaperCriticalValue(t *testing.T) {
	crit := ChiSquareCritical(0.005, 14)
	approx(t, crit, 4.075, 5e-3, "paper's 14-dof critical value")
}

func TestChiSquareCriticalInverseOfCDF(t *testing.T) {
	for _, k := range []int{1, 5, 14, 30} {
		for _, p := range []float64{0.005, 0.05, 0.5, 0.95} {
			x := ChiSquareCritical(p, k)
			approx(t, ChiSquareCDF(x, k), p, 1e-9, "CDF(critical(p)) == p")
		}
	}
	if ChiSquareCritical(0, 5) != 0 {
		t.Fatal("p=0 critical should be 0")
	}
	if !math.IsInf(ChiSquareCritical(1, 5), 1) {
		t.Fatal("p=1 critical should be +Inf")
	}
}

func TestChiSquareTestVerdicts(t *testing.T) {
	exp := make([]float64, 15)
	obsGood := make([]float64, 15)
	obsBad := make([]float64, 15)
	for i := range exp {
		exp[i] = 100 + float64(i)
		obsGood[i] = exp[i] * 1.01 // 1% off: tiny χ²
		obsBad[i] = exp[i] * 2     // 100% off: huge χ²
	}
	good, err := ChiSquareTest(obsGood, exp, 14, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if !good.Accepted {
		t.Fatalf("close observations rejected: stat=%g crit=%g", good.Stat, good.Critical)
	}
	bad, err := ChiSquareTest(obsBad, exp, 14, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Accepted {
		t.Fatalf("wildly off observations accepted: stat=%g crit=%g", bad.Stat, bad.Critical)
	}
}

func TestRegIncGammaEdges(t *testing.T) {
	if !math.IsNaN(regIncGammaLower(-1, 2)) {
		t.Fatal("negative shape should be NaN")
	}
	if regIncGammaLower(2, 0) != 0 {
		t.Fatal("x=0 should be 0")
	}
	// P(a, x) → 1 as x → ∞.
	approx(t, regIncGammaLower(3, 1e3), 1, 1e-9, "upper limit")
}
