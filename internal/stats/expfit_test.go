package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 8, 13}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(0.3*x + 1.2)
	}
	m, err := ExpFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, m.Slope, 0.3, 1e-9, "slope")
	approx(t, m.Intercept, 1.2, 1e-9, "intercept")
	approx(t, m.At(10), math.Exp(4.2), 1e-6, "prediction")
}

func TestExpFitThroughOriginExact(t *testing.T) {
	xs := []float64{1, 2, 3, 5, 9}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(0.42 * x)
	}
	m, err := ExpFitThroughOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, m.Slope, 0.42, 1e-9, "slope")
	approx(t, m.Intercept, 0, 0, "intercept pinned at 0")
}

func TestExpFitRejectsNonPositive(t *testing.T) {
	if _, err := ExpFit([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Fatal("zero observation accepted")
	}
	if _, err := ExpFit([]float64{1, 2}, []float64{1, -2}); err == nil {
		t.Fatal("negative observation accepted")
	}
	if _, err := ExpFitThroughOrigin([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative observation accepted (origin fit)")
	}
}

func TestExpFitErrors(t *testing.T) {
	if _, err := ExpFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample accepted for 2-parameter fit")
	}
	if _, err := ExpFit([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := ExpFitThroughOrigin([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("degenerate abscissae accepted")
	}
}

func TestExpFitNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, ys := make([]float64, 500), make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i) / 25
		ys[i] = math.Exp(0.15*xs[i]+0.5) * (1 + rng.NormFloat64()*0.005)
	}
	m, err := ExpFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, m.Slope, 0.15, 0.01, "slope under noise")
	approx(t, m.Intercept, 0.5, 0.02, "intercept under noise")
}

// Property: the through-origin fit recovers a positive slope from monotone
// exponential data for any slope in a sensible range.
func TestExpFitThroughOriginProperty(t *testing.T) {
	f := func(s uint8) bool {
		slope := 0.01 + float64(s)/512 // (0.01, ~0.51)
		xs := []float64{1, 3, 5, 7, 11}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = math.Exp(slope * x)
		}
		m, err := ExpFitThroughOrigin(xs, ys)
		return err == nil && math.Abs(m.Slope-slope) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
