package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Residual-resampling bootstrap for the two fits ProPack relies on. The
// paper validates its models with a χ² test after the fact; confidence
// intervals on the fitted parameters answer the prior question — how much
// the few profiling samples actually pin the model down.

// CI is a two-sided percentile confidence interval.
type CI struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

func (c CI) String() string { return fmt.Sprintf("[%.4g, %.4g]", c.Lo, c.Hi) }

// percentileCI extracts the central `conf` mass of sorted bootstrap
// replicates.
func percentileCI(replicates []float64, conf float64) CI {
	sort.Float64s(replicates)
	alpha := (1 - conf) / 2
	return CI{
		Lo: percentileSorted(replicates, 100*alpha),
		Hi: percentileSorted(replicates, 100*(1-alpha)),
	}
}

// ExpFitBootstrap fits y = exp(a·x + b) and bootstrap-resamples the
// log-space residuals to produce confidence intervals for a and b at the
// given confidence level (e.g. 0.95). iters ≥ 100 recommended.
func ExpFitBootstrap(xs, ys []float64, iters int, conf float64, seed int64) (m ExpModel, slope, intercept CI, err error) {
	if iters < 10 {
		return ExpModel{}, CI{}, CI{}, fmt.Errorf("stats: bootstrap needs ≥10 iterations, have %d", iters)
	}
	if conf <= 0 || conf >= 1 {
		return ExpModel{}, CI{}, CI{}, fmt.Errorf("stats: confidence %g outside (0,1)", conf)
	}
	m, err = ExpFit(xs, ys)
	if err != nil {
		return ExpModel{}, CI{}, CI{}, err
	}
	n := len(xs)
	resid := make([]float64, n)
	for i := range xs {
		resid[i] = math.Log(ys[i]) - (m.Slope*xs[i] + m.Intercept)
	}
	rng := rand.New(rand.NewSource(seed))
	slopes := make([]float64, 0, iters)
	intercepts := make([]float64, 0, iters)
	synth := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range synth {
			synth[i] = math.Exp(m.Slope*xs[i] + m.Intercept + resid[rng.Intn(n)])
		}
		bm, err := ExpFit(xs, synth)
		if err != nil {
			continue // degenerate resample; skip
		}
		slopes = append(slopes, bm.Slope)
		intercepts = append(intercepts, bm.Intercept)
	}
	if len(slopes) < iters/2 {
		return ExpModel{}, CI{}, CI{}, fmt.Errorf("stats: too many degenerate bootstrap resamples")
	}
	return m, percentileCI(slopes, conf), percentileCI(intercepts, conf), nil
}

// PolyFitBootstrap fits a degree-d polynomial and bootstrap-resamples the
// residuals to produce a confidence interval per coefficient.
func PolyFitBootstrap(xs, ys []float64, degree, iters int, conf float64, seed int64) (Poly, []CI, error) {
	if iters < 10 {
		return nil, nil, fmt.Errorf("stats: bootstrap needs ≥10 iterations, have %d", iters)
	}
	if conf <= 0 || conf >= 1 {
		return nil, nil, fmt.Errorf("stats: confidence %g outside (0,1)", conf)
	}
	p, err := PolyFit(xs, ys, degree)
	if err != nil {
		return nil, nil, err
	}
	n := len(xs)
	resid := make([]float64, n)
	for i := range xs {
		resid[i] = ys[i] - p.At(xs[i])
	}
	rng := rand.New(rand.NewSource(seed))
	replicates := make([][]float64, degree+1)
	synth := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range synth {
			synth[i] = p.At(xs[i]) + resid[rng.Intn(n)]
		}
		bp, err := PolyFit(xs, synth, degree)
		if err != nil {
			continue
		}
		for c := range bp {
			replicates[c] = append(replicates[c], bp[c])
		}
	}
	if len(replicates[0]) < iters/2 {
		return nil, nil, fmt.Errorf("stats: too many degenerate bootstrap resamples")
	}
	cis := make([]CI, degree+1)
	for c := range cis {
		cis[c] = percentileCI(replicates[c], conf)
	}
	return p, cis, nil
}
