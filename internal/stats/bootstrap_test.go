package stats

import (
	"math"
	"math/rand"
	"testing"
)

func noisyExpData(slope, intercept, noise float64, n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		x := float64(i) + 1
		xs = append(xs, x)
		ys = append(ys, math.Exp(slope*x+intercept+rng.NormFloat64()*noise))
	}
	return xs, ys
}

// TestExpFitBootstrapCoverage checks the statistical property that matters:
// across many noisy datasets, the 95% slope interval covers the true slope
// most of the time (a single dataset can legitimately miss).
func TestExpFitBootstrapCoverage(t *testing.T) {
	const slope, intercept = 0.12, 2.0
	const trials = 40
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs, ys := noisyExpData(slope, intercept, 0.02, 20, int64(trial))
		m, sCI, iCI, err := ExpFitBootstrap(xs, ys, 200, 0.95, int64(trial)+1000)
		if err != nil {
			t.Fatal(err)
		}
		if sCI.Lo >= sCI.Hi || iCI.Lo >= iCI.Hi {
			t.Fatalf("degenerate intervals %v %v", sCI, iCI)
		}
		if !sCI.Contains(m.Slope) {
			t.Fatal("interval must contain its own point estimate")
		}
		if sCI.Hi-sCI.Lo > 0.05 {
			t.Fatalf("slope CI too wide: %v", sCI)
		}
		if sCI.Contains(slope) {
			covered++
		}
	}
	// Nominal 95%; demand ≥ 80% to keep the test robust.
	if covered < trials*8/10 {
		t.Fatalf("slope coverage %d/%d, want ≥%d", covered, trials, trials*8/10)
	}
}

func TestExpFitBootstrapNoiselessIsTight(t *testing.T) {
	xs, ys := noisyExpData(0.2, 1, 0, 10, 4)
	_, sCI, _, err := ExpFitBootstrap(xs, ys, 100, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sCI.Hi-sCI.Lo > 1e-9 {
		t.Fatalf("noiseless CI should collapse: %v", sCI)
	}
}

func TestPolyFitBootstrapCoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var xs, ys []float64
	truth := Poly{-2, 0.05, 3e-5}
	for i := 0; i < 25; i++ {
		x := float64(i) * 200
		xs = append(xs, x)
		ys = append(ys, truth.At(x)+rng.NormFloat64()*0.5)
	}
	p, cis, err := PolyFitBootstrap(xs, ys, 2, 400, 0.95, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cis) != 3 {
		t.Fatalf("got %d intervals", len(cis))
	}
	for c, ci := range cis {
		if !ci.Contains(truth[c]) {
			t.Fatalf("coefficient %d CI %v misses truth %g (fit %g)", c, ci, truth[c], p[c])
		}
	}
}

func TestBootstrapValidation(t *testing.T) {
	xs, ys := noisyExpData(0.1, 1, 0.01, 10, 1)
	if _, _, _, err := ExpFitBootstrap(xs, ys, 5, 0.95, 1); err == nil {
		t.Fatal("too few iterations accepted")
	}
	if _, _, _, err := ExpFitBootstrap(xs, ys, 100, 1.5, 1); err == nil {
		t.Fatal("bad confidence accepted")
	}
	if _, _, err := PolyFitBootstrap(xs, ys, 2, 5, 0.95, 1); err == nil {
		t.Fatal("too few iterations accepted")
	}
	if _, _, err := PolyFitBootstrap(xs, ys, 2, 100, 0, 1); err == nil {
		t.Fatal("bad confidence accepted")
	}
}

func TestCIHelpers(t *testing.T) {
	ci := CI{Lo: 1, Hi: 2}
	if !ci.Contains(1.5) || ci.Contains(0.5) || ci.Contains(2.5) {
		t.Fatal("Contains wrong")
	}
	if ci.String() == "" {
		t.Fatal("empty string")
	}
}
