package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-th percentile of xs (q in (0, 100]) under the
// ceil-rank convention shared by the simulator's and the local runtime's
// service-time metrics: the value at index ⌈q/100·n⌉−1 of the sorted data.
// xs is not modified; q outside the range clamps to the nearest element.
// It panics on empty input — quantiles of nothing are a caller bug.
func Quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile over data already in ascending order, for
// callers that take several quantiles of one dataset.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty data")
	}
	return sorted[QuantileIndex(len(sorted), q)]
}

// QuantileIndex returns the ceil-rank index ⌈q/100·n⌉−1 clamped to [0, n).
func QuantileIndex(n int, q float64) int {
	idx := int(math.Ceil(q/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
