package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (±%g)", msg, got, want, tol)
	}
}

func TestPolyFitExactQuadratic(t *testing.T) {
	// y = 3 - 2x + 0.5x² should be recovered exactly from noiseless data.
	xs := []float64{0, 1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 - 2*x + 0.5*x*x
	}
	p, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, p[0], 3, 1e-9, "c0")
	approx(t, p[1], -2, 1e-9, "c1")
	approx(t, p[2], 0.5, 1e-9, "c2")
}

func TestPolyFitLinearThroughNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs, ys := make([]float64, 200), make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 10 + 2.5*xs[i] + rng.NormFloat64()*0.01
	}
	p, err := PolyFit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, p[0], 10, 0.05, "intercept")
	approx(t, p[1], 2.5, 0.01, "slope")
}

func TestPolyFitDegreeZeroIsMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	p, err := PolyFit(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, p[0], 5, 1e-12, "constant fit")
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Fatal("negative degree accepted")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 2); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
	// All x identical → singular Vandermonde for degree ≥ 1.
	if _, err := PolyFit([]float64{2, 2, 2}, []float64{1, 2, 3}, 1); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestPolyAtHorner(t *testing.T) {
	p := Poly{1, 0, -2, 1} // 1 - 2x² + x³
	approx(t, p.At(0), 1, 1e-12, "at 0")
	approx(t, p.At(2), 1-8+8, 1e-12, "at 2")
	approx(t, p.At(-1), 1-2-1, 1e-12, "at -1")
	var zero Poly
	if zero.At(5) != 0 {
		t.Fatal("empty poly should evaluate to 0")
	}
	if zero.Degree() != 0 || p.Degree() != 3 {
		t.Fatal("degree reporting wrong")
	}
}

// Property: for any non-degenerate quadratic data, PolyFit residuals of the
// correct-degree fit are ~0.
func TestPolyFitRecoveryProperty(t *testing.T) {
	f := func(a, b, c int8) bool {
		ca, cb, cc := float64(a)/8, float64(b)/8, float64(c)/8
		xs := []float64{-3, -1, 0, 1, 2, 4, 7}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = ca + cb*x + cc*x*x
		}
		p, err := PolyFit(xs, ys, 2)
		if err != nil {
			return false
		}
		for i, x := range xs {
			if math.Abs(p.At(x)-ys[i]) > 1e-6*(1+math.Abs(ys[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRSquared(t *testing.T) {
	ys := []float64{1, 2, 3, 4}
	approx(t, RSquared(ys, ys), 1, 1e-12, "perfect prediction")
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	approx(t, RSquared(ys, mean), 0, 1e-12, "mean prediction")
	if !math.IsNaN(RSquared(nil, nil)) {
		t.Fatal("empty input should be NaN")
	}
	const5 := []float64{5, 5, 5}
	approx(t, RSquared(const5, const5), 1, 1e-12, "constant observed, perfect")
	if RSquared(const5, []float64{5, 5, 6}) != 0 {
		t.Fatal("constant observed, imperfect prediction should be 0")
	}
}
