// Package stats provides the numerical substrate for ProPack's analytical
// models: least-squares polynomial and exponential fits, the Pearson χ²
// goodness-of-fit test, and order statistics over run metrics.
//
// Everything is implemented on top of the standard library so the module can
// be built offline; the solvers are small, dense, and deterministic.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnderdetermined is returned when a fit is requested with fewer samples
// than free parameters.
var ErrUnderdetermined = errors.New("stats: fewer samples than free parameters")

// ErrSingular is returned when the normal equations of a fit are singular,
// e.g. because all sample abscissae coincide.
var ErrSingular = errors.New("stats: singular system (degenerate samples)")

// ErrNonFinite is returned when a fit or test receives a NaN or ±Inf sample,
// or when intermediate arithmetic overflows so badly the result would carry
// non-finite coefficients. Surfaced by fuzzing: NaN inputs previously slid
// through the `<= 0` style guards (NaN compares false against everything)
// and produced NaN models without any error.
var ErrNonFinite = errors.New("stats: non-finite sample or result")

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// checkFinite returns ErrNonFinite (with context) on the first non-finite
// value in vs.
func checkFinite(what string, vs []float64) error {
	for i, v := range vs {
		if !finite(v) {
			return fmt.Errorf("%w: %s[%d] = %g", ErrNonFinite, what, i, v)
		}
	}
	return nil
}

// Poly is a polynomial c[0] + c[1]·x + c[2]·x² + … with coefficients in
// ascending-degree order.
type Poly []float64

// At evaluates the polynomial at x using Horner's scheme.
func (p Poly) At(x float64) float64 {
	var y float64
	for i := len(p) - 1; i >= 0; i-- {
		y = y*x + p[i]
	}
	return y
}

// Degree reports the nominal degree of the polynomial (len-1); the zero
// polynomial has degree 0.
func (p Poly) Degree() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

func (p Poly) String() string {
	s := ""
	for i, c := range p {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%.6g·x^%d", c, i)
	}
	return s
}

// PolyFit fits a polynomial of the given degree to the points (xs[i], ys[i])
// by unweighted least squares. It solves the normal equations directly with
// Gaussian elimination and partial pivoting, which is ample for the low
// degrees (≤3) ProPack uses.
func PolyFit(xs, ys []float64, degree int) (Poly, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: mismatched sample lengths %d vs %d", len(xs), len(ys))
	}
	if degree < 0 {
		return nil, fmt.Errorf("stats: negative degree %d", degree)
	}
	n := degree + 1
	if len(xs) < n {
		return nil, fmt.Errorf("%w: need %d samples for degree %d, have %d",
			ErrUnderdetermined, n, degree, len(xs))
	}
	if err := checkFinite("x", xs); err != nil {
		return nil, err
	}
	if err := checkFinite("y", ys); err != nil {
		return nil, err
	}
	// Build the normal equations AᵀA c = Aᵀy where A is the Vandermonde
	// matrix. AᵀA[i][j] = Σ x^(i+j), Aᵀy[i] = Σ y·x^i.
	pow := make([]float64, 2*n-1)
	rhs := make([]float64, n)
	for k, x := range xs {
		xp := 1.0
		for i := 0; i < len(pow); i++ {
			if i < n {
				rhs[i] += ys[k] * xp
			}
			pow[i] += xp
			xp *= x
		}
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			m[i][j] = pow[i+j]
		}
		m[i][n] = rhs[i]
	}
	c, err := solveAugmented(m)
	if err != nil {
		return nil, err
	}
	// Finite inputs can still overflow the power sums (|x| ≈ 1e200 squares
	// past MaxFloat64), leaving Inf/NaN in the normal equations that survive
	// the pivot check. Refuse to hand back a poisoned model.
	if err := checkFinite("coefficient", c); err != nil {
		return nil, err
	}
	return Poly(c), nil
}

// solveAugmented solves the augmented system [A|b] in place by Gaussian
// elimination with partial pivoting and returns the solution vector.
func solveAugmented(m [][]float64) ([]float64, error) {
	n := len(m)
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in this column at or below the diagonal.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x, nil
}

// RSquared reports the coefficient of determination of predictions preds
// against observations ys: 1 − SS_res/SS_tot. A constant observation vector
// yields 1 when perfectly predicted and 0 otherwise.
func RSquared(ys, preds []float64) float64 {
	if len(ys) != len(preds) || len(ys) == 0 {
		return math.NaN()
	}
	mean := Mean(ys)
	var ssRes, ssTot float64
	for i, y := range ys {
		d := y - preds[i]
		ssRes += d * d
		t := y - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
