package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "mean")
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("mean of empty should be NaN")
	}
	approx(t, StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935, 1e-6, "sample stddev")
	if StdDev([]float64{42}) != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	approx(t, Percentile(xs, 0), 15, 1e-12, "p0")
	approx(t, Percentile(xs, 100), 50, 1e-12, "p100")
	approx(t, Percentile(xs, 50), 35, 1e-12, "median odd")
	approx(t, Percentile(xs, 25), 20, 1e-12, "p25 exact rank")
	// Interpolated: rank = 0.4*4 = 1.6 → 20 + 0.6*(35-20) = 29.
	approx(t, Percentile(xs, 40), 29, 1e-12, "p40 interpolated")
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("percentile of empty should be NaN")
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
	approx(t, Median([]float64{1, 2, 3, 4}), 2.5, 1e-12, "median even")
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad extrema: %+v", s)
	}
	approx(t, s.Mean, 3, 1e-12, "mean")
	approx(t, s.Median, 3, 1e-12, "median")
	empty := Summarize(nil)
	if empty.N != 0 || empty.Max != 0 {
		t.Fatal("empty summary should be zero value")
	}
}

// Property: percentiles are monotone in q and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(n uint8) bool {
		size := int(n)%50 + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sorted := make([]float64, size)
		copy(sorted, xs)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 100; q += 7 {
			p := Percentile(xs, q)
			if p < prev-1e-9 || p < sorted[0]-1e-9 || p > sorted[size-1]+1e-9 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArgminInt(t *testing.T) {
	got := ArgminInt(1, 40, func(x int) float64 {
		d := float64(x) - 17.2
		return d * d
	})
	if got != 17 {
		t.Fatalf("argmin = %d, want 17", got)
	}
	// Ties resolve to the smallest index.
	got = ArgminInt(1, 10, func(x int) float64 { return 1 })
	if got != 1 {
		t.Fatalf("tie should resolve low, got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty range should panic")
		}
	}()
	ArgminInt(5, 4, func(int) float64 { return 0 })
}
