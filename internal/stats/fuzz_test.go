package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeFloats reinterprets the fuzz payload as little-endian float64s.
// Trailing bytes short of a full word are ignored; any bit pattern is a
// valid float64, so the fuzzer reaches NaN/±Inf/subnormals without help.
func decodeFloats(data []byte) []float64 {
	out := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return out
}

// encodeFloats is decodeFloats' inverse, used to build seed inputs.
func encodeFloats(vs ...float64) []byte {
	out := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// splitXY halves the decoded floats into equal-length abscissae and
// ordinates.
func splitXY(vs []float64) (xs, ys []float64) {
	n := len(vs) / 2
	return vs[:n], vs[n : 2*n]
}

// FuzzExpFit asserts ExpFit and ExpFitThroughOrigin never panic and never
// return a model with non-finite parameters alongside a nil error. The NaN
// corpus seed reproduces the pre-fix bug: NaN observations passed the
// `y <= 0` guard and produced a NaN slope with no error.
func FuzzExpFit(f *testing.F) {
	f.Add(encodeFloats(1, 2, 3, 2.5, 6.2, 15.8))       // clean exponential-ish data
	f.Add(encodeFloats(1, 2, math.NaN(), 1))           // NaN observation (the historical bug)
	f.Add(encodeFloats(math.Inf(1), 1, 2, 3))          // Inf abscissa
	f.Add(encodeFloats(1e300, -1e300, 1, 1))           // overflowing power sums
	f.Add(encodeFloats(0, 0, 1, 2))                    // coincident xs: singular
	f.Add(encodeFloats(1, 2, 0, 5))                    // non-positive observation
	f.Add(encodeFloats(1, 2, 5e-324, math.MaxFloat64)) // subnormal + extreme magnitude
	f.Fuzz(func(t *testing.T, data []byte) {
		xs, ys := splitXY(decodeFloats(data))
		if m, err := ExpFit(xs, ys); err == nil {
			if !finite(m.Slope) || !finite(m.Intercept) {
				t.Fatalf("ExpFit(%v, %v) = %+v with nil error", xs, ys, m)
			}
		}
		if m, err := ExpFitThroughOrigin(xs, ys); err == nil {
			if !finite(m.Slope) || !finite(m.Intercept) {
				t.Fatalf("ExpFitThroughOrigin(%v, %v) = %+v with nil error", xs, ys, m)
			}
		}
	})
}

// FuzzPolyFit asserts PolyFit never panics and a nil error implies finite
// coefficients of the requested arity, for degrees 0–4 chosen by the first
// payload byte.
func FuzzPolyFit(f *testing.F) {
	f.Add([]byte{1}) // degree 1, no samples: underdetermined
	f.Add(append([]byte{2}, encodeFloats(1, 2, 3, 4, 2, 5, 10, 17)...))
	f.Add(append([]byte{1}, encodeFloats(1, 2, math.NaN(), 4)...))           // NaN ordinate (historical bug)
	f.Add(append([]byte{3}, encodeFloats(1e155, 2e155, -1e155, 1, 2, 3)...)) // overflow
	f.Add(append([]byte{0}, encodeFloats(5, 5)...))
	f.Add(append([]byte{4}, encodeFloats(1, 1, 1, 1, 1, 2, 3, 4, 5, 6)...)) // coincident xs
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		degree := int(data[0] % 5)
		xs, ys := splitXY(decodeFloats(data[1:]))
		poly, err := PolyFit(xs, ys, degree)
		if err != nil {
			return
		}
		if len(poly) != degree+1 {
			t.Fatalf("PolyFit degree %d returned %d coefficients", degree, len(poly))
		}
		for i, c := range poly {
			if !finite(c) {
				t.Fatalf("PolyFit(%v, %v, %d) coefficient %d = %g with nil error", xs, ys, degree, i, c)
			}
		}
	})
}

// FuzzChi2 asserts the χ² path never panics, and a nil error implies a
// finite non-negative statistic and a sane test verdict. The NaN-expected
// seed reproduces the pre-fix bug: NaN passed the `e <= 0` guard and
// yielded a NaN statistic with a nil error.
func FuzzChi2(f *testing.F) {
	f.Add(byte(14), encodeFloats(0.005, 10, 11, 12, 10.5, 10.2, 12.3))
	f.Add(byte(14), encodeFloats(0.005, 10, math.NaN())) // NaN expected (the historical bug)
	f.Add(byte(1), encodeFloats(math.NaN(), 1, 1))       // NaN left tail
	f.Add(byte(0), encodeFloats(0.5, 1, 1))              // zero degrees of freedom
	f.Add(byte(5), encodeFloats(0.995, 1e300, 5e-324))   // extreme magnitudes
	f.Add(byte(3), encodeFloats(0.5, -4, 2))             // negative observed is fine; negative expected is not
	f.Fuzz(func(t *testing.T, df byte, data []byte) {
		vs := decodeFloats(data)
		if len(vs) == 0 {
			return
		}
		leftTail := vs[0]
		observed, expected := splitXY(vs[1:])

		if stat, err := ChiSquareStat(observed, expected); err == nil {
			if !finite(stat) || stat < 0 {
				t.Fatalf("ChiSquareStat(%v, %v) = %g with nil error", observed, expected, stat)
			}
		}
		got, err := ChiSquareTest(observed, expected, int(df), leftTail)
		if err != nil {
			return
		}
		if !finite(got.Stat) || got.Stat < 0 {
			t.Fatalf("ChiSquareTest stat %g with nil error", got.Stat)
		}
		if math.IsNaN(got.Critical) || got.Critical < 0 {
			t.Fatalf("ChiSquareTest critical %g with nil error", got.Critical)
		}
		if got.Accepted != (got.Stat <= got.Critical) {
			t.Fatalf("ChiSquareTest verdict inconsistent: %+v", got)
		}
	})
}
