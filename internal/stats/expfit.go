package stats

import (
	"fmt"
	"math"
)

// ExpModel is the exponential execution-time model of ProPack's Eq. 1:
//
//	y(x) = exp(Slope·x + Intercept)
//
// For the paper-exact form, x is Mfunc·P and Intercept is zero; the
// intercept variant generalizes the model so ET(1) is not pinned to
// exp(Slope·Mfunc).
type ExpModel struct {
	Slope     float64
	Intercept float64
}

// At evaluates the model at x.
func (m ExpModel) At(x float64) float64 {
	return math.Exp(m.Slope*x + m.Intercept)
}

func (m ExpModel) String() string {
	return fmt.Sprintf("exp(%.6g·x %+.6g)", m.Slope, m.Intercept)
}

// checkExpObservation rejects observations the log transform cannot take.
// Non-finite values (NaN, ±Inf) unwrap to ErrNonFinite so callers can tell
// poisoned measurements apart from merely out-of-domain ones; finite
// non-positive values stay a plain domain error. The `!(y > 0)` form is
// deliberate: NaN fails it too, unlike `y <= 0`, which lets NaN through
// (NaN comparisons are always false).
func checkExpObservation(y float64, i int) error {
	if !(y > 0) || math.IsInf(y, 1) {
		if !finite(y) {
			return fmt.Errorf("%w: exponential fit observation %g at index %d", ErrNonFinite, y, i)
		}
		return fmt.Errorf("stats: exponential fit requires positive observations, got %g at index %d", y, i)
	}
	return nil
}

// ExpFit fits y = exp(a·x + b) by linear least squares on (x, ln y).
// All ys must be strictly positive.
func ExpFit(xs, ys []float64) (ExpModel, error) {
	if len(xs) != len(ys) {
		return ExpModel{}, fmt.Errorf("stats: mismatched sample lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return ExpModel{}, fmt.Errorf("%w: exponential fit needs ≥2 samples, have %d", ErrUnderdetermined, len(xs))
	}
	logs := make([]float64, len(ys))
	for i, y := range ys {
		if err := checkExpObservation(y, i); err != nil {
			return ExpModel{}, err
		}
		logs[i] = math.Log(y)
	}
	line, err := PolyFit(xs, logs, 1)
	if err != nil {
		return ExpModel{}, err
	}
	return ExpModel{Slope: line[1], Intercept: line[0]}, nil
}

// ExpFitThroughOrigin fits the paper-exact one-parameter model
// y = exp(a·x), i.e. ln y = a·x with no intercept:
//
//	a = Σ xᵢ·ln yᵢ / Σ xᵢ²
//
// This is the literal form of Eq. 1; callers that need ET(1) to match the
// measured baseline should prefer ExpFit.
func ExpFitThroughOrigin(xs, ys []float64) (ExpModel, error) {
	if len(xs) != len(ys) {
		return ExpModel{}, fmt.Errorf("stats: mismatched sample lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 1 {
		return ExpModel{}, fmt.Errorf("%w: need ≥1 sample", ErrUnderdetermined)
	}
	if err := checkFinite("x", xs); err != nil {
		return ExpModel{}, err
	}
	var num, den float64
	for i, x := range xs {
		y := ys[i]
		if err := checkExpObservation(y, i); err != nil {
			return ExpModel{}, err
		}
		num += x * math.Log(y)
		den += x * x
	}
	if den == 0 {
		return ExpModel{}, ErrSingular
	}
	slope := num / den
	if !finite(slope) {
		// Overflowed accumulators (|x| near sqrt(MaxFloat64)) can yield
		// Inf/Inf here even though every sample was finite.
		return ExpModel{}, fmt.Errorf("%w: slope %g", ErrNonFinite, slope)
	}
	return ExpModel{Slope: slope}, nil
}
