package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileBasics(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Quantile(xs, 50); got != 3 {
		t.Fatalf("median = %g, want 3", got)
	}
	if got := Quantile(xs, 100); got != 5 {
		t.Fatalf("p100 = %g, want 5", got)
	}
	if got := Quantile(xs, 1); got != 1 {
		t.Fatalf("p1 = %g, want 1", got)
	}
	// Input must be untouched.
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantileIndexMatchesCeilRank(t *testing.T) {
	for n := 1; n <= 200; n++ {
		for _, q := range []float64{1, 25, 50, 95, 99, 100} {
			want := int(math.Ceil(q/100*float64(n))) - 1
			if want < 0 {
				want = 0
			}
			if want >= n {
				want = n - 1
			}
			if got := QuantileIndex(n, q); got != want {
				t.Fatalf("QuantileIndex(%d, %g) = %d, want %d", n, q, got, want)
			}
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		med, tail, top := Quantile(xs, 50), Quantile(xs, 95), Quantile(xs, 100)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return med <= tail && tail <= top && top == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("quantile of empty data should panic")
		}
	}()
	Quantile(nil, 50)
}
