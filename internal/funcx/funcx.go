// Package funcx models FuncX, the on-premise federated function-serving
// fabric for science (Chard et al., HPDC '20) that the paper evaluates as an
// HTC/HPC-focused alternative to commercial clouds (Fig. 18).
//
// FuncX differs from AWS Lambda in the ways the paper measures:
//
//   - Workers are spawned inside Kubernetes pods on a fixed cluster, and
//     multiple workers share one pod, so the pod's container pull is paid
//     once per pod rather than once per instance (PodSize).
//   - Kubernetes' container caching makes image builds cheap, and shipping
//     stays inside the cluster network — so FuncX scales ~15% faster than
//     Lambda at a concurrency of 5000.
//   - Pods isolate co-resident work less well than Firecracker microVMs, so
//     packed execution runs ~12% slower than on Lambda (IsolationFactor) —
//     which is why ProPack's service-time gains are larger on Lambda.
//
// The paper's testbed is a 100-node EC2 cluster (r5.2xlarge/r5.4xlarge,
// 1000 cores, 20,608 GB RAM); Cluster describes it, and the billing fields
// of Config charge EC2-equivalent prices rather than serverless ones.
package funcx

import "repro/internal/platform"

// Cluster describes the paper's FuncX deployment (Sec. 3).
type Cluster struct {
	Nodes    int
	Cores    int
	MemoryGB int
}

// PaperCluster is the 100-node EC2 cluster used in the paper's evaluation.
func PaperCluster() Cluster {
	return Cluster{Nodes: 100, Cores: 1000, MemoryGB: 20608}
}

// PodSize is the number of FuncX workers co-located in one Kubernetes pod.
const PodSize = 8

// Config returns the simulated FuncX platform. It reuses the generic
// control-plane model with FuncX's pod semantics and cluster-local costs.
func Config() platform.Config {
	c := platform.AWSLambda()
	c.Name = "FuncX"
	// Pods isolate less well than Firecracker: packed functions interfere
	// slightly more, so identical packed work runs slower (paper Fig. 18).
	c.Shape.IsolationFactor = 1.12
	// Placement over a fixed, known cluster is a cheaper search than over a
	// shared datacenter, and container caching + cluster-local shipping
	// shrink the image path.
	c.SchedBaseSec = 0.085
	c.SchedPerBusySec = 40e-6
	c.BuildSec = 1.2
	c.BuildGrowthSec = 0.3e-3
	c.BuildServers = 64
	c.ShipSec = 0.004
	c.ShipGrowthSec = 4e-6
	c.ShipServers = 1
	c.BootSec = 0.25 // pod start: faster than a microVM boot chain
	c.WarmStartSec = 0.030
	c.PodSize = PodSize
	// On-premise accounting: EC2 node-hour prices amortized per GB·second
	// (r5.2xlarge: $0.504/h over 64 GB), no per-request or egress fees.
	c.GBSecondUSD = 2.2e-6
	c.PerRequestUSD = 0
	c.Storage.PutRequestUSD = 0
	c.Storage.GetRequestUSD = 0
	c.Storage.EgressPerGBUSD = 0
	c.StorageGBps = 0.4 // cluster-local shared filesystem
	c.MaxExecSec = 86400
	return c
}
