package funcx

import (
	"testing"

	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/workload"
)

func TestConfigValid(t *testing.T) {
	if err := Config().Validate(); err != nil {
		t.Fatal(err)
	}
	c := PaperCluster()
	if c.Nodes != 100 || c.Cores != 1000 || c.MemoryGB != 20608 {
		t.Fatalf("cluster does not match the paper: %+v", c)
	}
}

// TestFuncXScalesFasterThanLambda reproduces paper Fig. 18's first finding:
// serverless workers spawned with FuncX scale faster than AWS Lambda at
// high concurrency (≈15% at C=5000).
func TestFuncXScalesFasterThanLambda(t *testing.T) {
	d := workload.Video{}.Demand()
	b := platform.Burst{Demand: d, Functions: 5000, Degree: 1, Seed: 1}
	fx, err := platform.Run(Config(), b)
	if err != nil {
		t.Fatal(err)
	}
	aws, err := platform.Run(platform.AWSLambda(), b)
	if err != nil {
		t.Fatal(err)
	}
	ratio := fx.ScalingTime() / aws.ScalingTime()
	if ratio > 0.95 || ratio < 0.6 {
		t.Fatalf("FuncX/Lambda scaling ratio %.2f, want ≈0.85 (15%% faster)", ratio)
	}
}

// TestPackedExecSlowerOnFuncX reproduces Fig. 18's second finding: packed
// execution is slower on FuncX than on Lambda because pods isolate
// co-resident work less well than Firecracker microVMs.
func TestPackedExecSlowerOnFuncX(t *testing.T) {
	d := workload.Video{}.Demand()
	b := platform.Burst{Demand: d, Functions: 16, Degree: 8, Seed: 2}
	fx, err := platform.Run(Config(), b)
	if err != nil {
		t.Fatal(err)
	}
	aws, err := platform.Run(platform.AWSLambda(), b)
	if err != nil {
		t.Fatal(err)
	}
	ratio := fx.MeanExecSeconds() / aws.MeanExecSeconds()
	if ratio < 1.05 || ratio > 1.25 {
		t.Fatalf("FuncX/Lambda packed exec ratio %.3f, want ≈1.12", ratio)
	}
}

// TestProPackOnFuncX runs the full pipeline against the FuncX platform:
// packing must pay off there too (paper: "ProPack is also effective in
// mitigating the scalability bottleneck of the FuncX framework").
func TestProPackOnFuncX(t *testing.T) {
	cfg := Config()
	d := workload.StatelessCost{}.Demand()
	const c = 2000
	run, err := orchestrator.RunProPack(cfg, d, c, core.Balanced(), 3)
	if err != nil {
		t.Fatal(err)
	}
	base, err := orchestrator.Execute(cfg, d, c, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if run.Plan.Degree < 2 {
		t.Fatalf("no packing chosen on FuncX: degree %d", run.Plan.Degree)
	}
	got := run.MetricsWithOverhead()
	if got.TotalService >= base.TotalService {
		t.Fatalf("ProPack no faster on FuncX: %g vs %g", got.TotalService, base.TotalService)
	}
	if got.ExpenseUSD >= base.ExpenseUSD {
		t.Fatalf("ProPack no cheaper on FuncX: $%g vs $%g", got.ExpenseUSD, base.ExpenseUSD)
	}
}
