package baseline

import (
	"testing"

	"repro/internal/interfere"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/workload"
)

func demand() interfere.Demand { return workload.Video{}.Demand() }

func TestNoPackingMatchesDegreeOne(t *testing.T) {
	cfg := platform.AWSLambda()
	m, err := NoPacking{}.Execute(cfg, demand(), 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := orchestrator.Execute(cfg, demand(), 200, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m != ref {
		t.Fatalf("NoPacking differs from raw degree-1 execution:\n%+v\n%+v", m, ref)
	}
	if m.Degree != 1 || m.Instances != 200 {
		t.Fatalf("wrong identity: %+v", m)
	}
}

func TestSerialBatchingTradesScalingForTurnaround(t *testing.T) {
	cfg := platform.AWSLambda()
	const c = 1000
	batched, err := SerialBatching{BatchSize: 100}.Execute(cfg, demand(), c, 2)
	if err != nil {
		t.Fatal(err)
	}
	burst, err := NoPacking{}.Execute(cfg, demand(), c, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Serialization hurts turnaround (the paper's argument against it)…
	if batched.TotalService <= burst.TotalService {
		t.Fatalf("batching should hurt turnaround at this scale: %g vs %g",
			batched.TotalService, burst.TotalService)
	}
	// …even though each wave's scaling is small, the last wave starts late.
	if batched.ScalingTime <= burst.ScalingTime {
		t.Fatalf("serial batching's last start should be later: %g vs %g",
			batched.ScalingTime, burst.ScalingTime)
	}
}

func TestSerialBatchingValidation(t *testing.T) {
	if _, err := (SerialBatching{}).Execute(platform.AWSLambda(), demand(), 10, 1); err == nil {
		t.Fatal("batch size 0 accepted")
	}
}

func TestStaggeredAvoidsCongestionButDelays(t *testing.T) {
	cfg := platform.AWSLambda()
	const c = 1000
	stag, err := Staggered{DelaySec: 0.5}.Execute(cfg, demand(), c, 3)
	if err != nil {
		t.Fatal(err)
	}
	burst, err := NoPacking{}.Execute(cfg, demand(), c, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The last instance cannot start before (C−1)·delay.
	if stag.ScalingTime < float64(c-1)*0.5 {
		t.Fatalf("stagger should delay the last start ≥%g, got %g", float64(c-1)*0.5, stag.ScalingTime)
	}
	// Severe service degradation versus the burst (Sec. 4's observation).
	if stag.TotalService <= burst.TotalService {
		t.Fatalf("staggering should degrade service at this delay: %g vs %g",
			stag.TotalService, burst.TotalService)
	}
}

func TestStaggeredValidation(t *testing.T) {
	if _, err := (Staggered{}).Execute(platform.AWSLambda(), demand(), 10, 1); err == nil {
		t.Fatal("zero delay accepted")
	}
}

func TestPywrenHelpsAtLowConcurrencyOnly(t *testing.T) {
	cfg := platform.AWSLambda()
	imp := func(c int) float64 {
		py, err := Pywren{}.Execute(cfg, demand(), c, 4)
		if err != nil {
			t.Fatal(err)
		}
		base, err := NoPacking{}.Execute(cfg, demand(), c, 4)
		if err != nil {
			t.Fatal(err)
		}
		return 1 - py.TotalService/base.TotalService
	}
	low := imp(400)   // pool covers the whole burst
	high := imp(5000) // pool covers 10%
	if low <= 0 {
		t.Fatalf("Pywren should help at low concurrency, improvement %g", low)
	}
	if high >= low {
		t.Fatalf("Pywren's advantage should fade at high concurrency: low=%g high=%g", low, high)
	}
}

func TestPywrenValidation(t *testing.T) {
	if _, err := (Pywren{WarmInstances: -1}).Execute(platform.AWSLambda(), demand(), 10, 1); err == nil {
		t.Fatal("negative pool accepted")
	}
	if _, err := (Pywren{IOSavings: 1.5}).Execute(platform.AWSLambda(), demand(), 10, 1); err == nil {
		t.Fatal("I/O savings ≥1 accepted")
	}
}

func TestOracleBeatsBaselineAndEndpoints(t *testing.T) {
	cfg := platform.AWSLambda()
	const c = 1500
	m, deg, err := Oracle{Objective: MinTotalService}.Search(cfg, demand(), c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if deg <= 1 {
		t.Fatalf("oracle at C=%d should pack, got degree %d", c, deg)
	}
	base, err := NoPacking{}.Execute(cfg, demand(), c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalService >= base.TotalService {
		t.Fatalf("oracle no better than baseline: %g vs %g", m.TotalService, base.TotalService)
	}
	// The oracle's metrics must equal re-running at its chosen degree.
	again, err := orchestrator.Execute(cfg, demand(), c, deg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalService != m.TotalService {
		t.Fatal("oracle metrics do not match its chosen degree")
	}
}

func TestOracleObjectivesDiffer(t *testing.T) {
	cfg := platform.AWSLambda()
	const c = 2000
	_, degS, err := Oracle{Objective: MinTotalService}.Search(cfg, demand(), c, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, degE, err := Oracle{Objective: MinExpense}.Search(cfg, demand(), c, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 15: the expense oracle packs more than the service oracle.
	if degE <= degS {
		t.Fatalf("expense oracle degree %d should exceed service oracle %d", degE, degS)
	}
	_, degB, err := Oracle{Objective: MinBalanced}.Search(cfg, demand(), c, 6)
	if err != nil {
		t.Fatal(err)
	}
	if degB < degS || degB > degE {
		t.Fatalf("balanced oracle %d outside [%d, %d]", degB, degS, degE)
	}
}

func TestSweepStopsAtExecLimit(t *testing.T) {
	cfg := platform.AWSLambda()
	d := workload.SmithWaterman{}.Demand() // compute-bound: high degrees exceed 900 s
	all, err := Sweep(cfg, d, 100, 7, cfg.Shape.MaxDegree(d))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("sweep empty")
	}
	if len(all) >= cfg.Shape.MaxDegree(d) {
		t.Fatalf("sweep should stop before the memory-bound max (%d), got %d runs",
			cfg.Shape.MaxDegree(d), len(all))
	}
	for i, m := range all {
		if m.Degree != i+1 {
			t.Fatalf("sweep not in degree order at %d: %+v", i, m)
		}
	}
}

func TestOracleInfeasible(t *testing.T) {
	cfg := platform.AWSLambda()
	d := demand()
	d.MemoryMB = cfg.Shape.MemoryMB + 1
	if _, _, err := (Oracle{}).Search(cfg, d, 10, 1); err == nil {
		t.Fatal("oversized function accepted")
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []Strategy{NoPacking{}, SerialBatching{BatchSize: 50},
		Staggered{DelaySec: 0.1}, Pywren{}, Oracle{Objective: MinExpense}} {
		if s.Name() == "" {
			t.Fatal("empty strategy name")
		}
	}
	if got := (Oracle{Objective: MinTailService}).Name(); got != "Oracle (tail service time)" {
		t.Fatalf("unexpected name %q", got)
	}
}
