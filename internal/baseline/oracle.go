package baseline

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/interfere"
	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Objective selects the figure of merit the Oracle minimizes. The paper
// reports Oracle degrees for total, tail, and median service time, for
// expense, and for the equal-weight combination (Figs. 8 and 15).
type Objective int

const (
	// MinTotalService minimizes the time to the last instance's completion.
	MinTotalService Objective = iota
	// MinTailService minimizes the 95th-percentile service time.
	MinTailService
	// MinMedianService minimizes the median service time.
	MinMedianService
	// MinExpense minimizes the user's bill.
	MinExpense
	// MinBalanced minimizes the equal-weight fractional-regret combination
	// of total service time and expense (the observed analogue of Eq. 7).
	MinBalanced
)

func (o Objective) String() string {
	switch o {
	case MinTotalService:
		return "total service time"
	case MinTailService:
		return "tail service time"
	case MinMedianService:
		return "median service time"
	case MinExpense:
		return "expense"
	case MinBalanced:
		return "service+expense"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

func (o Objective) value(m trace.Metrics) float64 {
	switch o {
	case MinTotalService:
		return m.TotalService
	case MinTailService:
		return m.TailService
	case MinMedianService:
		return m.MedianService
	case MinExpense:
		return m.ExpenseUSD
	default:
		panic(fmt.Sprintf("baseline: objective %d has no scalar value", int(o)))
	}
}

// Oracle performs the exhaustive brute-force search the paper uses as
// ground truth: it actually runs the application at every feasible packing
// degree and keeps the best by the objective. This is exactly what ProPack's
// analytical model exists to avoid paying for.
type Oracle struct {
	Objective Objective
}

// Name implements Strategy.
func (o Oracle) Name() string { return fmt.Sprintf("Oracle (%s)", o.Objective) }

// Execute implements Strategy.
func (o Oracle) Execute(cfg platform.Config, d interfere.Demand, c int, seed int64) (trace.Metrics, error) {
	m, _, err := o.Search(cfg, d, c, seed)
	return m, err
}

// Search runs the sweep and also returns the winning packing degree.
func (o Oracle) Search(cfg platform.Config, d interfere.Demand, c int, seed int64) (trace.Metrics, int, error) {
	maxDeg := cfg.Shape.MaxDegree(d)
	if maxDeg < 1 {
		return trace.Metrics{}, 0, fmt.Errorf("%w: function does not fit in instance memory", ErrNoFeasibleDegree)
	}
	all, err := Sweep(cfg, d, c, seed, maxDeg)
	if err != nil {
		return trace.Metrics{}, 0, err
	}
	if len(all) == 0 {
		return trace.Metrics{}, 0, ErrNoFeasibleDegree
	}
	if o.Objective == MinBalanced {
		best := bestBalanced(all)
		return best, best.Degree, nil
	}
	best := all[0]
	for _, m := range all[1:] {
		if o.Objective.value(m) < o.Objective.value(best) {
			best = m
		}
	}
	return best, best.Degree, nil
}

// Sweep runs the application at every packing degree from 1 to maxDeg,
// stopping at the platform's execution limit, and returns the metrics of
// each feasible run in degree order. Degrees run in parallel on GOMAXPROCS
// workers; the results are bit-identical to a sequential sweep (every
// degree's burst derives its RNG streams from the same seed, and the
// fan-in preserves degree order).
func Sweep(cfg platform.Config, d interfere.Demand, c int, seed int64, maxDeg int) ([]trace.Metrics, error) {
	return SweepWithOptions(cfg, d, c, seed, maxDeg, SweepOptions{})
}

// SweepObserved is Sweep with event-level observability: every degree's
// burst is recorded into rec (nil disables recording), labeled "sweep".
// Exported traces keep the runs apart by their per-burst packing degree.
func SweepObserved(cfg platform.Config, d interfere.Demand, c int, seed int64, maxDeg int, rec obs.Recorder) ([]trace.Metrics, error) {
	return SweepWithOptions(cfg, d, c, seed, maxDeg, SweepOptions{Recorder: rec})
}

// SweepOptions configures SweepWithOptions.
type SweepOptions struct {
	// Workers bounds the parallel degree runs; 0 means GOMAXPROCS and 1
	// reproduces the historical sequential sweep. Any value yields
	// byte-identical results.
	Workers int
	// Recorder receives every feasible degree's burst records in degree
	// order (nil disables recording). Parallel runs record into per-degree
	// obs.Tape buffers that are replayed in order, so the recorder sees the
	// exact call sequence of a sequential sweep.
	Recorder obs.Recorder
}

// degreeRun is one degree's outcome inside the parallel fan-out. Errors
// ride in the value (not the task error) because an exec-limit failure is
// a normal truncation signal, not a sweep failure.
type degreeRun struct {
	m    trace.Metrics
	err  error
	tape *obs.Tape
}

// SweepWithOptions is the engine behind Sweep and SweepObserved. Each
// packing degree is an independent task: it shares no RNG state with its
// neighbours (platform.Run derives its streams from (seed, platform)), so
// the sweep parallelizes without perturbing a single sample. The fan-in
// then applies the sequential contract in degree order: stop at the first
// exec-limit degree, fail on the first real error, and replay recorded
// bursts in degree order.
func SweepWithOptions(cfg platform.Config, d interfere.Demand, c int, seed int64, maxDeg int, opt SweepOptions) ([]trace.Metrics, error) {
	if maxDeg < 1 {
		return nil, nil
	}
	runs, err := parallel.Map(context.Background(), maxDeg, func(_ context.Context, i int) (degreeRun, error) {
		var r degreeRun
		var rec obs.Recorder
		if opt.Recorder != nil {
			r.tape = &obs.Tape{}
			rec = r.tape
		}
		r.m, r.err = orchestrator.ExecuteObserved(cfg, d, c, i+1, seed, rec, "sweep")
		return r, nil
	}, parallel.Workers(opt.Workers))
	if err != nil {
		return nil, err
	}
	out := make([]trace.Metrics, 0, len(runs))
	for _, r := range runs {
		if errors.Is(r.err, platform.ErrExecLimit) {
			break // higher degrees only get slower; stop the sweep
		}
		if r.err != nil {
			return nil, r.err
		}
		r.tape.Replay(opt.Recorder)
		out = append(out, r.m)
	}
	return out, nil
}

// bestBalanced picks the run minimizing the equal-weight fractional regret
// from the per-objective optima — the observed analogue of Eq. 7.
func bestBalanced(all []trace.Metrics) trace.Metrics {
	bestS, bestE := all[0].TotalService, all[0].ExpenseUSD
	for _, m := range all[1:] {
		if m.TotalService < bestS {
			bestS = m.TotalService
		}
		if m.ExpenseUSD < bestE {
			bestE = m.ExpenseUSD
		}
	}
	best := all[0]
	bestVal := regret(all[0], bestS, bestE)
	for _, m := range all[1:] {
		if v := regret(m, bestS, bestE); v < bestVal {
			best, bestVal = m, v
		}
	}
	return best
}

func regret(m trace.Metrics, bestS, bestE float64) float64 {
	return 0.5*(m.TotalService-bestS)/bestS + 0.5*(m.ExpenseUSD-bestE)/bestE
}
