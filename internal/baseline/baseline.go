// Package baseline implements the competing techniques ProPack is
// evaluated against:
//
//   - NoPacking — the traditional one-function-per-instance deployment
//     (packing degree 1), the paper's normalization baseline;
//   - SerialBatching — the "intuitive solution" of spawning smaller batches
//     serially, which trades scaling time for turnaround time (Sec. 1);
//   - Staggered — the latency-hiding alternative of spacing out
//     invocations, rejected in Sec. 4 for its inserted delays;
//   - Pywren — the state-of-the-art serverless workload manager (Jonas et
//     al.), modeled through its headline optimizations: warm-instance
//     reuse (cold starts avoided for a pool of reusable instances) and
//     optimized data movement;
//   - Oracle — exhaustive brute-force search over every packing degree,
//     the upper bound ProPack's analytical model is judged against.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/interfere"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Strategy executes C concurrent functions of an application on a platform
// and reports the run's metrics.
type Strategy interface {
	Name() string
	Execute(cfg platform.Config, d interfere.Demand, c int, seed int64) (trace.Metrics, error)
}

// NoPacking is the traditional deployment: every function in its own
// instance, all spawned at once.
type NoPacking struct{}

// Name implements Strategy.
func (NoPacking) Name() string { return "No Packing" }

// Execute implements Strategy.
func (NoPacking) Execute(cfg platform.Config, d interfere.Demand, c int, seed int64) (trace.Metrics, error) {
	return orchestrator.Execute(cfg, d, c, 1, seed)
}

// SerialBatching spawns the C functions in ceil(C/BatchSize) serial waves:
// wave k+1 is invoked only after wave k has fully completed. Scaling time
// per wave is small, but turnaround suffers — the reason the paper rejects
// this approach for applications with turnaround as the figure of merit.
type SerialBatching struct {
	BatchSize int
}

// Name implements Strategy.
func (s SerialBatching) Name() string { return fmt.Sprintf("Serial Batching (%d)", s.BatchSize) }

// Execute implements Strategy.
func (s SerialBatching) Execute(cfg platform.Config, d interfere.Demand, c int, seed int64) (trace.Metrics, error) {
	if s.BatchSize < 1 {
		return trace.Metrics{}, fmt.Errorf("baseline: batch size %d < 1", s.BatchSize)
	}
	var (
		offset     float64 // virtual time at which the current wave starts
		firstStart = math.Inf(1)
		maxStart   float64
		ends       = make([]float64, 0, c) // one end time per function across waves
		expense    float64
		funcSec    float64
	)
	remaining := c
	wave := 0
	for remaining > 0 {
		n := s.BatchSize
		if remaining < n {
			n = remaining
		}
		res, err := platform.Run(cfg, platform.Burst{
			Demand: d, Functions: n, Degree: 1, Seed: seed + int64(wave),
		})
		if err != nil {
			return trace.Metrics{}, err
		}
		var waveEnd float64
		for _, tl := range res.Timelines {
			start := offset + tl.Start
			end := offset + tl.End
			if start < firstStart {
				firstStart = start
			}
			if start > maxStart {
				maxStart = start
			}
			ends = append(ends, end)
			if end > waveEnd {
				waveEnd = end
			}
			funcSec += tl.ExecSeconds()
		}
		expense += res.ExpenseUSD()
		offset = waveEnd // next wave only after this one completes
		remaining -= n
		wave++
	}
	return metricsFromSpans(cfg.Name, 1, c, firstStart, maxStart, ends, expense, funcSec), nil
}

// Staggered spaces invocations DelaySec apart instead of bursting, keeping
// the control plane uncongested at the price of an inserted delay of
// (C−1)·DelaySec before the last function even starts.
type Staggered struct {
	DelaySec float64
}

// Name implements Strategy.
func (s Staggered) Name() string { return fmt.Sprintf("Staggered (%.2gs)", s.DelaySec) }

// Execute implements Strategy.
func (s Staggered) Execute(cfg platform.Config, d interfere.Demand, c int, seed int64) (trace.Metrics, error) {
	if s.DelaySec <= 0 {
		return trace.Metrics{}, fmt.Errorf("baseline: stagger delay must be positive, got %g", s.DelaySec)
	}
	res, err := platform.Run(cfg, platform.Burst{
		Demand: d, Functions: c, Degree: 1, StaggerSec: s.DelaySec, Seed: seed,
	})
	if err != nil {
		return trace.Metrics{}, err
	}
	return trace.FromResult(res), nil
}

// Pywren models the Jonas et al. workload manager: a pool of WarmInstances
// reusable instances avoids cold starts for part of the burst, and its
// optimized data-movement path trims the I/O phase of every function. It
// does not pack — which is why the scaling bottleneck survives at high
// concurrency (paper Fig. 19).
type Pywren struct {
	// WarmInstances is the reuse-pool size; zero means the default (200).
	WarmInstances int
	// IOSavings is the fractional I/O-time reduction from Pywren's data
	// movement optimizations; zero means the default (0.2).
	IOSavings float64
}

// Name implements Strategy.
func (Pywren) Name() string { return "Pywren" }

// Execute implements Strategy.
func (p Pywren) Execute(cfg platform.Config, d interfere.Demand, c int, seed int64) (trace.Metrics, error) {
	warm := p.WarmInstances
	if warm == 0 {
		warm = 200
	}
	if warm < 0 {
		return trace.Metrics{}, fmt.Errorf("baseline: negative warm pool %d", warm)
	}
	sav := p.IOSavings
	if sav == 0 {
		sav = 0.2
	}
	if sav < 0 || sav >= 1 {
		return trace.Metrics{}, fmt.Errorf("baseline: I/O savings %g outside [0,1)", sav)
	}
	tuned := d
	tuned.IOSeconds *= 1 - sav
	if warm > c {
		warm = c
	}
	res, err := platform.Run(cfg, platform.Burst{
		Demand: tuned, Functions: c, Degree: 1, Warm: warm, Seed: seed,
	})
	if err != nil {
		return trace.Metrics{}, err
	}
	return trace.FromResult(res), nil
}

func metricsFromSpans(platformName string, degree, instances int,
	firstStart, maxStart float64, ends []float64, expense, funcSec float64) trace.Metrics {
	sort.Float64s(ends)
	q := func(p float64) float64 {
		return stats.QuantileSorted(ends, p) - firstStart
	}
	return trace.Metrics{
		Platform:      platformName,
		Degree:        degree,
		Instances:     instances,
		ScalingTime:   maxStart,
		TotalService:  ends[len(ends)-1] - firstStart,
		TailService:   q(95),
		MedianService: q(50),
		ExpenseUSD:    expense,
		FunctionHours: funcSec / 3600,
		MeanExecSec:   funcSec / float64(instances),
	}
}

// ErrNoFeasibleDegree is returned by Oracle when even degree 1 cannot run.
var ErrNoFeasibleDegree = errors.New("baseline: no feasible packing degree")
