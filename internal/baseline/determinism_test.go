package baseline

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestSweepDeterminismProperty is the sweep-level equivalence test: for
// randomized configurations — including fault injection, so the
// trace.Metrics fault counters (Retries, Crashes, Timeouts, FailedSec,
// WastedUSD) are covered, not just the happy-path fields — the parallel
// sweep must return exactly the metrics of the sequential sweep for every
// worker count, and the recorder must see byte-identical JSONL output.
func TestSweepDeterminismProperty(t *testing.T) {
	apps := workload.Motivation()
	meta := sim.NewRNG(80086)
	for trial := 0; trial < 8; trial++ {
		cfg := platform.AWSLambda()
		w := apps[meta.Intn(len(apps))]
		c := 100 + meta.Intn(400)
		seed := meta.Int63()
		if trial%2 == 1 {
			// Odd trials inject faults so the fault counters and event
			// records participate in the equivalence check.
			cfg.CrashRate = 0.0005 * meta.Float64()
			cfg.StartFailureProb = 0.05 * meta.Float64()
			cfg.StragglerProb = 0.05 * meta.Float64()
			cfg.StragglerFactor = 2 + 2*meta.Float64()
		}
		maxDeg := cfg.Shape.MaxDegree(w.Demand())
		if maxDeg > 8 {
			maxDeg = 8 // keep the trial fast; truncation is exercised anyway
		}

		var oracleBuf bytes.Buffer
		oracle, err := SweepWithOptions(cfg, w.Demand(), c, seed, maxDeg,
			SweepOptions{Workers: 1, Recorder: obs.NewJSONL(&oracleBuf)})
		if err != nil {
			t.Fatalf("trial %d: sequential sweep: %v", trial, err)
		}
		if len(oracle) == 0 {
			t.Fatalf("trial %d: sequential sweep returned no degrees", trial)
		}

		for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
			var buf bytes.Buffer
			got, err := SweepWithOptions(cfg, w.Demand(), c, seed, maxDeg,
				SweepOptions{Workers: workers, Recorder: obs.NewJSONL(&buf)})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if !reflect.DeepEqual(got, oracle) {
				t.Fatalf("trial %d workers=%d: metrics differ from sequential sweep\n got  %+v\n want %+v",
					trial, workers, got, oracle)
			}
			if !bytes.Equal(buf.Bytes(), oracleBuf.Bytes()) {
				t.Fatalf("trial %d workers=%d: recorder bytes differ from sequential sweep (%d vs %d bytes)",
					trial, workers, buf.Len(), oracleBuf.Len())
			}
		}
	}
}

// TestSweepDefaultWorkersMatchesSequential pins the exported entry points:
// Sweep (GOMAXPROCS workers) must agree with the Workers=1 oracle.
func TestSweepDefaultWorkersMatchesSequential(t *testing.T) {
	cfg := platform.AWSLambda()
	d := workload.Sort{}.Demand()
	maxDeg := cfg.Shape.MaxDegree(d)
	def, err := Sweep(cfg, d, 300, 5, maxDeg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SweepWithOptions(cfg, d, 300, 5, maxDeg, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, seq) {
		t.Fatalf("default-worker Sweep differs from sequential:\n got  %+v\n want %+v", def, seq)
	}
}
