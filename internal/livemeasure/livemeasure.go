// Package livemeasure fits ProPack's interference model (Eq. 1) to *real*
// measurements on the local machine: the workload's actual Go kernel runs
// packed as goroutines on a bounded core budget, and the wall times feed
// the same fit the simulator path uses. This is the closest an offline
// build gets to the paper's profiling phase on a live platform.
//
// Scaling time cannot be measured locally (it is a property of a cloud
// control plane), so local profiling only produces the Eq. 1 side; combine
// it with a platform's fitted ScalingModel for planning.
package livemeasure

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// Options configures a local profiling run.
type Options struct {
	// Cores bounds the concurrent goroutines, emulating the instance's
	// vCPU budget. Must be ≥ 1.
	Cores int
	// MaxDegree bounds the sampled packing degrees. Must be ≥ 1.
	MaxDegree int
	// Trials averages repeated measurements per degree; 0 means 3.
	Trials int
	// MfuncGB is the nominal per-function footprint used in Eq. 1's
	// exponent; zero means the workload demand's MemoryMB.
	MfuncGB float64
	// Seed derives the workloads' deterministic inputs.
	Seed int64
	// Workers fans the (degree, trial) probe grid out over a bounded pool.
	// 0 and 1 both mean sequential — unlike elsewhere, the default here is
	// NOT GOMAXPROCS, because concurrent probes contend for the very cores
	// whose wall time is being measured and would skew the fit. Raise it
	// only when probe fidelity matters less than throughput (e.g. smoke
	// tests). The workload inputs stay deterministic per (Seed, degree,
	// trial) regardless, so the sample *structure* is worker-independent
	// even though measured wall times always jitter.
	Workers int
}

// Profile runs the workload's real kernel at alternate packing degrees
// (the Sec. 2.1 sampling policy) and fits Eq. 1 to the measured wall
// times. It returns the fitted model and the raw samples.
func Profile(w workload.Workload, opts Options) (core.ETModel, []core.ETSample, error) {
	if w == nil {
		return core.ETModel{}, nil, fmt.Errorf("livemeasure: nil workload")
	}
	if opts.Cores < 1 {
		return core.ETModel{}, nil, fmt.Errorf("livemeasure: cores %d < 1", opts.Cores)
	}
	if opts.MaxDegree < 1 {
		return core.ETModel{}, nil, fmt.Errorf("livemeasure: max degree %d < 1", opts.MaxDegree)
	}
	trials := opts.Trials
	if trials == 0 {
		trials = 3
	}
	if trials < 1 {
		return core.ETModel{}, nil, fmt.Errorf("livemeasure: trials %d < 1", trials)
	}
	mfuncGB := opts.MfuncGB
	if mfuncGB == 0 {
		mfuncGB = w.Demand().MemoryMB / 1024
	}
	if mfuncGB <= 0 {
		return core.ETModel{}, nil, fmt.Errorf("livemeasure: non-positive Mfunc")
	}

	workers := opts.Workers
	if workers == 0 {
		workers = 1 // sequential by default: parallel probes skew wall times
	}
	degrees := core.SampleDegrees(opts.MaxDegree)
	walls, err := parallel.Map(context.Background(), len(degrees)*trials,
		func(_ context.Context, i int) (float64, error) {
			degree, t := degrees[i/trials], i%trials
			res, err := workload.RunPacked(w, degree, opts.Cores,
				opts.Seed+int64(1000*degree+t))
			if err != nil {
				return 0, fmt.Errorf("livemeasure: degree %d: %w", degree, err)
			}
			return res.Wall.Seconds(), nil
		}, parallel.Workers(workers))
	if err != nil {
		return core.ETModel{}, nil, err
	}
	samples := make([]core.ETSample, len(degrees))
	for di, degree := range degrees {
		var sum float64
		for t := 0; t < trials; t++ {
			sum += walls[di*trials+t]
		}
		samples[di] = core.ETSample{Degree: degree, ETSec: sum / float64(trials)}
	}
	model, err := core.FitET(samples, mfuncGB, core.FitETOptions{})
	if err != nil {
		return core.ETModel{}, nil, err
	}
	return model, samples, nil
}
