package livemeasure

import (
	"testing"

	"repro/internal/workload"
)

// smallWorkload is a fast real kernel for test-time profiling.
func smallWorkload() workload.Workload {
	return workload.SmithWaterman{QueryLen: 96, Subjects: 24, SubjectLen: 128}
}

func TestProfileFitsRealMeasurements(t *testing.T) {
	model, samples, err := Profile(smallWorkload(), Options{
		Cores: 2, MaxDegree: 8, Trials: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 { // degrees 1,3,5,7
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	// Real CPU-bound work on a bounded core budget must slow down with
	// degree, and the fitted model must be increasing.
	if samples[len(samples)-1].ETSec <= samples[0].ETSec {
		t.Fatalf("no measured interference: %+v", samples)
	}
	if model.At(8) <= model.At(1) {
		t.Fatalf("fitted model not increasing: %v", model)
	}
	// The fit should track the measurements loosely (live timings are
	// noisy on shared CI machines; allow a wide band).
	for _, s := range samples {
		pred := model.At(s.Degree)
		if pred < 0.25*s.ETSec || pred > 4*s.ETSec {
			t.Fatalf("fit wildly off at degree %d: predicted %g, measured %g",
				s.Degree, pred, s.ETSec)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	w := smallWorkload()
	if _, _, err := Profile(nil, Options{Cores: 1, MaxDegree: 1}); err == nil {
		t.Fatal("nil workload accepted")
	}
	if _, _, err := Profile(w, Options{Cores: 0, MaxDegree: 1}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, _, err := Profile(w, Options{Cores: 1, MaxDegree: 0}); err == nil {
		t.Fatal("zero max degree accepted")
	}
	if _, _, err := Profile(w, Options{Cores: 1, MaxDegree: 1, Trials: -1}); err == nil {
		t.Fatal("negative trials accepted")
	}
	if _, _, err := Profile(w, Options{Cores: 1, MaxDegree: 1, MfuncGB: -2}); err == nil {
		t.Fatal("negative Mfunc accepted")
	}
}
