// Package parallel is the deterministic fan-out engine behind the
// repository's embarrassingly parallel sweeps: degree sweeps, repetition
// loops in the figure generators, and profiling probes. It runs n
// independent tasks on a bounded worker pool with a contract stronger than
// the usual errgroup idiom:
//
//   - Bit-for-bit determinism. Results are returned in task order and each
//     task must be a pure function of its index (deriving any randomness
//     from (seed, taskIndex) via sim.SplitSeed / sim.Stream), so the output
//     is byte-identical for every worker count and goroutine schedule.
//     Map(workers=1) is the sequential oracle; Map(workers=N) must — and,
//     property-tested, does — produce exactly the same bytes.
//   - Bounded workers. At most Workers goroutines run tasks; the default is
//     GOMAXPROCS. Excess tasks queue on a shared atomic cursor, so a sweep
//     of 10 000 cells never spawns 10 000 goroutines.
//   - Cancellation and first-error propagation. The context is forwarded to
//     every task; when a task fails, the remaining unstarted tasks are
//     skipped and the failed task with the lowest index is reported.
//
// What the package deliberately does not do: share RNG streams between
// tasks, reorder results by completion time, or let one task observe
// another's output. Those are exactly the behaviours that break the
// sequential ≡ parallel equivalence the test harness locks in.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

type options struct {
	workers int
}

// Option configures a Map or ForEach call.
type Option func(*options)

// Workers bounds the number of concurrent tasks. n <= 0 selects the
// default, GOMAXPROCS; n == 1 degenerates to sequential in-order execution
// (the oracle the equivalence tests compare against).
func Workers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WorkerCount resolves a Workers option value to the effective pool size.
func WorkerCount(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// TaskSeed derives the RNG seed of task i from the fan-out's root seed
// using the simulator's splittable SplitMix64 derivation (sim.SplitSeed).
// Tasks that need randomness must seed their own stream this way — never
// share a *sim.RNG across tasks — so values are independent of worker
// count and scheduling.
func TaskSeed(seed int64, i int) int64 {
	return sim.SplitSeed(seed, uint64(i))
}

// errSkipped marks tasks that never ran because an earlier failure (or the
// caller's context) cancelled the fan-out. It is internal: Map reports the
// causing error, not the skips.
var errSkipped = errors.New("parallel: task skipped after cancellation")

// Map runs fn(ctx, i) for i in [0, n) on a bounded worker pool and returns
// the results in task order. The worker count comes from the Workers
// option (default GOMAXPROCS).
//
// Error contract: if any task fails, Map cancels the remaining unstarted
// tasks and returns the error of the lowest-indexed task that actually
// failed, wrapped with its index. If the caller's ctx is cancelled, Map
// returns ctx's error. On error the result slice is nil.
//
// Determinism contract: when no task fails, the returned slice is
// byte-identical for every worker count — each task must depend only on
// its index (and seeds derived via TaskSeed), never on shared mutable
// state or on other tasks' completion order.
func Map[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error), opts ...Option) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("parallel: negative task count %d", n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return []T{}, nil
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	workers := WorkerCount(o.workers)
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					errs[i] = errSkipped
					continue
				}
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	skipped := false
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errSkipped) {
			skipped = true
			continue
		}
		return nil, fmt.Errorf("parallel: task %d: %w", i, err)
	}
	if skipped {
		// No task failed of its own accord, yet some never ran: the
		// caller's context was cancelled mid-flight.
		return nil, ctx.Err()
	}
	return out, nil
}

// ForEach is Map for side-effect-free-result tasks: it runs fn(ctx, i) for
// i in [0, n) under the same worker, cancellation, and determinism
// contract and returns the first (lowest-index) task error.
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error, opts ...Option) error {
	_, err := Map(ctx, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	}, opts...)
	return err
}
