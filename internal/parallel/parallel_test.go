package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapReturnsResultsInTaskOrder(t *testing.T) {
	got, err := Map(context.Background(), 100, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	}, Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(context.Background(), 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("task ran")
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("got %v, want empty non-nil slice", got)
	}
}

func TestMapNegativeTasks(t *testing.T) {
	if _, err := Map(context.Background(), -1, func(_ context.Context, i int) (int, error) {
		return 0, nil
	}); err == nil {
		t.Fatal("want error for negative n")
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	const workers = 3
	var running, peak atomic.Int64
	_, err := Map(context.Background(), 50, func(_ context.Context, i int) (int, error) {
		cur := running.Add(1)
		defer running.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return 0, nil
	}, Workers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds Workers(%d)", p, workers)
	}
}

func TestMapErrorCarriesTaskIndex(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), 10, func(_ context.Context, i int) (int, error) {
		if i == 4 {
			return 0, boom
		}
		return i, nil
	}, Workers(1))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "task 4") {
		t.Fatalf("err = %v, want task index 4 in message", err)
	}
}

func TestMapSingleFailureDeterministicAcrossWorkerCounts(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		_, err := Map(context.Background(), 64, func(_ context.Context, i int) (int, error) {
			if i == 17 {
				return 0, boom
			}
			return i, nil
		}, Workers(workers))
		if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "task 17") {
			t.Fatalf("workers=%d: err = %v, want task 17: boom", workers, err)
		}
	}
}

func TestMapReportsLowestObservedError(t *testing.T) {
	// With workers=1 and two failing tasks, cancellation skips the later
	// one, so the reported index must be the lower.
	errA, errB := errors.New("a"), errors.New("b")
	_, err := Map(context.Background(), 10, func(_ context.Context, i int) (int, error) {
		switch i {
		case 3:
			return 0, errA
		case 7:
			return 0, errB
		}
		return i, nil
	}, Workers(1))
	if !errors.Is(err, errA) || !strings.Contains(err.Error(), "task 3") {
		t.Fatalf("err = %v, want task 3: a", err)
	}
}

func TestMapCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 10, func(_ context.Context, i int) (int, error) {
		t.Error("task ran after cancellation")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapCancelledMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := Map(ctx, 100, func(ctx context.Context, i int) (int, error) {
		once.Do(cancel)
		return i, nil
	}, Workers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapSkipsUnstartedTasksAfterFailure(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), 1000, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	}, Workers(1))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n != 1 {
		t.Fatalf("%d tasks ran after the first failure with workers=1, want 1", n)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(context.Background(), 5, func(_ context.Context, i int) error {
		if i == 2 {
			return boom
		}
		return nil
	}, Workers(1))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := ForEach(context.Background(), 5, func(_ context.Context, i int) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerCount(t *testing.T) {
	if got := WorkerCount(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("WorkerCount(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := WorkerCount(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("WorkerCount(-3) = %d, want GOMAXPROCS", got)
	}
	if got := WorkerCount(5); got != 5 {
		t.Fatalf("WorkerCount(5) = %d, want 5", got)
	}
}

func TestTaskSeedMatchesStream(t *testing.T) {
	// TaskSeed must be the same derivation sim.Stream uses, and distinct
	// across indices.
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := TaskSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("TaskSeed(42, %d) collides with index %d", i, prev)
		}
		seen[s] = i
	}
	if TaskSeed(1, 5) == TaskSeed(2, 5) {
		t.Fatal("TaskSeed ignores the root seed")
	}
}

func ExampleMap() {
	squares, _ := Map(context.Background(), 4, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	}, Workers(2))
	fmt.Println(squares)
	// Output: [0 1 4 9]
}
