package parallel

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/sim"
)

// workerCounts is the equivalence grid the issue prescribes: the sequential
// oracle, an even and an odd worker count, and whatever this machine's
// GOMAXPROCS happens to be.
func workerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// TestMapDeterminismProperty is the headline property test: randomized
// task loads whose tasks derive all randomness from (seed, taskIndex) must
// produce byte-identical output for every worker count. 50 random trials
// per run; each trial varies the task count and the per-task work shape.
func TestMapDeterminismProperty(t *testing.T) {
	meta := sim.NewRNG(20240806) // drives the trial shapes, not the tasks
	for trial := 0; trial < 50; trial++ {
		n := 1 + meta.Intn(200)
		seed := int64(meta.Int63())
		task := func(_ context.Context, i int) (string, error) {
			// Each task owns an RNG stream split from (seed, i) and does a
			// scheduling-sensitive amount of work: if any cross-task state
			// leaked, worker counts would interleave differently and the
			// digest would drift.
			rng := sim.NewRNG(TaskSeed(seed, i))
			rounds := 1 + rng.Intn(64)
			var acc uint64
			for r := 0; r < rounds; r++ {
				acc = acc*1099511628211 + uint64(rng.Int63())
			}
			return fmt.Sprintf("%d:%x:%.17g", i, acc, rng.Float64()), nil
		}

		oracle, err := Map(context.Background(), n, task, Workers(1))
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		for _, workers := range workerCounts()[1:] {
			got, err := Map(context.Background(), n, task, Workers(workers))
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if len(got) != len(oracle) {
				t.Fatalf("trial %d workers=%d: len %d != oracle %d", trial, workers, len(got), len(oracle))
			}
			for i := range oracle {
				if got[i] != oracle[i] {
					t.Fatalf("trial %d workers=%d task %d:\n got  %q\n want %q",
						trial, workers, i, got[i], oracle[i])
				}
			}
		}
	}
}

// TestMapDeterministicUnderRepetition re-runs the same fan-out many times at
// the same worker count: scheduling jitter between runs must not change the
// result either.
func TestMapDeterministicUnderRepetition(t *testing.T) {
	task := func(_ context.Context, i int) (uint64, error) {
		return uint64(sim.NewRNG(TaskSeed(7, i)).Int63()), nil
	}
	want, err := Map(context.Background(), 128, task, Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 20; rep++ {
		got, err := Map(context.Background(), 128, task, Workers(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rep %d task %d: %d != %d", rep, i, got[i], want[i])
			}
		}
	}
}
