package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// Golden files are regenerated with `go test ./internal/experiments -update`
// (the repo convention: every golden test watches this flag).
var update = flag.Bool("update", false, "rewrite golden files")

// fig12CSV renders Fig12 (quick grid, fixed seed) at a worker count.
func fig12CSV(t *testing.T, workers int) []byte {
	t.Helper()
	tab, err := Fig12(Config{Seed: 1, Quick: true, Workers: workers})
	if err != nil {
		t.Fatalf("Fig12 (workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := tab.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFig12GoldenSeedStability pins the exact CSV bytes of Fig12 at seed 1:
// the figure drivers promise that a fixed seed reproduces a fixed table, so
// any drift here is either an intentional model change (regenerate with
// -update) or a lost determinism guarantee. The parallel renderings must
// match the same golden bytes — the sequential ≡ parallel contract applied
// to a whole figure pipeline.
func TestFig12GoldenSeedStability(t *testing.T) {
	seq := fig12CSV(t, 1)

	golden := filepath.Join("testdata", "fig12.golden.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, seq, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -update` to create it)", err)
	}
	if !bytes.Equal(seq, want) {
		t.Fatalf("Fig12 CSV drifted from golden (sequential run):\n got:\n%s\n want:\n%s", seq, want)
	}
	for _, workers := range []int{7, runtime.GOMAXPROCS(0)} {
		if got := fig12CSV(t, workers); !bytes.Equal(got, want) {
			t.Fatalf("Fig12 CSV with workers=%d differs from golden:\n got:\n%s\n want:\n%s",
				workers, got, want)
		}
	}
}
