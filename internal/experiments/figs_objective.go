package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig13 reproduces the single-objective comparison for time-constrained
// workloads: ProPack with service time as the sole objective improves total
// service time a further ~7.5% over the joint objective.
func Fig13(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 13: ProPack (service-time objective) vs ProPack (joint)",
		Header: []string{"app", "concurrency", "joint deg", "svc deg", "joint improv", "svc improv", "extra"},
	}
	p := platform.AWSLambda()
	apps := workload.Motivation()
	cs := cfg.concurrencies()
	rows, err := forAll(cfg, len(apps)*len(cs), func(i int) ([]string, error) {
		w, c := apps[i/len(cs)], cs[i%len(cs)]
		joint, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		svc, err := orchestrator.RunProPack(p, w.Demand(), c, core.ServiceOnly(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ji := trace.Improvement(base.TotalService, joint.Metrics.TotalService)
		si := trace.Improvement(base.TotalService, svc.Metrics.TotalService)
		return []string{w.Name(), itoa(c), itoa(joint.Plan.Degree), itoa(svc.Plan.Degree),
			pct(ji), pct(si), pct(si - ji)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// Fig14 reproduces the budget-constrained counterpart: expense as the sole
// objective cuts cost a further ~9.3% over the joint objective.
func Fig14(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 14: ProPack (expense objective) vs ProPack (joint)",
		Header: []string{"app", "concurrency", "joint deg", "exp deg", "joint improv", "exp improv", "extra"},
	}
	p := platform.AWSLambda()
	apps := workload.Motivation()
	cs := cfg.concurrencies()
	rows, err := forAll(cfg, len(apps)*len(cs), func(i int) ([]string, error) {
		w, c := apps[i/len(cs)], cs[i%len(cs)]
		joint, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		exp, err := orchestrator.RunProPack(p, w.Demand(), c, core.ExpenseOnly(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ji := trace.Improvement(base.ExpenseUSD, joint.MetricsWithOverhead().ExpenseUSD)
		ei := trace.Improvement(base.ExpenseUSD, exp.MetricsWithOverhead().ExpenseUSD)
		return []string{w.Name(), itoa(c), itoa(joint.Plan.Degree), itoa(exp.Plan.Degree),
			pct(ji), pct(ei), pct(ei - ji)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// Fig15 reproduces the objective-dependence of the Oracle packing degree:
// minimizing expense packs more than minimizing service time, and ProPack's
// analytical degrees track both. Each app builds its models once and reuses
// them across the concurrency grid, so the fan-out is per app.
func Fig15(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 15: Oracle degree by objective (service-only vs expense-only)",
		Header: []string{"app", "concurrency", "oracle svc", "propack svc", "oracle exp", "propack exp"},
	}
	p := platform.AWSLambda()
	apps := workload.Motivation()
	rows, err := forAll(cfg, len(apps), func(i int) ([][]string, error) {
		w := apps[i]
		models, _, _, _, err := buildModels(cfg, p, w)
		if err != nil {
			return nil, err
		}
		pl := core.NewPlanner(models) // both objectives read one table per concurrency
		var out [][]string
		for _, c := range cfg.concurrencies() {
			_, oS, err := (baseline.Oracle{Objective: baseline.MinTotalService}).Search(p, w.Demand(), c, cfg.Seed)
			if err != nil {
				return nil, err
			}
			_, oE, err := (baseline.Oracle{Objective: baseline.MinExpense}).Search(p, w.Demand(), c, cfg.Seed)
			if err != nil {
				return nil, err
			}
			out = append(out, []string{w.Name(), itoa(c),
				itoa(oS), itoa(pl.OptimalDegreeService(c)),
				itoa(oE), itoa(pl.OptimalDegreeExpense(c))})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, appRows := range rows {
		for _, r := range appRows {
			t.AddRow(r...)
		}
	}
	return t, nil
}

// Fig16 reproduces the weight-sensitivity sweep for Stateless Cost at the
// top concurrency: as W_E grows, expense improves further; as W_S grows,
// service time does.
func Fig16(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 16: weight sensitivity (Stateless Cost)",
		Header: []string{"W_S/W_E", "degree", "service improv", "expense improv"},
	}
	p := platform.AWSLambda()
	w := workload.StatelessCost{}
	c := cfg.topConcurrency()
	base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	models, _, _, _, err := buildModels(cfg, p, w)
	if err != nil {
		return nil, err
	}
	pl := core.NewPlanner(models) // all weight steps share the table at c
	wss := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	rows, err := forAll(cfg, len(wss), func(i int) ([]string, error) {
		ws := wss[i]
		weights := core.Weights{Service: ws, Expense: 1 - ws}
		deg, err := pl.OptimalDegree(c, weights)
		if err != nil {
			return nil, err
		}
		m, err := orchestrator.Execute(p, w.Demand(), c, deg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%.1f/%.1f", ws, 1-ws), itoa(deg),
			pct(trace.Improvement(base.TotalService, m.TotalService)),
			pct(trace.Improvement(base.ExpenseUSD, m.ExpenseUSD))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}
