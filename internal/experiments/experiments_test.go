package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

// TestAllExperimentsRun executes every driver in quick mode and sanity-
// checks the resulting tables.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.Title == "" || len(tab.Header) == 0 {
				t.Fatalf("%s: missing title/header", e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			var b strings.Builder
			if err := tab.Fprint(&b); err != nil {
				t.Fatal(err)
			}
			if len(b.String()) == 0 {
				t.Fatal("no printed output")
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig9")
	if err != nil || e.ID != "fig9" {
		t.Fatalf("ByID(fig9) = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
}

// parsePct extracts a float from "12.3%".
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

// TestFig1ScalingFractionGrows checks the motivation claim: the scaling
// fraction increases with concurrency on every platform and app.
func TestFig1ScalingFractionGrows(t *testing.T) {
	tab, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in runs of len(concurrencies) per (platform, app).
	grid := quickCfg().concurrencies()
	for i := 0; i+len(grid) <= len(tab.Rows); i += len(grid) {
		lo, _ := strconv.ParseFloat(tab.Rows[i][5], 64)
		hi, _ := strconv.ParseFloat(tab.Rows[i+len(grid)-1][5], 64)
		if hi <= lo {
			t.Fatalf("scaling fraction did not grow: %v → %v (row %d)", lo, hi, i)
		}
	}
}

// TestFig9ImprovementsPositive checks ProPack wins on every row and that
// improvements grow with concurrency.
func TestFig9ImprovementsPositive(t *testing.T) {
	tab, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	grid := quickCfg().concurrencies()
	for i, row := range tab.Rows {
		imp := parsePct(t, row[5])
		if imp <= 0 {
			t.Fatalf("row %d: non-positive service improvement %v", i, row)
		}
		if i%len(grid) == len(grid)-1 {
			first := parsePct(t, tab.Rows[i-len(grid)+1][5])
			if imp <= first {
				t.Fatalf("improvement should grow with concurrency: %g → %g (%v)", first, imp, row)
			}
		}
	}
}

// TestFig10ScalingCutExceedsServiceCut mirrors the paper's observation that
// scaling-time reductions exceed service-time reductions.
func TestFig10ScalingCutExceedsServiceCut(t *testing.T) {
	cfg := quickCfg()
	t9, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t10, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t9.Rows) != len(t10.Rows) {
		t.Fatal("row mismatch between Fig 9 and Fig 10")
	}
	for i := range t9.Rows {
		svc := parsePct(t, t9.Rows[i][5])
		scl := parsePct(t, t10.Rows[i][5])
		if scl < svc {
			t.Fatalf("row %d: scaling cut %g%% below service cut %g%%", i, scl, svc)
		}
	}
}

// TestFig11ExpenseReductionsPositive checks the cost claim on every row.
func TestFig11ExpenseReductionsPositive(t *testing.T) {
	tab, err := Fig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if imp := parsePct(t, row[5]); imp <= 0 {
			t.Fatalf("row %d: non-positive expense improvement %v", i, row)
		}
	}
}

// TestFig13Fig14SoloObjectivesWin: the dedicated objective must do at least
// as well as the joint one on its own metric.
func TestFig13Fig14SoloObjectivesWin(t *testing.T) {
	cfg := quickCfg()
	t13, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range t13.Rows {
		if extra := parsePct(t, row[6]); extra < -0.5 {
			t.Fatalf("fig13 row %d: service-only worse than joint by %g%%: %v", i, extra, row)
		}
	}
	t14, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range t14.Rows {
		if extra := parsePct(t, row[6]); extra < -0.5 {
			t.Fatalf("fig14 row %d: expense-only worse than joint by %g%%: %v", i, extra, row)
		}
	}
}

// TestFig15ExpenseOraclePacksMore mirrors Fig. 15's headline.
func TestFig15ExpenseOraclePacksMore(t *testing.T) {
	tab, err := Fig15(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		oS, _ := strconv.Atoi(row[2])
		oE, _ := strconv.Atoi(row[4])
		if oE < oS {
			t.Fatalf("row %d: expense oracle %d below service oracle %d", i, oE, oS)
		}
	}
}

// TestFig8OracleMatches: ProPack should match the Oracle degree in the
// overwhelming majority of cases (the paper misses only 2 of 45).
func TestFig8OracleMatches(t *testing.T) {
	tab, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for i, row := range tab.Rows {
		if row[6] == "no" {
			misses++
		}
		// Even a miss must be close: the paper's own two misses were within
		// ±2 packing degrees of the Oracle.
		if d, _ := strconv.Atoi(row[5]); d < -2 || d > 2 {
			t.Fatalf("row %d: ProPack off by %d degrees: %v", i, d, row)
		}
	}
	// The regret landscape is nearly flat around the optimum, so at the low
	// concurrencies of the quick grid the exact degree flips by ±1 under
	// observation jitter; require a majority of exact matches here (the
	// full grid does better) and closeness always.
	if frac := float64(misses) / float64(len(tab.Rows)); frac > 0.5 {
		t.Fatalf("ProPack missed the Oracle degree in %d/%d cases", misses, len(tab.Rows))
	}
}

// TestValidationAccepts: the χ² experiment must accept both models for all
// motivation apps.
func TestValidationAccepts(t *testing.T) {
	tab, err := Validation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if row[6] != "ACCEPT" {
			t.Fatalf("row %d rejected: %v", i, row)
		}
	}
}

// TestFig18FuncXScalesFaster checks both Fig. 18 findings on every row.
func TestFig18FuncXScalesFaster(t *testing.T) {
	tab, err := Fig18(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if adv := parsePct(t, row[3]); adv <= 0 {
			t.Fatalf("row %d: FuncX not faster at scaling: %v", i, row)
		}
	}
}

// TestFig19ProPackBeatsPywren checks ProPack beats Pywren on expense
// everywhere and on service time at the top of each app's concurrency
// range (warm reuse is genuinely competitive at the very bottom, where the
// pool covers much of the burst — the paper's averages are over 1000–5000).
func TestFig19ProPackBeatsPywren(t *testing.T) {
	tab, err := Fig19(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	grid := quickCfg().concurrencies()
	var svcSum float64
	for i, row := range tab.Rows {
		if exp := parsePct(t, row[7]); exp <= 0 {
			t.Fatalf("row %d: no expense win over Pywren: %v", i, row)
		}
		svc := parsePct(t, row[4])
		svcSum += svc
		if i%len(grid) == len(grid)-1 && svc <= 0 {
			t.Fatalf("row %d: no service win over Pywren at top concurrency: %v", i, row)
		}
	}
	if svcSum/float64(len(tab.Rows)) <= 0 {
		t.Fatalf("no average service win over Pywren: %g", svcSum/float64(len(tab.Rows)))
	}
}

// TestFig21NetworkFeeEffect: the expense improvement on Google/Azure should
// be at least as large as on AWS for the shuffle-heavy Sort app, because
// their networking fee shrinks with packing.
func TestFig21NetworkFeeEffect(t *testing.T) {
	tab, err := Fig21(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var awsSort, googleSort float64
	for _, row := range tab.Rows {
		if row[1] != "Sort" {
			continue
		}
		switch row[0] {
		case "AWS Lambda":
			awsSort = parsePct(t, row[4])
		case "Google Cloud Functions":
			googleSort = parsePct(t, row[4])
		}
	}
	if googleSort < awsSort {
		t.Fatalf("expense cut on Google (%g%%) should be ≥ AWS (%g%%) for Sort", googleSort, awsSort)
	}
}

// TestExtProviderDegreeShrinks: the Sec. 5 discussion predicts the optimal
// packing degree falls as the provider mitigates the scaling bottleneck.
func TestExtProviderDegreeShrinks(t *testing.T) {
	tab, err := ExtProvider(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first, _ := strconv.Atoi(tab.Rows[0][2])
	last, _ := strconv.Atoi(tab.Rows[len(tab.Rows)-1][2])
	if last >= first {
		t.Fatalf("degree should shrink with provider mitigation: %d → %d", first, last)
	}
}

// TestExtHeteroPlannerWins: the heterogeneous planner must beat the
// unpacked deployment on both metrics and be competitive with per-app
// packing on both jobs.
func TestExtHeteroPlannerWins(t *testing.T) {
	tab, err := ExtHetero(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows)%3 != 0 {
		t.Fatalf("expected row triples, got %d rows", len(tab.Rows))
	}
	parseSec := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		if err != nil {
			t.Fatalf("bad seconds %q", s)
		}
		return v
	}
	parseUSD := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimPrefix(s, "$"), 64)
		if err != nil {
			t.Fatalf("bad dollars %q", s)
		}
		return v
	}
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		unpacked, planner := tab.Rows[i], tab.Rows[i+2]
		if parseUSD(planner[4]) >= parseUSD(unpacked[4]) {
			t.Fatalf("job %q: planner not cheaper than unpacked: %v vs %v",
				tab.Rows[i][0], planner[4], unpacked[4])
		}
		if parseSec(planner[3]) >= parseSec(unpacked[3]) {
			t.Fatalf("job %q: planner not faster than unpacked: %v vs %v",
				tab.Rows[i][0], planner[3], unpacked[3])
		}
	}
}

// TestExtDecentralComplementary: decentralizing the scheduler helps the
// baseline, but a non-scheduler stage keeps the scaling floor, and ProPack
// still improves service at every sharding level (Sec. 5's
// complementarity argument).
func TestExtDecentralComplementary(t *testing.T) {
	tab, err := ExtDecentral(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first := parsePct(t, tab.Rows[0][5])
	for i, row := range tab.Rows {
		if imp := parsePct(t, row[5]); imp <= 0 {
			t.Fatalf("row %d: ProPack stopped helping under decentralization: %v", i, row)
		}
		_ = first
	}
}

// TestExtAmortizeSharesFall: the overhead share must fall strictly as more
// jobs reuse the cached models, ending below the paper's "<1%" claim well
// before a thousand runs.
func TestExtAmortizeSharesFall(t *testing.T) {
	tab, err := ExtAmortize(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := 101.0
	for i, row := range tab.Rows {
		share := parsePct(t, row[3])
		if share >= prev {
			t.Fatalf("row %d: overhead share did not fall: %v", i, row)
		}
		prev = share
	}
}
