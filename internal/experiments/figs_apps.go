package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/funcx"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig17 reproduces the Smith-Waterman case study: a compute-intensive HPC
// application whose Oracle packing degree stays far below its memory-bound
// maximum of 35, yet still gains ~81% service time and ~59% expense at a
// concurrency of 5000.
func Fig17(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 17: Smith-Waterman (max packing degree 35)",
		Header: []string{"concurrency", "degree", "service improv", "scaling improv", "expense improv"},
	}
	p := platform.AWSLambda()
	w := workload.SmithWaterman{}
	cs := cfg.concurrencies()
	rows, err := forAll(cfg, len(cs), func(i int) ([]string, error) {
		c := cs[i]
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		return []string{itoa(c), itoa(run.Plan.Degree),
			pct(trace.Improvement(base.TotalService, got.TotalService)),
			pct(trace.Improvement(base.ScalingTime, got.ScalingTime)),
			pct(trace.Improvement(base.ExpenseUSD, got.ExpenseUSD))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// Fig18 reproduces the FuncX comparison: FuncX's pod-based workers scale
// faster than Lambda's microVMs (~15% at 5000), but ProPack's packed
// execution runs faster on Lambda thanks to Firecracker's better isolation,
// so ProPack's total-service advantage is ~12% larger there.
func Fig18(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 18: FuncX vs AWS Lambda",
		Header: []string{"concurrency", "lambda scaling", "funcx scaling", "funcx advantage", "lambda+propack", "funcx+propack"},
	}
	aws := platform.AWSLambda()
	fx := funcx.Config()
	d := workload.Video{}.Demand()
	cs := cfg.concurrencies()
	rows, err := forAll(cfg, len(cs), func(i int) ([]string, error) {
		c := cs[i]
		baseA, err := platform.Run(aws, platform.Burst{Demand: d, Functions: c, Degree: 1, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		baseF, err := platform.Run(fx, platform.Burst{Demand: d, Functions: c, Degree: 1, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		runA, err := orchestrator.RunProPack(aws, d, c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		runF, err := orchestrator.RunProPack(fx, d, c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		return []string{itoa(c),
			sec(baseA.ScalingTime()), sec(baseF.ScalingTime()),
			pct(trace.Improvement(baseA.ScalingTime(), baseF.ScalingTime())),
			sec(runA.Metrics.TotalService), sec(runF.Metrics.TotalService)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// Fig19 reproduces the Pywren comparison: Pywren's warm reuse and data-
// movement optimizations help, but they do not attack the scaling
// bottleneck, so ProPack wins by ~52% service time and ~78% expense on
// average in the paper.
func Fig19(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 19: ProPack vs Pywren",
		Header: []string{"app", "concurrency", "pywren svc", "propack svc", "svc improv", "pywren exp", "propack exp", "exp improv"},
	}
	p := platform.AWSLambda()
	py := baseline.Pywren{}
	apps := workload.Motivation()
	cs := cfg.concurrencies()
	rows, err := forAll(cfg, len(apps)*len(cs), func(i int) ([]string, error) {
		w, c := apps[i/len(cs)], cs[i%len(cs)]
		pm, err := py.Execute(p, w.Demand(), c, cfg.Seed)
		if err != nil {
			return nil, err
		}
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		return []string{w.Name(), itoa(c),
			sec(pm.TotalService), sec(got.TotalService),
			pct(trace.Improvement(pm.TotalService, got.TotalService)),
			usd(pm.ExpenseUSD), usd(got.ExpenseUSD),
			pct(trace.Improvement(pm.ExpenseUSD, got.ExpenseUSD))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// Fig20 reproduces the Xapian QoS study: (a) the tail-optimal packing
// degree rises as expense gains weight; (b) the Sec. 2.6 weight search
// finds W_S (0.65 in the paper) meeting the tail bound while improving
// service >80% and expense >65% at a concurrency of 5000.
func Fig20(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 20: Xapian with a QoS bound on p95 service time",
		Header: []string{"row", "W_S", "degree", "tail service", "service improv", "expense improv"},
	}
	p := platform.AWSLambda()
	w := workload.Xapian{}
	c := cfg.topConcurrency()
	base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	models, _, _, _, err := buildModels(cfg, p, w)
	if err != nil {
		return nil, err
	}
	// Every planning call below runs at the same concurrency; a Planner lets
	// the objectives, the tail probes, and the QoS grid search share one
	// degree table.
	pl := core.NewPlanner(models)
	// (a) the three standing objectives.
	objectives := []struct {
		name string
		w    core.Weights
	}{
		{"service-only", core.ServiceOnly()},
		{"joint", core.Balanced()},
		{"expense-only", core.ExpenseOnly()},
	}
	rows, err := forAll(cfg, len(objectives), func(i int) ([]string, error) {
		row := objectives[i]
		deg, err := pl.OptimalDegreeForQuantile(c, 95, row.w)
		if err != nil {
			return nil, err
		}
		m, err := orchestrator.Execute(p, w.Demand(), c, deg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return []string{row.name, frac(row.w.Service), itoa(deg), sec(m.TailService),
			pct(trace.Improvement(base.TotalService, m.TotalService)),
			pct(trace.Improvement(base.ExpenseUSD, m.ExpenseUSD))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	// (b) QoS-bounded run: a bound between the best and worst achievable
	// tails forces a non-trivial weight.
	bestTail, err := pl.TailServiceAt(c, core.ServiceOnly(), 95)
	if err != nil {
		return nil, err
	}
	worstTail, err := pl.TailServiceAt(c, core.ExpenseOnly(), 95)
	if err != nil {
		return nil, err
	}
	qos := bestTail + 0.25*(worstTail-bestTail)
	plan, weights, err := pl.QoSPlan(c, qos, core.QoSOptions{})
	if err != nil {
		return nil, err
	}
	m, err := orchestrator.Execute(p, w.Demand(), c, plan.Degree, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t.AddRow("QoS-bounded", frac(weights.Service), itoa(plan.Degree), sec(m.TailService),
		pct(trace.Improvement(base.TotalService, m.TotalService)),
		pct(trace.Improvement(base.ExpenseUSD, m.ExpenseUSD)))
	return t, nil
}

// Fig21 reproduces the multi-platform comparison at a concurrency of 1000:
// ProPack helps on all three commercial clouds, and the expense cut is
// larger on Google and Azure because their per-GB networking fee shrinks
// with co-location.
func Fig21(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 21: ProPack across commercial platforms",
		Header: []string{"platform", "app", "degree", "service improv", "expense improv"},
	}
	c := 1000
	providers := platform.Providers()
	apps := workload.Motivation()
	rows, err := forAll(cfg, len(providers)*len(apps), func(i int) ([]string, error) {
		p, w := providers[i/len(apps)], apps[i%len(apps)]
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		return []string{p.Name, w.Name(), itoa(run.Plan.Degree),
			pct(trace.Improvement(base.TotalService, got.TotalService)),
			pct(trace.Improvement(base.ExpenseUSD, got.ExpenseUSD))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}
