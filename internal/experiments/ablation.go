package experiments

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Ablation exercises the design choices DESIGN.md calls out:
//
//  1. alternate-point sampling vs a full profiling sweep (probe cost vs
//     model error);
//  2. the order of the scaling-time polynomial (the paper chose quadratic
//     after trying several forms);
//  3. Eq. 1 with the paper-exact zero intercept vs a fitted intercept;
//  4. packing vs the rejected alternatives (serial batching, staggering,
//     Pywren-style reuse).
//
// Each sub-ablation fans its variants out with cfg.Workers and appends the
// resulting rows in variant order; a variant that needs a SimMeasurer owns
// its own instance (the measurer's probe counter is mutable state, so one
// is never shared across parallel cells).
func Ablation(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Ablations of ProPack's design choices",
		Header: []string{"ablation", "variant", "cost", "outcome"},
	}
	p := platform.AWSLambda()
	w := workload.Video{}
	for _, part := range []func() ([][]string, error){
		func() ([][]string, error) { return ablateSampling(cfg, p, w) },
		func() ([][]string, error) { return ablateScalingOrder(cfg, p) },
		func() ([][]string, error) { return ablateIntercept(cfg, p, w) },
		func() ([][]string, error) { return ablateAlternatives(cfg, p, w) },
		func() ([][]string, error) { return ablateInstanceSize(cfg) },
	} {
		rows, err := part()
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			t.AddRow(r...)
		}
	}
	return t, nil
}

// ablateInstanceSize tests the paper's "use the maximum memory size (10 GB)"
// design choice (Sec. 3): for each configured instance size — with vCPUs
// and bandwidth scaled as Lambda scales them — ProPack plans and runs at
// the top concurrency. Larger instances permit deeper packing and thus
// fewer instances; at high concurrency that dominates, confirming the
// paper's choice.
func ablateInstanceSize(cfg Config) ([][]string, error) {
	w := workload.Video{}
	c := cfg.topConcurrency()
	sizes := []float64{3584, 7168, 10240}
	return forAll(cfg, len(sizes), func(i int) ([]string, error) {
		mb := sizes[i]
		p, err := platform.AWSLambda().WithMemory(mb)
		if err != nil {
			return nil, err
		}
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		return []string{"instance size", fmt.Sprintf("%.0f MB / %d vCPU", mb, p.Shape.Cores),
			fmt.Sprintf("degree %d, %d inst", run.Plan.Degree, got.Instances),
			fmt.Sprintf("service %.0fs, expense $%.2f", got.TotalService, got.ExpenseUSD)}, nil
	})
}

// ablateSampling compares the alternate-point profile against the full
// sweep: probe seconds spent vs mean model error over all degrees.
func ablateSampling(cfg Config, p platform.Config, w workload.Workload) ([][]string, error) {
	variants := []bool{false, true}
	return forAll(cfg, len(variants), func(i int) ([]string, error) {
		full := variants[i]
		meas := &core.SimMeasurer{Config: p, Demand: w.Demand(), Seed: cfg.Seed}
		opts := core.ProfileOptionsFor(p, w.Demand())
		opts.FullSweep = full
		models, _, _, ov, err := core.BuildModels(meas, opts)
		if err != nil {
			return nil, err
		}
		// Evaluate against the true curve at every feasible degree.
		var errSum float64
		var n int
		for deg := 1; deg <= models.MaxDegree; deg++ {
			truth, err := meas.MeasureExec(deg)
			if err != nil {
				break
			}
			errSum += math.Abs(models.ET.At(deg)-truth) / truth
			n++
		}
		name := "alternate points"
		if full {
			name = "full sweep"
		}
		return []string{"sampling", name,
			fmt.Sprintf("%.0f probe-sec", ov.ExecProbeSec),
			fmt.Sprintf("mean ET error %.2f%%", 100*errSum/float64(n))}, nil
	})
}

// ablateScalingOrder fits polynomials of order 1–3 to the scaling probes
// and reports extrapolation error at the top concurrency. MeasureScaling is
// stateless, so the probes fan out in parallel; the fits are cheap and stay
// sequential.
func ablateScalingOrder(cfg Config, p platform.Config) ([][]string, error) {
	meas := &core.SimMeasurer{Config: p, Demand: workload.Video{}.Demand(), Seed: cfg.Seed}
	probes := []int{100, 250, 500, 1000, 1500, 2000, 3000}
	holdout := cfg.topConcurrency()
	ys, err := forAll(cfg, len(probes)+1, func(i int) (float64, error) {
		if i == len(probes) {
			return meas.MeasureScaling(holdout)
		}
		return meas.MeasureScaling(probes[i])
	})
	if err != nil {
		return nil, err
	}
	truth := ys[len(probes)]
	xs := make([]float64, len(probes))
	for i, c := range probes {
		xs[i] = float64(c)
	}
	var out [][]string
	for order := 1; order <= 3; order++ {
		poly, err := stats.PolyFit(xs, ys[:len(probes)], order)
		if err != nil {
			return nil, err
		}
		pred := poly.At(float64(holdout))
		out = append(out, []string{"scaling model", fmt.Sprintf("order-%d polynomial", order),
			fmt.Sprintf("%d probes", len(probes)),
			fmt.Sprintf("extrapolation error at C=%d: %.1f%%", holdout, 100*math.Abs(pred-truth)/truth)})
	}
	return out, nil
}

// ablateIntercept compares the paper-exact Eq. 1 (zero intercept) against
// the fitted-intercept variant on prediction error.
func ablateIntercept(cfg Config, p platform.Config, w workload.Workload) ([][]string, error) {
	variants := []bool{true, false}
	return forAll(cfg, len(variants), func(i int) ([]string, error) {
		exact := variants[i]
		meas := &core.SimMeasurer{Config: p, Demand: w.Demand(), Seed: cfg.Seed}
		opts := core.ProfileOptionsFor(p, w.Demand())
		opts.FitET = core.FitETOptions{PaperExact: exact}
		models, samples, _, _, err := core.BuildModels(meas, opts)
		if err != nil {
			return nil, err
		}
		var errSum float64
		for _, s := range samples {
			errSum += math.Abs(models.ET.At(s.Degree)-s.ETSec) / s.ETSec
		}
		name := "fitted intercept"
		if exact {
			name = "paper-exact (no intercept)"
		}
		return []string{"Eq. 1 form", name, fmt.Sprintf("%d samples", len(samples)),
			fmt.Sprintf("mean ET error %.2f%%", 100*errSum/float64(len(samples)))}, nil
	})
}

// ablateAlternatives runs the latency-hiding alternatives the paper
// rejects next to ProPack at the top concurrency.
func ablateAlternatives(cfg Config, p platform.Config, w workload.Workload) ([][]string, error) {
	c := cfg.topConcurrency()
	base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	strategies := []baseline.Strategy{
		baseline.SerialBatching{BatchSize: 250},
		baseline.Staggered{DelaySec: 0.2},
		baseline.Pywren{},
	}
	out, err := forAll(cfg, len(strategies), func(i int) ([]string, error) {
		s := strategies[i]
		m, err := s.Execute(p, w.Demand(), c, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return []string{"alternatives", s.Name(), fmt.Sprintf("C=%d", c),
			fmt.Sprintf("service %s, expense %s",
				spct(trace.Improvement(base.TotalService, m.TotalService)),
				spct(trace.Improvement(base.ExpenseUSD, m.ExpenseUSD)))}, nil
	})
	if err != nil {
		return nil, err
	}
	run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	got := run.MetricsWithOverhead()
	out = append(out, []string{"alternatives", "ProPack", fmt.Sprintf("C=%d", c),
		fmt.Sprintf("service %s, expense %s",
			spct(trace.Improvement(base.TotalService, got.TotalService)),
			spct(trace.Improvement(base.ExpenseUSD, got.ExpenseUSD)))})
	return out, nil
}
