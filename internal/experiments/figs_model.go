package experiments

import (
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// buildModels runs ProPack's modeling pipeline for one application on one
// platform (shared by several drivers).
func buildModels(cfg Config, p platform.Config, w workload.Workload) (core.Models, []core.ETSample, []core.ScalingSample, core.Overhead, error) {
	meas := &core.SimMeasurer{Config: p, Demand: w.Demand(), Seed: cfg.Seed}
	opts := core.ProfileOptionsFor(p, w.Demand())
	if cfg.Quick {
		opts.ScalingProbes = []int{50, 100, 200, 400, 700, 1000}
	}
	return core.BuildModels(meas, opts)
}

// Fig4 reproduces the interference figure: measured execution time at the
// sampled packing degrees next to Eq. 1's fit, per application.
func Fig4(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 4: execution time vs packing degree — observed and Eq. 1 model",
		Header: []string{"app", "degree", "observed", "model", "error"},
	}
	p := platform.AWSLambda()
	apps := workload.Motivation()
	rows, err := forAll(cfg, len(apps), func(i int) ([][]string, error) {
		w := apps[i]
		models, samples, _, _, err := buildModels(cfg, p, w)
		if err != nil {
			return nil, err
		}
		var out [][]string
		for _, s := range samples {
			pred := models.ET.At(s.Degree)
			out = append(out, []string{w.Name(), itoa(s.Degree), sec(s.ETSec), sec(pred),
				pct(100 * (pred - s.ETSec) / s.ETSec)})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, appRows := range rows {
		for _, r := range appRows {
			t.AddRow(r...)
		}
	}
	return t, nil
}

// Validation reproduces Sec. 2.4: the Pearson χ² goodness-of-fit of the
// modeled service time and expense against observed runs across packing
// degrees, at 99.5% confidence with 14 degrees of freedom. The paper's
// statistics: ≤3.81 for service time, ≤0.055 for expense, both under the
// 4.075 critical value.
func Validation(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Sec 2.4: Pearson χ² goodness-of-fit (critical value 4.075 at 99.5%, df=14)",
		Header: []string{"platform", "app", "concurrency", "quantity", "χ²", "critical", "verdict"},
	}
	c := cfg.midConcurrency()
	providers := platform.Providers()
	if cfg.Quick {
		providers = providers[:1] // AWS only on the quick grid
	}
	apps := workload.Motivation()
	rows, err := forAll(cfg, len(providers)*len(apps), func(i int) ([][]string, error) {
		p, w := providers[i/len(apps)], apps[i%len(apps)]
		models, _, _, _, err := buildModels(cfg, p, w)
		if err != nil {
			return nil, err
		}
		var obs []core.Observation
		for _, deg := range core.SampleDegrees(models.MaxDegree) {
			res, err := platform.Run(p, platform.Burst{
				Demand: w.Demand(), Functions: c, Degree: deg, Seed: cfg.Seed + 101,
			})
			if err != nil {
				break
			}
			obs = append(obs, core.Observation{
				Degree:     deg,
				ServiceSec: res.TotalServiceTime(),
				ExpenseUSD: res.ExpenseUSD(),
			})
		}
		sv, ev, err := models.ValidateModels(c, obs, core.PaperValidationDF)
		if err != nil {
			return nil, err
		}
		var out [][]string
		for _, v := range []core.Validation{sv, ev} {
			verdict := "ACCEPT"
			if !v.Accepted {
				verdict = "REJECT"
			}
			out = append(out, []string{p.Name, w.Name(), itoa(c), v.Quantity, f3(v.Stat), f3(v.Critical), verdict})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cellRows := range rows {
		for _, r := range cellRows {
			t.AddRow(r...)
		}
	}
	return t, nil
}
