package experiments

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/interfere"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// oracleFromSweep picks, from an exhaustive degree sweep, the degree that
// minimizes the equal-weight fractional regret of (q-percentile service,
// expense) — the observed analogue of Eq. 7 at a given figure of merit.
func oracleFromSweep(sweep []trace.Metrics, q float64) int {
	service := func(m trace.Metrics) float64 {
		switch q {
		case 50:
			return m.MedianService
		case 95:
			return m.TailService
		default:
			return m.TotalService
		}
	}
	bestS, bestE := math.Inf(1), math.Inf(1)
	for _, m := range sweep {
		if s := service(m); s < bestS {
			bestS = s
		}
		if m.ExpenseUSD < bestE {
			bestE = m.ExpenseUSD
		}
	}
	deg, best := sweep[0].Degree, math.Inf(1)
	for _, m := range sweep {
		v := 0.5*(service(m)-bestS)/bestS + 0.5*(m.ExpenseUSD-bestE)/bestE
		if v < best {
			deg, best = m.Degree, v
		}
	}
	return deg
}

// averagedSweep repeats the exhaustive degree sweep with `trials` seeds and
// averages the metrics per degree — the paper repeats every experiment for
// statistical significance, and the Oracle degree is meaningless otherwise
// (neighbouring degrees differ by less than the run-to-run jitter). The
// trials fan out over `workers` in parallel (each trial owns its seed), and
// the averages are folded in trial order, so the result is bit-identical to
// the sequential loop.
func averagedSweep(cfg Config, p platform.Config, d interfere.Demand, c int, maxDeg, trials int) ([]trace.Metrics, error) {
	sweeps, err := forAll(cfg, trials, func(t int) ([]trace.Metrics, error) {
		return baseline.SweepWithOptions(p, d, c, cfg.Seed+int64(t)*1009, maxDeg,
			baseline.SweepOptions{Workers: cfg.Workers})
	})
	if err != nil {
		return nil, err
	}
	var acc []trace.Metrics
	for _, sweep := range sweeps {
		if acc == nil {
			acc = sweep
			continue
		}
		if len(sweep) < len(acc) {
			acc = acc[:len(sweep)]
		}
		for i := range acc {
			acc[i].ScalingTime += sweep[i].ScalingTime
			acc[i].TotalService += sweep[i].TotalService
			acc[i].TailService += sweep[i].TailService
			acc[i].MedianService += sweep[i].MedianService
			acc[i].ExpenseUSD += sweep[i].ExpenseUSD
		}
	}
	inv := 1 / float64(trials)
	for i := range acc {
		acc[i].ScalingTime *= inv
		acc[i].TotalService *= inv
		acc[i].TailService *= inv
		acc[i].MedianService *= inv
		acc[i].ExpenseUSD *= inv
	}
	return acc, nil
}

// Fig8 reproduces the Oracle-vs-ProPack packing-degree comparison: for each
// application and concurrency, the brute-force Oracle degree for the total,
// tail, and median figures of merit next to ProPack's analytical choice.
// The paper finds ProPack correct in all but two cases.
func Fig8(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 8: Oracle vs ProPack packing degrees (joint objective)",
		Header: []string{"app", "concurrency", "metric", "oracle", "propack", "delta", "match"},
	}
	p := platform.AWSLambda()
	apps := workload.Motivation()
	rows, err := forAll(cfg, len(apps), func(i int) ([][]string, error) {
		w := apps[i]
		models, _, _, _, err := buildModels(cfg, p, w)
		if err != nil {
			return nil, err
		}
		pl := core.NewPlanner(models) // one degree table per concurrency, shared by the three quantiles
		var out [][]string
		for _, c := range cfg.concurrencies() {
			sweep, err := averagedSweep(cfg, p, w.Demand(), c, models.MaxDegree, 3)
			if err != nil {
				return nil, err
			}
			for _, metric := range []struct {
				name string
				q    float64
			}{{"total", 100}, {"tail", 95}, {"median", 50}} {
				oracle := oracleFromSweep(sweep, metric.q)
				pp, err := pl.OptimalDegreeForQuantile(c, metric.q, core.Balanced())
				if err != nil {
					return nil, err
				}
				match := "yes"
				if pp != oracle {
					match = "no"
				}
				out = append(out, []string{w.Name(), itoa(c), metric.name,
					itoa(oracle), itoa(pp), itoa(pp - oracle), match})
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, appRows := range rows {
		for _, r := range appRows {
			t.AddRow(r...)
		}
	}
	return t, nil
}

// improvementRows runs ProPack (balanced weights, overhead included) and
// the no-packing baseline for each motivation app and concurrency, and
// reports improvement on the selected metric. The (app × concurrency) grid
// fans out in parallel; rows land in grid order.
func improvementRows(cfg Config, title string, header string,
	pick func(m trace.Metrics) float64) (*trace.Table, error) {
	t := &trace.Table{
		Title:  title,
		Header: []string{"app", "concurrency", "degree", "baseline " + header, "propack " + header, "improvement"},
	}
	p := platform.AWSLambda()
	apps := workload.Motivation()
	cs := cfg.concurrencies()
	rows, err := forAll(cfg, len(apps)*len(cs), func(i int) ([]string, error) {
		w, c := apps[i/len(cs)], cs[i%len(cs)]
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		return []string{w.Name(), itoa(c), itoa(run.Plan.Degree),
			sec(pick(base)), sec(pick(got)),
			pct(trace.Improvement(pick(base), pick(got)))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// Fig9 reproduces the headline service-time result: >50% improvement in
// most cases, ~85% on average at a concurrency of 5000.
func Fig9(cfg Config) (*trace.Table, error) {
	return improvementRows(cfg,
		"Fig 9: total service time, ProPack vs no packing (overhead included)",
		"service", func(m trace.Metrics) float64 { return m.TotalService })
}

// Fig10 reproduces the scaling-time result: the reduction grows with
// concurrency and exceeds the service-time reduction (often >90% at 5000),
// since packing pays back some gains as longer instance execution.
func Fig10(cfg Config) (*trace.Table, error) {
	return improvementRows(cfg,
		"Fig 10: scaling time, ProPack vs no packing",
		"scaling", func(m trace.Metrics) float64 { return m.ScalingTime })
}

// Fig11 reproduces the expense result: a consistent reduction at every
// concurrency (66% on average at 5000 in the paper), even though scaling
// time itself is never billed.
func Fig11(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 11: expense, ProPack vs no packing (modeling overhead included)",
		Header: []string{"app", "concurrency", "degree", "baseline", "propack", "improvement"},
	}
	p := platform.AWSLambda()
	apps := workload.Motivation()
	cs := cfg.concurrencies()
	rows, err := forAll(cfg, len(apps)*len(cs), func(i int) ([]string, error) {
		w, c := apps[i/len(cs)], cs[i%len(cs)]
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		return []string{w.Name(), itoa(c), itoa(run.Plan.Degree),
			usd(base.ExpenseUSD), usd(got.ExpenseUSD),
			pct(trace.Improvement(base.ExpenseUSD, got.ExpenseUSD))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// Fig12 reproduces the absolute-value reference: total service function-
// hours and dollars at the mid concurrency (2000 in the paper, where the
// baseline consumes >50 function-hours and >$25, and ProPack <14 hours and
// <$12).
func Fig12(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 12: absolute function-hours and expense at mid concurrency",
		Header: []string{"app", "technique", "degree", "function-hours", "expense"},
	}
	p := platform.AWSLambda()
	c := cfg.midConcurrency()
	apps := workload.Motivation()
	rows, err := forAll(cfg, len(apps), func(i int) ([][]string, error) {
		w := apps[i]
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		return [][]string{
			{w.Name(), "no packing", "1", f3(base.FunctionHours), usd(base.ExpenseUSD)},
			{w.Name(), "ProPack", itoa(run.Plan.Degree), f3(got.FunctionHours), usd(got.ExpenseUSD)},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, appRows := range rows {
		for _, r := range appRows {
			t.AddRow(r...)
		}
	}
	return t, nil
}
