// Package experiments contains one driver per figure of the paper's
// evaluation (Figs. 1–2 of the motivation, Figs. 4–21 of the design and
// evaluation sections, plus the Sec. 2.4 χ² validation). Each driver
// regenerates the rows/series of its figure against the simulated
// platforms; `cmd/expgen` prints them and `bench_test.go` exposes one
// testing.B benchmark per driver.
//
// Absolute numbers come from a simulator, not the authors' testbed: the
// claims to check are the *shapes* — who wins, by what rough factor, and
// where the crossovers fall. EXPERIMENTS.md records paper-vs-measured for
// each driver.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all jittered executions; the default 0 is a valid seed.
	Seed int64
	// Quick shrinks concurrency grids so the full suite runs in seconds
	// (used by unit tests); the default false reproduces the paper's grids.
	Quick bool
	// Workers bounds the parallel fan-out of each driver's repetition
	// loops (grid cells, trials, probe runs). 0 means GOMAXPROCS; 1
	// reproduces the historical sequential execution. Every driver's
	// output is byte-identical for any value — cells derive their RNG
	// streams from (Seed, cell) and rows are assembled in grid order.
	Workers int
}

// forAll evaluates n independent grid cells of a figure with cfg.Workers
// parallel workers and returns the per-cell results in cell order. Cells
// must be pure functions of their index (all randomness from cfg.Seed plus
// the cell's own coordinates) so the table bytes stay independent of the
// worker count.
func forAll[R any](cfg Config, n int, fn func(i int) (R, error)) ([]R, error) {
	return parallel.Map(context.Background(), n, func(_ context.Context, i int) (R, error) {
		return fn(i)
	}, parallel.Workers(cfg.Workers))
}

// concurrencies is the paper's evaluation grid (Figs. 8–11 etc.).
func (c Config) concurrencies() []int {
	if c.Quick {
		return []int{1000, 2000}
	}
	return []int{1000, 2000, 3000, 4000, 5000}
}

// topConcurrency is the high-concurrency operating point headline numbers
// are quoted at.
func (c Config) topConcurrency() int {
	if c.Quick {
		return 2000
	}
	return 5000
}

// midConcurrency is the operating point of the absolute-value figure
// (Fig. 12) and the expense-curve figure (Fig. 7).
func (c Config) midConcurrency() int {
	if c.Quick {
		return 1000
	}
	return 2000
}

// Experiment is one reproducible figure.
type Experiment struct {
	// ID is the figure identifier, e.g. "fig9" or "validation".
	ID string
	// Title summarizes what the paper's figure shows.
	Title string
	// Run executes the experiment and returns its table.
	Run func(Config) (*trace.Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Scaling time as a fraction of total service time across providers", Run: Fig1},
		{ID: "fig2", Title: "Scheduling, start-up, and shipping times all grow with concurrency", Run: Fig2},
		{ID: "fig4", Title: "Execution time vs packing degree: observations and Eq. 1 fits", Run: Fig4},
		{ID: "fig5a", Title: "Execution time of an instance is unaffected by concurrency", Run: Fig5a},
		{ID: "fig5b", Title: "Scaling time is application-independent", Run: Fig5b},
		{ID: "fig6", Title: "Scaling time decreases with packing degree at fixed concurrency", Run: Fig6},
		{ID: "fig7", Title: "Expense is not monotonic in packing degree", Run: Fig7},
		{ID: "fig8", Title: "Oracle packing degrees vs ProPack across concurrency levels", Run: Fig8},
		{ID: "fig9", Title: "ProPack's total service time improvement over no packing", Run: Fig9},
		{ID: "fig10", Title: "ProPack's scaling time improvement over no packing", Run: Fig10},
		{ID: "fig11", Title: "ProPack's expense reduction over no packing", Run: Fig11},
		{ID: "fig12", Title: "Absolute service function-hours and expense at mid concurrency", Run: Fig12},
		{ID: "fig13", Title: "ProPack (service time objective) vs joint objective", Run: Fig13},
		{ID: "fig14", Title: "ProPack (expense objective) vs joint objective", Run: Fig14},
		{ID: "fig15", Title: "Oracle degree rises as expense gains importance", Run: Fig15},
		{ID: "fig16", Title: "Sensitivity to the service/expense weights (Stateless Cost)", Run: Fig16},
		{ID: "fig17", Title: "Smith-Waterman: service, scaling, and expense improvements", Run: Fig17},
		{ID: "fig18", Title: "FuncX vs AWS Lambda: scaling and ProPack's effect", Run: Fig18},
		{ID: "fig19", Title: "ProPack vs Pywren: service time and expense", Run: Fig19},
		{ID: "fig20", Title: "Xapian under a QoS tail-latency bound", Run: Fig20},
		{ID: "fig21", Title: "ProPack across AWS, Google, and Azure", Run: Fig21},
		{ID: "validation", Title: "Sec. 2.4 Pearson χ² goodness-of-fit of ProPack's models", Run: Validation},
		{ID: "ablation", Title: "Ablations: sampling policy, scaling-model order, Eq. 1 intercept, alternatives", Run: Ablation},
		{ID: "ext-hetero", Title: "Extension: heterogeneous (cross-application) packing (Sec. 5)", Run: ExtHetero},
		{ID: "ext-provider", Title: "Extension: provider-side mitigation shrinks the optimal degree (Sec. 5)", Run: ExtProvider},
		{ID: "ext-throttle", Title: "Extension: packing dodges account concurrency limits", Run: ExtThrottle},
		{ID: "ext-decentral", Title: "Extension: decentralized scheduling is complementary to packing (Sec. 5)", Run: ExtDecentral},
		{ID: "ext-amortize", Title: "Extension: modeling overhead amortizes across runs (Sec. 2.2)", Run: ExtAmortize},
		{ID: "ext-joint", Title: "Extension: joint degree × memory planning (pruned 2-D argmin)", Run: ExtJoint},
	}
}

// ByID finds an experiment; the error lists valid IDs.
func ByID(id string) (Experiment, error) {
	var ids []string
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// pct and spct render percentages; NaN (e.g. trace.Improvement over a zero
// base) reads "n/a" rather than a fake number.
func pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", v)
}

func spct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", v)
}

func sec(v float64) string  { return fmt.Sprintf("%.1fs", v) }
func usd(v float64) string  { return fmt.Sprintf("$%.2f", v) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func frac(v float64) string { return fmt.Sprintf("%.2f", v) }
