package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ExtHetero exercises the Sec. 5 extension: heterogeneous jobs where
// functions of different applications may share instances. Two app pairs
// bracket the design space: duration-matched apps (Video + Smith-Waterman),
// where cross-application bins give compute-bound members lighter
// neighbours; and duration-mismatched apps (Smith-Waterman + Stateless
// Cost), where short functions must not ride inside long instances.
func ExtHetero(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Extension (Sec. 5): heterogeneous packing",
		Header: []string{"job", "deployment", "instances", "service", "expense"},
	}
	p := platform.AWSLambda()
	count := 1000
	if cfg.Quick {
		count = 600
	}
	jobs := []struct {
		name string
		apps []orchestrator.MixedApp
	}{
		{"Video+SmithWaterman (matched durations)", []orchestrator.MixedApp{
			{Workload: workload.Video{}, Count: count},
			{Workload: workload.SmithWaterman{}, Count: count},
		}},
		{"SmithWaterman+StatelessCost (mismatched durations)", []orchestrator.MixedApp{
			{Workload: workload.SmithWaterman{}, Count: count},
			{Workload: workload.StatelessCost{}, Count: count},
		}},
	}
	rows, err := forAll(cfg, len(jobs), func(i int) ([][]string, error) {
		job := jobs[i]
		base, err := orchestrator.ExecuteJointUnpacked(p, job.apps, cfg.Seed, nil)
		if err != nil {
			return nil, err
		}
		perApp, degrees, err := orchestrator.ExecutePerAppPacked(p, job.apps, core.Balanced(), cfg.Seed, nil)
		if err != nil {
			return nil, err
		}
		mixed, err := orchestrator.RunMixedProPack(p, job.apps, core.Balanced(), cfg.Seed, nil)
		if err != nil {
			return nil, err
		}
		return [][]string{
			{job.name, "unpacked", itoa(base.Instances),
				sec(base.TotalService), usd(base.ExpenseUSD)},
			{job.name, fmt.Sprintf("per-app ProPack (degrees %v)", degrees),
				itoa(perApp.Instances), sec(perApp.TotalService), usd(perApp.ExpenseUSD)},
			{job.name, fmt.Sprintf("hetero planner (%s)", mixed.Plan.Strategy),
				itoa(mixed.Plan.Instances()), sec(mixed.Metrics.TotalService), usd(mixed.Metrics.ExpenseUSD)},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, jobRows := range rows {
		for _, r := range jobRows {
			t.AddRow(r...)
		}
	}
	return t, nil
}

// ExtProvider exercises the Sec. 5 "interaction with the cloud provider
// side" discussion: if the provider mitigates the scaling bottleneck (a
// faster placement search), ProPack's optimal packing degree should
// decrease — desirable for large-memory functions.
func ExtProvider(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Extension (Sec. 5): provider-side mitigation shrinks the optimal degree",
		Header: []string{"provider speedup", "scaling@C", "propack degree", "service improv", "expense improv"},
	}
	w := workload.Video{}
	c := cfg.topConcurrency()
	speedups := []float64{1, 2, 4, 10}
	rows, err := forAll(cfg, len(speedups), func(i int) ([]string, error) {
		speedup := speedups[i]
		// Mitigation applies across the control plane: placement search,
		// image builds, and shipping all speed up together.
		p := platform.AWSLambda()
		p.SchedPerBusySec /= speedup
		p.SchedBaseSec /= speedup
		p.BuildSec /= speedup
		p.BuildGrowthSec /= speedup
		p.ShipSec /= speedup
		p.ShipGrowthSec /= speedup
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		return []string{fmt.Sprintf("×%.0f", speedup), sec(base.ScalingTime), itoa(run.Plan.Degree),
			pct(trace.Improvement(base.TotalService, got.TotalService)),
			pct(trace.Improvement(base.ExpenseUSD, got.ExpenseUSD))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// ExtJoint exercises the joint (degree × memory) planner: one model stack
// per memory size on AWS Lambda's sizing curve, the weight sweep showing
// where the 2-D argmin leaves the biggest instance for a smaller one, and
// the Sec. 2.4 χ² validation of every per-size stack against observed runs
// at that size (cfg.WithMemory resizes compute the way Lambda does).
func ExtJoint(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Extension: joint degree × memory planning — weight sweep and per-size χ² validation",
		Header: []string{"mem", "quantity", "value", "verdict"},
	}
	p := platform.AWSLambda()
	w := workload.Video{}
	sizes := []float64{4096, 6144, 8192, 10240}
	if cfg.Quick {
		sizes = []float64{5120, 10240}
	}
	probes, err := core.GridProbesFor(p, w.Demand(), sizes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	grid, _, err := core.BuildGridModels(probes)
	if err != nil {
		return nil, err
	}
	c := cfg.topConcurrency()
	for _, ws := range []float64{0, 0.25, 0.5, 0.75, 1} {
		plan, err := grid.PlanJointFor(c, core.Weights{Service: ws, Expense: 1 - ws})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0fMB", plan.MemMB),
			fmt.Sprintf("plan W_S=%.2f at C=%d", ws, c),
			fmt.Sprintf("degree %d, %s, %s", plan.Degree,
				sec(plan.PredictedServiceSec), usd(plan.PredictedExpenseUSD)), "—")
	}
	vc := cfg.midConcurrency()
	rows, err := forAll(cfg, len(grid.Sizes), func(i int) ([][]string, error) {
		s := grid.Sizes[i]
		sized, err := p.WithMemory(s.MemMB)
		if err != nil {
			return nil, err
		}
		var obs []core.Observation
		for _, deg := range core.SampleDegrees(s.Models.MaxDegree) {
			res, err := platform.Run(sized, platform.Burst{
				Demand: w.Demand(), Functions: vc, Degree: deg, Seed: cfg.Seed + 101,
			})
			if err != nil {
				break
			}
			obs = append(obs, core.Observation{
				Degree:     deg,
				ServiceSec: res.TotalServiceTime(),
				ExpenseUSD: res.ExpenseUSD(),
			})
		}
		sv, ev, err := s.Models.ValidateModels(vc, obs, core.PaperValidationDF)
		if err != nil {
			return nil, err
		}
		var out [][]string
		for _, v := range []core.Validation{sv, ev} {
			verdict := "ACCEPT"
			if !v.Accepted {
				verdict = "REJECT"
			}
			out = append(out, []string{fmt.Sprintf("%.0fMB", s.MemMB), v.Quantity + " χ²",
				fmt.Sprintf("%s vs critical %s (C=%d)", f3(v.Stat), f3(v.Critical), vc), verdict})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, sizeRows := range rows {
		for _, r := range sizeRows {
			t.AddRow(r...)
		}
	}
	return t, nil
}

// ExtThrottle exercises account-level concurrency limits (AWS accounts
// default to 1000 concurrent executions; the paper's 5000-way experiments
// needed a raised limit). An unpacked burst beyond the limit serializes
// into waves; packing keeps the instance count under the limit — an extra
// ProPack benefit on top of the scaling-time argument.
func ExtThrottle(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Extension: account concurrency limits — packing dodges throttling",
		Header: []string{"limit", "deployment", "instances", "service", "expense"},
	}
	w := workload.Video{}
	c := cfg.topConcurrency()
	limits := []int{0, 500, 250}
	rows, err := forAll(cfg, len(limits), func(i int) ([][]string, error) {
		limit := limits[i]
		p := platform.AWSLambda()
		p.ConcurrencyLimit = limit
		label := "unlimited"
		if limit > 0 {
			label = itoa(limit)
		}
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		out := [][]string{{label, "no packing", itoa(base.Instances), sec(base.TotalService), usd(base.ExpenseUSD)}}
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		out = append(out, []string{label, fmt.Sprintf("ProPack (degree %d)", run.Plan.Degree),
			itoa(got.Instances), sec(got.TotalService), usd(got.ExpenseUSD)})
		if limit > 0 && run.Plan.Degree*limit < c {
			// The stock plan still exceeds the limit; the limit-aware
			// variant packs deeper so the burst never throttles.
			deg, err := run.Models.OptimalDegreeConstrained(c, core.Balanced(), limit)
			if err != nil {
				return nil, err
			}
			aware, err := orchestrator.Execute(p, w.Demand(), c, deg, cfg.Seed)
			if err != nil {
				return nil, err
			}
			out = append(out, []string{label, fmt.Sprintf("ProPack limit-aware (degree %d)", deg),
				itoa(aware.Instances), sec(aware.TotalService), usd(aware.ExpenseUSD)})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, limitRows := range rows {
		for _, r := range limitRows {
			t.AddRow(r...)
		}
	}
	return t, nil
}

// ExtDecentral exercises the Sec. 5 related-work discussion: decentralized
// schedulers (Wukong, FaaSNet, Owl) attack the same bottleneck from the
// provider side, but "decentralization is not free" (coordination overhead)
// "and may continue to be prone to scalability bottlenecks at high
// concurrency" — and packing "can be complementary in nature". Sharding the
// placement scheduler S ways divides the search contention by S at the cost
// of a per-placement coordination fee that grows with S; ProPack stacked on
// top keeps winning at every S.
func ExtDecentral(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Extension (Sec. 5): decentralized scheduling is complementary to packing",
		Header: []string{"schedulers", "baseline scaling", "baseline service", "propack degree", "propack service", "improvement"},
	}
	w := workload.Video{}
	c := cfg.topConcurrency()
	shardCounts := []int{1, 2, 4, 8}
	rows, err := forAll(cfg, len(shardCounts), func(i int) ([]string, error) {
		shards := shardCounts[i]
		p := platform.AWSLambda()
		p.SchedServers = shards
		// Coordination is not free: each placement pays for keeping S
		// schedulers' datacenter views consistent.
		p.SchedBaseSec += 0.02 * float64(shards-1)
		base, err := orchestrator.Execute(p, w.Demand(), c, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		run, err := orchestrator.RunProPack(p, w.Demand(), c, core.Balanced(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		got := run.MetricsWithOverhead()
		return []string{itoa(shards), sec(base.ScalingTime), sec(base.TotalService),
			itoa(run.Plan.Degree), sec(got.TotalService),
			pct(trace.Improvement(base.TotalService, got.TotalService))}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// ExtAmortize validates the paper's Sec. 2.2 amortization argument: the
// modeling overhead is paid once per (platform, application) and reused via
// the registry, so across a stream of jobs the overhead fraction of the
// total bill collapses ("in practice, this overhead will be much lower due
// to amortization over thousands of applications and runs").
func ExtAmortize(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Extension (Sec. 2.2): modeling overhead amortizes across runs",
		Header: []string{"jobs run", "cumulative expense", "cumulative overhead", "overhead share"},
	}
	p := platform.AWSLambda()
	w := workload.Video{}
	c := cfg.midConcurrency()

	// Pay the modeling cost once…
	meas := &core.SimMeasurer{Config: p, Demand: w.Demand(), Seed: cfg.Seed}
	models, _, _, overhead, err := core.BuildModels(meas, core.ProfileOptionsFor(p, w.Demand()))
	if err != nil {
		return nil, err
	}
	deg, err := models.OptimalDegree(c, core.Balanced())
	if err != nil {
		return nil, err
	}
	// …then reuse the cached models for every subsequent job. Each job's
	// seed depends only on its index, so the stream fans out in parallel
	// and the cumulative sums fold in job order.
	jobs := []int{1, 5, 20, 100}
	if cfg.Quick {
		jobs = []int{1, 5, 20}
	}
	total := jobs[len(jobs)-1]
	expenses, err := forAll(cfg, total, func(i int) (float64, error) {
		m, err := orchestrator.Execute(p, w.Demand(), c, deg, cfg.Seed+int64(i))
		if err != nil {
			return 0, err
		}
		return m.ExpenseUSD, nil
	})
	if err != nil {
		return nil, err
	}
	var spent float64
	done := 0
	for _, target := range jobs {
		for done < target {
			spent += expenses[done]
			done++
		}
		ov := overhead.TotalUSD()
		t.AddRow(itoa(done), usd(spent+ov), usd(ov), pct(100*ov/(spent+ov)))
	}
	return t, nil
}
