package experiments

import (
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig1 reproduces the motivation figure: scaling time as a fraction of the
// total service time, per provider, application, and concurrency level. The
// paper's headline: more than 80% on Lambda at a concurrency of 5000.
func Fig1(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 1: scaling time / total service time (no packing)",
		Header: []string{"platform", "app", "concurrency", "scaling", "total service", "fraction"},
	}
	providers := platform.Providers()
	apps := workload.Motivation()
	cs := cfg.concurrencies()
	rows, err := forAll(cfg, len(providers)*len(apps)*len(cs), func(i int) ([]string, error) {
		p := providers[i/(len(apps)*len(cs))]
		w := apps[i/len(cs)%len(apps)]
		c := cs[i%len(cs)]
		res, err := platform.Run(p, platform.Burst{
			Demand: w.Demand(), Functions: c, Degree: 1, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return []string{p.Name, w.Name(), itoa(c),
			sec(res.ScalingTime()), sec(res.TotalServiceTime()),
			frac(res.ScalingTime() / res.TotalServiceTime())}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// Fig2 reproduces the stage-decomposition figure: the time spent in
// scheduling, start-up (image build), and shipping each grows with
// concurrency. Each component is the stage's aggregate busy time per
// server (the stages pipeline, so they overlap), normalized by the scaling
// time at the top concurrency as in the paper.
func Fig2(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 2: control-plane stage time (% of scaling time at top concurrency)",
		Header: []string{"concurrency", "scheduling", "start-up", "shipping"},
	}
	p := platform.AWSLambda()
	d := workload.Video{}.Demand() // stage times are application-independent
	type row struct {
		c                           int
		sched, build, ship, scaling float64
	}
	cs := cfg.concurrencies()
	rows, err := forAll(cfg, len(cs), func(i int) (row, error) {
		c := cs[i]
		res, err := platform.Run(p, platform.Burst{Demand: d, Functions: c, Degree: 1, Seed: cfg.Seed})
		if err != nil {
			return row{}, err
		}
		return row{c: c, sched: res.SchedBusySec, build: res.BuildBusySec,
			ship: res.ShipBusySec, scaling: res.ScalingTime()}, nil
	})
	if err != nil {
		return nil, err
	}
	var norm float64
	for _, r := range rows {
		if r.c == cfg.topConcurrency() {
			norm = r.scaling
		}
	}
	for _, r := range rows {
		t.AddRow(itoa(r.c), pct(100*r.sched/norm), pct(100*r.build/norm), pct(100*r.ship/norm))
	}
	return t, nil
}

// Fig5a reproduces the isolation check: the execution time of a single
// function instance barely moves as the concurrency level grows from the
// bottom to the top of the grid (<5% in the paper).
func Fig5a(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 5a: per-instance execution time vs concurrency (degree 1)",
		Header: []string{"app", "concurrency", "mean exec", "drift vs first"},
	}
	p := platform.AWSLambda()
	apps := workload.Motivation()
	cs := cfg.concurrencies()
	ets, err := forAll(cfg, len(apps)*len(cs), func(i int) (float64, error) {
		w, c := apps[i/len(cs)], cs[i%len(cs)]
		res, err := platform.Run(p, platform.Burst{Demand: w.Demand(), Functions: c, Degree: 1, Seed: cfg.Seed})
		if err != nil {
			return 0, err
		}
		return res.MeanExecSeconds(), nil
	})
	if err != nil {
		return nil, err
	}
	for ai, w := range apps {
		first := ets[ai*len(cs)]
		for ci, c := range cs {
			et := ets[ai*len(cs)+ci]
			t.AddRow(w.Name(), itoa(c), sec(et), pct(100*(et-first)/first))
		}
	}
	return t, nil
}

// Fig5b reproduces the application-independence check: the scaling time of
// the same burst size is identical no matter which application runs.
func Fig5b(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 5b: scaling time vs concurrency, per application (degree 1)",
		Header: []string{"concurrency", "Video", "Sort", "Stateless Cost", "max spread"},
	}
	p := platform.AWSLambda()
	apps := workload.Motivation()
	cs := cfg.concurrencies()
	scalings, err := forAll(cfg, len(cs)*len(apps), func(i int) (float64, error) {
		c, w := cs[i/len(apps)], apps[i%len(apps)]
		res, err := platform.Run(p, platform.Burst{Demand: w.Demand(), Functions: c, Degree: 1, Seed: cfg.Seed})
		if err != nil {
			return 0, err
		}
		return res.ScalingTime(), nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range cs {
		vals := scalings[ci*len(apps) : (ci+1)*len(apps)]
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		t.AddRow(itoa(c), sec(vals[0]), sec(vals[1]), sec(vals[2]), pct(100*(hi-lo)/hi))
	}
	return t, nil
}

// Fig6 reproduces the packing effect on scaling: at a fixed concurrency the
// scaling time falls steeply as the packing degree rises.
func Fig6(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 6: scaling time vs packing degree at fixed concurrency",
		Header: []string{"app", "degree", "instances", "scaling time"},
	}
	p := platform.AWSLambda()
	c := cfg.topConcurrency()
	type cell struct {
		w   workload.Workload
		deg int
	}
	var cells []cell
	for _, w := range workload.Motivation() {
		for _, deg := range []int{1, 2, 4, 8, 12} {
			if deg > p.Shape.MaxDegree(w.Demand()) {
				continue
			}
			cells = append(cells, cell{w, deg})
		}
	}
	rows, err := forAll(cfg, len(cells), func(i int) ([]string, error) {
		w, deg := cells[i].w, cells[i].deg
		res, err := platform.Run(p, platform.Burst{Demand: w.Demand(), Functions: c, Degree: deg, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		return []string{w.Name(), itoa(deg), itoa(res.Burst.Instances()), sec(res.ScalingTime())}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t, nil
}

// Fig7 reproduces the expense curve: the bill first falls with the packing
// degree (fewer instances) and eventually rises again (interference), so
// the optimum is interior — the reason Eq. 4 needs solving at all.
func Fig7(cfg Config) (*trace.Table, error) {
	t := &trace.Table{
		Title:  "Fig 7: expense vs packing degree (non-monotonic)",
		Header: []string{"app", "degree", "expense", "vs degree 1"},
	}
	p := platform.AWSLambda()
	c := cfg.midConcurrency()
	if !cfg.Quick {
		c = 1000 // the paper plots Fig. 7 at a concurrency of 1000
	}
	degrees := []int{1, 2, 4, 8, 12, 16, 20, 25, 30, 35, 40}
	apps := workload.Motivation()
	// A cell past the platform's execution limit is a normal truncation
	// signal for its app's sweep, so failures ride in the value.
	type cell struct {
		expense float64
		ok      bool
	}
	cells, err := forAll(cfg, len(apps)*len(degrees), func(i int) (cell, error) {
		w, deg := apps[i/len(degrees)], degrees[i%len(degrees)]
		if deg > p.Shape.MaxDegree(w.Demand()) {
			return cell{}, nil
		}
		res, err := platform.Run(p, platform.Burst{Demand: w.Demand(), Functions: c, Degree: deg, Seed: cfg.Seed})
		if err != nil {
			return cell{}, nil // execution limit: stop this app's sweep
		}
		return cell{expense: res.ExpenseUSD(), ok: true}, nil
	})
	if err != nil {
		return nil, err
	}
	for ai, w := range apps {
		maxDeg := p.Shape.MaxDegree(w.Demand())
		var base float64
		for di, deg := range degrees {
			if deg > maxDeg {
				break
			}
			cl := cells[ai*len(degrees)+di]
			if !cl.ok {
				break
			}
			if deg == 1 {
				base = cl.expense
			}
			t.AddRow(w.Name(), itoa(deg), usd(cl.expense),
				pct(trace.Improvement(base, cl.expense)))
		}
	}
	return t, nil
}
