package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestFig16WeightSweepMonotone: as W_S grows, the chosen degree must not
// grow (service optimization packs less than expense optimization), the
// service improvement must not fall, and the expense improvement must not
// rise.
func TestFig16WeightSweepMonotone(t *testing.T) {
	tab, err := Fig16(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prevDeg := 1 << 30
	prevSvc, prevExp := -1e9, 1e9
	for i, row := range tab.Rows {
		deg, _ := strconv.Atoi(row[1])
		svc := parsePct(t, row[2])
		exp := parsePct(t, row[3])
		if deg > prevDeg {
			t.Fatalf("row %d: degree rose with W_S: %v", i, row)
		}
		if svc < prevSvc-0.5 {
			t.Fatalf("row %d: service improvement fell with W_S: %v", i, row)
		}
		if exp > prevExp+0.5 {
			t.Fatalf("row %d: expense improvement rose with W_S: %v", i, row)
		}
		prevDeg, prevSvc, prevExp = deg, svc, exp
	}
}

// TestFig5bSpreadZero: the application-independence experiment must report
// zero spread on every row (stage times carry no app-dependent jitter).
func TestFig5bSpreadZero(t *testing.T) {
	tab, err := Fig5b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if spread := parsePct(t, row[4]); spread != 0 {
			t.Fatalf("row %d: nonzero app spread %g%%", i, spread)
		}
	}
}

// TestFig5aDriftTiny: per-instance execution time must not drift with
// concurrency beyond the paper's 5% bound (ours is far tighter).
func TestFig5aDriftTiny(t *testing.T) {
	tab, err := Fig5a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		drift := parsePct(t, row[3])
		if drift < 0 {
			drift = -drift
		}
		if drift > 5 {
			t.Fatalf("row %d: drift %g%% exceeds the paper's 5%% bound", i, drift)
		}
	}
}

// TestFig6ScalingFallsWithDegree: within each app's block the scaling time
// must be strictly decreasing in the packing degree.
func TestFig6ScalingFallsWithDegree(t *testing.T) {
	tab, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prevApp := ""
	prev := 0.0
	for i, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "s"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] == prevApp && v >= prev {
			t.Fatalf("row %d: scaling did not fall with degree: %v", i, row)
		}
		prevApp, prev = row[0], v
	}
}

// TestFig7InteriorMinimum: each app's expense curve must dip below both its
// degree-1 start and its final sweep point (non-monotonicity), or at least
// keep falling into an interior plateau for apps whose maximum degree cuts
// the sweep short.
func TestFig7InteriorMinimum(t *testing.T) {
	tab, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	perApp := map[string][]float64{}
	var order []string
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimPrefix(row[2], "$"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := perApp[row[0]]; !ok {
			order = append(order, row[0])
		}
		perApp[row[0]] = append(perApp[row[0]], v)
	}
	for _, app := range order {
		curve := perApp[app]
		if len(curve) < 3 {
			t.Fatalf("%s: sweep too short", app)
		}
		min := curve[0]
		for _, v := range curve {
			if v < min {
				min = v
			}
		}
		if min >= curve[0] {
			t.Fatalf("%s: expense never fell below degree 1", app)
		}
	}
}

// TestFig2AllComponentsGrow: every control-plane component must increase
// with concurrency.
func TestFig2AllComponentsGrow(t *testing.T) {
	tab, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 3; col++ {
		prev := -1.0
		for i, row := range tab.Rows {
			v := parsePct(t, row[col])
			if v <= prev {
				t.Fatalf("component %d did not grow at row %d: %v", col, i, row)
			}
			prev = v
		}
	}
}

// TestAblationScalingOrderVerdict: the order-2 row must beat order-1
// dramatically (the paper's model-selection result).
func TestAblationScalingOrderVerdict(t *testing.T) {
	tab, err := Ablation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var order1, order2 string
	for _, row := range tab.Rows {
		if row[0] != "scaling model" {
			continue
		}
		switch row[1] {
		case "order-1 polynomial":
			order1 = row[3]
		case "order-2 polynomial":
			order2 = row[3]
		}
	}
	if order1 == "" || order2 == "" {
		t.Fatal("scaling-order rows missing")
	}
	p1 := extractPct(t, order1)
	p2 := extractPct(t, order2)
	if p2 >= p1 || p2 > 2 {
		t.Fatalf("order-2 (%g%%) should be far better than order-1 (%g%%)", p2, p1)
	}
}

// extractPct pulls the last "N.N%" out of a free-form cell.
func extractPct(t *testing.T, s string) float64 {
	t.Helper()
	idx := strings.LastIndex(s, "%")
	if idx < 0 {
		t.Fatalf("no percentage in %q", s)
	}
	start := idx
	for start > 0 && (s[start-1] == '.' || (s[start-1] >= '0' && s[start-1] <= '9')) {
		start--
	}
	v, err := strconv.ParseFloat(s[start:idx], 64)
	if err != nil {
		t.Fatalf("bad percentage in %q: %v", s, err)
	}
	return v
}
