// Package storage models the remote object store (AWS S3 in the paper's
// setup) that serverless functions use for inputs, shuffle data, and
// results. It provides both a functional in-memory store for the examples
// and a cost/latency meter for the datacenter simulator: per-request fees,
// per-GB egress fees (charged by Google and Azure but not AWS — the effect
// behind paper Fig. 21), and bandwidth-limited transfer times.
package storage

import (
	"fmt"
	"sync"
)

// Pricing describes how the store and the platform's network charge.
type Pricing struct {
	// PutRequestUSD and GetRequestUSD are per-operation fees (S3-style).
	PutRequestUSD float64
	GetRequestUSD float64
	// EgressPerGBUSD is the network fee per GB transferred out of the
	// store to function instances; 0 on AWS Lambda, non-zero on Google and
	// Azure in the paper's accounting.
	EgressPerGBUSD float64
}

// Meter accumulates storage traffic and converts it to dollars and transfer
// seconds. The zero value meters with free pricing and infinite bandwidth;
// use NewMeter for a configured one. Meter is not safe for concurrent use —
// each simulated run owns one.
type Meter struct {
	pricing  Pricing
	gbps     float64 // transfer bandwidth per instance, GB/s
	puts     int
	gets     int
	bytesIn  float64 // bytes written to the store
	bytesOut float64 // bytes read from the store (egress)
}

// NewMeter builds a meter with the given pricing and per-instance transfer
// bandwidth in gigabytes per second (must be positive).
func NewMeter(p Pricing, gbps float64) (*Meter, error) {
	if gbps <= 0 {
		return nil, fmt.Errorf("storage: non-positive bandwidth %g GB/s", gbps)
	}
	return &Meter{pricing: p, gbps: gbps}, nil
}

// RecordPut accounts for writing mb megabytes to the store and returns the
// transfer time in seconds.
func (m *Meter) RecordPut(mb float64) float64 {
	if mb < 0 {
		panic("storage: negative put size")
	}
	m.puts++
	m.bytesIn += mb * 1e6
	return m.transferSeconds(mb)
}

// RecordGet accounts for reading mb megabytes from the store and returns
// the transfer time in seconds.
func (m *Meter) RecordGet(mb float64) float64 {
	if mb < 0 {
		panic("storage: negative get size")
	}
	m.gets++
	m.bytesOut += mb * 1e6
	return m.transferSeconds(mb)
}

func (m *Meter) transferSeconds(mb float64) float64 {
	if m.gbps <= 0 {
		return 0
	}
	return mb / 1000 / m.gbps
}

// CostUSD returns the accumulated storage + egress bill.
func (m *Meter) CostUSD() float64 {
	return float64(m.puts)*m.pricing.PutRequestUSD +
		float64(m.gets)*m.pricing.GetRequestUSD +
		m.bytesOut/1e9*m.pricing.EgressPerGBUSD
}

// Ops reports the accumulated operation counts (puts, gets).
func (m *Meter) Ops() (puts, gets int) { return m.puts, m.gets }

// EgressGB reports total gigabytes read out of the store.
func (m *Meter) EgressGB() float64 { return m.bytesOut / 1e9 }

// Store is a minimal in-memory object store with S3 semantics (whole-object
// put/get, last-writer-wins) used by the runnable examples. It is safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[string][]byte)}
}

// Put stores a copy of data under key.
func (s *Store) Put(key string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.objects[key] = cp
	s.mu.Unlock()
}

// Get returns a copy of the object at key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: no such key %q", key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// List returns the number of stored objects.
func (s *Store) List() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Delete removes key if present.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
}
