package storage

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestMeterAccounting(t *testing.T) {
	p := Pricing{PutRequestUSD: 5e-6, GetRequestUSD: 4e-7, EgressPerGBUSD: 0.12}
	m, err := NewMeter(p, 0.1) // 0.1 GB/s
	if err != nil {
		t.Fatal(err)
	}
	tPut := m.RecordPut(100) // 100 MB at 0.1 GB/s = 1 s
	tGet := m.RecordGet(500) // 5 s
	if math.Abs(tPut-1) > 1e-9 || math.Abs(tGet-5) > 1e-9 {
		t.Fatalf("transfer times %g, %g", tPut, tGet)
	}
	puts, gets := m.Ops()
	if puts != 1 || gets != 1 {
		t.Fatalf("ops %d/%d", puts, gets)
	}
	if math.Abs(m.EgressGB()-0.5) > 1e-9 {
		t.Fatalf("egress %g GB", m.EgressGB())
	}
	want := 5e-6 + 4e-7 + 0.5*0.12
	if math.Abs(m.CostUSD()-want) > 1e-12 {
		t.Fatalf("cost %g, want %g", m.CostUSD(), want)
	}
}

func TestMeterValidation(t *testing.T) {
	if _, err := NewMeter(Pricing{}, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	m, _ := NewMeter(Pricing{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative size should panic")
		}
	}()
	m.RecordGet(-1)
}

func TestMeterZeroValueFree(t *testing.T) {
	var m Meter
	m.RecordPut(10)
	m.RecordGet(10)
	if m.CostUSD() != 0 {
		t.Fatal("zero-value meter should be free")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore()
	s.Put("a", []byte{1, 2, 3})
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("got %v", got)
	}
	// Mutating the returned slice must not affect the store.
	got[0] = 99
	again, _ := s.Get("a")
	if again[0] != 1 {
		t.Fatal("store aliases returned data")
	}
	// Mutating the input slice after Put must not either.
	in := []byte{7}
	s.Put("b", in)
	in[0] = 8
	b, _ := s.Get("b")
	if b[0] != 7 {
		t.Fatal("store aliases input data")
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("missing key found")
	}
	if s.List() != 2 {
		t.Fatalf("list %d, want 2", s.List())
	}
	s.Delete("a")
	if s.List() != 1 {
		t.Fatal("delete did not remove")
	}
	s.Delete("never-existed") // must not panic
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			s.Put(key, []byte{byte(i)})
			if _, err := s.Get(key); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if s.List() != 8 {
		t.Fatalf("list %d, want 8", s.List())
	}
}
