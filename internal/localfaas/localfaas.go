// Package localfaas is a miniature function-as-a-service runtime that
// executes the benchmark workloads' *real Go kernels* as packed function
// instances on the local machine. It is the bridge between the datacenter
// simulator (which scales to C=5000 but computes nothing) and the raw
// packed executor (which computes but has no platform semantics):
//
//   - each instance hosts `degree` functions running concurrently as
//     goroutines on a bounded core budget (the packing ground truth is the
//     host's actual scheduler and caches);
//   - instance starts are spaced by a pluggable control-plane delay model —
//     typically a ScalingModel fitted against a simulated or real platform —
//     so the scaling bottleneck is reproduced around real compute;
//   - the runtime reports the same Metrics as the simulator, computed from
//     real wall-clock timestamps.
//
// The runtime is fault-tolerant: a panicking kernel fails only its own
// instance, failed instances are retried under a resilience.Backoff policy,
// the whole job honours a context deadline, and a partial-results mode
// returns metrics over the instances that completed plus a structured
// multi-error instead of all-or-nothing.
//
// This is how the examples demonstrate ProPack end-to-end without any
// cloud: profile real kernels, fit Eq. 1 with livemeasure, plan, then
// execute the plan here and watch the real makespan drop.
package localfaas

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DelayModel maps an instance index (0-based, in admission order) to the
// control-plane delay before that instance may start.
type DelayModel func(instance int) time.Duration

// NoDelay starts every instance immediately.
func NoDelay(int) time.Duration { return 0 }

// QuadraticDelay mimics Eq. 2's shape at small scale: instance k waits
// β1·k² + β2·k (in the given time unit). Negative results clamp to zero.
func QuadraticDelay(b1, b2 float64, unit time.Duration) DelayModel {
	return func(k int) time.Duration {
		v := b1*float64(k)*float64(k) + b2*float64(k)
		if v < 0 {
			v = 0
		}
		return time.Duration(v * float64(unit))
	}
}

// Job describes one burst to execute for real.
type Job struct {
	// Workload supplies the real kernel.
	Workload workload.Workload
	// Functions is C, the number of logical function invocations.
	Functions int
	// Degree is the packing degree per instance.
	Degree int
	// CoresPerInstance bounds each instance's concurrent goroutines.
	CoresPerInstance int
	// MaxParallelInstances bounds how many instances run at once on this
	// host (the host is not a datacenter); 0 means 2.
	MaxParallelInstances int
	// Delay is the control-plane delay model; nil means NoDelay.
	Delay DelayModel
	// Seed derives each function's deterministic input.
	Seed int64
	// RatePerInstanceSec converts real instance-seconds to dollars for the
	// expense metric (0 is fine: expense reports 0).
	RatePerInstanceSec float64

	// Retry re-runs an instance whose kernel returned an error or panicked.
	// The policy's MaxAttempts is the retry budget; the zero value disables
	// retries (one attempt per instance).
	Retry resilience.Backoff
	// PartialResults makes the job return a Result covering the instances
	// that completed, plus a *JobError listing the ones that did not,
	// instead of failing the whole job on the first instance error.
	PartialResults bool

	// Recorder receives event-level observability records (queued and exec
	// spans, retry and backoff events) with wall-clock timestamps relative
	// to the job's start. Instances emit concurrently, which every
	// internal/obs recorder supports; nil disables observability.
	Recorder obs.Recorder
}

// Validate reports an error for malformed jobs.
func (j Job) Validate() error {
	switch {
	case j.Workload == nil:
		return fmt.Errorf("localfaas: nil workload")
	case j.Functions < 1:
		return fmt.Errorf("localfaas: functions %d < 1", j.Functions)
	case j.Degree < 1:
		return fmt.Errorf("localfaas: degree %d < 1", j.Degree)
	case j.CoresPerInstance < 1:
		return fmt.Errorf("localfaas: cores %d < 1", j.CoresPerInstance)
	case j.MaxParallelInstances < 0:
		return fmt.Errorf("localfaas: negative instance parallelism")
	case j.RatePerInstanceSec < 0:
		return fmt.Errorf("localfaas: negative rate")
	}
	return j.Retry.Validate()
}

// InstanceRecord is one instance's real execution record.
type InstanceRecord struct {
	Index     int
	Degree    int
	Start     time.Duration // since job begin, after the control-plane delay
	End       time.Duration
	Retries   int // attempts beyond the first
	Checksums []uint64
}

// completed reports whether the instance finished successfully.
func (r InstanceRecord) completed() bool { return r.End > r.Start }

// InstanceError is one instance's terminal failure.
type InstanceError struct {
	Index    int
	Attempts int
	Err      error
}

func (e InstanceError) Error() string {
	return fmt.Sprintf("instance %d failed after %d attempt(s): %v", e.Index, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e InstanceError) Unwrap() error { return e.Err }

// JobError aggregates the per-instance failures of a run. Completed reports
// how many instances still finished, so callers can judge the damage.
type JobError struct {
	Failures  []InstanceError
	Completed int
}

func (e *JobError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "localfaas: %d instance(s) failed (%d completed)", len(e.Failures), e.Completed)
	for _, f := range e.Failures {
		b.WriteString("; ")
		b.WriteString(f.Error())
	}
	return b.String()
}

// Result is a completed job.
type Result struct {
	Job       Job
	Instances []InstanceRecord
	// Failed lists instances that never completed (PartialResults mode).
	Failed  []InstanceError
	Metrics trace.Metrics
}

// Run executes the job and blocks until every instance finishes.
func Run(job Job) (*Result, error) {
	return RunContext(context.Background(), job)
}

// RunContext is Run under a context: cancelling (or exceeding the deadline
// of) ctx aborts the job promptly — instances that have not started are
// skipped, sleeping instances wake and abort, and RunContext returns without
// waiting for kernels already executing (they finish in the background and
// their results are discarded).
func RunContext(ctx context.Context, job Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	delay := job.Delay
	if delay == nil {
		delay = NoDelay
	}
	maxPar := job.MaxParallelInstances
	if maxPar == 0 {
		maxPar = 2
	}
	n := (job.Functions + job.Degree - 1) / job.Degree
	records := make([]InstanceRecord, n)
	errs := make([]error, n)

	rec := job.Recorder
	if rec != nil {
		rec.BeginBurst(obs.BurstInfo{
			Platform: "localfaas", Functions: job.Functions,
			Degree: job.Degree, Instances: n,
		})
	}
	begin := time.Now()
	sem := make(chan struct{}, maxPar)
	var wg sync.WaitGroup
	remaining := job.Functions
	for i := 0; i < n; i++ {
		deg := job.Degree
		if remaining < deg {
			deg = remaining
		}
		remaining -= deg
		wg.Add(1)
		go func(i, deg int) {
			defer wg.Done()
			// Control-plane delay happens "in the cloud": it does not hold
			// a host slot. It is interruptible by ctx. The delay plus the
			// wait for a host slot is the instance's queued span.
			if d := delay(i); d > 0 {
				if !sleepCtx(ctx, d) {
					errs[i] = ctx.Err()
					return
				}
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			if rec != nil {
				if admitted := time.Since(begin); admitted > 0 {
					rec.Span(obs.Span{
						Instance: i, Stage: obs.StageQueued,
						StartSec: 0, EndSec: admitted.Seconds(),
					})
				}
			}
			records[i], errs[i] = runInstance(ctx, job, i, deg, begin)
			if rec != nil && errs[i] == nil {
				rec.Span(obs.Span{
					Instance: i, Stage: obs.StageExec,
					StartSec: records[i].Start.Seconds(), EndSec: records[i].End.Seconds(),
				})
			}
		}(i, deg)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return nil, fmt.Errorf("localfaas: job aborted: %w", ctx.Err())
	}

	jerr := &JobError{}
	for i, err := range errs {
		if err != nil {
			jerr.Failures = append(jerr.Failures, InstanceError{
				Index: i, Attempts: records[i].Retries + 1, Err: err,
			})
		} else {
			jerr.Completed++
		}
	}
	if len(jerr.Failures) > 0 && !job.PartialResults {
		return nil, jerr
	}
	out := &Result{Job: job, Failed: jerr.Failures}
	for _, r := range records {
		if r.completed() {
			out.Instances = append(out.Instances, r)
		}
	}
	if len(out.Instances) == 0 {
		return nil, jerr
	}
	out.Metrics = metricsFrom(job, out.Instances)
	if len(jerr.Failures) > 0 {
		return out, jerr
	}
	return out, nil
}

// runInstance executes one packed instance with per-attempt panic recovery
// and the job's retry policy. The returned record's Start/End cover the
// successful attempt.
func runInstance(ctx context.Context, job Job, i, deg int, begin time.Time) (InstanceRecord, error) {
	rng := sim.Stream(job.Seed, 0x6c6f63616c^uint64(i)) // per-instance backoff stream
	rec := InstanceRecord{Index: i, Degree: deg}
	prevDelay := 0.0
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return rec, err
		}
		start := time.Since(begin)
		res, err := runPackedRecovering(job.Workload, deg, job.CoresPerInstance,
			job.Seed+int64(i)*1000003)
		if err == nil {
			rec.Start = start
			rec.End = start + res.Wall
			rec.Checksums = res.Checksums
			return rec, nil
		}
		retry := attempt + 1
		if !job.Retry.Allow(retry, time.Since(begin).Seconds(), 0) {
			return rec, err
		}
		rec.Retries++
		prevDelay = job.Retry.Delay(retry, prevDelay, rng.Float64)
		if r := job.Recorder; r != nil {
			at := time.Since(begin).Seconds()
			r.Event(obs.Event{Instance: i, Kind: obs.EventStartRetry, AtSec: at})
			r.Event(obs.Event{Instance: i, Kind: obs.EventBackoff, AtSec: at, DurSec: prevDelay})
		}
		if !sleepCtx(ctx, time.Duration(prevDelay*float64(time.Second))) {
			return rec, ctx.Err()
		}
	}
}

// runPackedRecovering shields the runtime from a panicking kernel: the panic
// becomes this instance's error instead of crashing the process. (The packed
// executor already recovers panics inside its per-function goroutines; this
// guards the setup path as well.)
func runPackedRecovering(w workload.Workload, deg, cores int, seed int64) (res workload.PackedResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("localfaas: instance panicked: %v", r)
		}
	}()
	return workload.RunPacked(w, deg, cores, seed)
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func metricsFrom(job Job, records []InstanceRecord) trace.Metrics {
	firstStart := records[0].Start
	var maxStart, maxEnd time.Duration
	ends := make([]float64, len(records))
	var funcSec float64
	retries := 0
	for i, r := range records {
		if r.Start < firstStart {
			firstStart = r.Start
		}
		if r.Start > maxStart {
			maxStart = r.Start
		}
		if r.End > maxEnd {
			maxEnd = r.End
		}
		ends[i] = r.End.Seconds()
		funcSec += (r.End - r.Start).Seconds()
		retries += r.Retries
	}
	q := func(p float64) float64 {
		return stats.Quantile(ends, p) - firstStart.Seconds()
	}
	return trace.Metrics{
		Platform:      "localfaas",
		Degree:        job.Degree,
		Instances:     len(records),
		ScalingTime:   maxStart.Seconds(),
		TotalService:  (maxEnd - firstStart).Seconds(),
		TailService:   q(95),
		MedianService: q(50),
		ExpenseUSD:    funcSec * job.RatePerInstanceSec,
		FunctionHours: funcSec / 3600,
		MeanExecSec:   funcSec / float64(len(records)),
		Retries:       retries,
	}
}
