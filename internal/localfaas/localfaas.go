// Package localfaas is a miniature function-as-a-service runtime that
// executes the benchmark workloads' *real Go kernels* as packed function
// instances on the local machine. It is the bridge between the datacenter
// simulator (which scales to C=5000 but computes nothing) and the raw
// packed executor (which computes but has no platform semantics):
//
//   - each instance hosts `degree` functions running concurrently as
//     goroutines on a bounded core budget (the packing ground truth is the
//     host's actual scheduler and caches);
//   - instance starts are spaced by a pluggable control-plane delay model —
//     typically a ScalingModel fitted against a simulated or real platform —
//     so the scaling bottleneck is reproduced around real compute;
//   - the runtime reports the same Metrics as the simulator, computed from
//     real wall-clock timestamps.
//
// This is how the examples demonstrate ProPack end-to-end without any
// cloud: profile real kernels, fit Eq. 1 with livemeasure, plan, then
// execute the plan here and watch the real makespan drop.
package localfaas

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

// DelayModel maps an instance index (0-based, in admission order) to the
// control-plane delay before that instance may start.
type DelayModel func(instance int) time.Duration

// NoDelay starts every instance immediately.
func NoDelay(int) time.Duration { return 0 }

// QuadraticDelay mimics Eq. 2's shape at small scale: instance k waits
// β1·k² + β2·k (in the given time unit). Negative results clamp to zero.
func QuadraticDelay(b1, b2 float64, unit time.Duration) DelayModel {
	return func(k int) time.Duration {
		v := b1*float64(k)*float64(k) + b2*float64(k)
		if v < 0 {
			v = 0
		}
		return time.Duration(v * float64(unit))
	}
}

// Job describes one burst to execute for real.
type Job struct {
	// Workload supplies the real kernel.
	Workload workload.Workload
	// Functions is C, the number of logical function invocations.
	Functions int
	// Degree is the packing degree per instance.
	Degree int
	// CoresPerInstance bounds each instance's concurrent goroutines.
	CoresPerInstance int
	// MaxParallelInstances bounds how many instances run at once on this
	// host (the host is not a datacenter); 0 means 2.
	MaxParallelInstances int
	// Delay is the control-plane delay model; nil means NoDelay.
	Delay DelayModel
	// Seed derives each function's deterministic input.
	Seed int64
	// RatePerInstanceSec converts real instance-seconds to dollars for the
	// expense metric (0 is fine: expense reports 0).
	RatePerInstanceSec float64
}

// Validate reports an error for malformed jobs.
func (j Job) Validate() error {
	switch {
	case j.Workload == nil:
		return fmt.Errorf("localfaas: nil workload")
	case j.Functions < 1:
		return fmt.Errorf("localfaas: functions %d < 1", j.Functions)
	case j.Degree < 1:
		return fmt.Errorf("localfaas: degree %d < 1", j.Degree)
	case j.CoresPerInstance < 1:
		return fmt.Errorf("localfaas: cores %d < 1", j.CoresPerInstance)
	case j.MaxParallelInstances < 0:
		return fmt.Errorf("localfaas: negative instance parallelism")
	case j.RatePerInstanceSec < 0:
		return fmt.Errorf("localfaas: negative rate")
	}
	return nil
}

// InstanceRecord is one instance's real execution record.
type InstanceRecord struct {
	Index     int
	Degree    int
	Start     time.Duration // since job begin, after the control-plane delay
	End       time.Duration
	Checksums []uint64
}

// Result is a completed job.
type Result struct {
	Job       Job
	Instances []InstanceRecord
	Metrics   trace.Metrics
}

// Run executes the job and blocks until every instance finishes.
func Run(job Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	delay := job.Delay
	if delay == nil {
		delay = NoDelay
	}
	maxPar := job.MaxParallelInstances
	if maxPar == 0 {
		maxPar = 2
	}
	n := (job.Functions + job.Degree - 1) / job.Degree
	records := make([]InstanceRecord, n)
	errs := make([]error, n)

	begin := time.Now()
	sem := make(chan struct{}, maxPar)
	var wg sync.WaitGroup
	remaining := job.Functions
	for i := 0; i < n; i++ {
		deg := job.Degree
		if remaining < deg {
			deg = remaining
		}
		remaining -= deg
		wg.Add(1)
		go func(i, deg int) {
			defer wg.Done()
			// Control-plane delay happens "in the cloud": it does not hold
			// a host slot.
			d := delay(i)
			if d > 0 {
				time.Sleep(d)
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Since(begin)
			res, err := workload.RunPacked(job.Workload, deg, job.CoresPerInstance,
				job.Seed+int64(i)*1000003)
			if err != nil {
				errs[i] = err
				return
			}
			records[i] = InstanceRecord{
				Index:     i,
				Degree:    deg,
				Start:     start,
				End:       start + res.Wall,
				Checksums: res.Checksums,
			}
		}(i, deg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("localfaas: instance %d: %w", i, err)
		}
	}
	out := &Result{Job: job, Instances: records}
	out.Metrics = metricsFrom(job, records)
	return out, nil
}

func metricsFrom(job Job, records []InstanceRecord) trace.Metrics {
	firstStart := records[0].Start
	var maxStart, maxEnd time.Duration
	ends := make([]float64, len(records))
	var funcSec float64
	for i, r := range records {
		if r.Start < firstStart {
			firstStart = r.Start
		}
		if r.Start > maxStart {
			maxStart = r.Start
		}
		if r.End > maxEnd {
			maxEnd = r.End
		}
		ends[i] = r.End.Seconds()
		funcSec += (r.End - r.Start).Seconds()
	}
	q := func(p float64) float64 {
		sorted := append([]float64(nil), ends...)
		insertionSort(sorted)
		idx := int(float64(len(sorted))*p/100+0.999999) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx] - firstStart.Seconds()
	}
	return trace.Metrics{
		Platform:      "localfaas",
		Degree:        job.Degree,
		Instances:     len(records),
		ScalingTime:   maxStart.Seconds(),
		TotalService:  (maxEnd - firstStart).Seconds(),
		TailService:   q(95),
		MedianService: q(50),
		ExpenseUSD:    funcSec * job.RatePerInstanceSec,
		FunctionHours: funcSec / 3600,
		MeanExecSec:   funcSec / float64(len(records)),
	}
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
