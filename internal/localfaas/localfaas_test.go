package localfaas

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func fastWorkload() workload.Workload {
	return workload.StatelessCost{Images: 1, SrcSize: 48}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(Job{
		Workload:         fastWorkload(),
		Functions:        10,
		Degree:           3, // 3,3,3,1
		CoresPerInstance: 2,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 4 {
		t.Fatalf("instances %d, want 4", len(res.Instances))
	}
	total := 0
	seen := map[uint64]bool{}
	for _, r := range res.Instances {
		total += r.Degree
		if len(r.Checksums) != r.Degree {
			t.Fatalf("instance %d: %d checksums for degree %d", r.Index, len(r.Checksums), r.Degree)
		}
		if r.End <= r.Start {
			t.Fatalf("instance %d never ran", r.Index)
		}
		for _, c := range r.Checksums {
			if seen[c] {
				t.Fatal("duplicate checksum: functions did not get distinct inputs")
			}
			seen[c] = true
		}
	}
	if total != 10 {
		t.Fatalf("functions covered %d, want 10", total)
	}
	m := res.Metrics
	if m.TotalService <= 0 || m.MedianService > m.TailService || m.TailService > m.TotalService+1e-9 {
		t.Fatalf("bad metrics %+v", m)
	}
	if m.Instances != 4 || m.Degree != 3 {
		t.Fatalf("identity wrong %+v", m)
	}
}

func TestDelayModelShapesScaling(t *testing.T) {
	// A steep per-instance delay makes the last start dominate — and
	// packing (fewer instances) must shrink it, the paper's core mechanism
	// reproduced with real compute.
	delay := QuadraticDelay(0, 30, time.Millisecond) // 30 ms per instance index
	unpacked, err := Run(Job{
		Workload: fastWorkload(), Functions: 16, Degree: 1,
		CoresPerInstance: 2, MaxParallelInstances: 8, Delay: delay, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Run(Job{
		Workload: fastWorkload(), Functions: 16, Degree: 4,
		CoresPerInstance: 2, MaxParallelInstances: 8, Delay: delay, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Metrics.ScalingTime >= unpacked.Metrics.ScalingTime {
		t.Fatalf("packing should cut real scaling time: %g vs %g",
			packed.Metrics.ScalingTime, unpacked.Metrics.ScalingTime)
	}
	// The 15th instance waits ≥ 450 ms; scaling time must reflect that.
	if unpacked.Metrics.ScalingTime < 0.45 {
		t.Fatalf("delay model not applied: scaling %g", unpacked.Metrics.ScalingTime)
	}
}

func TestQuadraticDelay(t *testing.T) {
	d := QuadraticDelay(1, 2, time.Millisecond)
	if got := d(3); got != 15*time.Millisecond { // 9 + 6
		t.Fatalf("delay(3) = %v, want 15ms", got)
	}
	if QuadraticDelay(-1, 0, time.Second)(5) != 0 {
		t.Fatal("negative delay should clamp to 0")
	}
	if NoDelay(100) != 0 {
		t.Fatal("NoDelay should be 0")
	}
}

func TestJobValidation(t *testing.T) {
	good := Job{Workload: fastWorkload(), Functions: 1, Degree: 1, CoresPerInstance: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Job{
		{Functions: 1, Degree: 1, CoresPerInstance: 1},
		{Workload: fastWorkload(), Functions: 0, Degree: 1, CoresPerInstance: 1},
		{Workload: fastWorkload(), Functions: 1, Degree: 0, CoresPerInstance: 1},
		{Workload: fastWorkload(), Functions: 1, Degree: 1, CoresPerInstance: 0},
		{Workload: fastWorkload(), Functions: 1, Degree: 1, CoresPerInstance: 1, MaxParallelInstances: -1},
		{Workload: fastWorkload(), Functions: 1, Degree: 1, CoresPerInstance: 1, RatePerInstanceSec: -1},
	}
	for i, b := range bads {
		if _, err := Run(b); err == nil {
			t.Fatalf("bad job %d accepted", i)
		}
	}
}

func TestDeterministicChecksums(t *testing.T) {
	run := func() []uint64 {
		res, err := Run(Job{
			Workload: fastWorkload(), Functions: 6, Degree: 2,
			CoresPerInstance: 2, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		var all []uint64
		for _, r := range res.Instances {
			all = append(all, r.Checksums...)
		}
		return all
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("checksums not reproducible across runs")
		}
	}
}
