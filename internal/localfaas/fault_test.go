package localfaas

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/interfere"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// flakyWorkload wraps a real kernel but makes the first failCount attempts of
// selected function indices fail — by panic or by error. Attempts are counted
// per seed because the runtime re-runs an instance with the same seeds.
type flakyWorkload struct {
	inner     workload.Workload
	mu        *sync.Mutex
	attempts  map[int64]int
	failEvery int64 // seeds ≡ 0 (mod failEvery) fail
	failCount int   // how many attempts fail before succeeding
	panicky   bool  // fail by panic instead of error
}

func newFlaky(failEvery int64, failCount int, panicky bool) *flakyWorkload {
	return &flakyWorkload{
		inner:     workload.StatelessCost{Images: 1, SrcSize: 48},
		mu:        &sync.Mutex{},
		attempts:  map[int64]int{},
		failEvery: failEvery,
		failCount: failCount,
		panicky:   panicky,
	}
}

func (w *flakyWorkload) Name() string             { return "Flaky" }
func (w *flakyWorkload) Demand() interfere.Demand { return w.inner.Demand() }
func (w *flakyWorkload) NewTask(seed int64) workload.Task {
	return flakyTask{w: w, seed: seed, inner: w.inner.NewTask(seed)}
}

type flakyTask struct {
	w     *flakyWorkload
	seed  int64
	inner workload.Task
}

func (t flakyTask) Run() (uint64, error) {
	t.w.mu.Lock()
	attempt := t.w.attempts[t.seed]
	t.w.attempts[t.seed]++
	t.w.mu.Unlock()
	if t.seed%t.w.failEvery == 0 && attempt < t.w.failCount {
		if t.w.panicky {
			panic("injected kernel panic")
		}
		return 0, errors.New("injected kernel error")
	}
	return t.inner.Run()
}

// sleepWorkload's tasks block for a fixed duration — used to test context
// cancellation against genuinely running kernels.
type sleepWorkload struct{ d time.Duration }

func (w sleepWorkload) Name() string             { return "Sleep" }
func (w sleepWorkload) Demand() interfere.Demand { return interfere.Demand{} }
func (w sleepWorkload) NewTask(int64) workload.Task {
	return sleepTask{w.d}
}

type sleepTask struct{ d time.Duration }

func (t sleepTask) Run() (uint64, error) { time.Sleep(t.d); return 1, nil }

func retryFast(maxAttempts int) resilience.Backoff {
	return resilience.Backoff{Kind: resilience.Fixed, BaseSec: 0.001, MaxAttempts: maxAttempts}
}

func TestSurvivesKernelPanicViaRetry(t *testing.T) {
	// Every function whose seed is divisible by 3 panics on its first
	// attempt; the retry policy re-runs the instance and the job completes.
	res, err := Run(Job{
		Workload:         newFlaky(3, 1, true),
		Functions:        8,
		Degree:           2,
		CoresPerInstance: 2,
		Seed:             3, // instance seeds 3, 3+1000003, ... hit seed%3==0
		Retry:            retryFast(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 4 {
		t.Fatalf("instances %d, want 4", len(res.Instances))
	}
	retries := 0
	for _, r := range res.Instances {
		retries += r.Retries
	}
	if retries == 0 {
		t.Fatal("panicking kernels should have forced retries")
	}
	if res.Metrics.Retries != retries {
		t.Fatalf("metrics retries %d != record sum %d", res.Metrics.Retries, retries)
	}
}

func TestKernelErrorWithoutRetryFailsJob(t *testing.T) {
	// The zero retry policy means one attempt per instance: the injected
	// error surfaces as a structured JobError naming the instance.
	_, err := Run(Job{
		Workload:         newFlaky(1, 1000, false), // every seed always fails
		Functions:        4,
		Degree:           2,
		CoresPerInstance: 2,
		Seed:             1,
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	var jerr *JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("expected *JobError, got %T: %v", err, err)
	}
	if len(jerr.Failures) != 2 || jerr.Completed != 0 {
		t.Fatalf("bad aggregation: %+v", jerr)
	}
	if jerr.Failures[0].Attempts != 1 {
		t.Fatalf("attempts %d, want 1 without retries", jerr.Failures[0].Attempts)
	}
}

func TestPartialResultsMode(t *testing.T) {
	// Functions with seed ≡ 0 (mod 2·1000003) fail permanently: with
	// Seed=0 and degree 1 that is exactly the even-indexed instances.
	res, err := Run(Job{
		Workload:         newFlaky(2 * 1000003, 1000, false),
		Functions:        6,
		Degree:           1,
		CoresPerInstance: 1,
		Seed:             0,
		Retry:            retryFast(1),
		PartialResults:   true,
	})
	var jerr *JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("expected *JobError alongside partial results, got %v", err)
	}
	if res == nil {
		t.Fatal("partial mode should still return a result")
	}
	if len(res.Instances) != 3 || len(res.Failed) != 3 {
		t.Fatalf("got %d completed, %d failed; want 3/3", len(res.Instances), len(res.Failed))
	}
	if jerr.Completed != 3 {
		t.Fatalf("JobError.Completed = %d, want 3", jerr.Completed)
	}
	// Failed instances exhausted their retry budget.
	for _, f := range res.Failed {
		if f.Attempts != 2 { // 1 attempt + 1 retry
			t.Fatalf("instance %d: attempts %d, want 2", f.Index, f.Attempts)
		}
	}
	// Metrics cover only the completed instances.
	if res.Metrics.Instances != 3 {
		t.Fatalf("metrics over %d instances, want 3", res.Metrics.Instances)
	}
}

func TestContextDeadlineAbortsPromptly(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, err := RunContext(ctx, Job{
		Workload:         sleepWorkload{5 * time.Second},
		Functions:        4,
		Degree:           1,
		CoresPerInstance: 1,
		Seed:             1,
	})
	elapsed := time.Since(begin)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	// The abort must not wait out the 5 s kernels.
	if elapsed > 2*time.Second {
		t.Fatalf("abort took %v; should return promptly at the deadline", elapsed)
	}
}

func TestCancelDuringControlPlaneDelay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(30 * time.Millisecond); cancel() }()
	begin := time.Now()
	_, err := RunContext(ctx, Job{
		Workload:         sleepWorkload{time.Millisecond},
		Functions:        3,
		Degree:           1,
		CoresPerInstance: 1,
		Delay:            func(int) time.Duration { return 10 * time.Second },
		Seed:             1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected Canceled, got %v", err)
	}
	if time.Since(begin) > 2*time.Second {
		t.Fatal("cancel did not interrupt the control-plane sleep")
	}
}

func TestRetryBackoffRespectsContext(t *testing.T) {
	// Permanent failures with long backoff: cancelling mid-backoff must
	// interrupt the sleep.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, err := RunContext(ctx, Job{
		Workload:         newFlaky(1, 1000, false),
		Functions:        1,
		Degree:           1,
		CoresPerInstance: 1,
		Seed:             1,
		Retry:            resilience.Backoff{Kind: resilience.Fixed, BaseSec: 30, MaxAttempts: 5},
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	if time.Since(begin) > 2*time.Second {
		t.Fatal("backoff sleep ignored the context")
	}
}
