package sim

import "container/heap"

// heapQueue is the original container/heap event scheduler, retained as the
// reference implementation the wheel is differentially tested against. Its
// order is the specification: a binary heap keyed on (time, insertion seq)
// trivially dispatches the total order, at O(log n) per operation.
type heapEvents []*event

func (h heapEvents) Len() int { return len(h) }
func (h heapEvents) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h heapEvents) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *heapEvents) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *heapEvents) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type heapQueue struct {
	events heapEvents
	// free recycles dispatched events so a burst of N instances costs O(1)
	// event allocations in steady state instead of one per scheduled
	// callback. Events are engine-local, so no synchronization is needed.
	free []*event
}

func (q *heapQueue) push(ev event) {
	var e *event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		e = new(event)
	}
	*e = ev
	heap.Push(&q.events, e)
}

func (q *heapQueue) peekAt() (float64, bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].at, true
}

func (q *heapQueue) pop() event {
	e := heap.Pop(&q.events).(*event)
	ev := *e
	// Drop the callback reference before recycling so the closure (and
	// anything it captures) can be collected — a recycled slot must never
	// resurrect an already-dispatched callback.
	e.fn = nil
	q.free = append(q.free, e)
	return ev
}

func (q *heapQueue) len() int { return len(q.events) }

// reset drops every pending event onto the freelist (callback references
// cleared) so a pooled engine restarts without reallocating slots.
func (q *heapQueue) reset() {
	for i, e := range q.events {
		e.fn = nil
		q.free = append(q.free, e)
		q.events[i] = nil
	}
	q.events = q.events[:0]
}
