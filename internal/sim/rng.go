package sim

import "math/rand"

// RNG is a deterministic random stream used for execution-time jitter and
// workload input generation. Distinct components derive independent streams
// from a root seed so adding a consumer does not perturb the others.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Stream derives an independent child stream labeled by id. The derivation
// is a SplitMix64-style hash of (seed, id) so streams do not overlap for
// practical run lengths.
func Stream(seed int64, id uint64) *RNG {
	return NewRNG(SplitSeed(seed, id))
}

// SplitSeed is the splittable seed derivation behind Stream: a SplitMix64
// mix of (seed, id). Parallel fan-outs use it to give every task its own
// stream from (root seed, task index) so results never depend on which
// worker ran the task or in what order.
func SplitSeed(seed int64, id uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential sample with rate 1 (mean 1). Divide by a
// rate λ to sample Exp(λ) — e.g. the crash time of an instance that fails at
// λ crashes per second.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Jitter returns a multiplicative noise factor 1 + ε where ε is normal with
// the given relative standard deviation, clamped to ±3σ so a single run
// cannot produce a negative or wildly outlying duration.
func (g *RNG) Jitter(relStdDev float64) float64 {
	if relStdDev <= 0 {
		return 1
	}
	eps := g.r.NormFloat64() * relStdDev
	if eps > 3*relStdDev {
		eps = 3 * relStdDev
	} else if eps < -3*relStdDev {
		eps = -3 * relStdDev
	}
	return 1 + eps
}
