package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// engineImpls enumerates both schedulers so every edge-case test runs against
// the production wheel and the reference heap: the contract is the engine's,
// not one implementation's.
var engineImpls = []struct {
	name string
	mk   func() *Engine
}{
	{"wheel", NewEngine},
	{"heap", NewReferenceEngine},
}

// TestEngineZeroDelaySelfRescheduling pins the semantics of an event that
// reschedules itself with zero delay: the clock must not move, and each link
// of the chain dispatches after everything already pending at that instant
// (its seq is higher), so an interleaved same-time event fires between links.
func TestEngineZeroDelaySelfRescheduling(t *testing.T) {
	for _, impl := range engineImpls {
		t.Run(impl.name, func(t *testing.T) {
			eng := impl.mk()
			var order []string
			const links = 50
			var chain func(k int)
			chain = func(k int) {
				eng.After(0, func() {
					order = append(order, fmt.Sprintf("chain%d@%g", k, eng.Now()))
					if k == 0 {
						// Scheduled from inside link 0, same timestamp: must
						// run before link 1, which is scheduled after it.
						eng.After(0, func() {
							order = append(order, "interleaved")
						})
					}
					if k+1 < links {
						chain(k + 1)
					}
				})
			}
			eng.At(1, func() { chain(0) })
			end := eng.Run()
			if end != 1 {
				t.Fatalf("zero-delay chain moved the clock to %g", end)
			}
			if len(order) != links+1 {
				t.Fatalf("dispatched %d events, want %d", len(order), links+1)
			}
			if order[0] != "chain0@1" || order[1] != "interleaved" || order[2] != "chain1@1" {
				t.Fatalf("zero-delay ordering broke FIFO-at-equal-time: %v", order[:3])
			}
			for k := 1; k < links; k++ {
				if order[k+1] != fmt.Sprintf("chain%d@1", k) {
					t.Fatalf("link %d out of order: %v", k, order[k+1])
				}
			}
		})
	}
}

// TestEngineRunUntilExactTimestamp pins the boundary rule: an event exactly
// at the deadline fires, one an ulp later stays pending, and the clock lands
// exactly on the deadline either way.
func TestEngineRunUntilExactTimestamp(t *testing.T) {
	for _, impl := range engineImpls {
		t.Run(impl.name, func(t *testing.T) {
			eng := impl.mk()
			const deadline = 3.7
			after := math.Nextafter(deadline, math.Inf(1))
			var fired []float64
			eng.At(deadline, func() { fired = append(fired, eng.Now()) })
			eng.At(after, func() { fired = append(fired, eng.Now()) })
			eng.RunUntil(deadline)
			if len(fired) != 1 || fired[0] != deadline {
				t.Fatalf("events at deadline: fired %v, want exactly [%g]", fired, deadline)
			}
			if eng.Now() != deadline || eng.Pending() != 1 {
				t.Fatalf("after RunUntil: now=%g pending=%d", eng.Now(), eng.Pending())
			}
			// A second drain to the same deadline is a no-op.
			eng.RunUntil(deadline)
			if len(fired) != 1 || eng.Now() != deadline {
				t.Fatalf("repeated RunUntil re-fired or moved the clock: fired=%v now=%g", fired, eng.Now())
			}
			eng.Run()
			if len(fired) != 2 || fired[1] != after {
				t.Fatalf("ulp-later event mishandled: fired %v", fired)
			}
		})
	}
}

// TestEngineRejectsBadTimestamps is the table of scheduling inputs the engine
// must refuse loudly — each panics with a message naming the offense, on both
// implementations. Silently accepting any of them would corrupt queue
// ordering (NaN compares false with everything) or causality (the past).
func TestEngineRejectsBadTimestamps(t *testing.T) {
	cases := []struct {
		name    string
		wantMsg string
		call    func(eng *Engine)
	}{
		{"At NaN", "non-finite time", func(e *Engine) { e.At(math.NaN(), func() {}) }},
		{"At +Inf", "non-finite time", func(e *Engine) { e.At(math.Inf(1), func() {}) }},
		{"At -Inf", "non-finite time", func(e *Engine) { e.At(math.Inf(-1), func() {}) }},
		{"At past", "before now", func(e *Engine) {
			e.RunUntil(5)
			e.At(4.999, func() {})
		}},
		{"After negative", "negative delay", func(e *Engine) { e.After(-0.001, func() {}) }},
		{"After NaN", "non-finite delay", func(e *Engine) { e.After(math.NaN(), func() {}) }},
		{"RunUntil NaN", "non-finite RunUntil deadline", func(e *Engine) { e.RunUntil(math.NaN()) }},
		// The typed path refuses the same inputs as the closure adapter.
		{"Emit NaN", "non-finite time", func(e *Engine) { e.SetSink(dropSink{}); e.Emit(math.NaN(), 1, 0) }},
		{"Emit past", "before now", func(e *Engine) {
			e.SetSink(dropSink{})
			e.RunUntil(5)
			e.Emit(4.999, 1, 0)
		}},
		{"EmitAfter negative", "negative delay", func(e *Engine) { e.SetSink(dropSink{}); e.EmitAfter(-0.001, 1, 0) }},
		{"EmitAfter NaN", "non-finite delay", func(e *Engine) { e.SetSink(dropSink{}); e.EmitAfter(math.NaN(), 1, 0) }},
		{"Emit no sink", "no EventSink registered", func(e *Engine) { e.Emit(1, 1, 0) }},
	}
	for _, impl := range engineImpls {
		for _, tc := range cases {
			t.Run(impl.name+"/"+tc.name, func(t *testing.T) {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s did not panic", tc.name)
					}
					msg := fmt.Sprint(r)
					if !strings.Contains(msg, tc.wantMsg) {
						t.Fatalf("%s panicked with %q, want a message containing %q", tc.name, msg, tc.wantMsg)
					}
				}()
				tc.call(impl.mk())
			})
		}
	}
}

// dropSink is the no-op EventSink for edge tests that only exercise
// scheduling validation.
type dropSink struct{}

func (dropSink) Dispatch(uint8, int32) {}

// TestEngineResetReuse pins the engine-pooling contract: after Reset, a
// reused engine is indistinguishable from a fresh one — clock at zero, no
// pending events, no sink, sequence numbering restarted — so the same
// program replays to a bit-identical trace, on both implementations and
// regardless of what the previous run left behind (including undispatched
// events abandoned mid-run).
func TestEngineResetReuse(t *testing.T) {
	program := func(eng *Engine) []traceEntry {
		rng := NewRNG(7)
		var trace []traceEntry
		eng.SetSink(&programSink{eng: eng, trace: &trace, schedule: func(int) {}})
		for i := 0; i < 100; i++ {
			id := i
			d := rng.Float64() * 10
			if i%4 == 0 {
				eng.EmitAfter(d, progKindPlain, int32(id))
				continue
			}
			eng.After(d, func() {
				trace = append(trace, traceEntry{id: id, now: eng.Now(), pending: eng.Pending()})
			})
		}
		eng.Run()
		return trace
	}
	for _, impl := range engineImpls {
		t.Run(impl.name, func(t *testing.T) {
			fresh := impl.mk()
			want := program(fresh)

			eng := impl.mk()
			if eng.IsReference() != (impl.name == "heap") {
				t.Fatalf("IsReference() = %v for %s engine", eng.IsReference(), impl.name)
			}
			// Dirty the engine: advance the clock, abandon pending events,
			// leave a sink registered.
			eng.SetSink(dropSink{})
			for i := 0; i < 500; i++ {
				eng.EmitAfter(float64(i)*0.01, 1, int32(i))
				eng.After(float64(i)*0.02, func() {})
			}
			eng.RunUntil(2.5)

			eng.Reset()
			if eng.Now() != 0 || eng.Pending() != 0 {
				t.Fatalf("after Reset: now=%g pending=%d, want 0/0", eng.Now(), eng.Pending())
			}
			// Reset cleared the sink: emitting without re-registering panics.
			func() {
				defer func() {
					if r := recover(); r == nil {
						t.Fatal("Emit after Reset did not panic without a sink")
					}
				}()
				eng.Emit(1, 1, 0)
			}()
			got := program(eng)
			if len(got) != len(want) {
				t.Fatalf("reused engine dispatched %d events, fresh %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dispatch %d differs after reuse: got %+v, fresh %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestEngineSlotReuseDoesNotResurrect exercises the recycled-slot paths (the
// heap's freelist, the wheel's compacted ready run) across generations of
// schedule/drain cycles: every callback fires exactly once, and no recycled
// slot replays an already-dispatched callback.
func TestEngineSlotReuseDoesNotResurrect(t *testing.T) {
	for _, impl := range engineImpls {
		t.Run(impl.name, func(t *testing.T) {
			eng := impl.mk()
			const perGen, gens = 300, 5
			counts := make(map[int]int)
			id := 0
			for g := 0; g < gens; g++ {
				for i := 0; i < perGen; i++ {
					id++
					ev := id
					eng.After(float64(i)*1e-3, func() { counts[ev]++ })
				}
				// Drain halfway through the generation, then fully: partial
				// drains force slot recycling while events are still pending.
				eng.RunUntil(eng.Now() + float64(perGen)/2*1e-3)
				eng.Run()
			}
			if eng.Pending() != 0 {
				t.Fatalf("%d events still pending after drain", eng.Pending())
			}
			if len(counts) != perGen*gens {
				t.Fatalf("%d distinct callbacks fired, want %d", len(counts), perGen*gens)
			}
			for ev, n := range counts {
				if n != 1 {
					t.Fatalf("callback %d fired %d times — a recycled slot resurrected it", ev, n)
				}
			}
		})
	}
}

// TestWheelOverflowMigration is the regression test for the overflow-bucket
// ordering bug: an event beyond the ring's horizon at push time spills to
// overflow, and the frontier — advanced past it by a dense chain that never
// lets the ring drain — must migrate it into the dispatch run on time rather
// than strand it until a rebuild. The buggy wheel dispatched the whole chain
// first and the overflow event last.
func TestWheelOverflowMigration(t *testing.T) {
	run := func(eng *Engine) []float64 {
		var order []float64
		note := func() { order = append(order, eng.Now()) }
		// Far beyond the fresh wheel's horizon (256 buckets × 1 ms ≈ 0.25 s).
		eng.At(2.1005, note)
		// Dense self-rescheduling chain: the ring always holds the next link,
		// so the frontier walks bucket by bucket past 2.1005 without ever
		// draining (which would have rescued the overflow event via rebuild).
		var chain func()
		chain = func() {
			note()
			if eng.Now() < 3.0 {
				eng.After(0.01, chain)
			}
		}
		eng.After(0.01, chain)
		eng.Run()
		return order
	}
	want := run(NewReferenceEngine())
	got := run(NewEngine())
	if len(got) != len(want) {
		t.Fatalf("wheel dispatched %d events, heap %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d: wheel at %.6f, heap at %.6f (full wheel order %v)", i, got[i], want[i], got)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("wheel dispatched out of time order at %d: %.6f after %.6f", i, got[i], got[i-1])
		}
	}
}
