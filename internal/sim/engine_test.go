package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.At(3, func() { order = append(order, 3) })
	eng.At(1, func() { order = append(order, 1) })
	eng.At(2, func() { order = append(order, 2) })
	end := eng.Run()
	if end != 3 {
		t.Fatalf("final time %g, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("dispatch order %v", order)
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(5, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var times []float64
	eng.At(1, func() {
		times = append(times, eng.Now())
		eng.After(2, func() { times = append(times, eng.Now()) })
	})
	eng.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("nested times %v", times)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		eng.At(1, func() {})
	})
	eng.Run()

	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	eng.After(-1, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.At(1, func() { fired++ })
	eng.At(2, func() { fired++ })
	eng.At(10, func() { fired++ })
	eng.RunUntil(5)
	if fired != 2 {
		t.Fatalf("fired %d events before deadline, want 2", fired)
	}
	if eng.Now() != 5 {
		t.Fatalf("clock %g, want 5", eng.Now())
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending %d, want 1", eng.Pending())
	}
	eng.Run()
	if fired != 3 || eng.Now() != 10 {
		t.Fatalf("after Run: fired=%d now=%g", fired, eng.Now())
	}
}

func TestStationSingleServerSerializes(t *testing.T) {
	eng := NewEngine()
	st := NewStation(eng, 1)
	var ends []float64
	for i := 0; i < 4; i++ {
		st.Submit(func() float64 { return 2 }, func(_, end float64) { ends = append(ends, end) })
	}
	eng.Run()
	want := []float64{2, 4, 6, 8}
	for i, e := range ends {
		if e != want[i] {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
	if st.Served != 4 || st.Busy() != 0 || st.QueueLen() != 0 {
		t.Fatalf("station state: served=%d busy=%d queue=%d", st.Served, st.Busy(), st.QueueLen())
	}
}

func TestStationMultiServerParallelism(t *testing.T) {
	eng := NewEngine()
	st := NewStation(eng, 3)
	var ends []float64
	for i := 0; i < 6; i++ {
		st.Submit(func() float64 { return 5 }, func(_, end float64) { ends = append(ends, end) })
	}
	eng.Run()
	// Two waves of 3: ends at 5,5,5,10,10,10.
	for i, e := range ends {
		want := 5.0
		if i >= 3 {
			want = 10
		}
		if e != want {
			t.Fatalf("ends %v", ends)
		}
	}
}

func TestStationStateDependentService(t *testing.T) {
	// Service time grows with number already served — the scheduler-search
	// pattern. Completion of job k is sum_{i<=k} (base + i*step).
	eng := NewEngine()
	st := NewStation(eng, 1)
	const base, step = 1.0, 0.5
	var last float64
	for i := 0; i < 10; i++ {
		st.Submit(func() float64 { return base + float64(st.Served)*step },
			func(_, end float64) { last = end })
	}
	eng.Run()
	want := 0.0
	for i := 0; i < 10; i++ {
		want += base + float64(i)*step
	}
	if math.Abs(last-want) > 1e-9 {
		t.Fatalf("last completion %g, want %g", last, want)
	}
}

func TestStationValidation(t *testing.T) {
	eng := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("0-server station should panic")
		}
	}()
	NewStation(eng, 0)
}

func TestRNGDeterminismAndStreams(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	s1, s2 := Stream(42, 1), Stream(42, 2)
	same := true
	for i := 0; i < 10; i++ {
		if s1.Float64() != s2.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("distinct streams produced identical output")
	}
}

func TestJitterBounded(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 10000; i++ {
		j := g.Jitter(0.02)
		if j < 1-0.061 || j > 1+0.061 {
			t.Fatalf("jitter %g outside ±3σ clamp", j)
		}
	}
	if g.Jitter(0) != 1 || g.Jitter(-1) != 1 {
		t.Fatal("non-positive stddev should yield exactly 1")
	}
}

// Property: for any workload of n 1-second jobs on k servers, a station
// finishes at ceil(n/k) seconds.
func TestStationMakespanProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		jobs := int(n)%64 + 1
		servers := int(k)%8 + 1
		eng := NewEngine()
		st := NewStation(eng, servers)
		for i := 0; i < jobs; i++ {
			st.Submit(func() float64 { return 1 }, nil)
		}
		end := eng.Run()
		want := math.Ceil(float64(jobs) / float64(servers))
		return math.Abs(end-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
