// Package sim is a small deterministic discrete-event simulation engine.
//
// The serverless platform models in internal/platform and internal/funcx are
// built on it: invocations flow through queued stations (scheduler, image
// builder, image shipper, host boot) whose contention produces the scaling
// behaviour ProPack then has to rediscover by regression.
//
// Time is a float64 in seconds of virtual time. Event ordering is total:
// ties on time break on insertion sequence, so runs are reproducible.
//
// Two schedulers implement that order. The production one (NewEngine) is a
// calendar-queue / timing-wheel hybrid with O(1) amortized schedule and
// dispatch, sized for million-instance bursts; the original binary heap is
// retained behind NewReferenceEngine as the differential-testing oracle the
// wheel is property- and fuzz-tested against (see DESIGN §15).
package sim

import (
	"fmt"
	"math"
)

// event is a scheduled callback in virtual time.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// eventQueue is the pending-event structure behind an Engine. Both
// implementations — the calendar-queue wheel (wheelQueue, the fast path)
// and the retained binary heap (heapQueue, the test oracle) — dispatch in
// exactly the same total order: time, then insertion sequence.
type eventQueue interface {
	push(ev event)
	// peekAt reports the dispatch time of the earliest pending event
	// without removing it.
	peekAt() (float64, bool)
	// pop removes and returns the earliest pending event. It must only be
	// called when len() > 0.
	pop() event
	len() int
}

// Engine owns the virtual clock and the pending-event queue. The zero value
// is not ready; use NewEngine (or NewReferenceEngine for the heap oracle).
type Engine struct {
	now float64
	seq uint64
	q   eventQueue
}

// NewEngine returns an engine with the clock at time zero, backed by the
// calendar-queue scheduler.
func NewEngine() *Engine {
	return &Engine{q: newWheelQueue()}
}

// NewReferenceEngine returns an engine backed by the original container/heap
// scheduler. It dispatches in exactly the same order as NewEngine and exists
// as the oracle for the differential test harness: every behavioural
// property of the wheel is checked by running the same schedule on both and
// requiring identical traces.
func NewReferenceEngine() *Engine {
	return &Engine{q: &heapQueue{}}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling at a
// non-finite time (NaN, ±Inf) or in the past panics — silently accepting
// either would corrupt the queue's ordering invariants or causality. (NaN
// compares false against everything, so before this check existed a NaN
// timestamp would sit in the heap violating its invariant and scramble the
// dispatch order of innocent neighbours.)
func (e *Engine) At(t float64, fn func()) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %g", t))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
	e.seq++
	e.q.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds of virtual time from now. Negative or
// non-finite delays panic.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	if math.IsNaN(d) {
		panic("sim: non-finite delay NaN")
	}
	e.At(e.now+d, fn)
}

// Pending reports the number of events not yet dispatched.
func (e *Engine) Pending() int { return e.q.len() }

// Run dispatches events in time order until none remain, returning the final
// virtual time.
func (e *Engine) Run() float64 {
	for e.q.len() > 0 {
		ev := e.q.pop()
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil dispatches events with time ≤ deadline, then advances the clock
// to the deadline. Events scheduled beyond it stay pending. An event exactly
// at the deadline fires. A NaN deadline panics.
func (e *Engine) RunUntil(deadline float64) {
	if math.IsNaN(deadline) {
		panic("sim: non-finite RunUntil deadline NaN")
	}
	for {
		at, ok := e.q.peekAt()
		if !ok || at > deadline {
			break
		}
		ev := e.q.pop()
		e.now = ev.at
		ev.fn()
	}
	if deadline > e.now {
		e.now = deadline
	}
}
