// Package sim is a small deterministic discrete-event simulation engine.
//
// The serverless platform models in internal/platform and internal/funcx are
// built on it: invocations flow through queued stations (scheduler, image
// builder, image shipper, host boot) whose contention produces the scaling
// behaviour ProPack then has to rediscover by regression.
//
// Time is a float64 in seconds of virtual time. Event ordering is total:
// ties on time break on insertion sequence, so runs are reproducible.
//
// Events come in two kinds sharing one queue and one total order:
//
//   - Typed events are plain values — (at, kind, subject, seq) — dispatched
//     through an EventSink registered once per run. They are the fast path:
//     scheduling one allocates nothing, so a million-instance simulation is
//     allocation-free in steady state.
//   - Closure events (At/After) carry a func() and exist as a thin adapter
//     over the same queue for callers that don't need the typed path's
//     economy. Both kinds interleave freely; ordering is always (at, seq)
//     regardless of kind.
//
// Two schedulers implement that order. The production one (NewEngine) is a
// calendar-queue / timing-wheel hybrid with O(1) amortized schedule and
// dispatch, sized for million-instance bursts; the original binary heap is
// retained behind NewReferenceEngine as the differential-testing oracle the
// wheel is property- and fuzz-tested against (see DESIGN §15–16).
package sim

import (
	"fmt"
	"math"
)

// event is one scheduled occurrence in virtual time: a typed word
// (kind, subject) when fn is nil, or a legacy closure callback otherwise.
// Only (at, seq) participate in ordering; the payload is opaque to the
// queues.
type event struct {
	at      float64
	seq     uint64
	fn      func()
	subject int32
	kind    uint8
}

// EventSink handles typed events. One sink serves a whole run: Dispatch is
// called for every typed event in dispatch order, with the engine's clock
// already advanced to the event's time. Implementations are expected to be
// a switch over their own kind table — a shape the compiler turns into a
// jump, keeping dispatch allocation-free and branch-predictable.
type EventSink interface {
	Dispatch(kind uint8, subject int32)
}

// eventQueue is the pending-event structure behind an Engine. Both
// implementations — the calendar-queue wheel (wheelQueue, the fast path)
// and the retained binary heap (heapQueue, the test oracle) — dispatch in
// exactly the same total order: time, then insertion sequence.
type eventQueue interface {
	push(ev event)
	// peekAt reports the dispatch time of the earliest pending event
	// without removing it.
	peekAt() (float64, bool)
	// pop removes and returns the earliest pending event. It must only be
	// called when len() > 0.
	pop() event
	len() int
	// reset drops every pending event while retaining grown capacity, so a
	// pooled engine starts its next run without reallocating.
	reset()
}

// Engine owns the virtual clock and the pending-event queue. The zero value
// is not ready; use NewEngine (or NewReferenceEngine for the heap oracle).
type Engine struct {
	now  float64
	seq  uint64
	q    eventQueue
	sink EventSink
}

// NewEngine returns an engine with the clock at time zero, backed by the
// calendar-queue scheduler.
func NewEngine() *Engine {
	return &Engine{q: newWheelQueue()}
}

// NewReferenceEngine returns an engine backed by the original container/heap
// scheduler. It dispatches in exactly the same order as NewEngine and exists
// as the oracle for the differential test harness: every behavioural
// property of the wheel is checked by running the same schedule on both and
// requiring identical traces.
func NewReferenceEngine() *Engine {
	return &Engine{q: &heapQueue{}}
}

// IsReference reports whether the engine runs the container/heap oracle
// rather than the production wheel. Engine-pooling callers use it to detect
// that a cached engine matches the implementation the run asks for.
func (e *Engine) IsReference() bool {
	_, ok := e.q.(*heapQueue)
	return ok
}

// Reset returns the engine to time zero with no pending events and no sink,
// retaining the queue's grown capacity. Burst-heavy callers pool one engine
// across runs instead of re-growing the wheel's ring each time; a reset
// engine is indistinguishable from a fresh one (same clock, same sequence
// counter, same dispatch order).
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.sink = nil
	e.q.reset()
}

// SetSink registers the handler for typed events. It must be called before
// the first Emit of a run and must not be swapped while typed events are
// pending — the sink is the run's kind table, not a per-event callback.
func (e *Engine) SetSink(s EventSink) { e.sink = s }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// checkAt validates an absolute timestamp. Scheduling at a non-finite time
// (NaN, ±Inf) or in the past panics — silently accepting either would
// corrupt the queue's ordering invariants or causality. (NaN compares false
// against everything, so before this check existed a NaN timestamp would sit
// in the heap violating its invariant and scramble the dispatch order of
// innocent neighbours.)
func (e *Engine) checkAt(t float64) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %g", t))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
}

// checkAfter validates a relative delay. Negative or non-finite delays
// panic.
func checkAfter(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	if math.IsNaN(d) {
		panic("sim: non-finite delay NaN")
	}
}

// At schedules fn to run at absolute virtual time t. It is the legacy
// closure adapter over the typed event word: the closure rides the same
// queue and the same (at, seq) order as typed events, it just costs a heap
// allocation per call. Hot paths use Emit instead.
func (e *Engine) At(t float64, fn func()) {
	e.checkAt(t)
	e.seq++
	e.q.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds of virtual time from now. Negative or
// non-finite delays panic.
func (e *Engine) After(d float64, fn func()) {
	checkAfter(d)
	e.At(e.now+d, fn)
}

// Emit schedules a typed event at absolute virtual time t: when the clock
// reaches t the registered sink's Dispatch(kind, subject) runs. The event is
// a plain word in the queue — no allocation. Emitting with no sink
// registered panics (the event could never dispatch).
func (e *Engine) Emit(t float64, kind uint8, subject int32) {
	if e.sink == nil {
		panic("sim: Emit with no EventSink registered (call SetSink first)")
	}
	e.checkAt(t)
	e.seq++
	e.q.push(event{at: t, seq: e.seq, kind: kind, subject: subject})
}

// EmitAfter schedules a typed event d seconds of virtual time from now.
// Negative or non-finite delays panic, as does an unregistered sink.
func (e *Engine) EmitAfter(d float64, kind uint8, subject int32) {
	checkAfter(d)
	e.Emit(e.now+d, kind, subject)
}

// Pending reports the number of events not yet dispatched.
func (e *Engine) Pending() int { return e.q.len() }

// dispatch runs one popped event: the closure for the legacy kind, the sink
// for typed words.
func (e *Engine) dispatch(ev event) {
	if ev.fn != nil {
		ev.fn()
		return
	}
	e.sink.Dispatch(ev.kind, ev.subject)
}

// Run dispatches events in time order until none remain, returning the final
// virtual time.
func (e *Engine) Run() float64 {
	for e.q.len() > 0 {
		ev := e.q.pop()
		e.now = ev.at
		e.dispatch(ev)
	}
	return e.now
}

// RunUntil dispatches events with time ≤ deadline, then advances the clock
// to the deadline. Events scheduled beyond it stay pending. An event exactly
// at the deadline fires. A NaN deadline panics.
func (e *Engine) RunUntil(deadline float64) {
	if math.IsNaN(deadline) {
		panic("sim: non-finite RunUntil deadline NaN")
	}
	for {
		at, ok := e.q.peekAt()
		if !ok || at > deadline {
			break
		}
		ev := e.q.pop()
		e.now = ev.at
		e.dispatch(ev)
	}
	if deadline > e.now {
		e.now = deadline
	}
}
