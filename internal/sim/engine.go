// Package sim is a small deterministic discrete-event simulation engine.
//
// The serverless platform models in internal/platform and internal/funcx are
// built on it: invocations flow through queued stations (scheduler, image
// builder, image shipper, host boot) whose contention produces the scaling
// behaviour ProPack then has to rediscover by regression.
//
// Time is a float64 in seconds of virtual time. Event ordering is total:
// ties on time break on insertion sequence, so runs are reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback in virtual time.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending-event heap. The zero value
// is not ready; use NewEngine.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	// free recycles dispatched events so a burst of N instances costs O(1)
	// event allocations in steady state instead of one per scheduled
	// callback. Events are engine-local, so no synchronization is needed.
	free []*event
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics — it would silently corrupt causality.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = t, e.seq, fn
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn}
	}
	heap.Push(&e.events, ev)
}

// After schedules fn to run d seconds of virtual time from now. Negative
// delays panic.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	e.At(e.now+d, fn)
}

// Pending reports the number of events not yet dispatched.
func (e *Engine) Pending() int { return e.events.Len() }

// Run dispatches events in time order until none remain, returning the final
// virtual time.
func (e *Engine) Run() float64 {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	return e.now
}

// RunUntil dispatches events with time ≤ deadline, then advances the clock
// to the deadline. Events scheduled beyond it stay pending.
func (e *Engine) RunUntil(deadline float64) {
	for e.events.Len() > 0 && e.events[0].at <= deadline {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// recycle returns a dispatched event to the freelist, dropping its callback
// reference so the closure (and anything it captures) can be collected.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}
