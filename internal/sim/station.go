package sim

// Station is a multi-server FCFS queue living inside an Engine. Jobs submit
// with a service-time function evaluated at dispatch (so service time can
// depend on system state at the moment the job starts, e.g. a scheduler
// whose placement search slows down as the datacenter fills).
type Station struct {
	eng     *Engine
	servers int
	busy    int
	queue   []*job

	// Served counts jobs whose service completed.
	Served int
	// BusySeconds accumulates total service time across all servers.
	BusySeconds float64
}

type job struct {
	service func() float64
	done    func(start, end float64)
}

// NewStation creates a station with the given number of parallel servers.
// servers must be ≥ 1.
func NewStation(eng *Engine, servers int) *Station {
	if servers < 1 {
		panic("sim: station needs ≥1 server")
	}
	return &Station{eng: eng, servers: servers}
}

// Submit enqueues a job. service is evaluated when the job reaches a free
// server; done (optional) is called at completion with the service start and
// end times.
func (s *Station) Submit(service func() float64, done func(start, end float64)) {
	j := &job{service: service, done: done}
	if s.busy < s.servers {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
}

// QueueLen reports jobs waiting (not in service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy reports servers currently serving.
func (s *Station) Busy() int { return s.busy }

func (s *Station) start(j *job) {
	s.busy++
	begin := s.eng.Now()
	d := j.service()
	if d < 0 {
		panic("sim: negative service time")
	}
	s.eng.After(d, func() {
		s.busy--
		s.Served++
		s.BusySeconds += d
		if j.done != nil {
			j.done(begin, s.eng.Now())
		}
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue[0] = nil
			s.queue = s.queue[1:]
			s.start(next)
		}
	})
}
