package sim

// Station is a multi-server FCFS queue living inside an Engine. Jobs submit
// with a service-time function evaluated at dispatch (so service time can
// depend on system state at the moment the job starts, e.g. a scheduler
// whose placement search slows down as the datacenter fills).
type Station struct {
	eng     *Engine
	servers int
	busy    int
	queue   []*job

	// Served counts jobs whose service completed.
	Served int
	// BusySeconds accumulates total service time across all servers.
	BusySeconds float64
}

type job struct {
	service func() float64
	done    func(start, end float64)
}

// NewStation creates a station with the given number of parallel servers.
// servers must be ≥ 1.
func NewStation(eng *Engine, servers int) *Station {
	if servers < 1 {
		panic("sim: station needs ≥1 server")
	}
	return &Station{eng: eng, servers: servers}
}

// Submit enqueues a job. service is evaluated when the job reaches a free
// server; done (optional) is called at completion with the service start and
// end times.
func (s *Station) Submit(service func() float64, done func(start, end float64)) {
	j := &job{service: service, done: done}
	if s.busy < s.servers {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
}

// QueueLen reports jobs waiting (not in service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy reports servers currently serving.
func (s *Station) Busy() int { return s.busy }

func (s *Station) start(j *job) {
	s.busy++
	begin := s.eng.Now()
	d := j.service()
	if d < 0 {
		panic("sim: negative service time")
	}
	s.eng.After(d, func() {
		s.busy--
		s.Served++
		s.BusySeconds += d
		if j.done != nil {
			j.done(begin, s.eng.Now())
		}
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue[0] = nil
			s.queue = s.queue[1:]
			s.start(next)
		}
	})
}

// TypedStation is the closure-free Station variant for the typed event
// path: jobs are identified by a small integer subject, completions are
// announced by emitting the station's registered kind through the engine's
// EventSink, and the wait queue is a cursor-consumed []int32 — so a fully
// loaded million-job station allocates nothing per job in steady state.
//
// The contract mirrors Station exactly, event for event, so a control plane
// ported from closures to subjects dispatches in the same (at, seq) order:
//
//   - Submit(subject) starts service immediately when a server is free
//     (service evaluated now, completion event scheduled now), else queues
//     FIFO.
//   - When the completion event dispatches, the sink must call
//     Complete(subject) first (counters: busy, Served, BusySeconds), then
//     run its own completion logic, then call Next() to start the next
//     queued job. That is the order the closure Station performed those
//     three steps in, and downstream events are sequence-numbered by it.
//
// The zero value is not ready; call Init (re-Init to reuse pooled storage
// across runs).
type TypedStation struct {
	eng     *Engine
	servers int
	kind    uint8
	service func(subject int32) float64

	busy     int
	queue    []int32
	queuePos int
	// pend records the in-flight service duration per subject so Complete
	// can account BusySeconds exactly (recomputing it from timestamps would
	// round differently than the closure path).
	pend []float64

	// Served counts jobs whose service completed.
	Served int
	// BusySeconds accumulates total service time across all servers.
	BusySeconds float64
}

// Init readies the station for a run: servers parallel servers, completions
// emitted as kind through eng's sink, service evaluated per subject at the
// moment the job reaches a server. Subjects must lie in [0, subjects).
// Grown queue and pend storage is retained across Inits, so pooled stations
// cost nothing per run after the first.
func (s *TypedStation) Init(eng *Engine, servers int, kind uint8, subjects int, service func(subject int32) float64) {
	if servers < 1 {
		panic("sim: station needs ≥1 server")
	}
	s.eng = eng
	s.servers = servers
	s.kind = kind
	s.service = service
	s.busy = 0
	s.queue = s.queue[:0]
	s.queuePos = 0
	if cap(s.pend) < subjects {
		s.pend = make([]float64, subjects)
	}
	s.pend = s.pend[:subjects]
	s.Served = 0
	s.BusySeconds = 0
}

// Submit enqueues subject's job, starting service immediately if a server
// is free.
func (s *TypedStation) Submit(subject int32) {
	if s.busy < s.servers {
		s.start(subject)
		return
	}
	s.queue = append(s.queue, subject)
}

// QueueLen reports jobs waiting (not in service).
func (s *TypedStation) QueueLen() int { return len(s.queue) - s.queuePos }

// Busy reports servers currently serving.
func (s *TypedStation) Busy() int { return s.busy }

func (s *TypedStation) start(subject int32) {
	s.busy++
	d := s.service(subject)
	if d < 0 {
		panic("sim: negative service time")
	}
	s.pend[subject] = d
	s.eng.EmitAfter(d, s.kind, subject)
}

// Complete records the completion of subject's service. The sink calls it
// first thing when the station's kind dispatches, runs its completion
// logic, then calls Next.
func (s *TypedStation) Complete(subject int32) {
	s.busy--
	s.Served++
	s.BusySeconds += s.pend[subject]
}

// Next starts the next queued job, if any. It is the third step of the
// completion protocol (after Complete and the sink's own logic), matching
// where the closure Station started its next job.
func (s *TypedStation) Next() {
	if s.queuePos == len(s.queue) {
		s.queue = s.queue[:0]
		s.queuePos = 0
		return
	}
	next := s.queue[s.queuePos]
	s.queuePos++
	// Compact the consumed prefix so a long-lived station cannot grow its
	// queue without bound across refill cycles.
	if s.queuePos >= 1024 && 2*s.queuePos >= len(s.queue) {
		m := copy(s.queue, s.queue[s.queuePos:])
		s.queue = s.queue[:m]
		s.queuePos = 0
	}
	s.start(next)
}
