package sim

import (
	"math"
	"math/bits"
	"slices"
	"sort"
)

// wheelQueue is a calendar-queue / hierarchical-timing-wheel scheduler: the
// engine's fast path, with O(1) amortized push and pop against the heap's
// O(log n). Three tiers hold pending events:
//
//   - ready: the dispatch run — every pending event earlier than the
//     frontier bucket's top edge, sorted by (time, seq). pop is a cursor
//     increment; a push that lands below the frontier inserts in order.
//   - buckets: a power-of-two ring over a fixed time grid. Bucket k spans
//     [base + k·width, base + (k+1)·width); events are appended unsorted and
//     extracted (then sorted) when the frontier reaches their bucket.
//   - overflow: the far-future bucket, for events beyond the ring's
//     horizon. The horizon is measured at push time, so an overflow event
//     becomes due as the frontier advances: every frontier step checks the
//     tracked overflow minimum and migrates due events into the dispatch
//     run. When the ring drains entirely, the wheel instead re-anchors its
//     grid on the earliest pending event and redistributes.
//
// Determinism is the load-bearing wall: dispatch order must be bit-identical
// to the reference heap's (time, insertion seq) order. Two details make
// that exact rather than approximate:
//
//  1. Bucket edges are computed from the grid origin (base + k·width), never
//     accumulated, so every push and every extraction sees the same
//     boundaries bit-for-bit.
//  2. An event's bucket index is bracketed exactly — nudged until
//     edge(idx) ≤ at < edge(idx+1) — because the raw float division can be
//     off by one near a boundary. The bracket makes the at→bucket mapping a
//     pure, monotone function of the timestamp for a fixed grid, which
//     yields the two properties the total order rests on: equal timestamps
//     always share a bucket (so the per-bucket (at, seq) sort arbitrates
//     them), and no bucket-resident event ever lies below the frontier's
//     top edge (so a push below the frontier may go straight into the
//     dispatch run without consulting the ring). An up-only nudge is NOT
//     enough: an event parked one bucket high survives the extraction pass
//     that opens its true range, and later events dispatch before it — an
//     inversion the platform differential harness caught at ulp distance.
//
// The differential harness (engine_diff_test.go, FuzzEngineSchedule, and
// the platform-level heap-vs-wheel suite) holds the wheel to the heap's
// exact trace over randomized and adversarial schedules.
type wheelQueue struct {
	buckets [][]event
	mask    int64
	width   float64 // bucket time width of the current grid
	base    float64 // grid origin; bucket k spans [base+k·w, base+(k+1)·w)
	cur     int64   // absolute index of the frontier bucket
	inWheel int     // events resident in buckets
	// occupied is a bitmap over physical buckets (bit set ⇔ bucket
	// non-empty) so the frontier jumps empty runs with TrailingZeros64
	// instead of visiting every bucket — the difference between O(1) and
	// O(ring) per dispatch when the live population is sparse.
	occupied []uint64

	// overflow holds far-future events beyond the ring's horizon, as a
	// binary min-heap ordered by (at, seq). The heap matters: the frontier
	// consults the overflow minimum on every advance — an overflow event
	// becomes due the moment the frontier's top edge passes it, and must
	// migrate into the dispatch run then, not when the ring happens to
	// drain. With a heap each migration pops exactly the due events in
	// order (O(log n) apiece); a flat slice would be rescanned wholesale at
	// every landing.
	overflow []event
	// overflowMin caches overflow[0].at (+Inf when empty) for the per-
	// advance due check.
	overflowMin float64

	ready    []event // sorted dispatch run, consumed from readyPos
	readyPos int
}

const (
	wheelMinBuckets = 1 << 8
	wheelMaxBuckets = 1 << 16
	// wheelMaxOccupancy triggers a retuning rebuild when the ring holds
	// more than this many events per bucket on average.
	wheelMaxOccupancy = 6
	// wheelInitWidth is the starting bucket width in virtual seconds; the
	// first rebuild replaces it with a width tuned to the live population.
	wheelInitWidth = 1e-3
)

func newWheelQueue() *wheelQueue {
	return &wheelQueue{
		buckets:     make([][]event, wheelMinBuckets),
		mask:        wheelMinBuckets - 1,
		width:       wheelInitWidth,
		overflowMin: math.Inf(1),
		occupied:    make([]uint64, wheelMinBuckets/64),
	}
}

func (w *wheelQueue) len() int {
	return len(w.ready) - w.readyPos + w.inWheel + len(w.overflow)
}

// reset drops every pending event and re-anchors the grid at time zero,
// keeping the ring, ready run, and overflow heap at their grown capacities
// so a pooled engine's next run starts warm. Grid geometry (bucket count)
// is retained too — order never depends on it, and a same-sized run skips
// the growth rebuilds.
func (w *wheelQueue) reset() {
	for i, b := range w.buckets {
		for j := range b {
			b[j] = event{}
		}
		w.buckets[i] = b[:0]
	}
	clear(w.occupied)
	clear(w.overflow)
	w.overflow = w.overflow[:0]
	w.overflowMin = math.Inf(1)
	for i := range w.ready {
		w.ready[i] = event{}
	}
	w.ready = w.ready[:0]
	w.readyPos = 0
	w.inWheel = 0
	w.base = 0
	w.cur = 0
	w.width = wheelInitWidth
}

// edge returns the lower edge of absolute bucket k, computed directly from
// the grid origin so pushes and extraction agree on boundaries exactly.
func (w *wheelQueue) edge(k int64) float64 { return w.base + float64(k)*w.width }

func (w *wheelQueue) push(ev event) {
	if ev.at < w.edge(w.cur+1) {
		w.insertReady(ev)
		return
	}
	w.place(ev)
	if w.inWheel > wheelMaxOccupancy*len(w.buckets) && len(w.buckets) < wheelMaxBuckets {
		w.rebuild()
	}
}

// place files an event at or beyond the frontier's top edge into its ring
// bucket, or into overflow when it lies beyond the horizon.
func (w *wheelQueue) place(ev event) {
	n := int64(len(w.buckets))
	curTop := w.edge(w.cur + 1)
	if ev.at-curTop >= float64(n-2)*w.width {
		w.spill(ev)
		return
	}
	idx := w.cur + 1 + int64((ev.at-curTop)/w.width)
	// Bracket the index exactly: edge(idx) ≤ at < edge(idx+1). The float
	// division above can be off by one in either direction near a bucket
	// boundary; both nudge loops run at most a step or two. See the type
	// comment for why exact bracketing is load-bearing.
	for idx-w.cur < n && w.edge(idx+1) <= ev.at {
		idx++
	}
	for idx > w.cur+1 && w.edge(idx) > ev.at {
		idx--
	}
	if idx-w.cur >= n {
		w.spill(ev)
		return
	}
	p := idx & w.mask
	w.buckets[p] = append(w.buckets[p], ev)
	w.occupied[p>>6] |= 1 << uint(p&63)
	w.inWheel++
}

// nextOccupiedDelta returns the distance from absolute bucket cur to the
// nearest non-empty physical bucket, searching one full revolution. The
// result is in [0, ring size); ok is false only when every bucket is empty.
func (w *wheelQueue) nextOccupiedDelta(cur int64) (int64, bool) {
	words := len(w.occupied)
	start := cur & w.mask
	wi := int(start >> 6)
	off := uint(start & 63)
	if word := w.occupied[wi] >> off; word != 0 {
		return int64(bits.TrailingZeros64(word)), true
	}
	delta := int64(64 - off)
	for k := 1; k < words; k++ {
		if word := w.occupied[(wi+k)%words]; word != 0 {
			return delta + int64(bits.TrailingZeros64(word)), true
		}
		delta += 64
	}
	// Wrapped back to the starting word: only the bits below off remain.
	if word := w.occupied[wi] & (1<<off - 1); word != 0 {
		return delta + int64(bits.TrailingZeros64(word)), true
	}
	return 0, false
}

// eventBefore is the engine's total order: time, then insertion sequence.
func eventBefore(a, b event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// spill pushes an event onto the overflow heap, keeping the cached minimum
// current so the frontier knows when migration is due.
func (w *wheelQueue) spill(ev event) {
	w.overflow = append(w.overflow, ev)
	i := len(w.overflow) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(w.overflow[i], w.overflow[p]) {
			break
		}
		w.overflow[i], w.overflow[p] = w.overflow[p], w.overflow[i]
		i = p
	}
	w.overflowMin = w.overflow[0].at
}

// popOverflow removes and returns the earliest overflow event.
func (w *wheelQueue) popOverflow() event {
	ev := w.overflow[0]
	last := len(w.overflow) - 1
	w.overflow[0] = w.overflow[last]
	w.overflow[last] = event{}
	w.overflow = w.overflow[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if c+1 < last && eventBefore(w.overflow[c+1], w.overflow[c]) {
			c++
		}
		if !eventBefore(w.overflow[c], w.overflow[i]) {
			break
		}
		w.overflow[i], w.overflow[c] = w.overflow[c], w.overflow[i]
		i = c
	}
	if last > 0 {
		w.overflowMin = w.overflow[0].at
	} else {
		w.overflowMin = math.Inf(1)
	}
	return ev
}

// insertReady splices an event below the frontier into the sorted dispatch
// run. The event carries the highest seq issued so far, so its slot is
// directly after every pending event with an equal or earlier time.
func (w *wheelQueue) insertReady(ev event) {
	lo := w.readyPos // at ≥ now ≥ every consumed time, so never before the cursor
	pos := lo + sort.Search(len(w.ready)-lo, func(i int) bool { return w.ready[lo+i].at > ev.at })
	w.ready = append(w.ready, event{})
	copy(w.ready[pos+1:], w.ready[pos:])
	w.ready[pos] = ev
}

func (w *wheelQueue) peekAt() (float64, bool) {
	if !w.ensureReady() {
		return 0, false
	}
	return w.ready[w.readyPos].at, true
}

func (w *wheelQueue) pop() event {
	if !w.ensureReady() {
		panic("sim: pop from empty event queue")
	}
	ev := w.ready[w.readyPos]
	w.ready[w.readyPos].fn = nil // drop the callback reference for GC
	w.readyPos++
	// Compact the consumed prefix so a long zero-delay chain cannot grow
	// the run without bound.
	if w.readyPos == len(w.ready) {
		w.ready = w.ready[:0]
		w.readyPos = 0
	} else if w.readyPos >= 1024 && 2*w.readyPos >= len(w.ready) {
		m := copy(w.ready, w.ready[w.readyPos:])
		for i := m; i < len(w.ready); i++ {
			w.ready[i] = event{}
		}
		w.ready = w.ready[:m]
		w.readyPos = 0
	}
	return ev
}

// ensureReady makes ready[readyPos] the earliest pending event, advancing
// the frontier bucket by bucket and re-anchoring the grid when a whole
// revolution (or the ring itself) is exhausted. It reports false only when
// no events remain anywhere.
func (w *wheelQueue) ensureReady() bool {
	if w.readyPos < len(w.ready) {
		return true
	}
	w.ready = w.ready[:0]
	w.readyPos = 0
	if w.inWheel+len(w.overflow) == 0 {
		return false
	}
	n := int64(len(w.buckets))
	for advanced := int64(0); w.inWheel > 0 && advanced < n; {
		// Jump the frontier straight to the next non-empty bucket; the
		// skipped buckets hold nothing, so no event's order can depend on
		// visiting them one at a time.
		delta, ok := w.nextOccupiedDelta(w.cur)
		if !ok || advanced+delta >= n {
			break // only later-year events remain in reach: re-anchor
		}
		w.cur += delta
		advanced += delta
		top := w.edge(w.cur + 1)
		// Migrate overflow events the frontier has caught up with. An event
		// spills to overflow against the horizon at push time; once the
		// frontier's top edge passes its timestamp it is as due as anything
		// in the frontier bucket and must join this dispatch run, or later
		// ring events would jump ahead of it. Migrated and extracted events
		// are sorted together below, so the order matches a step-by-step
		// frontier exactly.
		for w.overflowMin < top {
			w.ready = append(w.ready, w.popOverflow())
		}
		migrated := len(w.ready)
		i := w.cur & w.mask
		b := w.buckets[i]
		keep := b[:0]
		for _, ev := range b {
			if ev.at < top {
				w.ready = append(w.ready, ev)
			} else {
				keep = append(keep, ev) // a later year of this bucket
			}
		}
		for j := len(keep); j < len(b); j++ {
			b[j] = event{}
		}
		w.buckets[i] = keep
		if len(keep) == 0 {
			w.occupied[i>>6] &^= 1 << uint(i&63)
		}
		if len(w.ready) > 0 {
			w.inWheel -= len(w.ready) - migrated
			sortEvents(w.ready)
			return true
		}
		w.cur++
		advanced++
	}
	// Nothing dispatchable on this grid revolution: the remaining events
	// sit in overflow or in far-future years of their buckets. Re-anchor
	// the grid at the earliest pending event instead of spinning through
	// empty years.
	w.rebuild()
	return true
}

// rebuild re-anchors the grid at the earliest pending event, retunes the
// bucket count to the population and the width to the event spread, and
// redistributes everything. It leaves ready holding (at least) the earliest
// event, sorted. Amortization: a rebuild costs O(pending) and is triggered
// either by the population doubling past the occupancy bound or by the
// frontier clearing a whole revolution, so its cost is spread over the
// pushes or pops that caused it.
func (w *wheelQueue) rebuild() {
	all := make([]event, 0, w.len())
	all = append(all, w.ready[w.readyPos:]...)
	for i, b := range w.buckets {
		all = append(all, b...)
		for j := range b {
			b[j] = event{}
		}
		w.buckets[i] = b[:0]
	}
	all = append(all, w.overflow...)
	clear(w.overflow)
	w.overflow = w.overflow[:0]
	w.overflowMin = math.Inf(1)
	w.ready = w.ready[:0]
	w.readyPos = 0
	w.inWheel = 0
	if len(all) == 0 {
		return
	}

	nb := len(w.buckets)
	for nb < wheelMaxBuckets && len(all) > wheelMaxOccupancy*nb/2 {
		nb *= 2
	}
	if nb != len(w.buckets) {
		w.buckets = make([][]event, nb)
		w.mask = int64(nb) - 1
		w.occupied = make([]uint64, nb/64)
	} else {
		clear(w.occupied)
	}
	minAt, maxAt := all[0].at, all[0].at
	for _, ev := range all[1:] {
		if ev.at < minAt {
			minAt = ev.at
		}
		if ev.at > maxAt {
			maxAt = ev.at
		}
	}
	if spread := maxAt - minAt; spread > 0 {
		// Spread the population over at most half the ring so the whole of
		// it fits inside the horizon (≥ 2× the spread) and the active
		// window keeps O(1) events per bucket.
		den := len(all)
		if den > nb/2 {
			den = nb / 2
		}
		w.width = spread / float64(den)
	}
	w.base = minAt
	// Guard against a grid too fine for the anchor's magnitude: if width
	// vanishes under float addition at base, edges collapse and bucket
	// indexing degenerates. Double until the grid actually advances.
	for w.base+w.width == w.base {
		w.width *= 2
	}
	w.cur = 0
	curTop := w.edge(1)
	for _, ev := range all {
		if ev.at < curTop {
			w.ready = append(w.ready, ev)
		} else {
			w.place(ev)
		}
	}
	sortEvents(w.ready)
}

// sortEvents orders a dispatch run by the engine's total order: time, then
// insertion sequence.
func sortEvents(evs []event) {
	slices.SortFunc(evs, func(a, b event) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
}
